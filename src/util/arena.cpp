#include "util/arena.h"

#include <mutex>
#include <vector>

namespace dtnic::util::arena {

#ifdef DTNIC_ARENA_DISABLE

// Sanitizer passthrough: every block is an individual operator new allocation
// so ASan/LSan/TSan see exact object lifetimes and boundaries.
void* allocate(std::size_t bytes) { return ::operator new(bytes); }
void deallocate(void* p, std::size_t) noexcept { ::operator delete(p); }
bool enabled() noexcept { return false; }
ThreadStats thread_stats() noexcept { return {}; }

#else

namespace {

constexpr std::size_t kClasses = kMaxPooledBytes / kClassBytes;

[[nodiscard]] constexpr std::size_t class_of(std::size_t bytes) {
  // bytes in [1, kMaxPooledBytes] -> [0, kClasses); 0 maps to class 0.
  return bytes == 0 ? 0 : (bytes - 1) / kClassBytes;
}

/// Process-lifetime owner of every chunk any thread ever carved.
/// Intentionally leaked: thread-local free lists and the objects parked on
/// them may be touched during static destruction (e.g. a global Simulator or
/// a detached worker draining late), and freeing the chunks under them would
/// turn an orderly shutdown into a use-after-free. One deliberate leak of
/// memory the process was still using at exit is the honest trade; it also
/// makes cross-thread frees safe, because no thread ever owns the memory a
/// block lives in.
struct ChunkRegistry {
  std::mutex mu;
  std::vector<void*> chunks;  // retained for debuggability; never freed

  void* grab_chunk() {
    void* chunk = ::operator new(kChunkBytes);
    const std::lock_guard<std::mutex> lock(mu);
    chunks.push_back(chunk);
    return chunk;
  }
};

ChunkRegistry& registry() {
  static ChunkRegistry* r = new ChunkRegistry;  // leaked on purpose, see above
  return *r;
}

/// Per-thread bump cursor + free lists. No destructor: blocks parked here
/// stay valid (registry owns the memory) and are simply unreachable once the
/// thread exits — bounded by kChunkBytes per thread, reclaimed at teardown.
struct ThreadArena {
  void* free_list[kClasses] = {};
  char* bump = nullptr;
  std::size_t bump_left = 0;
  ThreadStats stats;
};

thread_local ThreadArena t_arena;

}  // namespace

void* allocate(std::size_t bytes) {
  if (bytes > kMaxPooledBytes) {
    ++t_arena.stats.passthrough;
    return ::operator new(bytes);
  }
  ThreadArena& a = t_arena;
  const std::size_t cls = class_of(bytes);
  ++a.stats.pool_allocs;
  if (void* p = a.free_list[cls]) {
    a.free_list[cls] = *static_cast<void**>(p);
    return p;
  }
  const std::size_t block = (cls + 1) * kClassBytes;
  if (a.bump_left < block) {
    a.bump = static_cast<char*>(registry().grab_chunk());
    a.bump_left = kChunkBytes;
    ++a.stats.chunk_allocs;
  }
  void* p = a.bump;
  a.bump += block;
  a.bump_left -= block;
  return p;
}

void deallocate(void* p, std::size_t bytes) noexcept {
  if (p == nullptr) return;
  if (bytes > kMaxPooledBytes) {
    ::operator delete(p);
    return;
  }
  ThreadArena& a = t_arena;
  const std::size_t cls = class_of(bytes);
  ++a.stats.pool_frees;
  *static_cast<void**>(p) = a.free_list[cls];
  a.free_list[cls] = p;
}

bool enabled() noexcept { return true; }

ThreadStats thread_stats() noexcept { return t_arena.stats; }

#endif  // DTNIC_ARENA_DISABLE

}  // namespace dtnic::util::arena
