#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/ids.h"
#include "util/sim_time.h"

/// \file contact_trace.h
/// Records contact (link up/down) events for post-run analysis: contact
/// counts, durations, and inter-contact times feed the EXPERIMENTS.md sanity
/// checks that our mobility substrate produces ONE-like contact dynamics.

namespace dtnic::net {

class ContactTrace {
 public:
  void record_up(util::NodeId a, util::NodeId b, util::SimTime at);
  void record_down(util::NodeId a, util::NodeId b, util::SimTime at);
  /// Close any still-open contacts at simulation end so durations are valid.
  void finalize(util::SimTime end);

  struct Contact {
    util::NodeId a;
    util::NodeId b;
    util::SimTime up;
    util::SimTime down;
    [[nodiscard]] util::SimTime duration() const { return down - up; }
  };

  [[nodiscard]] const std::vector<Contact>& contacts() const { return contacts_; }
  [[nodiscard]] std::size_t count() const { return contacts_.size(); }
  [[nodiscard]] double mean_duration_s() const;
  [[nodiscard]] double total_contact_time_s() const;

 private:
  static std::uint64_t pair_key(util::NodeId a, util::NodeId b);

  std::unordered_map<std::uint64_t, util::SimTime> open_;
  std::vector<Contact> contacts_;
};

}  // namespace dtnic::net
