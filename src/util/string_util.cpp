#include "util/string_util.h"

#include <cctype>
#include <stdexcept>

namespace dtnic::util {

std::string trim(std::string_view s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return std::string(s.substr(begin, end - begin));
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

double parse_double(const std::string& s) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (trim(s.substr(pos)) != "") throw std::invalid_argument("trailing characters");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("not a number: '" + s + "'");
  }
}

long long parse_int(const std::string& s) {
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(s, &pos);
    if (trim(s.substr(pos)) != "") throw std::invalid_argument("trailing characters");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("not an integer: '" + s + "'");
  }
}

bool parse_bool(const std::string& s) {
  const std::string t = trim(s);
  if (t == "true" || t == "1" || t == "yes" || t == "on") return true;
  if (t == "false" || t == "0" || t == "no" || t == "off") return false;
  throw std::invalid_argument("not a boolean: '" + s + "'");
}

}  // namespace dtnic::util
