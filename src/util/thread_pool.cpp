#include "util/thread_pool.h"

#include <cstdlib>

namespace dtnic::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_thread_count();
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      // Drain the queue even when stopping: submitted futures stay valid.
      if (tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

void ThreadPool::co_run(std::size_t tasks, const std::function<void(std::size_t)>& fn) {
  if (tasks == 0) return;
  std::vector<std::future<void>> pending;
  pending.reserve(tasks - 1);
  for (std::size_t i = 1; i < tasks; ++i) {
    pending.push_back(submit([&fn, i] { fn(i); }));
  }
  std::exception_ptr first;
  try {
    fn(0);
  } catch (...) {
    first = std::current_exception();
  }
  // Wait for everything even on failure — the lambdas reference fn.
  for (auto& f : pending) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

std::size_t ThreadPool::default_thread_count() {
  if (const char* env = std::getenv("DTNIC_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      return static_cast<std::size_t>(parsed);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

namespace {
std::mutex g_shared_mutex;
std::unique_ptr<ThreadPool> g_shared_pool;
}  // namespace

ThreadPool& ThreadPool::shared() {
  std::lock_guard<std::mutex> lock(g_shared_mutex);
  if (!g_shared_pool) g_shared_pool = std::make_unique<ThreadPool>();
  return *g_shared_pool;
}

void ThreadPool::set_shared_threads(std::size_t threads) {
  auto replacement = std::make_unique<ThreadPool>(threads);
  std::lock_guard<std::mutex> lock(g_shared_mutex);
  g_shared_pool = std::move(replacement);
}

}  // namespace dtnic::util
