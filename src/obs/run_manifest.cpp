#include "obs/run_manifest.h"

#include <cstdio>

#include "util/num_format.h"

namespace dtnic::obs {

namespace {

/// Escape a string for a JSON value. Config values and git output are plain
/// ASCII in practice; quotes/backslashes/control bytes are covered anyway.
void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_string(std::string& out, const std::string& s) {
  out += '"';
  append_escaped(out, s);
  out += '"';
}

/// Emit `key = value` config lines as a JSON object of string values.
void append_config_object(std::string& out, const std::string& config_text) {
  out += '{';
  bool first = true;
  std::size_t pos = 0;
  while (pos < config_text.size()) {
    std::size_t end = config_text.find('\n', pos);
    if (end == std::string::npos) end = config_text.size();
    const std::string line = config_text.substr(pos, end - pos);
    pos = end + 1;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) continue;
    auto trim = [](std::string s) {
      const std::size_t b = s.find_first_not_of(" \t");
      const std::size_t e = s.find_last_not_of(" \t");
      return b == std::string::npos ? std::string() : s.substr(b, e - b + 1);
    };
    const std::string key = trim(line.substr(0, eq));
    if (key.empty() || key.front() == '#') continue;
    if (!first) out += ',';
    first = false;
    out += "\n    ";
    append_string(out, key);
    out += ": ";
    append_string(out, trim(line.substr(eq + 1)));
  }
  if (!first) out += "\n  ";
  out += '}';
}

void append_kv_object(std::string& out,
                      const std::vector<std::pair<std::string, double>>& pairs) {
  out += '{';
  bool first = true;
  for (const auto& [key, value] : pairs) {
    if (!first) out += ',';
    first = false;
    out += "\n    ";
    append_string(out, key);
    out += ": ";
    util::append_double(out, value);
  }
  if (!first) out += "\n  ";
  out += '}';
}

}  // namespace

void write_manifest(std::ostream& os, const RunManifest& manifest) {
  std::string out = "{\n  \"schema\": \"dtnic.manifest.v1\",\n  \"tool\": ";
  append_string(out, manifest.tool);
  out += ",\n  \"scheme\": ";
  append_string(out, manifest.scheme);
  out += ",\n  \"git\": ";
  append_string(out, manifest.git_revision.empty() ? "unknown" : manifest.git_revision);
  out += ",\n  \"seeds\": [";
  for (std::size_t i = 0; i < manifest.seeds.size(); ++i) {
    if (i > 0) out += ", ";
    util::append_u64(out, manifest.seeds[i]);
  }
  out += "],\n  \"config\": ";
  append_config_object(out, manifest.config_text);
  out += ",\n  \"metrics\": ";
  append_kv_object(out, manifest.metrics);
  out += ",\n  \"timings_ms\": ";
  append_kv_object(out, manifest.timings_ms);
  out += ",\n  \"artifacts\": {";
  bool first = true;
  for (const auto& [kind, path] : manifest.artifacts) {
    if (!first) out += ',';
    first = false;
    out += "\n    ";
    append_string(out, kind);
    out += ": ";
    append_string(out, path);
  }
  if (!first) out += "\n  ";
  out += '}';
  if (!manifest.artifact_errors.empty()) {
    out += ",\n  \"artifact_errors\": [";
    for (std::size_t i = 0; i < manifest.artifact_errors.size(); ++i) {
      if (i > 0) out += ',';
      out += "\n    ";
      append_string(out, manifest.artifact_errors[i]);
    }
    out += "\n  ]";
  }
  out += "\n}\n";
  os << out;
}

std::string git_describe() {
  std::string out;
#if !defined(_WIN32)
  if (FILE* pipe = popen("git describe --always --dirty --tags 2>/dev/null", "r");
      pipe != nullptr) {
    char buf[256];
    while (std::fgets(buf, sizeof(buf), pipe) != nullptr) out += buf;
    pclose(pipe);
  }
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) out.pop_back();
#endif
  return out.empty() ? "unknown" : out;
}

}  // namespace dtnic::obs
