#include "net/energy.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/assert.h"

namespace dtnic::net {

double FriisModel::path_loss(double distance_m, double wavelength_m) {
  DTNIC_REQUIRE_MSG(wavelength_m > 0.0, "wavelength must be positive");
  DTNIC_REQUIRE_MSG(distance_m >= 0.0, "distance must be non-negative");
  const double r = std::max(distance_m, wavelength_m);  // near-field floor
  const double ratio = 4.0 * std::numbers::pi * r / wavelength_m;
  return ratio * ratio;
}

double FriisModel::received_power(double tx_power_w, double distance_m, double wavelength_m) {
  DTNIC_REQUIRE_MSG(tx_power_w >= 0.0, "tx power must be non-negative");
  return tx_power_w / path_loss(distance_m, wavelength_m);
}

Battery::Battery(double capacity_j) : capacity_j_(capacity_j) {
  DTNIC_REQUIRE_MSG(capacity_j > 0.0, "battery capacity must be positive");
}

void Battery::reset(double capacity_j) {
  DTNIC_REQUIRE_MSG(capacity_j > 0.0, "battery capacity must be positive");
  capacity_j_ = capacity_j;
  consumed_j_ = 0.0;
}

void Battery::consume(double joules) {
  DTNIC_REQUIRE_MSG(joules >= 0.0, "cannot consume negative energy");
  consumed_j_ += joules;
}

void Battery::consume_tx(const RadioParams& radio, util::SimTime duration) {
  consume(radio.tx_power_w * duration.sec());
}

void Battery::consume_rx(const RadioParams& radio, util::SimTime duration) {
  consume(radio.rx_circuit_power_w * duration.sec());
}

double Battery::remaining_j() const { return std::max(0.0, capacity_j_ - consumed_j_); }

double Battery::level() const { return remaining_j() / capacity_j_; }

}  // namespace dtnic::net
