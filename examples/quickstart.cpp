/// Quickstart: the ICDCS 2017 demo (Paper II §5) reproduced in code.
///
/// Three devices A, B, C each start with 50 incentive tokens. A holds 40
/// annotated images B is interested in. When A meets B, B pays for each
/// delivery until its tokens run out — it then stops receiving. B later
/// meets C (same interests), earns tokens by delivering enriched copies,
/// and on the next encounter with A can afford the remaining messages.

#include <iostream>

#include "example_util.h"
#include "util/table.h"

int main() {
  using namespace dtnic;
  using util::SimTime;

  core::IncentiveParams incentive;
  incentive.initial_tokens = 50.0;  // the demo's allowance
  incentive.max_incentive = 4.0;    // pocket-scale I_m so ~20 messages are affordable
  core::DrmParams drm;
  drm.rating_noise_sd = 0.0;

  examples::PocketNetwork net(incentive, drm);

  core::BehaviorProfile enricher;
  enricher.enrich_probability = 1.0;  // B always enriches what it relays

  auto& a = net.add_device("A");
  auto& b = net.add_device("B", enricher);
  auto& c = net.add_device("C");

  // B and C share the same mission interests (as in the demo).
  b.subscribe({"recon", "convoy"}, SimTime::zero());
  c.subscribe({"recon", "convoy"}, SimTime::zero());

  // A captures 40 images of varying size/priority, annotated with keywords
  // (the app pre-fills them from a vision API; here they are given).
  for (int i = 0; i < 40; ++i) {
    const auto priority = i % 3 == 0 ? msg::Priority::kHigh : msg::Priority::kMedium;
    const auto size = (512 + 64 * (i % 8)) * std::uint64_t{1024};
    (void)a.annotate({i % 2 == 0 ? "recon" : "convoy", "sector-7"}, SimTime::zero(), size,
                     priority, 0.6 + 0.01 * (i % 40),
                     msg::GeoTag{37.9485 + 0.001 * i, -91.7715});  // capture location
  }
  std::cout << "A holds " << a.host().buffer().size() << " messages; everyone starts with "
            << a.tokens() << " tokens.\n\n";

  std::cout << "== A meets B ==\n";
  const int first_batch = net.contact(a, b, SimTime::minutes(1));
  std::cout << "B received " << first_batch << " messages; B has "
            << util::Table::cell(b.tokens(), 1) << " tokens left, A earned up to "
            << util::Table::cell(a.tokens(), 1) << ".\n";
  std::cout << "B's buffer: " << b.host().buffer().size()
            << " messages (the rest were refused: no tokens to offer).\n\n";

  std::cout << "== B meets C (B enriches in-transit content and earns) ==\n";
  const int to_c = net.contact(b, c, SimTime::minutes(30));
  std::cout << "C received " << to_c << " messages; B now has "
            << util::Table::cell(b.tokens(), 1) << " tokens, C has "
            << util::Table::cell(c.tokens(), 1) << ".\n";
  // Show one enriched message.
  for (const msg::Message* m : c.host().buffer().messages()) {
    const auto added = m->annotations_by(b.host().id());
    if (!added.empty()) {
      std::cout << "example: message " << m->id() << " was enriched by B with ";
      for (const auto& tag : added) std::cout << "'" << net.keywords.name(tag.keyword) << "' ";
      std::cout << "\n";
      break;
    }
  }
  std::cout << "\n== A meets B again ==\n";
  const int second_batch = net.contact(a, b, SimTime::hours(1));
  std::cout << "B received " << second_batch << " more messages now that it can pay; "
            << "B has " << util::Table::cell(b.tokens(), 1) << " tokens left.\n\n";

  const double total = a.tokens() + b.tokens() + c.tokens();
  std::cout << "token conservation: " << util::Table::cell(total, 1) << " == "
            << util::Table::cell(3 * incentive.initial_tokens, 1) << "\n";
  std::cout << "B's rating of A after rating the received content: "
            << util::Table::cell(b.rate_node(a.host().id()), 2) << " / 5\n";
  return 0;
}
