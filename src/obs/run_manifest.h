#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

/// \file run_manifest.h
/// Reproducibility manifest (`dtnic.manifest.v1`) emitted next to experiment
/// outputs: which binary produced them, from which configuration and seeds,
/// at which source revision, how long each phase took, and the headline
/// metrics. A downstream reader can re-run the exact experiment from the
/// manifest alone (the config echo round-trips through apply_config).
///
/// The writer is deliberately generic — metrics and timings are ordered
/// key/value lists — so the obs layer does not depend on scenario types and
/// any binary (examples, bench harness) can emit one.

namespace dtnic::obs {

struct RunManifest {
  std::string tool;    ///< producing binary, e.g. "run_scenario"
  std::string scheme;  ///< routing scheme under test
  std::vector<std::uint64_t> seeds;
  std::string git_revision;  ///< from git_describe(); "unknown" when absent
  /// Config echo as `key = value` lines (scenario::to_config_text output);
  /// emitted as a JSON object of string values.
  std::string config_text;
  std::vector<std::pair<std::string, double>> metrics;     ///< summary numbers
  std::vector<std::pair<std::string, double>> timings_ms;  ///< phase wall-clock
  /// Paths of sibling artifacts (trace, node stats), keyed by kind.
  std::vector<std::pair<std::string, std::string>> artifacts;
  /// Artifact write failures ("<artifact>: <what failed>"). Emitted as the
  /// "artifact_errors" array; non-empty means a sibling file is truncated
  /// and the manifest is the only trustworthy record of the run.
  std::vector<std::string> artifact_errors;
};

void write_manifest(std::ostream& os, const RunManifest& manifest);

/// `git describe --always --dirty --tags` of the working tree, or "unknown"
/// when git (or the repository) is unavailable.
[[nodiscard]] std::string git_describe();

}  // namespace dtnic::obs
