#include "scenario/config.h"

#include <cmath>
#include <stdexcept>

#include "scenario/router_factory.h"
#include "util/assert.h"

namespace dtnic::scenario {

const char* scheme_name(Scheme s) {
  // Single source of truth: the router registry row for the scheme.
  return router_spec(s).name;
}

void ScenarioConfig::validate() const {
  DTNIC_REQUIRE_MSG(num_nodes >= 2, "need at least two nodes");
  DTNIC_REQUIRE_MSG(keyword_pool_size >= 1, "keyword pool must be non-empty");
  DTNIC_REQUIRE_MSG(interests_per_node >= 1, "nodes need at least one interest");
  DTNIC_REQUIRE_MSG(interests_per_node <= keyword_pool_size,
                    "more interests per node than keywords in the pool");
  DTNIC_REQUIRE_MSG(area_side_m > 0.0, "area must be positive");
  DTNIC_REQUIRE_MSG(sim_hours > 0.0, "simulated time must be positive");
  DTNIC_REQUIRE_MSG(message_size_bytes > 0, "message size must be positive");
  DTNIC_REQUIRE_MSG(message_size_bytes <= buffer_capacity_bytes,
                    "a single message must fit in the buffer");
  DTNIC_REQUIRE_MSG(selfish_fraction >= 0.0 && selfish_fraction <= 1.0,
                    "selfish fraction in [0,1]");
  DTNIC_REQUIRE_MSG(malicious_fraction >= 0.0 && malicious_fraction <= 1.0,
                    "malicious fraction in [0,1]");
  DTNIC_REQUIRE_MSG(battery_conscious_fraction >= 0.0 && battery_conscious_fraction <= 1.0,
                    "battery-conscious fraction in [0,1]");
  DTNIC_REQUIRE_MSG(selfish_fraction + malicious_fraction + battery_conscious_fraction <= 1.0,
                    "behavior fractions exceed the population");
  DTNIC_REQUIRE_MSG(battery_capacity_j > 0.0, "battery capacity must be positive");
  DTNIC_REQUIRE_MSG(messages_per_node_per_hour > 0.0, "workload rate must be positive");
  DTNIC_REQUIRE_MSG(keywords_per_message >= 1, "messages need at least one keyword");
  DTNIC_REQUIRE_MSG(min_speed_mps > 0.0 && max_speed_mps >= min_speed_mps,
                    "speed range invalid");
  DTNIC_REQUIRE_MSG(scan_interval_s > 0.0, "scan interval must be positive");
  DTNIC_REQUIRE_MSG(shard_threads <= 256, "shard_threads out of range (0 = auto, max 256)");
  DTNIC_REQUIRE_MSG(exchange_threads <= 256,
                    "exchange_threads out of range (0 = auto, max 256)");
  DTNIC_REQUIRE_MSG(spray_copies >= 1, "spray copies must be >= 1");
  if (mobility == MobilityKind::kHotspot) {
    DTNIC_REQUIRE_MSG(hotspot_count >= 1, "hotspot mobility needs at least one hotspot");
    DTNIC_REQUIRE_MSG(hotspot_radius_m > 0.0, "hotspot radius must be positive");
    DTNIC_REQUIRE_MSG(hotspot_probability >= 0.0 && hotspot_probability <= 1.0,
                      "hotspot probability in [0,1]");
  }
  DTNIC_REQUIRE_MSG(drm.alpha > 0.5 && drm.alpha < 1.0, "DRM requires 0.5 < alpha < 1");
}

const char* mobility_name(MobilityKind k) {
  switch (k) {
    case MobilityKind::kRandomWaypoint: return "random-waypoint";
    case MobilityKind::kRandomWalk: return "random-walk";
    case MobilityKind::kHotspot: return "hotspot";
  }
  return "?";
}

ScenarioConfig ScenarioConfig::paper_defaults() { return ScenarioConfig{}; }

ScenarioConfig ScenarioConfig::scaled_defaults(std::size_t nodes, double hours) {
  ScenarioConfig cfg;
  cfg.num_nodes = nodes;
  cfg.sim_hours = hours;
  // Preserve Table 5.1's node density (500 nodes / 5 km² = 100 per km²).
  const double density_per_m2 = 500.0 / (2236.0 * 2236.0);
  cfg.area_side_m = std::sqrt(static_cast<double>(nodes) / density_per_m2);
  return cfg;
}

}  // namespace dtnic::scenario
