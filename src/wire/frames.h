#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <variant>
#include <vector>

#include "msg/keyword.h"
#include "msg/message.h"
#include "routing/types.h"
#include "util/sim_time.h"

/// \file frames.h
/// The dtnic live-overlay wire protocol, version 1. Every datagram is a
/// sequence of frames, each wrapped in a fixed 8-byte envelope:
///
///   offset 0  u16  magic  0xDC17
///   offset 2  u8   protocol version (1)
///   offset 3  u8   frame type
///   offset 4  u32  payload length in bytes
///   offset 8  payload (little-endian fields, see each frame struct)
///
/// All integers are little-endian; doubles travel as their IEEE-754 bit
/// pattern (util/bytes.h), so SimTime::never()'s infinity round-trips
/// exactly. Decoders are total: any truncation, bad magic, unknown version
/// or type, oversized length, or garbage tail inside the payload yields
/// std::nullopt — never UB, never a partial struct.
///
/// Compatibility gating: keyword ids are 32-bit interned indices that are
/// only meaningful against an agreed keyword pool. HELLO therefore carries
/// an FNV-1a hash of the sender's full keyword table; nodes ignore peers
/// whose hash differs (see DESIGN.md "Live overlay").

namespace dtnic::wire {

inline constexpr std::uint16_t kMagic = 0xDC17;
inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::size_t kHeaderSize = 8;
/// Hard payload cap: a frame always fits one UDP datagram with headroom.
inline constexpr std::size_t kMaxFramePayload = 60 * 1024;

enum class FrameType : std::uint8_t {
  kHello = 1,           ///< presence + compatibility (rank, pool hash)
  kBye = 2,             ///< graceful link teardown
  kInterestDigest = 3,  ///< ChitChat interest-table snapshot
  kRatingGossip = 4,    ///< DRM second-hand reputation exchange
  kOffer = 5,           ///< transfer offer with message skeleton + economics
  kOfferReply = 6,      ///< accept / refuse an offer
  kData = 7,            ///< one chunk of a serialized message copy
  kReceipt = 8,         ///< token settlement after a completed transfer
};

/// Presence beacon, sent on discovery and every keepalive interval.
struct HelloFrame {
  routing::NodeId node;
  std::uint16_t proto = kProtocolVersion;  ///< negotiation: min(mine, peer's)
  std::int32_t rank = 0;                   ///< hardware rank R_v (Table 3.1)
  std::uint64_t keyword_pool_hash = 0;
  friend bool operator==(const HelloFrame&, const HelloFrame&) = default;
};

struct ByeFrame {
  routing::NodeId node;
  friend bool operator==(const ByeFrame&, const ByeFrame&) = default;
};

/// One interest-table slot (routing/chitchat/interest_table.h entry).
struct InterestEntry {
  msg::KeywordId keyword;
  double weight = 0.0;
  bool direct = false;
  friend bool operator==(const InterestEntry&, const InterestEntry&) = default;
};

struct InterestDigestFrame {
  routing::NodeId node;
  std::vector<InterestEntry> entries;
  friend bool operator==(const InterestDigestFrame&, const InterestDigestFrame&) = default;
};

struct RatingEntry {
  routing::NodeId node;
  double rating = 0.0;  ///< 0..5 DRM scale
  friend bool operator==(const RatingEntry&, const RatingEntry&) = default;
};

struct RatingGossipFrame {
  routing::NodeId node;
  std::vector<RatingEntry> entries;
  friend bool operator==(const RatingGossipFrame&, const RatingGossipFrame&) = default;
};

/// A transfer offer: the message skeleton (enough for the receiver's
/// accept() gate — duplicate check, buffer admission, affordability) plus
/// the incentive economics of the ForwardPlan.
struct OfferFrame {
  msg::MessageId message;
  routing::NodeId source;
  util::SimTime created_at = util::SimTime::zero();
  std::uint64_t size_bytes = 0;
  msg::Priority priority = msg::Priority::kMedium;
  double quality = 1.0;
  routing::TransferRole role = routing::TransferRole::kRelay;
  double promise = 0.0;
  double prepay = 0.0;
  friend bool operator==(const OfferFrame&, const OfferFrame&) = default;
};

struct OfferReplyFrame {
  msg::MessageId message;
  routing::AcceptDecision decision = routing::AcceptDecision::kRefused;
  friend bool operator==(const OfferReplyFrame&, const OfferReplyFrame&) = default;
};

/// One chunk of an encoded message copy (encode_message below). Chunk size
/// is the transport's choice (LiveNode paces them by RadioParams.bitrate);
/// reassembly is in-order by index, `chunk_count` fixed for the transfer.
struct DataFrame {
  msg::MessageId message;
  std::uint32_t chunk_index = 0;
  std::uint32_t chunk_count = 1;
  std::vector<std::uint8_t> payload;
  friend bool operator==(const DataFrame&, const DataFrame&) = default;
};

/// Token settlement: receiver -> sender after storing a copy (the live
/// counterpart of TokenLedger::pay inside on_received).
struct ReceiptFrame {
  msg::MessageId message;
  routing::TransferRole role = routing::TransferRole::kRelay;
  double amount = 0.0;
  friend bool operator==(const ReceiptFrame&, const ReceiptFrame&) = default;
};

using Frame = std::variant<HelloFrame, ByeFrame, InterestDigestFrame, RatingGossipFrame,
                           OfferFrame, OfferReplyFrame, DataFrame, ReceiptFrame>;

[[nodiscard]] FrameType frame_type(const Frame& f);

/// Append \p f (envelope + payload) to \p out. Returns the encoded size.
std::size_t encode_frame(const Frame& f, std::vector<std::uint8_t>& out);

/// A successfully decoded frame plus how many input bytes it consumed
/// (datagrams may carry several frames back to back).
struct DecodedFrame {
  Frame frame;
  std::size_t consumed = 0;
};

/// Decode the frame starting at \p bytes[0]. nullopt on bad magic/version/
/// type, truncated input, length beyond kMaxFramePayload, or a payload whose
/// fields do not consume exactly `length` bytes (garbage tail).
[[nodiscard]] std::optional<DecodedFrame> decode_frame(std::span<const std::uint8_t> bytes);

/// --- full message codec (DATA payload) -----------------------------------

/// Serialize a complete message copy: shared core (identity, payload
/// metadata, ground-truth keywords, multimedia attributes), TTL, and the
/// per-copy annotation / hop / path-rating state.
[[nodiscard]] std::vector<std::uint8_t> encode_message(const msg::Message& m);

/// nullopt on truncation, invalid priority, or garbage tail.
[[nodiscard]] std::optional<msg::Message> decode_message(std::span<const std::uint8_t> bytes);

/// FNV-1a over the interned keyword names (id order, NUL separated): two
/// nodes agree on every KeywordId wire value iff their hashes match.
[[nodiscard]] std::uint64_t keyword_pool_hash(const msg::KeywordTable& table);

}  // namespace dtnic::wire
