#include <gtest/gtest.h>

#include "mobility/hotspot.h"
#include "scenario/config_io.h"
#include "scenario/experiment.h"
#include "scenario/scenario.h"
#include "util/summary.h"

/// Tests for the extension features: Jain fairness, battery-conscious
/// behavior, and hotspot mobility.

namespace dtnic {
namespace {

using util::SimTime;
using util::Vec2;

// --- jain_fairness ---------------------------------------------------------------

TEST(JainFairness, EqualAllocationsArePerfectlyFair) {
  EXPECT_DOUBLE_EQ(util::jain_fairness({5, 5, 5, 5}), 1.0);
  EXPECT_DOUBLE_EQ(util::jain_fairness({1}), 1.0);
}

TEST(JainFairness, MonopolyIsOneOverN) {
  EXPECT_DOUBLE_EQ(util::jain_fairness({10, 0, 0, 0}), 0.25);
}

TEST(JainFairness, KnownMixedValue) {
  // (1+2+3)^2 / (3 * (1+4+9)) = 36/42.
  EXPECT_NEAR(util::jain_fairness({1, 2, 3}), 36.0 / 42.0, 1e-12);
}

TEST(JainFairness, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(util::jain_fairness({}), 1.0);
  EXPECT_DOUBLE_EQ(util::jain_fairness({0, 0}), 1.0);
  EXPECT_THROW((void)util::jain_fairness({-1, 2}), std::invalid_argument);
}

TEST(JainFairness, BoundedByOneOverNAndOne) {
  util::Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> v;
    const auto n = static_cast<std::size_t>(rng.range(1, 20));
    for (std::size_t i = 0; i < n; ++i) v.push_back(rng.uniform(0.0, 100.0));
    const double f = util::jain_fairness(v);
    ASSERT_GE(f, 1.0 / static_cast<double>(n) - 1e-12);
    ASSERT_LE(f, 1.0 + 1e-12);
  }
}

// --- HotspotMobility ----------------------------------------------------------------

TEST(HotspotMobility, StaysInAreaAndRespectsSpeed) {
  mobility::HotspotParams params;
  params.area = {1000, 1000};
  util::Rng gen(1);
  params.hotspots = mobility::HotspotMobility::generate_hotspots(params.area, 3, gen);
  mobility::HotspotMobility m(params, util::Rng(2));
  Vec2 prev = m.position_at(SimTime::zero());
  for (int i = 1; i < 2000; ++i) {
    const Vec2 cur = m.position_at(SimTime::seconds(i * 1.0));
    ASSERT_TRUE(params.area.contains(cur));
    ASSERT_LE(util::distance(prev, cur), params.max_speed_mps * 1.0001);
    prev = cur;
  }
}

TEST(HotspotMobility, ConcentratesNearHotspots) {
  mobility::HotspotParams params;
  params.area = {2000, 2000};
  params.hotspots = {{500, 500}, {1500, 1500}};
  params.hotspot_radius_m = 100.0;
  params.hotspot_probability = 1.0;  // always target a hotspot
  params.max_pause_s = 0.0;
  mobility::HotspotMobility m(params, util::Rng(7));
  // Sample positions over a long run; most should sit within ~2x the radius
  // of some hotspot (travel legs pass through open space).
  int near = 0;
  const int samples = 2000;
  for (int i = 0; i < samples; ++i) {
    const Vec2 p = m.position_at(SimTime::seconds(i * 30.0));
    for (const Vec2& h : params.hotspots) {
      if (util::distance(p, h) <= 2.0 * params.hotspot_radius_m) {
        ++near;
        break;
      }
    }
  }
  EXPECT_GT(near, samples / 4);  // far above the ~6% a uniform walk would give
}

TEST(HotspotMobility, RequiresValidSetup) {
  mobility::HotspotParams params;
  params.area = {100, 100};
  EXPECT_THROW(mobility::HotspotMobility(params, util::Rng(1)), std::invalid_argument);
  params.hotspots = {{500, 500}};  // outside the area
  EXPECT_THROW(mobility::HotspotMobility(params, util::Rng(1)), std::invalid_argument);
}

TEST(HotspotMobility, GenerateHotspotsInsideArea) {
  util::Rng rng(5);
  const mobility::Area area{300, 700};
  const auto spots = mobility::HotspotMobility::generate_hotspots(area, 10, rng);
  ASSERT_EQ(spots.size(), 10u);
  for (const Vec2& s : spots) EXPECT_TRUE(area.contains(s));
}

// --- scenario integration -------------------------------------------------------------

TEST(MobilityKinds, AllRunEndToEnd) {
  for (const auto kind : {scenario::MobilityKind::kRandomWaypoint,
                          scenario::MobilityKind::kRandomWalk,
                          scenario::MobilityKind::kHotspot}) {
    scenario::ScenarioConfig cfg = scenario::ScenarioConfig::scaled_defaults(30, 1.0);
    cfg.mobility = kind;
    cfg.seed = 4;
    const auto r = scenario::ExperimentRunner::run_once(cfg);
    EXPECT_GT(r.contacts, 0u) << scenario::mobility_name(kind);
    EXPECT_GT(r.created, 0u);
  }
}

TEST(MobilityKinds, ConfigIoRoundTrip) {
  scenario::ScenarioConfig cfg = scenario::ScenarioConfig::scaled_defaults(30, 1.0);
  cfg.mobility = scenario::MobilityKind::kHotspot;
  cfg.hotspot_count = 7;
  const auto back = scenario::apply_config(scenario::ScenarioConfig::paper_defaults(),
                                           util::Config::parse(to_config_text(cfg)));
  EXPECT_EQ(back.mobility, scenario::MobilityKind::kHotspot);
  EXPECT_EQ(back.hotspot_count, 7u);
  EXPECT_THROW((void)scenario::apply_config(scenario::ScenarioConfig::paper_defaults(),
                                            util::Config::parse("mobility = levy\n")),
               std::invalid_argument);
}

TEST(BatteryConscious, SmallBatteriesSuppressEncounters) {
  scenario::ScenarioConfig cfg = scenario::ScenarioConfig::scaled_defaults(40, 2.0);
  cfg.battery_conscious_fraction = 0.5;
  cfg.messages_per_node_per_hour = 1.0;
  cfg.seed = 6;

  cfg.battery_capacity_j = 20000.0;  // never binds
  const auto charged = scenario::ExperimentRunner::run_once(cfg);
  cfg.battery_capacity_j = 30.0;  // drains within the run
  const auto drained = scenario::ExperimentRunner::run_once(cfg);

  EXPECT_EQ(charged.contacts_suppressed, 0u);
  EXPECT_GT(drained.contacts_suppressed, 0u);
  EXPECT_LE(drained.total_energy_j, charged.total_energy_j);
}

TEST(BatteryConscious, FractionValidation) {
  scenario::ScenarioConfig cfg = scenario::ScenarioConfig::paper_defaults();
  cfg.selfish_fraction = 0.5;
  cfg.malicious_fraction = 0.3;
  cfg.battery_conscious_fraction = 0.3;  // sums to 1.1
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(TokenFairness, ReportedInUnitInterval) {
  scenario::ScenarioConfig cfg = scenario::ScenarioConfig::scaled_defaults(30, 1.5);
  cfg.incentive.initial_tokens = 10.0;
  cfg.seed = 8;
  const auto r = scenario::ExperimentRunner::run_once(cfg);
  EXPECT_GT(r.token_fairness, 0.0);
  EXPECT_LE(r.token_fairness, 1.0);
  // Payments spread tokens unevenly: fairness below perfect but not absurd.
  EXPECT_LT(r.token_fairness, 1.0);
}

}  // namespace
}  // namespace dtnic
