/// Ablation: the relay pre-payment threshold (Table 5.1's 0.8). A receiving
/// relay whose mean tag weight exceeds the threshold pre-pays a fraction of
/// the promise. Lower thresholds move tokens toward upstream carriers more
/// often; a threshold above 1.0 disables pre-payment entirely.

#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace dtnic;
  util::Cli cli;
  const bench::BenchScale scale = bench::resolve_scale(cli, argc, argv, argv[0]);
  bench::print_header("Ablation: relay pre-payment threshold sweep", scale);

  const scenario::SweepRunner sweep(scale.seeds);

  std::vector<scenario::ScenarioConfig> points;
  for (const double threshold : {0.5, 0.7, 0.8, 0.9, 1.01}) {
    scenario::ScenarioConfig cfg = bench::base_config(scale);
    cfg.incentive.relay_threshold = threshold;
    cfg.selfish_fraction = 0.2;
    cfg.scheme = scenario::Scheme::kIncentive;
    points.push_back(cfg);
  }
  const auto results = sweep.run_all(points);

  util::Table table({"threshold", "MDR", "payments", "tokens paid", "traffic"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    const double threshold = points[i].incentive.relay_threshold;
    const auto& agg = results[i];
    double payments = 0.0, paid = 0.0;
    for (const auto& r : agg.raw) {
      payments += static_cast<double>(r.payments);
      paid += r.tokens_paid;
    }
    payments /= static_cast<double>(agg.raw.size());
    paid /= static_cast<double>(agg.raw.size());
    table.add_row({util::Table::cell(threshold, 2), util::Table::cell(agg.mdr.mean(), 3),
                   util::Table::cell(payments, 1), util::Table::cell(paid, 1),
                   util::Table::cell(agg.traffic.mean(), 0)});
  }
  table.print(std::cout);
  std::cout << "\nexpected: lower thresholds trigger more (pre-)payments; >1.0 disables\n"
               "pre-payment. Delivery is largely insensitive (it is a token-flow knob).\n";
  return 0;
}
