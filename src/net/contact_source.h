#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/ids.h"

/// \file contact_source.h
/// Where contacts come from. The mobility-driven ConnectivityManager and the
/// trace-driven ScriptedConnectivity both feed the contact controller
/// through this interface, so experiments can run on synthetic mobility or
/// on recorded contact traces interchangeably.

namespace dtnic::net {

class ContactSource {
 public:
  using LinkUpFn = std::function<void(util::NodeId, util::NodeId, double distance_m)>;
  using LinkDownFn = std::function<void(util::NodeId, util::NodeId)>;
  /// Per-encounter participation; return false to suppress the contact.
  using ParticipationGate = std::function<bool(util::NodeId)>;

  virtual ~ContactSource() = default;

  virtual void on_link_up(LinkUpFn fn) = 0;
  virtual void on_link_down(LinkDownFn fn) = 0;
  virtual void set_participation_gate(ParticipationGate gate) = 0;

  /// Begin producing contact events on the simulator clock.
  virtual void start() = 0;

  [[nodiscard]] virtual std::vector<util::NodeId> neighbors_of(util::NodeId id) const = 0;
  [[nodiscard]] virtual std::vector<std::pair<util::NodeId, util::NodeId>> connected_pairs()
      const = 0;
  [[nodiscard]] virtual std::uint64_t contacts_formed() const = 0;
  [[nodiscard]] virtual std::uint64_t contacts_suppressed() const = 0;
};

}  // namespace dtnic::net
