#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/assert.h"

namespace dtnic::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  DTNIC_REQUIRE(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  DTNIC_REQUIRE_MSG(cells.size() == headers_.size(), "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::cell(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string Table::cell(std::size_t value) { return std::to_string(value); }
std::string Table::cell(long long value) { return std::to_string(value); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << " " << std::left << std::setw(static_cast<int>(widths[c])) << row[c] << " |";
    }
    os << "\n";
  };

  print_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += "\"\"";
      else out += ch;
    }
    out += "\"";
    return out;
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ",";
      os << escape(row[c]);
    }
    os << "\n";
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace dtnic::util
