#include "util/config.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/string_util.h"

namespace dtnic::util {

Config Config::parse(const std::string& text) {
  Config cfg;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    for (const std::string& piece : split(line, ';')) {
      const std::string entry = trim(piece);
      if (entry.empty()) continue;
      const auto eq = entry.find('=');
      if (eq == std::string::npos) {
        throw std::invalid_argument("config line " + std::to_string(line_no) +
                                    ": expected 'key = value', got '" + entry + "'");
      }
      const std::string key = trim(entry.substr(0, eq));
      const std::string value = trim(entry.substr(eq + 1));
      if (key.empty()) {
        throw std::invalid_argument("config line " + std::to_string(line_no) + ": empty key");
      }
      cfg.set(key, value, line_no);
    }
  }
  return cfg;
}

Config Config::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open config file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

void Config::set(const std::string& key, const std::string& value, int line) {
  values_[key] = value;
  if (line > 0) {
    lines_[key] = line;
  } else {
    lines_.erase(key);  // the latest (programmatic) source wins
  }
}

int Config::line_of(const std::string& key) const {
  const auto it = lines_.find(key);
  return it == lines_.end() ? 0 : it->second;
}

bool Config::has(const std::string& key) const { return values_.count(key) > 0; }

std::optional<std::string> Config::get(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_string(const std::string& key, const std::string& dflt) const {
  return get(key).value_or(dflt);
}

double Config::get_double(const std::string& key, double dflt) const {
  auto v = get(key);
  return v ? parse_double(*v) : dflt;
}

long long Config::get_int(const std::string& key, long long dflt) const {
  auto v = get(key);
  return v ? parse_int(*v) : dflt;
}

bool Config::get_bool(const std::string& key, bool dflt) const {
  auto v = get(key);
  return v ? parse_bool(*v) : dflt;
}

void Config::merge(const Config& other) {
  for (const auto& [k, v] : other.values_) set(k, v, other.line_of(k));
}

}  // namespace dtnic::util
