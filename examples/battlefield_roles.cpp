/// Battlefield deployment (the paper's running example for roles): a
/// sergeant (rank 1) forwards a high-priority order to a soldier (rank 2)
/// who currently has no interest strength for it — Algorithm 3's special
/// case promises the maximum incentive so the order still propagates. Then
/// a priority workload shows high-priority traffic winning under selfish
/// load, as in Fig. 5.6.

#include <iostream>

#include "example_util.h"
#include "scenario/experiment.h"
#include "util/table.h"

int main() {
  using namespace dtnic;
  using util::SimTime;

  // --- Part 1: the rank special case, hand-driven ---------------------------
  examples::PocketNetwork net;
  auto& sergeant = net.add_device("sergeant");
  auto& soldier = net.add_device("soldier");
  sergeant.host().set_rank(1);
  soldier.host().set_rank(2);

  const auto& order = sergeant.annotate({"advance", "grid-e5"}, SimTime::zero(),
                                        512 * 1024, msg::Priority::kHigh, 0.95);
  const auto& memo = sergeant.annotate({"laundry-rota"}, SimTime::zero(), 512 * 1024,
                                       msg::Priority::kLow, 0.4);

  std::cout << "== Rank-aware promises (Algorithm 3 special case) ==\n";
  std::cout << "high-priority order -> soldier with no matching interests: promise = "
            << util::Table::cell(sergeant.compute_incentive(order, soldier.host()), 2)
            << " tokens (the maximum I_m = "
            << util::Table::cell(net.world.incentive.max_incentive, 2) << ")\n";
  std::cout << "low-priority memo  -> same soldier:                      promise = "
            << util::Table::cell(sergeant.compute_incentive(memo, soldier.host()), 2)
            << " tokens\n\n";

  // --- Part 2: priority-segmented delivery under selfish load ----------------
  std::cout << "== Company-scale run: 50% high / 30% medium / 20% low sources, 30% selfish ==\n";
  scenario::ScenarioConfig cfg = scenario::ScenarioConfig::scaled_defaults(80, 3.0);
  cfg.scheme = scenario::Scheme::kIncentive;
  cfg.priority_workload = true;
  cfg.selfish_fraction = 0.3;
  cfg.officer_fraction = 0.1;
  cfg.messages_per_node_per_hour = 0.8;
  cfg.incentive.initial_tokens = 10.0;  // volume-scaled allowance
  cfg.seed = 7;

  const auto incentive = scenario::ExperimentRunner::run_once(cfg);
  cfg.scheme = scenario::Scheme::kChitChat;
  const auto chitchat = scenario::ExperimentRunner::run_once(cfg);

  util::Table table({"priority", "created", "incentive MDR", "chitchat MDR"});
  table.add_row({"high", util::Table::cell(incentive.created_high),
                 util::Table::cell(incentive.mdr_high, 3),
                 util::Table::cell(chitchat.mdr_high, 3)});
  table.add_row({"medium", util::Table::cell(incentive.created_medium),
                 util::Table::cell(incentive.mdr_medium, 3),
                 util::Table::cell(chitchat.mdr_medium, 3)});
  table.add_row({"low", util::Table::cell(incentive.created_low),
                 util::Table::cell(incentive.mdr_low, 3),
                 util::Table::cell(chitchat.mdr_low, 3)});
  table.print(std::cout);
  std::cout << "\nexpected: the incentive scheme concentrates its (token-limited) delivery\n"
               "capacity on high-priority traffic (Fig. 5.6's story).\n";
  return 0;
}
