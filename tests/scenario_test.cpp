#include <gtest/gtest.h>

#include <set>

#include "scenario/experiment.h"
#include "scenario/scenario.h"

namespace dtnic::scenario {
namespace {

/// Compact configuration: ~40 nodes for 1.5 simulated hours runs in well
/// under a second, yet produces hundreds of contacts and transfers.
ScenarioConfig small(Scheme scheme, std::uint64_t seed = 1) {
  ScenarioConfig cfg = ScenarioConfig::scaled_defaults(40, 1.5);
  cfg.scheme = scheme;
  cfg.seed = seed;
  cfg.messages_per_node_per_hour = 0.6;
  return cfg;
}

TEST(ScenarioConfig, PaperDefaultsMatchTable51) {
  const auto cfg = ScenarioConfig::paper_defaults();
  EXPECT_EQ(cfg.num_nodes, 500u);
  EXPECT_EQ(cfg.keyword_pool_size, 200u);
  EXPECT_EQ(cfg.interests_per_node, 20u);
  EXPECT_DOUBLE_EQ(cfg.radio.bitrate_bps, 250000.0);
  EXPECT_DOUBLE_EQ(cfg.radio.range_m, 100.0);
  EXPECT_EQ(cfg.buffer_capacity_bytes, 250ull * 1024 * 1024);
  EXPECT_EQ(cfg.message_size_bytes, 1024ull * 1024);
  EXPECT_NEAR(cfg.area_side_m * cfg.area_side_m, 5.0e6, 0.01e6);  // 5 km²
  EXPECT_DOUBLE_EQ(cfg.sim_hours, 24.0);
  EXPECT_DOUBLE_EQ(cfg.incentive.relay_threshold, 0.8);
  EXPECT_DOUBLE_EQ(cfg.incentive.initial_tokens, 200.0);
  EXPECT_NO_THROW(cfg.validate());
}

TEST(ScenarioConfig, ScaledDefaultsPreserveDensity) {
  const auto paper = ScenarioConfig::paper_defaults();
  const auto scaled = ScenarioConfig::scaled_defaults(125, 6.0);
  const double paper_density =
      static_cast<double>(paper.num_nodes) / (paper.area_side_m * paper.area_side_m);
  const double scaled_density =
      static_cast<double>(scaled.num_nodes) / (scaled.area_side_m * scaled.area_side_m);
  EXPECT_NEAR(scaled_density / paper_density, 1.0, 1e-6);
}

TEST(ScenarioConfig, ValidationCatchesNonsense) {
  auto cfg = ScenarioConfig::paper_defaults();
  cfg.selfish_fraction = 1.2;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = ScenarioConfig::paper_defaults();
  cfg.selfish_fraction = 0.7;
  cfg.malicious_fraction = 0.7;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = ScenarioConfig::paper_defaults();
  cfg.interests_per_node = 500;  // > pool
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = ScenarioConfig::paper_defaults();
  cfg.message_size_bytes = cfg.buffer_capacity_bytes + 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = ScenarioConfig::paper_defaults();
  cfg.drm.alpha = 0.4;  // paper requires alpha > 0.5
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(SchemeNames, AllNamed) {
  EXPECT_STREQ(scheme_name(Scheme::kIncentive), "incentive");
  EXPECT_STREQ(scheme_name(Scheme::kChitChat), "chitchat");
  EXPECT_STREQ(scheme_name(Scheme::kEpidemic), "epidemic");
  EXPECT_STREQ(scheme_name(Scheme::kDirectDelivery), "direct");
  EXPECT_STREQ(scheme_name(Scheme::kSprayAndWait), "spray-and-wait");
  EXPECT_STREQ(scheme_name(Scheme::kFirstContact), "first-contact");
}

TEST(Scenario, RunsAndDeliversMessages) {
  Scenario s(small(Scheme::kIncentive));
  const RunResult r = s.run();
  EXPECT_GT(r.created, 10u);
  EXPECT_GT(r.delivered, 0u);
  EXPECT_GT(r.mdr, 0.0);
  EXPECT_LE(r.mdr, 1.0);
  EXPECT_GT(r.traffic, r.delivered);
  EXPECT_GT(r.contacts, 0u);
}

TEST(Scenario, DeterministicForSameSeed) {
  const RunResult a = ExperimentRunner::run_once(small(Scheme::kIncentive, 42));
  const RunResult b = ExperimentRunner::run_once(small(Scheme::kIncentive, 42));
  EXPECT_EQ(a.created, b.created);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.traffic, b.traffic);
  EXPECT_EQ(a.contacts, b.contacts);
  EXPECT_DOUBLE_EQ(a.tokens_paid, b.tokens_paid);
  EXPECT_DOUBLE_EQ(a.avg_final_tokens, b.avg_final_tokens);
}

TEST(Scenario, DifferentSeedsDiffer) {
  const RunResult a = ExperimentRunner::run_once(small(Scheme::kIncentive, 1));
  const RunResult b = ExperimentRunner::run_once(small(Scheme::kIncentive, 2));
  // Virtually impossible to coincide exactly on all of these.
  EXPECT_TRUE(a.traffic != b.traffic || a.contacts != b.contacts ||
              a.created != b.created);
}

TEST(Scenario, TokenConservationInvariant) {
  auto cfg = small(Scheme::kIncentive, 3);
  cfg.selfish_fraction = 0.2;
  cfg.malicious_fraction = 0.1;
  Scenario s(cfg);
  const RunResult r = s.run();
  const double expected =
      static_cast<double>(cfg.num_nodes) * cfg.incentive.initial_tokens;
  EXPECT_NEAR(r.total_tokens, expected, 1e-6);
  EXPECT_NEAR(s.total_tokens(), expected, 1e-6);
  EXPECT_GT(r.tokens_paid, 0.0);
}

TEST(Scenario, NonIncentiveSchemesPayNothing) {
  const RunResult r = ExperimentRunner::run_once(small(Scheme::kChitChat));
  EXPECT_DOUBLE_EQ(r.tokens_paid, 0.0);
  EXPECT_EQ(r.payments, 0u);
  EXPECT_EQ(r.refused_no_tokens, 0u);
}

TEST(Scenario, EpidemicDominatesDirectDelivery) {
  const RunResult epi = ExperimentRunner::run_once(small(Scheme::kEpidemic, 5));
  const RunResult direct = ExperimentRunner::run_once(small(Scheme::kDirectDelivery, 5));
  EXPECT_GE(epi.mdr, direct.mdr);
  EXPECT_GT(epi.traffic, direct.traffic);
}

TEST(Scenario, SelfishNodesSuppressContacts) {
  auto honest = small(Scheme::kIncentive, 7);
  auto selfish = honest;
  selfish.selfish_fraction = 0.5;
  const RunResult r_honest = ExperimentRunner::run_once(honest);
  const RunResult r_selfish = ExperimentRunner::run_once(selfish);
  EXPECT_EQ(r_honest.contacts_suppressed, 0u);
  EXPECT_GT(r_selfish.contacts_suppressed, 0u);
  EXPECT_LT(r_selfish.contacts, r_honest.contacts);
  EXPECT_LE(r_selfish.mdr, r_honest.mdr);
}

TEST(Scenario, MaliciousNodesGetRecognized) {
  auto cfg = small(Scheme::kIncentive, 11);
  cfg.malicious_fraction = 0.2;
  Scenario s(cfg);
  const RunResult r = s.run();
  ASSERT_GE(r.malicious_rating.size(), 2u);
  // Ratings start at the default and fall as the DRM detects tag pollution.
  EXPECT_DOUBLE_EQ(r.malicious_rating.first_value(), cfg.drm.default_rating);
  EXPECT_LT(r.malicious_rating.last_value(), cfg.drm.default_rating - 1.0);
}

TEST(Scenario, SampledSeriesMonotoneTime) {
  auto cfg = small(Scheme::kIncentive, 13);
  cfg.malicious_fraction = 0.1;
  Scenario s(cfg);
  const RunResult r = s.run();
  const auto& samples = r.malicious_rating.samples();
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].time, samples[i - 1].time);
  }
  EXPECT_FALSE(r.mean_tokens.empty());
}

TEST(Scenario, PriorityWorkloadSegmentsDeliveries) {
  auto cfg = small(Scheme::kIncentive, 17);
  cfg.priority_workload = true;
  cfg.messages_per_node_per_hour = 1.0;
  const RunResult r = ExperimentRunner::run_once(cfg);
  EXPECT_GT(r.created_high, 0u);
  EXPECT_GT(r.created_medium, 0u);
  EXPECT_GT(r.created_low, 0u);
  // Roughly 50/30/20 split of sources.
  EXPECT_GT(r.created_high, r.created_low);
}

TEST(Scenario, TtlExpiryDropsMessages) {
  auto cfg = small(Scheme::kEpidemic, 19);
  cfg.ttl_hours = 0.05;  // 3 minutes: most copies expire
  cfg.ttl_sweep_interval_s = 60.0;
  const RunResult r = ExperimentRunner::run_once(cfg);
  EXPECT_GT(r.dropped_ttl, 0u);
}

TEST(Scenario, HostAccessorsAndBehaviors) {
  auto cfg = small(Scheme::kIncentive, 23);
  cfg.selfish_fraction = 0.25;
  Scenario s(cfg);
  EXPECT_EQ(s.node_count(), cfg.num_nodes);
  std::size_t selfish = 0;
  for (std::size_t i = 0; i < s.node_count(); ++i) {
    const auto id = util::NodeId(static_cast<util::NodeId::underlying>(i));
    EXPECT_EQ(s.host(id).id(), id);
    if (s.behavior_of(id).selfish()) ++selfish;
  }
  EXPECT_EQ(selfish, 10u);  // 25% of 40
  EXPECT_THROW((void)s.host(util::NodeId(999)), std::invalid_argument);
}

TEST(Scenario, EnergyAccountingPositive) {
  const RunResult r = ExperimentRunner::run_once(small(Scheme::kIncentive, 29));
  EXPECT_GT(r.total_energy_j, 0.0);
}

// --- ExperimentRunner -----------------------------------------------------------------

TEST(ExperimentRunner, AggregatesAcrossSeeds) {
  ExperimentRunner runner(3, 100);
  const AggregateResult agg = runner.run(small(Scheme::kIncentive));
  EXPECT_EQ(agg.runs, 3u);
  EXPECT_EQ(agg.raw.size(), 3u);
  EXPECT_EQ(agg.mdr.count(), 3u);
  EXPECT_GT(agg.mdr.mean(), 0.0);
  EXPECT_EQ(agg.raw[0].seed, 100u);
  EXPECT_EQ(agg.raw[2].seed, 102u);
  EXPECT_EQ(agg.scheme, "incentive");
}

TEST(ExperimentRunner, MeanSeriesCoversUnionOfSampleTimes) {
  ExperimentRunner runner(2, 1);
  auto cfg = small(Scheme::kIncentive);
  cfg.malicious_fraction = 0.1;
  const AggregateResult agg = runner.run(cfg);
  const auto series = ExperimentRunner::mean_series(agg.raw);
  ASSERT_FALSE(series.empty());
  // The grid is the sorted union of every run's sample times (deduplicated),
  // so no run's samples can outnumber it and every run's times appear.
  std::set<double> union_times;
  for (const RunResult& r : agg.raw) {
    for (const auto& s : r.malicious_rating.samples()) union_times.insert(s.time.sec());
  }
  EXPECT_EQ(series.size(), union_times.size());
  double prev = -1.0;
  for (const auto& [t, v] : series) {
    EXPECT_TRUE(union_times.count(t));
    EXPECT_GT(t, prev);  // strictly increasing grid
    prev = t;
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 5.0);
  }
}

TEST(ExperimentRunner, ZeroSeedsRejected) {
  EXPECT_THROW(ExperimentRunner(0), std::invalid_argument);
}

}  // namespace
}  // namespace dtnic::scenario
