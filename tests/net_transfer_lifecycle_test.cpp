#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/transfer.h"
#include "sim/simulator.h"

/// Link lifecycle edge cases for TransferManager (PR 6 satellite): duplicate
/// link_up must not reset an in-flight transfer, duplicate link_down must
/// not double-abort or disturb abort accounting, and a manager destroyed
/// with transfers still in flight must cancel its completion events instead
/// of leaving them to fire into freed memory.

namespace dtnic::net {
namespace {

using util::MessageId;
using util::NodeId;
using util::SimTime;

class TransferLifecycle : public ::testing::Test {
 protected:
  TransferLifecycle() : manager(sim, 1000.0) {  // 1000 B/s: 1000 B = 1 s
    manager.on_complete([this](const TransferManager::Transfer& t, SimTime) {
      completed.push_back(t.message);
    });
    manager.on_abort(
        [this](const TransferManager::Transfer& t) { aborted.push_back(t.message); });
  }

  sim::Simulator sim;
  TransferManager manager;
  std::vector<MessageId> completed;
  std::vector<MessageId> aborted;

  const NodeId a{1};
  const NodeId b{2};
};

TEST_F(TransferLifecycle, DuplicateLinkUpPreservesInFlightTransfer) {
  manager.link_up(a, b);
  ASSERT_TRUE(manager.start(a, b, MessageId(7), 1000));
  ASSERT_TRUE(manager.link_busy(a, b));

  // A second link_up for the tracked pair (boundary handoff, overlapping
  // contact sources) must be a no-op, not a fresh LinkState.
  manager.link_up(a, b);
  EXPECT_TRUE(manager.link_busy(a, b));
  EXPECT_EQ(manager.transfers_in_flight(), 1u);

  sim.run_until(SimTime::seconds(2.0));
  EXPECT_EQ(completed, std::vector<MessageId>{MessageId(7)});
  EXPECT_TRUE(aborted.empty());
  EXPECT_EQ(manager.transfers_completed(), 1u);
}

TEST_F(TransferLifecycle, DuplicateLinkDownAbortsExactlyOnce) {
  manager.link_up(a, b);
  ASSERT_TRUE(manager.start(a, b, MessageId(9), 1000));

  manager.link_down(a, b);
  manager.link_down(a, b);  // duplicate: nothing left to abort
  manager.link_down(b, a);  // reversed endpoints hit the same pair key

  EXPECT_EQ(aborted, std::vector<MessageId>{MessageId(9)});
  EXPECT_EQ(manager.transfers_aborted(), 1u);
  EXPECT_EQ(manager.links_tracked(), 0u);
  EXPECT_EQ(manager.transfers_in_flight(), 0u);

  // The canceled completion event must not fire later.
  sim.run_until(SimTime::seconds(5.0));
  EXPECT_TRUE(completed.empty());
  EXPECT_EQ(manager.transfers_completed(), 0u);
}

TEST_F(TransferLifecycle, LinkDownForUnknownPairIsANoOp) {
  manager.link_down(a, b);  // never up
  EXPECT_EQ(manager.transfers_aborted(), 0u);
  EXPECT_TRUE(aborted.empty());

  manager.link_up(a, b);
  manager.link_down(a, b);
  manager.link_down(a, b);  // already torn down
  EXPECT_EQ(manager.transfers_aborted(), 0u);  // idle link: no abort either
  EXPECT_EQ(manager.links_tracked(), 0u);
}

TEST_F(TransferLifecycle, StartRefusedWhileBusyAndAfterDown) {
  manager.link_up(a, b);
  ASSERT_TRUE(manager.start(a, b, MessageId(1), 500));
  EXPECT_FALSE(manager.start(a, b, MessageId(2), 500));  // one at a time
  manager.link_down(a, b);
  EXPECT_FALSE(manager.start(a, b, MessageId(3), 500));  // link gone
  EXPECT_EQ(manager.transfers_started(), 1u);
}

TEST(TransferManagerTeardown, DestructorCancelsPendingCompletionEvents) {
  sim::Simulator sim;
  bool fired = false;
  {
    TransferManager manager(sim, 1000.0);
    manager.on_complete([&fired](const TransferManager::Transfer&, SimTime) { fired = true; });
    manager.link_up(NodeId(1), NodeId(2));
    ASSERT_TRUE(manager.start(NodeId(1), NodeId(2), MessageId(4), 1000));
    EXPECT_EQ(manager.transfers_in_flight(), 1u);
  }
  // The manager died with the transfer in flight; its scheduled completion
  // captured `this` and must have been canceled, not left to fire.
  sim.run_until(SimTime::seconds(5.0));
  EXPECT_FALSE(fired);
}

}  // namespace
}  // namespace dtnic::net
