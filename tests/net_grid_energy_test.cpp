#include <gtest/gtest.h>

#include <numbers>
#include <set>

#include "net/energy.h"
#include "net/spatial_grid.h"
#include "util/rng.h"

namespace dtnic::net {
namespace {

using util::NodeId;
using util::Vec2;

// --- SpatialGrid ---------------------------------------------------------------

TEST(SpatialGrid, FindsNeighborsWithinRadius) {
  SpatialGrid grid(100.0);
  grid.insert(NodeId(0), {0, 0});
  grid.insert(NodeId(1), {50, 0});
  grid.insert(NodeId(2), {150, 0});
  std::vector<NodeId> n;
  grid.neighbors_of({0, 0}, 100.0, NodeId(0), n);
  ASSERT_EQ(n.size(), 1u);
  EXPECT_EQ(n[0], NodeId(1));
}

TEST(SpatialGrid, ExcludesSelf) {
  SpatialGrid grid(100.0);
  grid.insert(NodeId(0), {0, 0});
  std::vector<NodeId> n{NodeId(7)};  // stale scratch contents must be cleared
  grid.neighbors_of({0, 0}, 100.0, NodeId(0), n);
  EXPECT_TRUE(n.empty());
}

TEST(SpatialGrid, PairsAcrossCellBoundaries) {
  SpatialGrid grid(100.0);
  grid.insert(NodeId(0), {99, 50});
  grid.insert(NodeId(1), {101, 50});  // adjacent cell, 2 m apart
  const auto pairs = grid.pairs_within(100.0);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].a, NodeId(0));
  EXPECT_EQ(pairs[0].b, NodeId(1));
  EXPECT_NEAR(pairs[0].distance_m, 2.0, 1e-9);
}

TEST(SpatialGrid, DiagonalCellPairs) {
  SpatialGrid grid(100.0);
  grid.insert(NodeId(0), {99, 99});
  grid.insert(NodeId(1), {101, 101});  // diagonal neighbor cell
  EXPECT_EQ(grid.pairs_within(100.0).size(), 1u);
}

TEST(SpatialGrid, RadiusLargerThanCellRejected) {
  SpatialGrid grid(50.0);
  EXPECT_THROW((void)grid.pairs_within(60.0), std::invalid_argument);
}

TEST(SpatialGrid, ClearKeepsNothing) {
  SpatialGrid grid(100.0);
  grid.insert(NodeId(0), {0, 0});
  grid.insert(NodeId(1), {10, 0});
  grid.clear();
  EXPECT_EQ(grid.size(), 0u);
  EXPECT_TRUE(grid.pairs_within(100.0).empty());
}

/// Property: grid pair detection matches brute force over random layouts.
class GridVsBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GridVsBruteForce, MatchesExactly) {
  util::Rng rng(GetParam());
  const double radius = 100.0;
  const int n = 120;
  std::vector<Vec2> pos(n);
  SpatialGrid grid(radius);
  for (int i = 0; i < n; ++i) {
    pos[i] = {rng.uniform(0.0, 1500.0), rng.uniform(0.0, 1500.0)};
    grid.insert(NodeId(i), pos[i]);
  }
  std::set<std::pair<std::uint32_t, std::uint32_t>> brute;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (util::distance_sq(pos[i], pos[j]) <= radius * radius) {
        brute.insert({static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(j)});
      }
    }
  }
  std::set<std::pair<std::uint32_t, std::uint32_t>> fast;
  for (const auto& p : grid.pairs_within(radius)) {
    fast.insert({p.a.value(), p.b.value()});
  }
  EXPECT_EQ(brute, fast);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridVsBruteForce,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

/// Property: a persistent grid advanced with incremental updates stays
/// exactly equivalent to a grid rebuilt from scratch, across long random
/// motion with occasional teleports (which force cell churn, pruning, and
/// free-list recycling). Also pins the bounded-growth invariant: pruning
/// keeps the occupied cell count at or below the live population no matter
/// how far the nodes roam.
TEST(SpatialGrid, IncrementalMatchesRebuildUnderRandomMotion) {
  util::Rng rng(42);
  const double radius = 100.0;
  const int n = 60;
  const double side = 800.0;
  std::vector<Vec2> pos(n);
  SpatialGrid incremental(radius);
  std::vector<std::size_t> slots(n);
  for (int i = 0; i < n; ++i) {
    pos[i] = {rng.uniform(0.0, side), rng.uniform(0.0, side)};
    slots[i] = incremental.insert(NodeId(i), pos[i]);
  }
  std::vector<SpatialGrid::Pair> got;
  for (int step = 0; step < 1000; ++step) {
    for (int i = 0; i < n; ++i) {
      if (rng.uniform(0.0, 1.0) < 0.02) {
        // Teleport: long jumps exercise cell pruning and re-creation.
        pos[i] = {rng.uniform(-side, 2.0 * side), rng.uniform(-side, 2.0 * side)};
      } else {
        pos[i].x += rng.uniform(-15.0, 15.0);
        pos[i].y += rng.uniform(-15.0, 15.0);
      }
      incremental.update_slot(slots[i], pos[i]);
    }
    ASSERT_LE(incremental.cell_count(), incremental.size());
    if (step % 10 != 0) continue;  // full cross-check every 10th step
    SpatialGrid rebuilt(radius);
    for (int i = 0; i < n; ++i) rebuilt.insert(NodeId(i), pos[i]);
    const auto want = rebuilt.pairs_within(radius);
    incremental.pairs_within(radius, got);
    ASSERT_EQ(got.size(), want.size()) << "step " << step;
    for (std::size_t k = 0; k < want.size(); ++k) {
      ASSERT_EQ(got[k].a, want[k].a) << "step " << step;
      ASSERT_EQ(got[k].b, want[k].b) << "step " << step;
      ASSERT_DOUBLE_EQ(got[k].distance_m, want[k].distance_m) << "step " << step;
    }
  }
}

/// Regression: pairs_within emits in sorted (a, b) order — the property the
/// connectivity diff relies on for deterministic link-event ordering.
TEST(SpatialGrid, PairsEmittedInSortedOrder) {
  util::Rng rng(7);
  SpatialGrid grid(100.0);
  for (int i = 0; i < 150; ++i) {
    // Insert ids in reverse so sortedness cannot fall out of insert order.
    grid.insert(NodeId(149 - i), {rng.uniform(0.0, 1200.0), rng.uniform(0.0, 1200.0)});
  }
  const auto pairs = grid.pairs_within(100.0);
  ASSERT_FALSE(pairs.empty());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_LT(pairs[i].a, pairs[i].b);
    if (i == 0) continue;
    const bool ordered = pairs[i - 1].a < pairs[i].a ||
                         (pairs[i - 1].a == pairs[i].a && pairs[i - 1].b < pairs[i].b);
    EXPECT_TRUE(ordered) << "pair " << i << " out of order";
  }
}

/// Regression for the cell-key packing: the old (cx << 24) ^ cy scheme
/// aliased distant cells once coordinates went negative or large; the packed
/// 64-bit key must keep far-apart nodes apart.
TEST(SpatialGrid, NegativeAndDistantCoordinatesDoNotAlias) {
  SpatialGrid grid(100.0);
  // Under the old packing, (cx, cy) and (cx ^ k, cy ^ (k << 24)) could
  // collide; place nodes in wildly different quadrants and verify isolation.
  grid.insert(NodeId(0), {-5.0, -5.0});
  grid.insert(NodeId(1), {-1.0e6, 1.0e6});
  grid.insert(NodeId(2), {1.0e6, -1.0e6});
  grid.insert(NodeId(3), {1.6777216e9, 0.0});  // cx = 2^24 exactly
  EXPECT_TRUE(grid.pairs_within(100.0).empty());
  EXPECT_EQ(grid.cell_count(), 4u);
  // And a genuinely adjacent pair across the origin still pairs up.
  grid.insert(NodeId(4), {-1.0, -1.0});
  const auto pairs = grid.pairs_within(100.0);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].a, NodeId(0));
  EXPECT_EQ(pairs[0].b, NodeId(4));
}

/// Crowding one cell past the inline entry capacity must spill to the
/// overflow path and keep every pair visible through updates.
TEST(SpatialGrid, OverflowBeyondInlineCapacity) {
  SpatialGrid grid(100.0);
  const int n = 12;  // one cell, well past the inline capacity
  std::vector<std::size_t> slots(n);
  for (int i = 0; i < n; ++i) {
    slots[i] = grid.insert(NodeId(i), {10.0 + i, 10.0});
  }
  EXPECT_EQ(grid.cell_count(), 1u);
  EXPECT_EQ(grid.pairs_within(100.0).size(), static_cast<std::size_t>(n * (n - 1) / 2));
  // Drain the cell one node at a time (reverse order exercises swap-removal
  // of both inline and overflow entries) and re-verify the pair count.
  for (int out = n - 1; out >= 1; --out) {
    grid.update_slot(slots[out], {10.0 + out, 5000.0 + 200.0 * out});
    EXPECT_EQ(grid.pairs_within(100.0).size(), static_cast<std::size_t>(out * (out - 1) / 2));
  }
}

/// The caller-owned scratch overload must clear stale content and match the
/// by-value overload when the buffer is reused across scans.
TEST(SpatialGrid, ScratchBufferReuseMatchesFresh) {
  util::Rng rng(11);
  SpatialGrid grid(100.0);
  std::vector<std::size_t> slots;
  for (int i = 0; i < 80; ++i) {
    slots.push_back(grid.insert(NodeId(i), {rng.uniform(0.0, 900.0), rng.uniform(0.0, 900.0)}));
  }
  std::vector<SpatialGrid::Pair> scratch;
  for (int step = 0; step < 5; ++step) {
    for (std::size_t s : slots) {
      grid.update_slot(s, {rng.uniform(0.0, 900.0), rng.uniform(0.0, 900.0)});
    }
    grid.pairs_within(100.0, scratch);
    const auto fresh = grid.pairs_within(100.0);
    ASSERT_EQ(scratch.size(), fresh.size());
    for (std::size_t k = 0; k < fresh.size(); ++k) {
      EXPECT_EQ(scratch[k].a, fresh[k].a);
      EXPECT_EQ(scratch[k].b, fresh[k].b);
    }
  }
}

/// A same-cell move must still refresh the coordinates used for distance
/// checks (regression for the dense position array staying in sync).
TEST(SpatialGrid, SameCellMoveUpdatesDistance) {
  SpatialGrid grid(100.0);
  grid.insert(NodeId(0), {10.0, 50.0});
  const std::size_t slot = grid.insert(NodeId(1), {95.0, 50.0});
  ASSERT_EQ(grid.pairs_within(100.0).size(), 1u);
  EXPECT_NEAR(grid.pairs_within(100.0)[0].distance_m, 85.0, 1e-9);
  grid.update_slot(slot, {30.0, 50.0});  // same cell, closer
  const auto pairs = grid.pairs_within(100.0);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_NEAR(pairs[0].distance_m, 20.0, 1e-9);
  EXPECT_EQ(grid.cell_count(), 1u);
}

// --- Friis model ------------------------------------------------------------------

TEST(Friis, PathLossFormula) {
  const double lambda = 0.125;
  const double r = 100.0;
  const double expected = std::pow(4.0 * std::numbers::pi * r / lambda, 2.0);
  EXPECT_NEAR(FriisModel::path_loss(r, lambda), expected, expected * 1e-12);
}

TEST(Friis, LossGrowsQuadratically) {
  const double l1 = FriisModel::path_loss(10.0, 0.125);
  const double l2 = FriisModel::path_loss(20.0, 0.125);
  EXPECT_NEAR(l2 / l1, 4.0, 1e-9);
}

TEST(Friis, NearFieldFloorPreventsGain) {
  // At distance 0 the loss is floored at one wavelength, never < 1.
  EXPECT_GE(FriisModel::path_loss(0.0, 0.125), 1.0);
  EXPECT_GE(FriisModel::received_power(1.0, 0.0, 0.125), 0.0);
  EXPECT_LE(FriisModel::received_power(1.0, 0.0, 0.125), 1.0);
}

TEST(Friis, ReceivedPowerScalesWithTx) {
  const double p1 = FriisModel::received_power(0.1, 50.0, 0.125);
  const double p2 = FriisModel::received_power(0.2, 50.0, 0.125);
  EXPECT_NEAR(p2 / p1, 2.0, 1e-9);
}

TEST(Friis, InvalidInputsRejected) {
  EXPECT_THROW((void)FriisModel::path_loss(10.0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)FriisModel::path_loss(-1.0, 0.125), std::invalid_argument);
  EXPECT_THROW((void)FriisModel::received_power(-0.1, 10.0, 0.125), std::invalid_argument);
}

// --- Battery ------------------------------------------------------------------------

TEST(Battery, ConsumeAccumulates) {
  Battery b(100.0);
  b.consume(30.0);
  b.consume(20.0);
  EXPECT_DOUBLE_EQ(b.consumed_j(), 50.0);
  EXPECT_DOUBLE_EQ(b.remaining_j(), 50.0);
  EXPECT_DOUBLE_EQ(b.level(), 0.5);
  EXPECT_FALSE(b.depleted());
}

TEST(Battery, DepletionClampsRemaining) {
  Battery b(10.0);
  b.consume(15.0);
  EXPECT_TRUE(b.depleted());
  EXPECT_DOUBLE_EQ(b.remaining_j(), 0.0);
  EXPECT_DOUBLE_EQ(b.level(), 0.0);
}

TEST(Battery, TxRxDrawFromRadioParams) {
  RadioParams radio;
  radio.tx_power_w = 0.1;
  radio.rx_circuit_power_w = 0.05;
  Battery b(100.0);
  b.consume_tx(radio, util::SimTime::seconds(10));
  EXPECT_DOUBLE_EQ(b.consumed_j(), 1.0);
  b.consume_rx(radio, util::SimTime::seconds(10));
  EXPECT_DOUBLE_EQ(b.consumed_j(), 1.5);
}

TEST(Battery, InvalidUseRejected) {
  EXPECT_THROW(Battery(0.0), std::invalid_argument);
  Battery b(1.0);
  EXPECT_THROW(b.consume(-1.0), std::invalid_argument);
}

}  // namespace
}  // namespace dtnic::net
