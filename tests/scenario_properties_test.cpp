#include <gtest/gtest.h>

#include "core/incentive_router.h"
#include "scenario/experiment.h"
#include "scenario/scenario.h"

/// End-to-end property sweeps: invariants that must hold for ANY seed and
/// behavior mix, checked on compact scenarios across a seed matrix.

namespace dtnic::scenario {
namespace {

struct SweepCase {
  std::uint64_t seed;
  double selfish;
  double malicious;
  Scheme scheme;
};

std::string case_name(const ::testing::TestParamInfo<SweepCase>& info) {
  const auto& c = info.param;
  std::string name = std::string(scheme_name(c.scheme)) + "_s" + std::to_string(c.seed) +
                     "_self" + std::to_string(static_cast<int>(c.selfish * 100)) + "_mal" +
                     std::to_string(static_cast<int>(c.malicious * 100));
  for (char& ch : name) {
    if (ch == '-') ch = '_';  // gtest names must be alphanumeric/underscore
  }
  return name;
}

class ScenarioSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ScenarioSweep, GlobalInvariantsHold) {
  const SweepCase& c = GetParam();
  ScenarioConfig cfg = ScenarioConfig::scaled_defaults(30, 1.0);
  cfg.messages_per_node_per_hour = 1.0;
  cfg.seed = c.seed;
  cfg.selfish_fraction = c.selfish;
  cfg.malicious_fraction = c.malicious;
  cfg.scheme = c.scheme;
  cfg.incentive.initial_tokens = 15.0;

  Scenario sim(cfg);
  const RunResult r = sim.run();

  // Delivery sanity.
  EXPECT_LE(r.delivered, r.created);
  EXPECT_GE(r.mdr, 0.0);
  EXPECT_LE(r.mdr, 1.0);
  EXPECT_GE(r.deliveries_total, r.delivered);
  // Priority buckets partition the totals.
  EXPECT_EQ(r.created_high + r.created_medium + r.created_low, r.created);
  EXPECT_EQ(r.delivered_high + r.delivered_medium + r.delivered_low, r.delivered);

  if (c.scheme == Scheme::kIncentive) {
    // Token conservation: payments move tokens, never mint or burn them.
    EXPECT_NEAR(r.total_tokens,
                static_cast<double>(cfg.num_nodes) * cfg.incentive.initial_tokens, 1e-6);
    // Every ledger stays non-negative.
    for (std::size_t i = 0; i < sim.node_count(); ++i) {
      const auto id = util::NodeId(static_cast<util::NodeId::underlying>(i));
      const auto* router = core::IncentiveRouter::of(sim.host(id));
      ASSERT_NE(router, nullptr);
      EXPECT_GE(router->ledger().balance(), 0.0);
      EXPECT_GE(router->ledger().total_earned(), 0.0);
      EXPECT_GE(router->ledger().total_spent(), 0.0);
    }
    // Ratings stay on the 0..5 scale.
    const auto& samples = r.malicious_rating.samples();
    for (const auto& s : samples) {
      EXPECT_GE(s.value, 0.0);
      EXPECT_LE(s.value, cfg.drm.rating_max);
    }
  } else {
    EXPECT_EQ(r.payments, 0u);
    EXPECT_DOUBLE_EQ(r.tokens_paid, 0.0);
  }

  // Buffers never exceed capacity.
  for (std::size_t i = 0; i < sim.node_count(); ++i) {
    const auto id = util::NodeId(static_cast<util::NodeId::underlying>(i));
    EXPECT_LE(sim.host(id).buffer().used_bytes(), cfg.buffer_capacity_bytes);
  }

  // Suppression only happens when someone is selfish.
  if (c.selfish == 0.0) EXPECT_EQ(r.contacts_suppressed, 0u);

  // Energy was consumed iff transfers happened.
  if (r.traffic > 0) EXPECT_GT(r.total_energy_j, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ScenarioSweep,
    ::testing::Values(SweepCase{1, 0.0, 0.0, Scheme::kIncentive},
                      SweepCase{2, 0.3, 0.0, Scheme::kIncentive},
                      SweepCase{3, 0.0, 0.2, Scheme::kIncentive},
                      SweepCase{4, 0.3, 0.2, Scheme::kIncentive},
                      SweepCase{5, 0.6, 0.3, Scheme::kIncentive},
                      SweepCase{6, 1.0, 0.0, Scheme::kIncentive},
                      SweepCase{7, 0.3, 0.0, Scheme::kChitChat},
                      SweepCase{8, 0.0, 0.0, Scheme::kChitChat},
                      SweepCase{9, 0.2, 0.0, Scheme::kEpidemic},
                      SweepCase{10, 0.2, 0.0, Scheme::kDirectDelivery},
                      SweepCase{11, 0.2, 0.0, Scheme::kSprayAndWait},
                      SweepCase{12, 0.2, 0.0, Scheme::kFirstContact}),
    case_name);

/// Determinism across the full pipeline for every scheme.
class SchemeDeterminism : public ::testing::TestWithParam<Scheme> {};

TEST_P(SchemeDeterminism, IdenticalRunsForIdenticalSeeds) {
  ScenarioConfig cfg = ScenarioConfig::scaled_defaults(25, 1.0);
  cfg.scheme = GetParam();
  cfg.seed = 99;
  cfg.selfish_fraction = 0.2;
  const RunResult a = ExperimentRunner::run_once(cfg);
  const RunResult b = ExperimentRunner::run_once(cfg);
  EXPECT_EQ(a.created, b.created);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.traffic, b.traffic);
  EXPECT_EQ(a.relay_arrivals, b.relay_arrivals);
  EXPECT_EQ(a.contacts, b.contacts);
  EXPECT_EQ(a.contacts_suppressed, b.contacts_suppressed);
  EXPECT_EQ(a.aborted, b.aborted);
  EXPECT_DOUBLE_EQ(a.tokens_paid, b.tokens_paid);
  EXPECT_DOUBLE_EQ(a.total_energy_j, b.total_energy_j);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeDeterminism,
                         ::testing::Values(Scheme::kIncentive, Scheme::kChitChat,
                                           Scheme::kEpidemic, Scheme::kDirectDelivery,
                                           Scheme::kSprayAndWait, Scheme::kFirstContact));

/// Behavioral trend: more selfishness cannot increase formed contacts.
TEST(ScenarioTrends, ContactsMonotoneInSelfishness) {
  std::uint64_t prev = 0;
  bool first = true;
  for (const double selfish : {0.0, 0.5, 1.0}) {
    ScenarioConfig cfg = ScenarioConfig::scaled_defaults(40, 1.5);
    cfg.scheme = Scheme::kChitChat;
    cfg.seed = 11;
    cfg.selfish_fraction = selfish;
    const RunResult r = ExperimentRunner::run_once(cfg);
    if (!first) EXPECT_LE(r.contacts, prev);
    prev = r.contacts;
    first = false;
  }
}

/// Behavioral trend: enrichment widens reach (more (msg, dest) deliveries).
TEST(ScenarioTrends, EnrichmentWidensReach) {
  ScenarioConfig cfg = ScenarioConfig::scaled_defaults(50, 2.0);
  cfg.scheme = Scheme::kIncentive;
  cfg.seed = 17;
  cfg.interests_per_node = 5;
  cfg.keywords_per_message = 2;
  cfg.latent_extra_keywords = 3;
  cfg.enrich_probability = 0.8;
  const RunResult with = ExperimentRunner::run_once(cfg);
  cfg.enrichment_enabled = false;
  const RunResult without = ExperimentRunner::run_once(cfg);
  EXPECT_GT(with.deliveries_total, without.deliveries_total);
}

/// Behavioral trend: a larger token allowance cannot hurt delivery much;
/// starved allowances clearly do (Fig. 5.3's monotone backbone).
TEST(ScenarioTrends, TokensGateDelivery) {
  auto run_with_tokens = [](double tokens) {
    ScenarioConfig cfg = ScenarioConfig::scaled_defaults(40, 2.0);
    cfg.scheme = Scheme::kIncentive;
    cfg.seed = 23;
    cfg.messages_per_node_per_hour = 1.0;
    cfg.incentive.initial_tokens = tokens;
    return ExperimentRunner::run_once(cfg);
  };
  const RunResult starved = run_with_tokens(1.0);
  const RunResult generous = run_with_tokens(500.0);
  EXPECT_GT(generous.mdr, starved.mdr);
  EXPECT_GT(starved.refused_no_tokens, generous.refused_no_tokens);
}

/// Failure injection: congested fast-moving worlds break links mid-transfer;
/// aborts must occur and never corrupt delivery accounting.
TEST(ScenarioFailures, AbortsHappenAndAccountingHolds) {
  ScenarioConfig cfg = ScenarioConfig::scaled_defaults(60, 2.0);
  cfg.max_speed_mps = 12.0;  // vehicles: contacts break quickly
  cfg.min_speed_mps = 6.0;
  cfg.messages_per_node_per_hour = 2.0;
  cfg.message_size_bytes = 4 * 1024 * 1024;  // 16 s per transfer at 250 kBps
  cfg.seed = 31;
  Scenario sim(cfg);
  const RunResult r = sim.run();
  EXPECT_GT(r.aborted, 0u);
  EXPECT_LE(r.delivered, r.created);
  // Token conservation survives aborted transfers (no half-payments).
  EXPECT_NEAR(r.total_tokens,
              static_cast<double>(cfg.num_nodes) * cfg.incentive.initial_tokens, 1e-6);
}

/// The seen-set enforces pay-once per (message, destination) even when the
/// destination's buffer has evicted the copy since.
TEST(ScenarioFailures, NoDoublePaymentAfterEviction) {
  ScenarioConfig cfg = ScenarioConfig::scaled_defaults(40, 2.0);
  cfg.buffer_capacity_bytes = 4 * cfg.message_size_bytes;  // heavy eviction
  cfg.messages_per_node_per_hour = 2.0;
  cfg.seed = 37;
  Scenario sim(cfg);
  const RunResult r = sim.run();
  EXPECT_GT(r.dropped_buffer, 0u);
  // Unique (message, destination) deliveries bound the number of payments
  // from destinations; with prepayments included, payments can exceed
  // deliveries but conservation must hold exactly.
  EXPECT_NEAR(r.total_tokens,
              static_cast<double>(cfg.num_nodes) * cfg.incentive.initial_tokens, 1e-6);
  EXPECT_EQ(r.deliveries_total, static_cast<std::uint64_t>(sim.metrics().deliveries_total()));
}

}  // namespace
}  // namespace dtnic::scenario
