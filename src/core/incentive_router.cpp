#include "core/incentive_router.h"

#include <algorithm>

#include "util/assert.h"

namespace dtnic::core {

using routing::AcceptDecision;
using routing::ForwardPlan;
using routing::Host;
using routing::TransferRole;

IncentiveRouter::IncentiveRouter(const routing::DestinationOracle& oracle,
                                 const routing::chitchat::ChitChatParams& chitchat,
                                 util::SimTime contact_quantum, const IncentiveWorld* world,
                                 BehaviorProfile profile, util::Rng rng)
    : ChitChatRouter(oracle, chitchat, contact_quantum, routing::RouterKind::kIncentive),
      world_(world),
      profile_(profile),
      rng_(rng),
      ledger_(world != nullptr ? world->incentive.initial_tokens : 0.0),
      ratings_(world != nullptr ? world->drm : DrmParams{}),
      enricher_(world != nullptr ? world->keyword_pool : nullptr) {
  DTNIC_REQUIRE_MSG(world != nullptr, "IncentiveRouter needs a shared IncentiveWorld");
}

IncentiveRouter* IncentiveRouter::of(Host& host) {
  if (!host.has_router()) return nullptr;
  routing::Router& router = host.router();
  if (router.kind() != routing::RouterKind::kIncentive) return nullptr;
  return static_cast<IncentiveRouter*>(&router);
}

void IncentiveRouter::on_link_up(Host& self, Host& peer, util::SimTime now, double distance_m) {
  ChitChatRouter::on_link_up(self, peer, now, distance_m);
  contact_distance_[peer.id()] = distance_m;
  // Reputation exchange: absorb the peer's opinions second-hand (§3.3
  // case 2). Opinions about ourselves and about the peer itself are skipped
  // — self-praise must not enter the merge.
  if (world_->drm.enabled) {
    if (IncentiveRouter* other = IncentiveRouter::of(peer); other != nullptr) {
      // Per-node independent merge, so the peer's records are visited in hash
      // order directly instead of materializing a sorted snapshot per contact.
      other->ratings_.for_each([&](routing::NodeId node, double rating) {
        if (node == self.id() || node == peer.id()) return;
        ratings_.merge_remote(node, rating);
      });
    }
  }
}

void IncentiveRouter::on_link_down(Host& self, Host& peer, util::SimTime now) {
  ChitChatRouter::on_link_down(self, peer, now);
  contact_distance_.erase(peer.id());
}

void IncentiveRouter::fill_promise_context(Host& self, PromiseContext& ctx) const {
  ctx.neighbors.clear();
  ctx.max_size_bytes = 1;
  ctx.max_quality = 1e-9;
  if (world_->neighbors) world_->neighbors(self.id(), ctx.neighbors);
  // S_m / Q_m: maxima over the sender's carried messages (Table 3.1).
  self.buffer().for_each([&ctx](const msg::Message& carried) {
    ctx.max_size_bytes = std::max(ctx.max_size_bytes, carried.size_bytes());
    ctx.max_quality = std::max(ctx.max_quality, carried.quality());
  });
}

double IncentiveRouter::compute_promise(Host& self, const routing::Peer& peer,
                                        const msg::Message& m) {
  PromiseContext ctx;
  fill_promise_context(self, ctx);
  return promise_for(self, peer, m, ctx);
}

double IncentiveRouter::promise_for(Host& self, const routing::Peer& peer,
                                    const msg::Message& m, const PromiseContext& ctx) {
  SoftwareFactors f;
  f.sum_weights_v = peer.message_strength(m);
  // w_m: the best interest strength among all currently connected devices
  // (queried through the Peer interface — same memoized bits as before).
  f.max_sum_weights = f.sum_weights_v;
  for (Host* neighbor : ctx.neighbors) {
    f.max_sum_weights = std::max(f.max_sum_weights, neighbor->message_strength(m));
  }
  f.rank_u = self.rank();
  f.rank_v = peer.rank();
  f.priority = m.priority();
  f.size_bytes = m.size_bytes();
  f.quality = m.quality();
  f.max_size_bytes = std::max(ctx.max_size_bytes, m.size_bytes());
  f.max_quality = std::max(ctx.max_quality, m.quality());

  const double i_s = software_incentive(world_->incentive, f);
  const double duration_s =
      static_cast<double>(m.size_bytes()) / world_->radio.bitrate_bps;
  const auto dist_it = contact_distance_.find(peer.id());
  const double distance = dist_it != contact_distance_.end() ? dist_it->second
                                                             : world_->radio.range_m;
  const double i_h = hardware_incentive(world_->incentive, world_->radio,
                                        /*sender_is_source=*/m.source() == self.id(), distance,
                                        util::SimTime::seconds(duration_s));
  return total_promise(world_->incentive, i_s, i_h);
}

void IncentiveRouter::plan_for_peer(Host& self, const routing::Peer& peer, util::SimTime now,
                                    std::vector<ForwardPlan>& out) {
  ChitChatRouter::plan_for_peer(self, peer, now, out);
  const bool peer_runs_chitchat = peer.interest_table() != nullptr;
  fill_promise_context(self, promise_ctx_);

  keyed_scratch_.clear();
  if (keyed_scratch_.capacity() < out.size()) {
    // Floored geometric growth: plan counts creep upward as transient
    // interests spread, and letting the vector grow by its own doubling
    // sprinkles small reallocations across many later contacts. One generous
    // jump keeps the steady-state contact tick allocation-free.
    keyed_scratch_.reserve(std::max<std::size_t>(32, 2 * out.size()));
  }
  for (ForwardPlan& p : out) {
    const msg::Message* m = self.buffer().find(p.message);
    DTNIC_ASSERT(m != nullptr);
    p.promise = promise_for(self, peer, *m, promise_ctx_);
    if (p.role == TransferRole::kRelay && peer_runs_chitchat) {
      // Relay threshold (Table 5.1): a receiver with a very high mean tag
      // weight — near-certain deliverer — pre-pays a fraction of the promise.
      // The mean is derived from the memoized strength sum; both iterate the
      // same keyword list, so the quotient is bit-identical to mean_weight.
      const auto& kws = m->keywords();
      const double mean_w = kws.empty() ? 0.0
                                        : peer.message_strength(*m) /
                                              static_cast<double>(kws.size());
      if (mean_w > world_->incentive.relay_threshold) {
        p.prepay = world_->incentive.relay_prepay_fraction * p.promise;
      }
    }
    keyed_scratch_.push_back(KeyedPlan{p, msg::priority_level(m->priority()), m->quality(),
                                       static_cast<std::uint32_t>(keyed_scratch_.size())});
  }

  // Higher-priority, higher-quality messages go first (the behavior Fig. 5.6
  // measures). Destinations outrank relay handoffs at equal priority. Keys
  // were resolved above, so the comparator never touches the buffer. The
  // pre-sort position is the final tiebreak, which reproduces stable_sort's
  // order without its per-call temporary merge buffer.
  std::sort(keyed_scratch_.begin(), keyed_scratch_.end(),
            [](const KeyedPlan& a, const KeyedPlan& b) {
              if (a.priority != b.priority) return a.priority < b.priority;
              if (a.plan.role != b.plan.role) {
                return a.plan.role == TransferRole::kDestination;
              }
              if (a.quality != b.quality) return a.quality > b.quality;
              return a.seq < b.seq;
            });
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = keyed_scratch_[i].plan;
}

AcceptDecision IncentiveRouter::accept(Host& self, const routing::Peer& from,
                                       const msg::Message& m, const ForwardPlan& offer,
                                       util::SimTime now) {
  const AcceptDecision base = ChitChatRouter::accept(self, from, m, offer, now);
  if (base != AcceptDecision::kAccept) return base;

  // DRM gate: avoid receiving from nodes rated below the trust threshold.
  if (world_->drm.enabled && !ratings_.trusted(from.id())) {
    return AcceptDecision::kUntrustedSender;
  }

  // Storage admission: a copy the (priority-aware) buffer would refuse is
  // rejected before any bandwidth is spent on it.
  if (!self.buffer().would_admit(m)) return AcceptDecision::kRefused;

  if (offer.role == TransferRole::kDestination) {
    // A destination must be able to pay the promised incentive (Paper II
    // §3.3: a device with no incentive to offer cannot act as destination).
    if (!ledger_.can_pay(offer.promise)) return AcceptDecision::kNoTokens;
  } else if (offer.prepay > 0.0 && !ledger_.can_pay(offer.prepay)) {
    return AcceptDecision::kNoTokens;
  }
  return AcceptDecision::kAccept;
}

void IncentiveRouter::rate_and_record(Host& self, msg::Message& m) {
  if (!world_->drm.enabled) return;
  // Rate the source for tag relevance and content quality.
  const double r_src = MessageJudgement::rate_source(m, world_->drm, rng_);
  ratings_.add_message_rating(m.source(), r_src);
  m.add_path_rating(msg::PathRating{self.id(), m.source(), r_src});
  self.events().on_reputation_updated(self.id(), m.source(), ratings_.rating_of(m.source()));
  // Rate every enriching relay for the tags it added.
  std::vector<routing::NodeId> rated;
  for (const msg::Annotation& a : m.annotations()) {
    if (a.annotator == m.source() || a.annotator == self.id()) continue;
    if (std::find(rated.begin(), rated.end(), a.annotator) != rated.end()) continue;
    rated.push_back(a.annotator);
    const double r = MessageJudgement::rate_annotator(m, a.annotator, world_->drm, rng_);
    ratings_.add_message_rating(a.annotator, r);
    m.add_path_rating(msg::PathRating{self.id(), a.annotator, r});
    self.events().on_reputation_updated(self.id(), a.annotator,
                                        ratings_.rating_of(a.annotator));
  }
}

void IncentiveRouter::on_received(Host& self, Host& from, msg::Message m,
                                  const ForwardPlan& plan, util::SimTime now) {
  (void)now;
  self.mark_seen(m.id());
  IncentiveRouter* sender = IncentiveRouter::of(from);

  if (plan.role == TransferRole::kDestination) {
    // Enrichment reward: the destination compensates only tags that were
    // added en route AND match its own interests (§3.2).
    const auto& my_interests = oracle().interests_of(self.id());
    int relevant_added = 0;
    for (const msg::Annotation& a : m.annotations()) {
      if (a.annotator == m.source()) continue;
      if (my_interests.count(a.keyword) > 0) ++relevant_added;
    }
    const double i_t = tag_reward(world_->incentive, relevant_added);

    // Reputation-scaled award to the deliverer (first copy only — the seen
    // set refuses duplicates before they reach this point).
    const double factor = award_factor(world_->drm, m.path_ratings(),
                                       ratings_.rating_of(from.id()));
    const double award = factor * (plan.promise + i_t);
    if (sender != nullptr && award > 0.0) {
      const double paid = ledger_.pay(sender->ledger_, award);
      self.events().on_tokens_paid(self.id(), from.id(), paid);
    }
    rate_and_record(self, m);
    store(self, std::move(m), /*own=*/false);
    return;
  }

  // Relay path: honor the agreed pre-payment, judge the copy, enrich, store.
  if (plan.prepay > 0.0 && sender != nullptr) {
    const double paid = ledger_.pay(sender->ledger_, plan.prepay);
    self.events().on_tokens_paid(self.id(), from.id(), paid);
  }
  rate_and_record(self, m);
  if (world_->enrichment_enabled) {
    const int added = enricher_.enrich(m, self.id(), profile_, rng_);
    if (added > 0) self.events().on_enriched(self.id(), m, added);
  }
  store(self, std::move(m), /*own=*/false);
}

}  // namespace dtnic::core
