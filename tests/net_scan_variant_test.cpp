#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "net/spatial_grid.h"
#include "util/rng.h"

/// Property tests for the interchangeable contact-scan kernels: every
/// supported variant (scalar always; SSE2/AVX2 when built + supported) must
/// produce *bit-identical* sorted pair streams — ids and distance doubles —
/// for any population, radius, churn history, and shard decomposition. This
/// is the invariant the fig5x determinism guarantee stands on.

namespace dtnic::net {
namespace {

using util::NodeId;
using util::Vec2;
using Pair = SpatialGrid::Pair;
using Variant = SpatialGrid::ScanVariant;

/// Bitwise comparison including the distance doubles (Pair has no padding:
/// 4 + 4 + 8 bytes).
[[nodiscard]] bool bit_identical(const std::vector<Pair>& a, const std::vector<Pair>& b) {
  static_assert(sizeof(Pair) == 16);
  if (a.size() != b.size()) return false;
  if (a.empty()) return true;
  return std::memcmp(a.data(), b.data(), a.size() * sizeof(Pair)) == 0;
}

class ScanVariantTest : public ::testing::Test {
 protected:
  void SetUp() override { entry_variant_ = SpatialGrid::scan_variant(); }
  void TearDown() override { SpatialGrid::set_scan_variant(entry_variant_); }

 private:
  Variant entry_variant_ = Variant::kScalar;
};

/// Run pairs_within under \p v and return the sorted stream.
std::vector<Pair> scan_with(const SpatialGrid& grid, double radius, Variant v) {
  EXPECT_TRUE(SpatialGrid::set_scan_variant(v));
  std::vector<Pair> out;
  grid.pairs_within(radius, out);
  return out;
}

TEST_F(ScanVariantTest, ScalarAlwaysSupported) {
  const auto variants = SpatialGrid::supported_scan_variants();
  ASSERT_FALSE(variants.empty());
  EXPECT_EQ(variants.front(), Variant::kScalar);
  EXPECT_FALSE(SpatialGrid::set_scan_variant(static_cast<Variant>(99)));
}

TEST_F(ScanVariantTest, RandomizedChurnBitIdenticalAcrossVariants) {
  util::Rng rng(20240807);
  SpatialGrid grid(100.0);
  const int n = 300;
  std::vector<std::size_t> slots;
  std::vector<Vec2> pos(n);
  for (int i = 0; i < n; ++i) {
    // Include negative coordinates so coord()'s floor path is exercised.
    pos[i] = {rng.uniform(-1000.0, 1000.0), rng.uniform(-1000.0, 1000.0)};
    slots.push_back(grid.insert(NodeId(static_cast<std::uint32_t>(i)), pos[i]));
  }
  const double radii[] = {25.0, 60.0, 100.0};
  for (int round = 0; round < 30; ++round) {
    for (int i = 0; i < n; ++i) {
      if (rng.below(20) == 0) {
        // Teleport: long-range cell churn, creates and prunes cells.
        pos[i] = {rng.uniform(-1000.0, 1000.0), rng.uniform(-1000.0, 1000.0)};
      } else {
        pos[i].x += rng.uniform(-30.0, 30.0);
        pos[i].y += rng.uniform(-30.0, 30.0);
      }
      grid.update_slot(slots[static_cast<std::size_t>(i)], pos[i]);
    }
    const double radius = radii[round % 3];
    const std::vector<Pair> reference = scan_with(grid, radius, Variant::kScalar);
    for (const Variant v : SpatialGrid::supported_scan_variants()) {
      const std::vector<Pair> got = scan_with(grid, radius, v);
      EXPECT_TRUE(bit_identical(reference, got))
          << "variant " << SpatialGrid::scan_variant_name(v) << " diverged in round " << round;
    }
  }
}

TEST_F(ScanVariantTest, ShardedEnumerationBitIdenticalAcrossVariants) {
  util::Rng rng(99);
  SpatialGrid grid(50.0);
  for (int i = 0; i < 200; ++i) {
    grid.insert(NodeId(static_cast<std::uint32_t>(i)),
                {rng.uniform(-400.0, 400.0), rng.uniform(-400.0, 400.0)});
  }
  const std::vector<Pair> serial = scan_with(grid, 50.0, Variant::kScalar);
  for (const Variant v : SpatialGrid::supported_scan_variants()) {
    ASSERT_TRUE(SpatialGrid::set_scan_variant(v));
    for (const std::uint32_t shard_count : {1u, 2u, 3u, 5u, 8u}) {
      // The shard streams are disjoint and each sorted by (a, b); a k-way
      // merge must reproduce the serial stream bit for bit.
      std::vector<std::vector<Pair>> parts(shard_count);
      SpatialGrid::SortScratch scratch;
      for (std::uint32_t s = 0; s < shard_count; ++s) {
        grid.pairs_within_shard(50.0, s, shard_count, parts[s], scratch);
      }
      std::vector<Pair> merged;
      std::vector<std::size_t> cursor(shard_count, 0);
      const auto key = [](const Pair& p) {
        return (static_cast<std::uint64_t>(p.a.value()) << 32) | p.b.value();
      };
      for (;;) {
        int best = -1;
        for (std::uint32_t s = 0; s < shard_count; ++s) {
          if (cursor[s] == parts[s].size()) continue;
          if (best < 0 || key(parts[s][cursor[s]]) <
                              key(parts[static_cast<std::uint32_t>(best)]
                                       [cursor[static_cast<std::uint32_t>(best)]])) {
            best = static_cast<int>(s);
          }
        }
        if (best < 0) break;
        merged.push_back(parts[static_cast<std::uint32_t>(best)]
                              [cursor[static_cast<std::uint32_t>(best)]++]);
      }
      EXPECT_TRUE(bit_identical(serial, merged))
          << "variant " << SpatialGrid::scan_variant_name(v) << " shards " << shard_count;
    }
  }
}

TEST_F(ScanVariantTest, BoundaryAndCoincidentDistances) {
  for (const Variant v : SpatialGrid::supported_scan_variants()) {
    SpatialGrid grid(100.0);
    grid.insert(NodeId(1), {0.0, 0.0});
    grid.insert(NodeId(2), {100.0, 0.0});  // exactly at the radius: included
    grid.insert(NodeId(3), {0.0, 0.0});    // coincident: distance 0
    // Just outside: dx is exactly 0 so d^2 = (100 + 1e-9)^2, which is
    // representably greater than 100^2. (A 1e-9 nudge on the *other* axis
    // would vanish: 10000 + 1e-18 rounds back to 10000 and passes the test.)
    grid.insert(NodeId(4), {100.0, 100.0 + 1e-9});
    const std::vector<Pair> pairs = scan_with(grid, 100.0, v);
    ASSERT_EQ(pairs.size(), 3u) << SpatialGrid::scan_variant_name(v);
    EXPECT_EQ(pairs[0].a, NodeId(1));
    EXPECT_EQ(pairs[0].b, NodeId(2));
    EXPECT_EQ(pairs[0].distance_m, 100.0);
    EXPECT_EQ(pairs[1].b, NodeId(3));
    EXPECT_EQ(pairs[1].distance_m, 0.0);
    EXPECT_EQ(pairs[2].a, NodeId(2));
    EXPECT_EQ(pairs[2].b, NodeId(3));
  }
}

TEST_F(ScanVariantTest, OverflowCellsTakeIdenticalFallback) {
  // Cram well past kInline entries into single cells so the SIMD kernels
  // route those cells through the scalar fallback; output must stay
  // bit-identical, including pairs between an overflowing cell and a
  // vectorizable neighbor.
  util::Rng rng(7);
  SpatialGrid grid(100.0);
  std::uint32_t id = 0;
  for (int i = 0; i < 12; ++i) {  // one crowded cell
    grid.insert(NodeId(++id), {10.0 + rng.uniform(0.0, 80.0), 10.0 + rng.uniform(0.0, 80.0)});
  }
  for (int i = 0; i < 3; ++i) {  // sparse neighbor cell (vector path)
    grid.insert(NodeId(++id), {110.0 + rng.uniform(0.0, 80.0), 10.0 + rng.uniform(0.0, 80.0)});
  }
  const std::vector<Pair> reference = scan_with(grid, 100.0, Variant::kScalar);
  ASSERT_GT(reference.size(), 60u);
  for (const Variant v : SpatialGrid::supported_scan_variants()) {
    EXPECT_TRUE(bit_identical(reference, scan_with(grid, 100.0, v)))
        << SpatialGrid::scan_variant_name(v);
  }
}

}  // namespace
}  // namespace dtnic::net
