#include <gtest/gtest.h>

#include "routing/chitchat/chitchat_router.h"
#include "routing/direct_delivery.h"
#include "routing/epidemic.h"
#include "routing/first_contact.h"
#include "routing/spray_and_wait.h"
#include "test_helpers.h"

namespace dtnic::routing {
namespace {

using test::MicroWorld;
using util::SimTime;

constexpr auto kT0 = SimTime::zero();

// --- Host ---------------------------------------------------------------------

TEST(Host, SeenSetAndRank) {
  MicroWorld w;
  Host& h = w.add_host();
  EXPECT_FALSE(h.has_seen(MessageId(1)));
  h.mark_seen(MessageId(1));
  EXPECT_TRUE(h.has_seen(MessageId(1)));
  h.set_rank(3);
  EXPECT_EQ(h.rank(), 3);
  EXPECT_THROW(h.set_rank(0), std::invalid_argument);
}

TEST(Host, RouterRequiredBeforeUse) {
  MicroWorld w;
  Host& h = w.add_host();
  EXPECT_FALSE(h.has_router());
  EXPECT_THROW((void)h.router(), std::invalid_argument);
  h.set_router(std::make_unique<EpidemicRouter>(w.oracle));
  EXPECT_TRUE(h.has_router());
}

// --- StaticInterestOracle --------------------------------------------------------

TEST(Oracle, DestinationByDirectInterest) {
  MicroWorld w;
  test::MessageFactory factory(w.keywords);
  Host& a = w.add_host();
  const auto kw = w.keywords.intern("flood");
  w.oracle.set_interests(a.id(), {kw});
  const msg::Message m = factory.make(util::NodeId(9), {"flood", "rescue"});
  EXPECT_TRUE(w.oracle.is_destination(a.id(), m));
  const msg::Message other = factory.make(util::NodeId(9), {"parade"});
  EXPECT_FALSE(w.oracle.is_destination(a.id(), other));
}

TEST(Oracle, SubscribersOf) {
  MicroWorld w;
  Host& a = w.add_host();
  Host& b = w.add_host();
  const auto kw = w.keywords.intern("fire");
  w.oracle.set_interests(b.id(), {kw});
  w.oracle.set_interests(a.id(), {kw});
  const auto subs = w.oracle.subscribers_of(kw);
  ASSERT_EQ(subs.size(), 2u);
  EXPECT_EQ(subs[0], a.id());
  EXPECT_TRUE(w.oracle.interests_of(util::NodeId(99)).empty());
}

// --- Epidemic ----------------------------------------------------------------------

TEST(Epidemic, OffersEverythingUnseen) {
  MicroWorld w;
  test::MessageFactory factory(w.keywords);
  Host& a = w.add_host();
  Host& b = w.add_host();
  a.set_router(std::make_unique<EpidemicRouter>(w.oracle));
  b.set_router(std::make_unique<EpidemicRouter>(w.oracle));
  for (int i = 0; i < 3; ++i) {
    auto m = factory.make(a.id(), {"k" + std::to_string(i)});
    a.mark_seen(m.id());
    (void)a.buffer().add(std::move(m), true);
  }
  EXPECT_EQ(w.exchange(a, b, kT0), 3);
  EXPECT_EQ(b.buffer().size(), 3u);
  // Everything is already seen at b: nothing moves again.
  EXPECT_EQ(w.exchange(a, b, kT0), 0);
}

TEST(Epidemic, MarksDestinationRole) {
  MicroWorld w;
  test::MessageFactory factory(w.keywords);
  Host& a = w.add_host();
  Host& b = w.add_host();
  a.set_router(std::make_unique<EpidemicRouter>(w.oracle));
  b.set_router(std::make_unique<EpidemicRouter>(w.oracle));
  w.oracle.set_interests(b.id(), {w.keywords.intern("flood")});
  auto m = factory.make(a.id(), {"flood"});
  a.mark_seen(m.id());
  (void)a.buffer().add(std::move(m), true);
  (void)w.exchange(a, b, kT0);
  ASSERT_EQ(w.events.deliveries.size(), 1u);
  EXPECT_EQ(w.events.deliveries[0].to, b.id());
  EXPECT_EQ(w.events.relayed, 0);
}

TEST(Epidemic, SenderKeepsCopy) {
  MicroWorld w;
  test::MessageFactory factory(w.keywords);
  Host& a = w.add_host();
  Host& b = w.add_host();
  a.set_router(std::make_unique<EpidemicRouter>(w.oracle));
  b.set_router(std::make_unique<EpidemicRouter>(w.oracle));
  auto m = factory.make(a.id(), {"x"});
  const auto id = m.id();
  a.mark_seen(id);
  (void)a.buffer().add(std::move(m), true);
  (void)w.exchange(a, b, kT0);
  EXPECT_TRUE(a.buffer().contains(id));  // replication, not hand-off
  EXPECT_TRUE(b.buffer().contains(id));
}

// --- DirectDelivery ------------------------------------------------------------------

TEST(DirectDelivery, OnlyDestinationsReceive) {
  MicroWorld w;
  test::MessageFactory factory(w.keywords);
  Host& src = w.add_host();
  Host& relay = w.add_host();
  Host& dest = w.add_host();
  for (Host* h : {&src, &relay, &dest}) {
    h->set_router(std::make_unique<DirectDeliveryRouter>(w.oracle));
  }
  w.oracle.set_interests(dest.id(), {w.keywords.intern("flood")});
  auto m = factory.make(src.id(), {"flood"});
  src.mark_seen(m.id());
  (void)src.buffer().add(std::move(m), true);
  EXPECT_EQ(w.exchange(src, relay, kT0), 0);  // relay is not a destination
  EXPECT_EQ(w.exchange(src, dest, kT0), 1);
  EXPECT_EQ(w.events.deliveries.size(), 1u);
}

// --- FirstContact ---------------------------------------------------------------------

TEST(FirstContact, SingleCopyMoves) {
  MicroWorld w;
  test::MessageFactory factory(w.keywords);
  Host& a = w.add_host();
  Host& b = w.add_host();
  a.set_router(std::make_unique<FirstContactRouter>(w.oracle));
  b.set_router(std::make_unique<FirstContactRouter>(w.oracle));
  auto m = factory.make(a.id(), {"x"});
  const auto id = m.id();
  a.mark_seen(id);
  (void)a.buffer().add(std::move(m), true);
  (void)w.exchange(a, b, kT0);
  EXPECT_FALSE(a.buffer().contains(id));  // handed off
  EXPECT_TRUE(b.buffer().contains(id));
}

// --- SprayAndWait -----------------------------------------------------------------------

TEST(SprayAndWait, BinarySplitHalvesCopies) {
  MicroWorld w;
  test::MessageFactory factory(w.keywords);
  Host& a = w.add_host();
  Host& b = w.add_host();
  a.set_router(std::make_unique<SprayAndWaitRouter>(w.oracle, 8));
  b.set_router(std::make_unique<SprayAndWaitRouter>(w.oracle, 8));
  auto m = factory.make(a.id(), {"x"});
  const auto id = m.id();
  a.mark_seen(id);
  (void)a.buffer().add(std::move(m), true);
  a.router().on_originated(a, *a.buffer().find(id), kT0);
  EXPECT_DOUBLE_EQ(a.buffer().find(id)->property_or("snw.copies", 0), 8.0);

  (void)w.exchange(a, b, kT0);
  EXPECT_DOUBLE_EQ(a.buffer().find(id)->property_or("snw.copies", 0), 4.0);
  EXPECT_DOUBLE_EQ(b.buffer().find(id)->property_or("snw.copies", 0), 4.0);
}

TEST(SprayAndWait, WaitPhaseOnlyDelivers) {
  MicroWorld w;
  test::MessageFactory factory(w.keywords);
  Host& a = w.add_host();
  Host& relay = w.add_host();
  Host& dest = w.add_host();
  for (Host* h : {&a, &relay, &dest}) {
    h->set_router(std::make_unique<SprayAndWaitRouter>(w.oracle, 1));
  }
  w.oracle.set_interests(dest.id(), {w.keywords.intern("flood")});
  auto m = factory.make(a.id(), {"flood"});
  const auto id = m.id();
  a.mark_seen(id);
  (void)a.buffer().add(std::move(m), true);
  a.router().on_originated(a, *a.buffer().find(id), kT0);
  // One copy: no relay spraying, but destinations still get it.
  EXPECT_EQ(w.exchange(a, relay, kT0), 0);
  EXPECT_EQ(w.exchange(a, dest, kT0), 1);
}

TEST(SprayAndWait, RejectsZeroCopies) {
  MicroWorld w;
  EXPECT_THROW(SprayAndWaitRouter(w.oracle, 0), std::invalid_argument);
}

// --- ChitChat ----------------------------------------------------------------------------

class ChitChatFixture : public ::testing::Test {
 protected:
  ChitChatFixture() : factory(w.keywords) {
    params.growth_rate = 0.05;
    params.decay_beta = 0.01;
  }

  Host& make_node(const std::vector<std::string>& interests) {
    Host& h = w.add_host();
    auto router = std::make_unique<ChitChatRouter>(w.oracle, params,
                                                   SimTime::seconds(5));
    std::vector<msg::KeywordId> kws;
    for (const auto& name : interests) kws.push_back(w.keywords.intern(name));
    router->set_direct_interests(kws, kT0);
    w.oracle.set_interests(h.id(), kws);
    h.set_router(std::move(router));
    return h;
  }

  MicroWorld w;
  test::MessageFactory factory;
  chitchat::ChitChatParams params;
};

TEST_F(ChitChatFixture, DeliversToDirectInterest) {
  Host& src = make_node({"alpha"});
  Host& dest = make_node({"flood"});
  auto m = factory.make(src.id(), {"flood"});
  src.mark_seen(m.id());
  (void)src.buffer().add(std::move(m), true);
  w.link_up(src, dest, kT0);
  EXPECT_EQ(w.exchange(src, dest, kT0), 1);
  EXPECT_EQ(w.events.deliveries.size(), 1u);
}

TEST_F(ChitChatFixture, ForwardsOnlyToStrongerRelays) {
  Host& src = make_node({"alpha"});
  Host& weak = make_node({"beta"});     // no interest overlap with the message
  Host& strong = make_node({"flood"});  // direct interest -> destination though
  Host& carrier = make_node({"gamma"});

  // Give the carrier a transient "flood" interest by meeting `strong` first.
  w.link_up(carrier, strong, kT0);
  ASSERT_GT(ChitChatRouter::of(carrier)->interests().weight(w.keywords.find("flood")), 0.0);

  auto m = factory.make(src.id(), {"flood"});
  const auto id = m.id();
  src.mark_seen(id);
  (void)src.buffer().add(std::move(m), true);

  // weak has zero strength for "flood": S_v == S_u == 0, no forward.
  w.link_up(src, weak, SimTime::seconds(100));
  EXPECT_EQ(w.exchange(src, weak, SimTime::seconds(100)), 0);

  // carrier has transient strength > 0 = S_u: relay forward happens.
  w.link_up(src, carrier, SimTime::seconds(200));
  EXPECT_EQ(w.exchange(src, carrier, SimTime::seconds(200)), 1);
  EXPECT_EQ(w.events.relayed, 1);
  EXPECT_TRUE(carrier.buffer().contains(id));
}

TEST_F(ChitChatFixture, MessageStrengthSumsWeights) {
  Host& node = make_node({"a", "b"});
  const msg::Message m = factory.make(util::NodeId(9), {"a", "b", "c"});
  const auto* router = ChitChatRouter::of(node);
  ASSERT_NE(router, nullptr);
  EXPECT_DOUBLE_EQ(router->message_strength(m), 1.0);  // 0.5 + 0.5 + 0
}

TEST_F(ChitChatFixture, TsrExchangeAcquiresTransientInterests) {
  Host& a = make_node({"photography"});
  Host& b = make_node({"cooking"});
  w.link_up(a, b, kT0);
  auto* ra = ChitChatRouter::of(a);
  EXPECT_GT(ra->interests().weight(w.keywords.find("cooking")), 0.0);
  EXPECT_FALSE(ra->interests().has_direct(w.keywords.find("cooking")));
}

TEST_F(ChitChatFixture, SharedInterestWithConnectedNeighborDoesNotDecay) {
  Host& node = make_node({"alpha"});
  Host& neighbor = make_node({"alpha"});
  Host& newcomer = make_node({"beta"});
  // Pump node's "alpha" weight above 0.5 via the neighbor.
  w.link_up(node, neighbor, kT0);
  auto* router = ChitChatRouter::of(node);
  const double grown = router->interests().weight(w.keywords.find("alpha"));
  ASSERT_GT(grown, 0.5);

  // Hours later a new contact triggers pre_exchange. With the neighbor still
  // connected (passed in the neighbor span), "alpha" must not decay...
  std::vector<Host*> still_connected{&neighbor};
  router->pre_exchange(node, SimTime::hours(5), still_connected);
  EXPECT_DOUBLE_EQ(router->interests().weight(w.keywords.find("alpha")), grown);

  // ...whereas with no neighbors it decays toward the 0.5 floor.
  std::vector<Host*> nobody;
  router->pre_exchange(node, SimTime::hours(10), nobody);
  EXPECT_LT(router->interests().weight(w.keywords.find("alpha")), grown);
  (void)newcomer;
}

TEST_F(ChitChatFixture, NonChitChatNeighborsDoNotBlockDecay) {
  Host& node = make_node({"alpha"});
  Host& neighbor = make_node({"alpha"});
  w.link_up(node, neighbor, kT0);
  auto* router = ChitChatRouter::of(node);
  const double grown = router->interests().weight(w.keywords.find("alpha"));

  Host& plain = w.add_host();
  plain.set_router(std::make_unique<EpidemicRouter>(w.oracle));
  std::vector<Host*> only_plain{&plain};
  router->pre_exchange(node, SimTime::hours(5), only_plain);
  EXPECT_LT(router->interests().weight(w.keywords.find("alpha")), grown);
}

TEST_F(ChitChatFixture, OfNonChitChatHostIsNull) {
  Host& plain = w.add_host();
  plain.set_router(std::make_unique<EpidemicRouter>(w.oracle));
  EXPECT_EQ(ChitChatRouter::of(plain), nullptr);
  Host& bare = w.add_host();
  EXPECT_EQ(ChitChatRouter::of(bare), nullptr);
}

TEST_F(ChitChatFixture, DuplicateSuppressedByPlanAndAccept) {
  Host& src = make_node({"x"});
  Host& dest = make_node({"flood"});
  auto m = factory.make(src.id(), {"flood"});
  const auto id = m.id();
  src.mark_seen(id);
  (void)src.buffer().add(std::move(m), true);
  w.link_up(src, dest, kT0);
  EXPECT_EQ(w.exchange(src, dest, kT0), 1);
  // plan() now excludes the message (peer has seen it)...
  EXPECT_TRUE(src.router().plan(src, dest, kT0).empty());
  // ...and even a direct offer is refused as a duplicate.
  const ForwardPlan offer{id, TransferRole::kDestination};
  EXPECT_EQ(dest.router().accept(dest, src, *src.buffer().find(id), offer, kT0),
            AcceptDecision::kDuplicate);
}

}  // namespace
}  // namespace dtnic::routing
