#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "msg/message.h"
#include "routing/types.h"

/// \file oracle.h
/// Destination resolution. In the paper a node is a *destination* for a
/// message when it has a direct (self-defined) interest in one of the
/// message's keywords, and a *relay* when its interest is transient. Direct
/// interests are static per scenario, so all routers share one oracle; the
/// ChitChat weight machinery only decides *which* relays are worth using.

namespace dtnic::routing {

class DestinationOracle {
 public:
  virtual ~DestinationOracle() = default;
  /// True if \p node has a direct interest in any keyword of \p m.
  [[nodiscard]] virtual bool is_destination(NodeId node, const msg::Message& m) const = 0;
  /// The direct (subscription) interests of \p node.
  [[nodiscard]] virtual const std::unordered_set<msg::KeywordId>& interests_of(
      NodeId node) const = 0;
};

/// Oracle backed by a static node -> direct-interest-set map.
class StaticInterestOracle final : public DestinationOracle {
 public:
  void set_interests(NodeId node, std::vector<msg::KeywordId> interests);
  [[nodiscard]] const std::unordered_set<msg::KeywordId>& interests_of(
      NodeId node) const override;

  [[nodiscard]] bool is_destination(NodeId node, const msg::Message& m) const override;

  /// All nodes holding a direct interest in \p keyword (for analysis).
  [[nodiscard]] std::vector<NodeId> subscribers_of(msg::KeywordId keyword) const;

 private:
  std::unordered_map<NodeId, std::unordered_set<msg::KeywordId>> interests_;
  static const std::unordered_set<msg::KeywordId> kEmpty;
};

}  // namespace dtnic::routing
