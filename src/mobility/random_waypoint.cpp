#include "mobility/random_waypoint.h"

#include "util/assert.h"

namespace dtnic::mobility {

RandomWaypoint::RandomWaypoint(const RandomWaypointParams& params, util::Rng rng)
    : params_(params), rng_(rng) {
  DTNIC_REQUIRE(params.area.width > 0.0 && params.area.height > 0.0);
  DTNIC_REQUIRE(params.min_speed_mps > 0.0);
  DTNIC_REQUIRE(params.max_speed_mps >= params.min_speed_mps);
  DTNIC_REQUIRE(params.min_pause_s >= 0.0);
  DTNIC_REQUIRE(params.max_pause_s >= params.min_pause_s);
  from_ = {rng_.uniform(0.0, params_.area.width), rng_.uniform(0.0, params_.area.height)};
  to_ = from_;
  leg_start_s_ = 0.0;
  arrive_s_ = 0.0;
  pause_until_s_ = 0.0;  // start the first leg immediately
}

void RandomWaypoint::advance_leg() {
  from_ = to_;
  to_ = {rng_.uniform(0.0, params_.area.width), rng_.uniform(0.0, params_.area.height)};
  const double speed = rng_.uniform(params_.min_speed_mps, params_.max_speed_mps);
  const double dist = util::distance(from_, to_);
  leg_start_s_ = pause_until_s_;
  arrive_s_ = leg_start_s_ + dist / speed;
  pause_until_s_ = arrive_s_ + rng_.uniform(params_.min_pause_s, params_.max_pause_s);
}

util::Vec2 RandomWaypoint::position_at(util::SimTime t) {
  const double ts = t.sec();
  while (ts > pause_until_s_) advance_leg();
  if (ts >= arrive_s_) return to_;  // pausing at the waypoint
  if (ts <= leg_start_s_) return from_;
  const double frac = (ts - leg_start_s_) / (arrive_s_ - leg_start_s_);
  return util::lerp(from_, to_, frac);
}

}  // namespace dtnic::mobility
