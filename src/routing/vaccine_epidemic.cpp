#include "routing/vaccine_epidemic.h"

namespace dtnic::routing {

VaccineEpidemicRouter* VaccineEpidemicRouter::of(Host& host) {
  if (!host.has_router()) return nullptr;
  Router& router = host.router();
  if (router.kind() != RouterKind::kVaccineEpidemic) return nullptr;
  return static_cast<VaccineEpidemicRouter*>(&router);
}

void VaccineEpidemicRouter::absorb_immunity(Host& self, const VaccineEpidemicRouter& other) {
  for (const MessageId id : other.immune_) {
    if (!immune_.insert(id).second) continue;
    if (self.buffer().remove(id)) {
      // The purge is the antipacket doing its job, not a capacity drop; no
      // drop event is emitted.
    }
  }
}

void VaccineEpidemicRouter::on_link_up(Host& self, Host& peer, util::SimTime now,
                                       double distance_m) {
  EpidemicRouter::on_link_up(self, peer, now, distance_m);
  if (const VaccineEpidemicRouter* other = VaccineEpidemicRouter::of(peer); other != nullptr) {
    absorb_immunity(self, *other);
  }
}

std::vector<ForwardPlan> VaccineEpidemicRouter::plan(Host& self, Host& peer,
                                                     util::SimTime now) {
  std::vector<ForwardPlan> plans = EpidemicRouter::plan(self, peer, now);
  // Do not offer messages the peer is known to be immune to.
  const VaccineEpidemicRouter* other = VaccineEpidemicRouter::of(peer);
  std::erase_if(plans, [this, other](const ForwardPlan& p) {
    if (immune_.count(p.message)) return true;
    return other != nullptr && other->immune_to(p.message);
  });
  return plans;
}

AcceptDecision VaccineEpidemicRouter::accept(Host& self, const Peer& from, const msg::Message& m,
                                             const ForwardPlan& offer, util::SimTime now) {
  if (immune_.count(m.id())) return AcceptDecision::kRefused;
  return EpidemicRouter::accept(self, from, m, offer, now);
}

void VaccineEpidemicRouter::on_received(Host& self, Host& from, msg::Message m,
                                        const ForwardPlan& plan, util::SimTime now) {
  const MessageId id = m.id();
  EpidemicRouter::on_received(self, from, std::move(m), plan, now);
  if (plan.role == TransferRole::kDestination) {
    // Delivered: immunize and stop carrying the copy ourselves.
    immune_.insert(id);
    (void)self.buffer().remove(id);
  }
}

}  // namespace dtnic::routing
