#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stats/time_series.h"

/// \file result.h
/// Everything a finished run reports; the benchmark harness aggregates these
/// across seeds into the paper's figures.

namespace dtnic::scenario {

/// Wall-clock cost of one run, split by phase (util::ScopedTimer accounting:
/// phases are exclusive, so they partition the run without double-counting
/// nested callbacks). Observability only — never fed back into the
/// simulation and excluded from figure outputs, so paper-figure results stay
/// bit-identical across runs.
struct PhaseTimings {
  std::uint64_t scan_ns = 0;      ///< connectivity scans (contact detection)
  std::uint64_t routing_ns = 0;   ///< link up/down handlers + pump ticks
  /// Routing sub-phases; they partition routing_ns (pre + plan + commit).
  /// pre: contact handlers (pre-exchange, link up/down, their inline pumps).
  /// plan: the read-only exchange planning stage of pump_all_idle (wall time
  /// of the parallel fan-out when exchange_threads > 1).
  /// commit: the serial replay stage; a fully serial exchange accounts its
  /// fused plan+commit loop here and leaves routing_plan_ns at zero.
  std::uint64_t routing_pre_ns = 0;
  std::uint64_t routing_plan_ns = 0;
  std::uint64_t routing_commit_ns = 0;
  std::uint64_t transfer_ns = 0;  ///< transfer completion/abort handling
  std::uint64_t workload_ns = 0;  ///< message creation
  std::uint64_t wall_ns = 0;      ///< whole run() wall clock
  std::uint64_t scans = 0;        ///< connectivity scan ticks executed
  /// Staged exchange plans invalidated by a buffer-revision mismatch at
  /// commit and re-planned through the serial pump (see Scenario docs);
  /// expected to be zero in normal operation.
  std::uint64_t exchange_replans = 0;
};

struct RunResult {
  std::string scheme;
  std::uint64_t seed = 0;

  // Delivery.
  std::size_t created = 0;
  std::size_t delivered = 0;  ///< unique messages delivered to >= 1 destination
  double mdr = 0.0;
  double mean_hops = 0.0;
  double mean_latency_s = 0.0;
  std::uint64_t deliveries_total = 0;

  // Priority-segmented delivery (Fig. 5.6).
  std::size_t created_high = 0, created_medium = 0, created_low = 0;
  std::size_t delivered_high = 0, delivered_medium = 0, delivered_low = 0;
  double mdr_high = 0.0, mdr_medium = 0.0, mdr_low = 0.0;

  // Traffic (Fig. 5.2) and contact dynamics.
  std::uint64_t traffic = 0;  ///< transfers started
  std::uint64_t relay_arrivals = 0;
  std::uint64_t contacts = 0;
  std::uint64_t contacts_suppressed = 0;

  // Incentive economy.
  double avg_final_tokens = 0.0;
  double min_final_tokens = 0.0;
  double max_final_tokens = 0.0;
  /// Jain's fairness index of the final token balances (1 = perfectly even).
  double token_fairness = 1.0;
  double total_tokens = 0.0;  ///< conservation check: == N * initial tokens
  double tokens_paid = 0.0;
  std::uint64_t payments = 0;
  std::uint64_t refused_no_tokens = 0;
  std::uint64_t refused_untrusted = 0;

  // Losses.
  std::uint64_t aborted = 0;
  std::uint64_t dropped_buffer = 0;
  std::uint64_t dropped_ttl = 0;

  // Energy.
  double total_energy_j = 0.0;

  // Per-phase wall-clock cost of this run (not a simulation output).
  PhaseTimings timing;

  /// Artifact I/O failures (trace/report/stats streams that went bad while
  /// this run was being written out). Empty = every artifact is complete.
  /// Observers append "<artifact>: <what failed>" entries; the run manifest
  /// echoes them so a truncated file can never pass for a successful run.
  std::vector<std::string> artifact_errors;

  // Fig. 5.4: average rating of malicious nodes at non-malicious nodes.
  stats::TimeSeries malicious_rating;
  // Mean token balance over time (Fig. 5.3 analysis aid).
  stats::TimeSeries mean_tokens;
};

}  // namespace dtnic::scenario
