#pragma once

/// \file radio.h
/// Radio interface parameters shared by connectivity detection, transfer
/// timing, and the Friis energy model. Defaults follow Table 5.1 of the
/// paper (100 m range, 250 kBps transmission speed).

namespace dtnic::net {

struct RadioParams {
  double range_m = 100.0;          ///< communication radius (Table 5.1)
  double bitrate_bps = 250'000.0;  ///< transfer speed in bytes/second (Table 5.1)
  double tx_power_w = 0.1;         ///< transmit power P_t for the Friis formulas
  double wavelength_m = 0.125;     ///< carrier wavelength λ (~2.4 GHz)
  double rx_circuit_power_w = 0.05;  ///< device-side receive electronics draw
                                     ///< (battery accounting only; the paper's
                                     ///< incentive formula uses Friis P_r)
};

}  // namespace dtnic::net
