#include "routing/first_contact.h"

namespace dtnic::routing {

std::vector<ForwardPlan> FirstContactRouter::plan(Host& self, Host& peer, util::SimTime now) {
  (void)now;
  std::vector<ForwardPlan> plans;
  for (const msg::Message* m : self.buffer().messages()) {
    if (peer.has_seen(m->id())) continue;
    const TransferRole role = oracle().is_destination(peer.id(), *m)
                                  ? TransferRole::kDestination
                                  : TransferRole::kRelay;
    plans.push_back(ForwardPlan{m->id(), role});
  }
  return plans;
}

void FirstContactRouter::on_sent(Host& self, Host& peer, const msg::Message& m,
                                 const ForwardPlan& plan, util::SimTime now) {
  (void)peer; (void)plan; (void)now;
  // Single-copy: the copy now lives at the peer.
  self.buffer().remove(m.id());
}

}  // namespace dtnic::routing
