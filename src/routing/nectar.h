#pragma once

#include <unordered_map>

#include "routing/router.h"

/// \file nectar.h
/// NECTAR-style forwarding (thesis §1.1): each node maintains a
/// neighborhood index — an exponentially decayed meeting frequency per
/// encountered node — and hands a bundle to peers with a higher index
/// toward the bundle's destinations. Destinations here are the subscribers
/// of the message's keywords, so the index toward a message is the maximum
/// index over its subscriber set.

namespace dtnic::routing {

struct NectarParams {
  double decay_per_hour = 0.1;  ///< index multiplier decay, exponential
  double meeting_gain = 1.0;    ///< index increment per fresh encounter
  double prune_epsilon = 1e-3;
};

class NectarRouter : public Router {
 public:
  /// Requires the StaticInterestOracle (subscriber enumeration).
  NectarRouter(const StaticInterestOracle& oracle, const NectarParams& params);

  void on_link_up(Host& self, Host& peer, util::SimTime now, double distance_m) override;
  [[nodiscard]] std::vector<ForwardPlan> plan(Host& self, Host& peer,
                                              util::SimTime now) override;

  /// Decayed meeting frequency with \p node.
  [[nodiscard]] double index_of(NodeId node, util::SimTime now) const;
  /// Max index over the subscribers of the message's keywords.
  [[nodiscard]] double index_toward(const msg::Message& m, util::SimTime now) const;

  [[nodiscard]] static NectarRouter* of(Host& host);

 private:
  struct Entry {
    double index = 0.0;
    double updated_s = 0.0;
  };

  [[nodiscard]] double decayed(const Entry& e, util::SimTime now) const;

  const StaticInterestOracle& interests_;
  NectarParams params_;
  std::unordered_map<NodeId, Entry> meetings_;
};

}  // namespace dtnic::routing
