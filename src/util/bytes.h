#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

/// \file bytes.h
/// Endian-safe binary encoding primitives. Every binary artifact (the wire
/// protocol's frames, future binary trace variants) funnels through these
/// helpers so the byte layout is little-endian everywhere, independent of the
/// host's endianness, with no UB type punning: doubles cross the integer
/// boundary via std::bit_cast, and multi-byte integers are assembled
/// byte-by-byte (shifts), which any compiler folds to a plain load/store on
/// little-endian hardware.
///
/// Writers append to a std::vector<std::uint8_t>; readers take a raw pointer
/// the caller has already bounds-checked (wire::ByteReader wraps these with
/// checked cursors). f64 round-trips are exact for every value with a bit
/// pattern — including infinities (SimTime::never()), subnormals, and NaNs
/// (payload preserved).

namespace dtnic::util {

inline void write_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
}

inline void write_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 24) & 0xff));
}

inline void write_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xff));
  }
}

inline void write_f64(std::vector<std::uint8_t>& out, double v) {
  write_u64(out, std::bit_cast<std::uint64_t>(v));
}

[[nodiscard]] inline std::uint16_t read_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(static_cast<std::uint16_t>(p[0]) |
                                    (static_cast<std::uint16_t>(p[1]) << 8));
}

[[nodiscard]] inline std::uint32_t read_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

[[nodiscard]] inline std::uint64_t read_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

[[nodiscard]] inline double read_f64(const std::uint8_t* p) {
  return std::bit_cast<double>(read_u64(p));
}

/// In-place variants for fixed-offset patching (e.g. backfilling a frame's
/// length field after the payload is appended).
inline void store_u32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v & 0xff);
  p[1] = static_cast<std::uint8_t>((v >> 8) & 0xff);
  p[2] = static_cast<std::uint8_t>((v >> 16) & 0xff);
  p[3] = static_cast<std::uint8_t>((v >> 24) & 0xff);
}

}  // namespace dtnic::util
