#include "sim/event_queue.h"

#include "util/assert.h"

namespace dtnic::sim {

EventId EventQueue::push(util::SimTime t, EventFn fn) {
  DTNIC_REQUIRE_MSG(fn != nullptr, "event callback must not be null");
  const std::uint64_t seq = next_seq_++;
  const EventId id{seq};
  heap_.push(Entry{t, seq, id});
  callbacks_.emplace(seq, std::move(fn));
  return id;
}

void EventQueue::cancel(EventId id) {
  if (!id.valid()) return;
  if (callbacks_.erase(id.value) > 0) {
    cancelled_.insert(id.value);
    maybe_shrink();
  }
}

void EventQueue::maybe_shrink() {
  if (callbacks_.empty()) {
    // The queue is logically empty: every remaining heap entry is a
    // cancelled straggler that would otherwise linger indefinitely.
    heap_ = {};
    cancelled_.clear();
    return;
  }
  // Cancel-heavy workloads: once dead entries outnumber live ones, rebuild
  // the heap with only the live entries in one O(n log n) pass, bounding
  // memory by the live event count instead of the cancellation history.
  constexpr std::size_t kCompactionMin = 64;
  if (cancelled_.size() < kCompactionMin || cancelled_.size() <= callbacks_.size()) return;
  std::vector<Entry> live;
  live.reserve(callbacks_.size());
  while (!heap_.empty()) {
    if (cancelled_.count(heap_.top().seq) == 0) live.push_back(heap_.top());
    heap_.pop();
  }
  heap_ = std::priority_queue<Entry, std::vector<Entry>, Later>(Later{}, std::move(live));
  cancelled_.clear();
}

void EventQueue::drop_cancelled() {
  while (!heap_.empty() && cancelled_.count(heap_.top().seq) > 0) {
    cancelled_.erase(heap_.top().seq);
    heap_.pop();
  }
}

bool EventQueue::empty() const {
  return callbacks_.empty();
}

std::size_t EventQueue::size() const { return callbacks_.size(); }

util::SimTime EventQueue::next_time() {
  drop_cancelled();
  DTNIC_REQUIRE_MSG(!heap_.empty(), "next_time() on empty queue");
  return heap_.top().time;
}

EventQueue::Popped EventQueue::pop() {
  drop_cancelled();
  DTNIC_REQUIRE_MSG(!heap_.empty(), "pop() on empty queue");
  const Entry top = heap_.top();
  heap_.pop();
  auto it = callbacks_.find(top.seq);
  DTNIC_ASSERT(it != callbacks_.end());
  Popped out{top.time, std::move(it->second)};
  callbacks_.erase(it);
  maybe_shrink();
  return out;
}

}  // namespace dtnic::sim
