#pragma once

#include "routing/router.h"

/// \file epidemic.h
/// Epidemic routing (Vahdat & Becker 2000): offer every carried message the
/// peer has not seen. Maximal delivery ratio, maximal overhead — the upper
/// baseline the paper's introduction positions data-centric routing against.

namespace dtnic::routing {

class EpidemicRouter : public Router {
 public:
  explicit EpidemicRouter(const DestinationOracle& oracle,
                          RouterKind kind = RouterKind::kEpidemic)
      : Router(oracle, kind) {}

  [[nodiscard]] std::vector<ForwardPlan> plan(Host& self, Host& peer,
                                              util::SimTime now) override;
};

}  // namespace dtnic::routing
