/// Reproduces Figure 5.6 (Priority-Segmented MDR): with 50% of sources
/// generating high-priority/high-quality/larger messages, 30% medium and
/// 20% low, compare the per-priority delivery of the incentive scheme
/// against ChitChat at 20% and 40% selfish nodes. Paper shape: the
/// incentive scheme delivers MORE high-priority messages than ChitChat in
/// both settings, because its forwarding order and rewards favour priority
/// and quality.

#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace dtnic;
  util::Cli cli;
  const bench::BenchScale scale = bench::resolve_scale(cli, argc, argv, argv[0]);
  bench::print_header("Figure 5.6: priority-segmented MDR", scale);

  const scenario::SweepRunner sweep(scale.seeds);

  std::vector<double> selfish_levels;
  std::vector<scenario::ScenarioConfig> points;
  for (const double selfish : {0.2, 0.4}) {
    for (const auto scheme : {scenario::Scheme::kIncentive, scenario::Scheme::kChitChat}) {
      scenario::ScenarioConfig cfg = bench::base_config(scale);
      cfg.priority_workload = true;
      cfg.selfish_fraction = selfish;
      cfg.scheme = scheme;
      // Priority handling shows when first delivery is not trivial: scarcer
      // interest overlap forces real multi-hop routing, and enrichment (the
      // incentive scheme's reach-widener) has latent facts to add. Tokens
      // stay at the Table 5.1 allowance — Fig. 5.6 is not a token-scarcity
      // experiment (that is Fig. 5.3).
      cfg.messages_per_node_per_hour = 1.0;
      cfg.incentive.initial_tokens = 200.0;
      cfg.interests_per_node = 5;
      cfg.keywords_per_message = 2;
      cfg.latent_extra_keywords = 3;
      cfg.enrich_probability = 0.5;
      cfg.honest_max_tags = 3;
      points.push_back(cfg);
      selfish_levels.push_back(selfish);
    }
  }
  const auto results = sweep.run_all(points);

  util::Table table({"selfish %", "scheme", "MDR high", "MDR medium", "MDR low",
                     "high delivered"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& agg = results[i];
    double delivered_high = 0;
    for (const auto& r : agg.raw) delivered_high += static_cast<double>(r.delivered_high);
    delivered_high /= static_cast<double>(agg.raw.size());
    table.add_row({util::Table::cell(selfish_levels[i] * 100.0, 0),
                   scenario::scheme_name(points[i].scheme),
                   util::Table::cell(agg.mdr_high.mean(), 3),
                   util::Table::cell(agg.mdr_medium.mean(), 3),
                   util::Table::cell(agg.mdr_low.mean(), 3),
                   util::Table::cell(delivered_high, 1)});
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: at each selfish level the incentive scheme's high-priority\n"
               "MDR meets or beats chitchat's, and within the incentive scheme\n"
               "high >= medium >= low.\n";
  return 0;
}
