#pragma once

#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/behavior.h"
#include "core/incentive_router.h"
#include "core/pi_router.h"
#include "mobility/mobility_model.h"
#include "msg/id_source.h"
#include "msg/keyword.h"
#include "net/connectivity.h"
#include "net/contact_source.h"
#include "net/contact_trace.h"
#include "net/scripted_contacts.h"
#include "net/transfer.h"
#include "obs/event_fanout.h"
#include "routing/host.h"
#include "routing/oracle.h"
#include "scenario/config.h"
#include "scenario/result.h"
#include "sim/simulator.h"
#include "stats/metrics.h"
#include "util/thread_pool.h"

/// \file scenario.h
/// Wires every subsystem into one runnable world: mobility + connectivity
/// detect contacts, the contact controller drives the router protocol over
/// bandwidth-limited transfers, the workload generator creates annotated
/// messages, and the metrics collector observes everything. One Scenario is
/// one seeded run; the ExperimentRunner aggregates several.

namespace dtnic::scenario {

class Scenario {
 public:
  explicit Scenario(const ScenarioConfig& config);
  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  /// Run to the configured horizon and report.
  RunResult run();

  // --- introspection (tests, examples) -------------------------------------
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] routing::Host& host(routing::NodeId id);
  [[nodiscard]] std::size_t node_count() const { return hosts_.size(); }
  [[nodiscard]] const stats::MetricsCollector& metrics() const { return metrics_; }
  [[nodiscard]] const ScenarioConfig& config() const { return cfg_; }
  /// The run's event hub: every Host dispatches here, and the metrics
  /// collector is its first sink. Register observers (trace sinks, per-node
  /// stats) before run(); they see events in registration order.
  [[nodiscard]] obs::EventFanout& events() { return fanout_; }
  [[nodiscard]] const core::BehaviorProfile& behavior_of(routing::NodeId id) const;
  [[nodiscard]] const routing::StaticInterestOracle& oracle() const { return oracle_; }
  [[nodiscard]] msg::KeywordTable& keywords() { return keywords_; }
  [[nodiscard]] const net::ContactTrace& contact_trace() const { return trace_; }
  /// The active contact source (mobility-driven or trace replay).
  [[nodiscard]] net::ContactSource& contacts() { return *contacts_; }
  /// The link/transfer bookkeeping (introspection for leak probes).
  [[nodiscard]] net::TransferManager& transfers() { return *transfers_; }

  /// Leak probe for the per-link exchange bookkeeping: total entries across
  /// the toggle / refused-this-contact / idle-memo maps. Every map is erased
  /// on link-down, so this is bounded by 3x the live link count no matter
  /// how many contacts have churned through (the companion of the
  /// TransferManager links_tracked probe).
  [[nodiscard]] std::size_t exchange_state_tracked() const {
    return link_toggle_.size() + refused_this_contact_.size() + idle_memo_.size();
  }

  /// Times the commit stage found a stale staged plan and re-ran the serial
  /// pump inline. Zero in a pure exchange tick (commit never touches
  /// buffers); nonzero only if something mutated a buffer between the plan
  /// and commit stages.
  [[nodiscard]] std::uint64_t exchange_replans() const { return exchange_replans_; }

  /// Sum of all ledgers right now (token conservation checks).
  [[nodiscard]] double total_tokens() const;

  /// Fig. 5.4 metric: mean rating of malicious nodes across non-malicious
  /// nodes that have formed an opinion; default rating if none has.
  [[nodiscard]] double current_malicious_rating() const;

 private:
  void build();
  void make_router(std::size_t index);

  // Contact controller.
  void handle_link_up(routing::NodeId a, routing::NodeId b, double distance_m);
  void handle_link_down(routing::NodeId a, routing::NodeId b);
  void handle_transfer_complete(const net::TransferManager::Transfer& t,
                                util::SimTime duration);
  void handle_transfer_abort(const net::TransferManager::Transfer& t);
  /// Try to start the next transfer on an idle link; alternates direction.
  void pump(routing::NodeId a, routing::NodeId b);
  void pump_all_idle();

  // Parallel exchange (DESIGN.md "Parallel exchange phase"): pump_all_idle
  // splits into a read-only plan stage fanned across exchange_threads and a
  // serial commit stage that replays the staged outcomes in the exact
  // serial pair order — bit-identical to the serial pump by construction.
  void plan_staged();
  void commit_staged();
  void stage_link(std::size_t index, std::size_t worker);
  /// Append the node ids currently connected to \p id to \p out.
  void append_neighbor_ids(routing::NodeId id, std::vector<std::uint32_t>& out) const;

  // Workload.
  void schedule_next_message(std::size_t index);
  void create_message(std::size_t index);

  // Periodic maintenance.
  void ttl_sweep();
  void sample_series();

  /// Fill \p out with the hosts currently connected to \p id (clears first).
  void fill_neighbor_hosts(routing::NodeId id, std::vector<routing::Host*>& out);
  [[nodiscard]] static std::uint64_t pair_key(routing::NodeId a, routing::NodeId b);

  ScenarioConfig cfg_;
  util::Rng master_rng_;
  util::Rng gate_rng_;
  sim::Simulator sim_;
  msg::KeywordTable keywords_;
  std::vector<msg::KeywordId> pool_;
  msg::MessageIdSource ids_;
  routing::StaticInterestOracle oracle_;
  core::IncentiveWorld world_;
  core::PiEscrowBank pi_bank_;
  /// Declared before hosts_: hosts bind the fan-out by reference at
  /// construction, so it must outlive them.
  obs::EventFanout fanout_;
  stats::MetricsCollector metrics_;
  obs::SinkHandle metrics_sink_;

  std::vector<std::unique_ptr<mobility::MobilityModel>> mobility_;
  std::vector<std::unique_ptr<routing::Host>> hosts_;
  std::vector<core::BehaviorProfile> behaviors_;
  std::vector<util::Rng> workload_rng_;
  /// Fig. 5.6 source class per node: 0 high, 1 medium, 2 low.
  std::vector<int> source_class_;

  std::unique_ptr<net::ContactSource> contacts_;
  /// Non-owning view of contacts_ when mobility-driven (timing readout).
  net::ConnectivityManager* connectivity_ = nullptr;
  std::unique_ptr<net::TransferManager> transfers_;
  net::ContactTrace trace_;

  /// Per-phase wall-clock accumulators (util::ScopedTimer; exclusive).
  /// The routing phase is split into three sub-counters that partition it:
  /// pre (contact handlers: pre-exchange/link-up/down and their inline
  /// pumps), plan (the exchange planning stage of pump_all_idle), and
  /// commit (the serial replay; the fused serial loop counts here too).
  std::uint64_t routing_pre_ns_ = 0;
  std::uint64_t routing_plan_ns_ = 0;
  std::uint64_t routing_commit_ns_ = 0;
  std::uint64_t transfer_ns_ = 0;
  std::uint64_t workload_ns_ = 0;
  std::uint64_t exchange_replans_ = 0;

  struct PendingTransfer {
    routing::ForwardPlan plan;
    msg::Message copy;  ///< snapshot taken when the transfer started
  };
  std::unordered_map<std::uint64_t, PendingTransfer> pending_;
  std::unordered_map<std::uint64_t, bool> link_toggle_;
  /// Offers refused during the current contact, keyed by link; an offer is
  /// not retried until the next contact (message id << 1 | direction bit).
  std::unordered_map<std::uint64_t, std::unordered_set<std::uint64_t>> refused_this_contact_;
  /// Buffer revisions of both endpoints at the last fruitless pump; the link
  /// is not re-planned until either endpoint's buffer changes.
  std::unordered_map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>> idle_memo_;

  /// Contact-controller scratch, reused across contacts so the per-contact
  /// pre-exchange/plan path allocates nothing at steady state.
  std::vector<routing::Host*> neighbors_a_scratch_;
  std::vector<routing::Host*> neighbors_b_scratch_;
  std::vector<routing::ForwardPlan> plan_scratch_;

  // --- staged exchange state ------------------------------------------------
  /// One offer the plan stage walked that had an observable outcome: either
  /// a refusal (replayed as fanout + refused-set insert) or the accepted
  /// transfer. Offers skipped with no side effect (already refused this
  /// contact, message gone) are not recorded.
  struct StagedOffer {
    routing::ForwardPlan plan;
    std::uint64_t offer_key = 0;
    routing::NodeId from;
    routing::NodeId to;
    routing::AcceptDecision decision = routing::AcceptDecision::kRefused;
  };
  /// The staged outcome of one link's pump, plus the buffer revisions it was
  /// planned against. Commit validates the revisions before replaying; on a
  /// mismatch the serial pump re-plans the link inline.
  struct StagedLink {
    routing::NodeId a;
    routing::NodeId b;
    std::uint64_t key = 0;
    std::pair<std::uint64_t, std::uint64_t> revisions{0, 0};
    bool gated = false;     ///< no link / link busy at plan time: no-op
    bool idle = false;      ///< idle-memo hit at plan time: no-op
    bool accepted = false;  ///< offers ends with the accepted transfer
    std::vector<StagedOffer> offers;  ///< serial walk order
  };
  /// Per-worker planning scratch, one slot per co_run task.
  struct ExchangeScratch {
    std::vector<routing::ForwardPlan> plans;
    std::vector<std::uint32_t> lock_ids;
  };
  std::size_t exchange_threads_ = 1;  ///< resolved (0 = auto) at build()
  /// Dedicated plan-stage pool of exchange_threads_ - 1 workers; never the
  /// shared pool, whose queue may hold whole-seed experiment jobs (a nested
  /// co_run wait there can deadlock). Null when the exchange is serial.
  std::unique_ptr<util::ThreadPool> exchange_pool_;
  /// One mutex per host: a plan task locks {a, b} and both neighborhoods
  /// (sorted, so acquisition is deadlock-free) before planning link (a, b),
  /// serializing the routers' memo caches and member scratch without
  /// affecting outputs — every planned value is a pure function of state
  /// frozen for the tick.
  std::unique_ptr<std::mutex[]> host_locks_;
  std::vector<std::pair<routing::NodeId, routing::NodeId>> staged_pairs_;
  std::vector<StagedLink> staged_;
  std::vector<ExchangeScratch> exchange_scratch_;

  friend struct ScenarioTestPeer;

  stats::TimeSeries malicious_rating_series_;
  stats::TimeSeries mean_tokens_series_;
  bool built_ = false;
};

}  // namespace dtnic::scenario
