/// Reproduces Table 5.1 (Simulation Parameters): prints the paper's default
/// configuration as encoded in ScenarioConfig::paper_defaults() and validates
/// it, so any drift between the code and the paper is caught here.

#include <iostream>

#include "bench_common.h"

int main() {
  using dtnic::scenario::ScenarioConfig;
  const ScenarioConfig cfg = ScenarioConfig::paper_defaults();
  cfg.validate();

  dtnic::util::Table table({"Configuration", "Default Value", "Paper (Table 5.1)"});
  auto row = [&table](const std::string& name, const std::string& ours,
                      const std::string& paper) {
    table.add_row({name, ours, paper});
  };
  row("Number of Participants", std::to_string(cfg.num_nodes), "500");
  row("Pool of Social Interest Keywords", std::to_string(cfg.keyword_pool_size), "200");
  row("No of Defined Social Interests", std::to_string(cfg.interests_per_node) + " per node",
      "20 per node");
  row("Transmission speed", dtnic::util::Table::cell(cfg.radio.bitrate_bps / 1000.0, 0) +
      " kBps", "250 kBps");
  row("Transmission radius", dtnic::util::Table::cell(cfg.radio.range_m, 0) + " meters",
      "100 meters");
  row("Buffer capacity",
      std::to_string(cfg.buffer_capacity_bytes / (1024 * 1024)) + " MB", "250 MB");
  row("Message Size", std::to_string(cfg.message_size_bytes / (1024 * 1024)) + " MB", "1 MB");
  row("Area", dtnic::util::Table::cell(cfg.area_side_m * cfg.area_side_m / 1e6, 2) +
      " sq.km.", "5 sq.km.");
  row("Simulated time", dtnic::util::Table::cell(cfg.sim_hours, 0) + " hours", "24 hours");
  row("Threshold for relay", dtnic::util::Table::cell(cfg.incentive.relay_threshold, 1),
      "0.8");
  row("Number of initial tokens",
      dtnic::util::Table::cell(cfg.incentive.initial_tokens, 0) + " per node",
      "200 per node");

  std::cout << "== Table 5.1: Simulation Parameters ==\n\n";
  table.print(std::cout);
  std::cout << "\nvalidation: OK\n";
  return 0;
}
