#pragma once

#include "mobility/mobility_model.h"

/// \file stationary.h
/// A node that never moves; used for infrastructure nodes and for
/// deterministic unit tests of connectivity and routing.

namespace dtnic::mobility {

class Stationary final : public MobilityModel {
 public:
  explicit Stationary(util::Vec2 position) : position_(position) {}

  [[nodiscard]] util::Vec2 position_at(util::SimTime) override { return position_; }
  [[nodiscard]] double max_speed() const override { return 0.0; }

  void move_to(util::Vec2 p) { position_ = p; }

 private:
  util::Vec2 position_;
};

}  // namespace dtnic::mobility
