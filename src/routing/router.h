#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "msg/message.h"
#include "routing/host.h"
#include "routing/oracle.h"
#include "routing/types.h"
#include "util/sim_time.h"

/// \file router.h
/// The routing strategy interface. One Router instance is attached to each
/// Host; the contact controller drives the protocol:
///
///   link up:   pre_exchange(both) -> on_link_up(both) -> pump
///   pump:      plan() -> peer accept() -> transfer starts
///   complete:  prepare_send(sender) -> on_sent(sender) -> on_received(peer)
///   link down: on_link_down(both), in-flight transfer aborted
///
/// The base class implements the common store-and-mark-seen behavior; the
/// concrete routers differ in plan() and the hooks.

namespace dtnic::routing {

/// Concrete routing scheme tag, fixed at construction. The contact hot path
/// recovers a router's concrete type per neighbor per slot (ChitChat decay,
/// strength queries, reputation exchange); a one-byte tag comparison replaces
/// the dynamic_cast that used to dominate those loops.
enum class RouterKind : std::uint8_t {
  kOther,  ///< base-class default; externally derived routers land here
  kEpidemic,
  kVaccineEpidemic,
  kDirectDelivery,
  kSprayAndWait,
  kFirstContact,
  kTwoHop,
  kProphet,
  kNectar,
  kChitChat,
  kIncentive,
  kPiIncentive,
};

/// True when \p kind is ChitChatRouter or one of its derivations (the
/// incentive schemes run on the ChitChat substrate).
[[nodiscard]] constexpr bool is_chitchat_kind(RouterKind kind) {
  return kind == RouterKind::kChitChat || kind == RouterKind::kIncentive ||
         kind == RouterKind::kPiIncentive;
}

class Router {
 public:
  explicit Router(const DestinationOracle& oracle, RouterKind kind = RouterKind::kOther)
      : oracle_(oracle), kind_(kind) {}
  virtual ~Router() = default;

  [[nodiscard]] RouterKind kind() const { return kind_; }

  /// Called once when the router is plugged into its host.
  virtual void attach(Host& self) { (void)self; }

  /// Phase 1 of a contact: runs for both endpoints before on_link_up.
  /// ChitChat decays its interest weights here against the *pre-contact*
  /// neighborhood. \p now is the contact time; \p neighbors are the hosts
  /// currently connected to \p self (excluding the new peer).
  virtual void pre_exchange(Host& self, util::SimTime now, std::span<Host* const> neighbors) {
    (void)self; (void)now; (void)neighbors;
  }

  /// Phase 2: both sides have decayed; exchange and grow state.
  /// \p distance_m is the node separation when the contact formed (the
  /// incentive scheme's Friis hardware factor uses it).
  virtual void on_link_up(Host& self, Host& peer, util::SimTime now, double distance_m) {
    (void)self; (void)peer; (void)now; (void)distance_m;
  }

  virtual void on_link_down(Host& self, Host& peer, util::SimTime now) {
    (void)self; (void)peer; (void)now;
  }

  /// The ordered transfer wishlist from \p self to \p peer right now.
  /// Implementations must not offer messages \p peer has already seen.
  [[nodiscard]] virtual std::vector<ForwardPlan> plan(Host& self, Host& peer,
                                                      util::SimTime now) = 0;

  /// Allocation-aware variant of plan(): fill \p out (cleared first) instead
  /// of returning a fresh vector, so a caller-owned scratch vector absorbs
  /// the per-contact allocation. The default forwards to plan(); the hot
  /// routers (ChitChat and the incentive schemes) implement their planning
  /// here and derive plan() from it.
  ///
  /// PLAN-SIDE PURITY CONTRACT (the parallel exchange depends on it): the
  /// scenario's staged exchange calls plan_into and accept concurrently for
  /// different links while holding exclusive locks over {self, peer} and
  /// both neighborhoods. An implementation must therefore (a) produce
  /// outputs that are a deterministic function of state frozen for the tick
  /// — no RNG draws, no time-of-call dependence beyond \p now — and
  /// (b) confine any mutation to logically-const memoization or member
  /// scratch of routers in that locked set (e.g. the ChitChat strength
  /// cache, PRoPHET's idempotent same-timestamp aging). Observable protocol
  /// state may only change in the commit-side hooks (on_sent, on_received,
  /// on_link_up/down), which always run serially.
  virtual void plan_into(Host& self, Host& peer, util::SimTime now,
                         std::vector<ForwardPlan>& out) {
    out = plan(self, peer, now);
  }

  /// Peer-side admission control, evaluated before the transfer starts.
  /// \p offer carries the sender's role decision and incentive terms.
  /// Subject to the same plan-side purity contract as plan_into: the base
  /// implementation is a read-only has_seen check, and every in-tree
  /// override only reads state (ratings trust gate, ledger affordability,
  /// buffer admission) of the locked {self, from} pair.
  ///
  /// \p from is the transport-neutral Peer view of the sender (peer.h): in
  /// the simulator it is the sending Host; in live mode it is the
  /// RemotePeer the offer frame arrived from, and \p m is a skeleton
  /// message reconstructed from the offer's metadata (id, size, priority,
  /// quality) — exactly the fields the in-tree admission checks read.
  [[nodiscard]] virtual AcceptDecision accept(Host& self, const Peer& from,
                                              const msg::Message& m, const ForwardPlan& offer,
                                              util::SimTime now);

  /// Sender-side hook to stamp metadata onto the outgoing copy (spray
  /// counters) just before it is handed to the peer.
  virtual void prepare_send(Host& self, Host& peer, msg::Message& copy,
                            const ForwardPlan& plan, util::SimTime now) {
    (void)self; (void)peer; (void)copy; (void)plan; (void)now;
  }

  /// Sender-side notification that the copy was fully transferred.
  virtual void on_sent(Host& self, Host& peer, const msg::Message& m, const ForwardPlan& plan,
                       util::SimTime now) {
    (void)self; (void)peer; (void)m; (void)plan; (void)now;
  }

  /// Receiver-side: a complete copy arrived. \p plan is the offer this
  /// transfer was accepted under (role + incentive terms). Default: mark
  /// seen and store, reporting buffer evictions to the event sink.
  virtual void on_received(Host& self, Host& from, msg::Message m, const ForwardPlan& plan,
                           util::SimTime now);

  /// Either side: the in-flight transfer was cut by link loss.
  virtual void on_abort(Host& self, Host& peer, MessageId id, util::SimTime now) {
    (void)self; (void)peer; (void)id; (void)now;
  }

  /// Source-side: the host originated \p m (already stored by the caller).
  virtual void on_originated(Host& self, const msg::Message& m, util::SimTime now) {
    (void)self; (void)m; (void)now;
  }

  [[nodiscard]] const DestinationOracle& oracle() const { return oracle_; }

 protected:
  /// Store \p m in \p self's buffer; evictions are reported as drops.
  /// Returns true if stored.
  bool store(Host& self, msg::Message m, bool own) const;

 private:
  const DestinationOracle& oracle_;
  RouterKind kind_ = RouterKind::kOther;
};

}  // namespace dtnic::routing
