#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "scenario/config.h"
#include "scenario/result.h"
#include "util/summary.h"

/// \file experiment.h
/// Multi-seed experiment execution: the paper reports every figure as the
/// average of five simulation runs; AggregateResult carries mean and stddev
/// of each metric across seeds.
///
/// Seeded runs are independent (each Scenario owns its RNG, keyword table
/// and metrics), so ExperimentRunner fans them across the process-wide
/// util::ThreadPool and aggregates in deterministic seed order — the
/// parallel result is bit-identical to the serial one. SweepRunner extends
/// the same idea across a whole sweep: all (point, seed) jobs are submitted
/// as one batch so the pool never idles between sweep points.

namespace dtnic::scenario {

class Scenario;

/// Per-run observability hook. An observer is created on the worker thread
/// that owns the seeded Scenario, registers its sinks on scenario.events()
/// in the factory, and is destroyed (after on_finish) before the Scenario —
/// so each seeded run writes to its own sinks with no cross-thread sharing
/// and no locking.
class RunObserver {
 public:
  virtual ~RunObserver() = default;
  /// Called after run() completes, while the Scenario is still alive. The
  /// result is mutable so observers can surface artifact-write failures
  /// (result.artifact_errors) — a truncated trace or stats file must be
  /// visible in the run's own record, not just on stderr.
  virtual void on_finish(Scenario& scenario, RunResult& result) { (void)scenario; (void)result; }
};

/// Invoked once per seeded run, on the run's worker thread, after the
/// Scenario is built but before run(). May return nullptr for "no observer".
using ObserverFactory =
    std::function<std::unique_ptr<RunObserver>(Scenario& scenario, std::uint64_t seed)>;

struct AggregateResult {
  std::string scheme;
  std::size_t runs = 0;
  util::RunningStats mdr;
  util::RunningStats traffic;
  util::RunningStats created;
  util::RunningStats delivered;
  util::RunningStats mdr_high;
  util::RunningStats mdr_medium;
  util::RunningStats mdr_low;
  util::RunningStats avg_final_tokens;
  util::RunningStats refused_no_tokens;
  util::RunningStats refused_untrusted;
  util::RunningStats mean_latency_s;
  util::RunningStats mean_hops;
  /// Per-phase wall-clock cost across seeds, in milliseconds (observability
  /// only: never part of figure outputs).
  util::RunningStats scan_ms;
  util::RunningStats routing_ms;
  /// Routing sub-phases (see PhaseTimings): pre-exchange handlers, the
  /// staged-exchange plan stage, and the serial commit stage.
  util::RunningStats routing_pre_ms;
  util::RunningStats routing_plan_ms;
  util::RunningStats routing_commit_ms;
  util::RunningStats transfer_ms;
  util::RunningStats workload_ms;
  util::RunningStats wall_ms;
  std::vector<RunResult> raw;  ///< per-seed results (time series live here)
};

class ExperimentRunner {
 public:
  /// Number of seeds per configuration; the paper uses five runs.
  explicit ExperimentRunner(std::size_t seeds = 5, std::uint64_t base_seed = 1);

  /// Run one configuration across all seeds (seed = base, base+1, ...),
  /// fanned out over util::ThreadPool::shared(). Aggregation happens in
  /// seed order, so the result is bit-identical to run_serial(). The
  /// optional factory attaches per-run observers (trace sinks, per-node
  /// stats); each run's observer lives on that run's worker thread.
  [[nodiscard]] AggregateResult run(ScenarioConfig config,
                                    const ObserverFactory& factory = {}) const;

  /// Reference implementation: the same seeds, one after another on the
  /// calling thread. Kept as the determinism baseline for tests.
  [[nodiscard]] AggregateResult run_serial(ScenarioConfig config,
                                           const ObserverFactory& factory = {}) const;

  /// Run a single seeded configuration.
  [[nodiscard]] static RunResult run_once(ScenarioConfig config,
                                          const ObserverFactory& factory = {});

  /// Fold per-seed results (already in seed order) into an aggregate.
  [[nodiscard]] static AggregateResult aggregate(std::string scheme,
                                                 std::vector<RunResult> runs);

  /// Fig. 5.4 helper: average the malicious-rating series across seeds over
  /// the union of all runs' sample times. Runs that have no sample at (or
  /// before) a grid time contribute their series' initial value.
  [[nodiscard]] static std::vector<std::pair<double, double>> mean_series(
      const std::vector<RunResult>& runs);

  [[nodiscard]] std::size_t seeds() const { return seeds_; }
  [[nodiscard]] std::uint64_t base_seed() const { return base_seed_; }

 private:
  std::size_t seeds_;
  std::uint64_t base_seed_;
};

/// Parallelizes a whole sweep (points x seeds) as one job set on the shared
/// pool. Results come back in input order, each aggregated in seed order,
/// so a sweep produces exactly what point-by-point ExperimentRunner::run
/// calls would — just without serializing across sweep points.
class SweepRunner {
 public:
  explicit SweepRunner(std::size_t seeds = 5, std::uint64_t base_seed = 1);

  /// Run every configuration across all seeds; result i corresponds to
  /// points[i].
  [[nodiscard]] std::vector<AggregateResult> run_all(
      const std::vector<ScenarioConfig>& points) const;

  [[nodiscard]] std::size_t seeds() const { return seeds_; }

 private:
  std::size_t seeds_;
  std::uint64_t base_seed_;
};

}  // namespace dtnic::scenario
