#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.h"

namespace dtnic::util {
namespace {

TEST(ThreadPool, RunsAllTasksAndReturnsResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);

  std::atomic<int> executed{0};
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([i, &executed] {
      executed.fetch_add(1, std::memory_order_relaxed);
      return i * i;
    }));
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
  EXPECT_EQ(executed.load(), 64);
}

TEST(ThreadPool, PropagatesTaskExceptions) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 7; });
  auto boom = pool.submit([]() -> int { throw std::runtime_error("task failed"); });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(boom.get(), std::runtime_error);
}

TEST(ThreadPool, DrainsQueueOnShutdown) {
  std::atomic<int> executed{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      futures.push_back(pool.submit([&executed] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        executed.fetch_add(1, std::memory_order_relaxed);
      }));
    }
    // Destructor joins after the queue drains; every future must be ready.
  }
  EXPECT_EQ(executed.load(), 32);
  for (auto& f : futures) {
    EXPECT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    f.get();  // must not throw broken_promise
  }
}

TEST(ThreadPool, SingleWorkerPreservesSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(pool.submit([i, &order] { order.push_back(i); }));
  }
  for (auto& f : futures) f.get();
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPool, DefaultThreadCountHonorsEnvOverride) {
  const char* saved = std::getenv("DTNIC_THREADS");
  const std::string restore = saved ? saved : "";

  ASSERT_EQ(setenv("DTNIC_THREADS", "3", 1), 0);
  EXPECT_EQ(ThreadPool::default_thread_count(), 3u);

  ASSERT_EQ(setenv("DTNIC_THREADS", "not-a-number", 1), 0);
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);  // falls back to hardware

  ASSERT_EQ(setenv("DTNIC_THREADS", "0", 1), 0);
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);

  if (saved != nullptr) {
    ASSERT_EQ(setenv("DTNIC_THREADS", restore.c_str(), 1), 0);
  } else {
    ASSERT_EQ(unsetenv("DTNIC_THREADS"), 0);
  }
}

TEST(ThreadPool, ZeroRequestsDefaultSize) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

}  // namespace
}  // namespace dtnic::util
