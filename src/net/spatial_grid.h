#pragma once

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "util/arena.h"
#include "util/ids.h"
#include "util/vec2.h"

/// \file spatial_grid.h
/// Uniform-grid spatial index for range queries. The index is *persistent*:
/// each node owns a slot for its lifetime and a scan moves only the nodes
/// whose cell actually changed (`update`), instead of rebuilding the whole
/// structure. Cells left empty are pruned immediately, so a long roaming run
/// never grows the cell map beyond the live population. Cell size equals the
/// query radius so only the 3x3 neighborhood must be examined.
///
/// Cells live in one contiguous pool (recycled through a free list) with the
/// first few entries stored inline *in structure-of-arrays form*: each cell
/// owns x[4] / y[4] coordinate lanes, padded with +inf past the live count,
/// in a one-cache-line ScanBlock mirror array separate from the cold
/// bookkeeping (ids, links, and counts live in small dense side arrays). A
/// pair scan therefore loads whole lanes with one (vector) load and tests
/// distances branchlessly — the inf padding guarantees dead lanes never
/// pass the radius test, so no per-lane count check exists on the hot path
/// — and probing a neighbor cell costs exactly one cache line.
/// Neighbor links are pool indices, kept as a reciprocal half/rev pair so
/// creating or pruning a cell patches its neighborhood without hash lookups.
///
/// The inner distance loop is compiled as interchangeable kernels (scalar
/// always; SSE2/AVX2 under the DTNIC_SIMD build option) selected at runtime.
/// All kernels compute the identical IEEE expression (sub, mul, mul, add —
/// fused contraction disabled) over the identical values and emit the same
/// pair *set*; the (a, b) sort then canonicalizes emission order, so every
/// variant produces bit-identical output.

namespace dtnic::net {

class SpatialGrid {
 public:
  /// \p cell_size should equal the query radius for the 3x3 guarantee.
  explicit SpatialGrid(double cell_size);

  SpatialGrid(const SpatialGrid&) = delete;
  SpatialGrid& operator=(const SpatialGrid&) = delete;

  /// Remove every node and cell.
  void clear();

  /// Register a node (must not already be present). Returns a stable slot
  /// handle that `update_slot` accepts, so hot callers skip the id lookup.
  std::size_t insert(util::NodeId id, util::Vec2 position);

  /// Move a node. Only touches the cell map when the node changed cell.
  void update(util::NodeId id, util::Vec2 position);

  /// Same as `update`, addressed by the slot handle `insert` returned.
  void update_slot(std::size_t slot, util::Vec2 position);

  /// Two-phase variant of `update_slot` for sharded scans. `stage_position`
  /// records the new position (dense-array and same-cell lane writes only)
  /// and reports whether the node's cell changed; it never touches cell
  /// membership, and distinct slots write distinct memory, so distinct slots
  /// may be staged concurrently from different threads.
  /// Every slot that returned true must then be passed to `commit_move`
  /// serially — in ascending slot order for layout determinism — before the
  /// next enumeration. stage+commit is exactly equivalent to `update_slot`.
  [[nodiscard]] bool stage_position(std::size_t slot, util::Vec2 position);
  void commit_move(std::size_t slot);

  [[nodiscard]] std::size_t size() const { return slots_.size(); }
  /// Occupied cells only; empty cells are pruned, so this never exceeds
  /// size() no matter how far the population roams.
  [[nodiscard]] std::size_t cell_count() const { return cell_index_.size(); }

  /// All ids strictly within \p radius of \p center (excluding \p self),
  /// written into the caller-owned \p out (cleared first) so a reused
  /// scratch vector makes repeated queries allocation-free.
  void neighbors_of(util::Vec2 center, double radius, util::NodeId self,
                    std::vector<util::NodeId>& out) const;

  /// All unordered pairs (a, b) with a < b and distance(a, b) <= radius.
  /// \p radius must be <= cell_size.
  struct Pair {
    util::NodeId a;
    util::NodeId b;
    double distance_m;
  };
  /// Writes the pairs into \p out (cleared first), sorted by (a, b) — the
  /// emission order is independent of hash-map layout, which makes every
  /// consumer deterministic by construction. Reusing \p out across scans
  /// makes the steady state allocation-free.
  void pairs_within(double radius, std::vector<Pair>& out) const;
  /// Convenience wrapper for tests and one-shot callers.
  [[nodiscard]] std::vector<Pair> pairs_within(double radius) const;

  /// Per-caller sort buffers for `pairs_within_shard`. The single-threaded
  /// `pairs_within` reuses member scratch; shard calls run concurrently, so
  /// each shard owns one of these (reused across scans → allocation-free).
  struct SortScratch {
    std::vector<Pair> pairs;
    std::vector<std::uint32_t> offsets;
  };

  /// Deterministic owner rule for sharded enumeration: a cell belongs to the
  /// shard picked by its column, round-robin so K shards interleave columns
  /// and stay balanced for any world extent. The owning cell emits all pairs
  /// of its interior plus its half-neighborhood, so every unordered pair —
  /// including cross-shard boundary pairs — is emitted by exactly one shard.
  [[nodiscard]] static std::uint32_t shard_of_cell(std::int32_t cx, std::uint32_t shard_count) {
    const auto k = static_cast<std::int32_t>(shard_count);
    return static_cast<std::uint32_t>(((cx % k) + k) % k);
  }

  /// The subset of `pairs_within` whose emitting cell satisfies
  /// shard_of_cell(cx, shard_count) == shard, sorted by (a, b). The union
  /// over all shards equals `pairs_within` exactly (disjoint, no pair twice),
  /// so a k-way merge of the per-shard lists reproduces the serial emission
  /// bit for bit. Read-only on the grid; safe to call concurrently from one
  /// thread per shard as long as each passes its own \p scratch.
  void pairs_within_shard(double radius, std::uint32_t shard, std::uint32_t shard_count,
                          std::vector<Pair>& out, SortScratch& scratch) const;

  /// Distance-kernel variants. kScalar is always available; kSse2/kAvx2
  /// exist when built with DTNIC_SIMD on x86-64 and the CPU supports them.
  /// All variants produce bit-identical `pairs_within` output (same IEEE
  /// arithmetic, same pair set, canonical sort) — asserted by tests, relied
  /// on by the fig5x determinism guarantee.
  enum class ScanVariant : int { kScalar = 0, kSse2 = 1, kAvx2 = 2 };
  /// Active process-wide variant (default: best supported, overridable via
  /// the DTNIC_SCAN_VARIANT environment variable: scalar|sse2|avx2|auto).
  [[nodiscard]] static ScanVariant scan_variant();
  /// Select a variant; returns false (and changes nothing) if unsupported.
  static bool set_scan_variant(ScanVariant v);
  [[nodiscard]] static const char* scan_variant_name(ScanVariant v);
  /// Variants usable on this build + CPU, in {scalar, sse2, avx2} order.
  [[nodiscard]] static std::vector<ScanVariant> supported_scan_variants();

 private:
  /// Overflow entries (beyond the inline lanes) store only the id and the
  /// slot back-pointer; their positions are read from the dense xs_/ys_
  /// arrays. At paper densities (cell size = radio range) cells hold one or
  /// two nodes, so overflow is almost never touched.
  struct Entry {
    util::NodeId id;
    std::uint32_t slot;  ///< index into xs_/ys_ / back-pointer for removal
  };

  /// Entries stored inside the cell itself, one SoA lane each.
  static constexpr std::uint32_t kInline = 4;
  /// Dead-lane fill: +inf makes the distance test fail for any finite query
  /// point, so kernels never consult `count` per lane.
  static constexpr double kLaneEmpty = std::numeric_limits<double>::infinity();

  /// Half of the 8-neighborhood; visiting only these from every cell covers
  /// each unordered cell pair exactly once.
  static constexpr int kHalf[4][2] = {{1, 0}, {1, 1}, {0, 1}, {-1, 1}};

  /// Scan-hot mirror of one pool cell: exactly one cache line holding the
  /// x/y lanes the distance test reads, so probing a cell — own or neighbor
  /// — is a single line touch. Everything else the sweep consults lives in
  /// small dense side arrays (counts_, links_, ids_) that stay L1-resident
  /// at simulation scale; the scan kernels never read the Cell structs
  /// except through the overflow fallback.
  /// Lane invariant: x[j]/y[j] mirror xs_/ys_ of the j-th entry for
  /// j < min(count, kInline) and hold +inf for dead lanes, including while
  /// the cell sits on the free list.
  struct alignas(64) ScanBlock {
    double x[kInline] = {kLaneEmpty, kLaneEmpty, kLaneEmpty, kLaneEmpty};
    double y[kInline] = {kLaneEmpty, kLaneEmpty, kLaneEmpty, kLaneEmpty};
  };
  static_assert(sizeof(ScanBlock) == 64, "ScanBlock must be one cache line");

  /// Dense per-cell neighborhood links + shard column, parallel to pool_.
  /// Kept out of ScanBlock so the kernels' segment gather — which must
  /// resolve links *before* any distance math can start — reads a compact
  /// sequential array instead of a second cache line per cell.
  struct CellLinks {
    /// Pool index of the half-neighborhood cell in direction kHalf[k];
    /// -1 when absent. The reciprocal rev links live in Cell (cold).
    std::int32_t half[4] = {-1, -1, -1, -1};
    std::int32_t cx = 0;  ///< shard column, mirrors Cell::cx
  };

  /// Cold per-cell bookkeeping (membership maintenance only; scans never
  /// read it except through the overflow fallback). The entry count lives
  /// in the dense counts_ array, the hot lanes in the ScanBlock mirror.
  struct Cell {
    std::uint32_t slot[kInline] = {0, 0, 0, 0};  ///< back-pointers
    /// Pool index of the cell that has *this* as its kHalf[k] neighbor;
    /// reciprocal with ScanBlock::half by construction, so pruning a cell
    /// unlinks its whole neighborhood without hash lookups.
    std::int32_t rev[4] = {-1, -1, -1, -1};
    std::int32_t cx = 0;
    std::int32_t cy = 0;
    /// Entries [kInline, count). Arena-backed: the first spill of a fresh
    /// pool cell would otherwise be a tiny heap allocation that recurs until
    /// every pool slot has grown capacity once.
    std::vector<Entry, util::arena::PoolAllocator<Entry>> overflow;
  };

  struct Slot {
    util::NodeId id;
    std::int32_t cell = -1;   ///< pool index
    std::uint32_t index = 0;  ///< position within the cell's entries
    /// Cached cell coordinates: the same-cell fast path in `update_slot`
    /// compares against these and writes the dense arrays plus the cell's
    /// own lane, so a scan tick with little churn streams through dense
    /// memory and never touches cell membership.
    std::int32_t cx = 0;
    std::int32_t cy = 0;
  };

  /// Read-only view the kernels operate on: the hot mirror array, the dense
  /// per-cell entry counts (counts[c] == 0 marks pooled-but-free cells),
  /// links + shard columns, inline-lane ids (ids[c * kInline + lane], read
  /// only on a hit), the cold pool (overflow fallback only), and the
  /// slot-indexed coordinates.
  struct ScanView {
    const ScanBlock* blocks;
    const std::uint32_t* counts;
    const CellLinks* links;
    const std::uint32_t* ids;
    const Cell* pool;
    std::size_t pool_size;
    const double* xs;
    const double* ys;
  };

  /// Shared signature of the interchangeable distance kernels. shard_count
  /// == 0 means unsharded (every live cell emits). Kernels append unsorted
  /// pairs; the caller sorts.
  using ScanKernelFn = void (*)(const ScanView& view, double r2, std::uint32_t shard,
                                std::uint32_t shard_count, std::vector<Pair>& out);
  static void scan_kernel_scalar(const ScanView& view, double r2, std::uint32_t shard,
                                 std::uint32_t shard_count, std::vector<Pair>& out);
  /// One cell's emission (interior + half-neighborhood), scalar arithmetic.
  /// Also the SIMD kernels' fallback for cells touching overflow entries.
  static void scan_cell_scalar(const ScanView& view, std::uint32_t c, double r2,
                               std::vector<Pair>& out);
#ifdef DTNIC_SIMD_X86
  static void scan_kernel_sse2(const ScanView& view, double r2, std::uint32_t shard,
                               std::uint32_t shard_count, std::vector<Pair>& out);
  static void scan_kernel_avx2(const ScanView& view, double r2, std::uint32_t shard,
                               std::uint32_t shard_count, std::vector<Pair>& out);
#endif
  /// All-dead-lanes block the SIMD kernels use to pad odd segment counts.
  static const ScanBlock kEmptyBlock;

  /// Packs two sign-preserved 32-bit cell coordinates into one key; unlike
  /// the old `(cx << 24) ^ cy` scheme this cannot alias distant cells or
  /// mix negative and positive coordinates.
  [[nodiscard]] static std::uint64_t key_of(std::int32_t cx, std::int32_t cy) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(cy));
  }
  [[nodiscard]] std::int32_t coord(double v) const;

  /// Find-or-create the cell at (cx, cy); returns its pool index.
  std::uint32_t cell_at(std::int32_t cx, std::int32_t cy);
  /// Order pairs by (a, b); counting sort on dense ids, std::sort fallback.
  /// Scratch buffers are parameters so concurrent shard calls don't share.
  void sort_pairs(std::vector<Pair>& v, std::vector<Pair>& scratch,
                  std::vector<std::uint32_t>& offsets) const;
  /// Clear \p out and run the active kernel (shard_count == 0: unsharded).
  void scan_pairs(double radius, std::uint32_t shard, std::uint32_t shard_count,
                  std::vector<Pair>& out) const;
  void place(std::uint32_t slot, std::uint32_t cell_index);
  /// Swap-remove the slot's entry from its cell; prunes the cell if emptied.
  void unplace(std::uint32_t slot);

  double cell_size_;
  double inv_cell_size_;  ///< coord() multiplies instead of dividing
  /// Largest id ever inserted; lets the pair sort use an id-indexed
  /// counting pass instead of a generic comparison sort.
  std::uint32_t max_id_ = 0;
  std::vector<Cell> pool_;
  /// Hot mirror and entry counts, parallel to pool_. counts_ is the single
  /// source of truth for per-cell occupancy; at ~2000 cells it is an
  /// L1-resident 8 KiB array, so the kernels' empty-cell skip and overflow
  /// detection never touch cell memory at all.
  std::vector<ScanBlock> blocks_;
  std::vector<std::uint32_t> counts_;
  /// Dense neighborhood links / shard columns, parallel to pool_.
  std::vector<CellLinks> links_;
  /// Inline-lane ids (raw NodeId values), kInline per cell, parallel to
  /// pool_. A separate array because ids are only read on a distance hit —
  /// keeping them out of ScanBlock halves the sweep's line footprint.
  std::vector<std::uint32_t> ids_;
  std::vector<std::uint32_t> free_cells_;
  /// Hash-map *nodes* come from the arena pool so steady-state cell churn
  /// (create on entry, prune on exit) recycles instead of hitting the heap.
  util::arena::PooledMap<std::uint64_t, std::uint32_t> cell_index_;
  std::vector<Slot> slots_;
  /// Slot-indexed positions, split into separate coordinate arrays so the
  /// staging pass and the overflow fallback stream plain double lanes.
  std::vector<double> xs_;
  std::vector<double> ys_;
  util::arena::PooledMap<util::NodeId, std::uint32_t> slot_of_;
  /// Sort double buffer and per-id bucket offsets, kept across scans so the
  /// steady state does not allocate.
  mutable std::vector<Pair> sort_scratch_;
  mutable std::vector<std::uint32_t> sort_offsets_;
};

// ---- hot-path inline definitions -----------------------------------------
// stage_position / update_slot run once per node per tick; defining them in
// the header lets callers inline the same-cell fast path (two dense stores,
// two coordinate computations, one compare) instead of paying two cross-TU
// calls per node.

inline std::int32_t SpatialGrid::coord(double v) const {
  // Branchless floor: truncation rounds toward zero, so subtract one when
  // the scaled value was negative with a fractional part. Saves two libm
  // floor() calls per node per staging pass on baseline x86-64 (no SSE4.1
  // roundsd). Coordinates are assumed within int32 cell range, as before.
  const double s = v * inv_cell_size_;
  const auto t = static_cast<std::int32_t>(s);
  return t - static_cast<std::int32_t>(static_cast<double>(t) > s);
}

inline bool SpatialGrid::stage_position(std::size_t slot, util::Vec2 position) {
  const Slot& s = slots_[slot];
  xs_[slot] = position.x;
  ys_[slot] = position.y;
  if (coord(position.x) != s.cx || coord(position.y) != s.cy) return true;
  // Same cell: mirror the dense write into the cell's SoA lane so the next
  // enumeration sees the move. Distinct slots own distinct lanes (or
  // distinct overflow positions read through xs_/ys_), so concurrent
  // staging of different slots never writes the same bytes.
  if (s.index < kInline) {
    ScanBlock& block = blocks_[static_cast<std::uint32_t>(s.cell)];
    block.x[s.index] = position.x;
    block.y[s.index] = position.y;
  }
  return false;
}

inline void SpatialGrid::update_slot(std::size_t slot, util::Vec2 position) {
  if (stage_position(slot, position)) commit_move(slot);
}

}  // namespace dtnic::net
