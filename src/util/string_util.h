#pragma once

#include <string>
#include <string_view>
#include <vector>

/// \file string_util.h
/// Small string helpers shared by the config parser and CLI.

namespace dtnic::util {

/// Strip leading and trailing whitespace.
[[nodiscard]] std::string trim(std::string_view s);

/// Split on a delimiter; empty pieces are kept.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char delim);

/// True if \p s begins with \p prefix.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// Parse helpers; throw std::invalid_argument with context on bad input.
/// Numeric parsing uses std::from_chars: locale-independent (a German locale
/// cannot flip the decimal separator) and strict — surrounding whitespace is
/// tolerated, any other trailing garbage ("1.5x", "3,5") is rejected instead
/// of silently truncated.
[[nodiscard]] double parse_double(const std::string& s);
[[nodiscard]] long long parse_int(const std::string& s);
[[nodiscard]] bool parse_bool(const std::string& s);

}  // namespace dtnic::util
