/// Ablation: the Distributed Reputation Model on vs off under a malicious
/// population (design choice called out in DESIGN.md). With DRM off,
/// malicious relays keep farming tag rewards at full price and are never
/// refused; with DRM on their ratings collapse, their awards are scaled
/// down, and transfers from them are refused.

#include <future>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "core/incentive_router.h"
#include "scenario/scenario.h"
#include "util/thread_pool.h"

namespace {

struct DrmCaseResult {
  dtnic::scenario::RunResult run;
  double malicious_avg_tokens = 0.0;
  double honest_avg_tokens = 0.0;
};

/// One seeded run with per-behavior-class token introspection (needs the
/// live Scenario, so it happens here rather than in RunResult).
DrmCaseResult run_drm_case(const dtnic::scenario::ScenarioConfig& cfg) {
  using namespace dtnic;
  scenario::Scenario sim(cfg);
  DrmCaseResult out;
  out.run = sim.run();

  double malicious_tokens = 0.0, honest_tokens = 0.0;
  std::size_t malicious_n = 0, honest_n = 0;
  for (std::size_t i = 0; i < sim.node_count(); ++i) {
    const auto id = util::NodeId(static_cast<util::NodeId::underlying>(i));
    const auto* router = core::IncentiveRouter::of(sim.host(id));
    if (router == nullptr) continue;
    if (sim.behavior_of(id).malicious()) {
      malicious_tokens += router->ledger().balance();
      ++malicious_n;
    } else {
      honest_tokens += router->ledger().balance();
      ++honest_n;
    }
  }
  out.malicious_avg_tokens = malicious_n ? malicious_tokens / malicious_n : 0.0;
  out.honest_avg_tokens = honest_n ? honest_tokens / honest_n : 0.0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dtnic;
  util::Cli cli;
  const bench::BenchScale scale = bench::resolve_scale(cli, argc, argv, argv[0]);
  bench::print_header("Ablation: DRM on/off with 20% malicious nodes", scale);

  // Both cases fan out on the shared pool; the per-class token split runs
  // inside the worker while the Scenario is still alive.
  std::vector<std::future<DrmCaseResult>> futures;
  for (const bool drm_on : {true, false}) {
    scenario::ScenarioConfig cfg = bench::base_config(scale);
    cfg.malicious_fraction = 0.2;
    cfg.drm.enabled = drm_on;
    cfg.scheme = scenario::Scheme::kIncentive;
    cfg.seed = 1;
    futures.push_back(util::ThreadPool::shared().submit([cfg] { return run_drm_case(cfg); }));
  }

  util::Table table({"DRM", "final malicious rating", "malicious avg tokens",
                     "honest avg tokens", "refused: untrusted", "MDR"});
  std::size_t case_index = 0;
  for (const bool drm_on : {true, false}) {
    const DrmCaseResult result = futures[case_index++].get();
    const scenario::RunResult& r = result.run;
    table.add_row({drm_on ? "on" : "off",
                   util::Table::cell(r.malicious_rating.last_value(), 3),
                   util::Table::cell(result.malicious_avg_tokens, 2),
                   util::Table::cell(result.honest_avg_tokens, 2),
                   util::Table::cell(r.refused_untrusted),
                   util::Table::cell(r.mdr, 3)});
  }
  table.print(std::cout);
  std::cout << "\nexpected: with DRM on, malicious ratings collapse and their token gains\n"
               "shrink relative to the DRM-off run.\n";
  return 0;
}
