#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "net/spatial_grid.h"
#include "scenario/experiment.h"
#include "sim/event_queue.h"
#include "util/rng.h"
#include "util/thread_pool.h"

/// Concurrency stress for the parallel experiment layer, built to run under
/// -fsanitize=thread (cmake -DDTNIC_SANITIZE=thread; ctest -L tsan-stress).
/// More seeds than workers keeps the queue contended; the serial baseline
/// comparison doubles as the determinism check while TSan watches for data
/// races between concurrently running Scenario instances.

namespace dtnic::scenario {
namespace {

TEST(ExperimentStress, ManySeedsUnderContentionMatchSerial) {
  util::ThreadPool::set_shared_threads(4);
  ScenarioConfig cfg = ScenarioConfig::scaled_defaults(25, 0.5);
  cfg.scheme = Scheme::kIncentive;
  cfg.selfish_fraction = 0.3;
  cfg.malicious_fraction = 0.2;
  cfg.sample_interval_s = 300.0;

  const ExperimentRunner runner(/*seeds=*/8, /*base_seed=*/11);
  const AggregateResult parallel = runner.run(cfg);
  const AggregateResult serial = runner.run_serial(cfg);

  ASSERT_EQ(parallel.runs, serial.runs);
  EXPECT_EQ(parallel.mdr.mean(), serial.mdr.mean());
  EXPECT_EQ(parallel.mdr.stddev(), serial.mdr.stddev());
  EXPECT_EQ(parallel.traffic.mean(), serial.traffic.mean());
  EXPECT_EQ(parallel.avg_final_tokens.mean(), serial.avg_final_tokens.mean());
  ASSERT_EQ(parallel.raw.size(), serial.raw.size());
  for (std::size_t i = 0; i < parallel.raw.size(); ++i) {
    EXPECT_EQ(parallel.raw[i].seed, serial.raw[i].seed);
    EXPECT_EQ(parallel.raw[i].mdr, serial.raw[i].mdr);
    EXPECT_EQ(parallel.raw[i].traffic, serial.raw[i].traffic);
  }
}

/// Buffer-churn stress over the strength-cache paths: tiny buffers force
/// constant eviction (cache pruning, copy-on-write message cores) while
/// heavy enrichment bumps the process-wide keyword stamp from every worker
/// thread. Under TSan this covers the atomic stamp counter and the shared
/// immutable cores crossing threads; in plain builds the serial comparison
/// checks the memoized strength never perturbs results.
TEST(ExperimentStress, BufferChurnWithEnrichmentMatchesSerial) {
  util::ThreadPool::set_shared_threads(4);
  ScenarioConfig cfg = ScenarioConfig::scaled_defaults(20, 0.5);
  cfg.scheme = Scheme::kIncentive;
  cfg.buffer_capacity_bytes = 4ull * 1024 * 1024;  // a handful of messages
  cfg.messages_per_node_per_hour = 4.0;
  cfg.enrich_probability = 0.9;
  cfg.malicious_fraction = 0.3;

  const ExperimentRunner runner(/*seeds=*/8, /*base_seed=*/23);
  const AggregateResult parallel = runner.run(cfg);
  const AggregateResult serial = runner.run_serial(cfg);

  ASSERT_EQ(parallel.runs, serial.runs);
  EXPECT_EQ(parallel.mdr.mean(), serial.mdr.mean());
  EXPECT_EQ(parallel.traffic.mean(), serial.traffic.mean());
  EXPECT_EQ(parallel.avg_final_tokens.mean(), serial.avg_final_tokens.mean());
  for (std::size_t i = 0; i < parallel.raw.size(); ++i) {
    EXPECT_EQ(parallel.raw[i].mdr, serial.raw[i].mdr);
    EXPECT_EQ(parallel.raw[i].traffic, serial.raw[i].traffic);
  }
}

/// Nested parallelism stress: whole-seed runs on the shared pool while every
/// Scenario shards its contact scans on its own dedicated pool. Under TSan
/// this exercises the staged-position writes, per-shard pair enumeration, and
/// the serial commit/merge handshake from many scenarios at once; in plain
/// builds it pins the tentpole contract — per-seed results are identical for
/// every shard_threads value, including the auto (0) setting.
TEST(ExperimentStress, ShardedScansUnderContentionMatchSerial) {
  util::ThreadPool::set_shared_threads(4);
  ScenarioConfig cfg = ScenarioConfig::scaled_defaults(30, 0.5);
  cfg.scheme = Scheme::kIncentive;
  cfg.selfish_fraction = 0.2;
  cfg.malicious_fraction = 0.1;

  const ExperimentRunner runner(/*seeds=*/6, /*base_seed=*/31);
  cfg.shard_threads = 1;
  const AggregateResult serial = runner.run(cfg);
  for (const std::size_t shards : {std::size_t{2}, std::size_t{8}, std::size_t{0}}) {
    cfg.shard_threads = shards;
    const AggregateResult sharded = runner.run(cfg);
    ASSERT_EQ(sharded.runs, serial.runs);
    EXPECT_EQ(sharded.mdr.mean(), serial.mdr.mean()) << "shards=" << shards;
    EXPECT_EQ(sharded.traffic.mean(), serial.traffic.mean()) << "shards=" << shards;
    EXPECT_EQ(sharded.avg_final_tokens.mean(), serial.avg_final_tokens.mean());
    for (std::size_t i = 0; i < sharded.raw.size(); ++i) {
      EXPECT_EQ(sharded.raw[i].seed, serial.raw[i].seed);
      EXPECT_EQ(sharded.raw[i].mdr, serial.raw[i].mdr);
      EXPECT_EQ(sharded.raw[i].traffic, serial.raw[i].traffic);
      EXPECT_EQ(sharded.raw[i].tokens_paid, serial.raw[i].tokens_paid);
    }
  }
}

TEST(ExperimentStress, RepeatedSweepsAreStable) {
  util::ThreadPool::set_shared_threads(4);
  std::vector<ScenarioConfig> points;
  for (const auto scheme : {Scheme::kIncentive, Scheme::kChitChat, Scheme::kEpidemic}) {
    ScenarioConfig cfg = ScenarioConfig::scaled_defaults(20, 0.25);
    cfg.scheme = scheme;
    cfg.selfish_fraction = 0.5;  // heavy suppression churn on the gate path
    points.push_back(cfg);
  }
  const SweepRunner sweep(/*seeds=*/4);
  const auto first = sweep.run_all(points);
  const auto second = sweep.run_all(points);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].mdr.mean(), second[i].mdr.mean());
    EXPECT_EQ(first[i].traffic.mean(), second[i].traffic.mean());
    EXPECT_EQ(first[i].scheme, second[i].scheme);
  }
  util::ThreadPool::set_shared_threads(0);  // restore default sizing
}

/// Builds a churned grid from \p seed and returns the sorted pair list.
/// Every caller with the same seed must observe bit-identical output no
/// matter which scan kernel is active or what other threads are doing.
std::vector<net::SpatialGrid::Pair> churned_pairs(std::uint64_t seed) {
  util::Rng rng(seed);
  net::SpatialGrid grid(100.0);
  std::vector<std::size_t> slots;
  for (std::uint32_t i = 0; i < 150; ++i) {
    slots.push_back(grid.insert(util::NodeId(i + 1),
                                {rng.uniform(-800.0, 800.0), rng.uniform(-800.0, 800.0)}));
  }
  for (int round = 0; round < 10; ++round) {
    for (const std::size_t slot : slots) {
      grid.update_slot(slot, {rng.uniform(-800.0, 800.0), rng.uniform(-800.0, 800.0)});
    }
  }
  std::vector<net::SpatialGrid::Pair> pairs;
  grid.pairs_within(75.0, pairs);
  return pairs;
}

/// Concurrent scans on distinct grids: the kernels share only immutable
/// state (decode table, empty-cell pad, the process-wide variant atomic), so
/// threads hammering different grids must neither race under TSan nor
/// perturb each other's output.
TEST(ExperimentStress, ConcurrentScanVariantsOnDistinctGridsAgree) {
  using net::SpatialGrid;
  const SpatialGrid::ScanVariant saved = SpatialGrid::scan_variant();
  ASSERT_TRUE(SpatialGrid::set_scan_variant(SpatialGrid::ScanVariant::kScalar));
  std::vector<std::vector<SpatialGrid::Pair>> reference;
  for (std::uint64_t seed = 0; seed < 4; ++seed) reference.push_back(churned_pairs(seed));

  for (const SpatialGrid::ScanVariant v : SpatialGrid::supported_scan_variants()) {
    ASSERT_TRUE(SpatialGrid::set_scan_variant(v));
    std::vector<std::thread> threads;
    std::vector<std::vector<SpatialGrid::Pair>> got(4);
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      threads.emplace_back([&got, seed] { got[seed] = churned_pairs(seed); });
    }
    for (std::thread& th : threads) th.join();
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      ASSERT_EQ(got[seed].size(), reference[seed].size())
          << SpatialGrid::scan_variant_name(v) << " seed " << seed;
      EXPECT_EQ(std::memcmp(got[seed].data(), reference[seed].data(),
                            got[seed].size() * sizeof(SpatialGrid::Pair)),
                0)
          << SpatialGrid::scan_variant_name(v) << " seed " << seed;
    }
  }
  ASSERT_TRUE(SpatialGrid::set_scan_variant(saved));
}

/// Concurrent timing wheels: each thread owns its queue, but the records
/// live in arena chunks handed out under the shared registry mutex and
/// recycled through thread-local free lists — exactly the sharing TSan
/// needs to watch. Each thread verifies its own fire order.
TEST(ExperimentStress, ConcurrentWheelQueuesFireInOrder) {
  std::vector<std::thread> threads;
  std::vector<int> failures(4, 0);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t, &failures] {
      util::Rng rng(static_cast<std::uint64_t>(t) + 99);
      sim::EventQueue q;
      std::vector<sim::EventId> ids;
      int fired = 0;
      double last = 0.0;
      for (int step = 0; step < 20000; ++step) {
        const std::uint64_t dice = rng.below(100);
        if (dice < 55) {
          // Push at/after the last pop so fire times must be monotone (a
          // past push would legitimately fire "early" and break the check).
          ids.push_back(
              q.push(util::SimTime::seconds(last + rng.uniform(0.0, 5000.0)), [&fired] { ++fired; }));
        } else if (dice < 70 && !ids.empty()) {
          const std::size_t pick = rng.below(ids.size());
          q.cancel(ids[pick]);
          ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(pick));
        } else if (!q.empty()) {
          const auto popped = q.pop();
          if (popped.time.sec() < last) ++failures[static_cast<std::size_t>(t)];
          last = popped.time.sec();
          popped.fn();
        }
      }
      while (!q.empty()) {
        const auto popped = q.pop();
        if (popped.time.sec() < last) ++failures[static_cast<std::size_t>(t)];
        last = popped.time.sec();
        popped.fn();
      }
      if (q.heap_entries() != 0) ++failures[static_cast<std::size_t>(t)];
    });
  }
  for (std::thread& th : threads) th.join();
  for (int t = 0; t < 4; ++t) EXPECT_EQ(failures[static_cast<std::size_t>(t)], 0) << "thread " << t;
}

}  // namespace
}  // namespace dtnic::scenario
