#pragma once

#include <cstddef>
#include <vector>

/// \file summary.h
/// Streaming and batch summary statistics used by the metrics collector and
/// the experiment runner (mean/stddev across seeds, percentiles of samples).

namespace dtnic::util {

/// Welford streaming accumulator: numerically stable mean and variance.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Merge another accumulator into this one (parallel Welford).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile of a sample set with linear interpolation; \p q in [0, 1].
/// The input vector is copied; empty input yields 0.
[[nodiscard]] double percentile(std::vector<double> samples, double q);

/// Arithmetic mean of a sample set; empty input yields 0.
[[nodiscard]] double mean_of(const std::vector<double>& samples);

/// Sample standard deviation; fewer than two samples yields 0.
[[nodiscard]] double stddev_of(const std::vector<double>& samples);

/// Jain's fairness index (Σx)²/(n·Σx²) in (0, 1]: 1 when all values are
/// equal, 1/n when one value holds everything. Used for token-distribution
/// fairness (the incentive mechanism "ensures fairness to all devices").
/// Empty or all-zero input yields 1 (vacuously fair).
[[nodiscard]] double jain_fairness(const std::vector<double>& values);

}  // namespace dtnic::util
