#pragma once

#include "util/ids.h"

/// \file id_source.h
/// Monotonic message-id allocator, one per scenario run. Plays the role of
/// the paper's UUIDs: globally unique per created message, shared by all
/// copies of that message.

namespace dtnic::msg {

class MessageIdSource {
 public:
  [[nodiscard]] util::MessageId next() { return util::MessageId(next_++); }
  [[nodiscard]] std::size_t issued() const { return next_; }

 private:
  util::MessageId::underlying next_ = 0;
};

}  // namespace dtnic::msg
