#pragma once

#include <charconv>
#include <cstdint>
#include <string>

/// \file num_format.h
/// Locale-independent, round-trippable number formatting. Every
/// machine-readable artifact (CSV exports, JSONL traces, manifests) goes
/// through these helpers: std::to_chars emits the shortest decimal form that
/// parses back to exactly the same double, so the output is byte-stable
/// across platforms and locales and replaying a trace reproduces bit-exact
/// sums.

namespace dtnic::util {

/// Append the shortest round-trippable decimal form of \p v.
inline void append_double(std::string& out, double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

[[nodiscard]] inline std::string format_double(double v) {
  std::string s;
  append_double(s, v);
  return s;
}

inline void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

}  // namespace dtnic::util
