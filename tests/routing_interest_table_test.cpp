#include <gtest/gtest.h>

#include "routing/chitchat/interest_table.h"

#include "util/rng.h"

namespace dtnic::routing::chitchat {
namespace {

using msg::KeywordId;
using util::SimTime;

ChitChatParams fast_params() {
  ChitChatParams p;
  p.decay_beta = 0.1;  // decays on a ~10 s timescale for compact tests
  return p;
}

TEST(InterestTable, DirectInterestStartsAtHalf) {
  InterestTable t(fast_params());
  t.add_direct(KeywordId(1), SimTime::zero());
  EXPECT_DOUBLE_EQ(t.weight(KeywordId(1)), 0.5);
  EXPECT_TRUE(t.has_direct(KeywordId(1)));
  EXPECT_TRUE(t.has(KeywordId(1)));
  EXPECT_FALSE(t.has(KeywordId(2)));
}

TEST(InterestTable, UnknownKeywordWeightZero) {
  InterestTable t(fast_params());
  EXPECT_DOUBLE_EQ(t.weight(KeywordId(42)), 0.0);
}

TEST(InterestTable, SumAndMeanWeights) {
  InterestTable t(fast_params());
  t.add_direct(KeywordId(1), SimTime::zero());
  t.add_direct(KeywordId(2), SimTime::zero());
  const std::vector<KeywordId> keys{KeywordId(1), KeywordId(2), KeywordId(3)};
  EXPECT_DOUBLE_EQ(t.sum_weights(keys), 1.0);
  EXPECT_NEAR(t.mean_weight(keys), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(t.mean_weight({}), 0.0);
}

TEST(InterestTable, DirectDecaysTowardHalf) {
  InterestTable t(fast_params());
  t.add_direct(KeywordId(1), SimTime::zero());
  // Grow it above 0.5 first.
  InterestTable peer(fast_params());
  peer.add_direct(KeywordId(1), SimTime::zero());
  for (int i = 0; i < 50; ++i) t.grow_from(peer, SimTime::zero(), 10.0);
  const double grown = t.weight(KeywordId(1));
  ASSERT_GT(grown, 0.5);
  t.decay(SimTime::seconds(100), nullptr);
  const double decayed = t.weight(KeywordId(1));
  EXPECT_LT(decayed, grown);
  EXPECT_GE(decayed, 0.5);  // direct interests never decay below 0.5
}

TEST(InterestTable, TransientDecaysTowardZeroAndIsPruned) {
  InterestTable t(fast_params());
  InterestTable peer(fast_params());
  peer.add_direct(KeywordId(7), SimTime::zero());
  t.grow_from(peer, SimTime::zero(), 10.0);
  ASSERT_TRUE(t.has(KeywordId(7)));
  ASSERT_FALSE(t.has_direct(KeywordId(7)));
  // Long silence: transient interest decays to (near) zero and is forgotten.
  t.decay(SimTime::seconds(1000), nullptr);
  t.decay(SimTime::seconds(5000), nullptr);
  t.decay(SimTime::seconds(50000), nullptr);
  EXPECT_FALSE(t.has(KeywordId(7)));
}

TEST(InterestTable, ConnectedInterestDoesNotDecay) {
  InterestTable t(fast_params());
  t.add_direct(KeywordId(1), SimTime::zero());
  InterestTable peer(fast_params());
  peer.add_direct(KeywordId(1), SimTime::zero());
  t.grow_from(peer, SimTime::zero(), 10.0);
  const double before = t.weight(KeywordId(1));
  t.decay(SimTime::seconds(500), [](KeywordId) { return true; });  // peer still connected
  EXPECT_DOUBLE_EQ(t.weight(KeywordId(1)), before);
}

TEST(InterestTable, DecayNeverAmplifies) {
  // Small gaps would divide by < 1 in the raw formula; the floor guards it.
  InterestTable t(fast_params());
  t.add_direct(KeywordId(1), SimTime::zero());
  t.decay(SimTime::seconds(0.001), nullptr);
  EXPECT_LE(t.weight(KeywordId(1)), 0.5 + 1e-12);
}

TEST(InterestTable, GrowthCapsAtMax) {
  ChitChatParams p = fast_params();
  p.growth_rate = 10.0;  // absurdly fast growth
  InterestTable t(p);
  t.add_direct(KeywordId(1), SimTime::zero());
  InterestTable peer(p);
  peer.add_direct(KeywordId(1), SimTime::zero());
  for (int i = 0; i < 10; ++i) t.grow_from(peer, SimTime::zero(), 10.0);
  EXPECT_DOUBLE_EQ(t.weight(KeywordId(1)), 1.0);
}

TEST(InterestTable, GrowthAcquiresTransient) {
  InterestTable t(fast_params());
  InterestTable peer(fast_params());
  peer.add_direct(KeywordId(9), SimTime::zero());
  t.grow_from(peer, SimTime::seconds(5), 10.0);
  EXPECT_TRUE(t.has(KeywordId(9)));
  EXPECT_FALSE(t.has_direct(KeywordId(9)));
  EXPECT_GT(t.weight(KeywordId(9)), 0.0);
}

TEST(InterestTable, PsiOrdersGrowthSpeed) {
  // direct/direct (psi=1) grows faster than acquiring transient (psi=5).
  const ChitChatParams p = fast_params();
  InterestTable peer(p);
  peer.add_direct(KeywordId(1), SimTime::zero());

  InterestTable direct_side(p);
  direct_side.add_direct(KeywordId(1), SimTime::zero());
  const double before = direct_side.weight(KeywordId(1));
  direct_side.grow_from(peer, SimTime::zero(), 10.0);
  const double direct_gain = direct_side.weight(KeywordId(1)) - before;

  InterestTable absent_side(p);
  absent_side.grow_from(peer, SimTime::zero(), 10.0);
  const double acquire_gain = absent_side.weight(KeywordId(1));

  EXPECT_GT(direct_gain, acquire_gain);
  EXPECT_NEAR(direct_gain / acquire_gain, 5.0, 1e-9);  // psi 1 vs psi 5
}

TEST(InterestTable, GrowthQuantumIsCapped) {
  const ChitChatParams p = fast_params();  // cap = 10 s
  InterestTable a(p);
  InterestTable b(p);
  InterestTable peer(p);
  peer.add_direct(KeywordId(1), SimTime::zero());
  a.grow_from(peer, SimTime::zero(), 10.0);
  b.grow_from(peer, SimTime::zero(), 10000.0);  // capped to the same quantum
  EXPECT_DOUBLE_EQ(a.weight(KeywordId(1)), b.weight(KeywordId(1)));
}

TEST(InterestTable, EntriesSortedByKeyword) {
  InterestTable t(fast_params());
  t.add_direct(KeywordId(5), SimTime::zero());
  t.add_direct(KeywordId(1), SimTime::zero());
  t.add_direct(KeywordId(3), SimTime::zero());
  const auto entries = t.entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].keyword, KeywordId(1));
  EXPECT_EQ(entries[1].keyword, KeywordId(3));
  EXPECT_EQ(entries[2].keyword, KeywordId(5));
  EXPECT_TRUE(entries[0].direct);
}

TEST(InterestTable, NoteSeenRefreshesTimestampOnly) {
  InterestTable t(fast_params());
  t.add_direct(KeywordId(1), SimTime::zero());
  t.note_seen(KeywordId(1), SimTime::seconds(100));
  // Decay right after refresh: dt = 0 -> divisor floored at 1 -> no change.
  t.decay(SimTime::seconds(100), nullptr);
  EXPECT_DOUBLE_EQ(t.weight(KeywordId(1)), 0.5);
  t.note_seen(KeywordId(99), SimTime::seconds(1));  // unknown: no-op
  EXPECT_FALSE(t.has(KeywordId(99)));
}

/// Property sweep: weights remain in [0,1] under arbitrary decay/growth mixes.
class WeightBoundsSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WeightBoundsSweep, WeightsStayInUnitInterval) {
  util::Rng rng(GetParam());
  ChitChatParams p;
  p.decay_beta = rng.uniform(0.001, 2.0);
  p.growth_rate = rng.uniform(0.001, 1.0);
  InterestTable a(p);
  InterestTable b(p);
  for (int k = 0; k < 5; ++k) {
    a.add_direct(KeywordId(k), SimTime::zero());
    b.add_direct(KeywordId(k + 3), SimTime::zero());
  }
  double now = 0.0;
  for (int step = 0; step < 300; ++step) {
    now += rng.uniform(0.1, 300.0);
    const auto t = SimTime::seconds(now);
    if (rng.chance(0.5)) a.decay(t, nullptr);
    if (rng.chance(0.5)) b.decay(t, nullptr);
    if (rng.chance(0.7)) a.grow_from(b, t, rng.uniform(0.0, 20.0));
    if (rng.chance(0.7)) b.grow_from(a, t, rng.uniform(0.0, 20.0));
    for (const auto& e : a.entries()) {
      ASSERT_GE(e.weight, 0.0);
      ASSERT_LE(e.weight, 1.0);
    }
    for (const auto& e : b.entries()) {
      ASSERT_GE(e.weight, 0.0);
      ASSERT_LE(e.weight, 1.0);
    }
  }
  // Direct interests never vanish.
  for (int k = 0; k < 5; ++k) ASSERT_TRUE(a.has_direct(KeywordId(k)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeightBoundsSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace dtnic::routing::chitchat
