/// Allocation-count probe: replaces the global allocator with a counting
/// shim and pins the steady-state hot paths — moving contact scan, routing
/// exchange/plan tick, event push/pop churn — at ZERO heap allocations once
/// warmed up. Built as its own binary so the operator new replacement cannot
/// leak into the main suite; compiled to a skip under sanitizers (they own
/// the allocator, and the arena passes through there anyway).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/incentive_router.h"
#include "msg/buffer.h"
#include "msg/message.h"
#include "net/spatial_grid.h"
#include "routing/host.h"
#include "routing/oracle.h"
#include "sim/event_queue.h"
#include "util/arena.h"
#include "util/rng.h"

#if !defined(__SANITIZE_ADDRESS__) && !defined(__SANITIZE_THREAD__)
#define DTNIC_ALLOC_PROBE_ACTIVE 1
#else
#define DTNIC_ALLOC_PROBE_ACTIVE 0
#endif

#if DTNIC_ALLOC_PROBE_ACTIVE

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_alloc(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n == 0 ? 1 : n);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

#endif  // DTNIC_ALLOC_PROBE_ACTIVE

namespace dtnic {
namespace {

std::uint64_t allocs_now() {
#if DTNIC_ALLOC_PROBE_ACTIVE
  return g_alloc_count.load(std::memory_order_relaxed);
#else
  return 0;
#endif
}

bool probe_active() {
  return DTNIC_ALLOC_PROBE_ACTIVE != 0 && util::arena::enabled();
}

TEST(AllocSteadyState, EventQueueTickIsAllocationFree) {
  if (!probe_active()) GTEST_SKIP() << "probe needs non-sanitized build with arena on";
  sim::EventQueue q;
  util::Rng rng(5);
  int fired = 0;
  // Warm: reach steady slab/bucket capacity.
  for (int i = 0; i < 4096; ++i) {
    (void)q.push(util::SimTime::seconds(rng.uniform(0.0, 200.0)), [&fired] { ++fired; });
  }
  double t = 200.0;
  for (int i = 0; i < 4096; ++i) {
    auto popped = q.pop();
    popped.fn();
    t += 0.1;
    (void)q.push(util::SimTime::seconds(t + rng.uniform(0.0, 100.0)), [&fired] { ++fired; });
  }
  const std::uint64_t before = allocs_now();
  for (int i = 0; i < 4096; ++i) {
    auto popped = q.pop();
    popped.fn();
    t += 0.1;
    (void)q.push(util::SimTime::seconds(t + rng.uniform(0.0, 100.0)), [&fired] { ++fired; });
  }
  EXPECT_EQ(allocs_now() - before, 0u) << "event push/pop churn must not touch the heap";
  EXPECT_GT(fired, 0);
}

TEST(AllocSteadyState, MovingContactScanIsAllocationFree) {
  if (!probe_active()) GTEST_SKIP() << "probe needs non-sanitized build with arena on";
  util::Rng rng(17);
  const int n = 200;
  const double side = 1414.0;  // ~100 nodes/km^2
  net::SpatialGrid grid(100.0);
  std::vector<std::size_t> slots;
  std::vector<double> px(n), py(n), vx(n), vy(n);
  for (int i = 0; i < n; ++i) {
    px[i] = rng.uniform(0.0, side);
    py[i] = rng.uniform(0.0, side);
    vx[i] = rng.uniform(-7.5, 7.5);
    vy[i] = rng.uniform(-7.5, 7.5);
    slots.push_back(grid.insert(util::NodeId(static_cast<std::uint32_t>(i)), {px[i], py[i]}));
  }
  std::vector<net::SpatialGrid::Pair> pairs;
  std::size_t total = 0;
  const auto tick = [&] {
    for (int i = 0; i < n; ++i) {
      px[i] += vx[i];
      py[i] += vy[i];
      if (px[i] < 0.0 || px[i] > side) vx[i] = -vx[i];
      if (py[i] < 0.0 || py[i] > side) vy[i] = -vy[i];
      grid.update_slot(slots[static_cast<std::size_t>(i)], {px[i], py[i]});
    }
    grid.pairs_within(100.0, pairs);
    total += pairs.size();
  };
  // Warm until cell pool / pair vectors / arena free lists reach capacity.
  for (int w = 0; w < 400; ++w) tick();
  const std::uint64_t before = allocs_now();
  for (int w = 0; w < 100; ++w) tick();
  EXPECT_EQ(allocs_now() - before, 0u)
      << "steady-state scan tick (move + enumerate) must not touch the heap";
  EXPECT_GT(total, 0u);
}

TEST(AllocSteadyState, RoutingExchangeTickIsAllocationFree) {
  if (!probe_active()) GTEST_SKIP() << "probe needs non-sanitized build with arena on";
  // A ring of incentive hosts exchanging interest/reputation state and
  // producing forward plans — the per-contact routing hot path, without the
  // transfer layer (message copies are allowed to allocate; planning isn't).
  util::Rng rng(11);
  routing::StaticInterestOracle oracle;
  core::IncentiveWorld world;
  std::vector<msg::KeywordId> pool;
  for (int k = 0; k < 64; ++k) {
    pool.push_back(msg::KeywordId(static_cast<util::KeywordId::underlying>(k)));
  }
  world.keyword_pool = &pool;
  std::vector<std::unique_ptr<routing::Host>> hosts;
  world.neighbors = [&hosts](routing::NodeId id, std::vector<routing::Host*>& out) {
    out.clear();
    const std::size_t count = hosts.size();
    const std::size_t i = id.value();
    out.push_back(hosts[(i + 1) % count].get());
    out.push_back(hosts[(i + count - 1) % count].get());
  };
  routing::chitchat::ChitChatParams chitchat;
  constexpr std::uint64_t kMB = 1024 * 1024;
  const auto t0 = util::SimTime::zero();
  util::MessageId::underlying next_id = 0;
  for (int i = 0; i < 8; ++i) {
    const routing::NodeId id(static_cast<util::NodeId::underlying>(i));
    auto host = std::make_unique<routing::Host>(id, 256 * kMB);
    std::vector<msg::KeywordId> interests;
    for (int j = 0; j < 3; ++j) interests.push_back(pool[rng.below(pool.size())]);
    oracle.set_interests(id, interests);
    auto router = std::make_unique<core::IncentiveRouter>(
        oracle, chitchat, util::SimTime::seconds(5.0), &world, core::BehaviorProfile{},
        rng.fork(static_cast<std::uint64_t>(i)));
    router->set_direct_interests(interests, t0);
    host->set_router(std::move(router));
    for (int m = 0; m < 16; ++m) {
      msg::Message msg(util::MessageId(next_id++), id, t0, kMB / 4 + rng.below(kMB / 4),
                       static_cast<msg::Priority>(rng.range(1, 3)), rng.uniform(0.0, 1.0));
      for (int a = 0; a < 3; ++a) {
        (void)msg.annotate(msg::Annotation{pool[rng.below(pool.size())], id, true});
      }
      (void)host->buffer().add(std::move(msg));
    }
    hosts.push_back(std::move(host));
  }
  std::vector<routing::ForwardPlan> plans;
  double t = 0.0;
  std::size_t pair = 0;
  const auto contact = [&] {
    plans.clear();
    routing::Host& a = *hosts[pair % hosts.size()];
    routing::Host& b = *hosts[(pair + 1) % hosts.size()];
    ++pair;
    t += 5.0;
    const auto now = util::SimTime::seconds(t);
    a.router().pre_exchange(a, now, {});
    b.router().pre_exchange(b, now, {});
    a.router().on_link_up(a, b, now, 50.0);
    b.router().on_link_up(b, a, now, 50.0);
    a.router().plan_into(a, b, now, plans);
    b.router().plan_into(b, a, now, plans);
    a.router().on_link_down(a, b, now);
    b.router().on_link_down(b, a, now);
  };
  for (int w = 0; w < 256; ++w) contact();
  const std::uint64_t before = allocs_now();
  for (int w = 0; w < 64; ++w) contact();
  EXPECT_EQ(allocs_now() - before, 0u)
      << "steady-state exchange + plan tick must not touch the heap";
}

TEST(AllocSteadyState, BufferChurnRecyclesThroughArena) {
  if (!probe_active()) GTEST_SKIP() << "probe needs non-sanitized build with arena on";
  // Message construction itself may allocate (per-copy vectors are plain
  // heap by design); the buffer's own node storage must recycle through the
  // arena — pinned here as "no new chunks once warm".
  constexpr std::uint64_t kMB = 1024 * 1024;
  msg::MessageBuffer buf(64 * kMB);
  util::Rng rng(3);
  util::MessageId::underlying next = 0;
  const auto churn = [&] {
    msg::Message m(util::MessageId(++next), util::NodeId(1), util::SimTime::zero(),
                   kMB / 2 + rng.below(kMB), msg::Priority::kMedium, 0.5);
    const util::MessageId id = m.id();
    (void)buf.add(std::move(m));
    (void)buf.remove(id);
  };
  for (int i = 0; i < 2000; ++i) churn();
  const auto before = util::arena::thread_stats();
  for (int i = 0; i < 2000; ++i) churn();
  const auto after = util::arena::thread_stats();
  EXPECT_EQ(after.chunk_allocs, before.chunk_allocs)
      << "buffer node churn must recycle pooled blocks, not grow the arena";
  EXPECT_GT(after.pool_allocs, before.pool_allocs);
}

}  // namespace
}  // namespace dtnic
