# Validates the machine-readable benchmark artifact written by micro_kernel
# (BENCH_contact_scan.json). Run in script mode:
#
#   cmake -DJSON_FILE=<path> -P cmake/validate_bench_json.cmake
#
# Fails (FATAL_ERROR) unless the file parses, carries the expected schema
# tag, and every result row has the required keys with sane values. Used by
# the `bench_smoke_json_schema` ctest so CI catches a silently broken or
# truncated artifact, not just a crashing benchmark.

if(NOT DEFINED JSON_FILE)
  message(FATAL_ERROR "pass -DJSON_FILE=<path to BENCH_contact_scan.json>")
endif()
if(NOT EXISTS "${JSON_FILE}")
  message(FATAL_ERROR "benchmark artifact not found: ${JSON_FILE}")
endif()

file(READ "${JSON_FILE}" _doc)

string(JSON _schema ERROR_VARIABLE _err GET "${_doc}" schema)
if(_err)
  message(FATAL_ERROR "missing 'schema' key in ${JSON_FILE}: ${_err}")
endif()
if(NOT _schema STREQUAL "dtnic.contact_scan_bench.v1")
  message(FATAL_ERROR "unexpected schema tag '${_schema}' in ${JSON_FILE}")
endif()

string(JSON _count ERROR_VARIABLE _err LENGTH "${_doc}" results)
if(_err)
  message(FATAL_ERROR "missing 'results' array in ${JSON_FILE}: ${_err}")
endif()
if(_count LESS 2)
  message(FATAL_ERROR "expected at least 2 result rows, got ${_count}")
endif()

math(EXPR _last "${_count} - 1")
foreach(_i RANGE ${_last})
  foreach(_key kernel nodes iterations ns_per_scan pairs)
    string(JSON _val ERROR_VARIABLE _err GET "${_doc}" results ${_i} ${_key})
    if(_err)
      message(FATAL_ERROR "results[${_i}] missing '${_key}': ${_err}")
    endif()
  endforeach()
  string(JSON _ns GET "${_doc}" results ${_i} ns_per_scan)
  if(_ns LESS_EQUAL 0)
    message(FATAL_ERROR "results[${_i}].ns_per_scan must be positive, got ${_ns}")
  endif()
  string(JSON _nodes GET "${_doc}" results ${_i} nodes)
  if(_nodes LESS_EQUAL 0)
    message(FATAL_ERROR "results[${_i}].nodes must be positive, got ${_nodes}")
  endif()
endforeach()

message(STATUS "${JSON_FILE}: schema ok, ${_count} result rows")
