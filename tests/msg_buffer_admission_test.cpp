#include <gtest/gtest.h>

#include "msg/buffer.h"
#include "util/rng.h"

/// would_admit() must predict add() exactly — admission control relies on
/// the two never disagreeing (a transfer is started only if the copy will
/// actually be stored).

namespace dtnic::msg {
namespace {

using util::NodeId;
using util::SimTime;

constexpr std::uint64_t kKB = 1024;

Message random_message(util::Rng& rng, MessageId id) {
  const auto priority = static_cast<Priority>(rng.range(1, 3));
  const auto size = static_cast<std::uint64_t>(rng.range(1, 64)) * kKB;
  Message m(id, NodeId(static_cast<NodeId::underlying>(rng.below(8))), SimTime::zero(), size,
            priority, rng.uniform(0.0, 1.0));
  return m;
}

TEST(WouldAdmit, TrueWhenSpaceFree) {
  MessageBuffer buf(64 * kKB);
  const Message m(MessageId(1), NodeId(0), SimTime::zero(), kKB, Priority::kLow, 0.1);
  EXPECT_TRUE(buf.would_admit(m));
}

TEST(WouldAdmit, FalseForDuplicateAndOversize) {
  MessageBuffer buf(64 * kKB);
  Message m(MessageId(1), NodeId(0), SimTime::zero(), kKB, Priority::kLow, 0.1);
  (void)buf.add(m);
  EXPECT_FALSE(buf.would_admit(m));
  const Message big(MessageId(2), NodeId(0), SimTime::zero(), 128 * kKB, Priority::kHigh,
                    0.9);
  EXPECT_FALSE(buf.would_admit(big));
}

TEST(WouldAdmit, PriorityPolicyRefusesOutrankedCopy) {
  MessageBuffer buf(2 * kKB, DropPolicy::kLowPriorityFirst);
  (void)buf.add(Message(MessageId(1), NodeId(0), SimTime::zero(), kKB, Priority::kHigh, 0.9));
  (void)buf.add(Message(MessageId(2), NodeId(0), SimTime::zero(), kKB, Priority::kHigh, 0.8));
  const Message low(MessageId(3), NodeId(0), SimTime::zero(), kKB, Priority::kLow, 0.9);
  EXPECT_FALSE(buf.would_admit(low));
  const Message high(MessageId(4), NodeId(0), SimTime::zero(), kKB, Priority::kHigh, 0.5);
  EXPECT_TRUE(buf.would_admit(high));  // equal priority churns by quality
}

class AdmissionOracleSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, DropPolicy>> {};

TEST_P(AdmissionOracleSweep, WouldAdmitPredictsAdd) {
  const auto [seed, policy] = GetParam();
  util::Rng rng(seed);
  MessageBuffer buf(96 * kKB, policy);
  MessageId::underlying next = 0;
  int admitted = 0;
  int refused = 0;
  for (int step = 0; step < 600; ++step) {
    const bool own = rng.chance(0.1);
    Message m = random_message(rng, MessageId(next++));
    const bool predicted = buf.would_admit(m, own);
    const auto outcome = buf.add(std::move(m), own);
    const bool stored = outcome.result == MessageBuffer::AddResult::kAdded;
    ASSERT_EQ(predicted, stored) << "step " << step << " policy "
                                 << (policy == DropPolicy::kFifoOldest ? "fifo" : "prio");
    (stored ? admitted : refused) += 1;
    ASSERT_LE(buf.used_bytes(), buf.capacity_bytes());
    if (rng.chance(0.05) && !buf.empty()) {
      (void)buf.remove(buf.messages().front()->id());
    }
  }
  EXPECT_GT(admitted, 0);
  if (policy == DropPolicy::kLowPriorityFirst) EXPECT_GT(refused, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, AdmissionOracleSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6),
                       ::testing::Values(DropPolicy::kFifoOldest,
                                         DropPolicy::kLowPriorityFirst)));

/// Under the priority policy a relayed arrival never displaces a strictly
/// better-ranked copy: every evicted message ranks no higher than the
/// incoming one.
TEST(PriorityPolicyChurn, EvictionNeverSacrificesBetterPriority) {
  MessageBuffer buf(4 * kKB, DropPolicy::kLowPriorityFirst);
  util::Rng rng(9);
  MessageId::underlying next = 0;
  for (int step = 0; step < 500; ++step) {
    Message m = random_message(rng, MessageId(next++));
    const auto incoming_priority = priority_level(m.priority());
    const auto outcome = buf.add(std::move(m));
    for (const Message& evicted : outcome.evicted) {
      ASSERT_GE(priority_level(evicted.priority()), incoming_priority);
    }
  }
}

}  // namespace
}  // namespace dtnic::msg
