#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "net/scripted_contacts.h"
#include "scenario/experiment.h"
#include "scenario/scenario.h"

namespace dtnic::net {
namespace {

using util::NodeId;
using util::SimTime;

ContactEvent ev(double up, double down, unsigned a, unsigned b, double dist = 50.0) {
  return ContactEvent{SimTime::seconds(up), SimTime::seconds(down), NodeId(a), NodeId(b),
                      dist};
}

struct Recorded {
  bool up;
  NodeId a;
  NodeId b;
  double time_s;
};

class ScriptedFixture : public ::testing::Test {
 protected:
  void attach(ScriptedConnectivity& sc) {
    sc.on_link_up([this](NodeId a, NodeId b, double) {
      events.push_back({true, a, b, sim.now().sec()});
    });
    sc.on_link_down([this](NodeId a, NodeId b) {
      events.push_back({false, a, b, sim.now().sec()});
    });
  }

  sim::Simulator sim;
  std::vector<Recorded> events;
};

TEST_F(ScriptedFixture, ReplaysEventsAtScriptedTimes) {
  ScriptedConnectivity sc(sim, {ev(10, 30, 0, 1), ev(20, 40, 1, 2)});
  attach(sc);
  sc.start();
  sim.run_until(SimTime::seconds(15));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events[0].up);
  EXPECT_DOUBLE_EQ(events[0].time_s, 10.0);
  EXPECT_EQ(sc.neighbors_of(NodeId(0)), std::vector<NodeId>{NodeId(1)});

  sim.run_until(SimTime::seconds(25));
  EXPECT_EQ(sc.connected_pairs().size(), 2u);
  sim.run_until(SimTime::seconds(50));
  ASSERT_EQ(events.size(), 4u);
  EXPECT_FALSE(events.back().up);
  EXPECT_TRUE(sc.connected_pairs().empty());
  EXPECT_EQ(sc.contacts_formed(), 2u);
}

TEST_F(ScriptedFixture, OverlappingEventsMerge) {
  ScriptedConnectivity sc(sim, {ev(0, 20, 0, 1), ev(10, 30, 0, 1)});
  attach(sc);
  sc.start();
  sim.run_until(SimTime::seconds(100));
  // One up at t=0, one down at t=30; the middle overlap is silent.
  ASSERT_EQ(events.size(), 2u);
  EXPECT_TRUE(events[0].up);
  EXPECT_DOUBLE_EQ(events[0].time_s, 0.0);
  EXPECT_FALSE(events[1].up);
  EXPECT_DOUBLE_EQ(events[1].time_s, 30.0);
  EXPECT_EQ(sc.contacts_formed(), 1u);
}

TEST_F(ScriptedFixture, GateSuppressesScriptedContacts) {
  ScriptedConnectivity sc(sim, {ev(5, 15, 0, 1)});
  attach(sc);
  sc.set_participation_gate([](NodeId id) { return id.value() != 1; });
  sc.start();
  sim.run_until(SimTime::seconds(100));
  EXPECT_TRUE(events.empty());
  EXPECT_EQ(sc.contacts_suppressed(), 1u);
  EXPECT_EQ(sc.contacts_formed(), 0u);
}

TEST_F(ScriptedFixture, ValidatesEvents) {
  EXPECT_THROW(ScriptedConnectivity(sim, {ev(10, 10, 0, 1)}), std::invalid_argument);
  EXPECT_THROW(ScriptedConnectivity(sim, {ev(0, 10, 2, 2)}), std::invalid_argument);
  ScriptedConnectivity empty(sim, {});
  EXPECT_FALSE(empty.max_node().valid());
  ScriptedConnectivity sc(sim, {ev(0, 1, 3, 9)});
  EXPECT_EQ(sc.max_node(), NodeId(9));
  EXPECT_EQ(sc.event_count(), 1u);
}

// --- trace text format -------------------------------------------------------

TEST(ScriptedTraceFormat, ParseAndSerializeRoundTrip) {
  const std::vector<ContactEvent> original{ev(1.5, 20, 0, 3, 42.0), ev(30, 40.25, 2, 1)};
  std::ostringstream os;
  ScriptedConnectivity::serialize(os, original);
  std::istringstream is(os.str());
  const auto parsed = ScriptedConnectivity::parse(is);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_DOUBLE_EQ(parsed[0].up.sec(), 1.5);
  EXPECT_DOUBLE_EQ(parsed[0].down.sec(), 20.0);
  EXPECT_EQ(parsed[0].a, NodeId(0));
  EXPECT_EQ(parsed[0].b, NodeId(3));
  EXPECT_DOUBLE_EQ(parsed[0].distance_m, 42.0);
  EXPECT_DOUBLE_EQ(parsed[1].down.sec(), 40.25);
}

TEST(ScriptedTraceFormat, ParseErrorsCarryLineNumbers) {
  std::istringstream bad1("10 5 0 1\n");  // down before up
  EXPECT_THROW((void)ScriptedConnectivity::parse(bad1), std::invalid_argument);
  std::istringstream bad2("abc\n");
  EXPECT_THROW((void)ScriptedConnectivity::parse(bad2), std::invalid_argument);
  std::istringstream comments("# header only\n\n");
  EXPECT_TRUE(ScriptedConnectivity::parse(comments).empty());
  EXPECT_THROW((void)ScriptedConnectivity::load_file("/no/such/trace.txt"),
               std::runtime_error);
}

TEST(ScriptedTraceFormat, FromRecordedTrace) {
  ContactTrace trace;
  trace.record_up(NodeId(0), NodeId(1), SimTime::seconds(5));
  trace.record_down(NodeId(0), NodeId(1), SimTime::seconds(25));
  trace.finalize(SimTime::seconds(100));
  const auto events = ScriptedConnectivity::from_trace(trace);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_DOUBLE_EQ(events[0].up.sec(), 5.0);
  EXPECT_DOUBLE_EQ(events[0].down.sec(), 25.0);
}

// --- end-to-end replay through the scenario -----------------------------------

TEST(TraceReplayScenario, RecordThenReplayReproducesContacts) {
  // 1. Run a mobility-driven scenario and record its contact trace.
  scenario::ScenarioConfig cfg = scenario::ScenarioConfig::scaled_defaults(25, 1.0);
  cfg.seed = 12;
  scenario::Scenario original(cfg);
  const auto original_result = original.run();
  ASSERT_GT(original_result.contacts, 0u);

  // 2. Serialize the trace to a file. Contacts that formed exactly at the
  // horizon are zero-length in the finalized trace and cannot be replayed.
  const auto events = ScriptedConnectivity::from_trace(original.contact_trace());
  const std::string path = ::testing::TempDir() + "/dtnic_replay_trace.txt";
  {
    std::ofstream out(path);
    ScriptedConnectivity::serialize(out, events);
  }

  // 3. Replay it: same contacts drive the same routing world.
  scenario::ScenarioConfig replay_cfg = cfg;
  replay_cfg.contact_trace_file = path;
  scenario::Scenario replay(replay_cfg);
  const auto replay_result = replay.run();
  EXPECT_EQ(replay_result.contacts, events.size());
  EXPECT_LE(original_result.contacts - replay_result.contacts, 5u);
  // Identical workload streams: the same messages are created...
  EXPECT_EQ(replay_result.created, original_result.created);
  // ...and delivery closely tracks the original (tie-breaking among
  // same-instant contacts may reorder individual transfers).
  const auto diff = replay_result.delivered > original_result.delivered
                        ? replay_result.delivered - original_result.delivered
                        : original_result.delivered - replay_result.delivered;
  EXPECT_LE(diff, original_result.created / 5 + 1);
  EXPECT_GT(replay_result.delivered, 0u);
  std::remove(path.c_str());
}

TEST(TraceReplayScenario, RejectsTraceBeyondPopulation) {
  const std::string path = ::testing::TempDir() + "/dtnic_big_trace.txt";
  {
    std::ofstream out(path);
    out << "0 10 0 99\n";  // node 99 does not exist in a 10-node world
  }
  scenario::ScenarioConfig cfg = scenario::ScenarioConfig::scaled_defaults(10, 0.5);
  cfg.contact_trace_file = path;
  EXPECT_THROW(scenario::Scenario{cfg}, std::invalid_argument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dtnic::net
