#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/incentive_router.h"
#include "msg/id_source.h"
#include "msg/keyword.h"
#include "msg/message.h"
#include "obs/event_fanout.h"
#include "routing/host.h"
#include "routing/oracle.h"
#include "routing/router.h"
#include "util/rng.h"

/// \file test_helpers.h
/// Shared fixtures: message factories and a two-host "micro world" that
/// drives the router contact protocol directly (no mobility/radio), so unit
/// tests can exercise plan/accept/receive flows deterministically.

namespace dtnic::test {

inline constexpr std::uint64_t kMB = 1024 * 1024;

/// Build a message with sequential ids and the given keywords (all truthful,
/// tagged by the source, also the latent truth).
class MessageFactory {
 public:
  explicit MessageFactory(msg::KeywordTable& keywords) : keywords_(keywords) {}

  msg::Message make(util::NodeId source, const std::vector<std::string>& tags,
                    util::SimTime at = util::SimTime::zero(), std::uint64_t size = kMB,
                    msg::Priority priority = msg::Priority::kMedium, double quality = 0.8) {
    msg::Message m(ids_.next(), source, at, size, priority, quality);
    std::vector<msg::KeywordId> truth;
    for (const std::string& t : tags) {
      const msg::KeywordId k = keywords_.intern(t);
      truth.push_back(k);
      m.annotate(msg::Annotation{k, source, true});
    }
    m.set_true_keywords(std::move(truth));
    return m;
  }

  msg::MessageIdSource& ids() { return ids_; }

 private:
  msg::KeywordTable& keywords_;
  msg::MessageIdSource ids_;
};

/// Records every routing event for assertion.
class EventRecorder : public routing::RoutingEvents {
 public:
  struct Delivered {
    routing::NodeId from, to;
    routing::MessageId message;
  };
  struct Payment {
    routing::NodeId payer, payee;
    double amount;
  };

  void on_created(const msg::Message&) override { ++created; }
  void on_transfer_started(routing::NodeId, routing::NodeId, const msg::Message&,
                           routing::TransferRole) override {
    ++transfers_started;
  }
  void on_relayed(routing::NodeId, routing::NodeId, const msg::Message&) override {
    ++relayed;
  }
  void on_delivered(routing::NodeId from, routing::NodeId to, const msg::Message& m) override {
    deliveries.push_back({from, to, m.id()});
  }
  void on_refused(routing::NodeId, routing::NodeId, const msg::Message&,
                  routing::AcceptDecision why) override {
    refusals.push_back(why);
  }
  void on_aborted(routing::NodeId, routing::NodeId, routing::MessageId) override { ++aborted; }
  void on_dropped(routing::NodeId, const msg::Message&, routing::DropReason why) override {
    drops.push_back(why);
  }
  void on_tokens_paid(routing::NodeId payer, routing::NodeId payee, double amount) override {
    payments.push_back({payer, payee, amount});
  }

  int created = 0;
  int transfers_started = 0;
  int relayed = 0;
  int aborted = 0;
  std::vector<Delivered> deliveries;
  std::vector<routing::AcceptDecision> refusals;
  std::vector<routing::DropReason> drops;
  std::vector<Payment> payments;
};

/// A handful of hosts wired to one oracle and event recorder; the `contact`
/// and `exchange` helpers run the router protocol the way the scenario's
/// contact controller does, minus radios and clocks.
class MicroWorld {
 public:
  MicroWorld() = default;

  routing::Host& add_host(std::uint64_t buffer_bytes = 64 * kMB) {
    const auto id = util::NodeId(static_cast<util::NodeId::underlying>(hosts_.size()));
    hosts_.push_back(std::make_unique<routing::Host>(id, buffer_bytes,
                                                     msg::DropPolicy::kFifoOldest, fanout));
    return *hosts_.back();
  }

  routing::Host& host(std::size_t i) { return *hosts_.at(i); }
  std::size_t size() const { return hosts_.size(); }

  /// Run the link-up handshake (pre_exchange both, on_link_up both).
  void link_up(routing::Host& a, routing::Host& b, util::SimTime now,
               double distance_m = 50.0) {
    std::vector<routing::Host*> none;
    a.router().pre_exchange(a, now, none);
    b.router().pre_exchange(b, now, none);
    a.router().on_link_up(a, b, now, distance_m);
    b.router().on_link_up(b, a, now, distance_m);
  }

  /// Move every currently-planned transfer a->b instantly (accept() gating
  /// honored); returns the number of messages that arrived at b.
  int exchange(routing::Host& a, routing::Host& b, util::SimTime now) {
    int arrived = 0;
    for (const routing::ForwardPlan& plan : a.router().plan(a, b, now)) {
      const msg::Message* m = a.buffer().find(plan.message);
      if (m == nullptr) continue;
      const auto decision = b.router().accept(b, a, *m, plan, now);
      if (decision != routing::AcceptDecision::kAccept) {
        fanout.on_refused(a.id(), b.id(), *m, decision);
        continue;
      }
      msg::Message copy = *m;
      copy.record_hop(b.id(), now);
      a.router().prepare_send(a, b, copy, plan, now);
      a.router().on_sent(a, b, copy, plan, now);
      if (plan.role == routing::TransferRole::kDestination) {
        fanout.on_delivered(a.id(), b.id(), copy);
      } else {
        fanout.on_relayed(a.id(), b.id(), copy);
      }
      b.router().on_received(b, a, std::move(copy), plan, now);
      ++arrived;
    }
    return arrived;
  }

  /// Full bidirectional contact at \p now: link-up then both directions.
  void contact(routing::Host& a, routing::Host& b, util::SimTime now) {
    link_up(a, b, now);
    exchange(a, b, now);
    exchange(b, a, now);
    a.router().on_link_down(a, b, now);
    b.router().on_link_down(b, a, now);
  }

  msg::KeywordTable keywords;
  routing::StaticInterestOracle oracle;
  /// Hosts bind the fan-out by reference at construction; the recorder is
  /// its first (and usually only) sink. Tests may add more sinks.
  obs::EventFanout fanout;
  EventRecorder events;

 private:
  obs::SinkHandle events_handle_ = fanout.add_sink(events);
  std::vector<std::unique_ptr<routing::Host>> hosts_;
};

}  // namespace dtnic::test
