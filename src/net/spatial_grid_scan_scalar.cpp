#include <algorithm>
#include <cmath>

#include "net/spatial_grid.h"

/// \file spatial_grid_scan_scalar.cpp
/// Reference distance kernel, compiled with -ffp-contract=off so the d²
/// expression is the exact IEEE sequence (sub, sub, mul, mul, add) the SIMD
/// lanes compute — the foundation of the bit-identical-variants guarantee.
/// Also provides scan_cell_scalar, the per-cell fallback the SIMD kernels
/// take for the rare cells whose neighborhood touches overflow entries.

namespace dtnic::net {

namespace {

struct EntryView {
  double x;
  double y;
  std::uint32_t id;
};

}  // namespace

void SpatialGrid::scan_cell_scalar(const ScanView& view, std::uint32_t c, double r2,
                                   std::vector<Pair>& out) {
  const auto at = [&view](std::uint32_t cell_index, std::uint32_t i) -> EntryView {
    const ScanBlock& b = view.blocks[cell_index];
    if (i < kInline) return EntryView{b.x[i], b.y[i], view.ids[cell_index * kInline + i]};
    const Entry& e = view.pool[cell_index].overflow[i - kInline];
    return EntryView{view.xs[e.slot], view.ys[e.slot], e.id.value()};
  };
  const auto emit = [r2, &out](const EntryView& lhs, const EntryView& rhs) {
    const double dx = lhs.x - rhs.x;
    const double dy = lhs.y - rhs.y;
    const double d2 = dx * dx + dy * dy;
    if (d2 > r2) return;
    const util::NodeId lo{std::min(lhs.id, rhs.id)};
    const util::NodeId hi{std::max(lhs.id, rhs.id)};
    // distance_m holds d² until sort_pairs' scatter applies the √ — one
    // conversion for every kernel, including the SIMD fallback landing here.
    out.push_back(Pair{lo, hi, d2});
  };
  const std::uint32_t n = view.counts[c];
  for (std::uint32_t i = 0; i < n; ++i) {
    const EntryView mine = at(c, i);
    for (std::uint32_t j = i + 1; j < n; ++j) emit(mine, at(c, j));
  }
  for (const std::int32_t other_index : view.links[c].half) {
    if (other_index < 0) continue;
    const auto other = static_cast<std::uint32_t>(other_index);
    for (std::uint32_t i = 0; i < n; ++i) {
      const EntryView mine = at(c, i);
      for (std::uint32_t j = 0; j < view.counts[other]; ++j) emit(mine, at(other, j));
    }
  }
}

void SpatialGrid::scan_kernel_scalar(const ScanView& view, double r2, std::uint32_t shard,
                                     std::uint32_t shard_count, std::vector<Pair>& out) {
  // Freed pool entries keep counts[c] == 0, so one dense sweep of the
  // L1-resident count array visits exactly the live cells without consulting
  // the hash map at all. A cell emits its interior pairs plus all pairs
  // against its half-neighborhood, so pair ownership follows cell ownership:
  // each unordered pair is emitted by exactly one cell, and filtering cells
  // partitions the pair set.
  for (std::size_t c = 0; c < view.pool_size; ++c) {
    if (view.counts[c] == 0) continue;
    if (shard_count != 0 && shard_of_cell(view.links[c].cx, shard_count) != shard) continue;
    scan_cell_scalar(view, static_cast<std::uint32_t>(c), r2, out);
  }
  // Pairs leave every kernel carrying d²; sort_pairs applies the √ during
  // its scatter pass, one code path for every variant.
}

}  // namespace dtnic::net
