#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/ids.h"
#include "util/sim_time.h"

/// \file message.h
/// The multimedia message of the paper's Fig. 3.2: payload metadata (size,
/// quality, priority, timestamps) plus keyword annotations with per-annotator
/// provenance, the hop path, and en-route ratings. A MessageId plays the role
/// of the paper's UUID: buffers reject duplicate ids, and copies of the same
/// message on different nodes share the id.
///
/// Internally a Message splits into a shared immutable core (identity,
/// payload metadata, ground truth — identical for every copy of the same
/// message) held behind a shared_ptr, and cheap per-copy state (annotations,
/// hop path, ratings, properties). Relaying or evicting a copy therefore
/// never deep-copies the mime/format strings or the truth vector; the rare
/// post-construction core setters copy-on-write.

namespace dtnic::msg {

using util::KeywordId;
using util::MessageId;
using util::NodeId;
using util::SimTime;

/// Source-assigned priority; 1 is highest (paper Table 3.1: P_s in 1..3).
enum class Priority : int { kHigh = 1, kMedium = 2, kLow = 3 };

[[nodiscard]] constexpr int priority_level(Priority p) { return static_cast<int>(p); }
[[nodiscard]] const char* priority_name(Priority p);

/// Where the multimedia content was captured (Fig. 3.2 stores latitude and
/// longitude as key-value attributes).
struct GeoTag {
  double latitude = 0.0;
  double longitude = 0.0;
  friend bool operator==(GeoTag, GeoTag) = default;
};

/// One keyword tag on a message, with provenance. `truthful` is simulation
/// ground truth — whether the tag actually describes the content — standing
/// in for the human judgement the paper's DRM asks of users (see DESIGN.md
/// substitution table). Protocol code must never branch on it; only the
/// rating step (the simulated user) reads it.
struct Annotation {
  KeywordId keyword;
  NodeId annotator;
  bool truthful = true;

  friend bool operator==(const Annotation&, const Annotation&) = default;
};

/// A hop the message copy has traversed (source is hop 0).
struct HopRecord {
  NodeId node;
  SimTime received_at;
};

/// A rating assigned by one path node to an earlier path node, carried with
/// the copy so the destination can apply the DRM award formula (paper §3.3:
/// "the delivering device also sends the destination the ratings for the
/// message from all the hops in the path").
struct PathRating {
  NodeId rater;
  NodeId rated;
  double rating = 0.0;  ///< 0..5 scale (Fig. 5.4)
};

class Message {
 public:
  Message() = default;
  Message(MessageId id, NodeId source, SimTime created_at, std::uint64_t size_bytes,
          Priority priority, double quality);

  [[nodiscard]] MessageId id() const { return core().id; }
  [[nodiscard]] NodeId source() const { return core().source; }
  [[nodiscard]] SimTime created_at() const { return core().created_at; }
  [[nodiscard]] std::uint64_t size_bytes() const { return core().size_bytes; }
  [[nodiscard]] Priority priority() const { return core().priority; }
  /// Content quality in [0,1] (paper's Q, normalized by Q_m at use sites).
  [[nodiscard]] double quality() const { return core().quality; }

  /// Time-to-live; infinite by default. A message has expired once
  /// now > created_at + ttl.
  void set_ttl(SimTime ttl) { ttl_ = ttl; }
  [[nodiscard]] SimTime ttl() const { return ttl_; }
  [[nodiscard]] bool expired(SimTime now) const;

  /// --- annotations -------------------------------------------------------
  /// Add a tag; duplicates of (keyword) are ignored so enrichment cannot
  /// inflate the tag set with repeats. Returns true if added.
  bool annotate(Annotation a);
  [[nodiscard]] const std::vector<Annotation>& annotations() const { return annotations_; }
  [[nodiscard]] bool has_keyword(KeywordId k) const;
  /// All distinct keywords currently tagged on the message, in annotation
  /// order. Maintained incrementally by annotate(); never materialized per
  /// query, so strength computations can iterate it allocation-free.
  [[nodiscard]] const std::vector<KeywordId>& keywords() const { return keywords_; }
  /// Monotone stamp identifying this copy's annotation set: two copies with
  /// equal id and equal stamp carry identical keyword lists. Bumped (from a
  /// process-wide counter, so independently enriched copies never collide)
  /// on every successful annotate(); strength caches key on (id, stamp).
  [[nodiscard]] std::uint64_t keyword_stamp() const { return keyword_stamp_; }
  /// Tags added by a specific node (enrichment attribution).
  [[nodiscard]] std::vector<Annotation> annotations_by(NodeId node) const;
  /// Latent true content keywords (ground truth for the rating simulation).
  void set_true_keywords(std::vector<KeywordId> truth);
  [[nodiscard]] const std::vector<KeywordId>& true_keywords() const {
    return core().true_keywords;
  }
  [[nodiscard]] bool keyword_is_truthful(KeywordId k) const;

  /// --- path & ratings ----------------------------------------------------
  void record_hop(NodeId node, SimTime at) { path_.push_back({node, at}); }
  [[nodiscard]] const std::vector<HopRecord>& path() const { return path_; }
  /// Hops excluding the source; 0 for a message still at its source.
  [[nodiscard]] std::size_t relay_hop_count() const;
  [[nodiscard]] bool visited(NodeId node) const;

  void add_path_rating(PathRating r) { path_ratings_.push_back(r); }
  [[nodiscard]] const std::vector<PathRating>& path_ratings() const { return path_ratings_; }

  /// --- multimedia metadata (Fig. 3.2) -------------------------------------
  void set_mime_type(std::string mime) { mutable_core().mime_type = std::move(mime); }
  [[nodiscard]] const std::string& mime_type() const { return core().mime_type; }
  void set_format(std::string format) { mutable_core().format = std::move(format); }
  [[nodiscard]] const std::string& format() const { return core().format; }
  void set_location(GeoTag location) { mutable_core().location = location; }
  [[nodiscard]] const std::optional<GeoTag>& location() const { return core().location; }

  /// --- properties --------------------------------------------------------
  /// Small per-copy key/value store for router metadata (ONE-simulator style
  /// message properties; e.g. Spray-and-Wait's remaining copy count).
  void set_property(const std::string& key, double value);
  [[nodiscard]] double property_or(const std::string& key, double dflt) const;

 private:
  /// Copy-invariant message state: every copy of a message shares one Core.
  struct Core {
    MessageId id;
    NodeId source;
    SimTime created_at;
    std::uint64_t size_bytes = 0;
    Priority priority = Priority::kMedium;
    double quality = 1.0;
    std::vector<KeywordId> true_keywords;
    std::string mime_type = "image/jpeg";  ///< Fig. 3.2 default payload kind
    std::string format = "jpeg";
    std::optional<GeoTag> location;
  };

  [[nodiscard]] const Core& core() const;
  /// Copy-on-write: clones the core when other copies still reference it.
  [[nodiscard]] Core& mutable_core();

  std::shared_ptr<const Core> core_;
  SimTime ttl_ = SimTime::infinity();
  std::uint64_t keyword_stamp_ = 0;
  std::vector<Annotation> annotations_;
  std::vector<KeywordId> keywords_;
  std::vector<HopRecord> path_;
  std::vector<PathRating> path_ratings_;
  std::vector<std::pair<std::string, double>> properties_;
};

}  // namespace dtnic::msg
