#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "mobility/random_waypoint.h"
#include "net/connectivity.h"
#include "sim/simulator.h"
#include "util/rng.h"

/// Strong-scaling benchmark for the intra-run sharded contact scan
/// (DESIGN.md "Intra-run sharding"): one fixed world, identical tick work,
/// shard counts {1, 2, 4, 8}. Because the sharded scan is bit-identical to
/// the serial one by construction, the only thing that may change across
/// rows is wall-clock time — the benchmark asserts the pair count to prove
/// it timed the same work.
///
/// Emits BENCH_shard_scaling.json (schema dtnic.shard_scaling_bench.v1):
///   DTNIC_BENCH_JSON_SHARD  output path (default alongside the binary)
///   DTNIC_BENCH_JSON_FAST   any value: smoke-test scale for CI
///
/// Node count defaults to 10^4 (the acceptance tick); pass a different count
/// as argv[1]. Speedup on a given host is bounded by its core count — a
/// single-core CI box will report ~1x for every row, which is expected.

namespace {

using namespace dtnic;

struct Sample {
  double ns_per_tick = 0.0;
  std::size_t pairs = 0;
};

/// Time `ticks` full connectivity scans of an n-node random-waypoint world
/// under `shards` intra-scan shards (after one untimed warm-up scan that
/// pays grid construction and first-leg generation).
Sample time_world(std::size_t n, std::size_t shards, std::size_t ticks) {
  sim::Simulator sim;
  net::RadioParams radio;  // 100 m range, Table 5.1
  net::ConnectivityManager manager(sim, radio, util::SimTime::seconds(1.0), shards);

  // Density matched to the paper's scenario family: ~64 nodes per km^2, the
  // fig55 500-node point. Scaling area with n keeps per-tick contact work
  // proportional to n instead of n^2.
  const double side = std::sqrt(static_cast<double>(n) / 64.0) * 1000.0;
  mobility::RandomWaypointParams params;
  params.area = {side, side};
  util::Rng seed_rng(2017);
  std::vector<std::unique_ptr<mobility::MobilityModel>> models;
  models.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    models.push_back(std::make_unique<mobility::RandomWaypoint>(params, seed_rng.fork(i)));
    manager.add_node(util::NodeId(static_cast<std::uint32_t>(i)), models.back().get());
  }

  manager.scan();  // warm-up: grid insertions + initial link formation
  double t = 0.0;
  // Report the fastest individual tick rather than the window mean: on a
  // shared host a single preemption inside the (milliseconds-long) smoke
  // window inflates the mean several-fold, while the fastest tick is the
  // closest observable estimate of the scan's own cost. Ticks do identical
  // work modulo random-waypoint drift, so they are comparable.
  double best_tick_ns = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < ticks; ++i) {
    t += 1.0;
    const auto start = std::chrono::steady_clock::now();
    sim.run_until(util::SimTime::seconds(t));
    manager.scan();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    best_tick_ns = std::min(
        best_tick_ns,
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
  }

  Sample s;
  s.ns_per_tick = best_tick_ns;
  s.pairs = manager.active_links();
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const bool fast = std::getenv("DTNIC_BENCH_JSON_FAST") != nullptr;
  std::size_t nodes = fast ? 600 : 10000;
  if (argc > 1) nodes = static_cast<std::size_t>(std::strtoull(argv[1], nullptr, 10));
  const std::size_t ticks = fast ? 5 : 30;

  const char* path_env = std::getenv("DTNIC_BENCH_JSON_SHARD");
  const std::string path = path_env != nullptr ? path_env : "BENCH_shard_scaling.json";

  constexpr std::size_t kShardCounts[] = {1, 2, 4, 8};
  std::vector<Sample> samples;
  for (const std::size_t shards : kShardCounts) {
    samples.push_back(time_world(nodes, shards, ticks));
    std::cout << "shards=" << shards << "  ns_per_tick=" << samples.back().ns_per_tick
              << "  active_links=" << samples.back().pairs
              << "  speedup=" << samples.front().ns_per_tick / samples.back().ns_per_tick
              << "x\n";
  }

  // Same world, same ticks: every row must have seen the same final link set.
  for (const Sample& s : samples) {
    if (s.pairs != samples.front().pairs) {
      std::cerr << "shard_scaling: pair-count mismatch across shard counts — "
                   "the sharded scan is not reproducing the serial one\n";
      return 1;
    }
  }

  std::ofstream os(path);
  if (!os) {
    std::cerr << "shard_scaling: cannot write " << path << "\n";
    return 1;
  }
  os << "{\n  \"schema\": \"dtnic.shard_scaling_bench.v1\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (i > 0) os << ",\n";
    os << "    {\"kernel\": \"sharded_contact_scan\", \"nodes\": " << nodes
       << ", \"shards\": " << kShardCounts[i] << ", \"iterations\": " << ticks
       << ", \"ns_per_tick\": " << samples[i].ns_per_tick
       << ", \"pairs\": " << samples[i].pairs << "}";
  }
  os << "\n  ]\n}\n";
  if (!os.flush()) {
    std::cerr << "shard_scaling: write failed for " << path << "\n";
    return 1;
  }
  std::cout << "wrote " << path << "\n";
  return 0;
}
