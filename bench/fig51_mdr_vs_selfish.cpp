/// Reproduces Figure 5.1: Message Delivery Ratio vs percentage of selfish
/// nodes (0..100% in steps of 10), Incentive scheme vs plain ChitChat.
/// Paper shape: both curves decline as selfishness rises; the incentive
/// scheme sits slightly below ChitChat (token exhaustion) while cutting
/// traffic (Fig. 5.2). Selfish radios participate in 1-of-10 encounters, so
/// MDR does not reach zero even at 100% selfish.

#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace dtnic;
  util::Cli cli;
  cli.add_flag("step", "10", "selfish-percent sweep step");
  const bench::BenchScale scale = bench::resolve_scale(cli, argc, argv, argv[0]);
  bench::print_header("Figure 5.1: MDR vs % selfish nodes", scale);

  const scenario::SweepRunner sweep(scale.seeds);
  const int step = static_cast<int>(cli.get_int("step"));

  // Both schemes at every sweep point, submitted as one parallel job set.
  std::vector<int> percents;
  std::vector<scenario::ScenarioConfig> points;
  for (int pct = 0; pct <= 100; pct += step) {
    scenario::ScenarioConfig cfg = bench::base_config(scale);
    cfg.selfish_fraction = pct / 100.0;
    cfg.scheme = scenario::Scheme::kIncentive;
    points.push_back(cfg);
    cfg.scheme = scenario::Scheme::kChitChat;
    points.push_back(cfg);
    percents.push_back(pct);
  }
  const auto results = sweep.run_all(points);

  util::Table table({"selfish %", "MDR incentive", "sd", "MDR chitchat", "sd",
                     "suppressed contacts"});
  for (std::size_t i = 0; i < percents.size(); ++i) {
    const auto& incentive = results[2 * i];
    const auto& chitchat = results[2 * i + 1];

    double suppressed = 0;
    for (const auto& r : incentive.raw) suppressed += static_cast<double>(r.contacts_suppressed);
    suppressed /= static_cast<double>(incentive.raw.size());

    table.add_row({std::to_string(percents[i]), util::Table::cell(incentive.mdr.mean(), 3),
                   util::Table::cell(incentive.mdr.stddev(), 3),
                   util::Table::cell(chitchat.mdr.mean(), 3),
                   util::Table::cell(chitchat.mdr.stddev(), 3),
                   util::Table::cell(suppressed, 0)});
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: both MDR curves decline with selfish %; incentive <= "
               "chitchat by a small margin.\n";
  return 0;
}
