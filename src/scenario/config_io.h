#pragma once

#include <string>

#include "scenario/config.h"
#include "util/config.h"

/// \file config_io.h
/// ScenarioConfig <-> key/value Config bridging, so experiments can be
/// described in ONE-style `key = value` files and replayed without
/// recompiling (examples/configs/*.cfg, examples/run_scenario).

namespace dtnic::scenario {

/// Overlay \p kv onto \p base. Unknown keys throw std::invalid_argument so
/// typos in experiment files fail loudly. Returns the merged config
/// (validated).
[[nodiscard]] ScenarioConfig apply_config(ScenarioConfig base, const util::Config& kv);

/// Serialize every tunable of \p cfg as `key = value` lines (the inverse of
/// apply_config; round-trips exactly).
[[nodiscard]] std::string to_config_text(const ScenarioConfig& cfg);

/// Parse a scheme name ("incentive", "chitchat", "epidemic", "direct",
/// "spray-and-wait", "first-contact", "prophet", "nectar", "two-hop").
[[nodiscard]] Scheme parse_scheme(const std::string& name);

}  // namespace dtnic::scenario
