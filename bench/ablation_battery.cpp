/// Ablation (extension): endogenous selfishness. The paper postulates nodes
/// turn selfish because of "limited battery power"; here nodes actually
/// economize once their battery drops below a threshold. Compare an
/// always-cooperative population against battery-conscious populations with
/// shrinking battery capacities, and report the token-distribution fairness
/// (the mechanism's fairness claim).

#include <iostream>
#include <iterator>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace dtnic;
  util::Cli cli;
  const bench::BenchScale scale = bench::resolve_scale(cli, argc, argv, argv[0]);
  bench::print_header("Ablation: battery-conscious nodes (endogenous selfishness)", scale);

  const scenario::SweepRunner sweep(scale.seeds);

  struct Case {
    const char* label;
    double fraction;
    double capacity_j;
  };
  const Case cases[] = {
      {"all cooperative", 0.0, 20000.0},
      {"50% battery-conscious, large battery", 0.5, 20000.0},
      {"50% battery-conscious, medium battery", 0.5, 120.0},
      {"50% battery-conscious, small battery", 0.5, 40.0},
  };
  std::vector<scenario::ScenarioConfig> points;
  for (const Case& c : cases) {
    scenario::ScenarioConfig cfg = bench::base_config(scale);
    cfg.scheme = scenario::Scheme::kIncentive;
    cfg.battery_conscious_fraction = c.fraction;
    cfg.battery_capacity_j = c.capacity_j;
    cfg.messages_per_node_per_hour = 1.0;  // enough traffic to drain batteries
    points.push_back(cfg);
  }
  const auto results = sweep.run_all(points);

  util::Table table({"battery (J)", "population", "MDR", "suppressed contacts",
                     "energy (J)", "token fairness"});
  for (std::size_t i = 0; i < std::size(cases); ++i) {
    const Case& c = cases[i];
    const auto& agg = results[i];
    double suppressed = 0.0, energy = 0.0, fairness = 0.0;
    for (const auto& r : agg.raw) {
      suppressed += static_cast<double>(r.contacts_suppressed);
      energy += r.total_energy_j;
      fairness += r.token_fairness;
    }
    const auto n = static_cast<double>(agg.raw.size());
    table.add_row({util::Table::cell(c.capacity_j, 0), c.label,
                   util::Table::cell(agg.mdr.mean(), 3),
                   util::Table::cell(suppressed / n, 0),
                   util::Table::cell(energy / n, 1),
                   util::Table::cell(fairness / n, 3)});
  }
  table.print(std::cout);
  std::cout << "\nexpected: smaller batteries trigger economizing (suppressed contacts\n"
               "grow, MDR and total energy drop) — selfishness emerges without being\n"
               "scripted.\n";
  return 0;
}
