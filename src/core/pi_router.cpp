#include "core/pi_router.h"

#include "util/assert.h"

namespace dtnic::core {

using routing::ForwardPlan;
using routing::Host;
using routing::TransferRole;

void PiEscrowBank::deposit(msg::MessageId id, double amount) {
  DTNIC_REQUIRE(amount >= 0.0);
  if (amount <= 0.0) return;
  escrow_[id] += amount;
  total_ += amount;
}

double PiEscrowBank::clear(msg::MessageId id) {
  auto it = escrow_.find(id);
  if (it == escrow_.end()) return 0.0;
  const double amount = it->second;
  escrow_.erase(it);
  total_ -= amount;
  return amount;
}

double PiEscrowBank::held(msg::MessageId id) const {
  auto it = escrow_.find(id);
  return it != escrow_.end() ? it->second : 0.0;
}

PiRouter::PiRouter(const routing::DestinationOracle& oracle,
                   const routing::chitchat::ChitChatParams& chitchat,
                   util::SimTime contact_quantum, const IncentiveWorld* world,
                   PiEscrowBank* bank, const PiParams& params)
    : ChitChatRouter(oracle, chitchat, contact_quantum, routing::RouterKind::kPiIncentive),
      world_(world),
      bank_(bank),
      params_(params),
      ledger_(world != nullptr ? world->incentive.initial_tokens : 0.0) {
  DTNIC_REQUIRE_MSG(world != nullptr, "PiRouter needs a shared IncentiveWorld");
  DTNIC_REQUIRE_MSG(bank != nullptr, "PiRouter needs the shared escrow bank");
  DTNIC_REQUIRE(params.attachment >= 0.0);
  DTNIC_REQUIRE(params.deliverer_share >= 0.0 && params.deliverer_share <= 1.0);
}

PiRouter* PiRouter::of(Host& host) {
  if (!host.has_router()) return nullptr;
  routing::Router& router = host.router();
  if (router.kind() != routing::RouterKind::kPiIncentive) return nullptr;
  return static_cast<PiRouter*>(&router);
}

void PiRouter::on_originated(Host& self, const msg::Message& m, util::SimTime now) {
  (void)now;
  // Source-pays: escrow the attachment (or whatever the source can afford).
  const double escrowed = ledger_.debit(params_.attachment);
  bank_->deposit(m.id(), escrowed);
  (void)self;
}

void PiRouter::on_received(Host& self, Host& from, msg::Message m, const ForwardPlan& plan,
                           util::SimTime now) {
  const msg::MessageId id = m.id();
  const std::vector<msg::HopRecord> path = m.path();
  ChitChatRouter::on_received(self, from, std::move(m), plan, now);
  if (plan.role != TransferRole::kDestination) return;

  // First delivery clears the escrow: the deliverer takes its share, the
  // remainder splits equally among the intermediate relays of the winning
  // path (source and destination excluded).
  const double escrow = bank_->clear(id);
  if (escrow <= 0.0) return;

  const util::NodeId payer = path.empty() ? self.id() : path.front().node;
  PiRouter* deliverer = PiRouter::of(from);
  double remainder = escrow;
  if (deliverer != nullptr) {
    const double share = escrow * params_.deliverer_share;
    deliverer->ledger_.credit(share);
    self.events().on_tokens_paid(payer, from.id(), share);
    remainder -= share;
  }

  // Relays: path entries between the source (front) and this destination
  // (back), excluding the deliverer who already took its cut.
  std::vector<Host*> relays;
  if (world_->host_by_id) {
    for (std::size_t i = 1; i + 1 < path.size(); ++i) {
      if (path[i].node == from.id() || path[i].node == self.id()) continue;
      if (Host* h = world_->host_by_id(path[i].node); h != nullptr) relays.push_back(h);
    }
  }
  if (relays.empty()) {
    // No intermediate relays: the deliverer collects everything.
    if (deliverer != nullptr && remainder > 0.0) {
      deliverer->ledger_.credit(remainder);
      self.events().on_tokens_paid(payer, from.id(), remainder);
    } else if (remainder > 0.0) {
      bank_->deposit(id, remainder);  // nobody to pay: escrow stays banked
    }
    return;
  }
  const double per_relay = remainder / static_cast<double>(relays.size());
  for (Host* relay : relays) {
    if (PiRouter* r = PiRouter::of(*relay); r != nullptr) {
      r->ledger_.credit(per_relay);
      self.events().on_tokens_paid(payer, relay->id(), per_relay);
    } else {
      bank_->deposit(id, per_relay);
    }
  }
}

}  // namespace dtnic::core
