#include "wire/frames.h"

#include "util/assert.h"
#include "wire/byte_stream.h"

namespace dtnic::wire {

namespace {

using routing::AcceptDecision;
using routing::NodeId;
using routing::TransferRole;

/// --- payload encoders ------------------------------------------------------

void encode_payload(const HelloFrame& f, ByteWriter& w) {
  w.u32(f.node.value());
  w.u16(f.proto);
  w.u32(static_cast<std::uint32_t>(f.rank));
  w.u64(f.keyword_pool_hash);
}

void encode_payload(const ByeFrame& f, ByteWriter& w) { w.u32(f.node.value()); }

void encode_payload(const InterestDigestFrame& f, ByteWriter& w) {
  w.u32(f.node.value());
  w.u32(static_cast<std::uint32_t>(f.entries.size()));
  for (const InterestEntry& e : f.entries) {
    w.u32(e.keyword.value());
    w.f64(e.weight);
    w.u8(e.direct ? 1 : 0);
  }
}

void encode_payload(const RatingGossipFrame& f, ByteWriter& w) {
  w.u32(f.node.value());
  w.u32(static_cast<std::uint32_t>(f.entries.size()));
  for (const RatingEntry& e : f.entries) {
    w.u32(e.node.value());
    w.f64(e.rating);
  }
}

void encode_payload(const OfferFrame& f, ByteWriter& w) {
  w.u32(f.message.value());
  w.u32(f.source.value());
  w.f64(f.created_at.sec());
  w.u64(f.size_bytes);
  w.u8(static_cast<std::uint8_t>(msg::priority_level(f.priority)));
  w.f64(f.quality);
  w.u8(f.role == TransferRole::kDestination ? 0 : 1);
  w.f64(f.promise);
  w.f64(f.prepay);
}

void encode_payload(const OfferReplyFrame& f, ByteWriter& w) {
  w.u32(f.message.value());
  w.u8(static_cast<std::uint8_t>(f.decision));
}

void encode_payload(const DataFrame& f, ByteWriter& w) {
  w.u32(f.message.value());
  w.u32(f.chunk_index);
  w.u32(f.chunk_count);
  w.u32(static_cast<std::uint32_t>(f.payload.size()));
  w.bytes(f.payload);
}

void encode_payload(const ReceiptFrame& f, ByteWriter& w) {
  w.u32(f.message.value());
  w.u8(f.role == TransferRole::kDestination ? 0 : 1);
  w.f64(f.amount);
}

/// --- payload decoders ------------------------------------------------------
/// Each returns nullopt unless its fields consume the payload exactly.

std::optional<Frame> decode_hello(ByteReader& r) {
  HelloFrame f;
  f.node = NodeId(r.u32());
  f.proto = r.u16();
  f.rank = static_cast<std::int32_t>(r.u32());
  f.keyword_pool_hash = r.u64();
  if (!r.done()) return std::nullopt;
  return f;
}

std::optional<Frame> decode_bye(ByteReader& r) {
  ByeFrame f;
  f.node = NodeId(r.u32());
  if (!r.done()) return std::nullopt;
  return f;
}

std::optional<Frame> decode_interest_digest(ByteReader& r) {
  InterestDigestFrame f;
  f.node = NodeId(r.u32());
  const std::uint32_t n = r.u32();
  // Entry stride is 13 bytes; an impossible count fails the bounds checks
  // below anyway, but capping first avoids a pathological reserve.
  if (static_cast<std::size_t>(n) * 13 > r.remaining() + 13) return std::nullopt;
  f.entries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    InterestEntry e;
    e.keyword = msg::KeywordId(r.u32());
    e.weight = r.f64();
    e.direct = r.u8() != 0;
    f.entries.push_back(e);
  }
  if (!r.done()) return std::nullopt;
  return f;
}

std::optional<Frame> decode_rating_gossip(ByteReader& r) {
  RatingGossipFrame f;
  f.node = NodeId(r.u32());
  const std::uint32_t n = r.u32();
  if (static_cast<std::size_t>(n) * 12 > r.remaining() + 12) return std::nullopt;
  f.entries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    RatingEntry e;
    e.node = NodeId(r.u32());
    e.rating = r.f64();
    f.entries.push_back(e);
  }
  if (!r.done()) return std::nullopt;
  return f;
}

std::optional<msg::Priority> decode_priority(std::uint8_t level) {
  if (level < 1 || level > 3) return std::nullopt;
  return static_cast<msg::Priority>(level);
}

std::optional<TransferRole> decode_role(std::uint8_t v) {
  if (v > 1) return std::nullopt;
  return v == 0 ? TransferRole::kDestination : TransferRole::kRelay;
}

std::optional<Frame> decode_offer(ByteReader& r) {
  OfferFrame f;
  f.message = msg::MessageId(r.u32());
  f.source = NodeId(r.u32());
  f.created_at = util::SimTime::seconds(r.f64());
  f.size_bytes = r.u64();
  const auto priority = decode_priority(r.u8());
  f.quality = r.f64();
  const auto role = decode_role(r.u8());
  f.promise = r.f64();
  f.prepay = r.f64();
  if (!r.done() || !priority || !role) return std::nullopt;
  f.priority = *priority;
  f.role = *role;
  return f;
}

std::optional<Frame> decode_offer_reply(ByteReader& r) {
  OfferReplyFrame f;
  f.message = msg::MessageId(r.u32());
  const std::uint8_t decision = r.u8();
  if (!r.done() || decision > static_cast<std::uint8_t>(AcceptDecision::kRefused)) {
    return std::nullopt;
  }
  f.decision = static_cast<AcceptDecision>(decision);
  return f;
}

std::optional<Frame> decode_data(ByteReader& r) {
  DataFrame f;
  f.message = msg::MessageId(r.u32());
  f.chunk_index = r.u32();
  f.chunk_count = r.u32();
  const std::uint32_t len = r.u32();
  const auto payload = r.bytes(len);
  f.payload.assign(payload.begin(), payload.end());
  if (!r.done() || f.chunk_count == 0 || f.chunk_index >= f.chunk_count) return std::nullopt;
  return f;
}

std::optional<Frame> decode_receipt(ByteReader& r) {
  ReceiptFrame f;
  f.message = msg::MessageId(r.u32());
  const auto role = decode_role(r.u8());
  f.amount = r.f64();
  if (!r.done() || !role) return std::nullopt;
  f.role = *role;
  return f;
}

}  // namespace

FrameType frame_type(const Frame& f) {
  // The variant alternatives are declared in FrameType order, starting at 1.
  return static_cast<FrameType>(f.index() + 1);
}

std::size_t encode_frame(const Frame& f, std::vector<std::uint8_t>& out) {
  const std::size_t start = out.size();
  ByteWriter w(out);
  w.u16(kMagic);
  w.u8(kProtocolVersion);
  w.u8(static_cast<std::uint8_t>(frame_type(f)));
  const std::size_t length_at = w.mark();
  w.u32(0);  // payload length, patched below
  std::visit([&w](const auto& frame) { encode_payload(frame, w); }, f);
  const std::size_t payload_size = out.size() - length_at - 4;
  DTNIC_REQUIRE_MSG(payload_size <= kMaxFramePayload, "frame payload exceeds the wire cap");
  w.patch_u32(length_at, static_cast<std::uint32_t>(payload_size));
  return out.size() - start;
}

std::optional<DecodedFrame> decode_frame(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kHeaderSize) return std::nullopt;
  ByteReader header(bytes.data(), kHeaderSize);
  if (header.u16() != kMagic) return std::nullopt;
  if (header.u8() != kProtocolVersion) return std::nullopt;
  const std::uint8_t type = header.u8();
  const std::uint32_t length = header.u32();
  if (length > kMaxFramePayload) return std::nullopt;
  if (bytes.size() - kHeaderSize < length) return std::nullopt;

  ByteReader payload(bytes.data() + kHeaderSize, length);
  std::optional<Frame> frame;
  switch (static_cast<FrameType>(type)) {
    case FrameType::kHello: frame = decode_hello(payload); break;
    case FrameType::kBye: frame = decode_bye(payload); break;
    case FrameType::kInterestDigest: frame = decode_interest_digest(payload); break;
    case FrameType::kRatingGossip: frame = decode_rating_gossip(payload); break;
    case FrameType::kOffer: frame = decode_offer(payload); break;
    case FrameType::kOfferReply: frame = decode_offer_reply(payload); break;
    case FrameType::kData: frame = decode_data(payload); break;
    case FrameType::kReceipt: frame = decode_receipt(payload); break;
    default: return std::nullopt;
  }
  if (!frame) return std::nullopt;
  return DecodedFrame{std::move(*frame), kHeaderSize + length};
}

std::vector<std::uint8_t> encode_message(const msg::Message& m) {
  std::vector<std::uint8_t> out;
  ByteWriter w(out);
  w.u32(m.id().value());
  w.u32(m.source().value());
  w.f64(m.created_at().sec());
  w.u64(m.size_bytes());
  w.u8(static_cast<std::uint8_t>(msg::priority_level(m.priority())));
  w.f64(m.quality());
  w.f64(m.ttl().sec());
  w.u8(m.location().has_value() ? 1 : 0);
  if (m.location()) {
    w.f64(m.location()->latitude);
    w.f64(m.location()->longitude);
  }
  w.str(m.mime_type());
  w.str(m.format());
  w.u32(static_cast<std::uint32_t>(m.true_keywords().size()));
  for (msg::KeywordId k : m.true_keywords()) w.u32(k.value());
  w.u32(static_cast<std::uint32_t>(m.annotations().size()));
  for (const msg::Annotation& a : m.annotations()) {
    w.u32(a.keyword.value());
    w.u32(a.annotator.value());
    w.u8(a.truthful ? 1 : 0);
  }
  w.u32(static_cast<std::uint32_t>(m.path().size()));
  for (const msg::HopRecord& hop : m.path()) {
    w.u32(hop.node.value());
    w.f64(hop.received_at.sec());
  }
  w.u32(static_cast<std::uint32_t>(m.path_ratings().size()));
  for (const msg::PathRating& pr : m.path_ratings()) {
    w.u32(pr.rater.value());
    w.u32(pr.rated.value());
    w.f64(pr.rating);
  }
  return out;
}

std::optional<msg::Message> decode_message(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  const msg::MessageId id{r.u32()};
  const NodeId source{r.u32()};
  const util::SimTime created_at = util::SimTime::seconds(r.f64());
  const std::uint64_t size_bytes = r.u64();
  const auto priority = decode_priority(r.u8());
  const double quality = r.f64();
  const util::SimTime ttl = util::SimTime::seconds(r.f64());
  if (!r.ok() || !priority) return std::nullopt;

  msg::Message m(id, source, created_at, size_bytes, *priority, quality);
  m.set_ttl(ttl);
  if (r.u8() != 0) {
    msg::GeoTag tag;
    tag.latitude = r.f64();
    tag.longitude = r.f64();
    m.set_location(tag);
  }
  m.set_mime_type(r.str());
  m.set_format(r.str());

  const std::uint32_t n_truth = r.u32();
  if (static_cast<std::size_t>(n_truth) * 4 > r.remaining() + 4) return std::nullopt;
  std::vector<msg::KeywordId> truth;
  truth.reserve(n_truth);
  for (std::uint32_t i = 0; i < n_truth; ++i) truth.push_back(msg::KeywordId(r.u32()));
  m.set_true_keywords(std::move(truth));

  const std::uint32_t n_annotations = r.u32();
  if (static_cast<std::size_t>(n_annotations) * 9 > r.remaining() + 9) return std::nullopt;
  for (std::uint32_t i = 0; i < n_annotations; ++i) {
    msg::Annotation a;
    a.keyword = msg::KeywordId(r.u32());
    a.annotator = NodeId(r.u32());
    a.truthful = r.u8() != 0;
    m.annotate(a);
  }

  const std::uint32_t n_hops = r.u32();
  if (static_cast<std::size_t>(n_hops) * 12 > r.remaining() + 12) return std::nullopt;
  // The Message constructor seeds the path with the origin hop, so a valid
  // encoding always starts with {source, created_at}; verify instead of
  // re-appending it.
  if (n_hops == 0) return std::nullopt;
  for (std::uint32_t i = 0; i < n_hops; ++i) {
    const NodeId node{r.u32()};
    const util::SimTime at = util::SimTime::seconds(r.f64());
    if (i == 0) {
      if (node != source || at != created_at) return std::nullopt;
      continue;
    }
    m.record_hop(node, at);
  }

  const std::uint32_t n_ratings = r.u32();
  if (static_cast<std::size_t>(n_ratings) * 16 > r.remaining() + 16) return std::nullopt;
  for (std::uint32_t i = 0; i < n_ratings; ++i) {
    msg::PathRating pr;
    pr.rater = NodeId(r.u32());
    pr.rated = NodeId(r.u32());
    pr.rating = r.f64();
    m.add_path_rating(pr);
  }

  if (!r.done()) return std::nullopt;
  return m;
}

std::uint64_t keyword_pool_hash(const msg::KeywordTable& table) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  for (std::size_t i = 0; i < table.size(); ++i) {
    const std::string& name = table.name(msg::KeywordId(static_cast<std::uint32_t>(i)));
    for (const char c : name) {
      h = (h ^ static_cast<std::uint8_t>(c)) * kPrime;
    }
    h = (h ^ 0u) * kPrime;  // NUL separator: {"ab","c"} != {"a","bc"}
  }
  return h;
}

}  // namespace dtnic::wire
