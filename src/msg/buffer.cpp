#include "msg/buffer.h"

#include "util/assert.h"

namespace dtnic::msg {

namespace {
/// May \p victim be evicted to admit \p incoming under the priority policy?
/// A victim of strictly higher priority is protected; equal or lower
/// priority churns (quality only orders who goes first).
bool evictable_for(const Message& victim, const Message& incoming) {
  return priority_level(victim.priority()) >= priority_level(incoming.priority());
}
}  // namespace

MessageBuffer::MessageBuffer(std::uint64_t capacity_bytes, DropPolicy policy)
    : policy_(policy), capacity_bytes_(capacity_bytes) {
  DTNIC_REQUIRE_MSG(capacity_bytes > 0, "buffer capacity must be positive");
}

MessageBuffer::SlotList::iterator MessageBuffer::pick_victim() {
  // Own (originated) messages are spared while any relayed copy remains;
  // once only own messages are left they are evicted too (a node cannot
  // wedge itself by creating content).
  for (const bool allow_own : {false, true}) {
    if (policy_ == DropPolicy::kFifoOldest) {
      for (auto it = order_.begin(); it != order_.end(); ++it) {
        if (it->own == allow_own) return it;
      }
      continue;
    }
    // kLowPriorityFirst: worst (priority, quality) copy; order_ is
    // oldest-first, so ties fall to the oldest automatically.
    auto victim = order_.end();
    for (auto it = order_.begin(); it != order_.end(); ++it) {
      if (it->own != allow_own) continue;
      if (victim == order_.end()) {
        victim = it;
        continue;
      }
      const int it_priority = priority_level(it->message.priority());
      const int victim_priority = priority_level(victim->message.priority());
      if (it_priority > victim_priority ||
          (it_priority == victim_priority &&
           it->message.quality() < victim->message.quality())) {
        victim = it;
      }
    }
    if (victim != order_.end()) return victim;
  }
  return order_.end();
}

MessageBuffer::AddOutcome MessageBuffer::add(Message m, bool own) {
  AddOutcome outcome;
  if (contains(m.id())) {
    outcome.result = AddResult::kDuplicate;
    return outcome;
  }
  if (m.size_bytes() > capacity_bytes_) {
    outcome.result = AddResult::kTooLarge;
    return outcome;
  }
  // Evict non-own messages (per policy) until the new one fits.
  while (used_bytes_ + m.size_bytes() > capacity_bytes_) {
    auto it = pick_victim();
    if (it == order_.end()) break;
    if (policy_ == DropPolicy::kLowPriorityFirst && !own &&
        !evictable_for(it->message, m)) {
      // Every remaining candidate outranks the incoming relayed copy: keep
      // what we have.
      outcome.result = AddResult::kNotAdmitted;
      return outcome;
    }
    used_bytes_ -= it->message.size_bytes();
    index_.erase(it->message.id());
    outcome.evicted.push_back(std::move(it->message));
    order_.erase(it);
    ++revision_;
  }
  if (used_bytes_ + m.size_bytes() > capacity_bytes_) {
    // Own messages fill the buffer; cannot admit. Put nothing back — the
    // evictions already performed stand (mirrors ONE, which frees before
    // checking admissibility).
    outcome.result = AddResult::kTooLarge;
    return outcome;
  }
  used_bytes_ += m.size_bytes();
  const MessageId id = m.id();
  order_.push_back(Slot{std::move(m), own});
  index_.emplace(id, std::prev(order_.end()));
  outcome.result = AddResult::kAdded;
  ++revision_;
  return outcome;
}

bool MessageBuffer::would_admit(const Message& m, bool own) const {
  if (contains(m.id())) return false;
  if (m.size_bytes() > capacity_bytes_) return false;
  std::uint64_t freeable = free_bytes();
  if (freeable >= m.size_bytes()) return true;
  // Under FIFO (or for an own creation) every slot is ultimately evictable,
  // and the message fits within capacity, so it is always admitted.
  if (policy_ == DropPolicy::kFifoOldest || own) return true;
  // Priority policy: add() evicts worst-first among non-own slots and stops
  // at the first victim that outranks the incoming copy; own slots become
  // candidates only once no non-own slot remains. Evictability is monotone
  // in priority level, so the evictable set is exactly the slots at equal or
  // lower priority.
  std::uint64_t non_own_evictable = 0;
  std::uint64_t own_evictable = 0;
  bool any_non_own_protected = false;
  for (const Slot& slot : order_) {
    const bool evictable = evictable_for(slot.message, m);
    if (!slot.own) {
      if (evictable) {
        non_own_evictable += slot.message.size_bytes();
      } else {
        any_non_own_protected = true;
      }
    } else if (evictable) {
      own_evictable += slot.message.size_bytes();
    }
  }
  if (freeable + non_own_evictable >= m.size_bytes()) return true;
  if (any_non_own_protected) return false;  // add() refuses before touching own slots
  return freeable + non_own_evictable + own_evictable >= m.size_bytes();
}

bool MessageBuffer::contains(MessageId id) const { return index_.count(id) > 0; }

const Message* MessageBuffer::find(MessageId id) const {
  auto it = index_.find(id);
  return it != index_.end() ? &it->second->message : nullptr;
}

Message* MessageBuffer::find_mutable(MessageId id) {
  auto it = index_.find(id);
  return it != index_.end() ? &it->second->message : nullptr;
}

bool MessageBuffer::remove(MessageId id) {
  auto it = index_.find(id);
  if (it == index_.end()) return false;
  used_bytes_ -= it->second->message.size_bytes();
  order_.erase(it->second);
  index_.erase(it);
  ++revision_;
  return true;
}

std::vector<Message> MessageBuffer::drop_expired(SimTime now) {
  std::vector<Message> dropped;
  for (auto it = order_.begin(); it != order_.end();) {
    if (it->message.expired(now)) {
      used_bytes_ -= it->message.size_bytes();
      index_.erase(it->message.id());
      dropped.push_back(std::move(it->message));
      it = order_.erase(it);
      ++revision_;
    } else {
      ++it;
    }
  }
  return dropped;
}

std::vector<const Message*> MessageBuffer::messages() const {
  std::vector<const Message*> out;
  out.reserve(order_.size());
  for (const Slot& slot : order_) out.push_back(&slot.message);
  return out;
}

}  // namespace dtnic::msg
