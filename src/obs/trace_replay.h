#pragma once

#include <cstdint>
#include <istream>
#include <string>

#include "routing/events.h"

/// \file trace_replay.h
/// Re-fires the events of a `dtnic.trace.v1` JSONL stream into any
/// RoutingEvents sink. Message-bearing callbacks receive minimally
/// reconstructed messages carrying exactly the traced fields (id, priority,
/// size, quality, hop count, delivery latency); fields the trace does not
/// carry are defaulted. Feeding a stats::MetricsCollector therefore
/// reproduces the live run's counters bit-exactly — including the double
/// latency/token sums, because the trace's to_chars round-trip formatting
/// restores each addend's exact bits and replay preserves event order —
/// provided the trace was written with sample_every == 1 and the full event
/// mask.

namespace dtnic::obs {

struct TraceReplayStats {
  std::string schema;
  std::uint64_t seed = 0;
  std::uint64_t events = 0;  ///< event records replayed (header excluded)
};

/// Throws std::runtime_error on a malformed header, record, or an unknown
/// event type (v1 is strict: the schema tag is the compatibility contract).
TraceReplayStats replay_trace(std::istream& in, routing::RoutingEvents& sink);

}  // namespace dtnic::obs
