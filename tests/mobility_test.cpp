#include <gtest/gtest.h>

#include "mobility/random_walk.h"
#include "mobility/random_waypoint.h"
#include "mobility/stationary.h"
#include "mobility/waypoint_trace.h"
#include "util/rng.h"

namespace dtnic::mobility {
namespace {

using util::SimTime;
using util::Vec2;

// --- Stationary ------------------------------------------------------------

TEST(Stationary, NeverMoves) {
  Stationary m({10, 20});
  EXPECT_EQ(m.position_at(SimTime::zero()), (Vec2{10, 20}));
  EXPECT_EQ(m.position_at(SimTime::hours(5)), (Vec2{10, 20}));
  EXPECT_DOUBLE_EQ(m.max_speed(), 0.0);
}

TEST(Stationary, MoveToTeleports) {
  Stationary m({0, 0});
  m.move_to({5, 5});
  EXPECT_EQ(m.position_at(SimTime::seconds(1)), (Vec2{5, 5}));
}

// --- WaypointTrace ------------------------------------------------------------

TEST(WaypointTrace, InterpolatesBetweenKeyframes) {
  WaypointTrace trace({{SimTime::seconds(0), {0, 0}}, {SimTime::seconds(10), {100, 0}}});
  EXPECT_EQ(trace.position_at(SimTime::seconds(5)), (Vec2{50, 0}));
  EXPECT_EQ(trace.position_at(SimTime::seconds(2.5)), (Vec2{25, 0}));
}

TEST(WaypointTrace, ClampsOutsideRange) {
  WaypointTrace trace({{SimTime::seconds(5), {1, 1}}, {SimTime::seconds(10), {2, 2}}});
  EXPECT_EQ(trace.position_at(SimTime::zero()), (Vec2{1, 1}));
  EXPECT_EQ(trace.position_at(SimTime::seconds(100)), (Vec2{2, 2}));
}

TEST(WaypointTrace, MaxSpeedFromSteepestSegment) {
  WaypointTrace trace({{SimTime::seconds(0), {0, 0}},
                       {SimTime::seconds(10), {10, 0}},    // 1 m/s
                       {SimTime::seconds(20), {110, 0}}});  // 10 m/s
  EXPECT_DOUBLE_EQ(trace.max_speed(), 10.0);
}

TEST(WaypointTrace, RejectsNonIncreasingTimes) {
  EXPECT_THROW(WaypointTrace({{SimTime::seconds(5), {0, 0}}, {SimTime::seconds(5), {1, 1}}}),
               std::invalid_argument);
  EXPECT_THROW(WaypointTrace({}), std::invalid_argument);
}

TEST(WaypointTrace, MultiSegmentMonotoneQueries) {
  WaypointTrace trace({{SimTime::seconds(0), {0, 0}},
                       {SimTime::seconds(10), {10, 0}},
                       {SimTime::seconds(20), {10, 10}}});
  EXPECT_EQ(trace.position_at(SimTime::seconds(5)), (Vec2{5, 0}));
  EXPECT_EQ(trace.position_at(SimTime::seconds(15)), (Vec2{10, 5}));
  EXPECT_EQ(trace.position_at(SimTime::seconds(15)), (Vec2{10, 5}));  // repeat ok
}

// --- RandomWaypoint -------------------------------------------------------------

class RandomWaypointTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomWaypointTest, StaysInArea) {
  RandomWaypointParams params;
  params.area = {500, 300};
  RandomWaypoint m(params, util::Rng(GetParam()));
  for (int i = 0; i <= 2000; ++i) {
    const Vec2 p = m.position_at(SimTime::seconds(i * 7.3));
    EXPECT_TRUE(params.area.contains(p)) << "at step " << i << ": " << p;
  }
}

TEST_P(RandomWaypointTest, SpeedNeverExceedsMax) {
  RandomWaypointParams params;
  params.area = {1000, 1000};
  params.min_speed_mps = 0.5;
  params.max_speed_mps = 1.5;
  RandomWaypoint m(params, util::Rng(GetParam()));
  Vec2 prev = m.position_at(SimTime::zero());
  const double dt = 1.0;
  for (int i = 1; i < 3000; ++i) {
    const Vec2 cur = m.position_at(SimTime::seconds(i * dt));
    const double speed = util::distance(prev, cur) / dt;
    EXPECT_LE(speed, params.max_speed_mps * 1.0001);
    prev = cur;
  }
}

TEST_P(RandomWaypointTest, ActuallyMoves) {
  RandomWaypointParams params;
  params.area = {1000, 1000};
  params.max_pause_s = 0.0;
  RandomWaypoint m(params, util::Rng(GetParam()));
  const Vec2 start = m.position_at(SimTime::zero());
  const Vec2 later = m.position_at(SimTime::hours(1));
  EXPECT_GT(util::distance(start, later), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWaypointTest,
                         ::testing::Values(1, 2, 3, 17, 99, 12345));

TEST(RandomWaypoint, DeterministicForSameSeed) {
  RandomWaypointParams params;
  RandomWaypoint a(params, util::Rng(7));
  RandomWaypoint b(params, util::Rng(7));
  for (int i = 0; i < 500; ++i) {
    const auto t = SimTime::seconds(i * 3.0);
    EXPECT_EQ(a.position_at(t), b.position_at(t));
  }
}

TEST(RandomWaypoint, SameTimeRepeatQueryStable) {
  RandomWaypoint m(RandomWaypointParams{}, util::Rng(5));
  const auto t = SimTime::seconds(1234.5);
  EXPECT_EQ(m.position_at(t), m.position_at(t));
}

TEST(RandomWaypoint, RejectsBadParams) {
  RandomWaypointParams bad;
  bad.min_speed_mps = 0.0;
  EXPECT_THROW(RandomWaypoint(bad, util::Rng(1)), std::invalid_argument);
  bad = {};
  bad.max_speed_mps = 0.1;  // < min
  EXPECT_THROW(RandomWaypoint(bad, util::Rng(1)), std::invalid_argument);
  bad = {};
  bad.area.width = 0.0;
  EXPECT_THROW(RandomWaypoint(bad, util::Rng(1)), std::invalid_argument);
}

// --- RandomWalk --------------------------------------------------------------------

class RandomWalkTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomWalkTest, StaysInArea) {
  RandomWalkParams params;
  params.area = {400, 400};
  RandomWalk m(params, util::Rng(GetParam()));
  for (int i = 0; i <= 2000; ++i) {
    const Vec2 p = m.position_at(SimTime::seconds(i * 5.0));
    EXPECT_TRUE(params.area.contains(p));
  }
}

TEST_P(RandomWalkTest, StepsAreBounded) {
  RandomWalkParams params;
  params.area = {10000, 10000};
  params.step_distance_m = 50.0;
  params.max_pause_s = 0.0;
  RandomWalk m(params, util::Rng(GetParam()));
  // Walk legs are at most step_distance long, so displacement between pause
  // endpoints is bounded; just verify the speed bound holds.
  Vec2 prev = m.position_at(SimTime::zero());
  for (int i = 1; i < 1000; ++i) {
    const Vec2 cur = m.position_at(SimTime::seconds(i * 1.0));
    EXPECT_LE(util::distance(prev, cur), params.max_speed_mps * 1.0001);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWalkTest, ::testing::Values(4, 8, 15, 16));

// --- Area -------------------------------------------------------------------------

TEST(Area, ContainsAndClamp) {
  Area area{100, 50};
  EXPECT_TRUE(area.contains({0, 0}));
  EXPECT_TRUE(area.contains({100, 50}));
  EXPECT_FALSE(area.contains({100.1, 0}));
  EXPECT_FALSE(area.contains({-0.1, 0}));
  EXPECT_EQ(area.clamp({150, -10}), (Vec2{100, 0}));
}

}  // namespace
}  // namespace dtnic::mobility
