#include "mobility/waypoint_trace.h"

#include "util/assert.h"

namespace dtnic::mobility {

WaypointTrace::WaypointTrace(std::vector<Keyframe> keyframes)
    : keyframes_(std::move(keyframes)) {
  DTNIC_REQUIRE_MSG(!keyframes_.empty(), "trace needs at least one keyframe");
  for (std::size_t i = 1; i < keyframes_.size(); ++i) {
    DTNIC_REQUIRE_MSG(keyframes_[i].time > keyframes_[i - 1].time,
                      "keyframe times must be strictly increasing");
    const double dt = (keyframes_[i].time - keyframes_[i - 1].time).sec();
    const double dist = util::distance(keyframes_[i].position, keyframes_[i - 1].position);
    max_speed_ = std::max(max_speed_, dist / dt);
  }
}

util::Vec2 WaypointTrace::position_at(util::SimTime t) {
  if (t <= keyframes_.front().time) return keyframes_.front().position;
  if (t >= keyframes_.back().time) return keyframes_.back().position;
  // Queries are non-decreasing; resume the scan from the cached segment, but
  // rewind if a repeated query landed earlier (same-time re-queries).
  if (cursor_ > 0 && keyframes_[cursor_].time > t) cursor_ = 0;
  while (keyframes_[cursor_ + 1].time < t) ++cursor_;
  const Keyframe& a = keyframes_[cursor_];
  const Keyframe& b = keyframes_[cursor_ + 1];
  const double frac = (t - a.time) / (b.time - a.time);
  return util::lerp(a.position, b.position, frac);
}

}  // namespace dtnic::mobility
