/// Reproduces Figure 5.5: MDR vs number of users in a FIXED area (the paper
/// holds 5 km² and grows the population 500 -> 1500). Density rises with the
/// user count. Paper shape: both schemes' MDR grows with density, and the
/// gap between Incentive and ChitChat narrows, almost vanishing at 3x users
/// (more alternative paths per message).

#include <cmath>
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace dtnic;
  util::Cli cli;
  const bench::BenchScale scale = bench::resolve_scale(cli, argc, argv, argv[0]);
  bench::print_header("Figure 5.5: MDR vs number of users (fixed area)", scale);

  const scenario::SweepRunner sweep(scale.seeds);
  scenario::ScenarioConfig base = bench::base_config(scale);
  if (!scale.paper) {
    // Tripling the population in a fixed area is quadratically expensive;
    // start from a smaller world so the 3x point stays tractable.
    base.num_nodes = std::max<std::size_t>(40, scale.nodes / 2);
    base.sim_hours = std::min(3.0, scale.hours);
    base.messages_per_node_per_hour = 0.25;
    // Keep the 1x point at Table 5.1 density (100 nodes per km²).
    base.area_side_m = std::sqrt(static_cast<double>(base.num_nodes) /
                                 (500.0 / (2236.0 * 2236.0)));
  }

  std::vector<scenario::ScenarioConfig> points;
  for (const double mult : {1.0, 2.0, 3.0}) {  // paper: 500, 1000, 1500
    scenario::ScenarioConfig cfg = base;
    cfg.num_nodes = static_cast<std::size_t>(static_cast<double>(base.num_nodes) * mult);
    // area stays fixed at the base scale: density grows, as in the paper.
    cfg.scheme = scenario::Scheme::kIncentive;
    points.push_back(cfg);
    cfg.scheme = scenario::Scheme::kChitChat;
    points.push_back(cfg);
  }
  const auto results = sweep.run_all(points);

  util::Table table({"users", "MDR incentive", "MDR chitchat", "gap"});
  for (std::size_t i = 0; i < points.size(); i += 2) {
    const auto& incentive = results[i];
    const auto& chitchat = results[i + 1];
    table.add_row({std::to_string(points[i].num_nodes),
                   util::Table::cell(incentive.mdr.mean(), 3),
                   util::Table::cell(chitchat.mdr.mean(), 3),
                   util::Table::cell(chitchat.mdr.mean() - incentive.mdr.mean(), 3)});
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: MDR rises with density for both schemes; the\n"
               "chitchat-minus-incentive gap shrinks toward zero.\n";
  return 0;
}
