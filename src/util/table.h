#pragma once

#include <ostream>
#include <string>
#include <vector>

/// \file table.h
/// Plain-text result tables. Every benchmark binary prints its figure/table
/// as an aligned text table (human-readable) and can additionally emit CSV
/// for plotting; both renderings share one Table instance.

namespace dtnic::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with fixed precision, integers plainly.
  [[nodiscard]] static std::string cell(double value, int precision = 4);
  [[nodiscard]] static std::string cell(std::size_t value);
  [[nodiscard]] static std::string cell(long long value);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Write as an aligned, pipe-separated table.
  void print(std::ostream& os) const;

  /// Write as RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dtnic::util
