#pragma once

#include <iosfwd>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/contact_source.h"
#include "net/contact_trace.h"
#include "sim/simulator.h"
#include "util/sim_time.h"

/// \file scripted_contacts.h
/// Trace-driven connectivity: replays a list of (up, down, a, b) contact
/// events instead of detecting contacts from mobility. This is how recorded
/// real-world traces (Haggle, MIT Reality, ...) — or traces captured from a
/// previous dtnic run — drive an experiment. The participation gate applies
/// per replayed encounter exactly as it does for detected ones.

namespace dtnic::net {

/// One scripted contact: the pair is connected during [up, down).
struct ContactEvent {
  util::SimTime up;
  util::SimTime down;
  util::NodeId a;
  util::NodeId b;
  double distance_m = 50.0;  ///< reported at link-up (Friis input)
};

class ScriptedConnectivity final : public ContactSource {
 public:
  /// Events may be in any order; validated on construction (up < down,
  /// distinct valid endpoints). Overlapping events for the same pair are
  /// merged at replay (the pair stays up until the last down).
  ScriptedConnectivity(sim::Simulator& sim, std::vector<ContactEvent> events);

  void on_link_up(LinkUpFn fn) override { link_up_ = std::move(fn); }
  void on_link_down(LinkDownFn fn) override { link_down_ = std::move(fn); }
  void set_participation_gate(ParticipationGate gate) override { gate_ = std::move(gate); }

  void start() override;

  [[nodiscard]] std::vector<util::NodeId> neighbors_of(util::NodeId id) const override;
  [[nodiscard]] std::vector<std::pair<util::NodeId, util::NodeId>> connected_pairs()
      const override;
  [[nodiscard]] std::uint64_t contacts_formed() const override { return contacts_formed_; }
  [[nodiscard]] std::uint64_t contacts_suppressed() const override {
    return contacts_suppressed_;
  }

  /// Largest node id referenced by the script (invalid id if empty).
  [[nodiscard]] util::NodeId max_node() const { return max_node_; }
  [[nodiscard]] std::size_t event_count() const { return events_.size(); }

  /// --- trace text format ---------------------------------------------------
  /// One event per line: `up_s down_s node_a node_b [distance_m]`,
  /// `#` comments. parse() throws std::invalid_argument with a line number
  /// on malformed input.
  [[nodiscard]] static std::vector<ContactEvent> parse(std::istream& in);
  [[nodiscard]] static std::vector<ContactEvent> load_file(const std::string& path);
  static void serialize(std::ostream& os, const std::vector<ContactEvent>& events);
  /// Convert a recorded ContactTrace into replayable events.
  [[nodiscard]] static std::vector<ContactEvent> from_trace(const ContactTrace& trace);

 private:
  void begin_contact(std::size_t index);
  void end_contact(std::size_t index);
  static std::uint64_t pair_key(util::NodeId a, util::NodeId b);

  sim::Simulator& sim_;
  std::vector<ContactEvent> events_;
  util::NodeId max_node_;

  LinkUpFn link_up_;
  LinkDownFn link_down_;
  ParticipationGate gate_;

  /// Reference counts per pair (overlapping scripted events merge).
  std::unordered_map<std::uint64_t, int> up_count_;
  std::unordered_set<std::uint64_t> suppressed_;
  std::unordered_map<util::NodeId, std::unordered_set<util::NodeId>> adjacency_;
  std::uint64_t contacts_formed_ = 0;
  std::uint64_t contacts_suppressed_ = 0;
  bool started_ = false;
};

}  // namespace dtnic::net
