#pragma once

#include <vector>

#include "mobility/mobility_model.h"
#include "util/rng.h"

/// \file hotspot.h
/// Points-of-interest mobility: like Random Waypoint, but most waypoints are
/// drawn near shared hotspots (base camp, aid station, market...), producing
/// the clustered contact patterns of real deployments — many short
/// encounters at hubs, long droughts elsewhere. Used by ablation scenarios
/// to check the incentive scheme's robustness to non-uniform mixing.

namespace dtnic::mobility {

struct HotspotParams {
  Area area;
  /// Attraction points; must not be empty.
  std::vector<util::Vec2> hotspots;
  /// Waypoints near a hotspot are uniform within this radius (clamped to
  /// the area).
  double hotspot_radius_m = 150.0;
  /// Probability a new waypoint targets a hotspot (else uniform in area).
  double hotspot_probability = 0.8;
  double min_speed_mps = 0.5;
  double max_speed_mps = 1.5;
  double min_pause_s = 0.0;
  double max_pause_s = 120.0;
};

class HotspotMobility final : public MobilityModel {
 public:
  HotspotMobility(const HotspotParams& params, util::Rng rng);

  [[nodiscard]] util::Vec2 position_at(util::SimTime t) override;
  [[nodiscard]] double max_speed() const override { return params_.max_speed_mps; }

  /// Generate \p count uniformly placed hotspots for an area (scenario
  /// setup; one shared set for all nodes).
  [[nodiscard]] static std::vector<util::Vec2> generate_hotspots(const Area& area,
                                                                 std::size_t count,
                                                                 util::Rng& rng);

 private:
  void advance_leg();
  [[nodiscard]] util::Vec2 next_waypoint();

  HotspotParams params_;
  util::Rng rng_;
  util::Vec2 from_;
  util::Vec2 to_;
  double leg_start_s_ = 0.0;
  double arrive_s_ = 0.0;
  double pause_until_s_ = 0.0;
};

}  // namespace dtnic::mobility
