#include <gtest/gtest.h>

#include "util/logging.h"

namespace dtnic::util {
namespace {

/// The logger is process-global; save and restore around each test.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = log_level(); }
  void TearDown() override { set_log_level(saved_); }
  LogLevel saved_ = LogLevel::kWarn;
};

TEST_F(LoggingTest, ParseKnownLevels) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
}

TEST_F(LoggingTest, UnknownLevelDefaultsToWarn) {
  EXPECT_EQ(parse_log_level("verbose"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level(""), LogLevel::kWarn);
}

TEST_F(LoggingTest, SetAndGetRoundTrip) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST_F(LoggingTest, MacroCompilesAndFilters) {
  set_log_level(LogLevel::kOff);
  int evaluations = 0;
  // The stream expression must not be evaluated when filtered out.
  DTNIC_INFO("test") << "side effect " << ++evaluations;
  EXPECT_EQ(evaluations, 0);
  set_log_level(LogLevel::kTrace);
  DTNIC_ERROR("test") << "visible " << ++evaluations;
  EXPECT_EQ(evaluations, 1);
}

}  // namespace
}  // namespace dtnic::util
