#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

/// \file assert.h
/// Precondition / invariant checking macros used across dtnic.
///
/// DTNIC_REQUIRE checks an interface precondition and throws
/// std::invalid_argument on failure; it is always enabled because a violated
/// precondition in a simulation silently corrupts every downstream result.
/// DTNIC_ASSERT checks an internal invariant and aborts; it compiles away in
/// NDEBUG builds except where the cost is trivial.

namespace dtnic::util {

[[noreturn]] inline void require_failed(const char* expr, const char* file, int line,
                                        const std::string& what) {
  throw std::invalid_argument(std::string(file) + ":" + std::to_string(line) +
                              ": requirement failed: " + expr +
                              (what.empty() ? "" : " (" + what + ")"));
}

[[noreturn]] inline void assert_failed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "%s:%d: assertion failed: %s\n", file, line, expr);
  std::abort();
}

}  // namespace dtnic::util

#define DTNIC_REQUIRE(expr)                                              \
  do {                                                                   \
    if (!(expr)) ::dtnic::util::require_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define DTNIC_REQUIRE_MSG(expr, msg)                                      \
  do {                                                                    \
    if (!(expr)) ::dtnic::util::require_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

#define DTNIC_ASSERT(expr)                                               \
  do {                                                                   \
    if (!(expr)) ::dtnic::util::assert_failed(#expr, __FILE__, __LINE__); \
  } while (false)
