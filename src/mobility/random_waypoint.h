#pragma once

#include "mobility/mobility_model.h"
#include "util/rng.h"

/// \file random_waypoint.h
/// Random Waypoint mobility (the model used by the paper's evaluation,
/// Table 5.1): pick a uniform destination in the area, walk to it at a
/// uniform random speed, pause, repeat.

namespace dtnic::mobility {

struct RandomWaypointParams {
  Area area;
  double min_speed_mps = 0.5;   ///< pedestrian range, ONE defaults
  double max_speed_mps = 1.5;
  double min_pause_s = 0.0;
  double max_pause_s = 120.0;
};

class RandomWaypoint final : public MobilityModel {
 public:
  /// \p rng is this node's private movement stream (fork of the scenario
  /// seed), so mobility is independent of all other random decisions.
  RandomWaypoint(const RandomWaypointParams& params, util::Rng rng);

  [[nodiscard]] util::Vec2 position_at(util::SimTime t) override;
  [[nodiscard]] double max_speed() const override { return params_.max_speed_mps; }

  /// Exposed for tests: where the current movement leg ends.
  [[nodiscard]] util::Vec2 current_target() const { return to_; }

 private:
  void advance_leg();

  RandomWaypointParams params_;
  util::Rng rng_;
  util::Vec2 from_;
  util::Vec2 to_;
  double leg_start_s_ = 0.0;   ///< time movement on the current leg begins
  double arrive_s_ = 0.0;      ///< time the node reaches to_
  double pause_until_s_ = 0.0; ///< end of the pause at to_
};

}  // namespace dtnic::mobility
