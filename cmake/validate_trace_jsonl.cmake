# Validates a JSONL event trace written by obs::TraceSink (--trace-out).
# Run in script mode:
#
#   cmake -DJSONL_FILE=<path> [-DMIN_EVENTS=<n>] -P cmake/validate_trace_jsonl.cmake
#
# Checks that the first line is a dtnic.trace.v1 header carrying seed and
# sample_every, and that every subsequent line is a standalone JSON object
# with a numeric "t" and an "ev" tag drawn from the documented event set.
# Used by the obs-smoke ctests so CI catches a malformed or truncated trace,
# not just a crashing writer.

cmake_policy(SET CMP0057 NEW)  # IN_LIST in script mode

if(NOT DEFINED JSONL_FILE)
  message(FATAL_ERROR "pass -DJSONL_FILE=<path to trace jsonl>")
endif()
if(NOT EXISTS "${JSONL_FILE}")
  message(FATAL_ERROR "trace file not found: ${JSONL_FILE}")
endif()
if(NOT DEFINED MIN_EVENTS)
  set(MIN_EVENTS 1)
endif()

set(_known_events
    created transfer relayed delivered refused aborted dropped
    tokens reputation enriched)

file(STRINGS "${JSONL_FILE}" _lines)
list(LENGTH _lines _n)
if(_n LESS 1)
  message(FATAL_ERROR "trace file is empty: ${JSONL_FILE}")
endif()

list(GET _lines 0 _header)
string(JSON _schema ERROR_VARIABLE _err GET "${_header}" schema)
if(_err)
  message(FATAL_ERROR "header line missing 'schema': ${_err}")
endif()
if(NOT _schema STREQUAL "dtnic.trace.v1")
  message(FATAL_ERROR "unexpected trace schema '${_schema}' (want 'dtnic.trace.v1')")
endif()
foreach(_key seed sample_every)
  string(JSON _val ERROR_VARIABLE _err GET "${_header}" ${_key})
  if(_err)
    message(FATAL_ERROR "header line missing '${_key}': ${_err}")
  endif()
endforeach()

set(_events 0)
math(EXPR _last "${_n} - 1")
if(_last GREATER_EQUAL 1)
  foreach(_i RANGE 1 ${_last})
    list(GET _lines ${_i} _line)
    if(_line STREQUAL "")
      continue()
    endif()
    string(JSON _ev ERROR_VARIABLE _err GET "${_line}" ev)
    if(_err)
      message(FATAL_ERROR "record ${_i} missing 'ev': ${_err}\nline: ${_line}")
    endif()
    if(NOT _ev IN_LIST _known_events)
      message(FATAL_ERROR "record ${_i} has unknown event type '${_ev}'")
    endif()
    string(JSON _t ERROR_VARIABLE _err GET "${_line}" t)
    if(_err)
      message(FATAL_ERROR "record ${_i} missing 't': ${_err}\nline: ${_line}")
    endif()
    if(_t LESS 0)
      message(FATAL_ERROR "record ${_i} has negative timestamp ${_t}")
    endif()
    math(EXPR _events "${_events} + 1")
  endforeach()
endif()

if(_events LESS ${MIN_EVENTS})
  message(FATAL_ERROR
    "expected at least ${MIN_EVENTS} event records, got ${_events}")
endif()

message(STATUS "${JSONL_FILE}: schema '${_schema}' ok, ${_events} event records")
