#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace dtnic::util {

namespace {

// Atomic: scenario runs log from thread-pool workers while tests may flip
// the level on the main thread.
std::atomic<LogLevel> g_level = [] {
  if (const char* env = std::getenv("DTNIC_LOG")) {
    return parse_log_level(env);
  }
  return LogLevel::kWarn;
}();

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel parse_log_level(const std::string& name) {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return LogLevel::kWarn;
}

namespace detail {

void log_write(LogLevel level, const char* component, const std::string& message) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  std::fprintf(stderr, "[%s] %s: %s\n", level_name(level), component, message.c_str());
}

}  // namespace detail

}  // namespace dtnic::util
