#include "scenario/experiment.h"

#include <algorithm>
#include <future>

#include "scenario/scenario.h"
#include "util/assert.h"
#include "util/thread_pool.h"

namespace dtnic::scenario {

namespace {

/// Submit one job per seed (seed = base, base+1, ...) for \p config. The
/// factory is shared read-only across jobs; each job invokes it on its own
/// worker thread to build a run-private observer.
std::vector<std::future<RunResult>> submit_seeds(util::ThreadPool& pool,
                                                 const ScenarioConfig& config,
                                                 std::size_t seeds,
                                                 std::uint64_t base_seed,
                                                 const ObserverFactory& factory = {}) {
  std::vector<std::future<RunResult>> futures;
  futures.reserve(seeds);
  for (std::size_t i = 0; i < seeds; ++i) {
    ScenarioConfig seeded = config;
    seeded.seed = base_seed + i;
    futures.push_back(pool.submit([seeded = std::move(seeded), factory] {
      return ExperimentRunner::run_once(seeded, factory);
    }));
  }
  return futures;
}

std::vector<RunResult> collect(std::vector<std::future<RunResult>>& futures) {
  std::vector<RunResult> runs;
  runs.reserve(futures.size());
  for (auto& f : futures) runs.push_back(f.get());  // rethrows task exceptions
  return runs;
}

}  // namespace

ExperimentRunner::ExperimentRunner(std::size_t seeds, std::uint64_t base_seed)
    : seeds_(seeds), base_seed_(base_seed) {
  DTNIC_REQUIRE_MSG(seeds >= 1, "need at least one seed");
}

RunResult ExperimentRunner::run_once(ScenarioConfig config, const ObserverFactory& factory) {
  Scenario scenario(config);
  std::unique_ptr<RunObserver> observer;
  if (factory) observer = factory(scenario, config.seed);
  RunResult result = scenario.run();
  if (observer) observer->on_finish(scenario, result);
  // The observer (and any sinks it registered) dies before the Scenario.
  observer.reset();
  return result;
}

AggregateResult ExperimentRunner::aggregate(std::string scheme, std::vector<RunResult> runs) {
  AggregateResult agg;
  agg.scheme = std::move(scheme);
  for (RunResult& r : runs) {
    agg.mdr.add(r.mdr);
    agg.traffic.add(static_cast<double>(r.traffic));
    agg.created.add(static_cast<double>(r.created));
    agg.delivered.add(static_cast<double>(r.delivered));
    agg.mdr_high.add(r.mdr_high);
    agg.mdr_medium.add(r.mdr_medium);
    agg.mdr_low.add(r.mdr_low);
    agg.avg_final_tokens.add(r.avg_final_tokens);
    agg.refused_no_tokens.add(static_cast<double>(r.refused_no_tokens));
    agg.refused_untrusted.add(static_cast<double>(r.refused_untrusted));
    agg.mean_latency_s.add(r.mean_latency_s);
    agg.mean_hops.add(r.mean_hops);
    constexpr double kMs = 1e-6;
    agg.scan_ms.add(static_cast<double>(r.timing.scan_ns) * kMs);
    agg.routing_ms.add(static_cast<double>(r.timing.routing_ns) * kMs);
    agg.routing_pre_ms.add(static_cast<double>(r.timing.routing_pre_ns) * kMs);
    agg.routing_plan_ms.add(static_cast<double>(r.timing.routing_plan_ns) * kMs);
    agg.routing_commit_ms.add(static_cast<double>(r.timing.routing_commit_ns) * kMs);
    agg.transfer_ms.add(static_cast<double>(r.timing.transfer_ns) * kMs);
    agg.workload_ms.add(static_cast<double>(r.timing.workload_ns) * kMs);
    agg.wall_ms.add(static_cast<double>(r.timing.wall_ns) * kMs);
    agg.raw.push_back(std::move(r));
    ++agg.runs;
  }
  return agg;
}

AggregateResult ExperimentRunner::run(ScenarioConfig config,
                                      const ObserverFactory& factory) const {
  auto futures = submit_seeds(util::ThreadPool::shared(), config, seeds_, base_seed_, factory);
  std::vector<RunResult> runs = collect(futures);
  return aggregate(scheme_name(config.scheme), std::move(runs));
}

AggregateResult ExperimentRunner::run_serial(ScenarioConfig config,
                                             const ObserverFactory& factory) const {
  std::vector<RunResult> runs;
  runs.reserve(seeds_);
  for (std::size_t i = 0; i < seeds_; ++i) {
    config.seed = base_seed_ + i;
    runs.push_back(run_once(config, factory));
  }
  return aggregate(scheme_name(config.scheme), std::move(runs));
}

std::vector<std::pair<double, double>> ExperimentRunner::mean_series(
    const std::vector<RunResult>& runs) {
  std::vector<std::pair<double, double>> out;
  if (runs.empty()) return out;
  // Union grid: a run with a staggered (or empty) sample schedule still has
  // its times represented, and contributes its step value everywhere else.
  std::vector<util::SimTime> grid;
  for (const RunResult& r : runs) {
    for (const stats::Sample& s : r.malicious_rating.samples()) grid.push_back(s.time);
  }
  std::sort(grid.begin(), grid.end());
  grid.erase(std::unique(grid.begin(), grid.end()), grid.end());
  out.reserve(grid.size());
  for (const util::SimTime t : grid) {
    double sum = 0.0;
    for (const RunResult& r : runs) {
      sum += r.malicious_rating.value_at(t);
    }
    out.emplace_back(t.sec(), sum / static_cast<double>(runs.size()));
  }
  return out;
}

SweepRunner::SweepRunner(std::size_t seeds, std::uint64_t base_seed)
    : seeds_(seeds), base_seed_(base_seed) {
  DTNIC_REQUIRE_MSG(seeds >= 1, "need at least one seed");
}

std::vector<AggregateResult> SweepRunner::run_all(
    const std::vector<ScenarioConfig>& points) const {
  util::ThreadPool& pool = util::ThreadPool::shared();
  // One flat batch of points x seeds jobs keeps every worker busy across
  // sweep-point boundaries (sweep points rarely divide the worker count).
  std::vector<std::future<RunResult>> futures;
  futures.reserve(points.size() * seeds_);
  for (const ScenarioConfig& point : points) {
    auto batch = submit_seeds(pool, point, seeds_, base_seed_);
    for (auto& f : batch) futures.push_back(std::move(f));
  }
  std::vector<AggregateResult> out;
  out.reserve(points.size());
  std::size_t next = 0;
  for (const ScenarioConfig& point : points) {
    std::vector<RunResult> runs;
    runs.reserve(seeds_);
    for (std::size_t i = 0; i < seeds_; ++i) runs.push_back(futures[next++].get());
    out.push_back(ExperimentRunner::aggregate(scheme_name(point.scheme), std::move(runs)));
  }
  return out;
}

}  // namespace dtnic::scenario
