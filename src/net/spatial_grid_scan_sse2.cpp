#include "net/spatial_grid.h"

/// \file spatial_grid_scan_sse2.cpp
/// SSE2 distance kernel (baseline x86-64): four 2-lane vectors cover the
/// same 8 candidate lanes per iteration as the AVX2 kernel, accumulating the
/// identical 8-bit hit masks into the per-point hit word. Compiled with
/// -ffp-contract=off; arithmetic is lane-for-lane the scalar IEEE sequence.

#ifdef DTNIC_SIMD_X86

#include <emmintrin.h>

#include <algorithm>
#include <cmath>

#include "net/spatial_grid_scan_decode.h"

namespace dtnic::net {

void SpatialGrid::scan_kernel_sse2(const ScanView& view, double r2, std::uint32_t shard,
                                   std::uint32_t shard_count, std::vector<Pair>& out) {
  using scan_detail::kIntraMask;
  const __m128d vr2 = _mm_set1_pd(r2);
  // Emission staging — see the AVX2 kernel: bulk flushes replace per-pair
  // push_back bookkeeping.
  constexpr std::uint32_t kStage = 128;
  Pair staged[kStage];
  std::uint32_t staged_n = 0;
  const auto flush = [&staged, &staged_n, &out] {
    out.insert(out.end(), staged, staged + staged_n);
    staged_n = 0;
  };
  for (std::size_t c = 0; c < view.pool_size; ++c) {
    const std::uint32_t n = view.counts[c];
    if (n == 0) continue;
    const ScanBlock& cell = view.blocks[c];
    const CellLinks& links = view.links[c];
    if (shard_count != 0 && shard_of_cell(links.cx, shard_count) != shard) continue;
    // Branchless compacted segment gather — see the AVX2 kernel for the
    // rationale (predicated write cursor, all-dead padding for odd counts).
    const ScanBlock* segs[6];
    std::uint32_t seg_cell[6];  // pool index per segment, for the id lookup
    segs[0] = &cell;
    seg_cell[0] = static_cast<std::uint32_t>(c);
    bool fallback = n > kInline;
    int m = 1;
    for (int k = 0; k < 4; ++k) {
      const std::int32_t h = links.half[k];
      const auto idx = static_cast<std::uint32_t>(h >= 0 ? h : 0);
      fallback |= (h >= 0) & (view.counts[idx] > kInline);
      segs[m] = &view.blocks[idx];
      seg_cell[m] = idx;
      m += static_cast<int>(h >= 0);
    }
    segs[m] = &kEmptyBlock;
    seg_cell[m] = 0;  // never read: dead lanes cannot hit
    if (fallback) {
      scan_cell_scalar(view, static_cast<std::uint32_t>(c), r2, out);
      continue;
    }
    // Each segment is two 2-lane halves; [s].x[0..1], [s].x[2..3].
    __m128d vx[6][2];
    __m128d vy[6][2];
    const int padded = (m + 1) & ~1;
    for (int s = 0; s < padded; ++s) {
      vx[s][0] = _mm_load_pd(segs[s]->x);
      vx[s][1] = _mm_load_pd(segs[s]->x + 2);
      vy[s][0] = _mm_load_pd(segs[s]->y);
      vy[s][1] = _mm_load_pd(segs[s]->y + 2);
    }
    for (std::uint32_t i = 0; i < n; ++i) {
      const double xi_s = cell.x[i];
      const double yi_s = cell.y[i];
      const __m128d xi = _mm_set1_pd(xi_s);
      const __m128d yi = _mm_set1_pd(yi_s);
      // Per-point accumulated hit word + scalar d² recompute on hit — see
      // the AVX2 kernel for the rationale.
      std::uint32_t pm = 0;
      for (int s = 0, g = 0; s < m; s += 2, ++g) {
        std::uint32_t mask = 0;
        for (int h = 0; h < 4; ++h) {  // four 2-lane halves = 8 candidates
          const int seg = s + (h >> 1);
          const int part = h & 1;
          const __m128d dx = _mm_sub_pd(xi, vx[seg][part]);
          const __m128d dy = _mm_sub_pd(yi, vy[seg][part]);
          const __m128d d2 = _mm_add_pd(_mm_mul_pd(dx, dx), _mm_mul_pd(dy, dy));
          mask |= static_cast<std::uint32_t>(_mm_movemask_pd(_mm_cmple_pd(d2, vr2)))
                  << (2 * h);
        }
        if (s == 0) mask &= kIntraMask[i] | 0xf0u;
        pm |= mask << (8 * g);
      }
      if (pm == 0) continue;
      const std::uint32_t ida = view.ids[c * kInline + i];
      if (staged_n + 24 > kStage) flush();  // a point adds ≤ 24 pairs
      do {
        const int lane = __builtin_ctz(pm);
        pm &= pm - 1;
        const int seg = lane >> 2;
        const int sub = lane & 3;
        const ScanBlock* sb = segs[seg];
        const double dx = xi_s - sb->x[sub];
        const double dy = yi_s - sb->y[sub];
        const double d2 = dx * dx + dy * dy;
        const std::uint32_t idb = view.ids[seg_cell[seg] * kInline + sub];
        const util::NodeId a{std::min(ida, idb)};
        const util::NodeId b{std::max(ida, idb)};
        staged[staged_n++] = Pair{a, b, d2};
      } while (pm != 0);
    }
  }
  flush();
  // Pairs leave the kernel carrying d²; sort_pairs applies the (scalar) √
  // during its scatter pass, one code path for every variant.
}

}  // namespace dtnic::net

#endif  // DTNIC_SIMD_X86
