#include <gtest/gtest.h>

#include "stats/metrics.h"
#include "stats/time_series.h"
#include "test_helpers.h"

namespace dtnic::stats {
namespace {

using routing::NodeId;
using util::SimTime;

msg::Message make(util::MessageId id, msg::Priority p = msg::Priority::kMedium) {
  return msg::Message(id, NodeId(0), SimTime::zero(), 1024, p, 0.8);
}

TEST(MetricsCollector, MdrCountsUniqueDeliveries) {
  MetricsCollector m;
  const auto a = make(util::MessageId(1));
  const auto b = make(util::MessageId(2));
  m.on_created(a);
  m.on_created(b);
  m.on_delivered(NodeId(0), NodeId(1), a);
  m.on_delivered(NodeId(0), NodeId(2), a);  // second destination, same message
  EXPECT_EQ(m.created(), 2u);
  EXPECT_EQ(m.delivered_unique(), 1u);
  EXPECT_EQ(m.deliveries_total(), 2u);
  EXPECT_DOUBLE_EQ(m.mdr(), 0.5);
}

TEST(MetricsCollector, EmptyMdrIsZero) {
  MetricsCollector m;
  EXPECT_DOUBLE_EQ(m.mdr(), 0.0);
  EXPECT_DOUBLE_EQ(m.mdr_for(msg::Priority::kHigh), 0.0);
}

TEST(MetricsCollector, PriorityBuckets) {
  MetricsCollector m;
  const auto high = make(util::MessageId(1), msg::Priority::kHigh);
  const auto low1 = make(util::MessageId(2), msg::Priority::kLow);
  const auto low2 = make(util::MessageId(3), msg::Priority::kLow);
  m.on_created(high);
  m.on_created(low1);
  m.on_created(low2);
  m.on_delivered(NodeId(0), NodeId(1), high);
  m.on_delivered(NodeId(0), NodeId(1), low1);
  EXPECT_DOUBLE_EQ(m.mdr_for(msg::Priority::kHigh), 1.0);
  EXPECT_DOUBLE_EQ(m.mdr_for(msg::Priority::kLow), 0.5);
  EXPECT_EQ(m.created_for(msg::Priority::kLow), 2u);
  EXPECT_EQ(m.delivered_for(msg::Priority::kLow), 1u);
  EXPECT_EQ(m.created_for(msg::Priority::kMedium), 0u);
}

TEST(MetricsCollector, TrafficCountsTransferStarts) {
  MetricsCollector m;
  const auto a = make(util::MessageId(1));
  m.on_transfer_started(NodeId(0), NodeId(1), a, routing::TransferRole::kRelay);
  m.on_transfer_started(NodeId(1), NodeId(2), a, routing::TransferRole::kDestination);
  m.on_relayed(NodeId(0), NodeId(1), a);
  EXPECT_EQ(m.traffic(), 2u);
  EXPECT_EQ(m.relay_arrivals(), 1u);
}

TEST(MetricsCollector, RefusalBuckets) {
  MetricsCollector m;
  const auto a = make(util::MessageId(1));
  m.on_refused(NodeId(0), NodeId(1), a, routing::AcceptDecision::kNoTokens);
  m.on_refused(NodeId(0), NodeId(1), a, routing::AcceptDecision::kUntrustedSender);
  m.on_refused(NodeId(0), NodeId(1), a, routing::AcceptDecision::kDuplicate);
  m.on_refused(NodeId(0), NodeId(1), a, routing::AcceptDecision::kRefused);
  EXPECT_EQ(m.refused_no_tokens(), 1u);
  EXPECT_EQ(m.refused_untrusted(), 1u);
  EXPECT_EQ(m.refused_duplicates(), 1u);
}

TEST(MetricsCollector, DropsAndAborts) {
  MetricsCollector m;
  const auto a = make(util::MessageId(1));
  m.on_dropped(NodeId(0), a, routing::DropReason::kBufferFull);
  m.on_dropped(NodeId(0), a, routing::DropReason::kTtlExpired);
  m.on_aborted(NodeId(0), NodeId(1), a.id());
  EXPECT_EQ(m.dropped_buffer(), 1u);
  EXPECT_EQ(m.dropped_ttl(), 1u);
  EXPECT_EQ(m.aborted(), 1u);
}

TEST(MetricsCollector, PaymentsAggregate) {
  MetricsCollector m;
  m.on_tokens_paid(NodeId(0), NodeId(1), 2.5);
  m.on_tokens_paid(NodeId(2), NodeId(1), 1.5);
  EXPECT_DOUBLE_EQ(m.tokens_paid_total(), 4.0);
  EXPECT_EQ(m.payments(), 2u);
}

TEST(MetricsCollector, HopsAndLatencyOverFirstDeliveries) {
  MetricsCollector m;
  auto a = make(util::MessageId(1));
  a.record_hop(NodeId(1), SimTime::seconds(100));
  a.record_hop(NodeId(2), SimTime::seconds(300));
  m.on_created(a);
  m.on_delivered(NodeId(1), NodeId(2), a);
  EXPECT_DOUBLE_EQ(m.mean_delivery_hops(), 2.0);
  EXPECT_DOUBLE_EQ(m.mean_delivery_latency_s(), 300.0);
  // Duplicate delivery of the same message does not skew the means.
  auto dup = a;
  dup.record_hop(NodeId(3), SimTime::seconds(5000));
  m.on_delivered(NodeId(2), NodeId(3), dup);
  EXPECT_DOUBLE_EQ(m.mean_delivery_latency_s(), 300.0);
}

// --- TimeSeries --------------------------------------------------------------------

TEST(TimeSeries, AppendsAndReads) {
  TimeSeries ts;
  EXPECT_TRUE(ts.empty());
  ts.add(SimTime::seconds(0), 1.0);
  ts.add(SimTime::seconds(10), 2.0);
  ts.add(SimTime::seconds(20), 3.0);
  EXPECT_EQ(ts.size(), 3u);
  EXPECT_DOUBLE_EQ(ts.first_value(), 1.0);
  EXPECT_DOUBLE_EQ(ts.last_value(), 3.0);
}

TEST(TimeSeries, ValueAtStepFunction) {
  TimeSeries ts;
  ts.add(SimTime::seconds(10), 1.0);
  ts.add(SimTime::seconds(20), 2.0);
  // Before the first sample the series sits at its initial value (0 by
  // default) — NOT at the first observed sample.
  EXPECT_DOUBLE_EQ(ts.value_at(SimTime::seconds(5)), 0.0);
  EXPECT_DOUBLE_EQ(ts.value_at(SimTime::seconds(10)), 1.0);
  EXPECT_DOUBLE_EQ(ts.value_at(SimTime::seconds(15)), 1.0);
  EXPECT_DOUBLE_EQ(ts.value_at(SimTime::seconds(20)), 2.0);
  EXPECT_DOUBLE_EQ(ts.value_at(SimTime::seconds(99)), 2.0);
}

TEST(TimeSeries, ValueAtBeforeFirstSampleUsesInitialValue) {
  // Fig. 5.4 semantics: malicious ratings start at the rating-scale prior
  // (3.5), so pre-sample queries must report the prior, not the first
  // observation.
  TimeSeries ts(3.5);
  EXPECT_DOUBLE_EQ(ts.initial_value(), 3.5);
  ts.add(SimTime::seconds(100), 2.0);
  EXPECT_DOUBLE_EQ(ts.value_at(SimTime::seconds(0)), 3.5);
  EXPECT_DOUBLE_EQ(ts.value_at(SimTime::seconds(99)), 3.5);
  EXPECT_DOUBLE_EQ(ts.value_at(SimTime::seconds(100)), 2.0);

  TimeSeries configured;
  configured.set_initial_value(1.25);
  configured.add(SimTime::seconds(10), 7.0);
  EXPECT_DOUBLE_EQ(configured.value_at(SimTime::seconds(9)), 1.25);
}

TEST(TimeSeries, EmptyValueAtIsInitialValue) {
  TimeSeries ts;
  EXPECT_DOUBLE_EQ(ts.value_at(SimTime::seconds(5)), 0.0);
  EXPECT_DOUBLE_EQ(ts.last_value(), 0.0);

  TimeSeries with_prior(4.0);
  EXPECT_DOUBLE_EQ(with_prior.value_at(SimTime::seconds(5)), 4.0);
  EXPECT_DOUBLE_EQ(with_prior.last_value(), 4.0);
  EXPECT_DOUBLE_EQ(with_prior.first_value(), 4.0);
}

}  // namespace
}  // namespace dtnic::stats
