#include "net/connectivity.h"

#include <algorithm>

#include "util/assert.h"
#include "util/timing.h"

namespace dtnic::net {

ConnectivityManager::ConnectivityManager(sim::Simulator& sim, const RadioParams& radio,
                                         util::SimTime scan_interval, std::size_t shard_threads)
    : sim_(sim),
      radio_(radio),
      scan_interval_(scan_interval),
      grid_(radio.range_m),
      shards_(shard_threads == 0 ? 1 : shard_threads) {
  DTNIC_REQUIRE(radio.range_m > 0.0);
  DTNIC_REQUIRE(scan_interval > util::SimTime::zero());
  DTNIC_REQUIRE_MSG(shards_ <= 256, "shard_threads out of range");
  shard_scratch_.resize(shards_);
  if (shards_ > 1) shard_pool_ = std::make_unique<util::ThreadPool>(shards_ - 1);
}

void ConnectivityManager::add_node(NodeId id, mobility::MobilityModel* mobility) {
  DTNIC_REQUIRE(id.valid());
  DTNIC_REQUIRE_MSG(mobility != nullptr, "mobility model required");
  DTNIC_REQUIRE_MSG(!node_index_.count(id), "node already registered");
  node_index_.emplace(id, nodes_.size());
  nodes_.push_back(NodeEntry{id, mobility});
}

std::uint64_t ConnectivityManager::pair_key(NodeId a, NodeId b) {
  const auto lo = std::min(a.value(), b.value());
  const auto hi = std::max(a.value(), b.value());
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

void ConnectivityManager::start() {
  DTNIC_REQUIRE_MSG(!scan_task_.valid(), "already started");
  scan_task_ = sim_.schedule_every_from(sim_.now(), scan_interval_, [this] { scan(); });
}

void ConnectivityManager::stop() {
  if (scan_task_.valid()) {
    sim_.cancel(scan_task_);
    scan_task_ = {};
  }
}

void ConnectivityManager::scan() {
  const util::ScopedTimer timer(scan_ns_);
  ++scans_;
  const util::SimTime now = sim_.now();

  refresh_positions(now);
  collect_pairs();  // scan_pairs_ sorted by (lo, hi)

  // One linear merge of the previous and current sorted pair lists replaces
  // the per-scan hash-set diff. Fresh encounters fire link_up immediately
  // (in sorted order); vanished pairs are collected and torn down after, so
  // the up-then-down phase structure of a scan is preserved.
  next_pairs_.clear();
  downs_.clear();
  auto prev = pairs_.cbegin();
  const auto prev_end = pairs_.cend();
  for (const SpatialGrid::Pair& p : scan_pairs_) {
    const std::uint64_t key = pair_key(p.a, p.b);
    while (prev != prev_end && prev->key < key) {
      if (prev->state == PairState::kConnected) downs_.push_back(prev->key);
      ++prev;
    }
    if (prev != prev_end && prev->key == key) {  // already connected or suppressed
      next_pairs_.push_back(*prev);
      ++prev;
      continue;
    }
    // Fresh encounter: each endpoint decides whether its radio participates.
    const bool participates = !gate_ || (gate_(p.a) && gate_(p.b));
    if (!participates) {
      next_pairs_.push_back(PairRec{key, PairState::kSuppressed});
      ++contacts_suppressed_;
      continue;
    }
    next_pairs_.push_back(PairRec{key, PairState::kConnected});
    add_adjacency(p.a, p.b);
    add_adjacency(p.b, p.a);
    ++links_;
    ++contacts_formed_;
    if (link_up_) link_up_(p.a, p.b, p.distance_m);
  }
  while (prev != prev_end) {
    if (prev->state == PairState::kConnected) downs_.push_back(prev->key);
    ++prev;
  }
  pairs_.swap(next_pairs_);

  // Tear down pairs that moved out of range (suppressed pairs vanish
  // silently, as before). downs_ inherits the sorted key order.
  for (const std::uint64_t key : downs_) {
    const NodeId a(static_cast<util::NodeId::underlying>(key >> 32));
    const NodeId b(static_cast<util::NodeId::underlying>(key & 0xffffffffULL));
    drop_adjacency(a, b);
    drop_adjacency(b, a);
    --links_;
    if (link_down_) link_down_(a, b);
  }
}

void ConnectivityManager::refresh_positions(util::SimTime now) {
  // Refresh positions: one mobility query per node, cached for the rest of
  // the tick; the grid moves only nodes whose cell changed. Nodes added
  // since the last scan get their grid slot on first sight.
  positions_.resize(nodes_.size());
  const std::size_t tracked = grid_slots_.size();  // nodes already in the grid
  if (shards_ == 1 || tracked < 2 * shards_) {
    for (std::size_t i = 0; i < tracked; ++i) {
      const util::Vec2 p = nodes_[i].mobility->position_at(now);
      positions_[i] = p;
      grid_.update_slot(grid_slots_[i], p);
    }
  } else {
    // Stage in parallel over contiguous node ranges: mobility models are
    // per-node state machines and stage_position writes only positions_[i],
    // so shards touch disjoint memory. Cell-pool mutations are deferred.
    shard_pool_->co_run(shards_, [this, now, tracked](std::size_t shard) {
      ShardScratch& scratch = shard_scratch_[shard];
      scratch.crossers.clear();
      const std::size_t begin = tracked * shard / shards_;
      const std::size_t end = tracked * (shard + 1) / shards_;
      for (std::size_t i = begin; i < end; ++i) {
        const util::Vec2 p = nodes_[i].mobility->position_at(now);
        positions_[i] = p;
        if (grid_.stage_position(grid_slots_[i], p)) scratch.crossers.push_back(i);
      }
    });
    // Commit serially in ascending node order: shards own contiguous ranges
    // and record crossers in order, so this replays the exact pool-mutation
    // sequence of the serial loop — grid layout stays bit-identical.
    for (const ShardScratch& scratch : shard_scratch_) {
      for (const std::size_t i : scratch.crossers) grid_.commit_move(grid_slots_[i]);
    }
  }
  for (std::size_t i = tracked; i < nodes_.size(); ++i) {
    const util::Vec2 p = nodes_[i].mobility->position_at(now);
    positions_[i] = p;
    grid_slots_.push_back(grid_.insert(nodes_[i].id, p));
  }
  positions_time_ = now;
  positions_cached_ = true;
}

void ConnectivityManager::collect_pairs() {
  if (shards_ == 1 || grid_.size() < 2 * shards_) {
    grid_.pairs_within(radio_.range_m, scan_pairs_);
    return;
  }
  shard_pool_->co_run(shards_, [this](std::size_t shard) {
    ShardScratch& scratch = shard_scratch_[shard];
    grid_.pairs_within_shard(radio_.range_m, static_cast<std::uint32_t>(shard),
                             static_cast<std::uint32_t>(shards_), scratch.pairs, scratch.sort);
  });
  merge_shard_pairs();
}

void ConnectivityManager::merge_shard_pairs() {
  // K-way merge of the sorted per-shard lists. Cell ownership partitions the
  // pair set, so keys never collide across shards and the merge output is
  // exactly the globally sorted list grid_.pairs_within would emit.
  scan_pairs_.clear();
  std::size_t total = 0;
  for (ShardScratch& scratch : shard_scratch_) {
    scratch.cursor = 0;
    total += scratch.pairs.size();
  }
  scan_pairs_.reserve(total);
  for (;;) {
    std::size_t best = shards_;
    std::uint64_t best_key = 0;
    for (std::size_t s = 0; s < shards_; ++s) {
      const ShardScratch& scratch = shard_scratch_[s];
      if (scratch.cursor >= scratch.pairs.size()) continue;
      const SpatialGrid::Pair& p = scratch.pairs[scratch.cursor];
      const std::uint64_t key = pair_key(p.a, p.b);
      if (best == shards_ || key < best_key) {
        best = s;
        best_key = key;
      }
    }
    if (best == shards_) break;
    scan_pairs_.push_back(shard_scratch_[best].pairs[shard_scratch_[best].cursor++]);
  }
}

void ConnectivityManager::add_adjacency(NodeId node, NodeId neighbor) {
  auto& list = adjacency_[node];
  list.insert(std::upper_bound(list.begin(), list.end(), neighbor), neighbor);
}

void ConnectivityManager::drop_adjacency(NodeId node, NodeId neighbor) {
  const auto it = adjacency_.find(node);
  if (it == adjacency_.end()) return;
  auto& list = it->second;
  const auto pos = std::lower_bound(list.begin(), list.end(), neighbor);
  if (pos != list.end() && *pos == neighbor) list.erase(pos);
  if (list.empty()) adjacency_.erase(it);
}

bool ConnectivityManager::connected(NodeId a, NodeId b) const {
  const auto it = adjacency_.find(a);
  if (it == adjacency_.end()) return false;
  return std::binary_search(it->second.begin(), it->second.end(), b);
}

std::vector<NodeId> ConnectivityManager::neighbors_of(NodeId id) const {
  const auto it = adjacency_.find(id);
  if (it == adjacency_.end()) return {};
  return it->second;  // maintained sorted; no per-call sort
}

std::vector<std::pair<NodeId, NodeId>> ConnectivityManager::connected_pairs() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(links_);
  // pairs_ is sorted by key == lexicographic (lo, hi) order.
  for (const PairRec& rec : pairs_) {
    if (rec.state != PairState::kConnected) continue;
    out.emplace_back(NodeId(static_cast<util::NodeId::underlying>(rec.key >> 32)),
                     NodeId(static_cast<util::NodeId::underlying>(rec.key & 0xffffffffULL)));
  }
  return out;
}

util::Vec2 ConnectivityManager::position_of(NodeId id) {
  const auto it = node_index_.find(id);
  DTNIC_REQUIRE_MSG(it != node_index_.end(), "unknown node");
  if (positions_cached_ && positions_time_ == sim_.now() && it->second < positions_.size()) {
    return positions_[it->second];
  }
  return nodes_[it->second].mobility->position_at(sim_.now());
}

}  // namespace dtnic::net
