#include <gtest/gtest.h>

#include <cmath>

#include "routing/nectar.h"
#include "routing/prophet.h"
#include "routing/two_hop.h"
#include "test_helpers.h"

namespace dtnic::routing {
namespace {

using test::MicroWorld;
using util::SimTime;

constexpr auto kT0 = SimTime::zero();

// --- ProphetRouter -------------------------------------------------------------

class ProphetFixture : public ::testing::Test {
 protected:
  ProphetFixture() : factory(w.keywords) {}

  Host& make_node(const std::vector<std::string>& interests) {
    Host& h = w.add_host();
    h.set_router(std::make_unique<ProphetRouter>(w.oracle, params));
    std::vector<msg::KeywordId> kws;
    for (const auto& name : interests) kws.push_back(w.keywords.intern(name));
    w.oracle.set_interests(h.id(), kws);
    return h;
  }

  MicroWorld w;
  test::MessageFactory factory;
  ProphetParams params;
};

TEST_F(ProphetFixture, MeetingSubscriberRaisesPredictability) {
  Host& a = make_node({});
  Host& subscriber = make_node({"flood"});
  auto* router = ProphetRouter::of(a);
  const auto flood = w.keywords.find("flood");
  EXPECT_DOUBLE_EQ(router->predictability(flood), 0.0);
  w.link_up(a, subscriber, kT0);
  EXPECT_DOUBLE_EQ(router->predictability(flood), params.p_init);
  // Meeting again pushes it closer to 1: the value ages by γ^(Δt/τ) first,
  // then P += (1-P)·P_init.
  w.link_up(a, subscriber, SimTime::seconds(10));
  const double aged = 0.75 * std::pow(0.98, 10.0 / 30.0);
  EXPECT_NEAR(router->predictability(flood), aged + (1.0 - aged) * 0.75, 1e-12);
}

TEST_F(ProphetFixture, PredictabilityAges) {
  Host& a = make_node({});
  Host& subscriber = make_node({"flood"});
  Host& nobody = make_node({});
  w.link_up(a, subscriber, kT0);
  auto* router = ProphetRouter::of(a);
  const auto flood = w.keywords.find("flood");
  const double fresh = router->predictability(flood);
  // A later contact triggers aging: γ^(Δt/τ) with γ=0.98, τ=30 s.
  w.link_up(a, nobody, SimTime::seconds(3000));
  EXPECT_LT(router->predictability(flood), fresh * 0.2);
}

TEST_F(ProphetFixture, TransitivityThroughPeer) {
  Host& a = make_node({});
  Host& b = make_node({});
  Host& subscriber = make_node({"flood"});
  w.link_up(b, subscriber, kT0);  // b learns the path
  w.link_up(a, b, SimTime::seconds(1));
  auto* router = ProphetRouter::of(a);
  const auto flood = w.keywords.find("flood");
  EXPECT_GT(router->predictability(flood), 0.0);
  EXPECT_LT(router->predictability(flood), ProphetRouter::of(b)->predictability(flood));
}

TEST_F(ProphetFixture, ForwardsOnlyTowardBetterCarriers) {
  Host& src = make_node({});
  Host& good = make_node({});
  Host& clueless = make_node({});
  Host& subscriber = make_node({"flood"});
  w.link_up(good, subscriber, kT0);

  auto m = factory.make(src.id(), {"flood"});
  const auto id = m.id();
  src.mark_seen(id);
  (void)src.buffer().add(std::move(m), true);

  w.link_up(src, clueless, SimTime::seconds(5));
  EXPECT_EQ(w.exchange(src, clueless, SimTime::seconds(5)), 0);  // P equal (0)
  w.link_up(src, good, SimTime::seconds(6));
  EXPECT_EQ(w.exchange(src, good, SimTime::seconds(6)), 1);
  EXPECT_TRUE(good.buffer().contains(id));
}

TEST_F(ProphetFixture, DeliversToSubscriberDirectly) {
  Host& src = make_node({});
  Host& subscriber = make_node({"flood"});
  auto m = factory.make(src.id(), {"flood"});
  src.mark_seen(m.id());
  (void)src.buffer().add(std::move(m), true);
  w.link_up(src, subscriber, kT0);
  EXPECT_EQ(w.exchange(src, subscriber, kT0), 1);
  ASSERT_EQ(w.events.deliveries.size(), 1u);
}

TEST_F(ProphetFixture, InvalidParamsRejected) {
  ProphetParams bad;
  bad.p_init = 0.0;
  MicroWorld w2;
  EXPECT_THROW(ProphetRouter(w2.oracle, bad), std::invalid_argument);
  bad = {};
  bad.gamma = 1.5;
  EXPECT_THROW(ProphetRouter(w2.oracle, bad), std::invalid_argument);
}

// --- NectarRouter --------------------------------------------------------------

class NectarFixture : public ::testing::Test {
 protected:
  NectarFixture() : factory(w.keywords) {}

  Host& make_node(const std::vector<std::string>& interests) {
    Host& h = w.add_host();
    h.set_router(std::make_unique<NectarRouter>(w.oracle, params));
    std::vector<msg::KeywordId> kws;
    for (const auto& name : interests) kws.push_back(w.keywords.intern(name));
    w.oracle.set_interests(h.id(), kws);
    return h;
  }

  MicroWorld w;
  test::MessageFactory factory;
  NectarParams params;
};

TEST_F(NectarFixture, MeetingFrequencyAccumulatesAndDecays) {
  Host& a = make_node({});
  Host& b = make_node({});
  auto* router = NectarRouter::of(a);
  EXPECT_DOUBLE_EQ(router->index_of(b.id(), kT0), 0.0);
  w.link_up(a, b, kT0);
  EXPECT_DOUBLE_EQ(router->index_of(b.id(), kT0), 1.0);
  w.link_up(a, b, SimTime::hours(1));
  // First meeting decayed by e^-0.1 over one hour, plus the new one.
  EXPECT_NEAR(router->index_of(b.id(), SimTime::hours(1)), 1.0 + std::exp(-0.1), 1e-9);
  // Long silence decays the index toward zero.
  EXPECT_LT(router->index_of(b.id(), SimTime::hours(200)), 1e-3);
}

TEST_F(NectarFixture, ForwardsToFrequentMeeters) {
  Host& src = make_node({});
  Host& courier = make_node({});
  Host& stranger = make_node({});
  Host& subscriber = make_node({"flood"});
  // The courier meets the subscriber often.
  for (int i = 0; i < 3; ++i) {
    w.link_up(courier, subscriber, SimTime::minutes(i * 10));
  }
  auto m = factory.make(src.id(), {"flood"});
  const auto id = m.id();
  src.mark_seen(id);
  (void)src.buffer().add(std::move(m), true);

  const auto t = SimTime::hours(1);
  w.link_up(src, stranger, t);
  EXPECT_EQ(w.exchange(src, stranger, t), 0);
  w.link_up(src, courier, t + SimTime::seconds(5));
  EXPECT_EQ(w.exchange(src, courier, t + SimTime::seconds(5)), 1);
  EXPECT_TRUE(courier.buffer().contains(id));
}

// --- TwoHopRouter ---------------------------------------------------------------

class TwoHopFixture : public ::testing::Test {
 protected:
  TwoHopFixture() : factory(w.keywords) {}

  Host& make_node(const std::vector<std::string>& interests) {
    Host& h = w.add_host();
    h.set_router(std::make_unique<TwoHopRouter>(w.oracle));
    std::vector<msg::KeywordId> kws;
    for (const auto& name : interests) kws.push_back(w.keywords.intern(name));
    w.oracle.set_interests(h.id(), kws);
    return h;
  }

  MicroWorld w;
  test::MessageFactory factory;
};

TEST_F(TwoHopFixture, SourceSpraysRelaysHold) {
  Host& src = make_node({});
  Host& relay = make_node({});
  Host& relay2 = make_node({});
  Host& dest = make_node({"flood"});

  auto m = factory.make(src.id(), {"flood"});
  const auto id = m.id();
  src.mark_seen(id);
  (void)src.buffer().add(std::move(m), true);

  // Source -> relay: sprayed.
  EXPECT_EQ(w.exchange(src, relay, kT0), 1);
  // Relay -> another relay: held (two-hop limit).
  EXPECT_EQ(w.exchange(relay, relay2, kT0), 0);
  // Relay -> destination: delivered.
  EXPECT_EQ(w.exchange(relay, dest, kT0), 1);
  ASSERT_EQ(w.events.deliveries.size(), 1u);
  EXPECT_EQ(w.events.deliveries[0].to, dest.id());
}

TEST_F(TwoHopFixture, SourceDeliversDirectlyToo) {
  Host& src = make_node({});
  Host& dest = make_node({"flood"});
  auto m = factory.make(src.id(), {"flood"});
  src.mark_seen(m.id());
  (void)src.buffer().add(std::move(m), true);
  EXPECT_EQ(w.exchange(src, dest, kT0), 1);
}

}  // namespace
}  // namespace dtnic::routing
