#include "routing/chitchat/interest_table.h"

#include <algorithm>

#include "util/assert.h"

namespace dtnic::routing::chitchat {

void InterestTable::add_direct(KeywordId k, SimTime now) {
  DTNIC_REQUIRE(k.valid());
  Slot& slot = slots_[k];
  slot.direct = true;
  slot.weight = std::max(slot.weight, params_.initial_weight);
  slot.last_seen_s = now.sec();
  ++generation_;
}

bool InterestTable::has_direct(KeywordId k) const {
  auto it = slots_.find(k);
  return it != slots_.end() && it->second.direct;
}

double InterestTable::weight(KeywordId k) const {
  auto it = slots_.find(k);
  return it != slots_.end() ? it->second.weight : 0.0;
}

double InterestTable::sum_weights(std::span<const KeywordId> keywords) const {
  double sum = 0.0;
  for (KeywordId k : keywords) sum += weight(k);
  return sum;
}

double InterestTable::mean_weight(std::span<const KeywordId> keywords) const {
  if (keywords.empty()) return 0.0;
  return sum_weights(keywords) / static_cast<double>(keywords.size());
}

template <class ConnectedHas>
void InterestTable::decay_impl(SimTime now, ConnectedHas&& connected_has) {
  bool changed = false;
  for (auto it = slots_.begin(); it != slots_.end();) {
    Slot& slot = it->second;
    if (connected_has(it->first)) {
      // A connected device shares I: the weight holds and T_l refreshes.
      slot.last_seen_s = now.sec();
      ++it;
      continue;
    }
    const double dt = now.sec() - slot.last_seen_s;
    // Divisor floored at 1 so decay never amplifies a weight (Algorithm 1
    // divides by β·(T_c − T_l), which would amplify for small gaps).
    const double divisor = std::max(1.0, params_.decay_beta * dt);
    const double before = slot.weight;
    if (slot.direct) {
      slot.weight = (slot.weight - 0.5) / divisor + 0.5;
    } else {
      slot.weight = slot.weight / divisor;
    }
    changed = changed || slot.weight != before;
    slot.last_seen_s = now.sec();  // decay applied up to `now`
    if (!slot.direct && slot.weight < params_.prune_epsilon) {
      it = slots_.erase(it);
      changed = true;
    } else {
      ++it;
    }
  }
  if (changed) ++generation_;
}

void InterestTable::decay(SimTime now, const std::function<bool(KeywordId)>& connected_has) {
  if (connected_has) {
    decay_impl(now, connected_has);
  } else {
    decay_impl(now, [](KeywordId) { return false; });
  }
}

void InterestTable::decay_against(SimTime now,
                                  std::span<const InterestTable* const> connected) {
  decay_impl(now, [connected](KeywordId k) {
    for (const InterestTable* table : connected) {
      if (table->has(k)) return true;
    }
    return false;
  });
}

int InterestTable::psi(bool self_has, bool self_direct, bool peer_direct) {
  if (self_has && self_direct) return peer_direct ? 1 : 2;
  if (self_has) return peer_direct ? 3 : 4;  // self transient
  return peer_direct ? 5 : 6;                // acquisition
}

void InterestTable::grow_from(const InterestTable& peer, SimTime now, double contact_quantum_s) {
  DTNIC_REQUIRE(contact_quantum_s >= 0.0);
  const double quantum = std::min(contact_quantum_s, params_.growth_contact_cap_s);
  bool changed = false;
  for (const auto& [keyword, peer_slot] : peer.slots_) {
    if (peer_slot.weight <= 0.0) continue;
    const auto it = slots_.find(keyword);
    const bool self_has = it != slots_.end();
    const bool self_direct = self_has && it->second.direct;
    const int divisor = psi(self_has, self_direct, peer_slot.direct);
    const double delta = params_.growth_rate * peer_slot.weight * quantum /
                         static_cast<double>(divisor);
    if (delta <= 0.0) continue;
    Slot& slot = slots_[keyword];  // inserts transient slot if absent
    const double before = slot.weight;
    slot.weight = std::min(params_.max_weight, slot.weight + delta);
    slot.last_seen_s = now.sec();
    changed = changed || !self_has || slot.weight != before;
  }
  if (changed) ++generation_;
}

void InterestTable::note_seen(KeywordId k, SimTime now) {
  auto it = slots_.find(k);
  if (it != slots_.end()) it->second.last_seen_s = now.sec();
}

void InterestTable::restore(KeywordId k, double weight, bool direct, SimTime now) {
  slots_[k] = Slot{weight, direct, now.sec()};
  ++generation_;
}

std::vector<InterestTable::Entry> InterestTable::entries() const {
  std::vector<Entry> out;
  out.reserve(slots_.size());
  for (const auto& [keyword, slot] : slots_) {
    out.push_back(Entry{keyword, slot.weight, slot.direct, SimTime::seconds(slot.last_seen_s)});
  }
  std::sort(out.begin(), out.end(),
            [](const Entry& a, const Entry& b) { return a.keyword < b.keyword; });
  return out;
}

}  // namespace dtnic::routing::chitchat
