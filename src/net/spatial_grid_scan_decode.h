#pragma once

#include <cstdint>

/// \file spatial_grid_scan_decode.h
/// Shared constants for the SIMD contact-scan kernels. A radius test over 8
/// candidate lanes produces one byte of hit bits; the kernels accumulate the
/// bytes into a per-point hit word and walk its set bits with ctz, so pair
/// emission is a short loop over exactly the hits with no per-lane branch.

namespace dtnic::net::scan_detail {

/// Intra-cell mask for entry i over the cell's own 4 lanes: keep only lanes
/// j > i, so each unordered in-cell pair is tested exactly once and the
/// self-pair never.
inline constexpr std::uint32_t kIntraMask[4] = {0xe, 0xc, 0x8, 0x0};

}  // namespace dtnic::net::scan_detail
