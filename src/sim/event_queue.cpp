#include "sim/event_queue.h"

#include "util/assert.h"

namespace dtnic::sim {

EventId EventQueue::push(util::SimTime t, EventFn fn) {
  DTNIC_REQUIRE_MSG(fn != nullptr, "event callback must not be null");
  const std::uint64_t seq = next_seq_++;
  const EventId id{seq};
  heap_.push(Entry{t, seq, id});
  callbacks_.emplace(seq, std::move(fn));
  return id;
}

void EventQueue::cancel(EventId id) {
  if (!id.valid()) return;
  if (callbacks_.erase(id.value) > 0) {
    cancelled_.insert(id.value);
  }
}

void EventQueue::drop_cancelled() {
  while (!heap_.empty() && cancelled_.count(heap_.top().seq) > 0) {
    cancelled_.erase(heap_.top().seq);
    heap_.pop();
  }
}

bool EventQueue::empty() const {
  return callbacks_.empty();
}

std::size_t EventQueue::size() const { return callbacks_.size(); }

util::SimTime EventQueue::next_time() {
  drop_cancelled();
  DTNIC_REQUIRE_MSG(!heap_.empty(), "next_time() on empty queue");
  return heap_.top().time;
}

EventQueue::Popped EventQueue::pop() {
  drop_cancelled();
  DTNIC_REQUIRE_MSG(!heap_.empty(), "pop() on empty queue");
  const Entry top = heap_.top();
  heap_.pop();
  auto it = callbacks_.find(top.seq);
  DTNIC_ASSERT(it != callbacks_.end());
  Popped out{top.time, std::move(it->second)};
  callbacks_.erase(it);
  return out;
}

}  // namespace dtnic::sim
