#pragma once

#include <cstdint>
#include <ostream>
#include <unordered_map>
#include <vector>

#include "routing/events.h"

/// \file node_stats.h
/// Per-node accounting of the incentive economy: the counters the paper's
/// analysis implies (tokens earned/spent, messages originated/relayed/
/// delivered, refusals by reason, reputation standing) but the run-wide
/// MetricsCollector aggregates away. Registered on the scenario's
/// EventFanout next to the metrics; exported as CSV or JSON.
///
/// Node indices come from event NodeIds; the table grows on first touch, so
/// the collector works for any contiguous id space without configuration.

namespace dtnic::obs {

class NodeStatsCollector final : public routing::RoutingEvents {
 public:
  struct NodeStats {
    std::uint64_t originated = 0;       ///< messages created at this node
    std::uint64_t relays_out = 0;       ///< relay copies handed to peers
    std::uint64_t relays_in = 0;        ///< relay copies accepted from peers
    std::uint64_t delivered_to = 0;     ///< copies received with direct interest
    std::uint64_t deliveries_made = 0;  ///< copies this node handed to a destination
    std::uint64_t refusals_no_tokens = 0;  ///< offers this node refused: cannot pay
    std::uint64_t refusals_untrusted = 0;  ///< refused: sender below trust threshold
    std::uint64_t refusals_duplicate = 0;
    std::uint64_t refusals_other = 0;
    std::uint64_t dropped = 0;  ///< buffered copies discarded here (full/TTL)
    std::uint64_t aborted = 0;  ///< transfers cut off while this node sent
    double tokens_earned = 0.0;
    double tokens_spent = 0.0;
    std::uint64_t payments_made = 0;
    std::uint64_t payments_received = 0;
    std::uint64_t enrich_tags = 0;  ///< keyword tags this node added en route
    /// Mean over raters of the latest first-hand rating each holds of this
    /// node; meaningful only when `rated` (CSV: empty cell, JSON: null).
    double reputation = 0.0;
    bool rated = false;
  };

  // --- RoutingEvents -------------------------------------------------------
  void on_created(const msg::Message& m) override;
  void on_relayed(routing::NodeId from, routing::NodeId to, const msg::Message& m) override;
  void on_delivered(routing::NodeId from, routing::NodeId to, const msg::Message& m) override;
  void on_refused(routing::NodeId from, routing::NodeId to, const msg::Message& m,
                  routing::AcceptDecision why) override;
  void on_aborted(routing::NodeId from, routing::NodeId to, routing::MessageId m) override;
  void on_dropped(routing::NodeId at, const msg::Message& m,
                  routing::DropReason why) override;
  void on_tokens_paid(routing::NodeId payer, routing::NodeId payee, double amount) override;
  void on_reputation_updated(routing::NodeId rater, routing::NodeId rated,
                             double rating) override;
  void on_enriched(routing::NodeId at, const msg::Message& m, int tags_added) override;

  // --- export ---------------------------------------------------------------
  [[nodiscard]] std::size_t node_count() const { return stats_.size(); }
  /// Counters for \p id; reputation fields are folded in before returning.
  [[nodiscard]] NodeStats of(routing::NodeId id) const;

  /// `node,originated,...` CSV, one row per node, to_chars formatting.
  void write_csv(std::ostream& os) const;
  /// `{"schema":"dtnic.node_stats.v1","nodes":[...]}` JSON document.
  void write_json(std::ostream& os) const;

 private:
  NodeStats& at(routing::NodeId id);
  void fold_reputation(std::vector<NodeStats>& stats) const;

  std::vector<NodeStats> stats_;
  /// Latest first-hand opinion per (rater << 32 | rated) pair, folded into
  /// per-node means at export time.
  std::unordered_map<std::uint64_t, double> opinions_;
};

}  // namespace dtnic::obs
