#pragma once

#include "util/sim_time.h"
#include "util/vec2.h"

/// \file mobility_model.h
/// Node movement. Models are *analytic*: they answer "where is the node at
/// time t" directly, generating movement legs lazily, so the simulator never
/// pays per-timestep position updates for idle nodes.

namespace dtnic::mobility {

/// Rectangular world the nodes move in, in metres. Origin at (0,0).
struct Area {
  double width = 1000.0;
  double height = 1000.0;

  [[nodiscard]] bool contains(util::Vec2 p) const {
    return p.x >= 0.0 && p.x <= width && p.y >= 0.0 && p.y <= height;
  }
  [[nodiscard]] util::Vec2 clamp(util::Vec2 p) const {
    return {std::min(std::max(p.x, 0.0), width), std::min(std::max(p.y, 0.0), height)};
  }
};

/// Interface for node movement.
///
/// position_at() must be called with non-decreasing times: stochastic models
/// generate their movement legs forward from a per-node random stream and do
/// not keep history. Repeated queries at the same time are fine.
class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  /// Node position at time \p t (non-decreasing across calls).
  [[nodiscard]] virtual util::Vec2 position_at(util::SimTime t) = 0;

  /// Upper bound on instantaneous speed (m/s); the connectivity scanner uses
  /// this to bound how far a node can drift between scans.
  [[nodiscard]] virtual double max_speed() const = 0;
};

}  // namespace dtnic::mobility
