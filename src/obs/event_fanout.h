#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "routing/events.h"

/// \file event_fanout.h
/// The observability hub: one RoutingEvents implementation that forwards
/// every callback to any number of registered sinks, in registration order.
/// A Scenario owns one fan-out and binds every Host to it at construction;
/// observers attach with add_sink (borrowed, scoped unregistration via the
/// returned SinkHandle) or add_owned_sink (the fan-out keeps the sink alive
/// for its own lifetime).
///
/// Dispatch is a plain loop over a small flat vector: with no sinks
/// registered an event costs one virtual call and an empty-range check, and
/// nothing is ever allocated per event. Registration is not thread-safe by
/// design — each simulation run owns its fan-out, so parallel
/// ExperimentRunner seeds never share one and need no locking.

namespace dtnic::obs {

namespace detail {
/// Registration state shared (via shared_ptr) between the fan-out and its
/// handles, so a SinkHandle outliving the fan-out degrades to a no-op
/// instead of dangling.
struct SinkRegistry {
  struct Entry {
    std::uint64_t id = 0;
    routing::RoutingEvents* sink = nullptr;
  };
  std::vector<Entry> entries;
  std::uint64_t next_id = 1;

  void remove(std::uint64_t id);
};
}  // namespace detail

/// Scoped registration: resetting (or destroying) the handle unregisters
/// the sink. Move-only; a default-constructed handle is inactive.
class SinkHandle {
 public:
  SinkHandle() = default;
  SinkHandle(SinkHandle&& other) noexcept
      : registry_(std::move(other.registry_)), id_(other.id_) {
    other.registry_.reset();
    other.id_ = 0;
  }
  SinkHandle& operator=(SinkHandle&& other) noexcept {
    if (this != &other) {
      reset();
      registry_ = std::move(other.registry_);
      id_ = other.id_;
      other.registry_.reset();
      other.id_ = 0;
    }
    return *this;
  }
  SinkHandle(const SinkHandle&) = delete;
  SinkHandle& operator=(const SinkHandle&) = delete;
  ~SinkHandle() { reset(); }

  /// Unregister now; idempotent, and safe after the fan-out is destroyed.
  void reset();

  /// True while the sink is still registered on a live fan-out.
  [[nodiscard]] bool active() const;

 private:
  friend class EventFanout;
  SinkHandle(std::weak_ptr<detail::SinkRegistry> registry, std::uint64_t id)
      : registry_(std::move(registry)), id_(id) {}

  std::weak_ptr<detail::SinkRegistry> registry_;
  std::uint64_t id_ = 0;
};

class EventFanout final : public routing::RoutingEvents {
 public:
  EventFanout() : registry_(std::make_shared<detail::SinkRegistry>()) {}
  EventFanout(const EventFanout&) = delete;
  EventFanout& operator=(const EventFanout&) = delete;

  /// Register a borrowed sink: it receives every event until the returned
  /// handle is reset/destroyed (or remove_sink is called). The caller keeps
  /// ownership and must keep the sink alive while registered.
  [[nodiscard]] SinkHandle add_sink(routing::RoutingEvents& sink);

  /// Transfer ownership of \p sink to the fan-out: it receives events until
  /// remove_sink or fan-out destruction. Returns the sink for optional later
  /// remove_sink.
  routing::RoutingEvents& add_owned_sink(std::unique_ptr<routing::RoutingEvents> sink);

  /// Unregister \p sink (borrowed or owned; an owned sink is destroyed).
  /// No-op if it is not registered.
  void remove_sink(const routing::RoutingEvents& sink);

  [[nodiscard]] bool empty() const { return registry_->entries.empty(); }
  [[nodiscard]] std::size_t size() const { return registry_->entries.size(); }

  // --- RoutingEvents: forward to every sink in registration order ----------
  void on_created(const msg::Message& m) override;
  void on_transfer_started(routing::NodeId from, routing::NodeId to, const msg::Message& m,
                           routing::TransferRole role) override;
  void on_relayed(routing::NodeId from, routing::NodeId to, const msg::Message& m) override;
  void on_delivered(routing::NodeId from, routing::NodeId to, const msg::Message& m) override;
  void on_refused(routing::NodeId from, routing::NodeId to, const msg::Message& m,
                  routing::AcceptDecision why) override;
  void on_aborted(routing::NodeId from, routing::NodeId to, routing::MessageId m) override;
  void on_dropped(routing::NodeId at, const msg::Message& m,
                  routing::DropReason why) override;
  void on_tokens_paid(routing::NodeId payer, routing::NodeId payee, double amount) override;
  void on_reputation_updated(routing::NodeId rater, routing::NodeId rated,
                             double rating) override;
  void on_enriched(routing::NodeId at, const msg::Message& m, int tags_added) override;

 private:
  std::shared_ptr<detail::SinkRegistry> registry_;
  std::vector<std::unique_ptr<routing::RoutingEvents>> owned_;
};

}  // namespace dtnic::obs
