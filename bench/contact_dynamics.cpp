/// Substrate validation: contact dynamics of the Random-Waypoint world at
/// Table 5.1 density. Sanity-checks that our mobility + connectivity
/// substrate produces ONE-like contact statistics (contact counts scale with
/// density; durations sit near the analytic 2R/v expectation), and shows the
/// selfishness gate cutting encounters.

#include <iostream>

#include "bench_common.h"
#include "scenario/report.h"
#include "scenario/scenario.h"

int main(int argc, char** argv) {
  using namespace dtnic;
  util::Cli cli;
  const bench::BenchScale scale = bench::resolve_scale(cli, argc, argv, argv[0]);
  bench::print_header("Substrate validation: contact dynamics", scale);

  util::Table table({"mobility", "selfish %", "contacts", "suppressed", "mean dur (s)",
                     "median dur (s)", "mean inter-contact (s)"});
  struct Case {
    scenario::MobilityKind mobility;
    double selfish;
  };
  const Case cases[] = {{scenario::MobilityKind::kRandomWaypoint, 0.0},
                        {scenario::MobilityKind::kRandomWaypoint, 0.5},
                        {scenario::MobilityKind::kHotspot, 0.0},
                        {scenario::MobilityKind::kRandomWalk, 0.0}};
  for (const Case& c : cases) {
    scenario::ScenarioConfig cfg = bench::base_config(scale);
    cfg.mobility = c.mobility;
    cfg.selfish_fraction = c.selfish;
    cfg.scheme = scenario::Scheme::kChitChat;
    cfg.messages_per_node_per_hour = 0.1;  // contacts are the subject here
    cfg.seed = 1;
    scenario::Scenario sim(cfg);
    const auto result = sim.run();
    const auto summary = scenario::summarize_contacts(sim.contact_trace());
    table.add_row({scenario::mobility_name(c.mobility),
                   util::Table::cell(c.selfish * 100.0, 0),
                   util::Table::cell(summary.contacts),
                   util::Table::cell(static_cast<std::size_t>(result.contacts_suppressed)),
                   util::Table::cell(summary.mean_duration_s, 1),
                   util::Table::cell(summary.median_duration_s, 1),
                   util::Table::cell(summary.mean_intercontact_s, 1)});
  }
  table.print(std::cout);

  // Analytic ballpark: two pedestrians crossing a 100 m radio disc at a
  // relative speed around v_rel ≈ 1.3 m/s stay connected for roughly
  // (π/2)·R / v_rel ≈ 120 s on average.
  std::cout << "\nexpected: mean contact duration of order 10^2 s (2R/v_rel ballpark);\n"
               "50% selfish suppresses a large share of encounters.\n";
  return 0;
}
