#include "routing/chitchat/chitchat_router.h"

namespace dtnic::routing {

ChitChatRouter::ChitChatRouter(const DestinationOracle& oracle,
                               const chitchat::ChitChatParams& params,
                               util::SimTime contact_quantum)
    : Router(oracle), params_(params), table_(params), contact_quantum_(contact_quantum) {}

void ChitChatRouter::set_direct_interests(const std::vector<msg::KeywordId>& interests,
                                          util::SimTime now) {
  for (msg::KeywordId k : interests) table_.add_direct(k, now);
}

ChitChatRouter* ChitChatRouter::of(Host& host) {
  if (!host.has_router()) return nullptr;
  return dynamic_cast<ChitChatRouter*>(&host.router());
}

void ChitChatRouter::pre_exchange(Host& self, util::SimTime now,
                                  std::span<Host* const> neighbors) {
  (void)self;
  // An interest does not decay while some currently connected device shares
  // it (Algorithm 1's "device with I is connected" branch).
  table_.decay(now, [&neighbors](msg::KeywordId k) {
    for (Host* neighbor : neighbors) {
      ChitChatRouter* other = ChitChatRouter::of(*neighbor);
      if (other != nullptr && other->table_.has(k)) return true;
    }
    return false;
  });
}

void ChitChatRouter::on_link_up(Host& self, Host& peer, util::SimTime now, double distance_m) {
  (void)self; (void)distance_m;
  ChitChatRouter* other = ChitChatRouter::of(peer);
  if (other == nullptr) return;
  table_.grow_from(other->table_, now, contact_quantum_.sec());
  for (const auto& entry : other->table_.entries()) {
    table_.note_seen(entry.keyword, now);
  }
}

double ChitChatRouter::message_strength(const msg::Message& m) const {
  return table_.sum_weights(m.keywords());
}

std::vector<ForwardPlan> ChitChatRouter::plan(Host& self, Host& peer, util::SimTime now) {
  (void)now;
  std::vector<ForwardPlan> plans;
  ChitChatRouter* other = ChitChatRouter::of(peer);
  for (const msg::Message* m : self.buffer().messages()) {
    if (peer.has_seen(m->id())) continue;
    if (oracle().is_destination(peer.id(), *m)) {
      plans.push_back(ForwardPlan{m->id(), TransferRole::kDestination});
      continue;
    }
    if (other == nullptr) continue;
    const double s_u = message_strength(*m);
    const double s_v = other->message_strength(*m);
    if (s_v > s_u + params_.forward_margin) {
      plans.push_back(ForwardPlan{m->id(), TransferRole::kRelay});
    }
  }
  (void)self;
  return plans;
}

}  // namespace dtnic::routing
