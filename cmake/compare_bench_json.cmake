# Compares a freshly written benchmark artifact against a committed baseline
# and fails on a performance regression. Run in script mode:
#
#   cmake -DJSON_FILE=<current> -DBASELINE_FILE=<committed baseline>
#         [-DMETRIC_KEY=ns_per_scan] [-DMATCH_KEYS=kernel,nodes]
#         [-DTOLERANCE_PERCENT=25]
#         -P cmake/compare_bench_json.cmake
#
# Rows are matched by the MATCH_KEYS tuple (default kernel,nodes). Only the
# intersection is compared: rows present in just one file — e.g. the
# scan-variant rows, which depend on what the host CPU supports — are
# reported and skipped, never failed. A matched row fails when its metric
# exceeds baseline * (1 + TOLERANCE_PERCENT/100). Lower-than-baseline values
# never fail; improvements are reported so baselines can be re-pinned.
#
# The committed baselines live in bench/baselines/ and were produced by the
# same smoke-mode invocations the bench_smoke_* ctests run, so current and
# baseline measure identical workloads. The generous default tolerance
# absorbs smoke-scale timing noise; the guard is for step regressions
# (an accidental O(n log n), a lost fast path), not single-digit drift.

if(NOT DEFINED JSON_FILE)
  message(FATAL_ERROR "pass -DJSON_FILE=<current benchmark artifact>")
endif()
if(NOT DEFINED BASELINE_FILE)
  message(FATAL_ERROR "pass -DBASELINE_FILE=<committed baseline artifact>")
endif()
foreach(_f IN ITEMS "${JSON_FILE}" "${BASELINE_FILE}")
  if(NOT EXISTS "${_f}")
    message(FATAL_ERROR "benchmark artifact not found: ${_f}")
  endif()
endforeach()
if(NOT DEFINED METRIC_KEY)
  set(METRIC_KEY "ns_per_scan")
endif()
if(NOT DEFINED MATCH_KEYS)
  set(MATCH_KEYS "kernel,nodes")
endif()
if(NOT DEFINED TOLERANCE_PERCENT)
  set(TOLERANCE_PERCENT 25)
endif()
string(REPLACE "," ";" _match_keys "${MATCH_KEYS}")

file(READ "${JSON_FILE}" _cur)
file(READ "${BASELINE_FILE}" _base)

# The schema tags must agree — comparing different artifact kinds is a
# harness wiring bug, not a regression.
string(JSON _cur_schema ERROR_VARIABLE _err GET "${_cur}" schema)
if(_err)
  message(FATAL_ERROR "missing 'schema' in ${JSON_FILE}: ${_err}")
endif()
string(JSON _base_schema ERROR_VARIABLE _err GET "${_base}" schema)
if(_err)
  message(FATAL_ERROR "missing 'schema' in ${BASELINE_FILE}: ${_err}")
endif()
if(NOT _cur_schema STREQUAL _base_schema)
  message(FATAL_ERROR
    "schema mismatch: current '${_cur_schema}' vs baseline '${_base_schema}'")
endif()

# Builds "key=value|key=value" match ids for every row of a document and
# stores row index by id in _row_<prefix>_<id> variables.
function(_index_rows doc prefix out_ids)
  string(JSON _n ERROR_VARIABLE _err LENGTH "${doc}" results)
  if(_err)
    message(FATAL_ERROR "missing 'results' array: ${_err}")
  endif()
  set(_ids "")
  if(_n GREATER 0)
    math(EXPR _last "${_n} - 1")
    foreach(_i RANGE ${_last})
      set(_id "")
      foreach(_key IN LISTS _match_keys)
        string(JSON _val ERROR_VARIABLE _err GET "${doc}" results ${_i} ${_key})
        if(_err)
          message(FATAL_ERROR "results[${_i}] missing match key '${_key}': ${_err}")
        endif()
        string(APPEND _id "${_key}=${_val}|")
      endforeach()
      string(MAKE_C_IDENTIFIER "${_id}" _cid)
      set(_row_${prefix}_${_cid} ${_i} PARENT_SCOPE)
      list(APPEND _ids "${_id}")
    endforeach()
  endif()
  set(${out_ids} "${_ids}" PARENT_SCOPE)
endfunction()

_index_rows("${_cur}" cur _cur_ids)
_index_rows("${_base}" base _base_ids)

set(_compared 0)
set(_failures "")
foreach(_id IN LISTS _base_ids)
  list(FIND _cur_ids "${_id}" _found)
  if(_found EQUAL -1)
    message(STATUS "baseline-only row skipped: ${_id}")
    continue()
  endif()
  string(MAKE_C_IDENTIFIER "${_id}" _cid)
  string(JSON _base_metric GET "${_base}" results ${_row_base_${_cid}} ${METRIC_KEY})
  string(JSON _cur_metric GET "${_cur}" results ${_row_cur_${_cid}} ${METRIC_KEY})
  string(REGEX MATCH "^[0-9]*\\.?[0-9]+([eE][-+]?[0-9]+)?$" _ok_base "${_base_metric}")
  string(REGEX MATCH "^[0-9]*\\.?[0-9]+([eE][-+]?[0-9]+)?$" _ok_cur "${_cur_metric}")
  if(NOT _ok_base OR NOT _ok_cur)
    message(FATAL_ERROR "non-numeric ${METRIC_KEY} for ${_id}: "
      "current '${_cur_metric}' baseline '${_base_metric}'")
  endif()
  math(EXPR _compared "${_compared} + 1")
  # CMake math() is integer-only: compare cur*100 against base*(100+tol)
  # after scaling both metrics to integer milli-units (3 decimals kept by
  # splitting on the decimal point). ns-scale values stay far from overflow.
  math(EXPR _scale "100 + ${TOLERANCE_PERCENT}")
  foreach(_pair "cur;${_cur_metric}" "base;${_base_metric}")
    list(GET _pair 0 _which)
    list(GET _pair 1 _raw)
    string(FIND "${_raw}" "e" _has_e)
    string(FIND "${_raw}" "E" _has_E)
    if(NOT _has_e EQUAL -1 OR NOT _has_E EQUAL -1)
      # Scientific notation in an artifact means sub-microsecond or huge
      # values; neither occurs in these benches. Treat as wiring bug.
      message(FATAL_ERROR "scientific-notation metric unsupported: ${_raw}")
    endif()
    string(FIND "${_raw}" "." _dot)
    if(_dot EQUAL -1)
      set(_int "${_raw}")
      set(_frac "000")
    else()
      string(SUBSTRING "${_raw}" 0 ${_dot} _int)
      math(EXPR _fs "${_dot} + 1")
      string(SUBSTRING "${_raw}" ${_fs} -1 _frac)
      string(SUBSTRING "${_frac}000" 0 3 _frac)
    endif()
    if(_int STREQUAL "")
      set(_int 0)
    endif()
    math(EXPR _milli "${_int} * 1000 + ${_frac}")
    set(_${_which}_milli ${_milli})
  endforeach()
  math(EXPR _lhs "${_cur_milli} * 100")
  math(EXPR _rhs "${_base_milli} * ${_scale}")
  if(_lhs GREATER _rhs)
    list(APPEND _failures
      "${_id} ${METRIC_KEY}=${_cur_metric} exceeds baseline ${_base_metric} by >${TOLERANCE_PERCENT}%")
  elseif(_cur_milli LESS _base_milli)
    message(STATUS "improved: ${_id} ${METRIC_KEY} ${_base_metric} -> ${_cur_metric}")
  endif()
endforeach()

if(_compared EQUAL 0)
  message(FATAL_ERROR "no rows matched between ${JSON_FILE} and ${BASELINE_FILE}")
endif()
if(_failures)
  string(REPLACE ";" "\n  " _msg "${_failures}")
  message(FATAL_ERROR "benchmark regression (>${TOLERANCE_PERCENT}% over baseline):\n  ${_msg}")
endif()
message(STATUS "${JSON_FILE}: ${_compared} rows within ${TOLERANCE_PERCENT}% of baseline")
