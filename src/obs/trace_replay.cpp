#include "obs/trace_replay.h"

#include <charconv>
#include <cstring>
#include <stdexcept>
#include <string>

#include "msg/message.h"

namespace dtnic::obs {

namespace {

using routing::AcceptDecision;
using routing::DropReason;
using routing::MessageId;
using routing::NodeId;
using routing::TransferRole;
using util::SimTime;

[[noreturn]] void fail(const std::string& what, const std::string& line) {
  throw std::runtime_error("trace replay: " + what + " in line: " + line);
}

/// Position just past `"key":` in \p line, or npos. Our own writer never
/// emits keys inside string values, so a plain substring search is exact.
std::size_t value_pos(const std::string& line, const char* key) {
  std::string pattern;
  pattern.reserve(std::strlen(key) + 3);
  pattern += '"';
  pattern += key;
  pattern += "\":";
  const std::size_t at = line.find(pattern);
  return at == std::string::npos ? std::string::npos : at + pattern.size();
}

double get_num(const std::string& line, const char* key) {
  const std::size_t pos = value_pos(line, key);
  if (pos == std::string::npos) fail(std::string("missing number '") + key + "'", line);
  double v = 0.0;
  const auto res = std::from_chars(line.data() + pos, line.data() + line.size(), v);
  if (res.ec != std::errc{}) fail(std::string("bad number for '") + key + "'", line);
  return v;
}

std::uint64_t get_u64(const std::string& line, const char* key) {
  const std::size_t pos = value_pos(line, key);
  if (pos == std::string::npos) fail(std::string("missing number '") + key + "'", line);
  std::uint64_t v = 0;
  const auto res = std::from_chars(line.data() + pos, line.data() + line.size(), v);
  if (res.ec != std::errc{}) fail(std::string("bad number for '") + key + "'", line);
  return v;
}

std::string get_str(const std::string& line, const char* key) {
  std::size_t pos = value_pos(line, key);
  if (pos == std::string::npos || pos >= line.size() || line[pos] != '"') {
    fail(std::string("missing string '") + key + "'", line);
  }
  ++pos;
  const std::size_t end = line.find('"', pos);
  if (end == std::string::npos) fail(std::string("unterminated string '") + key + "'", line);
  return line.substr(pos, end - pos);
}

NodeId node_of(const std::string& line, const char* key) {
  return NodeId(static_cast<NodeId::underlying>(get_u64(line, key)));
}

MessageId msg_of(const std::string& line) {
  return MessageId(static_cast<MessageId::underlying>(get_u64(line, "msg")));
}

msg::Priority prio_of(const std::string& line) {
  const auto level = static_cast<int>(get_u64(line, "prio"));
  if (level < 1 || level > 3) fail("priority out of range", line);
  return static_cast<msg::Priority>(level);
}

AcceptDecision accept_of(const std::string& why, const std::string& line) {
  if (why == "duplicate") return AcceptDecision::kDuplicate;
  if (why == "no-tokens") return AcceptDecision::kNoTokens;
  if (why == "untrusted-sender") return AcceptDecision::kUntrustedSender;
  if (why == "refused") return AcceptDecision::kRefused;
  if (why == "accept") return AcceptDecision::kAccept;
  fail("unknown refusal reason '" + why + "'", line);
}

/// A stand-in copy for callbacks whose consumers only read the id (and, for
/// created records, the payload metadata).
msg::Message stub_message(MessageId id, NodeId source) {
  return msg::Message(id, source, SimTime::zero(), 1, msg::Priority::kMedium, 1.0);
}

}  // namespace

TraceReplayStats replay_trace(std::istream& in, routing::RoutingEvents& sink) {
  TraceReplayStats stats;
  std::string line;
  if (!std::getline(in, line)) throw std::runtime_error("trace replay: empty stream");
  stats.schema = get_str(line, "schema");
  if (stats.schema != "dtnic.trace.v1") {
    throw std::runtime_error("trace replay: unsupported schema '" + stats.schema + "'");
  }
  stats.seed = get_u64(line, "seed");

  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::string ev = get_str(line, "ev");
    if (ev == "created") {
      msg::Message m(msg_of(line), node_of(line, "node"), SimTime(get_num(line, "t")),
                     get_u64(line, "size"), prio_of(line), get_num(line, "quality"));
      sink.on_created(m);
    } else if (ev == "transfer") {
      const NodeId from = node_of(line, "from");
      const msg::Message m = stub_message(msg_of(line), from);
      const std::string role = get_str(line, "role");
      sink.on_transfer_started(from, node_of(line, "to"), m,
                               role == "destination" ? TransferRole::kDestination
                                                     : TransferRole::kRelay);
    } else if (ev == "relayed") {
      const NodeId from = node_of(line, "from");
      sink.on_relayed(from, node_of(line, "to"), stub_message(msg_of(line), from));
    } else if (ev == "delivered") {
      const NodeId from = node_of(line, "from");
      const NodeId to = node_of(line, "to");
      // Rebuild a copy whose relay_hop_count and end-to-end latency equal the
      // traced values. The constructor records the creation hop, so a copy
      // with `hops` relay hops needs `hops - 1` placeholders plus the final
      // hop at exactly `latency_s` (to_chars round-trip restores its bits).
      msg::Message m(msg_of(line), from, SimTime::zero(), 1, prio_of(line), 1.0);
      const std::uint64_t hops = get_u64(line, "hops");
      for (std::uint64_t i = 1; i < hops; ++i) m.record_hop(from, SimTime::zero());
      if (hops > 0) m.record_hop(to, SimTime(get_num(line, "latency_s")));
      sink.on_delivered(from, to, m);
    } else if (ev == "refused") {
      const NodeId from = node_of(line, "from");
      sink.on_refused(from, node_of(line, "to"), stub_message(msg_of(line), from),
                      accept_of(get_str(line, "why"), line));
    } else if (ev == "aborted") {
      sink.on_aborted(node_of(line, "from"), node_of(line, "to"), msg_of(line));
    } else if (ev == "dropped") {
      const NodeId at = node_of(line, "node");
      sink.on_dropped(at, stub_message(msg_of(line), at),
                      get_str(line, "why") == "buffer-full" ? DropReason::kBufferFull
                                                            : DropReason::kTtlExpired);
    } else if (ev == "tokens") {
      sink.on_tokens_paid(node_of(line, "from"), node_of(line, "to"),
                          get_num(line, "amount"));
    } else if (ev == "reputation") {
      sink.on_reputation_updated(node_of(line, "node"), node_of(line, "about"),
                                 get_num(line, "rating"));
    } else if (ev == "enriched") {
      const NodeId at = node_of(line, "node");
      sink.on_enriched(at, stub_message(msg_of(line), at),
                       static_cast<int>(get_u64(line, "tags")));
    } else {
      fail("unknown event type '" + ev + "'", line);
    }
    ++stats.events;
  }
  return stats;
}

}  // namespace dtnic::obs
