#include "routing/host.h"

#include "routing/chitchat/chitchat_router.h"
#include "routing/router.h"
#include "util/assert.h"

namespace dtnic::routing {

namespace {
/// Shared do-nothing sink so Host::events() never dereferences null.
RoutingEvents g_null_events;
}  // namespace

Host::Host(NodeId id, std::uint64_t buffer_capacity_bytes, msg::DropPolicy drop_policy)
    : Host(id, buffer_capacity_bytes, drop_policy, g_null_events) {}

Host::Host(NodeId id, std::uint64_t buffer_capacity_bytes, msg::DropPolicy drop_policy,
           RoutingEvents& events)
    : id_(id), buffer_(buffer_capacity_bytes, drop_policy), events_(&events) {
  DTNIC_REQUIRE_MSG(id.valid(), "host id must be valid");
}

const chitchat::InterestTable* Host::interest_table() const {
  if (router_ == nullptr || !is_chitchat_kind(router_->kind())) return nullptr;
  return &static_cast<const ChitChatRouter&>(*router_).interests();
}

double Host::message_strength(const msg::Message& m) const {
  if (router_ == nullptr || !is_chitchat_kind(router_->kind())) return 0.0;
  // The router's memoized strength, so Peer-mediated queries return the
  // exact bits the direct ChitChatRouter::of(host)->message_strength(m)
  // calls they replaced did.
  return static_cast<const ChitChatRouter&>(*router_).message_strength(m);
}

void Host::set_rank(int rank) {
  DTNIC_REQUIRE_MSG(rank >= 1, "rank 1 is the top of the hierarchy; ranks are >= 1");
  rank_ = rank;
}

void Host::set_router(std::unique_ptr<Router> router) {
  DTNIC_REQUIRE_MSG(router != nullptr, "router must not be null");
  router_ = std::move(router);
  router_->attach(*this);
}

Router& Host::router() {
  DTNIC_REQUIRE_MSG(router_ != nullptr, "host has no router");
  return *router_;
}

}  // namespace dtnic::routing
