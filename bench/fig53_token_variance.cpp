/// Reproduces Figure 5.3 (Initial Tokens' Variance): MDR as a function of
/// the initial token allowance, for several selfish-node percentages.
/// Paper shape: MDR rises with the initial allowance (tokens exhaust more
/// slowly) and falls with the selfish percentage; traffic reduction shrinks
/// as the allowance grows (the Section 3 conclusion's trade-off).

#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace dtnic;
  util::Cli cli;
  const bench::BenchScale scale = bench::resolve_scale(cli, argc, argv, argv[0]);
  bench::print_header("Figure 5.3: MDR vs initial tokens", scale);

  const scenario::ExperimentRunner runner(scale.seeds);
  const scenario::ScenarioConfig base = bench::base_config(scale);
  // Sweep around the scale-adjusted baseline allowance (the paper sweeps
  // absolute token counts at 24 h / 500 nodes).
  const double multipliers[] = {0.25, 0.5, 1.0, 2.0, 4.0};
  const double selfish_levels[] = {0.0, 0.2, 0.4};

  util::Table table({"initial tokens", "MDR (0% selfish)", "MDR (20% selfish)",
                     "MDR (40% selfish)", "traffic reduced % (20% selfish)"});
  for (const double mult : multipliers) {
    const double tokens = base.incentive.initial_tokens * mult;
    std::vector<std::string> row{util::Table::cell(tokens, 1)};
    double reduced_at_20 = 0.0;
    for (const double selfish : selfish_levels) {
      scenario::ScenarioConfig cfg = base;
      cfg.selfish_fraction = selfish;
      cfg.incentive.initial_tokens = tokens;
      cfg.scheme = scenario::Scheme::kIncentive;
      const auto incentive = runner.run(cfg);
      row.push_back(util::Table::cell(incentive.mdr.mean(), 3));
      if (selfish == 0.2) {
        cfg.scheme = scenario::Scheme::kChitChat;
        const auto chitchat = runner.run(cfg);
        const double t_cc = chitchat.traffic.mean();
        reduced_at_20 = t_cc > 0 ? (t_cc - incentive.traffic.mean()) / t_cc * 100.0 : 0.0;
      }
    }
    row.push_back(util::Table::cell(reduced_at_20, 2));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: MDR grows with the token allowance and shrinks with\n"
               "selfishness; the traffic saving fades as tokens stop binding.\n";
  return 0;
}
