#include "stats/time_series.h"

#include <algorithm>

namespace dtnic::stats {

double TimeSeries::value_at(util::SimTime t) const {
  // Samples are appended in time order: binary-search the first sample
  // strictly after t; its predecessor (if any) holds the step value.
  const auto after = std::upper_bound(
      samples_.begin(), samples_.end(), t,
      [](util::SimTime query, const Sample& s) { return query < s.time; });
  if (after == samples_.begin()) return initial_;
  return std::prev(after)->value;
}

}  // namespace dtnic::stats
