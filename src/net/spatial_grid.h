#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/ids.h"
#include "util/vec2.h"

/// \file spatial_grid.h
/// Uniform-grid spatial index for range queries. The connectivity scanner
/// rebuilds it each scan (cheap: one hash insert per node) and asks for all
/// pairs within radio range; cell size equals the query radius so only the
/// 3x3 neighborhood must be examined.

namespace dtnic::net {

class SpatialGrid {
 public:
  /// \p cell_size should equal the query radius for the 3x3 guarantee.
  explicit SpatialGrid(double cell_size);

  void clear();
  void insert(util::NodeId id, util::Vec2 position);

  [[nodiscard]] std::size_t size() const { return count_; }

  /// All ids strictly within \p radius of \p center (excluding \p self).
  [[nodiscard]] std::vector<util::NodeId> neighbors_of(util::Vec2 center, double radius,
                                                       util::NodeId self) const;

  /// All unordered pairs (a, b) with a < b and distance(a, b) <= radius.
  /// \p radius must be <= cell_size.
  struct Pair {
    util::NodeId a;
    util::NodeId b;
    double distance_m;
  };
  [[nodiscard]] std::vector<Pair> pairs_within(double radius) const;

 private:
  struct Item {
    util::NodeId id;
    util::Vec2 position;
  };

  [[nodiscard]] std::int64_t cell_key(double x, double y) const;

  double cell_size_;
  std::size_t count_ = 0;
  std::unordered_map<std::int64_t, std::vector<Item>> cells_;
};

}  // namespace dtnic::net
