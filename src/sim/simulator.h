#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "sim/event_queue.h"
#include "util/sim_time.h"

/// \file simulator.h
/// The discrete-event simulation kernel. Single-threaded, deterministic:
/// the clock only moves forward when the next event is popped, simultaneous
/// events fire in scheduling order, and all randomness comes from seeded
/// streams owned by the scenario.

namespace dtnic::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.
  [[nodiscard]] util::SimTime now() const { return now_; }

  /// Schedule \p fn at absolute time \p t (must be >= now()).
  EventId schedule_at(util::SimTime t, EventFn fn);

  /// Schedule \p fn after a delay of \p dt (must be >= 0).
  EventId schedule_in(util::SimTime dt, EventFn fn);

  /// Schedule \p fn every \p period, first firing at now()+period (or at
  /// \p first if given). The task re-arms itself until cancel() on the
  /// returned id, or until the run horizon ends.
  EventId schedule_every(util::SimTime period, std::function<void()> fn);
  EventId schedule_every_from(util::SimTime first, util::SimTime period,
                              std::function<void()> fn);

  /// Cancel a pending event or periodic task.
  void cancel(EventId id);

  /// Run events until the queue is exhausted or the clock would pass
  /// \p horizon; the clock is left at min(horizon, last event time).
  void run_until(util::SimTime horizon);

  /// Run until the queue is empty (periodic tasks make this unbounded:
  /// prefer run_until).
  void run();

  /// Request that the run loop stop after the current event returns.
  void stop() { stopped_ = true; }

  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

 private:
  EventQueue queue_;
  /// alive-flags for periodic tasks, keyed by the EventId handed back to the
  /// caller; cancel() flips the flag so an already-queued tick is a no-op.
  std::unordered_map<std::uint64_t, std::shared_ptr<bool>> periodic_controls_;
  util::SimTime now_ = util::SimTime::zero();
  std::uint64_t processed_ = 0;
  bool stopped_ = false;
};

}  // namespace dtnic::sim
