#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/incentive_router.h"
#include "msg/id_source.h"
#include "msg/keyword.h"
#include "routing/host.h"
#include "routing/oracle.h"

/// \file operator_api.h
/// The paper's §4 "operator functions" as a user-facing facade over one
/// device running the incentive scheme. Examples and the quickstart drive
/// the system through this API; each method maps 1:1 to a numbered function
/// in the paper (Annotate, Subscribe, DecayWeights, IncrementWeights,
/// GetMessagesToForward, DecideDestOrRelay, DecideBestRelay,
/// ComputeIncentive, RateMessage, RateNode, Enrich).

namespace dtnic::core {

class DtnOperator {
 public:
  /// All references must outlive the operator. The host must run an
  /// IncentiveRouter.
  DtnOperator(routing::Host& host, routing::StaticInterestOracle& oracle,
              msg::KeywordTable& keywords, msg::MessageIdSource& ids);

  /// Function 1, Annotate: create a message from a captured "image". The
  /// \p labels are the keywords the user keeps/edits (all truthful — they
  /// describe the content); they also become the message's latent truth.
  /// Location and capture timestamp are saved with the message (the paper's
  /// user task). The stored copy is protected from buffer eviction while
  /// relayed copies remain (own message).
  msg::Message& annotate(const std::vector<std::string>& labels, util::SimTime now,
                         std::uint64_t size_bytes, msg::Priority priority, double quality,
                         std::optional<msg::GeoTag> location = std::nullopt);

  /// Function 2, Subscribe: add keyword interests (registered both in the
  /// destination oracle and as ChitChat direct interests).
  void subscribe(const std::vector<std::string>& interests, util::SimTime now);

  /// Function 3, DecayWeights: run the ChitChat decay phase (no connected
  /// devices assumed).
  void decay_weights(util::SimTime now);

  /// Function 4, IncrementWeights: run the ChitChat growth phase against a
  /// connected peer. The peer is the transport-neutral Peer view (peer.h):
  /// an in-process Host in the simulator, a live::RemotePeer carrying the
  /// latest interest-table digest in live mode. Requires the peer to expose
  /// a ChitChat interest table.
  void increment_weights(const routing::Peer& peer, util::SimTime now);

  /// Function 5, GetMessagesToForward: ids of messages this device would
  /// offer to \p peer right now.
  [[nodiscard]] std::vector<msg::MessageId> messages_to_forward(const routing::Peer& peer,
                                                                util::SimTime now);

  /// Function 6, DecideDestOrRelay.
  [[nodiscard]] routing::TransferRole decide_role(const msg::Message& m,
                                                  const routing::Peer& peer) const;

  /// Function 7, DecideBestRelay: among \p candidates, the one with the
  /// highest interest strength for the message (nullptr if none).
  [[nodiscard]] routing::Peer* best_relay(const std::vector<routing::Peer*>& candidates,
                                          const msg::Message& m) const;

  /// Function 8, ComputeIncentive: the promise this device would attach when
  /// forwarding \p m to \p peer.
  [[nodiscard]] double compute_incentive(const msg::Message& m, const routing::Peer& peer);

  /// Function 9, RateMessage: the simulated user's rating of the message
  /// source (0..5).
  [[nodiscard]] double rate_message(const msg::Message& m);

  /// Function 10, RateNode: this device's current rating of \p node.
  [[nodiscard]] double rate_node(routing::NodeId node) const;

  /// Function 11, Enrich: add user-supplied annotations to a carried
  /// message; returns how many were newly added. \p truthful reflects
  /// whether the labels actually describe the content.
  int enrich(msg::MessageId id, const std::vector<std::string>& labels, bool truthful = true);

  [[nodiscard]] routing::Host& host() { return host_; }
  [[nodiscard]] IncentiveRouter& router() { return router_; }
  /// Remaining incentive tokens (the demo app's "incentives left" screen).
  [[nodiscard]] double tokens() const { return router_.ledger().balance(); }

 private:
  routing::Host& host_;
  routing::StaticInterestOracle& oracle_;
  msg::KeywordTable& keywords_;
  msg::MessageIdSource& ids_;
  IncentiveRouter& router_;
};

}  // namespace dtnic::core
