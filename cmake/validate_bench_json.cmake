# Validates a machine-readable benchmark artifact written by micro_kernel
# (BENCH_contact_scan.json, BENCH_routing_exchange.json). Run in script mode:
#
#   cmake -DJSON_FILE=<path> [-DEXPECTED_SCHEMA=<tag>] [-DREQUIRED_KEYS=a,b,c]
#         [-DMETRIC_KEY=<key>] [-DCOUNT_KEY=<key>] -P cmake/validate_bench_json.cmake
#
# Defaults target the contact-scan artifact for backward compatibility; the
# exchange and observability artifacts pass their own schema tag, key list,
# metric key, and positivity-checked count key (COUNT_KEY; the observability
# artifact uses `events` because its `sinks` column is legitimately 0).
# Fails (FATAL_ERROR) unless the file parses, carries the expected schema
# tag, and every result row has the required keys with a positive metric.
# Used by the `bench_smoke_*_schema` ctests so CI catches a silently broken
# or truncated artifact, not just a crashing benchmark.

if(NOT DEFINED JSON_FILE)
  message(FATAL_ERROR "pass -DJSON_FILE=<path to benchmark artifact>")
endif()
if(NOT EXISTS "${JSON_FILE}")
  message(FATAL_ERROR "benchmark artifact not found: ${JSON_FILE}")
endif()
if(NOT DEFINED EXPECTED_SCHEMA)
  set(EXPECTED_SCHEMA "dtnic.contact_scan_bench.v1")
endif()
if(NOT DEFINED REQUIRED_KEYS)
  set(REQUIRED_KEYS "kernel,nodes,iterations,ns_per_scan,pairs")
endif()
if(NOT DEFINED METRIC_KEY)
  set(METRIC_KEY "ns_per_scan")
endif()
if(NOT DEFINED COUNT_KEY)
  set(COUNT_KEY "nodes")
endif()
string(REPLACE "," ";" _required_keys "${REQUIRED_KEYS}")

file(READ "${JSON_FILE}" _doc)

string(JSON _schema ERROR_VARIABLE _err GET "${_doc}" schema)
if(_err)
  message(FATAL_ERROR "missing 'schema' key in ${JSON_FILE}: ${_err}")
endif()
if(NOT _schema STREQUAL "${EXPECTED_SCHEMA}")
  message(FATAL_ERROR
    "unexpected schema tag '${_schema}' in ${JSON_FILE} (want '${EXPECTED_SCHEMA}')")
endif()

string(JSON _count ERROR_VARIABLE _err LENGTH "${_doc}" results)
if(_err)
  message(FATAL_ERROR "missing 'results' array in ${JSON_FILE}: ${_err}")
endif()
if(_count LESS 2)
  message(FATAL_ERROR "expected at least 2 result rows, got ${_count}")
endif()

math(EXPR _last "${_count} - 1")
foreach(_i RANGE ${_last})
  foreach(_key IN LISTS _required_keys)
    string(JSON _val ERROR_VARIABLE _err GET "${_doc}" results ${_i} ${_key})
    if(_err)
      message(FATAL_ERROR "results[${_i}] missing '${_key}': ${_err}")
    endif()
  endforeach()
  string(JSON _metric GET "${_doc}" results ${_i} ${METRIC_KEY})
  if(_metric LESS_EQUAL 0)
    message(FATAL_ERROR "results[${_i}].${METRIC_KEY} must be positive, got ${_metric}")
  endif()
  string(JSON _countv GET "${_doc}" results ${_i} ${COUNT_KEY})
  if(_countv LESS_EQUAL 0)
    message(FATAL_ERROR "results[${_i}].${COUNT_KEY} must be positive, got ${_countv}")
  endif()
endforeach()

message(STATUS "${JSON_FILE}: schema '${_schema}' ok, ${_count} result rows")
