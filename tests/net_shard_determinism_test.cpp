#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "mobility/mobility_model.h"
#include "net/connectivity.h"
#include "net/spatial_grid.h"
#include "obs/trace_sink.h"
#include "scenario/report.h"
#include "scenario/scenario.h"
#include "sim/simulator.h"
#include "util/rng.h"

/// Sharded-vs-serial bit-identity (the PR 6 tentpole's contract): the
/// per-shard pair enumeration merged by (a, b) must reproduce the serial
/// emission exactly, and a whole scenario run with any shard_threads value
/// must produce byte-identical reports and traces. Styled after
/// experiment_parallel_test.cpp: EXPECT_EQ on doubles, no tolerance.

namespace dtnic::net {
namespace {

using util::NodeId;
using util::SimTime;
using util::Vec2;

/// Deterministic "anywhere in the world, every tick" movement: a hash of
/// (salt, tick) picks a fresh position each second, including negative
/// coordinates, so nodes cross cell columns — and therefore shard owners —
/// on every single scan. Worst case for the boundary handshake.
class TeleportMobility final : public mobility::MobilityModel {
 public:
  TeleportMobility(std::uint64_t salt, double extent) : salt_(salt), extent_(extent) {}

  Vec2 position_at(SimTime t) override {
    const auto tick = static_cast<std::uint64_t>(t.sec());
    const std::uint64_t h = mix(salt_ * 0x9e3779b97f4a7c15ull + tick);
    const double x = to_unit(h) * 2.0 * extent_ - extent_;
    const double y = to_unit(mix(h)) * 2.0 * extent_ - extent_;
    return {x, y};
  }
  double max_speed() const override { return 1e9; }  // teleportation

 private:
  static std::uint64_t mix(std::uint64_t v) {
    v ^= v >> 33;
    v *= 0xff51afd7ed558ccdull;
    v ^= v >> 33;
    v *= 0xc4ceb9fe1a85ec53ull;
    return v ^ (v >> 33);
  }
  static double to_unit(std::uint64_t v) {
    return static_cast<double>(v >> 11) * 0x1.0p-53;
  }

  std::uint64_t salt_;
  double extent_;
};

void expect_pairs_equal(const std::vector<SpatialGrid::Pair>& a,
                        const std::vector<SpatialGrid::Pair>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].a, b[i].a);
    EXPECT_EQ(a[i].b, b[i].b);
    EXPECT_EQ(a[i].distance_m, b[i].distance_m);  // bit-identical
  }
}

TEST(GridSharding, ShardUnionEqualsSerialEmission) {
  SpatialGrid grid(100.0);
  util::Rng rng(42);
  // Cluster around the origin so negative cell coordinates (and hence the
  // sign-correct owner rule) are exercised, at well above one node per cell.
  for (std::uint32_t id = 0; id < 400; ++id) {
    grid.insert(NodeId(id), {rng.uniform(-600.0, 600.0), rng.uniform(-600.0, 600.0)});
  }
  std::vector<SpatialGrid::Pair> serial;
  grid.pairs_within(100.0, serial);
  ASSERT_GT(serial.size(), 100u);

  for (const std::uint32_t shards : {1u, 2u, 4u, 8u}) {
    std::vector<SpatialGrid::Pair> merged;
    SpatialGrid::SortScratch scratch;
    std::vector<SpatialGrid::Pair> shard_pairs;
    // Shard lists are disjoint and each sorted; a concatenation + one sort
    // by (a, b) equals the k-way merge the connectivity manager performs.
    for (std::uint32_t s = 0; s < shards; ++s) {
      grid.pairs_within_shard(100.0, s, shards, shard_pairs, scratch);
      merged.insert(merged.end(), shard_pairs.begin(), shard_pairs.end());
    }
    std::sort(merged.begin(), merged.end(), [](const auto& lhs, const auto& rhs) {
      return lhs.a != rhs.a ? lhs.a < rhs.a : lhs.b < rhs.b;
    });
    expect_pairs_equal(serial, merged);
  }
}

TEST(GridSharding, StageCommitEquivalentToUpdate) {
  SpatialGrid staged(50.0);
  SpatialGrid direct(50.0);
  util::Rng rng(7);
  for (std::uint32_t id = 0; id < 120; ++id) {
    const Vec2 p{rng.uniform(-200.0, 200.0), rng.uniform(-200.0, 200.0)};
    staged.insert(NodeId(id), p);
    direct.insert(NodeId(id), p);
  }
  for (int round = 0; round < 5; ++round) {
    std::vector<std::size_t> crossers;
    for (std::size_t slot = 0; slot < 120; ++slot) {
      const Vec2 p{rng.uniform(-200.0, 200.0), rng.uniform(-200.0, 200.0)};
      direct.update_slot(slot, p);
      if (staged.stage_position(slot, p)) crossers.push_back(slot);
    }
    for (const std::size_t slot : crossers) staged.commit_move(slot);
    expect_pairs_equal(direct.pairs_within(50.0), staged.pairs_within(50.0));
    EXPECT_EQ(direct.cell_count(), staged.cell_count());
  }
}

struct LinkEvent {
  bool up;
  NodeId a;
  NodeId b;
  double time_s;

  bool operator==(const LinkEvent&) const = default;
};

/// Run `scans` ticks of a teleport-heavy world under `shard_threads` shards
/// and record every link event in order.
std::vector<LinkEvent> run_teleport_world(std::size_t shard_threads, std::size_t nodes,
                                          std::size_t scans) {
  sim::Simulator sim;
  RadioParams radio;  // 100 m range
  ConnectivityManager manager(sim, radio, SimTime::seconds(1.0), shard_threads);
  std::vector<std::unique_ptr<mobility::MobilityModel>> models;
  for (std::size_t i = 0; i < nodes; ++i) {
    // Tight extent: plenty of contacts forming and breaking every tick.
    models.push_back(std::make_unique<TeleportMobility>(i + 1, 250.0));
    manager.add_node(NodeId(static_cast<std::uint32_t>(i)), models.back().get());
  }
  std::vector<LinkEvent> events;
  manager.on_link_up([&](NodeId a, NodeId b, double) {
    events.push_back({true, a, b, sim.now().sec()});
  });
  manager.on_link_down(
      [&](NodeId a, NodeId b) { events.push_back({false, a, b, sim.now().sec()}); });
  manager.start();
  sim.run_until(SimTime::seconds(static_cast<double>(scans)));
  return events;
}

TEST(ConnectivitySharding, TeleportChurnLinkEventsBitIdenticalAcrossShardCounts) {
  const std::vector<LinkEvent> serial = run_teleport_world(1, 96, 20);
  ASSERT_GT(serial.size(), 50u);  // the workload really is churn-heavy
  for (const std::size_t shards : {2u, 4u, 8u}) {
    EXPECT_EQ(run_teleport_world(shards, 96, 20), serial) << "shards=" << shards;
  }
}

}  // namespace
}  // namespace dtnic::net

namespace dtnic::scenario {
namespace {

struct RunArtifacts {
  RunResult result;
  std::string trace;
  std::string report;
};

/// One seeded fig55-style scenario run (incentive scheme, mixed behaviors)
/// with a full trace and a JSON report captured in memory.
RunArtifacts run_sharded_scenario(std::size_t shard_threads, Scheme scheme) {
  ScenarioConfig cfg = ScenarioConfig::scaled_defaults(40, 0.5);
  cfg.scheme = scheme;
  cfg.selfish_fraction = 0.2;
  cfg.malicious_fraction = 0.1;
  cfg.sample_interval_s = 300.0;
  cfg.shard_threads = shard_threads;

  Scenario s(cfg);
  std::ostringstream trace_os;
  obs::TraceOptions opt;
  opt.clock = [&sim = s.simulator()] { return sim.now(); };
  opt.seed = cfg.seed;
  opt.scheme = scheme_name(scheme);
  obs::TraceSink sink(trace_os, std::move(opt));
  const obs::SinkHandle handle = s.events().add_sink(sink);

  RunArtifacts out;
  out.result = s.run();
  sink.flush();
  out.trace = trace_os.str();

  std::ostringstream report_os;
  Reporter reporter(report_os, ReportFormat::kJson);
  reporter.run_report(out.result);
  out.report = report_os.str();
  return out;
}

TEST(ScenarioSharding, ReportsAndTracesByteIdenticalAcrossShardCounts) {
  for (const Scheme scheme : {Scheme::kIncentive, Scheme::kChitChat}) {
    const RunArtifacts serial = run_sharded_scenario(1, scheme);
    ASSERT_GT(serial.result.created, 0u);
    ASSERT_GT(serial.trace.size(), 100u);
    for (const std::size_t shards : {2u, 4u, 8u}) {
      const RunArtifacts sharded = run_sharded_scenario(shards, scheme);
      EXPECT_EQ(sharded.trace, serial.trace) << "shards=" << shards;
      EXPECT_EQ(sharded.report, serial.report) << "shards=" << shards;
      EXPECT_EQ(sharded.result.mdr, serial.result.mdr);
      EXPECT_EQ(sharded.result.traffic, serial.result.traffic);
      EXPECT_EQ(sharded.result.contacts, serial.result.contacts);
      EXPECT_EQ(sharded.result.tokens_paid, serial.result.tokens_paid);
      EXPECT_EQ(sharded.result.avg_final_tokens, serial.result.avg_final_tokens);
    }
  }
}

TEST(ScenarioSharding, AutoShardCountRunsAndStaysConsistent) {
  // shard_threads = 0 resolves to the hardware thread count; whatever that
  // is on the host, the output contract is the same.
  const RunArtifacts serial = run_sharded_scenario(1, Scheme::kIncentive);
  const RunArtifacts any = run_sharded_scenario(0, Scheme::kIncentive);
  EXPECT_EQ(any.trace, serial.trace);
  EXPECT_EQ(any.report, serial.report);
}

}  // namespace
}  // namespace dtnic::scenario
