/// Disaster-response scenario (the thesis' motivating deployment): field
/// teams photograph damage; annotations get richer as copies pass through
/// relays with local knowledge ("content enrichment"), so a message
/// eventually reaches responders whose interests the source never knew.
///
/// Runs the full event-driven simulation twice — enrichment on and off —
/// and shows the situational-awareness gain, then walks one enriched
/// message's journey.

#include <iostream>

#include "scenario/experiment.h"
#include "scenario/scenario.h"
#include "util/table.h"

int main() {
  using namespace dtnic;

  scenario::ScenarioConfig cfg = scenario::ScenarioConfig::scaled_defaults(70, 3.0);
  cfg.scheme = scenario::Scheme::kIncentive;
  cfg.messages_per_node_per_hour = 0.8;
  cfg.enrich_probability = 0.6;  // field teams annotate eagerly
  cfg.keywords_per_message = 4;  // photos carry several latent facts
  cfg.seed = 2026;

  std::cout << "Disaster response: " << cfg.num_nodes << " responders, "
            << cfg.sim_hours << " h, "
            << util::Table::cell(cfg.area_side_m * cfg.area_side_m / 1e6, 2)
            << " km² operations area\n\n";

  cfg.enrichment_enabled = true;
  const auto with = scenario::ExperimentRunner::run_once(cfg);
  cfg.enrichment_enabled = false;
  const auto without = scenario::ExperimentRunner::run_once(cfg);

  util::Table table({"metric", "enrichment ON", "enrichment OFF"});
  table.add_row({"messages created", util::Table::cell(with.created),
                 util::Table::cell(without.created)});
  table.add_row({"delivered to >=1 responder", util::Table::cell(with.delivered),
                 util::Table::cell(without.delivered)});
  table.add_row({"total (message, responder) deliveries",
                 util::Table::cell(static_cast<std::size_t>(with.deliveries_total)),
                 util::Table::cell(static_cast<std::size_t>(without.deliveries_total))});
  table.add_row({"mean delivery latency (min)",
                 util::Table::cell(with.mean_latency_s / 60.0, 1),
                 util::Table::cell(without.mean_latency_s / 60.0, 1)});
  table.add_row({"tokens paid (incl. tag rewards)", util::Table::cell(with.tokens_paid, 1),
                 util::Table::cell(without.tokens_paid, 1)});
  table.print(std::cout);

  // Walk one enriched message through the network.
  cfg.enrichment_enabled = true;
  scenario::Scenario sim(cfg);
  (void)sim.run();
  for (std::size_t i = 0; i < sim.node_count(); ++i) {
    const auto id = util::NodeId(static_cast<util::NodeId::underlying>(i));
    for (const msg::Message* m : sim.host(id).buffer().messages()) {
      // Find a copy that travelled and gained annotations en route.
      bool enriched = false;
      for (const auto& a : m->annotations()) enriched |= a.annotator != m->source();
      if (!enriched || m->relay_hop_count() < 2) continue;
      std::cout << "\nexample journey of message " << m->id() << " (priority "
                << msg::priority_name(m->priority()) << "):\n  path: ";
      for (const auto& hop : m->path()) {
        std::cout << "node" << hop.node << " (t=" << util::Table::cell(
            hop.received_at.sec() / 60.0, 0) << "m) -> ";
      }
      std::cout << "[carried]\n  annotations:\n";
      for (const auto& a : m->annotations()) {
        std::cout << "    '" << sim.keywords().name(a.keyword) << "' by node" << a.annotator
                  << (a.annotator == m->source() ? " (source)" : " (enrichment)") << "\n";
      }
      std::cout << "\nexpected: enrichment widens reach (more (message, responder)\n"
                   "deliveries) at the cost of extra tag-reward token flow.\n";
      return 0;
    }
  }
  std::cout << "\n(no multi-hop enriched copy found this run; rerun with another seed)\n";
  return 0;
}
