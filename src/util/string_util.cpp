#include "util/string_util.h"

#include <cctype>
#include <charconv>
#include <stdexcept>
#include <system_error>

namespace dtnic::util {

namespace {

/// from_chars does not skip leading '+' (unlike strtod); accept it here so
/// "+1.5" keeps working, without admitting "+-1" or a bare "+".
[[nodiscard]] std::string_view strip_plus(std::string_view t) {
  if (t.size() > 1 && t.front() == '+' && t[1] != '-' && t[1] != '+') t.remove_prefix(1);
  return t;
}

}  // namespace

std::string trim(std::string_view s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return std::string(s.substr(begin, end - begin));
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

double parse_double(const std::string& s) {
  const std::string trimmed = trim(s);
  const std::string_view t = strip_plus(trimmed);
  double v{};
  const auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), v);
  if (t.empty() || ec == std::errc::invalid_argument || ptr != t.data() + t.size()) {
    throw std::invalid_argument("not a number: '" + s + "'");
  }
  if (ec == std::errc::result_out_of_range) {
    throw std::invalid_argument("number out of range: '" + s + "'");
  }
  return v;
}

long long parse_int(const std::string& s) {
  const std::string trimmed = trim(s);
  const std::string_view t = strip_plus(trimmed);
  long long v{};
  const auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), v);
  if (t.empty() || ec == std::errc::invalid_argument || ptr != t.data() + t.size()) {
    throw std::invalid_argument("not an integer: '" + s + "'");
  }
  if (ec == std::errc::result_out_of_range) {
    throw std::invalid_argument("integer out of range: '" + s + "'");
  }
  return v;
}

bool parse_bool(const std::string& s) {
  const std::string t = trim(s);
  if (t == "true" || t == "1" || t == "yes" || t == "on") return true;
  if (t == "false" || t == "0" || t == "no" || t == "off") return false;
  throw std::invalid_argument("not a boolean: '" + s + "'");
}

}  // namespace dtnic::util
