#include "routing/epidemic.h"

namespace dtnic::routing {

std::vector<ForwardPlan> EpidemicRouter::plan(Host& self, Host& peer, util::SimTime now) {
  (void)now;
  std::vector<ForwardPlan> plans;
  for (const msg::Message* m : self.buffer().messages()) {
    if (peer.has_seen(m->id())) continue;
    const TransferRole role = oracle().is_destination(peer.id(), *m)
                                  ? TransferRole::kDestination
                                  : TransferRole::kRelay;
    plans.push_back(ForwardPlan{m->id(), role});
  }
  return plans;
}

}  // namespace dtnic::routing
