/// Google-benchmark microbenchmarks of the simulation kernel hot paths:
/// event queue churn, spatial-grid contact scans, ChitChat weight updates,
/// and the incentive/DRM formulas. These bound the cost of a paper-scale
/// run (500 nodes x 24 h) and guard against regressions.

#include <benchmark/benchmark.h>

#include "core/incentive.h"
#include "core/reputation.h"
#include "mobility/random_waypoint.h"
#include "msg/buffer.h"
#include "net/spatial_grid.h"
#include "routing/chitchat/interest_table.h"
#include "scenario/scenario.h"
#include "sim/event_queue.h"
#include "util/rng.h"

namespace {

using namespace dtnic;

void BM_RngUniform(benchmark::State& state) {
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.uniform());
  }
}
BENCHMARK(BM_RngUniform);

void BM_EventQueuePushPop(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(2);
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < n; ++i) {
      (void)q.push(util::SimTime::seconds(rng.uniform(0.0, 1000.0)), [] {});
    }
    while (!q.empty()) {
      benchmark::DoNotOptimize(q.pop().time);
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueuePushPop)->Arg(64)->Arg(1024)->Arg(16384);

void BM_SpatialGridScan(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  util::Rng rng(3);
  const double side = std::sqrt(nodes / 100.0) * 1000.0;  // 100 nodes per km²
  std::vector<util::Vec2> pos(nodes);
  for (auto& p : pos) p = {rng.uniform(0.0, side), rng.uniform(0.0, side)};
  net::SpatialGrid grid(100.0);
  for (auto _ : state) {
    grid.clear();
    for (int i = 0; i < nodes; ++i) {
      grid.insert(util::NodeId(static_cast<util::NodeId::underlying>(i)), pos[i]);
    }
    benchmark::DoNotOptimize(grid.pairs_within(100.0));
  }
  state.SetItemsProcessed(state.iterations() * nodes);
}
BENCHMARK(BM_SpatialGridScan)->Arg(100)->Arg(500)->Arg(2000);

void BM_RandomWaypointStep(benchmark::State& state) {
  mobility::RandomWaypointParams params;
  params.area = {2236.0, 2236.0};
  mobility::RandomWaypoint model(params, util::Rng(4));
  double t = 0.0;
  for (auto _ : state) {
    t += 5.0;
    benchmark::DoNotOptimize(model.position_at(util::SimTime::seconds(t)));
  }
}
BENCHMARK(BM_RandomWaypointStep);

void BM_InterestTableExchange(benchmark::State& state) {
  const int keywords = static_cast<int>(state.range(0));
  routing::chitchat::ChitChatParams params;
  routing::chitchat::InterestTable a(params);
  routing::chitchat::InterestTable b(params);
  for (int k = 0; k < keywords; ++k) {
    if (k % 2 == 0) a.add_direct(msg::KeywordId(k), util::SimTime::zero());
    else b.add_direct(msg::KeywordId(k), util::SimTime::zero());
  }
  double t = 0.0;
  for (auto _ : state) {
    t += 5.0;
    const auto now = util::SimTime::seconds(t);
    a.decay(now, nullptr);
    b.decay(now, nullptr);
    a.grow_from(b, now, 5.0);
    b.grow_from(a, now, 5.0);
    benchmark::DoNotOptimize(a.size());
  }
}
BENCHMARK(BM_InterestTableExchange)->Arg(20)->Arg(200);

void BM_SoftwareIncentive(benchmark::State& state) {
  core::IncentiveParams params;
  util::Rng rng(5);
  core::SoftwareFactors f;
  f.max_sum_weights = 3.0;
  f.max_size_bytes = 2 << 20;
  for (auto _ : state) {
    f.sum_weights_v = rng.uniform(0.0, 3.0);
    f.size_bytes = 1 + rng.below(2 << 20);
    f.quality = rng.uniform(0.0, 1.0);
    benchmark::DoNotOptimize(core::software_incentive(params, f));
  }
}
BENCHMARK(BM_SoftwareIncentive);

void BM_RatingStoreMerge(benchmark::State& state) {
  core::DrmParams drm;
  core::RatingStore store(drm);
  util::Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    store.add_message_rating(util::NodeId(i), rng.uniform(0.0, 5.0));
  }
  for (auto _ : state) {
    const auto node = util::NodeId(static_cast<util::NodeId::underlying>(rng.below(200)));
    store.merge_remote(node, rng.uniform(0.0, 5.0));
    benchmark::DoNotOptimize(store.rating_of(node));
  }
}
BENCHMARK(BM_RatingStoreMerge);

void BM_RatingStoreSnapshot(benchmark::State& state) {
  core::DrmParams drm;
  core::RatingStore store(drm);
  util::Rng rng(7);
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    store.add_message_rating(util::NodeId(i), rng.uniform(0.0, 5.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.snapshot());
  }
}
BENCHMARK(BM_RatingStoreSnapshot)->Arg(50)->Arg(500);

void BM_MessageBufferChurn(benchmark::State& state) {
  const auto policy = state.range(0) == 0 ? msg::DropPolicy::kFifoOldest
                                          : msg::DropPolicy::kLowPriorityFirst;
  util::Rng rng(8);
  constexpr std::uint64_t kMB = 1024 * 1024;
  util::MessageId::underlying next = 0;
  msg::MessageBuffer buf(64 * kMB, policy);
  for (auto _ : state) {
    msg::Message m(util::MessageId(next++), util::NodeId(0), util::SimTime::zero(),
                   kMB / 2 + rng.below(kMB), static_cast<msg::Priority>(rng.range(1, 3)),
                   rng.uniform(0.0, 1.0));
    benchmark::DoNotOptimize(buf.would_admit(m));
    benchmark::DoNotOptimize(buf.add(std::move(m)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MessageBufferChurn)->Arg(0)->Arg(1);

void BM_ScenarioMinute(benchmark::State& state) {
  // End-to-end cost of one simulated minute of a 40-node incentive world
  // (builds once; repeatedly extends the horizon).
  scenario::ScenarioConfig cfg = scenario::ScenarioConfig::scaled_defaults(40, 1.0);
  cfg.messages_per_node_per_hour = 1.0;
  cfg.seed = 3;
  for (auto _ : state) {
    state.PauseTiming();
    scenario::Scenario sim(cfg);
    state.ResumeTiming();
    (void)sim.run();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(cfg.sim_hours * 60));
  state.SetLabel("simulated-minutes/iter=60");
}
BENCHMARK(BM_ScenarioMinute)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

BENCHMARK_MAIN();
