#pragma once

#include <vector>

#include "mobility/mobility_model.h"

/// \file waypoint_trace.h
/// Deterministic, scripted movement along timestamped waypoints. The main
/// consumer is the test suite (contacts at exactly known times); it also
/// serves as the import path for external mobility traces.

namespace dtnic::mobility {

class WaypointTrace final : public MobilityModel {
 public:
  struct Keyframe {
    util::SimTime time;
    util::Vec2 position;
  };

  /// Keyframes must be non-empty and strictly increasing in time. Positions
  /// before the first keyframe hold the first position; after the last, the
  /// last. Between keyframes the node moves linearly.
  explicit WaypointTrace(std::vector<Keyframe> keyframes);

  [[nodiscard]] util::Vec2 position_at(util::SimTime t) override;
  [[nodiscard]] double max_speed() const override { return max_speed_; }

 private:
  std::vector<Keyframe> keyframes_;
  double max_speed_ = 0.0;
  std::size_t cursor_ = 0;  ///< last segment used; queries are monotone
};

}  // namespace dtnic::mobility
