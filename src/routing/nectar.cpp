#include "routing/nectar.h"

#include <cmath>

#include "util/assert.h"

namespace dtnic::routing {

NectarRouter::NectarRouter(const StaticInterestOracle& oracle, const NectarParams& params)
    : Router(oracle, RouterKind::kNectar), interests_(oracle), params_(params) {
  DTNIC_REQUIRE(params.decay_per_hour >= 0.0);
  DTNIC_REQUIRE(params.meeting_gain > 0.0);
}

NectarRouter* NectarRouter::of(Host& host) {
  if (!host.has_router()) return nullptr;
  Router& router = host.router();
  if (router.kind() != RouterKind::kNectar) return nullptr;
  return static_cast<NectarRouter*>(&router);
}

double NectarRouter::decayed(const Entry& e, util::SimTime now) const {
  const double hours = (now.sec() - e.updated_s) / 3600.0;
  return e.index * std::exp(-params_.decay_per_hour * std::max(0.0, hours));
}

void NectarRouter::on_link_up(Host& self, Host& peer, util::SimTime now, double distance_m) {
  (void)self; (void)distance_m;
  Entry& e = meetings_[peer.id()];
  e.index = decayed(e, now) + params_.meeting_gain;
  e.updated_s = now.sec();
}

double NectarRouter::index_of(NodeId node, util::SimTime now) const {
  auto it = meetings_.find(node);
  if (it == meetings_.end()) return 0.0;
  const double value = decayed(it->second, now);
  return value < params_.prune_epsilon ? 0.0 : value;
}

double NectarRouter::index_toward(const msg::Message& m, util::SimTime now) const {
  double best = 0.0;
  for (msg::KeywordId k : m.keywords()) {
    for (NodeId subscriber : interests_.subscribers_of(k)) {
      best = std::max(best, index_of(subscriber, now));
    }
  }
  return best;
}

std::vector<ForwardPlan> NectarRouter::plan(Host& self, Host& peer, util::SimTime now) {
  std::vector<ForwardPlan> plans;
  const NectarRouter* other = NectarRouter::of(peer);
  for (const msg::Message* m : self.buffer().messages()) {
    if (peer.has_seen(m->id())) continue;
    if (oracle().is_destination(peer.id(), *m)) {
      plans.push_back(ForwardPlan{m->id(), TransferRole::kDestination});
      continue;
    }
    if (other != nullptr && other->index_toward(*m, now) > index_toward(*m, now)) {
      plans.push_back(ForwardPlan{m->id(), TransferRole::kRelay});
    }
  }
  return plans;
}

}  // namespace dtnic::routing
