/// Ablation (extension): who should pay — the destination (the thesis'
/// design) or the source (PI-style, thesis §2.1 survey)? Both schemes run
/// on the same ChitChat substrate with the same token allowance under a
/// selfish sweep. The designs fail differently: destination-pays starves
/// selfish *receivers* (the thesis' stated goal — "barring them from
/// receiving"), while source-pays taxes *publishers* and lets selfish
/// receivers free-ride forever.

#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace dtnic;
  util::Cli cli;
  const bench::BenchScale scale = bench::resolve_scale(cli, argc, argv, argv[0]);
  bench::print_header("Ablation: destination-pays vs source-pays (PI-style)", scale);

  const scenario::SweepRunner sweep(scale.seeds);

  std::vector<double> selfish_levels;
  std::vector<scenario::ScenarioConfig> points;
  for (const double selfish : {0.0, 0.4}) {
    for (const auto scheme :
         {scenario::Scheme::kIncentive, scenario::Scheme::kPiIncentive}) {
      scenario::ScenarioConfig cfg = bench::base_config(scale);
      cfg.scheme = scheme;
      cfg.selfish_fraction = selfish;
      cfg.pi.attachment = cfg.incentive.initial_tokens / 4.0;  // comparable budgets
      points.push_back(cfg);
      selfish_levels.push_back(selfish);
    }
  }
  const auto results = sweep.run_all(points);

  util::Table table({"selfish %", "scheme", "MDR", "traffic", "refused: no-tokens",
                     "token fairness"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& agg = results[i];
    double fairness = 0.0;
    for (const auto& r : agg.raw) fairness += r.token_fairness;
    fairness /= static_cast<double>(agg.raw.size());
    table.add_row({util::Table::cell(selfish_levels[i] * 100.0, 0),
                   scenario::scheme_name(points[i].scheme),
                   util::Table::cell(agg.mdr.mean(), 3),
                   util::Table::cell(agg.traffic.mean(), 0),
                   util::Table::cell(agg.refused_no_tokens.mean(), 0),
                   util::Table::cell(fairness, 3)});
  }
  table.print(std::cout);
  std::cout << "\nexpected: destination-pays throttles traffic via receiver refusals\n"
               "(no-token count > 0); source-pays never refuses receivers, so its MDR\n"
               "and traffic track plain ChitChat while sources' budgets drain.\n";
  return 0;
}
