#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "obs/event_fanout.h"
#include "obs/node_stats.h"
#include "obs/run_manifest.h"
#include "obs/trace_replay.h"
#include "obs/trace_sink.h"
#include "scenario/config.h"
#include "scenario/experiment.h"
#include "scenario/report.h"
#include "scenario/scenario.h"
#include "stats/metrics.h"
#include "test_helpers.h"

// --- allocation accounting ---------------------------------------------------
// The empty-fanout dispatch path must never allocate; we count by replacing
// the global allocator for this test binary. Sanitizer builds interpose their
// own allocator, so the counting (and the test that uses it) is compiled out.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define DTNIC_COUNT_ALLOCS 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define DTNIC_COUNT_ALLOCS 0
#else
#define DTNIC_COUNT_ALLOCS 1
#endif
#else
#define DTNIC_COUNT_ALLOCS 1
#endif

#if DTNIC_COUNT_ALLOCS
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#endif

namespace dtnic {
namespace {

using routing::AcceptDecision;
using routing::DropReason;
using routing::MessageId;
using routing::NodeId;
using routing::TransferRole;
using util::SimTime;

// --- fan-out dispatch --------------------------------------------------------

/// Sink that appends "<tag><event>" to a shared log, proving dispatch order.
class OrderSink final : public routing::RoutingEvents {
 public:
  OrderSink(std::string tag, std::vector<std::string>& log) : tag_(std::move(tag)), log_(log) {}
  void on_created(const msg::Message&) override { log_.push_back(tag_ + ":created"); }
  void on_tokens_paid(NodeId, NodeId, double) override { log_.push_back(tag_ + ":tokens"); }

 private:
  std::string tag_;
  std::vector<std::string>& log_;
};

TEST(EventFanout, DispatchesInRegistrationOrder) {
  obs::EventFanout fanout;
  std::vector<std::string> log;
  OrderSink first("a", log);
  OrderSink second("b", log);
  auto ha = fanout.add_sink(first);
  auto hb = fanout.add_sink(second);
  ASSERT_EQ(fanout.size(), 2u);

  msg::KeywordTable keywords;
  test::MessageFactory factory(keywords);
  const msg::Message m = factory.make(NodeId(0), {"fire"});
  fanout.on_created(m);
  fanout.on_tokens_paid(NodeId(0), NodeId(1), 1.0);
  EXPECT_EQ(log, (std::vector<std::string>{"a:created", "b:created", "a:tokens", "b:tokens"}));

  // Resetting a handle unregisters just that sink.
  ha.reset();
  EXPECT_FALSE(ha.active());
  EXPECT_TRUE(hb.active());
  log.clear();
  fanout.on_tokens_paid(NodeId(0), NodeId(1), 1.0);
  EXPECT_EQ(log, std::vector<std::string>{"b:tokens"});
}

TEST(EventFanout, HandleOutlivesFanoutSafely) {
  obs::SinkHandle handle;
  stats::MetricsCollector metrics;
  {
    obs::EventFanout fanout;
    handle = fanout.add_sink(metrics);
    EXPECT_TRUE(handle.active());
  }
  // The fan-out died first: the handle degrades to an inactive no-op.
  EXPECT_FALSE(handle.active());
  handle.reset();
}

TEST(EventFanout, OwnedSinkLivesWithFanout) {
  obs::EventFanout fanout;
  auto owned = std::make_unique<stats::MetricsCollector>();
  stats::MetricsCollector* raw = owned.get();
  routing::RoutingEvents& registered = fanout.add_owned_sink(std::move(owned));
  EXPECT_EQ(&registered, raw);
  msg::KeywordTable keywords;
  test::MessageFactory factory(keywords);
  fanout.on_created(factory.make(NodeId(0), {"x"}));
  EXPECT_EQ(raw->created(), 1u);
  fanout.remove_sink(registered);  // destroys the owned sink
  EXPECT_TRUE(fanout.empty());
}

#if DTNIC_COUNT_ALLOCS
TEST(EventFanout, EmptyDispatchDoesNotAllocate) {
  obs::EventFanout fanout;
  msg::KeywordTable keywords;
  test::MessageFactory factory(keywords);
  const msg::Message m = factory.make(NodeId(0), {"fire"});

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    fanout.on_created(m);
    fanout.on_transfer_started(NodeId(0), NodeId(1), m, TransferRole::kRelay);
    fanout.on_relayed(NodeId(0), NodeId(1), m);
    fanout.on_delivered(NodeId(0), NodeId(1), m);
    fanout.on_refused(NodeId(0), NodeId(1), m, AcceptDecision::kRefused);
    fanout.on_aborted(NodeId(0), NodeId(1), m.id());
    fanout.on_dropped(NodeId(0), m, DropReason::kTtlExpired);
    fanout.on_tokens_paid(NodeId(0), NodeId(1), 1.0);
    fanout.on_reputation_updated(NodeId(0), NodeId(1), 3.0);
    fanout.on_enriched(NodeId(0), m, 1);
  }
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), before);

  // A registered pure-counter sink stays allocation-free too.
  stats::MetricsCollector metrics;
  auto handle = fanout.add_sink(metrics);
  fanout.on_tokens_paid(NodeId(0), NodeId(1), 1.0);  // warm-up
  const std::uint64_t with_sink = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    fanout.on_tokens_paid(NodeId(0), NodeId(1), 1.0);
    fanout.on_relayed(NodeId(0), NodeId(1), m);
  }
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), with_sink);
}
#endif

/// Property: routing a fixed event sequence through the fan-out produces a
/// MetricsCollector state identical to feeding the collector directly.
TEST(EventFanout, MetricsThroughFanoutMatchesDirect) {
  msg::KeywordTable keywords;
  test::MessageFactory factory(keywords);

  stats::MetricsCollector direct;
  stats::MetricsCollector fanned;
  obs::EventFanout fanout;
  auto handle = fanout.add_sink(fanned);

  std::vector<msg::Message> messages;
  for (int i = 0; i < 64; ++i) {
    auto m = factory.make(NodeId(static_cast<std::uint32_t>(i % 7)), {"k" + std::to_string(i % 5)},
                          SimTime::seconds(i), test::kMB,
                          static_cast<msg::Priority>(1 + (i % 3)), 0.5 + 0.01 * (i % 40));
    m.record_hop(NodeId(static_cast<std::uint32_t>((i + 1) % 7)), SimTime::seconds(i + 10));
    messages.push_back(std::move(m));
  }
  const auto drive = [&](routing::RoutingEvents& sink) {
    for (const msg::Message& m : messages) {
      sink.on_created(m);
      sink.on_transfer_started(m.source(), NodeId(9), m, TransferRole::kRelay);
      sink.on_relayed(m.source(), NodeId(9), m);
      sink.on_delivered(NodeId(9), NodeId(10), m);
      sink.on_refused(m.source(), NodeId(9), m, AcceptDecision::kDuplicate);
      sink.on_tokens_paid(NodeId(9), m.source(), 0.25 * m.quality());
      sink.on_reputation_updated(NodeId(9), m.source(), 2.0 + m.quality());
      sink.on_enriched(NodeId(9), m, 2);
      sink.on_dropped(m.source(), m, DropReason::kBufferFull);
      sink.on_aborted(m.source(), NodeId(9), m.id());
    }
  };
  drive(direct);
  drive(fanout);

  EXPECT_EQ(fanned.created(), direct.created());
  EXPECT_EQ(fanned.delivered_unique(), direct.delivered_unique());
  EXPECT_EQ(fanned.mdr(), direct.mdr());
  EXPECT_EQ(fanned.traffic(), direct.traffic());
  EXPECT_EQ(fanned.relay_arrivals(), direct.relay_arrivals());
  EXPECT_EQ(fanned.deliveries_total(), direct.deliveries_total());
  EXPECT_EQ(fanned.refused_duplicates(), direct.refused_duplicates());
  EXPECT_EQ(fanned.tokens_paid_total(), direct.tokens_paid_total());
  EXPECT_EQ(fanned.payments(), direct.payments());
  EXPECT_EQ(fanned.reputation_updates(), direct.reputation_updates());
  EXPECT_EQ(fanned.enrichments(), direct.enrichments());
  EXPECT_EQ(fanned.enrich_tags(), direct.enrich_tags());
  EXPECT_EQ(fanned.dropped_buffer(), direct.dropped_buffer());
  EXPECT_EQ(fanned.aborted(), direct.aborted());
  EXPECT_EQ(fanned.mean_delivery_hops(), direct.mean_delivery_hops());
  EXPECT_EQ(fanned.mean_delivery_latency_s(), direct.mean_delivery_latency_s());
}

// --- trace sink --------------------------------------------------------------

TEST(TraceSink, GoldenJsonl) {
  std::ostringstream os;
  obs::TraceOptions opt;
  double now = 0.0;
  opt.clock = [&now] { return SimTime(now); };
  opt.seed = 7;
  opt.scheme = "incentive";
  {
    obs::TraceSink sink(os, opt);
    msg::KeywordTable keywords;
    test::MessageFactory factory(keywords);
    msg::Message m = factory.make(NodeId(3), {"fire", "aid"}, SimTime::zero(), 1024,
                                  msg::Priority::kHigh, 0.5);
    now = 1.5;
    sink.on_created(m);
    sink.on_transfer_started(NodeId(3), NodeId(4), m, TransferRole::kDestination);
    now = 2.25;
    m.record_hop(NodeId(4), SimTime(2.25));
    sink.on_delivered(NodeId(3), NodeId(4), m);
    sink.on_refused(NodeId(4), NodeId(3), m, AcceptDecision::kNoTokens);
    sink.on_dropped(NodeId(3), m, DropReason::kTtlExpired);
    sink.on_tokens_paid(NodeId(4), NodeId(3), 0.5);
    sink.on_reputation_updated(NodeId(4), NodeId(3), 3.25);
    sink.on_enriched(NodeId(4), m, 2);
    sink.on_aborted(NodeId(3), NodeId(4), m.id());
    EXPECT_EQ(sink.records(), 10u);
  }
  EXPECT_EQ(os.str(),
            "{\"schema\":\"dtnic.trace.v1\",\"seed\":7,\"scheme\":\"incentive\","
            "\"sample_every\":1}\n"
            "{\"t\":1.5,\"ev\":\"created\",\"msg\":0,\"node\":3,\"prio\":1,\"size\":1024,"
            "\"quality\":0.5,\"kw\":2}\n"
            "{\"t\":1.5,\"ev\":\"transfer\",\"from\":3,\"to\":4,\"msg\":0,"
            "\"role\":\"destination\"}\n"
            "{\"t\":2.25,\"ev\":\"delivered\",\"from\":3,\"to\":4,\"msg\":0,\"prio\":1,"
            "\"hops\":1,\"latency_s\":2.25}\n"
            "{\"t\":2.25,\"ev\":\"refused\",\"from\":4,\"to\":3,\"msg\":0,"
            "\"why\":\"no-tokens\"}\n"
            "{\"t\":2.25,\"ev\":\"dropped\",\"node\":3,\"msg\":0,\"why\":\"ttl-expired\"}\n"
            "{\"t\":2.25,\"ev\":\"tokens\",\"from\":4,\"to\":3,\"amount\":0.5}\n"
            "{\"t\":2.25,\"ev\":\"reputation\",\"node\":4,\"about\":3,\"rating\":3.25}\n"
            "{\"t\":2.25,\"ev\":\"enriched\",\"node\":4,\"msg\":0,\"tags\":2}\n"
            "{\"t\":2.25,\"ev\":\"aborted\",\"from\":3,\"to\":4,\"msg\":0}\n");
}

TEST(TraceSink, FiltersAndSamples) {
  std::ostringstream os;
  obs::TraceOptions opt;
  opt.events = obs::trace_bit(obs::TraceEvent::kTokens);
  opt.sample_every = 3;
  {
    obs::TraceSink sink(os, opt);
    msg::KeywordTable keywords;
    test::MessageFactory factory(keywords);
    const msg::Message m = factory.make(NodeId(0), {"x"});
    for (int i = 0; i < 9; ++i) {
      sink.on_tokens_paid(NodeId(0), NodeId(1), static_cast<double>(i));
      sink.on_created(m);  // masked out entirely
    }
    // Header + tokens records 0, 3 and 6.
    EXPECT_EQ(sink.records(), 4u);
  }
  const std::string out = os.str();
  EXPECT_EQ(out.find("created"), std::string::npos);
  EXPECT_NE(out.find("\"amount\":0}"), std::string::npos);
  EXPECT_NE(out.find("\"amount\":3}"), std::string::npos);
  EXPECT_NE(out.find("\"amount\":6}"), std::string::npos);
  EXPECT_EQ(out.find("\"amount\":1}"), std::string::npos);
}

TEST(TraceSink, SurfacesStreamFailure) {
  std::ostringstream os;
  obs::TraceOptions opt;
  opt.clock = [] { return SimTime::zero(); };
  obs::TraceSink sink(os, opt);
  EXPECT_TRUE(sink.ok());

  sink.on_tokens_paid(NodeId(0), NodeId(1), 1.0);
  sink.flush();
  EXPECT_TRUE(sink.ok());

  // Disk full / closed pipe: the stream starts failing mid-run. The sink must
  // report it rather than silently truncating the trace.
  os.setstate(std::ios::failbit);
  sink.on_tokens_paid(NodeId(0), NodeId(1), 2.0);
  sink.flush();
  EXPECT_FALSE(sink.ok());

  // Latched: a stream that recovers does not un-report the lost records.
  os.clear();
  sink.flush();
  EXPECT_FALSE(sink.ok());
}

TEST(Reporter, FlushOkReflectsStreamState) {
  std::ostringstream os;
  scenario::Reporter good(os, scenario::ReportFormat::kJson);
  scenario::RunResult r;
  r.created = 1;
  good.run_report(r);
  EXPECT_TRUE(good.flush_ok());

  os.setstate(std::ios::badbit);
  scenario::Reporter bad(os, scenario::ReportFormat::kJson);
  bad.run_report(r);
  EXPECT_FALSE(bad.flush_ok());
}

// --- trace replay ------------------------------------------------------------

TEST(TraceReplay, ReproducesLiveMetricsExactly) {
  scenario::ScenarioConfig cfg = scenario::ScenarioConfig::paper_defaults();
  cfg.num_nodes = 24;
  cfg.sim_hours = 0.25;
  cfg.area_side_m = 500.0;
  cfg.messages_per_node_per_hour = 6.0;  // dense workload in a short horizon
  cfg.seed = 11;

  std::ostringstream trace;
  scenario::Scenario scenario(cfg);
  obs::TraceOptions opt;
  opt.clock = [&sim = scenario.simulator()] { return sim.now(); };
  opt.seed = cfg.seed;
  opt.scheme = scenario::scheme_name(cfg.scheme);
  obs::TraceSink sink(trace, opt);
  auto handle = scenario.events().add_sink(sink);
  (void)scenario.run();
  handle.reset();

  const stats::MetricsCollector& live = scenario.metrics();
  ASSERT_GT(live.created(), 0u);

  stats::MetricsCollector replayed;
  std::istringstream in(trace.str());
  const obs::TraceReplayStats stats = obs::replay_trace(in, replayed);
  EXPECT_EQ(stats.schema, "dtnic.trace.v1");
  EXPECT_EQ(stats.seed, cfg.seed);
  EXPECT_GT(stats.events, 0u);

  // Bit-exact parity: every counter and every derived double matches the
  // live collector (to_chars round-trip preserves the exact latency bits).
  EXPECT_EQ(replayed.created(), live.created());
  EXPECT_EQ(replayed.delivered_unique(), live.delivered_unique());
  EXPECT_EQ(replayed.mdr(), live.mdr());
  EXPECT_EQ(replayed.mdr_for(msg::Priority::kHigh), live.mdr_for(msg::Priority::kHigh));
  EXPECT_EQ(replayed.mdr_for(msg::Priority::kMedium), live.mdr_for(msg::Priority::kMedium));
  EXPECT_EQ(replayed.mdr_for(msg::Priority::kLow), live.mdr_for(msg::Priority::kLow));
  EXPECT_EQ(replayed.traffic(), live.traffic());
  EXPECT_EQ(replayed.relay_arrivals(), live.relay_arrivals());
  EXPECT_EQ(replayed.deliveries_total(), live.deliveries_total());
  EXPECT_EQ(replayed.refused_no_tokens(), live.refused_no_tokens());
  EXPECT_EQ(replayed.refused_untrusted(), live.refused_untrusted());
  EXPECT_EQ(replayed.refused_duplicates(), live.refused_duplicates());
  EXPECT_EQ(replayed.aborted(), live.aborted());
  EXPECT_EQ(replayed.dropped_buffer(), live.dropped_buffer());
  EXPECT_EQ(replayed.dropped_ttl(), live.dropped_ttl());
  EXPECT_EQ(replayed.tokens_paid_total(), live.tokens_paid_total());
  EXPECT_EQ(replayed.payments(), live.payments());
  EXPECT_EQ(replayed.reputation_updates(), live.reputation_updates());
  EXPECT_EQ(replayed.enrichments(), live.enrichments());
  EXPECT_EQ(replayed.enrich_tags(), live.enrich_tags());
  EXPECT_EQ(replayed.mean_delivery_hops(), live.mean_delivery_hops());
  EXPECT_EQ(replayed.mean_delivery_latency_s(), live.mean_delivery_latency_s());
}

TEST(TraceReplay, RejectsUnknownSchemaAndEvents) {
  stats::MetricsCollector sink;
  {
    std::istringstream in("{\"schema\":\"dtnic.trace.v999\",\"seed\":1}\n");
    EXPECT_THROW(obs::replay_trace(in, sink), std::runtime_error);
  }
  {
    std::istringstream in(
        "{\"schema\":\"dtnic.trace.v1\",\"seed\":1}\n"
        "{\"t\":0,\"ev\":\"warp\"}\n");
    EXPECT_THROW(obs::replay_trace(in, sink), std::runtime_error);
  }
}

// --- per-node stats ----------------------------------------------------------

TEST(NodeStats, TracksPerNodeEconomy) {
  obs::NodeStatsCollector stats;
  msg::KeywordTable keywords;
  test::MessageFactory factory(keywords);
  msg::Message m = factory.make(NodeId(0), {"fire"});

  stats.on_created(m);
  stats.on_relayed(NodeId(0), NodeId(1), m);
  stats.on_delivered(NodeId(1), NodeId(2), m);
  stats.on_tokens_paid(NodeId(2), NodeId(1), 1.5);
  stats.on_refused(NodeId(0), NodeId(2), m, AcceptDecision::kNoTokens);
  stats.on_dropped(NodeId(1), m, DropReason::kBufferFull);
  stats.on_aborted(NodeId(0), NodeId(1), m.id());
  stats.on_enriched(NodeId(1), m, 3);
  stats.on_reputation_updated(NodeId(1), NodeId(0), 4.0);
  stats.on_reputation_updated(NodeId(2), NodeId(0), 2.0);
  stats.on_reputation_updated(NodeId(1), NodeId(0), 3.0);  // latest opinion wins

  ASSERT_EQ(stats.node_count(), 3u);
  const auto n0 = stats.of(NodeId(0));
  EXPECT_EQ(n0.originated, 1u);
  EXPECT_EQ(n0.aborted, 1u);
  EXPECT_TRUE(n0.rated);
  EXPECT_EQ(n0.reputation, (3.0 + 2.0) / 2.0);

  const auto n1 = stats.of(NodeId(1));
  EXPECT_EQ(n1.relays_in, 1u);
  EXPECT_EQ(n1.deliveries_made, 1u);
  EXPECT_EQ(n1.tokens_earned, 1.5);
  EXPECT_EQ(n1.payments_received, 1u);
  EXPECT_EQ(n1.dropped, 1u);
  EXPECT_EQ(n1.enrich_tags, 3u);
  EXPECT_FALSE(n1.rated);

  const auto n2 = stats.of(NodeId(2));
  EXPECT_EQ(n2.delivered_to, 1u);
  EXPECT_EQ(n2.tokens_spent, 1.5);
  EXPECT_EQ(n2.payments_made, 1u);
  EXPECT_EQ(n2.refusals_no_tokens, 1u);

  std::ostringstream csv;
  stats.write_csv(csv);
  const std::string text = csv.str();
  EXPECT_NE(text.find("node,originated,"), std::string::npos);
  EXPECT_NE(text.find("\n0,1,"), std::string::npos);

  std::ostringstream json;
  stats.write_json(json);
  EXPECT_NE(json.str().find("\"schema\":\"dtnic.node_stats.v1\""), std::string::npos);
  EXPECT_NE(json.str().find("\"reputation\":null"), std::string::npos);
}

// --- run manifest ------------------------------------------------------------

TEST(RunManifest, WritesSchemaAndConfigEcho) {
  obs::RunManifest m;
  m.tool = "obs_test";
  m.scheme = "incentive";
  m.seeds = {1, 2, 3};
  m.git_revision = "abc123";
  m.config_text = "nodes = 60\n# comment\nsim_hours = 3\n";
  m.metrics = {{"mdr", 0.75}};
  m.timings_ms = {{"wall", 12.5}};
  m.artifacts = {{"trace", "out/trace.jsonl"}};
  std::ostringstream os;
  obs::write_manifest(os, m);
  const std::string text = os.str();
  EXPECT_NE(text.find("\"schema\": \"dtnic.manifest.v1\""), std::string::npos);
  EXPECT_NE(text.find("\"tool\": \"obs_test\""), std::string::npos);
  EXPECT_NE(text.find("\"seeds\": [1, 2, 3]"), std::string::npos);
  EXPECT_NE(text.find("\"nodes\": \"60\""), std::string::npos);
  EXPECT_NE(text.find("\"sim_hours\": \"3\""), std::string::npos);
  EXPECT_EQ(text.find("comment"), std::string::npos);
  EXPECT_NE(text.find("\"mdr\": 0.75"), std::string::npos);
  EXPECT_NE(text.find("\"trace\": \"out/trace.jsonl\""), std::string::npos);
}

TEST(RunManifest, EchoesArtifactErrors) {
  obs::RunManifest m;
  m.tool = "obs_test";
  std::ostringstream clean;
  obs::write_manifest(clean, m);
  EXPECT_EQ(clean.str().find("artifact_errors"), std::string::npos);

  m.artifact_errors = {"trace: write failed (truncated output)",
                       "node_stats: cannot open out/stats.json"};
  std::ostringstream os;
  obs::write_manifest(os, m);
  const std::string text = os.str();
  EXPECT_NE(text.find("\"artifact_errors\""), std::string::npos);
  EXPECT_NE(text.find("trace: write failed (truncated output)"), std::string::npos);
  EXPECT_NE(text.find("node_stats: cannot open out/stats.json"), std::string::npos);
}

// --- per-run observers -------------------------------------------------------

TEST(ExperimentObserver, FactoryRunsOncePerSeed) {
  scenario::ScenarioConfig cfg = scenario::ScenarioConfig::paper_defaults();
  cfg.num_nodes = 16;
  cfg.sim_hours = 0.1;
  cfg.area_side_m = 400.0;
  cfg.messages_per_node_per_hour = 10.0;  // guarantee traffic in 6 sim-minutes

  struct CountingObserver final : scenario::RunObserver {
    explicit CountingObserver(std::atomic<int>& finished) : finished_(finished) {}
    void on_finish(scenario::Scenario&, scenario::RunResult& result) override {
      EXPECT_GT(result.created, 0u);
      finished_.fetch_add(1);
    }
    std::atomic<int>& finished_;
  };

  std::atomic<int> finished{0};
  std::vector<std::uint64_t> seeds_seen;
  const scenario::ExperimentRunner runner(3);
  const auto agg = runner.run_serial(
      cfg, [&](scenario::Scenario& s, std::uint64_t seed) -> std::unique_ptr<scenario::RunObserver> {
        EXPECT_TRUE(s.events().size() >= 1);  // metrics is already registered
        seeds_seen.push_back(seed);
        return std::make_unique<CountingObserver>(finished);
      });
  EXPECT_EQ(agg.runs, 3u);
  EXPECT_EQ(finished.load(), 3);
  EXPECT_EQ(seeds_seen, (std::vector<std::uint64_t>{1, 2, 3}));
}

}  // namespace
}  // namespace dtnic
