#pragma once

#include <cstdint>

#include "msg/message.h"
#include "net/radio.h"
#include "util/sim_time.h"

/// \file incentive.h
/// The credit side of the incentive mechanism (§3.2): pure functions that
/// compute the software-factor promise (Algorithm 3), the hardware-factor
/// promise (Friis), the total promise, and the enrichment tag reward. The
/// IncentiveRouter wires them into the contact protocol.

namespace dtnic::core {

struct IncentiveParams {
  /// Tokens every node starts with (Table 5.1: 200).
  double initial_tokens = 200.0;
  /// I_m: the maximum incentive for one message, in tokens.
  double max_incentive = 10.0;
  /// Mean tag weight above which a receiving relay pre-pays the sender a
  /// fraction of the promise (Table 5.1: threshold for relay = 0.8).
  double relay_threshold = 0.8;
  /// Fraction of the promise pre-paid in that case.
  double relay_prepay_fraction = 0.25;
  /// z in I_tk = z·I_m: reward per relevant enrichment tag.
  double tag_reward_z = 0.1;
  /// I_c: cap on the total enrichment reward per message, in tokens.
  double tag_reward_cap = 2.0;
  /// c in I_h = c·(P_t [+ P_r])·t.
  double hardware_c = 1.0;
};

/// Inputs for the software-factor formula, gathered by the sender u about
/// the candidate receiver v (Algorithm 3 and Table 3.1).
struct SoftwareFactors {
  /// Σw: sum of v's interest weights over the message keywords, as learned
  /// from v's exchanged TSR.
  double sum_weights_v = 0.0;
  /// w_m: the maximum such sum among all devices currently connected to u.
  double max_sum_weights = 0.0;
  int rank_u = 1;  ///< R_u: sender's role (1 = top of hierarchy)
  int rank_v = 1;  ///< R_v: receiver's role
  msg::Priority priority = msg::Priority::kMedium;  ///< P_s, set by the source
  std::uint64_t size_bytes = 0;        ///< S
  std::uint64_t max_size_bytes = 1;    ///< S_m among u's carried messages
  double quality = 1.0;                ///< Q
  double max_quality = 1.0;            ///< Q_m among u's carried messages
};

/// I_s of Algorithm 3, clamped to [0, I_m].
///
/// Special case (first branch): when v cannot deliver now (P_v = 0), the
/// sender u sits higher in the role hierarchy (R_u < R_v), and the message
/// is high priority, the maximum incentive is promised. Otherwise
///   I_s = (¼·(S/S_m + Q/Q_m) + ½·(P_v/(R_u·P_s))) · I_m
/// with P_v = Σw / w_m (the thesis' `P_u` is read as P_s; DESIGN.md §5.1).
[[nodiscard]] double software_incentive(const IncentiveParams& params,
                                        const SoftwareFactors& f);

/// I_h of §3.2: c·P_t·t when the sender originated the message, and
/// c·(P_t + P_r)·t for a relay, P_r from the Friis model at the contact
/// distance. \p duration is the (simulated) transfer time.
[[nodiscard]] double hardware_incentive(const IncentiveParams& params,
                                        const net::RadioParams& radio, bool sender_is_source,
                                        double distance_m, util::SimTime duration);

/// Total promise I = min(I_s + I_h, I_m).
[[nodiscard]] double total_promise(const IncentiveParams& params, double software,
                                   double hardware);

/// Enrichment reward I_t = min(Σ z·I_m, I_c) for \p relevant_tags relevant
/// added tags.
[[nodiscard]] double tag_reward(const IncentiveParams& params, int relevant_tags);

}  // namespace dtnic::core
