#include "mobility/random_walk.h"

#include <cmath>
#include <numbers>

#include "util/assert.h"

namespace dtnic::mobility {

RandomWalk::RandomWalk(const RandomWalkParams& params, util::Rng rng)
    : params_(params), rng_(rng) {
  DTNIC_REQUIRE(params.area.width > 0.0 && params.area.height > 0.0);
  DTNIC_REQUIRE(params.min_speed_mps > 0.0);
  DTNIC_REQUIRE(params.max_speed_mps >= params.min_speed_mps);
  DTNIC_REQUIRE(params.step_distance_m > 0.0);
  from_ = {rng_.uniform(0.0, params_.area.width), rng_.uniform(0.0, params_.area.height)};
  to_ = from_;
}

void RandomWalk::advance_leg() {
  from_ = to_;
  const double angle = rng_.uniform(0.0, 2.0 * std::numbers::pi);
  const double dist = rng_.uniform(0.0, params_.step_distance_m);
  to_ = params_.area.clamp(from_ + util::Vec2{std::cos(angle), std::sin(angle)} * dist);
  const double speed = rng_.uniform(params_.min_speed_mps, params_.max_speed_mps);
  leg_start_s_ = pause_until_s_;
  arrive_s_ = leg_start_s_ + util::distance(from_, to_) / speed;
  pause_until_s_ = arrive_s_ + rng_.uniform(params_.min_pause_s, params_.max_pause_s);
}

util::Vec2 RandomWalk::position_at(util::SimTime t) {
  const double ts = t.sec();
  while (ts > pause_until_s_) advance_leg();
  if (ts >= arrive_s_) return to_;
  if (ts <= leg_start_s_) return from_;
  const double frac = (ts - leg_start_s_) / (arrive_s_ - leg_start_s_);
  return util::lerp(from_, to_, frac);
}

}  // namespace dtnic::mobility
