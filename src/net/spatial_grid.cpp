#include "net/spatial_grid.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace dtnic::net {

namespace {

[[nodiscard]] std::uint64_t pair_key(const SpatialGrid::Pair& p) {
  return (static_cast<std::uint64_t>(p.a.value()) << 32) | p.b.value();
}

}  // namespace

SpatialGrid::SpatialGrid(double cell_size)
    : cell_size_(cell_size), inv_cell_size_(1.0 / cell_size) {
  DTNIC_REQUIRE_MSG(cell_size > 0.0, "cell size must be positive");
}

void SpatialGrid::clear() {
  pool_.clear();
  free_cells_.clear();
  cell_index_.clear();
  slots_.clear();
  positions_.clear();
  slot_of_.clear();
  max_id_ = 0;
}

std::int32_t SpatialGrid::coord(double v) const {
  return static_cast<std::int32_t>(std::floor(v * inv_cell_size_));
}

/// Sort pairs by (a, b). Simulations use small dense node ids, so the common
/// case is one id-indexed counting pass (the bucket array stays L1-resident)
/// followed by insertion sort of the tiny equal-a runs — far cheaper than a
/// comparison sort of the effectively random pool-order input. Sparse id
/// spaces fall back to std::sort on the packed key.
void SpatialGrid::sort_pairs(std::vector<Pair>& v, std::vector<Pair>& scratch,
                             std::vector<std::uint32_t>& offsets) const {
  const std::size_t n = v.size();
  if (n < 2) return;
  const std::size_t buckets = static_cast<std::size_t>(max_id_) + 2;
  if (n <= 64 || buckets > std::max<std::size_t>(4096, 16 * slots_.size())) {
    std::sort(v.begin(), v.end(),
              [](const Pair& lhs, const Pair& rhs) { return pair_key(lhs) < pair_key(rhs); });
    return;
  }
  offsets.assign(buckets, 0);
  for (const Pair& p : v) ++offsets[p.a.value() + 1];
  for (std::size_t i = 1; i < buckets; ++i) offsets[i] += offsets[i - 1];
  scratch.resize(n);
  for (const Pair& p : v) scratch[offsets[p.a.value()]++] = p;
  // After the scatter, offsets[a] is the end of a's run; order each run by
  // b (runs hold the handful of neighbors one node has in range).
  std::size_t begin = 0;
  for (std::size_t a = 0; a + 1 < buckets; ++a) {
    const std::size_t end = offsets[a];
    for (std::size_t i = begin + 1; i < end; ++i) {
      const Pair p = scratch[i];
      std::size_t j = i;
      while (j > begin && scratch[j - 1].b > p.b) {
        scratch[j] = scratch[j - 1];
        --j;
      }
      scratch[j] = p;
    }
    begin = end;
  }
  v.swap(scratch);
}

std::uint32_t SpatialGrid::cell_at(std::int32_t cx, std::int32_t cy) {
  const auto [it, created] = cell_index_.try_emplace(key_of(cx, cy), 0);
  if (!created) return it->second;
  std::uint32_t index;
  if (!free_cells_.empty()) {
    index = free_cells_.back();
    free_cells_.pop_back();
  } else {
    index = static_cast<std::uint32_t>(pool_.size());
    pool_.emplace_back();
  }
  it->second = index;
  Cell& cell = pool_[index];
  cell.cx = cx;
  cell.cy = cy;
  cell.count = 0;
  // Link the half-neighborhood both ways so pair enumeration and pruning
  // can walk pool indices instead of doing hash lookups per cell per scan.
  for (int k = 0; k < 4; ++k) {
    cell.half[k] = -1;
    cell.rev[k] = -1;
    if (const auto fwd = cell_index_.find(key_of(cx + kHalf[k][0], cy + kHalf[k][1]));
        fwd != cell_index_.end()) {
      cell.half[k] = static_cast<std::int32_t>(fwd->second);
      pool_[fwd->second].rev[k] = static_cast<std::int32_t>(index);
    }
    if (const auto rev = cell_index_.find(key_of(cx - kHalf[k][0], cy - kHalf[k][1]));
        rev != cell_index_.end()) {
      cell.rev[k] = static_cast<std::int32_t>(rev->second);
      pool_[rev->second].half[k] = static_cast<std::int32_t>(index);
    }
  }
  return index;
}

void SpatialGrid::place(std::uint32_t slot, std::uint32_t cell_index) {
  Cell& cell = pool_[cell_index];
  Slot& s = slots_[slot];
  s.cell = static_cast<std::int32_t>(cell_index);
  s.index = cell.count;
  s.cx = cell.cx;
  s.cy = cell.cy;
  const Entry entry{s.id, slot};
  if (cell.count < kInline) {
    cell.items[cell.count] = entry;
  } else {
    cell.overflow.push_back(entry);
  }
  ++cell.count;
}

void SpatialGrid::unplace(std::uint32_t slot) {
  const std::int32_t cell_index = slots_[slot].cell;
  Cell& cell = pool_[static_cast<std::uint32_t>(cell_index)];
  const std::uint32_t index = slots_[slot].index;
  const std::uint32_t last = cell.count - 1;
  if (index != last) {
    const Entry moved = entry_ref(cell, last);
    entry_ref(cell, index) = moved;
    slots_[moved.slot].index = index;
  }
  if (last >= kInline) cell.overflow.pop_back();
  cell.count = last;
  if (last == 0) {
    // Prune: unlink the whole neighborhood through the stored reciprocal
    // indices, then recycle the pool entry.
    for (int k = 0; k < 4; ++k) {
      if (cell.half[k] >= 0) pool_[static_cast<std::uint32_t>(cell.half[k])].rev[k] = -1;
      if (cell.rev[k] >= 0) pool_[static_cast<std::uint32_t>(cell.rev[k])].half[k] = -1;
    }
    cell_index_.erase(key_of(cell.cx, cell.cy));
    free_cells_.push_back(static_cast<std::uint32_t>(cell_index));
  }
}

std::size_t SpatialGrid::insert(util::NodeId id, util::Vec2 position) {
  DTNIC_REQUIRE(id.valid());
  DTNIC_REQUIRE_MSG(!slot_of_.count(id), "node already in grid");
  const auto slot = static_cast<std::uint32_t>(slots_.size());
  slots_.push_back(Slot{id, -1, 0, 0, 0});
  positions_.push_back(position);
  slot_of_.emplace(id, slot);
  max_id_ = std::max(max_id_, id.value());
  place(slot, cell_at(coord(position.x), coord(position.y)));
  return slot;
}

void SpatialGrid::update(util::NodeId id, util::Vec2 position) {
  const auto it = slot_of_.find(id);
  DTNIC_REQUIRE_MSG(it != slot_of_.end(), "node not in grid");
  update_slot(it->second, position);
}

void SpatialGrid::update_slot(std::size_t slot, util::Vec2 position) {
  if (stage_position(slot, position)) commit_move(slot);
}

bool SpatialGrid::stage_position(std::size_t slot, util::Vec2 position) {
  DTNIC_ASSERT(slot < slots_.size());
  const Slot& s = slots_[slot];
  positions_[slot] = position;
  // Same cell: the dense write above is the whole update — a low-churn scan
  // tick streams through slots_/positions_ without touching the pool.
  return coord(position.x) != s.cx || coord(position.y) != s.cy;
}

void SpatialGrid::commit_move(std::size_t slot) {
  const util::Vec2 position = positions_[slot];
  unplace(static_cast<std::uint32_t>(slot));
  place(static_cast<std::uint32_t>(slot), cell_at(coord(position.x), coord(position.y)));
}

std::vector<util::NodeId> SpatialGrid::neighbors_of(util::Vec2 center, double radius,
                                                    util::NodeId self) const {
  std::vector<util::NodeId> out;
  const double r2 = radius * radius;
  const std::int32_t cx = coord(center.x);
  const std::int32_t cy = coord(center.y);
  for (int dx = -1; dx <= 1; ++dx) {
    for (int dy = -1; dy <= 1; ++dy) {
      const auto it = cell_index_.find(key_of(cx + dx, cy + dy));
      if (it == cell_index_.end()) continue;
      const Cell& cell = pool_[it->second];
      for (std::uint32_t i = 0; i < cell.count; ++i) {
        const Entry& item = entry_ref(cell, i);
        if (item.id == self) continue;
        if (util::distance_sq(center, positions_[item.slot]) <= r2) out.push_back(item.id);
      }
    }
  }
  return out;
}

template <typename CellFilter>
void SpatialGrid::emit_pairs(double radius, std::vector<Pair>& out, CellFilter&& want_cell) const {
  DTNIC_REQUIRE_MSG(radius <= cell_size_, "query radius exceeds grid cell size");
  out.clear();
  const double r2 = radius * radius;
  const util::Vec2* const positions = positions_.data();
  auto emit = [&out, r2, positions](const Entry& lhs, const Entry& rhs) {
    const double d2 = util::distance_sq(positions[lhs.slot], positions[rhs.slot]);
    if (d2 > r2) return;
    const auto lo = std::min(lhs.id, rhs.id);
    const auto hi = std::max(lhs.id, rhs.id);
    out.push_back(Pair{lo, hi, std::sqrt(d2)});
  };
  // Freed pool entries keep count == 0, so one dense sweep visits exactly
  // the live cells without consulting the hash map at all. A cell emits its
  // interior pairs plus all pairs against its half-neighborhood, so pair
  // ownership follows cell ownership: each unordered pair is emitted by
  // exactly one cell, and filtering cells partitions the pair set.
  for (const Cell& cell : pool_) {
    const std::uint32_t n = cell.count;
    if (n == 0 || !want_cell(cell)) continue;
    for (std::uint32_t i = 0; i < n; ++i) {
      const Entry& mine = entry_ref(cell, i);
      for (std::uint32_t j = i + 1; j < n; ++j) emit(mine, entry_ref(cell, j));
    }
    for (const std::int32_t other_index : cell.half) {
      if (other_index < 0) continue;
      const Cell& other = pool_[static_cast<std::uint32_t>(other_index)];
      for (std::uint32_t i = 0; i < n; ++i) {
        const Entry& mine = entry_ref(cell, i);
        for (std::uint32_t j = 0; j < other.count; ++j) emit(mine, entry_ref(other, j));
      }
    }
  }
}

void SpatialGrid::pairs_within(double radius, std::vector<Pair>& out) const {
  emit_pairs(radius, out, [](const Cell&) { return true; });
  // Pool order leaks into the emission order above; sorting by (a, b) makes
  // the output — and every event sequence derived from it — independent of
  // layout and churn history.
  sort_pairs(out, sort_scratch_, sort_offsets_);
}

void SpatialGrid::pairs_within_shard(double radius, std::uint32_t shard,
                                     std::uint32_t shard_count, std::vector<Pair>& out,
                                     SortScratch& scratch) const {
  DTNIC_REQUIRE_MSG(shard < shard_count, "shard index out of range");
  emit_pairs(radius, out, [shard, shard_count](const Cell& cell) {
    return shard_of_cell(cell.cx, shard_count) == shard;
  });
  sort_pairs(out, scratch.pairs, scratch.offsets);
}

std::vector<SpatialGrid::Pair> SpatialGrid::pairs_within(double radius) const {
  std::vector<Pair> out;
  pairs_within(radius, out);
  return out;
}

}  // namespace dtnic::net
