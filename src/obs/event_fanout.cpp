#include "obs/event_fanout.h"

#include <algorithm>

namespace dtnic::obs {

namespace detail {

void SinkRegistry::remove(std::uint64_t id) {
  // Registration order is the dispatch contract, so erase preserves order.
  entries.erase(std::remove_if(entries.begin(), entries.end(),
                               [id](const Entry& e) { return e.id == id; }),
                entries.end());
}

}  // namespace detail

void SinkHandle::reset() {
  if (id_ == 0) return;
  if (auto registry = registry_.lock()) registry->remove(id_);
  registry_.reset();
  id_ = 0;
}

bool SinkHandle::active() const {
  if (id_ == 0) return false;
  auto registry = registry_.lock();
  if (!registry) return false;
  return std::any_of(registry->entries.begin(), registry->entries.end(),
                     [this](const detail::SinkRegistry::Entry& e) { return e.id == id_; });
}

SinkHandle EventFanout::add_sink(routing::RoutingEvents& sink) {
  const std::uint64_t id = registry_->next_id++;
  registry_->entries.push_back({id, &sink});
  return SinkHandle(registry_, id);
}

routing::RoutingEvents& EventFanout::add_owned_sink(
    std::unique_ptr<routing::RoutingEvents> sink) {
  routing::RoutingEvents& ref = *sink;
  registry_->entries.push_back({registry_->next_id++, sink.get()});
  owned_.push_back(std::move(sink));
  return ref;
}

void EventFanout::remove_sink(const routing::RoutingEvents& sink) {
  auto& entries = registry_->entries;
  entries.erase(std::remove_if(entries.begin(), entries.end(),
                               [&sink](const detail::SinkRegistry::Entry& e) {
                                 return e.sink == &sink;
                               }),
                entries.end());
  owned_.erase(std::remove_if(owned_.begin(), owned_.end(),
                              [&sink](const std::unique_ptr<routing::RoutingEvents>& s) {
                                return s.get() == &sink;
                              }),
               owned_.end());
}

// Dispatch loops index rather than iterate so a sink that unregisters
// another sink (or itself) mid-callback cannot invalidate the traversal.
#define DTNIC_OBS_DISPATCH(call)                                        \
  do {                                                                  \
    const auto& entries = registry_->entries;                           \
    for (std::size_t i = 0; i < entries.size(); ++i) {                  \
      entries[i].sink->call;                                            \
    }                                                                   \
  } while (0)

void EventFanout::on_created(const msg::Message& m) { DTNIC_OBS_DISPATCH(on_created(m)); }

void EventFanout::on_transfer_started(routing::NodeId from, routing::NodeId to,
                                      const msg::Message& m, routing::TransferRole role) {
  DTNIC_OBS_DISPATCH(on_transfer_started(from, to, m, role));
}

void EventFanout::on_relayed(routing::NodeId from, routing::NodeId to,
                             const msg::Message& m) {
  DTNIC_OBS_DISPATCH(on_relayed(from, to, m));
}

void EventFanout::on_delivered(routing::NodeId from, routing::NodeId to,
                               const msg::Message& m) {
  DTNIC_OBS_DISPATCH(on_delivered(from, to, m));
}

void EventFanout::on_refused(routing::NodeId from, routing::NodeId to, const msg::Message& m,
                             routing::AcceptDecision why) {
  DTNIC_OBS_DISPATCH(on_refused(from, to, m, why));
}

void EventFanout::on_aborted(routing::NodeId from, routing::NodeId to, routing::MessageId m) {
  DTNIC_OBS_DISPATCH(on_aborted(from, to, m));
}

void EventFanout::on_dropped(routing::NodeId at, const msg::Message& m,
                             routing::DropReason why) {
  DTNIC_OBS_DISPATCH(on_dropped(at, m, why));
}

void EventFanout::on_tokens_paid(routing::NodeId payer, routing::NodeId payee,
                                 double amount) {
  DTNIC_OBS_DISPATCH(on_tokens_paid(payer, payee, amount));
}

void EventFanout::on_reputation_updated(routing::NodeId rater, routing::NodeId rated,
                                        double rating) {
  DTNIC_OBS_DISPATCH(on_reputation_updated(rater, rated, rating));
}

void EventFanout::on_enriched(routing::NodeId at, const msg::Message& m, int tags_added) {
  DTNIC_OBS_DISPATCH(on_enriched(at, m, tags_added));
}

#undef DTNIC_OBS_DISPATCH

}  // namespace dtnic::obs
