#pragma once

#include "routing/router.h"

/// \file two_hop.h
/// Two-hop relay (thesis §1.1): the source sprays copies to every node it
/// meets; relays hold their copy and hand it over only to destinations.
/// Delivery paths are therefore at most source -> relay -> destination.

namespace dtnic::routing {

class TwoHopRouter : public Router {
 public:
  explicit TwoHopRouter(const DestinationOracle& oracle)
      : Router(oracle, RouterKind::kTwoHop) {}

  [[nodiscard]] std::vector<ForwardPlan> plan(Host& self, Host& peer,
                                              util::SimTime now) override;
};

}  // namespace dtnic::routing
