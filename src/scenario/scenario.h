#pragma once

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/behavior.h"
#include "core/incentive_router.h"
#include "core/pi_router.h"
#include "mobility/mobility_model.h"
#include "msg/id_source.h"
#include "msg/keyword.h"
#include "net/connectivity.h"
#include "net/contact_source.h"
#include "net/contact_trace.h"
#include "net/scripted_contacts.h"
#include "net/transfer.h"
#include "obs/event_fanout.h"
#include "routing/host.h"
#include "routing/oracle.h"
#include "scenario/config.h"
#include "scenario/result.h"
#include "sim/simulator.h"
#include "stats/metrics.h"

/// \file scenario.h
/// Wires every subsystem into one runnable world: mobility + connectivity
/// detect contacts, the contact controller drives the router protocol over
/// bandwidth-limited transfers, the workload generator creates annotated
/// messages, and the metrics collector observes everything. One Scenario is
/// one seeded run; the ExperimentRunner aggregates several.

namespace dtnic::scenario {

class Scenario {
 public:
  explicit Scenario(const ScenarioConfig& config);
  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  /// Run to the configured horizon and report.
  RunResult run();

  // --- introspection (tests, examples) -------------------------------------
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] routing::Host& host(routing::NodeId id);
  [[nodiscard]] std::size_t node_count() const { return hosts_.size(); }
  [[nodiscard]] const stats::MetricsCollector& metrics() const { return metrics_; }
  [[nodiscard]] const ScenarioConfig& config() const { return cfg_; }
  /// The run's event hub: every Host dispatches here, and the metrics
  /// collector is its first sink. Register observers (trace sinks, per-node
  /// stats) before run(); they see events in registration order.
  [[nodiscard]] obs::EventFanout& events() { return fanout_; }
  [[nodiscard]] const core::BehaviorProfile& behavior_of(routing::NodeId id) const;
  [[nodiscard]] const routing::StaticInterestOracle& oracle() const { return oracle_; }
  [[nodiscard]] msg::KeywordTable& keywords() { return keywords_; }
  [[nodiscard]] const net::ContactTrace& contact_trace() const { return trace_; }
  /// The active contact source (mobility-driven or trace replay).
  [[nodiscard]] net::ContactSource& contacts() { return *contacts_; }

  /// Sum of all ledgers right now (token conservation checks).
  [[nodiscard]] double total_tokens() const;

  /// Fig. 5.4 metric: mean rating of malicious nodes across non-malicious
  /// nodes that have formed an opinion; default rating if none has.
  [[nodiscard]] double current_malicious_rating() const;

 private:
  void build();
  void make_router(std::size_t index);

  // Contact controller.
  void handle_link_up(routing::NodeId a, routing::NodeId b, double distance_m);
  void handle_link_down(routing::NodeId a, routing::NodeId b);
  void handle_transfer_complete(const net::TransferManager::Transfer& t,
                                util::SimTime duration);
  void handle_transfer_abort(const net::TransferManager::Transfer& t);
  /// Try to start the next transfer on an idle link; alternates direction.
  void pump(routing::NodeId a, routing::NodeId b);
  void pump_all_idle();

  // Workload.
  void schedule_next_message(std::size_t index);
  void create_message(std::size_t index);

  // Periodic maintenance.
  void ttl_sweep();
  void sample_series();

  /// Fill \p out with the hosts currently connected to \p id (clears first).
  void fill_neighbor_hosts(routing::NodeId id, std::vector<routing::Host*>& out);
  [[nodiscard]] static std::uint64_t pair_key(routing::NodeId a, routing::NodeId b);

  ScenarioConfig cfg_;
  util::Rng master_rng_;
  util::Rng gate_rng_;
  sim::Simulator sim_;
  msg::KeywordTable keywords_;
  std::vector<msg::KeywordId> pool_;
  msg::MessageIdSource ids_;
  routing::StaticInterestOracle oracle_;
  core::IncentiveWorld world_;
  core::PiEscrowBank pi_bank_;
  /// Declared before hosts_: hosts bind the fan-out by reference at
  /// construction, so it must outlive them.
  obs::EventFanout fanout_;
  stats::MetricsCollector metrics_;
  obs::SinkHandle metrics_sink_;

  std::vector<std::unique_ptr<mobility::MobilityModel>> mobility_;
  std::vector<std::unique_ptr<routing::Host>> hosts_;
  std::vector<core::BehaviorProfile> behaviors_;
  std::vector<util::Rng> workload_rng_;
  /// Fig. 5.6 source class per node: 0 high, 1 medium, 2 low.
  std::vector<int> source_class_;

  std::unique_ptr<net::ContactSource> contacts_;
  /// Non-owning view of contacts_ when mobility-driven (timing readout).
  net::ConnectivityManager* connectivity_ = nullptr;
  std::unique_ptr<net::TransferManager> transfers_;
  net::ContactTrace trace_;

  /// Per-phase wall-clock accumulators (util::ScopedTimer; exclusive).
  std::uint64_t routing_ns_ = 0;
  std::uint64_t transfer_ns_ = 0;
  std::uint64_t workload_ns_ = 0;

  struct PendingTransfer {
    routing::ForwardPlan plan;
    msg::Message copy;  ///< snapshot taken when the transfer started
  };
  std::unordered_map<std::uint64_t, PendingTransfer> pending_;
  std::unordered_map<std::uint64_t, bool> link_toggle_;
  /// Offers refused during the current contact, keyed by link; an offer is
  /// not retried until the next contact (message id << 1 | direction bit).
  std::unordered_map<std::uint64_t, std::unordered_set<std::uint64_t>> refused_this_contact_;
  /// Buffer revisions of both endpoints at the last fruitless pump; the link
  /// is not re-planned until either endpoint's buffer changes.
  std::unordered_map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>> idle_memo_;

  /// Contact-controller scratch, reused across contacts so the per-contact
  /// pre-exchange/plan path allocates nothing at steady state.
  std::vector<routing::Host*> neighbors_a_scratch_;
  std::vector<routing::Host*> neighbors_b_scratch_;
  std::vector<routing::ForwardPlan> plan_scratch_;

  stats::TimeSeries malicious_rating_series_;
  stats::TimeSeries mean_tokens_series_;
  bool built_ = false;
};

}  // namespace dtnic::scenario
