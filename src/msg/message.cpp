#include "msg/message.h"

#include <algorithm>

#include "util/assert.h"

namespace dtnic::msg {

const char* priority_name(Priority p) {
  switch (p) {
    case Priority::kHigh: return "high";
    case Priority::kMedium: return "medium";
    case Priority::kLow: return "low";
  }
  return "?";
}

Message::Message(MessageId id, NodeId source, SimTime created_at, std::uint64_t size_bytes,
                 Priority priority, double quality)
    : id_(id),
      source_(source),
      created_at_(created_at),
      size_bytes_(size_bytes),
      priority_(priority),
      quality_(quality) {
  DTNIC_REQUIRE_MSG(id.valid(), "message id must be valid");
  DTNIC_REQUIRE_MSG(source.valid(), "message source must be valid");
  DTNIC_REQUIRE_MSG(size_bytes > 0, "message size must be positive");
  DTNIC_REQUIRE_MSG(quality >= 0.0 && quality <= 1.0, "quality must be in [0,1]");
  path_.push_back({source, created_at});
}

bool Message::expired(SimTime now) const {
  if (!ttl_.finite()) return false;
  return now > created_at_ + ttl_;
}

bool Message::annotate(Annotation a) {
  DTNIC_REQUIRE(a.keyword.valid());
  if (has_keyword(a.keyword)) return false;
  annotations_.push_back(a);
  return true;
}

bool Message::has_keyword(KeywordId k) const {
  return std::any_of(annotations_.begin(), annotations_.end(),
                     [k](const Annotation& a) { return a.keyword == k; });
}

std::vector<KeywordId> Message::keywords() const {
  std::vector<KeywordId> out;
  out.reserve(annotations_.size());
  for (const Annotation& a : annotations_) out.push_back(a.keyword);
  return out;
}

std::vector<Annotation> Message::annotations_by(NodeId node) const {
  std::vector<Annotation> out;
  for (const Annotation& a : annotations_) {
    if (a.annotator == node) out.push_back(a);
  }
  return out;
}

bool Message::keyword_is_truthful(KeywordId k) const {
  return std::find(true_keywords_.begin(), true_keywords_.end(), k) != true_keywords_.end();
}

std::size_t Message::relay_hop_count() const {
  DTNIC_ASSERT(!path_.empty());
  return path_.size() - 1;
}

void Message::set_property(const std::string& key, double value) {
  for (auto& [k, v] : properties_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  properties_.emplace_back(key, value);
}

double Message::property_or(const std::string& key, double dflt) const {
  for (const auto& [k, v] : properties_) {
    if (k == key) return v;
  }
  return dflt;
}

bool Message::visited(NodeId node) const {
  return std::any_of(path_.begin(), path_.end(),
                     [node](const HopRecord& h) { return h.node == node; });
}

}  // namespace dtnic::msg
