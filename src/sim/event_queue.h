#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/sim_time.h"

/// \file event_queue.h
/// Time-ordered event queue with stable FIFO ordering for simultaneous
/// events and O(1) cancellation, implemented as a hierarchical timing wheel.
///
/// Why a wheel: the workload is dominated by short-horizon periodic ticks
/// (scan/control timers re-armed every period). A binary heap pays O(log n)
/// comparisons plus a hash-map insert/erase per event for the callback side
/// table; the wheel turns both into array writes. Events live in a slab of
/// records (recycled through a free list), are filed into one of 8 levels of
/// 256 slots by the highest byte in which their tick differs from the current
/// tick, and cascade one level down each time the clock reaches their slot.
/// Level 0 slots are exact ticks, so draining a level-0 slot yields the
/// events of one tick; they are sorted by (time, seq) into the "current
/// bucket" and consumed in order, which reproduces the heap's fire order
/// exactly: time first, then insertion sequence for ties.
///
/// Cancellation: records still filed in a wheel slot unlink in O(1) and are
/// reclaimed immediately. Records already in the current bucket are only
/// marked (the bucket is a sorted vector), then reclaimed when the cursor
/// passes them — or wholesale once the dead count exceeds
/// kCompactionThreshold and outnumbers the live remainder, mirroring the old
/// heap's compaction guarantee. When the queue drains, every straggler is
/// released, so bookkeeping never outlives the events it tracked.

namespace dtnic::sim {

using EventFn = std::function<void()>;

/// Opaque handle for cancelling a scheduled event. Encodes slab index and a
/// per-record generation so a handle kept after its event fired can never
/// cancel an unrelated event that reused the record.
struct EventId {
  std::uint64_t value = 0;
  [[nodiscard]] bool valid() const { return value != 0; }
  friend bool operator==(EventId, EventId) = default;
};

class EventQueue {
 public:
  EventQueue();

  /// Cancel-heavy bucket compaction trigger: once at least this many
  /// cancelled records are stranded in the current bucket *and* they
  /// outnumber the live remainder, the bucket is rebuilt with only live
  /// entries. Named so tests can pin the policy instead of re-deriving it.
  static constexpr std::size_t kCompactionThreshold = 64;

  /// Wheel resolution: events within the same 1/8 s tick are ordered by
  /// their exact (time, seq) when the tick's bucket is formed, so the
  /// resolution affects bucketing granularity only, never fire order.
  static constexpr double kTicksPerSecond = 8.0;

  /// Enqueue \p fn at time \p t. Events at the same time fire in insertion
  /// order, which keeps runs deterministic.
  EventId push(util::SimTime t, EventFn fn);

  /// Cancel an event; harmless if already fired or cancelled.
  void cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Time of the earliest pending (non-cancelled) event.
  /// Requires !empty().
  [[nodiscard]] util::SimTime next_time();

  /// Remove and return the earliest pending event. Requires !empty().
  struct Popped {
    util::SimTime time;
    EventFn fn;
  };
  [[nodiscard]] Popped pop();

  /// Bookkeeping introspection (tests / diagnostics): slab records still in
  /// use including cancelled ones not yet reclaimed, and the count of those
  /// pending cancel markers. Both drain to zero when the queue empties.
  [[nodiscard]] std::size_t heap_entries() const { return live_ + bucket_dead_; }
  [[nodiscard]] std::size_t cancelled_entries() const { return bucket_dead_; }

 private:
  static constexpr int kLevels = 8;    ///< 8 levels x 8 bits cover any tick
  static constexpr int kSlots = 256;   ///< slots per level (one byte)
  static constexpr std::int32_t kFree = -1;
  static constexpr std::int32_t kBucket = -2;

  struct Record {
    util::SimTime time{0.0};
    std::uint64_t seq = 0;   ///< FIFO tiebreak for equal times
    std::uint64_t tick = 0;  ///< floor(time * kTicksPerSecond), clamped
    std::int32_t prev = -1;  ///< doubly-linked list within a wheel slot
    std::int32_t next = -1;
    /// kFree, kBucket, or level * kSlots + slot when filed in a wheel.
    std::int32_t loc = kFree;
    std::uint32_t generation = 0;  ///< bumped on release; stale-id guard
    bool cancelled = false;
    EventFn fn;
  };

  [[nodiscard]] static std::uint64_t tick_of(util::SimTime t);
  [[nodiscard]] std::int32_t acquire_record();
  void release_record(std::int32_t idx);
  /// File a record (tick > cur_tick_) into its wheel slot.
  void wheel_link(std::int32_t idx);
  void wheel_unlink(std::int32_t idx);
  /// First occupied slot >= \p from at \p level, or -1.
  [[nodiscard]] int next_occupied(int level, int from) const;
  /// Advance the clock to the next occupied tick and form its sorted bucket.
  /// Requires at least one live record filed in the wheels.
  void advance();
  /// Index of the earliest live record, reclaiming dead ones on the way.
  /// Requires live_ > 0.
  [[nodiscard]] std::int32_t front_record();
  void maybe_compact_bucket();
  /// live_ hit zero: release every straggler and reset the bucket.
  void reset_drained();
  [[nodiscard]] bool record_earlier(std::int32_t a, std::int32_t b) const;

  std::vector<Record> records_;      ///< slab; index is the EventId low word
  std::vector<std::int32_t> free_;   ///< recycled slab indices
  std::int32_t heads_[kLevels][kSlots];
  std::uint64_t occupancy_[kLevels][kSlots / 64];  ///< per-level slot bitmap
  /// Records of the tick being consumed, sorted by (time, seq); entries
  /// before cursor_ already fired (and were released).
  std::vector<std::int32_t> bucket_;
  std::size_t cursor_ = 0;
  std::size_t bucket_dead_ = 0;  ///< cancelled-but-unreclaimed bucket records
  std::size_t live_ = 0;
  std::uint64_t cur_tick_ = 0;
  std::uint64_t next_seq_ = 1;
};

}  // namespace dtnic::sim
