#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "util/ids.h"

/// \file keyword.h
/// Keyword interning. Social interests and message annotations are semantic
/// keywords ("red car", "medic", ...); the simulator interns each distinct
/// string once and passes 32-bit KeywordIds everywhere else.

namespace dtnic::msg {

using util::KeywordId;

class KeywordTable {
 public:
  /// Intern \p name, returning its stable id. Idempotent.
  KeywordId intern(const std::string& name);

  /// Lookup without interning; invalid id if unknown.
  [[nodiscard]] KeywordId find(const std::string& name) const;

  /// Name for an id. Requires a valid, previously interned id.
  [[nodiscard]] const std::string& name(KeywordId id) const;

  [[nodiscard]] std::size_t size() const { return names_.size(); }

  /// Generate a pool of \p count synthetic keywords ("kw000".."kwNNN"),
  /// matching the paper's "pool of social interest keywords" (Table 5.1).
  [[nodiscard]] std::vector<KeywordId> make_pool(std::size_t count,
                                                 const std::string& prefix = "kw");

 private:
  std::unordered_map<std::string, KeywordId> index_;
  std::vector<std::string> names_;
};

}  // namespace dtnic::msg
