#include "sim/event_queue.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "util/assert.h"

namespace dtnic::sim {

EventQueue::EventQueue() {
  std::memset(heads_, -1, sizeof(heads_));
  std::memset(occupancy_, 0, sizeof(occupancy_));
}

std::uint64_t EventQueue::tick_of(util::SimTime t) {
  const double scaled = t.sec() * kTicksPerSecond;
  // Negative and NaN collapse to tick 0 (the bucket sort still orders them by
  // exact time); +inf and anything past 2^64 ticks clamp to the last slot of
  // the top level, where they sit until every finite event has fired.
  if (!(scaled > 0.0)) return 0;
  if (scaled >= 18446744073709551615.0) return ~std::uint64_t{0};
  return static_cast<std::uint64_t>(scaled);
}

bool EventQueue::record_earlier(std::int32_t a, std::int32_t b) const {
  const Record& ra = records_[static_cast<std::size_t>(a)];
  const Record& rb = records_[static_cast<std::size_t>(b)];
  if (ra.time != rb.time) return ra.time < rb.time;
  return ra.seq < rb.seq;
}

std::int32_t EventQueue::acquire_record() {
  if (!free_.empty()) {
    const std::int32_t idx = free_.back();
    free_.pop_back();
    return idx;
  }
  records_.emplace_back();
  return static_cast<std::int32_t>(records_.size() - 1);
}

void EventQueue::release_record(std::int32_t idx) {
  Record& r = records_[static_cast<std::size_t>(idx)];
  r.fn = nullptr;  // drop captured state now, not when the record is reused
  r.loc = kFree;
  r.cancelled = false;
  ++r.generation;
  free_.push_back(idx);
}

void EventQueue::wheel_link(std::int32_t idx) {
  Record& r = records_[static_cast<std::size_t>(idx)];
  const std::uint64_t diff = r.tick ^ cur_tick_;
  DTNIC_ASSERT(diff != 0);
  // Highest differing byte picks the level: the slot index is exact (unique
  // tick) only at level 0; higher levels cascade down as the clock reaches
  // them, re-filing by the then-highest differing byte.
  const int level = (63 - std::countl_zero(diff)) >> 3;
  const int slot = static_cast<int>((r.tick >> (8 * level)) & 0xff);
  r.loc = static_cast<std::int32_t>(level * kSlots + slot);
  r.prev = -1;
  r.next = heads_[level][slot];
  if (r.next >= 0) records_[static_cast<std::size_t>(r.next)].prev = idx;
  heads_[level][slot] = idx;
  occupancy_[level][slot >> 6] |= std::uint64_t{1} << (slot & 63);
}

void EventQueue::wheel_unlink(std::int32_t idx) {
  Record& r = records_[static_cast<std::size_t>(idx)];
  DTNIC_ASSERT(r.loc >= 0);
  const int level = r.loc / kSlots;
  const int slot = r.loc % kSlots;
  if (r.prev >= 0) {
    records_[static_cast<std::size_t>(r.prev)].next = r.next;
  } else {
    heads_[level][slot] = r.next;
  }
  if (r.next >= 0) records_[static_cast<std::size_t>(r.next)].prev = r.prev;
  if (heads_[level][slot] < 0) {
    occupancy_[level][slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
  }
}

int EventQueue::next_occupied(int level, int from) const {
  if (from >= kSlots) return -1;
  int word = from >> 6;
  std::uint64_t bits = occupancy_[level][word] & (~std::uint64_t{0} << (from & 63));
  for (;;) {
    if (bits != 0) return (word << 6) + std::countr_zero(bits);
    if (++word == kSlots / 64) return -1;
    bits = occupancy_[level][word];
  }
}

void EventQueue::advance() {
  DTNIC_ASSERT(cursor_ == bucket_.size());
  bucket_.clear();
  cursor_ = 0;
  while (bucket_.empty()) {
    // Lowest level with a slot beyond the clock's byte holds the soonest
    // records. Levels below it are empty by the placement invariant (a
    // record files at the *highest* byte differing from the clock).
    int level = -1;
    int slot = -1;
    for (int l = 0; l < kLevels; ++l) {
      const int from = static_cast<int>((cur_tick_ >> (8 * l)) & 0xff) + 1;
      if (const int s = next_occupied(l, from); s >= 0) {
        level = l;
        slot = s;
        break;
      }
    }
    DTNIC_ASSERT(level >= 0);  // caller guarantees a live record in the wheels
    // Jump the clock: byte[level] := slot, lower bytes := 0, upper unchanged.
    const int shift = 8 * level;
    const std::uint64_t upper =
        level + 1 < kLevels ? cur_tick_ & (~std::uint64_t{0} << (shift + 8)) : 0;
    cur_tick_ = upper | (static_cast<std::uint64_t>(slot) << shift);
    // Drain the slot. Records whose tick the clock just reached join the
    // bucket; the rest cascade into lower levels. Link order within a slot
    // is arbitrary — the bucket sort below canonicalizes fire order, so
    // enumeration here cannot leak into observable behavior.
    std::int32_t idx = heads_[level][slot];
    heads_[level][slot] = -1;
    occupancy_[level][slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
    while (idx >= 0) {
      Record& r = records_[static_cast<std::size_t>(idx)];
      const std::int32_t next = r.next;
      if (r.tick <= cur_tick_) {
        r.loc = kBucket;
        r.prev = r.next = -1;
        bucket_.push_back(idx);
      } else {
        wheel_link(idx);
      }
      idx = next;
    }
  }
  std::sort(bucket_.begin(), bucket_.end(),
            [this](std::int32_t a, std::int32_t b) { return record_earlier(a, b); });
}

std::int32_t EventQueue::front_record() {
  DTNIC_ASSERT(live_ > 0);
  for (;;) {
    while (cursor_ < bucket_.size()) {
      const std::int32_t idx = bucket_[cursor_];
      if (!records_[static_cast<std::size_t>(idx)].cancelled) return idx;
      DTNIC_ASSERT(bucket_dead_ > 0);
      --bucket_dead_;
      release_record(idx);
      ++cursor_;
    }
    advance();
  }
}

EventId EventQueue::push(util::SimTime t, EventFn fn) {
  DTNIC_REQUIRE_MSG(fn != nullptr, "event callback must not be null");
  const std::int32_t idx = acquire_record();
  Record& r = records_[static_cast<std::size_t>(idx)];
  r.time = t;
  r.seq = next_seq_++;
  r.tick = tick_of(t);
  r.cancelled = false;
  r.fn = std::move(fn);
  ++live_;
  if (r.tick > cur_tick_) {
    wheel_link(idx);
  } else {
    // The clock already reached this tick: merge into the current bucket at
    // the record's (time, seq) rank, never before the consume cursor. A new
    // record's seq is the largest so far, so it lands after every already
    // scheduled event of the same time — the heap's FIFO rule.
    r.loc = kBucket;
    r.prev = r.next = -1;
    const auto it =
        std::lower_bound(bucket_.begin() + static_cast<std::ptrdiff_t>(cursor_), bucket_.end(),
                         idx, [this](std::int32_t a, std::int32_t b) {
                           return record_earlier(a, b);
                         });
    bucket_.insert(it, idx);
  }
  return EventId{(static_cast<std::uint64_t>(r.generation) << 32) |
                 (static_cast<std::uint64_t>(idx) + 1)};
}

void EventQueue::cancel(EventId id) {
  if (!id.valid()) return;
  const std::size_t idx = static_cast<std::size_t>(id.value & 0xffffffffull) - 1;
  if (idx >= records_.size()) return;
  Record& r = records_[idx];
  if (r.loc == kFree || r.cancelled) return;
  if (r.generation != static_cast<std::uint32_t>(id.value >> 32)) return;
  --live_;
  if (r.loc == kBucket) {
    // The bucket is a sorted vector; deleting here would be O(n) per cancel.
    // Mark instead and reclaim when the cursor passes, at the compaction
    // threshold, or when the queue drains.
    r.cancelled = true;
    ++bucket_dead_;
    if (live_ == 0) {
      reset_drained();
    } else {
      maybe_compact_bucket();
    }
  } else {
    wheel_unlink(static_cast<std::int32_t>(idx));
    release_record(static_cast<std::int32_t>(idx));
  }
}

void EventQueue::maybe_compact_bucket() {
  if (bucket_dead_ < kCompactionThreshold) return;
  const std::size_t pending = bucket_.size() - cursor_;
  if (2 * bucket_dead_ <= pending) return;  // dead do not outnumber live yet
  std::size_t w = 0;
  for (std::size_t rpos = cursor_; rpos < bucket_.size(); ++rpos) {
    const std::int32_t idx = bucket_[rpos];
    if (records_[static_cast<std::size_t>(idx)].cancelled) {
      release_record(idx);
      continue;
    }
    bucket_[w++] = idx;
  }
  bucket_.resize(w);
  cursor_ = 0;
  bucket_dead_ = 0;
}

void EventQueue::reset_drained() {
  // Everything at or past the cursor is a cancelled straggler.
  for (std::size_t i = cursor_; i < bucket_.size(); ++i) release_record(bucket_[i]);
  bucket_.clear();
  cursor_ = 0;
  bucket_dead_ = 0;
}

util::SimTime EventQueue::next_time() {
  DTNIC_REQUIRE_MSG(live_ > 0, "next_time() on empty queue");
  return records_[static_cast<std::size_t>(front_record())].time;
}

EventQueue::Popped EventQueue::pop() {
  DTNIC_REQUIRE_MSG(live_ > 0, "pop() on empty queue");
  const std::int32_t idx = front_record();
  ++cursor_;
  Record& r = records_[static_cast<std::size_t>(idx)];
  Popped out{r.time, std::move(r.fn)};
  release_record(idx);
  --live_;
  if (live_ == 0) reset_drained();
  return out;
}

}  // namespace dtnic::sim
