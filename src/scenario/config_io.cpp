#include "scenario/config_io.h"

#include <algorithm>
#include <functional>
#include <map>
#include <sstream>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "scenario/router_factory.h"
#include "util/string_util.h"

namespace dtnic::scenario {

namespace {

/// One registry drives both directions: key name -> (writer, reader).
struct Field {
  std::function<std::string(const ScenarioConfig&)> write;
  std::function<void(ScenarioConfig&, const std::string&)> read;
};

std::string fmt(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

const std::map<std::string, Field>& registry() {
  static const std::map<std::string, Field> fields = [] {
    std::map<std::string, Field> f;
    auto add_double = [&f](const std::string& key, auto member) {
      f[key] = Field{[member](const ScenarioConfig& c) { return fmt(c.*member); },
                     [member](ScenarioConfig& c, const std::string& v) {
                       c.*member = util::parse_double(v);
                     }};
    };
    auto add_size = [&f](const std::string& key, auto member) {
      f[key] = Field{
          [member](const ScenarioConfig& c) { return std::to_string(c.*member); },
          [member, key](ScenarioConfig& c, const std::string& v) {
            const long long parsed = util::parse_int(v);
            if (parsed < 0) throw std::invalid_argument(key + " must be non-negative");
            c.*member = static_cast<std::decay_t<decltype(c.*member)>>(parsed);
          }};
    };
    auto add_int = [&f](const std::string& key, auto member) {
      f[key] = Field{[member](const ScenarioConfig& c) { return std::to_string(c.*member); },
                     [member](ScenarioConfig& c, const std::string& v) {
                       c.*member = static_cast<int>(util::parse_int(v));
                     }};
    };
    auto add_bool = [&f](const std::string& key, auto member) {
      f[key] = Field{
          [member](const ScenarioConfig& c) { return (c.*member) ? "true" : "false"; },
          [member](ScenarioConfig& c, const std::string& v) {
            c.*member = util::parse_bool(v);
          }};
    };

    add_size("nodes", &ScenarioConfig::num_nodes);
    add_size("keyword_pool", &ScenarioConfig::keyword_pool_size);
    add_size("interests_per_node", &ScenarioConfig::interests_per_node);
    add_size("buffer_bytes", &ScenarioConfig::buffer_capacity_bytes);
    add_size("message_bytes", &ScenarioConfig::message_size_bytes);
    add_double("area_side_m", &ScenarioConfig::area_side_m);
    add_double("sim_hours", &ScenarioConfig::sim_hours);
    add_bool("enrichment", &ScenarioConfig::enrichment_enabled);
    add_int("spray_copies", &ScenarioConfig::spray_copies);
    add_double("selfish_fraction", &ScenarioConfig::selfish_fraction);
    add_double("malicious_fraction", &ScenarioConfig::malicious_fraction);
    add_double("selfish_participation", &ScenarioConfig::selfish_participation);
    add_double("enrich_probability", &ScenarioConfig::enrich_probability);
    add_int("honest_max_tags", &ScenarioConfig::honest_max_tags);
    add_int("malicious_tags", &ScenarioConfig::malicious_tags);
    add_double("officer_fraction", &ScenarioConfig::officer_fraction);
    add_double("battery_conscious_fraction", &ScenarioConfig::battery_conscious_fraction);
    add_double("battery_capacity_j", &ScenarioConfig::battery_capacity_j);
    add_double("battery_threshold", &ScenarioConfig::battery_threshold);
    add_double("battery_participation", &ScenarioConfig::battery_participation);
    add_double("messages_per_node_per_hour", &ScenarioConfig::messages_per_node_per_hour);
    add_int("keywords_per_message", &ScenarioConfig::keywords_per_message);
    add_int("latent_extra_keywords", &ScenarioConfig::latent_extra_keywords);
    add_double("ttl_hours", &ScenarioConfig::ttl_hours);
    add_bool("priority_workload", &ScenarioConfig::priority_workload);
    add_double("min_speed_mps", &ScenarioConfig::min_speed_mps);
    add_double("max_speed_mps", &ScenarioConfig::max_speed_mps);
    add_double("max_pause_s", &ScenarioConfig::max_pause_s);
    add_double("scan_interval_s", &ScenarioConfig::scan_interval_s);
    add_double("ttl_sweep_interval_s", &ScenarioConfig::ttl_sweep_interval_s);
    add_double("sample_interval_s", &ScenarioConfig::sample_interval_s);
    add_size("shard_threads", &ScenarioConfig::shard_threads);
    add_size("exchange_threads", &ScenarioConfig::exchange_threads);
    f["seed"] = Field{[](const ScenarioConfig& c) { return std::to_string(c.seed); },
                      [](ScenarioConfig& c, const std::string& v) {
                        c.seed = static_cast<std::uint64_t>(util::parse_int(v));
                      }};
    f["scheme"] = Field{
        [](const ScenarioConfig& c) { return scheme_name(c.scheme); },
        [](ScenarioConfig& c, const std::string& v) { c.scheme = parse_scheme(v); }};
    f["mobility"] = Field{
        [](const ScenarioConfig& c) { return mobility_name(c.mobility); },
        [](ScenarioConfig& c, const std::string& v) {
          if (v == "random-waypoint") c.mobility = MobilityKind::kRandomWaypoint;
          else if (v == "random-walk") c.mobility = MobilityKind::kRandomWalk;
          else if (v == "hotspot") c.mobility = MobilityKind::kHotspot;
          else throw std::invalid_argument("unknown mobility model: '" + v + "'");
        }};
    f["contact_trace_file"] = Field{
        [](const ScenarioConfig& c) { return c.contact_trace_file; },
        [](ScenarioConfig& c, const std::string& v) { c.contact_trace_file = v; }};
    add_size("hotspot_count", &ScenarioConfig::hotspot_count);
    add_double("hotspot_radius_m", &ScenarioConfig::hotspot_radius_m);
    add_double("hotspot_probability", &ScenarioConfig::hotspot_probability);

    // Radio.
    f["radio.range_m"] = Field{
        [](const ScenarioConfig& c) { return fmt(c.radio.range_m); },
        [](ScenarioConfig& c, const std::string& v) {
          c.radio.range_m = util::parse_double(v);
        }};
    f["radio.bitrate_bps"] = Field{
        [](const ScenarioConfig& c) { return fmt(c.radio.bitrate_bps); },
        [](ScenarioConfig& c, const std::string& v) {
          c.radio.bitrate_bps = util::parse_double(v);
        }};
    f["radio.tx_power_w"] = Field{
        [](const ScenarioConfig& c) { return fmt(c.radio.tx_power_w); },
        [](ScenarioConfig& c, const std::string& v) {
          c.radio.tx_power_w = util::parse_double(v);
        }};

    // ChitChat.
    f["chitchat.decay_beta"] = Field{
        [](const ScenarioConfig& c) { return fmt(c.chitchat.decay_beta); },
        [](ScenarioConfig& c, const std::string& v) {
          c.chitchat.decay_beta = util::parse_double(v);
        }};
    f["chitchat.growth_rate"] = Field{
        [](const ScenarioConfig& c) { return fmt(c.chitchat.growth_rate); },
        [](ScenarioConfig& c, const std::string& v) {
          c.chitchat.growth_rate = util::parse_double(v);
        }};
    f["chitchat.forward_margin"] = Field{
        [](const ScenarioConfig& c) { return fmt(c.chitchat.forward_margin); },
        [](ScenarioConfig& c, const std::string& v) {
          c.chitchat.forward_margin = util::parse_double(v);
        }};

    // Incentives.
    f["incentive.initial_tokens"] = Field{
        [](const ScenarioConfig& c) { return fmt(c.incentive.initial_tokens); },
        [](ScenarioConfig& c, const std::string& v) {
          c.incentive.initial_tokens = util::parse_double(v);
        }};
    f["incentive.max_incentive"] = Field{
        [](const ScenarioConfig& c) { return fmt(c.incentive.max_incentive); },
        [](ScenarioConfig& c, const std::string& v) {
          c.incentive.max_incentive = util::parse_double(v);
        }};
    f["incentive.relay_threshold"] = Field{
        [](const ScenarioConfig& c) { return fmt(c.incentive.relay_threshold); },
        [](ScenarioConfig& c, const std::string& v) {
          c.incentive.relay_threshold = util::parse_double(v);
        }};
    f["incentive.relay_prepay_fraction"] = Field{
        [](const ScenarioConfig& c) { return fmt(c.incentive.relay_prepay_fraction); },
        [](ScenarioConfig& c, const std::string& v) {
          c.incentive.relay_prepay_fraction = util::parse_double(v);
        }};
    f["incentive.tag_reward_z"] = Field{
        [](const ScenarioConfig& c) { return fmt(c.incentive.tag_reward_z); },
        [](ScenarioConfig& c, const std::string& v) {
          c.incentive.tag_reward_z = util::parse_double(v);
        }};
    f["incentive.tag_reward_cap"] = Field{
        [](const ScenarioConfig& c) { return fmt(c.incentive.tag_reward_cap); },
        [](ScenarioConfig& c, const std::string& v) {
          c.incentive.tag_reward_cap = util::parse_double(v);
        }};

    // DRM.
    f["drm.enabled"] = Field{
        [](const ScenarioConfig& c) { return c.drm.enabled ? "true" : "false"; },
        [](ScenarioConfig& c, const std::string& v) {
          c.drm.enabled = util::parse_bool(v);
        }};
    f["drm.alpha"] = Field{[](const ScenarioConfig& c) { return fmt(c.drm.alpha); },
                           [](ScenarioConfig& c, const std::string& v) {
                             c.drm.alpha = util::parse_double(v);
                           }};
    f["drm.trust_threshold"] = Field{
        [](const ScenarioConfig& c) { return fmt(c.drm.trust_threshold); },
        [](ScenarioConfig& c, const std::string& v) {
          c.drm.trust_threshold = util::parse_double(v);
        }};
    f["drm.confidence"] = Field{
        [](const ScenarioConfig& c) { return fmt(c.drm.confidence); },
        [](ScenarioConfig& c, const std::string& v) {
          c.drm.confidence = util::parse_double(v);
        }};
    f["drm.rating_noise_sd"] = Field{
        [](const ScenarioConfig& c) { return fmt(c.drm.rating_noise_sd); },
        [](ScenarioConfig& c, const std::string& v) {
          c.drm.rating_noise_sd = util::parse_double(v);
        }};
    return f;
  }();
  return fields;
}

/// Levenshtein distance, single-row DP; key names are short so this is cheap.
std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t subst = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      diag = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, subst});
    }
  }
  return row[b.size()];
}

/// Closest registered key, or empty when nothing is plausibly close (more
/// than a third of the key would have to change).
std::string closest_key(const std::string& key) {
  std::string best;
  std::size_t best_dist = std::max<std::size_t>(2, key.size() / 3) + 1;
  for (const auto& [candidate, field] : registry()) {
    const std::size_t d = edit_distance(key, candidate);
    if (d < best_dist) {
      best_dist = d;
      best = candidate;
    }
  }
  return best;
}

std::string at_line(int line) {
  return line > 0 ? " (line " + std::to_string(line) + ")" : "";
}

}  // namespace

Scheme parse_scheme(const std::string& name) {
  const RouterSpec* spec = find_router_spec(name);
  if (spec == nullptr) throw std::invalid_argument("unknown scheme: '" + name + "'");
  return spec->scheme;
}

ScenarioConfig apply_config(ScenarioConfig base, const util::Config& kv) {
  const auto& fields = registry();
  for (const auto& [key, value] : kv.entries()) {
    auto it = fields.find(key);
    if (it == fields.end()) {
      std::string msg = "unknown scenario config key: '" + key + "'" + at_line(kv.line_of(key));
      if (const std::string hint = closest_key(key); !hint.empty()) {
        msg += " — did you mean '" + hint + "'?";
      }
      throw std::invalid_argument(msg);
    }
    try {
      it->second.read(base, value);
    } catch (const std::exception& e) {
      // Re-throw with the offending key (and source line when file-sourced)
      // so a bad value is attributable without bisecting the config.
      throw std::invalid_argument("config key '" + key + "'" + at_line(kv.line_of(key)) +
                                  ": " + e.what());
    }
  }
  base.validate();
  return base;
}

std::string to_config_text(const ScenarioConfig& cfg) {
  std::ostringstream os;
  for (const auto& [key, field] : registry()) {
    os << key << " = " << field.write(cfg) << "\n";
  }
  return os.str();
}

}  // namespace dtnic::scenario
