#pragma once

#include <map>
#include <optional>
#include <string>

/// \file config.h
/// Key/value configuration store in ONE-simulator style `Key = value` syntax
/// with `#` comments. Scenario files and example programs use this to
/// override ScenarioConfig defaults without recompiling.

namespace dtnic::util {

class Config {
 public:
  Config() = default;

  /// Parse `key = value` entries separated by newlines or semicolons
  /// (semicolons allow inline overrides like "nodes=30; sim_hours=2").
  /// `#` starts a comment that runs to end of line. Throws
  /// std::invalid_argument on malformed entries (line number in message).
  [[nodiscard]] static Config parse(const std::string& text);

  /// Load from a file; throws std::runtime_error if unreadable.
  [[nodiscard]] static Config load_file(const std::string& path);

  /// \p line is the 1-based source line for error reporting; 0 (the default)
  /// means "not from a file" (programmatic set, CLI override).
  void set(const std::string& key, const std::string& value, int line = 0);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;
  /// Source line recorded for \p key; 0 when unknown or not file-sourced.
  [[nodiscard]] int line_of(const std::string& key) const;

  /// Typed getters with defaults; throw std::invalid_argument when the value
  /// exists but cannot be parsed as the requested type.
  [[nodiscard]] std::string get_string(const std::string& key, const std::string& dflt) const;
  [[nodiscard]] double get_double(const std::string& key, double dflt) const;
  [[nodiscard]] long long get_int(const std::string& key, long long dflt) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool dflt) const;

  [[nodiscard]] const std::map<std::string, std::string>& entries() const { return values_; }

  /// Overlay: entries in \p other replace entries here.
  void merge(const Config& other);

 private:
  std::map<std::string, std::string> values_;
  std::map<std::string, int> lines_;  ///< 1-based source line per key (if any)
};

}  // namespace dtnic::util
