#pragma once

#include <map>
#include <string>
#include <vector>

/// \file cli.h
/// Minimal command-line flag parser for benchmark and example binaries.
/// Accepts `--name=value`, `--name value`, and bare `--flag` booleans.
/// Unknown flags are an error so that typos in sweep scripts fail loudly.

namespace dtnic::util {

class Cli {
 public:
  /// Declare flags before parse(); \p help is printed by usage().
  void add_flag(const std::string& name, const std::string& default_value,
                const std::string& help);

  /// Parse argv. Throws std::invalid_argument on unknown or malformed flags.
  /// Recognizes --help by returning false (caller should print usage()).
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string usage(const std::string& program) const;

  [[nodiscard]] const std::string& get(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] long long get_int(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;
  [[nodiscard]] bool was_set(const std::string& name) const;

 private:
  struct Flag {
    std::string value;
    std::string default_value;
    std::string help;
    bool set = false;
  };
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
};

}  // namespace dtnic::util
