#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/ids.h"
#include "util/vec2.h"

/// \file spatial_grid.h
/// Uniform-grid spatial index for range queries. The index is *persistent*:
/// each node owns a slot for its lifetime and a scan moves only the nodes
/// whose cell actually changed (`update`), instead of rebuilding the whole
/// structure. Cells left empty are pruned immediately, so a long roaming run
/// never grows the cell map beyond the live population. Cell size equals the
/// query radius so only the 3x3 neighborhood must be examined.
///
/// Cells live in one contiguous pool (recycled through a free list) with the
/// first few entries stored inline, so a pair scan walks dense memory that
/// fits in cache instead of chasing one heap node per cell; neighbor links
/// are pool indices, kept as a reciprocal half/rev pair so creating or
/// pruning a cell patches its neighborhood without hash lookups.

namespace dtnic::net {

class SpatialGrid {
 public:
  /// \p cell_size should equal the query radius for the 3x3 guarantee.
  explicit SpatialGrid(double cell_size);

  SpatialGrid(const SpatialGrid&) = delete;
  SpatialGrid& operator=(const SpatialGrid&) = delete;

  /// Remove every node and cell.
  void clear();

  /// Register a node (must not already be present). Returns a stable slot
  /// handle that `update_slot` accepts, so hot callers skip the id lookup.
  std::size_t insert(util::NodeId id, util::Vec2 position);

  /// Move a node. Only touches the cell map when the node changed cell.
  void update(util::NodeId id, util::Vec2 position);

  /// Same as `update`, addressed by the slot handle `insert` returned.
  void update_slot(std::size_t slot, util::Vec2 position);

  /// Two-phase variant of `update_slot` for sharded scans. `stage_position`
  /// records the new position (the dense-array write only) and reports
  /// whether the node's cell changed; it never touches the cell pool, so
  /// distinct slots may be staged concurrently from different threads.
  /// Every slot that returned true must then be passed to `commit_move`
  /// serially — in ascending slot order for layout determinism — before the
  /// next enumeration. stage+commit is exactly equivalent to `update_slot`.
  [[nodiscard]] bool stage_position(std::size_t slot, util::Vec2 position);
  void commit_move(std::size_t slot);

  [[nodiscard]] std::size_t size() const { return slots_.size(); }
  /// Occupied cells only; empty cells are pruned, so this never exceeds
  /// size() no matter how far the population roams.
  [[nodiscard]] std::size_t cell_count() const { return cell_index_.size(); }

  /// All ids strictly within \p radius of \p center (excluding \p self).
  [[nodiscard]] std::vector<util::NodeId> neighbors_of(util::Vec2 center, double radius,
                                                       util::NodeId self) const;

  /// All unordered pairs (a, b) with a < b and distance(a, b) <= radius.
  /// \p radius must be <= cell_size.
  struct Pair {
    util::NodeId a;
    util::NodeId b;
    double distance_m;
  };
  /// Writes the pairs into \p out (cleared first), sorted by (a, b) — the
  /// emission order is independent of hash-map layout, which makes every
  /// consumer deterministic by construction. Reusing \p out across scans
  /// makes the steady state allocation-free.
  void pairs_within(double radius, std::vector<Pair>& out) const;
  /// Convenience wrapper for tests and one-shot callers.
  [[nodiscard]] std::vector<Pair> pairs_within(double radius) const;

  /// Per-caller sort buffers for `pairs_within_shard`. The single-threaded
  /// `pairs_within` reuses member scratch; shard calls run concurrently, so
  /// each shard owns one of these (reused across scans → allocation-free).
  struct SortScratch {
    std::vector<Pair> pairs;
    std::vector<std::uint32_t> offsets;
  };

  /// Deterministic owner rule for sharded enumeration: a cell belongs to the
  /// shard picked by its column, round-robin so K shards interleave columns
  /// and stay balanced for any world extent. The owning cell emits all pairs
  /// of its interior plus its half-neighborhood, so every unordered pair —
  /// including cross-shard boundary pairs — is emitted by exactly one shard.
  [[nodiscard]] static std::uint32_t shard_of_cell(std::int32_t cx, std::uint32_t shard_count) {
    const auto k = static_cast<std::int32_t>(shard_count);
    return static_cast<std::uint32_t>(((cx % k) + k) % k);
  }

  /// The subset of `pairs_within` whose emitting cell satisfies
  /// shard_of_cell(cx, shard_count) == shard, sorted by (a, b). The union
  /// over all shards equals `pairs_within` exactly (disjoint, no pair twice),
  /// so a k-way merge of the per-shard lists reproduces the serial emission
  /// bit for bit. Read-only on the grid; safe to call concurrently from one
  /// thread per shard as long as each passes its own \p scratch.
  void pairs_within_shard(double radius, std::uint32_t shard, std::uint32_t shard_count,
                          std::vector<Pair>& out, SortScratch& scratch) const;

 private:
  /// Cells store only the id and the slot back-pointer; positions live in the
  /// dense slot-indexed `positions_` array. That keeps the hot part of a cell
  /// inside one cache line and lets distance checks read a compact array that
  /// stays cache-resident across the whole scan.
  struct Entry {
    util::NodeId id;
    std::uint32_t slot;  ///< index into positions_ / back-pointer for removal
  };

  /// Entries stored inside the cell itself. At paper densities (cell size =
  /// radio range) cells hold one or two nodes, so the overflow vector is
  /// almost never touched and a scan reads only pool memory.
  static constexpr std::uint32_t kInline = 4;

  /// Half of the 8-neighborhood; visiting only these from every cell covers
  /// each unordered cell pair exactly once.
  static constexpr int kHalf[4][2] = {{1, 0}, {1, 1}, {0, 1}, {-1, 1}};

  /// Field order is deliberate: a pair scan reads count, half and items —
  /// keeping them first packs the hot bytes into the leading cache lines,
  /// with the prune/update bookkeeping (rev, coords, overflow) after.
  struct Cell {
    std::uint32_t count = 0;  ///< 0 also marks pooled-but-free cells
    /// Pool index of the half-neighborhood cell in direction kHalf[k]
    /// (fwd) and of the cell that has *this* as its kHalf[k] neighbor
    /// (rev); -1 when absent. Reciprocal by construction, so pruning a
    /// cell unlinks its whole neighborhood without hash lookups.
    std::int32_t half[4] = {-1, -1, -1, -1};
    std::array<Entry, kInline> items;  ///< entries [0, min(count, kInline))
    std::int32_t rev[4] = {-1, -1, -1, -1};
    std::int32_t cx = 0;
    std::int32_t cy = 0;
    std::vector<Entry> overflow;  ///< entries [kInline, count)
  };

  struct Slot {
    util::NodeId id;
    std::int32_t cell = -1;   ///< pool index
    std::uint32_t index = 0;  ///< position within the cell's entries
    /// Cached cell coordinates: the same-cell fast path in `update_slot`
    /// compares against these and writes `positions_` only, so a scan tick
    /// with little churn streams through two dense arrays and never touches
    /// the cell pool.
    std::int32_t cx = 0;
    std::int32_t cy = 0;
  };

  /// Packs two sign-preserved 32-bit cell coordinates into one key; unlike
  /// the old `(cx << 24) ^ cy` scheme this cannot alias distant cells or
  /// mix negative and positive coordinates.
  [[nodiscard]] static std::uint64_t key_of(std::int32_t cx, std::int32_t cy) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(cy));
  }
  [[nodiscard]] std::int32_t coord(double v) const;

  [[nodiscard]] static Entry& entry_ref(Cell& cell, std::uint32_t i) {
    return i < kInline ? cell.items[i] : cell.overflow[i - kInline];
  }
  [[nodiscard]] static const Entry& entry_ref(const Cell& cell, std::uint32_t i) {
    return i < kInline ? cell.items[i] : cell.overflow[i - kInline];
  }

  /// Find-or-create the cell at (cx, cy); returns its pool index.
  std::uint32_t cell_at(std::int32_t cx, std::int32_t cy);
  /// Order pairs by (a, b); counting sort on dense ids, std::sort fallback.
  /// Scratch buffers are parameters so concurrent shard calls don't share.
  void sort_pairs(std::vector<Pair>& v, std::vector<Pair>& scratch,
                  std::vector<std::uint32_t>& offsets) const;
  /// Emit every pair whose owning cell passes \p want_cell, unsorted.
  template <typename CellFilter>
  void emit_pairs(double radius, std::vector<Pair>& out, CellFilter&& want_cell) const;
  void place(std::uint32_t slot, std::uint32_t cell_index);
  /// Swap-remove the slot's entry from its cell; prunes the cell if emptied.
  void unplace(std::uint32_t slot);

  double cell_size_;
  double inv_cell_size_;  ///< coord() multiplies instead of dividing
  /// Largest id ever inserted; lets the pair sort use an id-indexed
  /// counting pass instead of a generic comparison sort.
  std::uint32_t max_id_ = 0;
  std::vector<Cell> pool_;
  std::vector<std::uint32_t> free_cells_;
  std::unordered_map<std::uint64_t, std::uint32_t> cell_index_;
  std::vector<Slot> slots_;
  std::vector<util::Vec2> positions_;  ///< slot-indexed; the scan's hot array
  std::unordered_map<util::NodeId, std::uint32_t> slot_of_;
  /// Sort double buffer and per-id bucket offsets, kept across scans so the
  /// steady state does not allocate.
  mutable std::vector<Pair> sort_scratch_;
  mutable std::vector<std::uint32_t> sort_offsets_;
};

}  // namespace dtnic::net
