#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mobility/mobility_model.h"
#include "net/contact_source.h"
#include "net/radio.h"
#include "net/spatial_grid.h"
#include "sim/simulator.h"
#include "util/ids.h"

/// \file connectivity.h
/// Contact detection. Positions are sampled every scan interval; a pair of
/// nodes within radio range forms a contact (link up) and loses it when the
/// range is exceeded (link down). A participation gate is consulted once per
/// fresh encounter per node — this is how selfish nodes "switch off the
/// communication medium" (paper §5.A: the radio is open 1 of 10 encounters).

namespace dtnic::net {

using util::NodeId;

class ConnectivityManager final : public ContactSource {
 public:
  ConnectivityManager(sim::Simulator& sim, const RadioParams& radio,
                      util::SimTime scan_interval);

  /// Register a node; \p mobility must outlive the manager.
  void add_node(NodeId id, mobility::MobilityModel* mobility);

  void on_link_up(LinkUpFn fn) override { link_up_ = std::move(fn); }
  void on_link_down(LinkDownFn fn) override { link_down_ = std::move(fn); }
  void set_participation_gate(ParticipationGate gate) override { gate_ = std::move(gate); }

  /// Begin periodic scanning (first scan at the current time).
  void start() override;
  void stop();

  /// Run a single scan immediately (also used by tests).
  void scan();

  [[nodiscard]] bool connected(NodeId a, NodeId b) const;
  [[nodiscard]] std::vector<NodeId> neighbors_of(NodeId id) const override;
  /// All currently connected pairs, sorted (deterministic iteration).
  [[nodiscard]] std::vector<std::pair<NodeId, NodeId>> connected_pairs() const override;
  [[nodiscard]] std::size_t active_links() const;
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  /// Nodes currently holding a non-empty neighbor set (bounded-growth
  /// invariant: never exceeds the nodes with at least one live link).
  [[nodiscard]] std::size_t adjacency_entries() const { return adjacency_.size(); }

  /// Position of a node at the current simulation time.
  [[nodiscard]] util::Vec2 position_of(NodeId id);

  /// Total contacts formed so far (suppressed encounters excluded).
  [[nodiscard]] std::uint64_t contacts_formed() const override { return contacts_formed_; }
  /// Encounters suppressed by the participation gate.
  [[nodiscard]] std::uint64_t contacts_suppressed() const override {
    return contacts_suppressed_;
  }

 private:
  enum class PairState { kConnected, kSuppressed };

  static std::uint64_t pair_key(NodeId a, NodeId b);

  /// Remove \p neighbor from \p node's adjacency set without ever creating
  /// an entry; erases the set once empty.
  void drop_adjacency(NodeId node, NodeId neighbor);

  sim::Simulator& sim_;
  RadioParams radio_;
  util::SimTime scan_interval_;
  sim::EventId scan_task_{};

  struct NodeEntry {
    NodeId id;
    mobility::MobilityModel* mobility;
  };
  std::vector<NodeEntry> nodes_;
  std::unordered_map<NodeId, std::size_t> node_index_;

  SpatialGrid grid_;
  std::unordered_map<std::uint64_t, PairState> pair_states_;
  std::unordered_map<NodeId, std::unordered_set<NodeId>> adjacency_;

  LinkUpFn link_up_;
  LinkDownFn link_down_;
  ParticipationGate gate_;

  std::uint64_t contacts_formed_ = 0;
  std::uint64_t contacts_suppressed_ = 0;
};

}  // namespace dtnic::net
