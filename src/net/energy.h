#pragma once

#include "net/radio.h"
#include "util/sim_time.h"

/// \file energy.h
/// Friis free-space propagation model and per-node battery accounting.
///
/// The paper's hardware incentive factor (§3.2) is a function of transmit
/// power P_t and the Friis received power P_r = P_t / L_v with path loss
/// L_v = (4πR/λ)². FriisModel computes those quantities; Battery tracks the
/// realistic device-side energy drain used by RELICS-style energy stats.

namespace dtnic::net {

struct FriisModel {
  /// Free-space path loss L_v = (4πR/λ)²; distance 0 is clamped to a
  /// near-field floor of one wavelength so the loss never drops below 1.
  [[nodiscard]] static double path_loss(double distance_m, double wavelength_m);

  /// Received signal power P_r = P_t / L_v (watts).
  [[nodiscard]] static double received_power(double tx_power_w, double distance_m,
                                             double wavelength_m);
};

/// Per-node battery. Consumption is tracked in joules; a depleted battery is
/// reported but does not halt the node unless the scenario chooses to act on
/// it (the paper treats energy as an incentive input, not a hard cutoff).
class Battery {
 public:
  explicit Battery(double capacity_j = 20'000.0);

  /// Re-initialize with a new capacity, clearing consumption (scenario
  /// setup; batteries are value members of their hosts).
  void reset(double capacity_j);

  void consume(double joules);
  void consume_tx(const RadioParams& radio, util::SimTime duration);
  void consume_rx(const RadioParams& radio, util::SimTime duration);

  [[nodiscard]] double capacity_j() const { return capacity_j_; }
  [[nodiscard]] double consumed_j() const { return consumed_j_; }
  [[nodiscard]] double remaining_j() const;
  [[nodiscard]] bool depleted() const { return consumed_j_ >= capacity_j_; }
  /// Fraction remaining in [0,1].
  [[nodiscard]] double level() const;

 private:
  double capacity_j_;
  double consumed_j_ = 0.0;
};

}  // namespace dtnic::net
