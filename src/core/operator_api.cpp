#include "core/operator_api.h"

#include "util/assert.h"

namespace dtnic::core {

DtnOperator::DtnOperator(routing::Host& host, routing::StaticInterestOracle& oracle,
                         msg::KeywordTable& keywords, msg::MessageIdSource& ids)
    : host_(host),
      oracle_(oracle),
      keywords_(keywords),
      ids_(ids),
      router_(*[&host]() {
        IncentiveRouter* r = IncentiveRouter::of(host);
        DTNIC_REQUIRE_MSG(r != nullptr, "DtnOperator requires an IncentiveRouter host");
        return r;
      }()) {}

msg::Message& DtnOperator::annotate(const std::vector<std::string>& labels, util::SimTime now,
                                    std::uint64_t size_bytes, msg::Priority priority,
                                    double quality, std::optional<msg::GeoTag> location) {
  DTNIC_REQUIRE_MSG(!labels.empty(), "a message needs at least one keyword");
  msg::Message m(ids_.next(), host_.id(), now, size_bytes, priority, quality);
  if (location) m.set_location(*location);
  std::vector<msg::KeywordId> truth;
  for (const std::string& label : labels) {
    const msg::KeywordId k = keywords_.intern(label);
    truth.push_back(k);
    m.annotate(msg::Annotation{k, host_.id(), /*truthful=*/true});
  }
  m.set_true_keywords(std::move(truth));
  const msg::MessageId id = m.id();
  host_.mark_seen(id);
  auto outcome = host_.buffer().add(std::move(m), /*own=*/true);
  DTNIC_REQUIRE_MSG(outcome.result == msg::MessageBuffer::AddResult::kAdded,
                    "message does not fit in the device buffer");
  msg::Message* stored = host_.buffer().find_mutable(id);
  DTNIC_ASSERT(stored != nullptr);
  host_.events().on_created(*stored);
  router_.on_originated(host_, *stored, now);
  return *stored;
}

void DtnOperator::subscribe(const std::vector<std::string>& interests, util::SimTime now) {
  std::vector<msg::KeywordId> ids;
  ids.reserve(interests.size());
  for (const std::string& name : interests) ids.push_back(keywords_.intern(name));
  // Merge with any existing subscriptions.
  auto existing = oracle_.interests_of(host_.id());
  std::vector<msg::KeywordId> all(existing.begin(), existing.end());
  all.insert(all.end(), ids.begin(), ids.end());
  oracle_.set_interests(host_.id(), all);
  router_.set_direct_interests(ids, now);
}

void DtnOperator::decay_weights(util::SimTime now) {
  router_.interests().decay(now, nullptr);
}

void DtnOperator::increment_weights(const routing::Peer& peer, util::SimTime now) {
  const routing::chitchat::InterestTable* table = peer.interest_table();
  DTNIC_REQUIRE_MSG(table != nullptr, "peer does not expose a ChitChat interest table");
  router_.interests().grow_from(*table, now,
                                router_.interests().params().growth_contact_cap_s);
}

std::vector<msg::MessageId> DtnOperator::messages_to_forward(const routing::Peer& peer,
                                                             util::SimTime now) {
  std::vector<routing::ForwardPlan> plans;
  router_.plan_for_peer(host_, peer, now, plans);
  std::vector<msg::MessageId> out;
  out.reserve(plans.size());
  for (const routing::ForwardPlan& plan : plans) out.push_back(plan.message);
  return out;
}

routing::TransferRole DtnOperator::decide_role(const msg::Message& m,
                                               const routing::Peer& peer) const {
  return oracle_.is_destination(peer.id(), m) ? routing::TransferRole::kDestination
                                              : routing::TransferRole::kRelay;
}

routing::Peer* DtnOperator::best_relay(const std::vector<routing::Peer*>& candidates,
                                       const msg::Message& m) const {
  routing::Peer* best = nullptr;
  double best_strength = 0.0;
  for (routing::Peer* candidate : candidates) {
    if (candidate == nullptr || candidate->interest_table() == nullptr) continue;
    const double strength = candidate->message_strength(m);
    if (strength > best_strength) {
      best_strength = strength;
      best = candidate;
    }
  }
  return best;
}

double DtnOperator::compute_incentive(const msg::Message& m, const routing::Peer& peer) {
  return router_.compute_promise(host_, peer, m);
}

double DtnOperator::rate_message(const msg::Message& m) {
  util::Rng rng(m.id().value() ^ host_.id().value());  // deterministic per (user, message)
  return MessageJudgement::rate_source(m, router_.ratings().params(), rng);
}

double DtnOperator::rate_node(routing::NodeId node) const {
  return router_.ratings().rating_of(node);
}

int DtnOperator::enrich(msg::MessageId id, const std::vector<std::string>& labels,
                        bool truthful) {
  msg::Message* m = host_.buffer().find_mutable(id);
  DTNIC_REQUIRE_MSG(m != nullptr, "message not in this device's buffer");
  int added = 0;
  for (const std::string& label : labels) {
    const msg::KeywordId k = keywords_.intern(label);
    if (m->annotate(msg::Annotation{k, host_.id(), truthful})) ++added;
  }
  return added;
}

}  // namespace dtnic::core
