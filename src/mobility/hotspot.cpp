#include "mobility/hotspot.h"

#include <cmath>
#include <numbers>

#include "util/assert.h"

namespace dtnic::mobility {

HotspotMobility::HotspotMobility(const HotspotParams& params, util::Rng rng)
    : params_(params), rng_(rng) {
  DTNIC_REQUIRE(params.area.width > 0.0 && params.area.height > 0.0);
  DTNIC_REQUIRE_MSG(!params.hotspots.empty(), "hotspot mobility needs at least one hotspot");
  DTNIC_REQUIRE(params.hotspot_radius_m > 0.0);
  DTNIC_REQUIRE(params.hotspot_probability >= 0.0 && params.hotspot_probability <= 1.0);
  DTNIC_REQUIRE(params.min_speed_mps > 0.0);
  DTNIC_REQUIRE(params.max_speed_mps >= params.min_speed_mps);
  for (const util::Vec2& h : params.hotspots) {
    DTNIC_REQUIRE_MSG(params.area.contains(h), "hotspot outside the area");
  }
  from_ = next_waypoint();
  to_ = from_;
}

std::vector<util::Vec2> HotspotMobility::generate_hotspots(const Area& area,
                                                           std::size_t count,
                                                           util::Rng& rng) {
  DTNIC_REQUIRE(count >= 1);
  std::vector<util::Vec2> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back({rng.uniform(0.0, area.width), rng.uniform(0.0, area.height)});
  }
  return out;
}

util::Vec2 HotspotMobility::next_waypoint() {
  if (!rng_.chance(params_.hotspot_probability)) {
    return {rng_.uniform(0.0, params_.area.width), rng_.uniform(0.0, params_.area.height)};
  }
  const util::Vec2 center = params_.hotspots[rng_.index(params_.hotspots.size())];
  // Uniform over the disc: radius ∝ sqrt(u).
  const double r = params_.hotspot_radius_m * std::sqrt(rng_.uniform());
  const double angle = rng_.uniform(0.0, 2.0 * std::numbers::pi);
  return params_.area.clamp(center + util::Vec2{std::cos(angle), std::sin(angle)} * r);
}

void HotspotMobility::advance_leg() {
  from_ = to_;
  to_ = next_waypoint();
  const double speed = rng_.uniform(params_.min_speed_mps, params_.max_speed_mps);
  leg_start_s_ = pause_until_s_;
  arrive_s_ = leg_start_s_ + util::distance(from_, to_) / speed;
  pause_until_s_ = arrive_s_ + rng_.uniform(params_.min_pause_s, params_.max_pause_s);
}

util::Vec2 HotspotMobility::position_at(util::SimTime t) {
  const double ts = t.sec();
  while (ts > pause_until_s_) advance_leg();
  if (ts >= arrive_s_) return to_;
  if (ts <= leg_start_s_) return from_;
  const double frac = (ts - leg_start_s_) / (arrive_s_ - leg_start_s_);
  return util::lerp(from_, to_, frac);
}

}  // namespace dtnic::mobility
