#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/sim_time.h"

/// Property tests for the timing-wheel EventQueue: fire order must be
/// indistinguishable from the reference semantics the old binary heap
/// implemented — strictly by (time, insertion sequence) — under arbitrary
/// interleavings of push, cancel and pop, including pushes into the past,
/// equal-time bursts, far-future and infinite times, and periodic re-arming
/// through Simulator::schedule_every_from.

namespace dtnic::sim {
namespace {

using util::SimTime;

/// Oracle: ordered set of (time, seq) with the token the callback reports.
struct RefModel {
  struct Key {
    double time;
    std::uint64_t seq;
    int token;
    bool operator<(const Key& o) const {
      if (time != o.time) return time < o.time;
      return seq < o.seq;
    }
  };
  std::set<Key> pending;
};

TEST(EventQueueProperty, MatchesReferenceOrderUnderRandomInterleavings) {
  util::Rng rng(424242);
  EventQueue q;
  RefModel ref;
  std::vector<std::pair<EventId, RefModel::Key>> live;  // cancellable handles
  std::vector<int> fired;
  int next_token = 0;
  std::uint64_t next_seq = 0;
  double last_popped = 0.0;

  const auto do_push = [&](double time) {
    const int token = next_token++;
    const RefModel::Key key{time, next_seq++, token};
    const EventId id = q.push(SimTime::seconds(time), [&fired, token] { fired.push_back(token); });
    ref.pending.insert(key);
    live.emplace_back(id, key);
  };
  const auto do_pop = [&] {
    ASSERT_FALSE(ref.pending.empty());
    const RefModel::Key expect = *ref.pending.begin();
    ASSERT_FALSE(q.empty());
    EXPECT_EQ(q.next_time(), SimTime::seconds(expect.time));
    const auto popped = q.pop();
    EXPECT_EQ(popped.time, SimTime::seconds(expect.time));
    popped.fn();
    ASSERT_FALSE(fired.empty());
    EXPECT_EQ(fired.back(), expect.token) << "fire order diverged from (time, seq)";
    ref.pending.erase(ref.pending.begin());
    last_popped = expect.time;
  };

  for (int step = 0; step < 20000; ++step) {
    const std::uint64_t dice = rng.below(100);
    if (dice < 55) {
      double time;
      const std::uint64_t shape = rng.below(100);
      if (shape < 10 && !ref.pending.empty()) {
        // Duplicate an already-pending time: forces (time, seq) tiebreaks.
        auto it = ref.pending.begin();
        std::advance(it, static_cast<std::ptrdiff_t>(rng.below(ref.pending.size())));
        time = it->time;
      } else if (shape < 20) {
        time = last_popped;  // exactly "now"
      } else if (shape < 28) {
        // Into the past relative to the last pop — the heap accepted these
        // and fired them next; the wheel must too.
        time = std::max(0.0, last_popped - rng.uniform(0.0, 10.0));
      } else if (shape < 31) {
        time = last_popped + rng.uniform(1e5, 1e7);  // far future: high levels
      } else if (shape < 33) {
        time = std::numeric_limits<double>::infinity();
      } else {
        time = last_popped + rng.uniform(0.0, 120.0);
      }
      do_push(time);
    } else if (dice < 75) {
      if (!live.empty()) {
        const std::size_t pick = rng.below(live.size());
        const auto [id, key] = live[pick];
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
        // The handle may refer to an event that already fired; cancel must
        // be harmless then (and cancel twice likewise).
        q.cancel(id);
        q.cancel(id);
        ref.pending.erase(key);
      }
    } else {
      if (!ref.pending.empty()) do_pop();
    }
    ASSERT_EQ(q.size(), ref.pending.size());
    ASSERT_EQ(q.empty(), ref.pending.empty());
  }
  while (!ref.pending.empty()) do_pop();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.heap_entries(), 0u);
  EXPECT_EQ(q.cancelled_entries(), 0u);
}

TEST(EventQueueProperty, CancelHeavyBucketDrainCompacts) {
  // Regression for the named compaction policy: strand a large sorted bucket
  // (every event in one tick), cancel almost all of it, and require the
  // bucket bookkeeping to stay bounded by the threshold instead of the
  // cancellation history.
  EventQueue q;
  std::vector<EventId> ids;
  int fired = 0;
  for (int i = 0; i < 2048; ++i) {
    ids.push_back(q.push(SimTime::seconds(1.0), [&fired] { ++fired; }));
  }
  // Pop (and fire) one event so the tick's bucket is formed and the rest
  // are bucketed.
  q.pop().fn();
  std::size_t cancelled = 0;
  for (std::size_t i = 1; i < ids.size(); ++i) {
    if (i % 16 == 0) continue;  // survivors
    q.cancel(ids[i]);
    ++cancelled;
    // The dead never exceed the threshold plus the live remainder: once they
    // outnumber live entries past kCompactionThreshold, compaction runs.
    ASSERT_LE(q.cancelled_entries(), EventQueue::kCompactionThreshold + q.size());
  }
  ASSERT_GT(cancelled, 1500u);
  // Policy invariant: dead records never exceed max(live, threshold), so
  // total bookkeeping is bounded by the live count, not by the 1900+
  // cancellations issued.
  EXPECT_LE(q.heap_entries(), q.size() + std::max(q.size(), EventQueue::kCompactionThreshold));
  // Survivors still fire, in order.
  SimTime prev = SimTime::zero();
  while (!q.empty()) {
    const auto popped = q.pop();
    EXPECT_GE(popped.time, prev);
    prev = popped.time;
    popped.fn();
  }
  EXPECT_EQ(fired, 1 + 2048 / 16 - 1);
  EXPECT_EQ(q.heap_entries(), 0u);
  EXPECT_EQ(q.cancelled_entries(), 0u);
}

TEST(EventQueueProperty, PeriodicInterleavingsFireInSchedulingOrder) {
  // schedule_every_from re-arms by pushing from inside the fired callback,
  // so at a coincident time the one-shot scheduled at setup (lower seq)
  // precedes the periodic re-arms, and periodic A precedes periodic B
  // because A fired (and re-armed) first. A cancelled periodic stops even
  // with a tick already queued.
  Simulator s;
  std::vector<std::string> log;
  const EventId a = s.schedule_every_from(SimTime::seconds(10.0), SimTime::seconds(10.0),
                                          [&log] { log.push_back("A"); });
  const EventId b = s.schedule_every_from(SimTime::seconds(10.0), SimTime::seconds(10.0),
                                          [&log] { log.push_back("B"); });
  (void)a;
  s.schedule_at(SimTime::seconds(20.0), [&log] { log.push_back("one20"); });
  s.schedule_at(SimTime::seconds(25.0), [&log, &s, b] {
    log.push_back("cancelB");
    s.cancel(b);
  });
  s.run_until(SimTime::seconds(40.0));
  // t=10: A, B. t=20: the setup-time one-shot has the lower seq, then the
  // re-arms in firing order. t=25: cancelB. t=30: A only (B's queued tick is
  // dead). t=40: A.
  const std::vector<std::string> expect{"A", "B", "one20", "A", "B", "cancelB", "A", "A"};
  EXPECT_EQ(log, expect);
}

}  // namespace
}  // namespace dtnic::sim
