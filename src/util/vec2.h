#pragma once

#include <cmath>
#include <ostream>

/// \file vec2.h
/// Minimal 2D vector used for node positions and movement, in metres.

namespace dtnic::util {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

  friend constexpr Vec2 operator+(Vec2 a, Vec2 b) { return {a.x + b.x, a.y + b.y}; }
  friend constexpr Vec2 operator-(Vec2 a, Vec2 b) { return {a.x - b.x, a.y - b.y}; }
  friend constexpr Vec2 operator*(Vec2 a, double k) { return {a.x * k, a.y * k}; }
  friend constexpr Vec2 operator*(double k, Vec2 a) { return {a.x * k, a.y * k}; }
  friend constexpr Vec2 operator/(Vec2 a, double k) { return {a.x / k, a.y / k}; }
  friend constexpr bool operator==(Vec2 a, Vec2 b) { return a.x == b.x && a.y == b.y; }

  [[nodiscard]] double norm() const { return std::hypot(x, y); }
  [[nodiscard]] constexpr double norm_sq() const { return x * x + y * y; }

  friend std::ostream& operator<<(std::ostream& os, Vec2 v) {
    return os << "(" << v.x << ", " << v.y << ")";
  }
};

[[nodiscard]] inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }
[[nodiscard]] constexpr double distance_sq(Vec2 a, Vec2 b) { return (a - b).norm_sq(); }

/// Linear interpolation between \p a and \p b; t=0 gives a, t=1 gives b.
[[nodiscard]] constexpr Vec2 lerp(Vec2 a, Vec2 b, double t) { return a + (b - a) * t; }

}  // namespace dtnic::util
