#pragma once

#include <compare>
#include <cmath>
#include <limits>
#include <ostream>

/// \file sim_time.h
/// Simulation time as a strong type over seconds. Keeps durations and
/// absolute instants from silently mixing with plain doubles in formulas.

namespace dtnic::util {

/// An instant (or duration) on the simulation clock, in seconds.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(double seconds) : seconds_(seconds) {}

  [[nodiscard]] static constexpr SimTime zero() { return SimTime(0.0); }
  [[nodiscard]] static constexpr SimTime seconds(double s) { return SimTime(s); }
  [[nodiscard]] static constexpr SimTime minutes(double m) { return SimTime(m * 60.0); }
  [[nodiscard]] static constexpr SimTime hours(double h) { return SimTime(h * 3600.0); }
  [[nodiscard]] static constexpr SimTime infinity() {
    return SimTime(std::numeric_limits<double>::infinity());
  }

  [[nodiscard]] constexpr double sec() const { return seconds_; }
  [[nodiscard]] constexpr bool finite() const { return std::isfinite(seconds_); }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  constexpr SimTime& operator+=(SimTime d) { seconds_ += d.seconds_; return *this; }
  constexpr SimTime& operator-=(SimTime d) { seconds_ -= d.seconds_; return *this; }

  friend constexpr SimTime operator+(SimTime a, SimTime b) { return SimTime(a.seconds_ + b.seconds_); }
  friend constexpr SimTime operator-(SimTime a, SimTime b) { return SimTime(a.seconds_ - b.seconds_); }
  friend constexpr SimTime operator*(SimTime a, double k) { return SimTime(a.seconds_ * k); }
  friend constexpr SimTime operator*(double k, SimTime a) { return SimTime(a.seconds_ * k); }
  friend constexpr SimTime operator/(SimTime a, double k) { return SimTime(a.seconds_ / k); }
  /// Ratio of two durations (dimensionless).
  friend constexpr double operator/(SimTime a, SimTime b) { return a.seconds_ / b.seconds_; }

  friend std::ostream& operator<<(std::ostream& os, SimTime t) { return os << t.seconds_ << "s"; }

 private:
  double seconds_ = 0.0;
};

}  // namespace dtnic::util
