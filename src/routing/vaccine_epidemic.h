#pragma once

#include <unordered_set>

#include "routing/epidemic.h"

/// \file vaccine_epidemic.h
/// Immunity-based epidemic routing (the thesis §1.1 names it as a classic
/// epidemic variant): when a destination receives a message it becomes
/// "immune" and an antipacket spreads on every subsequent contact. Immune
/// nodes purge their stored copy and refuse new ones, so the flood recedes
/// behind the delivery wavefront — epidemic reach at a fraction of its
/// steady-state buffer and traffic cost.
///
/// With interest-addressed (multi-destination) messages, immunization after
/// the FIRST delivery trades the remaining destinations for the traffic
/// saving; this is the classic antipacket semantics and is measured in the
/// baseline comparison bench.

namespace dtnic::routing {

class VaccineEpidemicRouter : public EpidemicRouter {
 public:
  explicit VaccineEpidemicRouter(const DestinationOracle& oracle)
      : EpidemicRouter(oracle, RouterKind::kVaccineEpidemic) {}

  void on_link_up(Host& self, Host& peer, util::SimTime now, double distance_m) override;
  [[nodiscard]] AcceptDecision accept(Host& self, const Peer& from, const msg::Message& m,
                                      const ForwardPlan& offer, util::SimTime now) override;
  void on_received(Host& self, Host& from, msg::Message m, const ForwardPlan& plan,
                   util::SimTime now) override;
  [[nodiscard]] std::vector<ForwardPlan> plan(Host& self, Host& peer,
                                              util::SimTime now) override;

  [[nodiscard]] bool immune_to(MessageId id) const { return immune_.count(id) > 0; }
  [[nodiscard]] std::size_t immunity_count() const { return immune_.size(); }

  [[nodiscard]] static VaccineEpidemicRouter* of(Host& host);

 private:
  /// Merge the peer's antipackets and purge newly immunized copies.
  void absorb_immunity(Host& self, const VaccineEpidemicRouter& other);

  std::unordered_set<MessageId> immune_;
};

}  // namespace dtnic::routing
