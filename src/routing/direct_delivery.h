#pragma once

#include "routing/router.h"

/// \file direct_delivery.h
/// Direct-contact routing: a message leaves its source only when the source
/// meets a destination. Minimal overhead, minimal delivery ratio — the lower
/// baseline of §1.1.

namespace dtnic::routing {

class DirectDeliveryRouter : public Router {
 public:
  explicit DirectDeliveryRouter(const DestinationOracle& oracle)
      : Router(oracle, RouterKind::kDirectDelivery) {}

  [[nodiscard]] std::vector<ForwardPlan> plan(Host& self, Host& peer,
                                              util::SimTime now) override;
};

}  // namespace dtnic::routing
