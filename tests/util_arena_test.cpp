#include <gtest/gtest.h>

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "util/arena.h"

namespace dtnic::util::arena {
namespace {

TEST(Arena, RecyclesBlocksLifo) {
  if (!enabled()) GTEST_SKIP() << "arena disabled (sanitizer build)";
  void* a = allocate(64);
  ASSERT_NE(a, nullptr);
  deallocate(a, 64);
  // Same size class -> the freed block is handed straight back.
  void* b = allocate(64);
  EXPECT_EQ(a, b);
  // A different size class draws from a different free list.
  void* c = allocate(128);
  EXPECT_NE(b, c);
  deallocate(b, 64);
  deallocate(c, 128);
}

TEST(Arena, SteadyStateStopsRequestingChunks) {
  if (!enabled()) GTEST_SKIP() << "arena disabled (sanitizer build)";
  void* warm = allocate(48);
  deallocate(warm, 48);
  const ThreadStats before = thread_stats();
  for (int i = 0; i < 10000; ++i) {
    void* p = allocate(48);
    deallocate(p, 48);
  }
  const ThreadStats after = thread_stats();
  EXPECT_EQ(after.chunk_allocs, before.chunk_allocs);
  EXPECT_EQ(after.pool_allocs - before.pool_allocs, 10000u);
  EXPECT_EQ(after.pool_frees - before.pool_frees, 10000u);
}

TEST(Arena, LargeRequestsPassThrough) {
  const ThreadStats before = thread_stats();
  void* p = allocate(kMaxPooledBytes + 1);
  ASSERT_NE(p, nullptr);
  deallocate(p, kMaxPooledBytes + 1);
  const ThreadStats after = thread_stats();
  if (enabled()) EXPECT_EQ(after.passthrough - before.passthrough, 1u);
}

TEST(Arena, PoolAllocatorDrivesNodeContainers) {
  std::list<int, PoolAllocator<int>> l;
  for (int i = 0; i < 100; ++i) l.push_back(i);
  EXPECT_EQ(l.front(), 0);
  EXPECT_EQ(l.back(), 99);
  l.clear();

  std::unordered_map<int, std::uint64_t, std::hash<int>, std::equal_to<int>,
                     PoolAllocator<std::pair<const int, std::uint64_t>>>
      m;
  for (int i = 0; i < 100; ++i) m[i] = static_cast<std::uint64_t>(i) * 3;
  EXPECT_EQ(m.at(42), 126u);
  m.erase(42);
  EXPECT_EQ(m.count(42), 0u);

  // Allocators of different value types compare equal (stateless pool).
  EXPECT_TRUE((PoolAllocator<int>{} == PoolAllocator<double>{}));
}

TEST(Arena, ManyLiveBlocksThenFreeAll) {
  // Forces multiple chunk grabs, then returns everything; the blocks must
  // all be distinct and remain usable while live.
  std::vector<void*> blocks;
  const std::size_t n = 3000;
  for (std::size_t i = 0; i < n; ++i) {
    void* p = allocate(40);
    *static_cast<std::uint64_t*>(p) = i;
    blocks.push_back(p);
  }
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(*static_cast<std::uint64_t*>(blocks[i]), i);
    deallocate(blocks[i], 40);
  }
}

}  // namespace
}  // namespace dtnic::util::arena
