#include "live/udp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace dtnic::live {

std::optional<Endpoint> parse_endpoint(const std::string& s) {
  const std::size_t colon = s.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= s.size()) return std::nullopt;
  Endpoint ep;
  ep.host = s.substr(0, colon);
  in_addr probe{};
  if (inet_pton(AF_INET, ep.host.c_str(), &probe) != 1) return std::nullopt;
  const std::string port_str = s.substr(colon + 1);
  char* end = nullptr;
  const long port = std::strtol(port_str.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || port < 1 || port > 65535) return std::nullopt;
  ep.port = static_cast<std::uint16_t>(port);
  return ep;
}

namespace {

sockaddr_in to_sockaddr(const Endpoint& ep) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  if (inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1) {
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  }
  return addr;
}

}  // namespace

UdpSocket::UdpSocket(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) throw std::runtime_error("udp: socket() failed: " + std::string(strerror(errno)));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string why = strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("udp: bind(" + std::to_string(port) + ") failed: " + why);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    local_port_ = ntohs(bound.sin_port);
  }
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
}

UdpSocket::~UdpSocket() {
  if (fd_ >= 0) ::close(fd_);
}

bool UdpSocket::send_to(const Endpoint& to, std::span<const std::uint8_t> bytes) {
  const sockaddr_in addr = to_sockaddr(to);
  const ssize_t sent = ::sendto(fd_, bytes.data(), bytes.size(), 0,
                                reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  return sent == static_cast<ssize_t>(bytes.size());
}

std::optional<UdpSocket::Datagram> UdpSocket::receive() {
  std::uint8_t buf[65536];
  sockaddr_in from{};
  socklen_t from_len = sizeof(from);
  const ssize_t n = ::recvfrom(fd_, buf, sizeof(buf), 0,
                               reinterpret_cast<sockaddr*>(&from), &from_len);
  if (n < 0) return std::nullopt;  // EWOULDBLOCK or a transient error: no datagram
  Datagram d;
  char host[INET_ADDRSTRLEN] = {0};
  if (inet_ntop(AF_INET, &from.sin_addr, host, sizeof(host)) != nullptr) d.from.host = host;
  d.from.port = ntohs(from.sin_port);
  d.bytes.assign(buf, buf + n);
  return d;
}

}  // namespace dtnic::live
