#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>

#include "sim/simulator.h"
#include "util/ids.h"

/// \file transfer.h
/// Bandwidth-limited store-and-forward transfers over active contacts.
/// A contact carries one transfer at a time (Bluetooth-style, per the demo
/// paper); duration = bytes / bitrate; a link that goes down mid-transfer
/// aborts the transfer and the receiver keeps nothing.

namespace dtnic::net {

using util::MessageId;
using util::NodeId;

class TransferManager {
 public:
  struct Transfer {
    NodeId from;
    NodeId to;
    MessageId message;
    std::uint64_t bytes = 0;
    util::SimTime started;
  };

  /// \p duration is the wall-clock (simulated) transfer time — the paper's
  /// hardware incentive factor is proportional to it.
  using CompleteFn = std::function<void(const Transfer&, util::SimTime duration)>;
  using AbortFn = std::function<void(const Transfer&)>;

  TransferManager(sim::Simulator& sim, double bitrate_bps);
  /// Cancels every pending completion event: those events capture `this`, so
  /// letting them outlive the manager would fire into freed memory.
  ~TransferManager();

  TransferManager(const TransferManager&) = delete;
  TransferManager& operator=(const TransferManager&) = delete;

  void on_complete(CompleteFn fn) { complete_ = std::move(fn); }
  void on_abort(AbortFn fn) { abort_ = std::move(fn); }

  /// Contact lifecycle, driven by ConnectivityManager callbacks. Both are
  /// idempotent: a duplicate link_up for a tracked pair is a no-op that
  /// preserves any in-flight transfer (it must not reset the link), and a
  /// duplicate link_down is a no-op that cannot abort twice — required once
  /// boundary links can be reported by more than one contact source.
  void link_up(NodeId a, NodeId b);
  void link_down(NodeId a, NodeId b);

  /// Pure reads of the link table. The scenario's staged exchange calls
  /// both concurrently from plan tasks while no mutator can run (link
  /// up/down and start() happen only on the serial commit side), so they
  /// must stay side-effect-free const lookups.
  [[nodiscard]] bool link_exists(NodeId a, NodeId b) const;
  [[nodiscard]] bool link_busy(NodeId a, NodeId b) const;
  /// Links currently tracked / transfers currently in flight (leak checks).
  [[nodiscard]] std::size_t links_tracked() const { return links_.size(); }
  [[nodiscard]] std::size_t transfers_in_flight() const;

  /// Begin a transfer; returns false if the link is absent or busy.
  bool start(NodeId from, NodeId to, MessageId message, std::uint64_t bytes);

  /// Duration a transfer of \p bytes takes on this radio.
  [[nodiscard]] util::SimTime duration_for(std::uint64_t bytes) const;

  [[nodiscard]] std::uint64_t transfers_started() const { return started_; }
  [[nodiscard]] std::uint64_t transfers_completed() const { return completed_; }
  [[nodiscard]] std::uint64_t transfers_aborted() const { return aborted_; }
  [[nodiscard]] std::uint64_t bytes_delivered() const { return bytes_delivered_; }

 private:
  struct InFlight {
    Transfer transfer;
    sim::EventId completion;
  };
  struct LinkState {
    std::optional<InFlight> in_flight;
  };

  static std::uint64_t pair_key(NodeId a, NodeId b);
  void finish(std::uint64_t key);

  sim::Simulator& sim_;
  double bitrate_bps_;
  std::unordered_map<std::uint64_t, LinkState> links_;
  CompleteFn complete_;
  AbortFn abort_;
  std::uint64_t started_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t aborted_ = 0;
  std::uint64_t bytes_delivered_ = 0;
};

}  // namespace dtnic::net
