#include "net/connectivity.h"

#include <algorithm>

#include "util/assert.h"

namespace dtnic::net {

ConnectivityManager::ConnectivityManager(sim::Simulator& sim, const RadioParams& radio,
                                         util::SimTime scan_interval)
    : sim_(sim), radio_(radio), scan_interval_(scan_interval), grid_(radio.range_m) {
  DTNIC_REQUIRE(radio.range_m > 0.0);
  DTNIC_REQUIRE(scan_interval > util::SimTime::zero());
}

void ConnectivityManager::add_node(NodeId id, mobility::MobilityModel* mobility) {
  DTNIC_REQUIRE(id.valid());
  DTNIC_REQUIRE_MSG(mobility != nullptr, "mobility model required");
  DTNIC_REQUIRE_MSG(!node_index_.count(id), "node already registered");
  node_index_.emplace(id, nodes_.size());
  nodes_.push_back(NodeEntry{id, mobility});
}

std::uint64_t ConnectivityManager::pair_key(NodeId a, NodeId b) {
  const auto lo = std::min(a.value(), b.value());
  const auto hi = std::max(a.value(), b.value());
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

void ConnectivityManager::start() {
  DTNIC_REQUIRE_MSG(!scan_task_.valid(), "already started");
  scan_task_ = sim_.schedule_every_from(sim_.now(), scan_interval_, [this] { scan(); });
}

void ConnectivityManager::stop() {
  if (scan_task_.valid()) {
    sim_.cancel(scan_task_);
    scan_task_ = {};
  }
}

void ConnectivityManager::scan() {
  const util::SimTime now = sim_.now();
  grid_.clear();
  for (const NodeEntry& node : nodes_) {
    grid_.insert(node.id, node.mobility->position_at(now));
  }

  const auto pairs = grid_.pairs_within(radio_.range_m);
  std::unordered_set<std::uint64_t> in_range;
  in_range.reserve(pairs.size() * 2);

  for (const SpatialGrid::Pair& p : pairs) {
    const std::uint64_t key = pair_key(p.a, p.b);
    in_range.insert(key);
    if (pair_states_.count(key)) continue;  // already connected or suppressed
    // Fresh encounter: each endpoint decides whether its radio participates.
    const bool participates = !gate_ || (gate_(p.a) && gate_(p.b));
    if (!participates) {
      pair_states_.emplace(key, PairState::kSuppressed);
      ++contacts_suppressed_;
      continue;
    }
    pair_states_.emplace(key, PairState::kConnected);
    adjacency_[p.a].insert(p.b);
    adjacency_[p.b].insert(p.a);
    ++contacts_formed_;
    if (link_up_) link_up_(p.a, p.b, p.distance_m);
  }

  // Tear down pairs that moved out of range.
  for (auto it = pair_states_.begin(); it != pair_states_.end();) {
    if (in_range.count(it->first)) {
      ++it;
      continue;
    }
    const NodeId a(static_cast<util::NodeId::underlying>(it->first >> 32));
    const NodeId b(static_cast<util::NodeId::underlying>(it->first & 0xffffffffULL));
    const bool was_connected = it->second == PairState::kConnected;
    it = pair_states_.erase(it);
    if (was_connected) {
      // find(), not operator[]: teardown must never create adjacency
      // entries, and sets left empty are erased so the map tracks only
      // nodes with live links (selfish-heavy runs suppress most pairs).
      drop_adjacency(a, b);
      drop_adjacency(b, a);
      if (link_down_) link_down_(a, b);
    }
  }
}

void ConnectivityManager::drop_adjacency(NodeId node, NodeId neighbor) {
  const auto it = adjacency_.find(node);
  if (it == adjacency_.end()) return;
  it->second.erase(neighbor);
  if (it->second.empty()) adjacency_.erase(it);
}

bool ConnectivityManager::connected(NodeId a, NodeId b) const {
  auto it = pair_states_.find(pair_key(a, b));
  return it != pair_states_.end() && it->second == PairState::kConnected;
}

std::vector<NodeId> ConnectivityManager::neighbors_of(NodeId id) const {
  auto it = adjacency_.find(id);
  if (it == adjacency_.end()) return {};
  std::vector<NodeId> out(it->second.begin(), it->second.end());
  std::sort(out.begin(), out.end());  // deterministic order across platforms
  return out;
}

std::vector<std::pair<NodeId, NodeId>> ConnectivityManager::connected_pairs() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  for (const auto& [key, state] : pair_states_) {
    if (state != PairState::kConnected) continue;
    out.emplace_back(NodeId(static_cast<util::NodeId::underlying>(key >> 32)),
                     NodeId(static_cast<util::NodeId::underlying>(key & 0xffffffffULL)));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t ConnectivityManager::active_links() const {
  std::size_t n = 0;
  for (const auto& [key, state] : pair_states_) {
    if (state == PairState::kConnected) ++n;
  }
  return n;
}

util::Vec2 ConnectivityManager::position_of(NodeId id) {
  auto it = node_index_.find(id);
  DTNIC_REQUIRE_MSG(it != node_index_.end(), "unknown node");
  return nodes_[it->second].mobility->position_at(sim_.now());
}

}  // namespace dtnic::net
