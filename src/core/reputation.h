#pragma once

#include <unordered_map>
#include <vector>

#include "msg/message.h"
#include "util/arena.h"
#include "util/ids.h"
#include "util/rng.h"

/// \file reputation.h
/// The Distributed Reputation Model (DRM, §3.3). Each node keeps its own
/// view of every other node's rating on a 0..5 scale, built from
///  * first-hand message ratings: the node rating is the mean of the ratings
///    of messages received from that node (case 1), and
///  * second-hand exchange: r ← (1−α)·r_remote + α·r_own (case 2, α > 0.5).
/// The "user judgement" the paper requires is simulated by comparing message
/// annotations against the latent truth with configurable confidence and
/// noise (DESIGN.md substitution table).

namespace dtnic::core {

using util::NodeId;

struct DrmParams {
  bool enabled = true;
  /// Weight of own opinion in the second-hand merge and the award formula
  /// (paper requires α > 0.5).
  double alpha = 0.6;
  double rating_max = 5.0;     ///< r_m: rating scale ceiling (Fig. 5.4 uses 5)
  double default_rating = 3.5; ///< prior for nodes never rated or heard about
  /// A sender whose rating falls below this is refused transfers ("avoid
  /// receiving from malicious nodes", §1.3.3).
  double trust_threshold = 2.0;
  double confidence = 0.9;       ///< C/C_m the simulated user puts on tag ratings
  double rating_noise_sd = 0.25; ///< stddev of judgement noise on each rating
};

/// A node's local reputation table.
class RatingStore {
 public:
  explicit RatingStore(const DrmParams& params) : params_(params) {}

  /// First-hand: record the rating of a message received from \p rated.
  /// The node rating becomes the mean of all first-hand message ratings
  /// (paper case 1).
  void add_message_rating(NodeId rated, double rating);

  /// Second-hand: merge a remote opinion (paper case 2). A node with no
  /// prior opinion adopts the remote value.
  void merge_remote(NodeId rated, double remote_rating);

  /// Current rating; default_rating when nothing is known.
  [[nodiscard]] double rating_of(NodeId node) const;
  [[nodiscard]] bool knows(NodeId node) const { return records_.count(node) > 0; }
  /// Sender trust gate for admission control.
  [[nodiscard]] bool trusted(NodeId node) const;

  /// Snapshot for the link-up reputation exchange, sorted by node id.
  [[nodiscard]] std::vector<std::pair<NodeId, double>> snapshot() const;

  /// Visit every known (node, current rating) pair without allocating.
  /// Iteration order is the hash map's — use only for order-independent
  /// operations (the link-up second-hand merge touches each node
  /// independently, so it qualifies).
  template <class Visitor>
  void for_each(Visitor&& visit) const {
    for (const auto& [node, rec] : records_) visit(node, rec.value);
  }

  [[nodiscard]] const DrmParams& params() const { return params_; }

 private:
  struct Record {
    double first_hand_sum = 0.0;
    std::size_t first_hand_count = 0;
    double value = 0.0;  ///< current effective rating
  };

  DrmParams params_;
  util::arena::PooledMap<NodeId, Record> records_;
};

/// The simulated user's post-reception judgement of a message (§3.3 and
/// operator function 9). Ratings are on [0, rating_max].
struct MessageJudgement {
  /// Rate the message source: R_i = ½·(R_t·C/C_m) + ½·R_q, where R_t scores
  /// the truthfulness of the source's tags and R_q the content quality.
  [[nodiscard]] static double rate_source(const msg::Message& m, const DrmParams& drm,
                                          util::Rng& rng);

  /// Rate an enriching relay: R_i = R_t·C/C_m over the tags \p annotator
  /// added. Returns default_rating if the annotator added no tags.
  [[nodiscard]] static double rate_annotator(const msg::Message& m, NodeId annotator,
                                             const DrmParams& drm, util::Rng& rng);

  /// Fraction of \p annotator's tags on \p m that are truthful; 1.0 when the
  /// annotator added no tags.
  [[nodiscard]] static double truthful_fraction(const msg::Message& m, NodeId annotator);
};

/// Reputation scaling of the delivery award (§3.3):
///   I_v = ((1−α)·Σr_paths/(N·r_m) + α·r_deliverer/r_m) · (I + I_t)
/// This returns the dimensionless factor in [0, 1]; with no path ratings the
/// deliverer's own rating carries the full weight.
[[nodiscard]] double award_factor(const DrmParams& drm,
                                  const std::vector<msg::PathRating>& path_ratings,
                                  double deliverer_rating);

}  // namespace dtnic::core
