/// Ablation: the Distributed Reputation Model on vs off under a malicious
/// population (design choice called out in DESIGN.md). With DRM off,
/// malicious relays keep farming tag rewards at full price and are never
/// refused; with DRM on their ratings collapse, their awards are scaled
/// down, and transfers from them are refused.

#include <iostream>

#include "bench_common.h"
#include "core/incentive_router.h"
#include "scenario/scenario.h"

int main(int argc, char** argv) {
  using namespace dtnic;
  util::Cli cli;
  const bench::BenchScale scale = bench::resolve_scale(cli, argc, argv, argv[0]);
  bench::print_header("Ablation: DRM on/off with 20% malicious nodes", scale);

  util::Table table({"DRM", "final malicious rating", "malicious avg tokens",
                     "honest avg tokens", "refused: untrusted", "MDR"});
  for (const bool drm_on : {true, false}) {
    scenario::ScenarioConfig cfg = bench::base_config(scale);
    cfg.malicious_fraction = 0.2;
    cfg.drm.enabled = drm_on;
    cfg.scheme = scenario::Scheme::kIncentive;
    cfg.seed = 1;

    scenario::Scenario sim(cfg);
    const scenario::RunResult r = sim.run();

    // Split final token balances by behavior class.
    double malicious_tokens = 0.0, honest_tokens = 0.0;
    std::size_t malicious_n = 0, honest_n = 0;
    for (std::size_t i = 0; i < sim.node_count(); ++i) {
      const auto id = util::NodeId(static_cast<util::NodeId::underlying>(i));
      const auto* router = core::IncentiveRouter::of(sim.host(id));
      if (router == nullptr) continue;
      if (sim.behavior_of(id).malicious()) {
        malicious_tokens += router->ledger().balance();
        ++malicious_n;
      } else {
        honest_tokens += router->ledger().balance();
        ++honest_n;
      }
    }
    table.add_row({drm_on ? "on" : "off",
                   util::Table::cell(r.malicious_rating.last_value(), 3),
                   util::Table::cell(malicious_n ? malicious_tokens / malicious_n : 0.0, 2),
                   util::Table::cell(honest_n ? honest_tokens / honest_n : 0.0, 2),
                   util::Table::cell(r.refused_untrusted),
                   util::Table::cell(r.mdr, 3)});
  }
  table.print(std::cout);
  std::cout << "\nexpected: with DRM on, malicious ratings collapse and their token gains\n"
               "shrink relative to the DRM-off run.\n";
  return 0;
}
