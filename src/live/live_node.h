#pragma once

#include <map>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/incentive_router.h"
#include "live/remote_peer.h"
#include "live/udp.h"
#include "msg/keyword.h"
#include "obs/event_fanout.h"
#include "routing/host.h"
#include "routing/oracle.h"
#include "scenario/config.h"
#include "stats/metrics.h"
#include "util/rng.h"
#include "wire/frames.h"

/// \file live_node.h
/// One live overlay node: the simulator's Host + router stack driven by UDP
/// datagrams instead of the scenario's contact events. Single-threaded and
/// explicitly stepped — service(now) performs one receive/timeout/keepalive/
/// transfer round — so the daemon main loop and the in-process loopback
/// tests drive the identical code, the tests with a synthetic clock.
///
/// Peer lifecycle (DESIGN.md "Live overlay"):
///   seed endpoints --HELLO--> link up (proto + keyword-pool hash match)
///   link up: exchange INTEREST_DIGEST + RATING_GOSSIP, then plan OFFERs
///   OFFER -> OFFER_REPLY(accept) -> paced DATA chunks -> RECEIPT
///   keepalive HELLOs; silence past the timeout (or BYE) tears the link down
///
/// The receive side runs at facade level (the paper's operator functions):
/// the sim's Router::on_received needs the sending Host in-process, so the
/// live node instead replays its steps through public APIs — mark_seen,
/// DRM judgement + rating events, ledger settlement via RECEIPT frames, and
/// buffer admission. Enrichment-in-transit is sim-only for now.

namespace dtnic::live {

struct LiveNodeConfig {
  routing::NodeId node;
  std::uint16_t listen_port = 0;  ///< 0 = ephemeral (tests)
  int rank = 1;
  double hello_interval_s = 1.0;
  /// Link torn down after this much HELLO silence.
  double peer_timeout_s = 3.5;
  std::uint64_t buffer_capacity_bytes = 64ull * 1024 * 1024;
  /// DATA chunk payload size; paced at scenario.radio.bitrate_bps.
  std::size_t chunk_bytes = 1024;
  /// Shared protocol parameters (chitchat/incentive/drm/radio + scheme).
  /// Scheme must be a ChitChat-family, bank-free scheme: kChitChat or
  /// kIncentive.
  scenario::ScenarioConfig scenario;
  /// The agreed keyword pool, in id order; its hash gates compatibility.
  std::vector<std::string> keywords;
};

class LiveNode {
 public:
  explicit LiveNode(const LiveNodeConfig& cfg);
  LiveNode(const LiveNode&) = delete;
  LiveNode& operator=(const LiveNode&) = delete;

  /// Static-seed discovery: an endpoint to HELLO at startup.
  void add_seed_peer(routing::NodeId node, const Endpoint& endpoint);

  /// Register the user's keyword interests (oracle + ChitChat directs).
  void subscribe(const std::vector<std::string>& labels, util::SimTime now);

  /// The operator's Annotate function: create + own a tagged message.
  /// Message ids are namespaced per node (node << 20 | seq) so independent
  /// daemons never collide.
  msg::MessageId publish(const std::vector<std::string>& labels, util::SimTime now,
                         std::uint64_t size_bytes, msg::Priority priority, double quality);

  /// One event-loop round at \p now: drain the socket, expire silent links,
  /// send keepalives, advance paced transfers. Monotone \p now values.
  void service(util::SimTime now);

  /// Graceful shutdown: BYE to every live peer.
  void shutdown(util::SimTime now);

  // --- introspection (tests, daemon reporting) -----------------------------
  [[nodiscard]] routing::Host& host() { return host_; }
  [[nodiscard]] stats::MetricsCollector& metrics() { return metrics_; }
  [[nodiscard]] obs::EventFanout& events() { return fanout_; }
  [[nodiscard]] msg::KeywordTable& keywords() { return keywords_; }
  [[nodiscard]] std::uint16_t local_port() const { return socket_.local_port(); }
  /// Last time passed to service()/publish(); the daemon's trace clock.
  [[nodiscard]] util::SimTime now() const { return now_; }
  [[nodiscard]] std::uint64_t keyword_pool_hash() const { return pool_hash_; }
  [[nodiscard]] bool link_up(routing::NodeId peer) const;
  [[nodiscard]] std::size_t links_up() const;
  [[nodiscard]] double tokens() const;
  /// Frames received that failed to decode or failed compatibility gating.
  [[nodiscard]] std::uint64_t rejected_frames() const { return rejected_frames_; }

 private:
  struct PeerState {
    RemotePeer peer;
    Endpoint endpoint;
    bool up = false;
    util::SimTime last_heard = util::SimTime::zero();
    util::SimTime next_hello = util::SimTime::zero();
    /// Ids already offered to this peer (no re-offer on later rounds).
    std::unordered_set<msg::MessageId> offered;
    PeerState(routing::NodeId id, const routing::chitchat::ChitChatParams& params,
              const Endpoint& ep)
        : peer(id, params), endpoint(ep) {}
  };

  struct OutgoingTransfer {
    routing::NodeId to;
    routing::ForwardPlan plan;
    std::vector<std::uint8_t> encoded;
    std::uint32_t chunk_count = 0;
    std::uint32_t next_chunk = 0;
    bool accepted = false;
    bool awaiting_receipt = false;
    util::SimTime next_send = util::SimTime::zero();
  };

  struct IncomingTransfer {
    wire::OfferFrame offer;
    std::vector<std::uint8_t> bytes;
    std::uint32_t chunks_seen = 0;
    std::uint32_t chunk_count = 0;
  };

  void send_frame(PeerState& ps, const wire::Frame& f);
  void send_hello(PeerState& ps);
  void link_up_actions(PeerState& ps, util::SimTime now);
  void link_down(PeerState& ps);

  void handle_datagram(const Endpoint& from, std::span<const std::uint8_t> bytes,
                       util::SimTime now);
  void handle_hello(PeerState& ps, const wire::HelloFrame& f, util::SimTime now);
  void handle_digest(PeerState& ps, const wire::InterestDigestFrame& f, util::SimTime now);
  void handle_gossip(PeerState& ps, const wire::RatingGossipFrame& f);
  void handle_offer(PeerState& ps, const wire::OfferFrame& f, util::SimTime now);
  void handle_offer_reply(PeerState& ps, const wire::OfferReplyFrame& f, util::SimTime now);
  void handle_data(PeerState& ps, const wire::DataFrame& f, util::SimTime now);
  void handle_receipt(PeerState& ps, const wire::ReceiptFrame& f);

  /// Plan against the peer's current digest and send fresh OFFERs.
  void plan_and_offer(PeerState& ps, util::SimTime now);
  /// Advance paced DATA sending for accepted transfers.
  void pump_transfers(util::SimTime now);
  /// A fully reassembled copy arrived: judge, settle, store, emit events.
  void deliver_received(PeerState& ps, const wire::OfferFrame& offer, msg::Message m,
                        util::SimTime now);
  /// DRM: rate the source and enriching annotators of a fresh copy.
  void rate_and_record(msg::Message& m);

  [[nodiscard]] PeerState* find_peer(routing::NodeId id);
  [[nodiscard]] PeerState* find_peer_by_endpoint(const Endpoint& ep);

  LiveNodeConfig cfg_;
  msg::KeywordTable keywords_;
  std::vector<msg::KeywordId> pool_;
  std::uint64_t pool_hash_ = 0;
  util::Rng master_rng_;
  routing::StaticInterestOracle oracle_;
  obs::EventFanout fanout_;
  stats::MetricsCollector metrics_;
  obs::SinkHandle metrics_handle_;
  core::IncentiveWorld world_;
  routing::Host host_;
  routing::ChitChatRouter* chitchat_ = nullptr;   ///< owned by host_
  core::IncentiveRouter* incentive_ = nullptr;    ///< non-null iff kIncentive
  UdpSocket socket_;
  util::SimTime now_ = util::SimTime::zero();
  util::SimTime next_plan_ = util::SimTime::zero();
  std::uint32_t next_seq_ = 0;
  std::uint64_t rejected_frames_ = 0;
  std::map<std::uint32_t, std::unique_ptr<PeerState>> peers_;  ///< by node id
  std::map<std::pair<std::uint32_t, std::uint32_t>, OutgoingTransfer> outgoing_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, IncomingTransfer> incoming_;
  std::vector<std::uint8_t> tx_scratch_;
};

}  // namespace dtnic::live
