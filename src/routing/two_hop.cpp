#include "routing/two_hop.h"

namespace dtnic::routing {

std::vector<ForwardPlan> TwoHopRouter::plan(Host& self, Host& peer, util::SimTime now) {
  (void)now;
  std::vector<ForwardPlan> plans;
  for (const msg::Message* m : self.buffer().messages()) {
    if (peer.has_seen(m->id())) continue;
    if (oracle().is_destination(peer.id(), *m)) {
      plans.push_back(ForwardPlan{m->id(), TransferRole::kDestination});
      continue;
    }
    // Only the source sprays relay copies; relays wait for destinations.
    if (m->source() == self.id()) {
      plans.push_back(ForwardPlan{m->id(), TransferRole::kRelay});
    }
  }
  return plans;
}

}  // namespace dtnic::routing
