#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

#include "util/ids.h"
#include "util/sim_time.h"
#include "util/string_util.h"
#include "util/summary.h"
#include "util/vec2.h"

namespace dtnic::util {
namespace {

// --- StrongId ---------------------------------------------------------------

TEST(StrongId, DefaultIsInvalid) {
  NodeId id;
  EXPECT_FALSE(id.valid());
}

TEST(StrongId, ValueRoundTrip) {
  NodeId id(7);
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 7u);
}

TEST(StrongId, Ordering) {
  EXPECT_LT(NodeId(1), NodeId(2));
  EXPECT_EQ(NodeId(3), NodeId(3));
  EXPECT_NE(NodeId(3), NodeId(4));
}

TEST(StrongId, Hashable) {
  std::unordered_set<MessageId> set;
  set.insert(MessageId(1));
  set.insert(MessageId(1));
  set.insert(MessageId(2));
  EXPECT_EQ(set.size(), 2u);
}

TEST(StrongId, StreamsValue) {
  std::ostringstream os;
  os << NodeId(12) << " " << NodeId();
  EXPECT_EQ(os.str(), "12 <invalid>");
}

// --- SimTime ----------------------------------------------------------------

TEST(SimTime, UnitConversions) {
  EXPECT_DOUBLE_EQ(SimTime::minutes(2).sec(), 120.0);
  EXPECT_DOUBLE_EQ(SimTime::hours(1.5).sec(), 5400.0);
}

TEST(SimTime, Arithmetic) {
  const SimTime t = SimTime::seconds(10) + SimTime::seconds(5);
  EXPECT_DOUBLE_EQ(t.sec(), 15.0);
  EXPECT_DOUBLE_EQ((t - SimTime::seconds(3)).sec(), 12.0);
  EXPECT_DOUBLE_EQ((t * 2.0).sec(), 30.0);
  EXPECT_DOUBLE_EQ((t / 3.0).sec(), 5.0);
  EXPECT_DOUBLE_EQ(t / SimTime::seconds(5), 3.0);
}

TEST(SimTime, Comparisons) {
  EXPECT_LT(SimTime::seconds(1), SimTime::seconds(2));
  EXPECT_GE(SimTime::seconds(2), SimTime::seconds(2));
}

TEST(SimTime, Infinity) {
  EXPECT_FALSE(SimTime::infinity().finite());
  EXPECT_TRUE(SimTime::seconds(1).finite());
  EXPECT_LT(SimTime::hours(1000000), SimTime::infinity());
}

TEST(SimTime, InfinityArithmeticNeverProducesNaN) {
  // inf - inf and inf * 0 are NaN in IEEE arithmetic; NaN compares false
  // with everything, which would silently break every deadline comparison.
  // SimTime pins those two cases to zero instead.
  EXPECT_EQ(SimTime::never() - SimTime::never(), SimTime::zero());
  EXPECT_EQ(SimTime::never() + (-1.0 * SimTime::never()), SimTime::zero());
  EXPECT_EQ(SimTime::never() * 0.0, SimTime::zero());
  EXPECT_EQ(0.0 * SimTime::never(), SimTime::zero());

  // Ordinary infinite results are preserved, not clobbered.
  EXPECT_EQ(SimTime::never() + SimTime::seconds(5), SimTime::never());
  EXPECT_EQ(SimTime::never() - SimTime::seconds(5), SimTime::never());
  EXPECT_EQ(SimTime::never() * 2.0, SimTime::never());
  EXPECT_FALSE((SimTime::never() * 0.5).finite());

  SimTime t = SimTime::never();
  t -= SimTime::never();  // compound forms share the guarded operators
  EXPECT_EQ(t, SimTime::zero());
  t = SimTime::never();
  t += SimTime::seconds(1);
  EXPECT_EQ(t, SimTime::never());
}

TEST(SimTime, NeverIsUsableAsADeadline) {
  const SimTime deadline = SimTime::never();
  EXPECT_LT(SimTime::hours(1e9), deadline);
  EXPECT_FALSE(deadline < deadline);      // irreflexive, unlike NaN's always-false
  EXPECT_TRUE(deadline <= deadline);      // ...which would also break this
  EXPECT_EQ(deadline, SimTime::infinity());
}

// --- Vec2 --------------------------------------------------------------------

TEST(Vec2, Distance) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance_sq({0, 0}, {3, 4}), 25.0);
}

TEST(Vec2, LerpEndpointsAndMidpoint) {
  const Vec2 a{0, 0};
  const Vec2 b{10, 20};
  EXPECT_EQ(lerp(a, b, 0.0), a);
  EXPECT_EQ(lerp(a, b, 1.0), b);
  const Vec2 mid = lerp(a, b, 0.5);
  EXPECT_DOUBLE_EQ(mid.x, 5.0);
  EXPECT_DOUBLE_EQ(mid.y, 10.0);
}

TEST(Vec2, Arithmetic) {
  const Vec2 v = Vec2{1, 2} + Vec2{3, 4} * 2.0;
  EXPECT_DOUBLE_EQ(v.x, 7.0);
  EXPECT_DOUBLE_EQ(v.y, 10.0);
}

// --- RunningStats -------------------------------------------------------------

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesCombined) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 10; ++i) {
    a.add(i);
    all.add(i);
  }
  for (int i = 10; i < 25; ++i) {
    b.add(i * 1.5);
    all.add(i * 1.5);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(5.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 5.0);
}

TEST(Percentile, InterpolatesLinearly) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.0);
}

TEST(Percentile, EdgeCases) {
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(percentile({42.0}, 0.99), 42.0);
  EXPECT_THROW((void)percentile({1.0}, 1.5), std::invalid_argument);
}

TEST(MeanStddevOf, Basics) {
  EXPECT_DOUBLE_EQ(mean_of({1, 2, 3}), 2.0);
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_NEAR(stddev_of({2, 4, 4, 4, 5, 5, 7, 9}), std::sqrt(32.0 / 7.0), 1e-12);
}

// --- string_util ---------------------------------------------------------------

TEST(StringUtil, Trim) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t\n x \r"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringUtil, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringUtil, SplitNoDelimiter) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-", "--"));
}

TEST(StringUtil, ParseDouble) {
  EXPECT_DOUBLE_EQ(parse_double("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(parse_double("-2e3"), -2000.0);
  EXPECT_DOUBLE_EQ(parse_double("+1.5"), 1.5);
  EXPECT_DOUBLE_EQ(parse_double("  0.25  "), 0.25);
  EXPECT_THROW((void)parse_double("abc"), std::invalid_argument);
  EXPECT_THROW((void)parse_double("1.5x"), std::invalid_argument);
}

TEST(StringUtil, ParseDoubleIsLocaleIndependentAndStrict) {
  // from_chars always uses '.'; "3,5" must be rejected, never read as 3.0
  // with silently dropped garbage (the strtod failure mode under de_DE).
  EXPECT_THROW((void)parse_double("3,5"), std::invalid_argument);
  EXPECT_THROW((void)parse_double(""), std::invalid_argument);
  EXPECT_THROW((void)parse_double("   "), std::invalid_argument);
  EXPECT_THROW((void)parse_double("+"), std::invalid_argument);
  EXPECT_THROW((void)parse_double("+-1"), std::invalid_argument);
  EXPECT_THROW((void)parse_double("1.5 2.5"), std::invalid_argument);
  EXPECT_THROW((void)parse_double("1e999999"), std::invalid_argument);  // overflow
}

TEST(StringUtil, ParseInt) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int("-7"), -7);
  EXPECT_EQ(parse_int("+13"), 13);
  EXPECT_EQ(parse_int(" 8 "), 8);
  EXPECT_THROW((void)parse_int("4.2"), std::invalid_argument);
  EXPECT_THROW((void)parse_int(""), std::invalid_argument);
  EXPECT_THROW((void)parse_int("12abc"), std::invalid_argument);
  EXPECT_THROW((void)parse_int("0x10"), std::invalid_argument);
  EXPECT_THROW((void)parse_int("99999999999999999999999"), std::invalid_argument);
}

TEST(StringUtil, ParseBool) {
  EXPECT_TRUE(parse_bool("true"));
  EXPECT_TRUE(parse_bool("1"));
  EXPECT_TRUE(parse_bool("on"));
  EXPECT_FALSE(parse_bool("false"));
  EXPECT_FALSE(parse_bool("no"));
  EXPECT_THROW((void)parse_bool("maybe"), std::invalid_argument);
}

}  // namespace
}  // namespace dtnic::util
