/// Config-driven experiment runner: replays any scenario described in a
/// ONE-style `key = value` file (see examples/configs/) and prints the run
/// report — the workflow a downstream user follows to test their own
/// parameter ranges without recompiling.
///
///   ./run_scenario --config examples/configs/selfish_sweep.cfg
///   ./run_scenario --config ... --set selfish_fraction=0.4 --seeds 5
///   ./run_scenario --trace-out run.jsonl --node-stats-out nodes.csv \
///                  --manifest-out manifest.json
///
/// Seeds run in parallel on the shared worker pool (--threads or
/// DTNIC_THREADS to size it); the aggregate is identical to a serial run.
/// With several seeds, per-run artifacts get a `.seed<N>` suffix before the
/// extension — each run writes to its own files, so no locking is needed.

#include <fstream>
#include <iostream>
#include <memory>
#include <stdexcept>

#include "obs/node_stats.h"
#include "obs/run_manifest.h"
#include "obs/trace_sink.h"
#include "scenario/config_io.h"
#include "scenario/experiment.h"
#include "scenario/report.h"
#include "scenario/scenario.h"
#include "util/cli.h"
#include "util/num_format.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace {

using namespace dtnic;

/// `out/trace.jsonl` + seed 7 -> `out/trace.seed7.jsonl`; used only when a
/// run fans out over several seeds so artifacts never collide.
std::string seed_path(const std::string& path, std::uint64_t seed) {
  const auto slash = path.find_last_of('/');
  const auto dot = path.find_last_of('.');
  std::string suffix = ".seed" + std::to_string(seed);
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash)) {
    return path + suffix;
  }
  return path.substr(0, dot) + suffix + path.substr(dot);
}

scenario::ReportFormat parse_format(const std::string& name) {
  if (name == "table") return scenario::ReportFormat::kTable;
  if (name == "csv") return scenario::ReportFormat::kCsv;
  if (name == "json") return scenario::ReportFormat::kJson;
  throw std::runtime_error("unknown --report-format '" + name + "' (table|csv|json)");
}

/// Per-run observability sinks, built by the observer factory on the run's
/// worker thread. Sinks register on the scenario's fan-out and the handles
/// release them when the observer dies (before the Scenario, per the
/// ExperimentRunner contract).
class CliObserver final : public scenario::RunObserver {
 public:
  CliObserver(scenario::Scenario& s, std::uint64_t seed, const std::string& trace_path,
              std::uint32_t trace_sample, std::string node_stats_path)
      : node_stats_path_(std::move(node_stats_path)) {
    if (!trace_path.empty()) {
      obs::TraceOptions opt;
      opt.clock = [&sim = s.simulator()] { return sim.now(); };
      opt.seed = seed;
      opt.scheme = scenario::scheme_name(s.config().scheme);
      opt.sample_every = trace_sample;
      trace_ = obs::open_trace_file(trace_path, std::move(opt));
      trace_handle_ = s.events().add_sink(*trace_);
    }
    if (!node_stats_path_.empty()) {
      nodes_ = std::make_unique<obs::NodeStatsCollector>();
      nodes_handle_ = s.events().add_sink(*nodes_);
    }
  }

  void on_finish(scenario::Scenario&, scenario::RunResult& result) override {
    if (trace_) {
      trace_->flush();
      if (!trace_->ok()) {
        result.artifact_errors.push_back("trace: write failed (truncated output)");
      }
    }
    if (!nodes_) return;
    std::ofstream os(node_stats_path_);
    if (!os) {
      result.artifact_errors.push_back("node_stats: cannot open " + node_stats_path_);
      return;
    }
    const bool json = node_stats_path_.size() >= 5 &&
                      node_stats_path_.compare(node_stats_path_.size() - 5, 5, ".json") == 0;
    if (json) {
      nodes_->write_json(os);
    } else {
      nodes_->write_csv(os);
    }
    os.flush();
    if (!os.good()) {
      result.artifact_errors.push_back("node_stats: write failed (truncated output)");
    }
  }

 private:
  std::unique_ptr<obs::TraceSink> trace_;
  obs::SinkHandle trace_handle_;
  std::unique_ptr<obs::NodeStatsCollector> nodes_;
  obs::SinkHandle nodes_handle_;
  std::string node_stats_path_;
};

void write_manifest_file(const std::string& path, const scenario::ScenarioConfig& cfg,
                         std::size_t seeds, const scenario::AggregateResult& agg,
                         const std::string& trace_path, const std::string& node_stats_path) {
  obs::RunManifest m;
  m.tool = "run_scenario";
  m.scheme = scenario::scheme_name(cfg.scheme);
  for (std::size_t i = 0; i < seeds; ++i) m.seeds.push_back(cfg.seed + i);
  m.git_revision = obs::git_describe();
  m.config_text = scenario::to_config_text(cfg);
  m.metrics = {
      {"mdr", agg.mdr.mean()},
      {"mdr_stddev", agg.mdr.stddev()},
      {"created", agg.created.mean()},
      {"delivered", agg.delivered.mean()},
      {"traffic", agg.traffic.mean()},
      {"mean_latency_s", agg.mean_latency_s.mean()},
      {"mean_hops", agg.mean_hops.mean()},
      {"avg_final_tokens", agg.avg_final_tokens.mean()},
      {"refused_no_tokens", agg.refused_no_tokens.mean()},
      {"refused_untrusted", agg.refused_untrusted.mean()},
  };
  m.timings_ms = {
      {"scan", agg.scan_ms.mean()},
      {"routing", agg.routing_ms.mean()},
      {"routing_pre", agg.routing_pre_ms.mean()},
      {"routing_plan", agg.routing_plan_ms.mean()},
      {"routing_commit", agg.routing_commit_ms.mean()},
      {"transfer", agg.transfer_ms.mean()},
      {"workload", agg.workload_ms.mean()},
      {"wall", agg.wall_ms.mean()},
  };
  if (!trace_path.empty()) m.artifacts.emplace_back("trace", trace_path);
  if (!node_stats_path.empty()) m.artifacts.emplace_back("node_stats", node_stats_path);
  for (const scenario::RunResult& r : agg.raw) {
    for (const std::string& err : r.artifact_errors) {
      m.artifact_errors.push_back("seed " + std::to_string(r.seed) + " " + err);
    }
  }
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot write manifest to " + path);
  obs::write_manifest(os, m);
}

/// Aggregate (mean/stddev) rendering in the requested format; the table and
/// CSV forms share one util::Table, JSON is a flat `dtnic.report.v1` object.
void print_aggregate(std::ostream& os, scenario::ReportFormat fmt,
                     const scenario::AggregateResult& agg) {
  if (fmt == scenario::ReportFormat::kJson) {
    std::string buf = "{\"schema\":\"dtnic.report.v1\",\"kind\":\"aggregate\",\"scheme\":\"";
    buf += agg.scheme;
    buf += "\",\"runs\":";
    util::append_u64(buf, agg.runs);
    auto pair = [&buf](const char* name, const util::RunningStats& s) {
      buf += ",\"";
      buf += name;
      buf += "\":{\"mean\":";
      util::append_double(buf, s.mean());
      buf += ",\"stddev\":";
      util::append_double(buf, s.stddev());
      buf += "}";
    };
    pair("created", agg.created);
    pair("delivered", agg.delivered);
    pair("mdr", agg.mdr);
    pair("traffic", agg.traffic);
    pair("mean_latency_s", agg.mean_latency_s);
    pair("mean_hops", agg.mean_hops);
    pair("avg_final_tokens", agg.avg_final_tokens);
    pair("refused_no_tokens", agg.refused_no_tokens);
    pair("refused_untrusted", agg.refused_untrusted);
    buf += "}\n";
    os << buf;
    return;
  }
  util::Table table({"metric", "mean", "stddev"});
  auto row = [&table](const std::string& name, const util::RunningStats& s, int precision) {
    table.add_row({name, util::Table::cell(s.mean(), precision),
                   util::Table::cell(s.stddev(), precision)});
  };
  row("created", agg.created, 1);
  row("delivered", agg.delivered, 1);
  row("MDR", agg.mdr, 4);
  row("traffic (transfers)", agg.traffic, 1);
  row("mean latency (s)", agg.mean_latency_s, 1);
  row("mean hops", agg.mean_hops, 2);
  row("final tokens per node", agg.avg_final_tokens, 2);
  row("refused: no tokens", agg.refused_no_tokens, 1);
  row("refused: untrusted", agg.refused_untrusted, 1);
  if (fmt == scenario::ReportFormat::kCsv) {
    table.print_csv(os);
  } else {
    table.print(os);
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli;
  cli.add_flag("config", "", "path to a scenario .cfg file (empty = Table 5.1 defaults)");
  cli.add_flag("set", "", "inline override, e.g. --set selfish_fraction=0.3");
  cli.add_flag("seeds", "3", "simulation runs to average");
  cli.add_flag("threads", "0", "worker threads (0 = DTNIC_THREADS or hardware)");
  cli.add_flag("print-config", "false", "dump the effective configuration and exit");
  cli.add_flag("timing", "false", "print a per-phase wall-clock breakdown after the report");
  cli.add_flag("report-format", "table", "aggregate report format: table, csv, or json");
  cli.add_flag("trace-out", "",
               "write a dtnic.trace.v1 JSONL event trace here (`.seed<N>` inserted "
               "per seed when --seeds > 1)");
  cli.add_flag("trace-sample", "1", "keep 1 in N trace records per event type");
  cli.add_flag("node-stats-out", "",
               "write per-node counters here (.json for JSON, anything else CSV)");
  cli.add_flag("manifest-out", "", "write a dtnic.manifest.v1 reproducibility manifest here");
  if (!cli.parse(argc, argv)) {
    std::cout << cli.usage(argv[0]);
    return 0;
  }
  if (cli.get_int("threads") > 0) {
    util::ThreadPool::set_shared_threads(static_cast<std::size_t>(cli.get_int("threads")));
  }

  scenario::ScenarioConfig cfg = scenario::ScenarioConfig::paper_defaults();
  scenario::ReportFormat fmt = scenario::ReportFormat::kTable;
  try {
    if (!cli.get("config").empty()) {
      cfg = scenario::apply_config(cfg, util::Config::load_file(cli.get("config")));
    }
    if (!cli.get("set").empty()) {
      cfg = scenario::apply_config(cfg, util::Config::parse(cli.get("set")));
    }
    fmt = parse_format(cli.get("report-format"));
    if (cli.get_int("trace-sample") < 1) {
      throw std::runtime_error("--trace-sample must be >= 1");
    }
  } catch (const std::exception& e) {
    std::cerr << "configuration error: " << e.what() << "\n";
    return 1;
  }

  if (cli.get_bool("print-config")) {
    std::cout << scenario::to_config_text(cfg);
    return 0;
  }

  const auto seeds = static_cast<std::size_t>(cli.get_int("seeds"));
  // Machine-readable formats keep stdout clean; the preamble moves to stderr.
  std::ostream& chatter = fmt == scenario::ReportFormat::kTable ? std::cout : std::cerr;
  chatter << "running '" << scenario::scheme_name(cfg.scheme) << "' on " << cfg.num_nodes
          << " nodes for " << cfg.sim_hours << " h (" << seeds << " seed(s), "
          << util::ThreadPool::shared().size() << " worker thread(s))...\n\n";

  const std::string trace_out = cli.get("trace-out");
  const std::string node_stats_out = cli.get("node-stats-out");
  const auto trace_sample = static_cast<std::uint32_t>(cli.get_int("trace-sample"));

  scenario::ObserverFactory factory;
  if (!trace_out.empty() || !node_stats_out.empty()) {
    factory = [=](scenario::Scenario& s,
                  std::uint64_t seed) -> std::unique_ptr<scenario::RunObserver> {
      const bool multi = seeds > 1;
      const std::string trace =
          trace_out.empty() ? trace_out : (multi ? seed_path(trace_out, seed) : trace_out);
      const std::string nodes = node_stats_out.empty()
                                    ? node_stats_out
                                    : (multi ? seed_path(node_stats_out, seed) : node_stats_out);
      return std::make_unique<CliObserver>(s, seed, trace, trace_sample, nodes);
    };
  }

  const scenario::ExperimentRunner runner(seeds);
  scenario::AggregateResult agg;
  try {
    agg = runner.run(cfg, factory);
  } catch (const std::exception& e) {
    std::cerr << "run failed: " << e.what() << "\n";
    return 1;
  }

  print_aggregate(std::cout, fmt, agg);

  bool artifact_failure = false;
  for (const scenario::RunResult& r : agg.raw) {
    for (const std::string& err : r.artifact_errors) {
      std::cerr << "artifact error (seed " << r.seed << "): " << err << "\n";
      artifact_failure = true;
    }
  }

  if (!cli.get("manifest-out").empty()) {
    try {
      write_manifest_file(cli.get("manifest-out"), cfg, seeds, agg, trace_out, node_stats_out);
    } catch (const std::exception& e) {
      std::cerr << "manifest error: " << e.what() << "\n";
      return 1;
    }
  }

  if (cli.get_bool("timing")) {
    chatter << "\nper-phase wall-clock (mean across " << agg.runs << " seed(s), ms):\n";
    util::Table timing({"phase", "mean ms", "stddev"});
    auto trow = [&timing](const std::string& name, const util::RunningStats& s) {
      timing.add_row(
          {name, util::Table::cell(s.mean(), 2), util::Table::cell(s.stddev(), 2)});
    };
    trow("contact scan", agg.scan_ms);
    trow("routing", agg.routing_ms);
    trow("  pre-exchange", agg.routing_pre_ms);
    trow("  plan", agg.routing_plan_ms);
    trow("  commit", agg.routing_commit_ms);
    trow("transfer", agg.transfer_ms);
    trow("workload", agg.workload_ms);
    trow("wall", agg.wall_ms);
    timing.print(chatter);
    if (!agg.raw.empty()) {
      chatter << "\nseed " << agg.raw.front().seed << " breakdown:\n";
      scenario::Reporter(chatter, scenario::ReportFormat::kTable)
          .timing_report(agg.raw.front().timing);
    }
  }
  // A truncated artifact is a failed run even though the simulation itself
  // finished; the manifest (if any) records the same errors.
  return artifact_failure ? 1 : 0;
}
