#include "live/live_node.h"

#include <algorithm>

#include "core/incentive.h"
#include "core/reputation.h"
#include "scenario/router_factory.h"
#include "util/assert.h"

namespace dtnic::live {

using routing::NodeId;
using routing::TransferRole;
using util::SimTime;

namespace {
/// The scenario's kRouterStream tag (scenario.cpp StreamTag): a live node
/// forks its per-node router stream exactly like the simulator would for
/// the node at its index, so a daemon's DRM noise is reproducible from
/// (seed, node id) alone.
constexpr std::uint64_t kRouterStreamTag = 6;

std::pair<std::uint32_t, std::uint32_t> transfer_key(NodeId peer, msg::MessageId m) {
  return {peer.value(), m.value()};
}
}  // namespace

LiveNode::LiveNode(const LiveNodeConfig& cfg)
    : cfg_(cfg),
      master_rng_(cfg.scenario.seed),
      // The metrics collector registers first so every other sink (trace,
      // custom observers) sees events after the counters updated — same
      // order as the simulator's fan-out.
      metrics_handle_(fanout_.add_sink(metrics_)),
      host_(cfg.node, cfg.buffer_capacity_bytes, msg::DropPolicy::kFifoOldest, fanout_),
      socket_(cfg.listen_port) {
  DTNIC_REQUIRE_MSG(cfg_.node.valid(), "live node needs a valid node id");
  DTNIC_REQUIRE_MSG(cfg_.scenario.scheme == scenario::Scheme::kChitChat ||
                        cfg_.scenario.scheme == scenario::Scheme::kIncentive,
                    "live overlay supports the chitchat and incentive schemes");

  // The agreed keyword pool, interned in id order; the FNV hash of the table
  // gates HELLO compatibility.
  for (const std::string& kw : cfg_.keywords) keywords_.intern(kw);
  pool_.reserve(keywords_.size());
  for (std::size_t i = 0; i < keywords_.size(); ++i) {
    pool_.push_back(msg::KeywordId(static_cast<std::uint32_t>(i)));
  }
  pool_hash_ = wire::keyword_pool_hash(keywords_);

  world_.incentive = cfg_.scenario.incentive;
  world_.drm = cfg_.scenario.drm;
  world_.radio = cfg_.scenario.radio;
  world_.keyword_pool = &pool_;
  world_.enrichment_enabled = false;  // enrichment-in-transit is sim-only for now

  host_.set_rank(cfg_.rank);
  scenario::RouterBuildContext ctx;
  ctx.cfg = &cfg_.scenario;
  ctx.oracle = &oracle_;
  ctx.contact_quantum = SimTime::seconds(cfg_.scenario.scan_interval_s);
  ctx.world = &world_;
  ctx.master_rng = &master_rng_;
  ctx.rng_stream_tag = kRouterStreamTag;
  ctx.node_index = cfg_.node.value();
  host_.set_router(scenario::build_router(ctx));
  chitchat_ = routing::ChitChatRouter::of(host_);
  DTNIC_ASSERT(chitchat_ != nullptr);
  incentive_ = core::IncentiveRouter::of(host_);
}

void LiveNode::add_seed_peer(NodeId node, const Endpoint& endpoint) {
  DTNIC_REQUIRE_MSG(node.valid() && node != host_.id(), "seed peer must be another node");
  if (peers_.count(node.value()) > 0) return;
  peers_.emplace(node.value(), std::make_unique<PeerState>(
                                   node, cfg_.scenario.chitchat, endpoint));
}

void LiveNode::subscribe(const std::vector<std::string>& labels, SimTime now) {
  std::vector<msg::KeywordId> ids;
  ids.reserve(labels.size());
  for (const std::string& label : labels) {
    const msg::KeywordId k = keywords_.find(label);
    DTNIC_REQUIRE_MSG(k.valid(), "subscribe keyword outside the agreed pool: " + label);
    ids.push_back(k);
  }
  const auto& existing = oracle_.interests_of(host_.id());
  std::vector<msg::KeywordId> all(existing.begin(), existing.end());
  all.insert(all.end(), ids.begin(), ids.end());
  oracle_.set_interests(host_.id(), all);
  chitchat_->set_direct_interests(ids, now);
}

msg::MessageId LiveNode::publish(const std::vector<std::string>& labels, SimTime now,
                                 std::uint64_t size_bytes, msg::Priority priority,
                                 double quality) {
  DTNIC_REQUIRE_MSG(!labels.empty(), "a message needs at least one keyword");
  now_ = std::max(now_, now);  // trace records for on_created stamp correctly
  const msg::MessageId id(host_.id().value() * 0x100000u + next_seq_++);
  msg::Message m(id, host_.id(), now, size_bytes, priority, quality);
  std::vector<msg::KeywordId> truth;
  for (const std::string& label : labels) {
    const msg::KeywordId k = keywords_.find(label);
    DTNIC_REQUIRE_MSG(k.valid(), "publish keyword outside the agreed pool: " + label);
    truth.push_back(k);
    m.annotate(msg::Annotation{k, host_.id(), /*truthful=*/true});
  }
  m.set_true_keywords(std::move(truth));
  host_.mark_seen(id);
  auto outcome = host_.buffer().add(std::move(m), /*own=*/true);
  DTNIC_REQUIRE_MSG(outcome.result == msg::MessageBuffer::AddResult::kAdded,
                    "message does not fit in the device buffer");
  msg::Message* stored = host_.buffer().find_mutable(id);
  DTNIC_ASSERT(stored != nullptr);
  fanout_.on_created(*stored);
  host_.router().on_originated(host_, *stored, now);
  return id;
}

void LiveNode::send_frame(PeerState& ps, const wire::Frame& f) {
  tx_scratch_.clear();
  wire::encode_frame(f, tx_scratch_);
  socket_.send_to(ps.endpoint, tx_scratch_);
}

void LiveNode::send_hello(PeerState& ps) {
  wire::HelloFrame hello;
  hello.node = host_.id();
  hello.proto = wire::kProtocolVersion;
  hello.rank = host_.rank();
  hello.keyword_pool_hash = pool_hash_;
  send_frame(ps, hello);
}

void LiveNode::link_up_actions(PeerState& ps, SimTime now) {
  // ChitChat link-up: ship our full interest table so the peer can run its
  // growth phase and plan against our strengths.
  wire::InterestDigestFrame digest;
  digest.node = host_.id();
  chitchat_->interests().for_each([&digest](msg::KeywordId k, double w, bool direct) {
    digest.entries.push_back(wire::InterestEntry{k, w, direct});
  });
  // Hash-order iteration is fine on the wire, but sort for reproducible
  // frames (golden tests, tcpdump diffing).
  std::sort(digest.entries.begin(), digest.entries.end(),
            [](const wire::InterestEntry& a, const wire::InterestEntry& b) {
              return a.keyword < b.keyword;
            });
  send_frame(ps, digest);

  if (incentive_ != nullptr && world_.drm.enabled) {
    wire::RatingGossipFrame gossip;
    gossip.node = host_.id();
    incentive_->ratings().for_each([&gossip](NodeId node, double rating) {
      gossip.entries.push_back(wire::RatingEntry{node, rating});
    });
    std::sort(gossip.entries.begin(), gossip.entries.end(),
              [](const wire::RatingEntry& a, const wire::RatingEntry& b) {
                return a.node < b.node;
              });
    send_frame(ps, gossip);
  }
  (void)now;
}

void LiveNode::link_down(PeerState& ps) {
  ps.up = false;
  // In-flight transfers with this peer die with the link.
  for (auto it = outgoing_.begin(); it != outgoing_.end();) {
    if (it->first.first == ps.peer.id().value()) {
      fanout_.on_aborted(host_.id(), ps.peer.id(), msg::MessageId(it->first.second));
      it = outgoing_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = incoming_.begin(); it != incoming_.end();) {
    if (it->first.first == ps.peer.id().value()) {
      fanout_.on_aborted(ps.peer.id(), host_.id(), msg::MessageId(it->first.second));
      it = incoming_.erase(it);
    } else {
      ++it;
    }
  }
}

void LiveNode::service(SimTime now) {
  now_ = now;

  // 1. Drain the socket.
  while (auto datagram = socket_.receive()) {
    handle_datagram(datagram->from, datagram->bytes, now);
  }

  // 2. Expire links that went silent.
  for (auto& [id, ps] : peers_) {
    if (ps->up && (now - ps->last_heard).sec() > cfg_.peer_timeout_s) {
      link_down(*ps);
    }
  }

  // 3. Keepalives (and the initial discovery HELLO).
  for (auto& [id, ps] : peers_) {
    if (now >= ps->next_hello) {
      send_hello(*ps);
      ps->next_hello = now + SimTime::seconds(cfg_.hello_interval_s);
    }
  }

  // 4. Periodic re-plan: messages published after the digest exchange get
  //    offered on the next round (the offered-set keeps this idempotent).
  if (now >= next_plan_) {
    for (auto& [id, ps] : peers_) {
      if (ps->up) plan_and_offer(*ps, now);
    }
    next_plan_ = now + SimTime::seconds(cfg_.hello_interval_s);
  }

  // 5. Advance paced DATA transfers.
  pump_transfers(now);
}

void LiveNode::shutdown(SimTime now) {
  (void)now;
  for (auto& [id, ps] : peers_) {
    if (ps->up) {
      send_frame(*ps, wire::ByeFrame{host_.id()});
      link_down(*ps);
    }
  }
}

void LiveNode::handle_datagram(const Endpoint& from, std::span<const std::uint8_t> bytes,
                               SimTime now) {
  std::size_t offset = 0;
  while (offset < bytes.size()) {
    auto decoded = wire::decode_frame(bytes.subspan(offset));
    if (!decoded) {
      ++rejected_frames_;
      return;  // a corrupt prefix poisons the rest of the datagram
    }
    offset += decoded->consumed;

    if (const auto* hello = std::get_if<wire::HelloFrame>(&decoded->frame)) {
      // HELLO binds (node id -> endpoint); everything else resolves the
      // sender by source endpoint.
      if (hello->proto != wire::kProtocolVersion || hello->keyword_pool_hash != pool_hash_ ||
          !hello->node.valid() || hello->node == host_.id()) {
        ++rejected_frames_;
        continue;
      }
      auto it = peers_.find(hello->node.value());
      if (it == peers_.end()) {
        it = peers_
                 .emplace(hello->node.value(),
                          std::make_unique<PeerState>(hello->node, cfg_.scenario.chitchat, from))
                 .first;
      }
      handle_hello(*it->second, *hello, now);
      it->second->endpoint = from;
      continue;
    }

    PeerState* ps = find_peer_by_endpoint(from);
    if (ps == nullptr) {
      ++rejected_frames_;  // no HELLO handshake yet: sender unknown
      continue;
    }
    ps->last_heard = now;
    std::visit(
        [&](const auto& frame) {
          using T = std::decay_t<decltype(frame)>;
          if constexpr (std::is_same_v<T, wire::ByeFrame>) {
            link_down(*ps);
          } else if constexpr (std::is_same_v<T, wire::InterestDigestFrame>) {
            handle_digest(*ps, frame, now);
          } else if constexpr (std::is_same_v<T, wire::RatingGossipFrame>) {
            handle_gossip(*ps, frame);
          } else if constexpr (std::is_same_v<T, wire::OfferFrame>) {
            handle_offer(*ps, frame, now);
          } else if constexpr (std::is_same_v<T, wire::OfferReplyFrame>) {
            handle_offer_reply(*ps, frame, now);
          } else if constexpr (std::is_same_v<T, wire::DataFrame>) {
            handle_data(*ps, frame, now);
          } else if constexpr (std::is_same_v<T, wire::ReceiptFrame>) {
            handle_receipt(*ps, frame);
          }
        },
        decoded->frame);
  }
}

void LiveNode::handle_hello(PeerState& ps, const wire::HelloFrame& f, SimTime now) {
  ps.last_heard = now;
  ps.peer.set_rank(f.rank);
  if (!ps.up) {
    ps.up = true;
    // Answer promptly so the peer's link comes up without waiting a full
    // keepalive interval, then exchange state.
    ps.next_hello = now;
    link_up_actions(ps, now);
  }
}

void LiveNode::handle_digest(PeerState& ps, const wire::InterestDigestFrame& f, SimTime now) {
  ps.peer.apply_digest(f, now);

  // The peer's direct interests define it as a destination (the simulator's
  // shared StaticInterestOracle, fed here from the wire).
  std::vector<msg::KeywordId> directs;
  for (const wire::InterestEntry& e : f.entries) {
    if (e.direct) directs.push_back(e.keyword);
  }
  oracle_.set_interests(ps.peer.id(), std::move(directs));

  // ChitChat growth phase against the reconstructed table, as on_link_up
  // would run it in-process.
  const auto* table = ps.peer.interest_table();
  DTNIC_ASSERT(table != nullptr);
  chitchat_->interests().grow_from(*table, now, cfg_.scenario.scan_interval_s);
  table->for_each([this, now](msg::KeywordId k, double, bool) {
    chitchat_->interests().note_seen(k, now);
  });

  plan_and_offer(ps, now);
}

void LiveNode::handle_gossip(PeerState& ps, const wire::RatingGossipFrame& f) {
  if (incentive_ == nullptr || !world_.drm.enabled) return;
  for (const wire::RatingEntry& e : f.entries) {
    if (e.node == host_.id() || e.node == ps.peer.id()) continue;
    incentive_->ratings().merge_remote(e.node, e.rating);
  }
}

void LiveNode::plan_and_offer(PeerState& ps, SimTime now) {
  std::vector<routing::ForwardPlan> plans;
  chitchat_->plan_for_peer(host_, ps.peer, now, plans);
  for (const routing::ForwardPlan& plan : plans) {
    if (ps.offered.count(plan.message) > 0) continue;
    const msg::Message* m = host_.buffer().find(plan.message);
    if (m == nullptr) continue;
    ps.offered.insert(plan.message);

    wire::OfferFrame offer;
    offer.message = m->id();
    offer.source = m->source();
    offer.created_at = m->created_at();
    offer.size_bytes = m->size_bytes();
    offer.priority = m->priority();
    offer.quality = m->quality();
    offer.role = plan.role;
    offer.promise = plan.promise;
    offer.prepay = plan.prepay;
    send_frame(ps, offer);

    OutgoingTransfer ot;
    ot.to = ps.peer.id();
    ot.plan = plan;
    outgoing_[transfer_key(ps.peer.id(), plan.message)] = std::move(ot);
  }
}

void LiveNode::handle_offer(PeerState& ps, const wire::OfferFrame& f, SimTime now) {
  // The offering peer carries the message.
  ps.peer.mark_seen(f.message);

  // Skeleton copy for the admission gate: identity and payload metadata are
  // all accept() reads (duplicate check, buffer admission, affordability).
  msg::Message skeleton(f.message, f.source, f.created_at, f.size_bytes, f.priority,
                        f.quality);
  routing::ForwardPlan plan;
  plan.message = f.message;
  plan.role = f.role;
  plan.promise = f.promise;
  plan.prepay = f.prepay;
  const routing::AcceptDecision decision =
      host_.router().accept(host_, ps.peer, skeleton, plan, now);

  send_frame(ps, wire::OfferReplyFrame{f.message, decision});
  if (decision == routing::AcceptDecision::kAccept) {
    IncomingTransfer in;
    in.offer = f;
    incoming_[transfer_key(ps.peer.id(), f.message)] = std::move(in);
  }
}

void LiveNode::handle_offer_reply(PeerState& ps, const wire::OfferReplyFrame& f,
                                  SimTime now) {
  const auto key = transfer_key(ps.peer.id(), f.message);
  auto it = outgoing_.find(key);
  if (it == outgoing_.end()) return;
  OutgoingTransfer& ot = it->second;

  const msg::Message* m = host_.buffer().find(f.message);
  if (m == nullptr) {  // evicted while the offer was in flight
    fanout_.on_aborted(host_.id(), ps.peer.id(), f.message);
    outgoing_.erase(it);
    return;
  }

  if (f.decision != routing::AcceptDecision::kAccept) {
    if (f.decision == routing::AcceptDecision::kDuplicate) ps.peer.mark_seen(f.message);
    fanout_.on_refused(host_.id(), ps.peer.id(), *m, f.decision);
    outgoing_.erase(it);
    return;
  }

  fanout_.on_transfer_started(host_.id(), ps.peer.id(), *m, ot.plan.role);
  ot.encoded = wire::encode_message(*m);
  ot.chunk_count = static_cast<std::uint32_t>(
      (ot.encoded.size() + cfg_.chunk_bytes - 1) / cfg_.chunk_bytes);
  if (ot.chunk_count == 0) ot.chunk_count = 1;
  ot.accepted = true;
  ot.next_send = now;
}

void LiveNode::pump_transfers(SimTime now) {
  for (auto& [key, ot] : outgoing_) {
    if (!ot.accepted || ot.awaiting_receipt) continue;
    PeerState* ps = find_peer(ot.to);
    if (ps == nullptr || !ps->up) continue;
    while (ot.next_chunk < ot.chunk_count && now >= ot.next_send) {
      const std::size_t begin = static_cast<std::size_t>(ot.next_chunk) * cfg_.chunk_bytes;
      const std::size_t end = std::min(ot.encoded.size(), begin + cfg_.chunk_bytes);
      wire::DataFrame chunk;
      chunk.message = msg::MessageId(key.second);
      chunk.chunk_index = ot.next_chunk;
      chunk.chunk_count = ot.chunk_count;
      chunk.payload.assign(ot.encoded.begin() + static_cast<std::ptrdiff_t>(begin),
                           ot.encoded.begin() + static_cast<std::ptrdiff_t>(end));
      send_frame(*ps, chunk);
      ++ot.next_chunk;
      // Pace chunks at the configured radio bitrate, as the simulator's
      // TransferManager would stretch the same bytes over contact time.
      const double chunk_s =
          static_cast<double>(end - begin) / cfg_.scenario.radio.bitrate_bps;
      ot.next_send = ot.next_send + SimTime::seconds(chunk_s);
      if (ot.next_send < now) ot.next_send = now;
    }
    if (ot.next_chunk == ot.chunk_count) ot.awaiting_receipt = true;
  }
}

void LiveNode::handle_data(PeerState& ps, const wire::DataFrame& f, SimTime now) {
  auto it = incoming_.find(transfer_key(ps.peer.id(), f.message));
  if (it == incoming_.end()) return;  // never offered/accepted: drop
  IncomingTransfer& in = it->second;
  if (in.chunk_count == 0) in.chunk_count = f.chunk_count;
  // Loopback/low-loss phase 1: chunks are expected in order; anything else
  // aborts the transfer (the sender's receipt timeout is link teardown).
  if (f.chunk_count != in.chunk_count || f.chunk_index != in.chunks_seen) {
    ++rejected_frames_;
    incoming_.erase(it);
    return;
  }
  in.bytes.insert(in.bytes.end(), f.payload.begin(), f.payload.end());
  ++in.chunks_seen;
  if (in.chunks_seen < in.chunk_count) return;

  auto message = wire::decode_message(in.bytes);
  const wire::OfferFrame offer = in.offer;
  incoming_.erase(it);
  if (!message || message->id() != offer.message) {
    ++rejected_frames_;
    return;
  }
  deliver_received(ps, offer, std::move(*message), now);
}

void LiveNode::deliver_received(PeerState& ps, const wire::OfferFrame& offer, msg::Message m,
                                SimTime now) {
  m.record_hop(host_.id(), now);
  host_.mark_seen(m.id());

  if (offer.role == TransferRole::kDestination) {
    fanout_.on_delivered(ps.peer.id(), host_.id(), m);
  } else {
    fanout_.on_relayed(ps.peer.id(), host_.id(), m);
  }

  // Token settlement (incentive scheme): the receiver pays and tells the
  // sender with a RECEIPT; the sender credits on receipt. A RECEIPT is sent
  // even for zero amounts — it doubles as the transfer-complete ack.
  double paid = 0.0;
  if (incentive_ != nullptr) {
    if (offer.role == TransferRole::kDestination) {
      const auto& my_interests = oracle_.interests_of(host_.id());
      int relevant_added = 0;
      for (const msg::Annotation& a : m.annotations()) {
        if (a.annotator == m.source()) continue;
        if (my_interests.count(a.keyword) > 0) ++relevant_added;
      }
      const double i_t = core::tag_reward(world_.incentive, relevant_added);
      const double factor = core::award_factor(
          world_.drm, m.path_ratings(), incentive_->ratings().rating_of(ps.peer.id()));
      const double award = factor * (offer.promise + i_t);
      if (award > 0.0) {
        paid = incentive_->ledger().debit(award);
        fanout_.on_tokens_paid(host_.id(), ps.peer.id(), paid);
      }
    } else if (offer.prepay > 0.0) {
      paid = incentive_->ledger().debit(offer.prepay);
      fanout_.on_tokens_paid(host_.id(), ps.peer.id(), paid);
    }
  }
  send_frame(ps, wire::ReceiptFrame{m.id(), offer.role, paid});

  rate_and_record(m);
  host_.buffer().add(std::move(m), /*own=*/false);
}

void LiveNode::rate_and_record(msg::Message& m) {
  if (incentive_ == nullptr || !world_.drm.enabled) return;
  // Deterministic per-(user, message) judgement stream, like the operator
  // facade's RateMessage: reproducible without cross-daemon RNG state.
  util::Rng rng(m.id().value() ^ host_.id().value());
  core::RatingStore& ratings = incentive_->ratings();

  const double r_src = core::MessageJudgement::rate_source(m, world_.drm, rng);
  ratings.add_message_rating(m.source(), r_src);
  m.add_path_rating(msg::PathRating{host_.id(), m.source(), r_src});
  fanout_.on_reputation_updated(host_.id(), m.source(), ratings.rating_of(m.source()));

  std::vector<NodeId> rated;
  for (const msg::Annotation& a : m.annotations()) {
    if (a.annotator == m.source() || a.annotator == host_.id()) continue;
    if (std::find(rated.begin(), rated.end(), a.annotator) != rated.end()) continue;
    rated.push_back(a.annotator);
    const double r = core::MessageJudgement::rate_annotator(m, a.annotator, world_.drm, rng);
    ratings.add_message_rating(a.annotator, r);
    m.add_path_rating(msg::PathRating{host_.id(), a.annotator, r});
    fanout_.on_reputation_updated(host_.id(), a.annotator, ratings.rating_of(a.annotator));
  }
}

void LiveNode::handle_receipt(PeerState& ps, const wire::ReceiptFrame& f) {
  auto it = outgoing_.find(transfer_key(ps.peer.id(), f.message));
  if (it == outgoing_.end()) return;
  if (incentive_ != nullptr && f.amount > 0.0) {
    incentive_->ledger().credit(f.amount);
  }
  outgoing_.erase(it);
}

LiveNode::PeerState* LiveNode::find_peer(NodeId id) {
  auto it = peers_.find(id.value());
  return it == peers_.end() ? nullptr : it->second.get();
}

LiveNode::PeerState* LiveNode::find_peer_by_endpoint(const Endpoint& ep) {
  for (auto& [id, ps] : peers_) {
    if (ps->endpoint == ep) return ps.get();
  }
  return nullptr;
}

bool LiveNode::link_up(NodeId peer) const {
  auto it = peers_.find(peer.value());
  return it != peers_.end() && it->second->up;
}

std::size_t LiveNode::links_up() const {
  std::size_t n = 0;
  for (const auto& [id, ps] : peers_) n += ps->up ? 1 : 0;
  return n;
}

double LiveNode::tokens() const {
  return incentive_ != nullptr ? incentive_->ledger().balance() : 0.0;
}

}  // namespace dtnic::live
