#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/incentive_router.h"
#include "core/pi_router.h"
#include "routing/chitchat/chitchat_router.h"
#include "routing/epidemic.h"
#include "routing/prophet.h"
#include "test_helpers.h"
#include "util/rng.h"

/// Tests for the exchange hot-path machinery: the memoized interest-strength
/// cache (keyed on message keyword stamp + interest-table generation), the
/// RouterKind tag dispatch behind the ::of() accessors, and the shared
/// immutable message core's copy-on-write semantics.

namespace dtnic {
namespace {

using test::kMB;
using util::SimTime;

msg::KeywordId kw(int k) {
  return msg::KeywordId(static_cast<util::KeywordId::underlying>(k));
}

/// The property the cache must uphold: after ANY interleaving of annotation,
/// decay, growth, direct-interest changes, and buffer churn, the memoized
/// message_strength is bit-identical to a from-scratch sum over the same
/// keyword list — including on immediate re-query (the cache-hit path).
TEST(StrengthCache, MatchesFromScratchRecomputeUnderChurn) {
  util::Rng rng(42);
  routing::StaticInterestOracle oracle;
  routing::chitchat::ChitChatParams params;
  routing::Host host(util::NodeId(0), 64 * kMB);
  auto owned =
      std::make_unique<routing::ChitChatRouter>(oracle, params, SimTime::seconds(5.0));
  routing::ChitChatRouter* router = owned.get();
  host.set_router(std::move(owned));
  router->set_direct_interests({kw(0), kw(3)}, SimTime::zero());

  routing::chitchat::InterestTable peer(params);
  for (int k = 0; k < 8; ++k) peer.add_direct(kw(k), SimTime::zero());

  util::MessageId::underlying next_id = 0;
  double t = 0.0;
  for (int step = 0; step < 400; ++step) {
    t += rng.uniform(0.0, 3.0);
    const auto now = SimTime::seconds(t);
    switch (rng.below(6)) {
      case 0: {  // buffer churn: admit a fresh message with random keywords
        msg::Message m(util::MessageId(next_id++), util::NodeId(0), now, kMB,
                       msg::Priority::kMedium, 0.5);
        const std::size_t tags = 1 + rng.below(4);
        for (std::size_t i = 0; i < tags; ++i) {
          (void)m.annotate(msg::Annotation{kw(static_cast<int>(rng.below(16))),
                                           util::NodeId(0), true});
        }
        (void)host.buffer().add(std::move(m));
        break;
      }
      case 1: {  // enrich a buffered copy in place (stamp must invalidate)
        if (next_id == 0) break;
        msg::Message* m = host.buffer().find_mutable(util::MessageId(rng.below(next_id)));
        if (m != nullptr) {
          (void)m->annotate(msg::Annotation{kw(static_cast<int>(rng.below(16))),
                                            util::NodeId(1), false});
        }
        break;
      }
      case 2:  // buffer churn: evict a random message
        if (next_id > 0) (void)host.buffer().remove(util::MessageId(rng.below(next_id)));
        break;
      case 3:  // decay (generation must advance when weights change)
        router->interests().decay(now, nullptr);
        break;
      case 4:  // growth from a peer table
        router->interests().grow_from(peer, now, 5.0);
        break;
      case 5:  // new direct interest
        router->interests().add_direct(kw(static_cast<int>(rng.below(16))), now);
        break;
    }
    host.buffer().for_each([&](const msg::Message& m) {
      const double fresh = router->interests().sum_weights(m.keywords());
      ASSERT_EQ(router->message_strength(m), fresh);
      // Second query takes the cache-hit path; still bit-identical.
      ASSERT_EQ(router->message_strength(m), fresh);
    });
  }
}

TEST(StrengthCache, GenerationTracksWeightChangesOnly) {
  routing::chitchat::ChitChatParams params;
  routing::chitchat::InterestTable table(params);
  const auto g0 = table.generation();
  table.add_direct(kw(1), SimTime::zero());
  EXPECT_GT(table.generation(), g0);

  // Decay at the same instant leaves every weight unchanged (divisor floored
  // at 1): the generation must hold so in-contact queries stay cache-hits.
  const auto g1 = table.generation();
  table.decay(SimTime::zero(), nullptr);
  EXPECT_EQ(table.generation(), g1);

  // Decay after time has passed changes weights and must bump.
  table.grow_from(table, SimTime::zero(), 5.0);  // adds nothing new to itself
  table.decay(SimTime::seconds(100.0), nullptr);
  EXPECT_GT(table.generation(), g1);

  // Growing from an empty peer changes nothing.
  routing::chitchat::InterestTable empty(params);
  const auto g2 = table.generation();
  table.grow_from(empty, SimTime::seconds(100.0), 5.0);
  EXPECT_EQ(table.generation(), g2);
}

TEST(RouterKindDispatch, OfAccessorsDiscriminateExactly) {
  routing::StaticInterestOracle oracle;
  routing::chitchat::ChitChatParams params;
  core::IncentiveWorld world;
  core::PiEscrowBank bank;

  routing::Host chit(util::NodeId(0), kMB);
  chit.set_router(
      std::make_unique<routing::ChitChatRouter>(oracle, params, SimTime::seconds(5.0)));
  routing::Host inc(util::NodeId(1), kMB);
  inc.set_router(std::make_unique<core::IncentiveRouter>(
      oracle, params, SimTime::seconds(5.0), &world, core::BehaviorProfile{},
      util::Rng(1)));
  routing::Host pi(util::NodeId(2), kMB);
  pi.set_router(std::make_unique<core::PiRouter>(oracle, params, SimTime::seconds(5.0),
                                                 &world, &bank, core::PiParams{}));
  routing::Host epi(util::NodeId(3), kMB);
  epi.set_router(std::make_unique<routing::EpidemicRouter>(oracle));

  // Every ChitChat-derived router is visible through ChitChatRouter::of.
  EXPECT_NE(routing::ChitChatRouter::of(chit), nullptr);
  EXPECT_NE(routing::ChitChatRouter::of(inc), nullptr);
  EXPECT_NE(routing::ChitChatRouter::of(pi), nullptr);
  EXPECT_EQ(routing::ChitChatRouter::of(epi), nullptr);

  // The incentive accessors match only their exact scheme — a PI host must
  // not be mistaken for the destination-pays router or vice versa.
  EXPECT_NE(core::IncentiveRouter::of(inc), nullptr);
  EXPECT_EQ(core::IncentiveRouter::of(chit), nullptr);
  EXPECT_EQ(core::IncentiveRouter::of(pi), nullptr);
  EXPECT_NE(core::PiRouter::of(pi), nullptr);
  EXPECT_EQ(core::PiRouter::of(inc), nullptr);
  EXPECT_EQ(routing::ProphetRouter::of(epi), nullptr);
}

TEST(MessageSharedCore, CopiesDivergeIndependently) {
  msg::Message original(util::MessageId(7), util::NodeId(1), SimTime::seconds(10.0),
                        2 * kMB, msg::Priority::kHigh, 0.9);
  (void)original.annotate(msg::Annotation{kw(1), util::NodeId(1), true});
  original.set_true_keywords({kw(1)});
  // The constructor records the source as hop 0, so the path starts at 1.
  ASSERT_EQ(original.path().size(), 1u);

  msg::Message copy = original;
  ASSERT_EQ(copy.keyword_stamp(), original.keyword_stamp());

  // Per-copy state: annotations, path, and ratings diverge per copy.
  (void)copy.annotate(msg::Annotation{kw(2), util::NodeId(3), false});
  copy.record_hop(util::NodeId(3), SimTime::seconds(20.0));
  copy.add_path_rating(msg::PathRating{util::NodeId(3), util::NodeId(1), 4.0});
  EXPECT_TRUE(copy.has_keyword(kw(2)));
  EXPECT_FALSE(original.has_keyword(kw(2)));
  EXPECT_EQ(original.keywords().size(), 1u);
  EXPECT_EQ(copy.keywords().size(), 2u);
  EXPECT_NE(copy.keyword_stamp(), original.keyword_stamp());
  EXPECT_EQ(original.path().size(), 1u);
  EXPECT_EQ(copy.path().size(), 2u);
  EXPECT_TRUE(original.path_ratings().empty());
  EXPECT_EQ(copy.path_ratings().size(), 1u);

  // Core state: a post-copy setter copy-on-writes, leaving the other copy
  // (and the immutable identity fields) untouched.
  copy.set_mime_type("video/mp4");
  copy.set_location(msg::GeoTag{1.0, 2.0});
  EXPECT_EQ(original.mime_type(), "image/jpeg");
  EXPECT_EQ(copy.mime_type(), "video/mp4");
  EXPECT_FALSE(original.location().has_value());
  EXPECT_EQ(copy.id(), original.id());
  EXPECT_EQ(copy.source(), original.source());
  EXPECT_EQ(copy.size_bytes(), original.size_bytes());
  EXPECT_EQ(copy.true_keywords(), original.true_keywords());
}

}  // namespace
}  // namespace dtnic
