#pragma once

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>

#include "scenario/config.h"
#include "scenario/experiment.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/thread_pool.h"

/// \file bench_common.h
/// Shared harness for the figure/table reproduction binaries.
///
/// Every binary runs at a density-preserving reduced scale by default so the
/// whole `bench/` directory completes in minutes on one core; the shapes of
/// the paper's results (who wins, crossovers, monotonicity) are preserved.
/// Set DTNIC_SCALE=paper (or pass --nodes/--hours/--seeds) to run the exact
/// Table 5.1 configuration with five seeds, as the paper does.
///
/// Seeded runs execute on the shared worker pool (sweep points x seeds as
/// one job set); results are aggregated in seed order, so the output is
/// identical to a serial sweep regardless of --threads / DTNIC_THREADS.

namespace dtnic::bench {

struct BenchScale {
  std::size_t nodes = 80;
  double hours = 4.0;
  std::size_t seeds = 3;
  bool paper = false;
};

/// Resolve scale from DTNIC_SCALE and optional CLI flags; a --threads flag
/// (default: DTNIC_THREADS env or hardware concurrency) sizes the shared
/// worker pool the experiment runners fan out on.
inline BenchScale resolve_scale(util::Cli& cli, int argc, const char* const* argv,
                                const std::string& program) {
  cli.add_flag("nodes", "0", "participants (0 = scale default)");
  cli.add_flag("hours", "0", "simulated hours (0 = scale default)");
  cli.add_flag("seeds", "0", "simulation runs to average (0 = scale default)");
  cli.add_flag("threads", "0", "worker threads (0 = DTNIC_THREADS or hardware)");
  if (!cli.parse(argc, argv)) {
    std::cout << cli.usage(program);
    std::exit(0);
  }
  BenchScale scale;
  if (const char* env = std::getenv("DTNIC_SCALE"); env && std::string(env) == "paper") {
    scale.nodes = 500;
    scale.hours = 24.0;
    scale.seeds = 5;
    scale.paper = true;
  }
  if (cli.get_int("nodes") > 0) scale.nodes = static_cast<std::size_t>(cli.get_int("nodes"));
  if (cli.get_double("hours") > 0) scale.hours = cli.get_double("hours");
  if (cli.get_int("seeds") > 0) scale.seeds = static_cast<std::size_t>(cli.get_int("seeds"));
  if (cli.get_int("threads") > 0) {
    util::ThreadPool::set_shared_threads(static_cast<std::size_t>(cli.get_int("threads")));
  }
  return scale;
}

/// Base configuration at the resolved scale with the bench workload rate.
inline scenario::ScenarioConfig base_config(const BenchScale& scale) {
  scenario::ScenarioConfig cfg =
      scenario::ScenarioConfig::scaled_defaults(scale.nodes, scale.hours);
  // The thesis does not state the generation rate; 0.5 msg/node/h makes the
  // token economy bind within the 24 h horizon at paper scale (EXPERIMENTS.md).
  cfg.messages_per_node_per_hour = 0.5;
  if (!scale.paper) {
    // The token economy is volume-relative: 200 tokens against the paper's
    // 24 h x 500 node message volume. At reduced scale the allowance shrinks
    // proportionally so exhaustion dynamics (Figs. 5.1-5.3) are preserved.
    const double volume_ratio = (static_cast<double>(scale.nodes) * scale.hours) /
                                (500.0 * 24.0);
    // The floor keeps the allowance from binding so hard at low selfishness
    // that it dominates the selfish-fraction effect (EXPERIMENTS.md, F5.1).
    cfg.incentive.initial_tokens = std::max(12.0, 200.0 * volume_ratio);
  }
  return cfg;
}

inline void print_header(const std::string& title, const BenchScale& scale) {
  std::cout << "== " << title << " ==\n"
            << "scale: " << scale.nodes << " nodes, " << scale.hours << " h, "
            << scale.seeds << " seed(s), " << util::ThreadPool::shared().size()
            << " worker thread(s)"
            << (scale.paper ? " [paper scale, Table 5.1]" : " [reduced scale]") << "\n\n";
}

}  // namespace dtnic::bench
