#include "util/summary.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace dtnic::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::vector<double> samples, double q) {
  DTNIC_REQUIRE(q >= 0.0 && q <= 1.0);
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples.front();
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] + (samples[hi] - samples[lo]) * frac;
}

double mean_of(const std::vector<double>& samples) {
  RunningStats stats;
  for (double s : samples) stats.add(s);
  return stats.mean();
}

double stddev_of(const std::vector<double>& samples) {
  RunningStats stats;
  for (double s : samples) stats.add(s);
  return stats.stddev();
}

double jain_fairness(const std::vector<double>& values) {
  if (values.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double v : values) {
    DTNIC_REQUIRE_MSG(v >= 0.0, "fairness is defined over non-negative allocations");
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq == 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(values.size()) * sum_sq);
}

}  // namespace dtnic::util
