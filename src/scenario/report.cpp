#include "scenario/report.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "util/num_format.h"
#include "util/summary.h"

namespace dtnic::scenario {

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

/// Flat JSON object builder for report sections. Every report object leads
/// with {"schema":"dtnic.report.v1","kind":...}.
class JsonObject {
 public:
  explicit JsonObject(const std::string& kind) {
    buf_ = "{\"schema\":\"dtnic.report.v1\",\"kind\":";
    append_json_string(buf_, kind);
  }
  void str(const std::string& key, const std::string& value) {
    key_(key);
    append_json_string(buf_, value);
  }
  void num(const std::string& key, double value) {
    key_(key);
    util::append_double(buf_, value);
  }
  void u64(const std::string& key, std::uint64_t value) {
    key_(key);
    util::append_u64(buf_, value);
  }
  void raw(const std::string& key, const std::string& json) {
    key_(key);
    buf_ += json;
  }
  void write(std::ostream& os) {
    buf_ += "}\n";
    os.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
  }

 private:
  void key_(const std::string& key) {
    buf_.push_back(',');
    append_json_string(buf_, key);
    buf_.push_back(':');
  }
  std::string buf_;
};

}  // namespace

void Reporter::emit_table(const util::Table& table) {
  if (fmt_ == ReportFormat::kCsv) {
    table.print_csv(os_);
  } else {
    table.print(os_);
  }
}

void Reporter::run_report(const RunResult& result) {
  if (fmt_ == ReportFormat::kJson) {
    JsonObject o("run");
    o.str("scheme", result.scheme);
    o.u64("seed", result.seed);
    o.u64("created", result.created);
    o.u64("delivered", result.delivered);
    o.num("mdr", result.mdr);
    o.u64("deliveries_total", result.deliveries_total);
    o.num("mean_hops", result.mean_hops);
    o.num("mean_latency_s", result.mean_latency_s);
    o.u64("traffic", result.traffic);
    o.u64("contacts", result.contacts);
    o.u64("contacts_suppressed", result.contacts_suppressed);
    o.num("mdr_high", result.mdr_high);
    o.num("mdr_medium", result.mdr_medium);
    o.num("mdr_low", result.mdr_low);
    o.num("tokens_paid", result.tokens_paid);
    o.u64("payments", result.payments);
    o.num("avg_final_tokens", result.avg_final_tokens);
    o.u64("refused_no_tokens", result.refused_no_tokens);
    o.u64("refused_untrusted", result.refused_untrusted);
    o.u64("aborted", result.aborted);
    o.u64("dropped_buffer", result.dropped_buffer);
    o.u64("dropped_ttl", result.dropped_ttl);
    o.num("energy_j", result.total_energy_j);
    o.write(os_);
    return;
  }
  util::Table table({"metric", "value"});
  auto row = [&table](const std::string& name, const std::string& value) {
    table.add_row({name, value});
  };
  row("scheme", result.scheme);
  row("seed", std::to_string(result.seed));
  row("created", util::Table::cell(result.created));
  row("delivered (unique)", util::Table::cell(result.delivered));
  row("MDR", util::Table::cell(result.mdr, 4));
  row("deliveries total", util::Table::cell(static_cast<std::size_t>(result.deliveries_total)));
  row("mean hops", util::Table::cell(result.mean_hops, 2));
  row("mean latency (s)", util::Table::cell(result.mean_latency_s, 1));
  row("traffic (transfers started)", util::Table::cell(static_cast<std::size_t>(result.traffic)));
  row("contacts", util::Table::cell(static_cast<std::size_t>(result.contacts)));
  row("contacts suppressed", util::Table::cell(static_cast<std::size_t>(result.contacts_suppressed)));
  row("MDR high / medium / low",
      util::Table::cell(result.mdr_high, 3) + " / " + util::Table::cell(result.mdr_medium, 3) +
          " / " + util::Table::cell(result.mdr_low, 3));
  row("tokens paid", util::Table::cell(result.tokens_paid, 1));
  row("payments", util::Table::cell(static_cast<std::size_t>(result.payments)));
  row("avg final tokens", util::Table::cell(result.avg_final_tokens, 2));
  row("refused: no tokens", util::Table::cell(static_cast<std::size_t>(result.refused_no_tokens)));
  row("refused: untrusted", util::Table::cell(static_cast<std::size_t>(result.refused_untrusted)));
  row("aborted transfers", util::Table::cell(static_cast<std::size_t>(result.aborted)));
  row("drops: buffer / ttl",
      util::Table::cell(static_cast<std::size_t>(result.dropped_buffer)) + " / " +
          util::Table::cell(static_cast<std::size_t>(result.dropped_ttl)));
  row("energy (J)", util::Table::cell(result.total_energy_j, 1));
  emit_table(table);
}

void Reporter::timing_report(const PhaseTimings& timing) {
  constexpr double kMs = 1e-6;
  if (fmt_ == ReportFormat::kJson) {
    JsonObject o("timing");
    o.num("scan_ms", static_cast<double>(timing.scan_ns) * kMs);
    o.num("routing_ms", static_cast<double>(timing.routing_ns) * kMs);
    o.num("routing_pre_ms", static_cast<double>(timing.routing_pre_ns) * kMs);
    o.num("routing_plan_ms", static_cast<double>(timing.routing_plan_ns) * kMs);
    o.num("routing_commit_ms", static_cast<double>(timing.routing_commit_ns) * kMs);
    o.num("transfer_ms", static_cast<double>(timing.transfer_ns) * kMs);
    o.num("workload_ms", static_cast<double>(timing.workload_ns) * kMs);
    o.num("wall_ms", static_cast<double>(timing.wall_ns) * kMs);
    o.u64("scans", timing.scans);
    o.u64("exchange_replans", timing.exchange_replans);
    o.write(os_);
    return;
  }
  const double wall_ms = static_cast<double>(timing.wall_ns) * kMs;
  util::Table table({"phase", "ms", "% wall"});
  auto row = [&table, wall_ms](const std::string& name, std::uint64_t ns) {
    const double ms = static_cast<double>(ns) * kMs;
    const double pct = wall_ms > 0.0 ? 100.0 * ms / wall_ms : 0.0;
    table.add_row({name, util::Table::cell(ms, 2), util::Table::cell(pct, 1)});
  };
  row("contact scan", timing.scan_ns);
  row("routing", timing.routing_ns);
  row("  pre-exchange", timing.routing_pre_ns);
  row("  plan", timing.routing_plan_ns);
  row("  commit", timing.routing_commit_ns);
  row("transfer", timing.transfer_ns);
  row("workload", timing.workload_ns);
  table.add_row({"wall", util::Table::cell(wall_ms, 2), util::Table::cell(100.0, 1)});
  emit_table(table);
  if (fmt_ == ReportFormat::kTable) {
    os_ << "scans: " << timing.scans;
    if (timing.scans > 0) {
      os_ << "  (" << util::Table::cell(
                          static_cast<double>(timing.scan_ns) /
                              static_cast<double>(timing.scans) * 1e-3,
                          2)
          << " us/scan)";
    }
    if (timing.exchange_replans > 0) {
      os_ << "  exchange replans: " << timing.exchange_replans;
    }
    os_ << "\n";
  }
}

void Reporter::series(const stats::TimeSeries& series, const std::string& value_name) {
  if (fmt_ == ReportFormat::kJson) {
    JsonObject o("series");
    o.str("name", value_name);
    std::string samples = "[";
    bool first = true;
    for (const stats::Sample& s : series.samples()) {
      if (!first) samples.push_back(',');
      first = false;
      samples.push_back('[');
      util::append_double(samples, s.time.sec());
      samples.push_back(',');
      util::append_double(samples, s.value);
      samples.push_back(']');
    }
    samples.push_back(']');
    o.raw("samples", samples);
    o.write(os_);
    return;
  }
  if (fmt_ == ReportFormat::kCsv) {
    // Hot-path-adjacent export: one buffered write, shortest round-trip
    // decimal forms (the golden-file tests pin this byte layout).
    std::string buf;
    buf.reserve(32 * (series.samples().size() + 1));
    buf += "time_s,";
    buf += value_name;
    buf.push_back('\n');
    for (const stats::Sample& s : series.samples()) {
      util::append_double(buf, s.time.sec());
      buf.push_back(',');
      util::append_double(buf, s.value);
      buf.push_back('\n');
    }
    os_.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    return;
  }
  util::Table table({"time_s", value_name});
  for (const stats::Sample& s : series.samples()) {
    table.add_row({util::format_double(s.time.sec()), util::format_double(s.value)});
  }
  table.print(os_);
}

void Reporter::contact_summary(const ContactSummary& summary) {
  if (fmt_ == ReportFormat::kJson) {
    JsonObject o("contacts");
    o.u64("contacts", summary.contacts);
    o.num("mean_duration_s", summary.mean_duration_s);
    o.num("median_duration_s", summary.median_duration_s);
    o.num("mean_intercontact_s", summary.mean_intercontact_s);
    o.num("total_contact_time_s", summary.total_contact_time_s);
    o.write(os_);
    return;
  }
  util::Table table({"contact metric", "value"});
  table.add_row({"contacts", util::Table::cell(summary.contacts)});
  table.add_row({"mean duration (s)", util::Table::cell(summary.mean_duration_s, 1)});
  table.add_row({"median duration (s)", util::Table::cell(summary.median_duration_s, 1)});
  table.add_row({"mean inter-contact (s)", util::Table::cell(summary.mean_intercontact_s, 1)});
  table.add_row({"total contact time (s)", util::Table::cell(summary.total_contact_time_s, 1)});
  emit_table(table);
}

void Reporter::comparison(const std::vector<RunResult>& results) {
  if (fmt_ == ReportFormat::kJson) {
    for (const RunResult& r : results) {
      JsonObject o("comparison-row");
      o.str("scheme", r.scheme);
      o.u64("seed", r.seed);
      o.num("mdr", r.mdr);
      o.u64("traffic", r.traffic);
      o.num("mean_latency_s", r.mean_latency_s);
      o.num("mean_hops", r.mean_hops);
      o.num("tokens_paid", r.tokens_paid);
      o.u64("aborted", r.aborted);
      o.write(os_);
    }
    return;
  }
  emit_table(comparison_table(results));
}

void write_run_report(std::ostream& os, const RunResult& result) {
  Reporter(os, ReportFormat::kTable).run_report(result);
}

void write_timing_report(std::ostream& os, const PhaseTimings& timing) {
  Reporter(os, ReportFormat::kTable).timing_report(timing);
}

util::Table comparison_table(const std::vector<RunResult>& results) {
  util::Table table({"scheme", "seed", "MDR", "traffic", "latency s", "hops",
                     "tokens paid", "aborted"});
  for (const RunResult& r : results) {
    table.add_row({r.scheme, std::to_string(r.seed), util::Table::cell(r.mdr, 4),
                   util::Table::cell(static_cast<std::size_t>(r.traffic)),
                   util::Table::cell(r.mean_latency_s, 1), util::Table::cell(r.mean_hops, 2),
                   util::Table::cell(r.tokens_paid, 1),
                   util::Table::cell(static_cast<std::size_t>(r.aborted))});
  }
  return table;
}

void write_series_csv(std::ostream& os, const stats::TimeSeries& series,
                      const std::string& value_name) {
  Reporter(os, ReportFormat::kCsv).series(series, value_name);
}

ContactSummary summarize_contacts(const net::ContactTrace& trace) {
  ContactSummary summary;
  summary.contacts = trace.count();
  summary.mean_duration_s = trace.mean_duration_s();
  summary.total_contact_time_s = trace.total_contact_time_s();
  if (trace.contacts().empty()) return summary;

  std::vector<double> durations;
  durations.reserve(trace.count());
  for (const auto& c : trace.contacts()) durations.push_back(c.duration().sec());
  summary.median_duration_s = util::percentile(durations, 0.5);

  // Inter-contact gaps per pair (contacts are sorted by start time).
  std::unordered_map<std::uint64_t, double> last_down;
  util::RunningStats gaps;
  for (const auto& c : trace.contacts()) {
    const std::uint64_t key = (static_cast<std::uint64_t>(c.a.value()) << 32) | c.b.value();
    if (auto it = last_down.find(key); it != last_down.end()) {
      const double gap = c.up.sec() - it->second;
      if (gap > 0.0) gaps.add(gap);
    }
    last_down[key] = std::max(last_down[key], c.down.sec());
  }
  summary.mean_intercontact_s = gaps.mean();
  return summary;
}

void write_contact_summary(std::ostream& os, const ContactSummary& summary) {
  Reporter(os, ReportFormat::kTable).contact_summary(summary);
}

}  // namespace dtnic::scenario
