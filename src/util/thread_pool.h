#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

/// \file thread_pool.h
/// A small fixed-size worker pool for embarrassingly parallel jobs — the
/// experiment runner fans independent seeded scenario runs across it. Tasks
/// are plain callables; submit() returns a std::future that carries the
/// result or any exception the task threw. The pool drains its queue before
/// the destructor returns, so every future obtained from a live pool is
/// eventually satisfied.
///
/// The process-wide shared() pool is sized from the DTNIC_THREADS environment
/// variable (falling back to std::thread::hardware_concurrency) and can be
/// resized with set_shared_threads() — e.g. from a --threads CLI flag.

namespace dtnic::util {

class ThreadPool {
 public:
  /// \p threads worker threads; 0 means default_thread_count().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue \p fn; the future resolves with its return value or exception.
  template <typename F>
  [[nodiscard]] auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using Result = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<Result()>>(std::forward<F>(fn));
    std::future<Result> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
      tasks_.emplace_back([task] { (*task)(); });
    }
    wake_.notify_one();
    return future;
  }

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Run fn(0) … fn(tasks - 1) to completion, with task 0 executed on the
  /// calling thread while the rest run on the pool — so a pool of (n - 1)
  /// workers saturates n cores and the caller never just blocks. Returns
  /// after every task finished; if any threw, the first exception (by task
  /// index) is rethrown. Must not be called from a task already running on
  /// this pool (the inner wait could deadlock on a saturated queue).
  void co_run(std::size_t tasks, const std::function<void(std::size_t)>& fn);

  /// DTNIC_THREADS if set to a positive integer, else hardware_concurrency
  /// (else 1 when the hardware cannot be queried).
  [[nodiscard]] static std::size_t default_thread_count();

  /// Lazily constructed process-wide pool (default_thread_count workers).
  [[nodiscard]] static ThreadPool& shared();

  /// Replace the shared pool with one of \p threads workers (0 = default).
  /// Outstanding tasks on the old pool finish before it is torn down.
  static void set_shared_threads(std::size_t threads);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
};

}  // namespace dtnic::util
