#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.h"

/// \file byte_stream.h
/// Checked cursors over the raw little-endian primitives of util/bytes.h.
/// ByteWriter appends to a caller-owned byte vector; ByteReader walks a
/// read-only span and latches a failure flag on the first out-of-bounds
/// read instead of touching memory — decoders check ok() once at the end
/// rather than after every field, and a truncated frame can never fault.

namespace dtnic::wire {

class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) { util::write_u16(out_, v); }
  void u32(std::uint32_t v) { util::write_u32(out_, v); }
  void u64(std::uint64_t v) { util::write_u64(out_, v); }
  void f64(double v) { util::write_f64(out_, v); }

  /// Length-prefixed (u16) byte string; callers keep strings under 64 KiB.
  void str(std::string_view s) {
    u16(static_cast<std::uint16_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }
  void bytes(std::span<const std::uint8_t> b) { out_.insert(out_.end(), b.begin(), b.end()); }

  /// Current output size — a patch point for backfilled length fields.
  [[nodiscard]] std::size_t mark() const { return out_.size(); }
  void patch_u32(std::size_t at, std::uint32_t v) { util::store_u32(out_.data() + at, v); }

 private:
  std::vector<std::uint8_t>& out_;
};

class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}
  explicit ByteReader(std::span<const std::uint8_t> bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  [[nodiscard]] std::uint8_t u8() {
    if (!take(1)) return 0;
    return data_[pos_ - 1];
  }
  [[nodiscard]] std::uint16_t u16() {
    if (!take(2)) return 0;
    return util::read_u16(data_ + pos_ - 2);
  }
  [[nodiscard]] std::uint32_t u32() {
    if (!take(4)) return 0;
    return util::read_u32(data_ + pos_ - 4);
  }
  [[nodiscard]] std::uint64_t u64() {
    if (!take(8)) return 0;
    return util::read_u64(data_ + pos_ - 8);
  }
  [[nodiscard]] double f64() {
    if (!take(8)) return 0.0;
    return util::read_f64(data_ + pos_ - 8);
  }
  [[nodiscard]] std::string str() {
    const std::uint16_t len = u16();
    if (!take(len)) return {};
    return std::string(reinterpret_cast<const char*>(data_ + pos_ - len), len);
  }
  [[nodiscard]] std::span<const std::uint8_t> bytes(std::size_t n) {
    if (!take(n)) return {};
    return {data_ + pos_ - n, n};
  }

  /// False once any read ran past the end; all later reads return zeros.
  [[nodiscard]] bool ok() const { return !failed_; }
  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }
  [[nodiscard]] std::size_t consumed() const { return pos_; }
  /// ok() AND the cursor is exactly at the end — rejects garbage tails.
  [[nodiscard]] bool done() const { return !failed_ && pos_ == size_; }

 private:
  bool take(std::size_t n) {
    if (failed_ || size_ - pos_ < n) {
      failed_ = true;
      return false;
    }
    pos_ += n;
    return true;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace dtnic::wire
