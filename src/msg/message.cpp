#include "msg/message.h"

#include <algorithm>
#include <atomic>

#include "util/arena.h"
#include "util/assert.h"

namespace dtnic::msg {

namespace {
/// Process-wide annotation stamp source. Values never influence simulation
/// output — they only witness "this copy's annotation set changed" — so the
/// atomic does not perturb determinism across runs or thread counts.
std::atomic<std::uint64_t> g_keyword_stamp{0};

std::uint64_t next_keyword_stamp() {
  return 1 + g_keyword_stamp.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

const char* priority_name(Priority p) {
  switch (p) {
    case Priority::kHigh: return "high";
    case Priority::kMedium: return "medium";
    case Priority::kLow: return "low";
  }
  return "?";
}

const Message::Core& Message::core() const {
  if (core_) return *core_;
  static const Core kDefault{};
  return kDefault;
}

Message::Core& Message::mutable_core() {
  // Cores are the highest-churn heap objects in a run (every COW mutation
  // and every origination makes one); allocate_shared through the arena pool
  // puts object + control block in one recycled block.
  if (!core_) {
    core_ = std::allocate_shared<Core>(util::arena::PoolAllocator<Core>{});
  } else if (core_.use_count() > 1) {
    core_ = std::allocate_shared<Core>(util::arena::PoolAllocator<Core>{},
                                       *core_);  // copy-on-write
  }
  // The only live reference is ours; shedding const is safe.
  return const_cast<Core&>(*core_);
}

Message::Message(MessageId id, NodeId source, SimTime created_at, std::uint64_t size_bytes,
                 Priority priority, double quality) {
  DTNIC_REQUIRE_MSG(id.valid(), "message id must be valid");
  DTNIC_REQUIRE_MSG(source.valid(), "message source must be valid");
  DTNIC_REQUIRE_MSG(size_bytes > 0, "message size must be positive");
  DTNIC_REQUIRE_MSG(quality >= 0.0 && quality <= 1.0, "quality must be in [0,1]");
  auto core = std::allocate_shared<Core>(util::arena::PoolAllocator<Core>{});
  core->id = id;
  core->source = source;
  core->created_at = created_at;
  core->size_bytes = size_bytes;
  core->priority = priority;
  core->quality = quality;
  core_ = std::move(core);
  path_.push_back({source, created_at});
}

bool Message::expired(SimTime now) const {
  if (!ttl_.finite()) return false;
  return now > created_at() + ttl_;
}

bool Message::annotate(Annotation a) {
  DTNIC_REQUIRE(a.keyword.valid());
  if (has_keyword(a.keyword)) return false;
  annotations_.push_back(a);
  keywords_.push_back(a.keyword);
  keyword_stamp_ = next_keyword_stamp();
  return true;
}

bool Message::has_keyword(KeywordId k) const {
  return std::find(keywords_.begin(), keywords_.end(), k) != keywords_.end();
}

std::vector<Annotation> Message::annotations_by(NodeId node) const {
  std::vector<Annotation> out;
  for (const Annotation& a : annotations_) {
    if (a.annotator == node) out.push_back(a);
  }
  return out;
}

void Message::set_true_keywords(std::vector<KeywordId> truth) {
  mutable_core().true_keywords = std::move(truth);
}

bool Message::keyword_is_truthful(KeywordId k) const {
  const std::vector<KeywordId>& truth = core().true_keywords;
  return std::find(truth.begin(), truth.end(), k) != truth.end();
}

std::size_t Message::relay_hop_count() const {
  DTNIC_ASSERT(!path_.empty());
  return path_.size() - 1;
}

void Message::set_property(const std::string& key, double value) {
  for (auto& [k, v] : properties_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  properties_.emplace_back(key, value);
}

double Message::property_or(const std::string& key, double dflt) const {
  for (const auto& [k, v] : properties_) {
    if (k == key) return v;
  }
  return dflt;
}

bool Message::visited(NodeId node) const {
  return std::any_of(path_.begin(), path_.end(),
                     [node](const HopRecord& h) { return h.node == node; });
}

}  // namespace dtnic::msg
