#include "net/contact_trace.h"

#include <algorithm>

#include "util/assert.h"

namespace dtnic::net {

std::uint64_t ContactTrace::pair_key(util::NodeId a, util::NodeId b) {
  const auto lo = std::min(a.value(), b.value());
  const auto hi = std::max(a.value(), b.value());
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

void ContactTrace::record_up(util::NodeId a, util::NodeId b, util::SimTime at) {
  open_[pair_key(a, b)] = at;
}

void ContactTrace::record_down(util::NodeId a, util::NodeId b, util::SimTime at) {
  const std::uint64_t key = pair_key(a, b);
  auto it = open_.find(key);
  if (it == open_.end()) return;  // down without up: ignore (gated contact)
  const auto lo = std::min(a, b);
  const auto hi = std::max(a, b);
  contacts_.push_back(Contact{lo, hi, it->second, at});
  open_.erase(it);
}

void ContactTrace::finalize(util::SimTime end) {
  for (const auto& [key, up] : open_) {
    const util::NodeId a(static_cast<util::NodeId::underlying>(key >> 32));
    const util::NodeId b(static_cast<util::NodeId::underlying>(key & 0xffffffffULL));
    contacts_.push_back(Contact{a, b, up, end});
  }
  open_.clear();
  std::sort(contacts_.begin(), contacts_.end(), [](const Contact& x, const Contact& y) {
    return x.up < y.up;
  });
}

double ContactTrace::mean_duration_s() const {
  if (contacts_.empty()) return 0.0;
  return total_contact_time_s() / static_cast<double>(contacts_.size());
}

double ContactTrace::total_contact_time_s() const {
  double total = 0.0;
  for (const Contact& c : contacts_) total += c.duration().sec();
  return total;
}

}  // namespace dtnic::net
