#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace dtnic::util {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysBelow) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BelowZeroThrows) {
  Rng rng(5);
  EXPECT_THROW((void)rng.below(0), std::invalid_argument);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo = saw_lo || v == -2;
    saw_hi = saw_hi || v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(17);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalShiftScale) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, ExponentialRequiresPositiveRate) {
  Rng rng(23);
  EXPECT_THROW((void)rng.exponential(0.0), std::invalid_argument);
}

TEST(Rng, ForkIsDeterministic) {
  Rng a(42);
  Rng b(42);
  Rng fa = a.fork(5);
  Rng fb = b.fork(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(fa(), fb());
}

TEST(Rng, ForkTagsProduceIndependentStreams) {
  Rng parent(42);
  Rng a = parent.fork(1);
  Rng parent2(42);
  Rng b = parent2.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(31);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng rng(37);
  for (int trial = 0; trial < 50; ++trial) {
    const auto sample = rng.sample_indices(20, 8);
    ASSERT_EQ(sample.size(), 8u);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 8u);
    for (std::size_t s : sample) EXPECT_LT(s, 20u);
  }
}

TEST(Rng, SampleIndicesFullSet) {
  Rng rng(37);
  const auto sample = rng.sample_indices(5, 5);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(Rng, SampleIndicesRejectsOversample) {
  Rng rng(37);
  EXPECT_THROW((void)rng.sample_indices(3, 4), std::invalid_argument);
}

TEST(Splitmix, IsDeterministic) {
  std::uint64_t s1 = 99;
  std::uint64_t s2 = 99;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace dtnic::util
