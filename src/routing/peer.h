#pragma once

#include "msg/message.h"
#include "routing/types.h"

/// \file peer.h
/// The transport-neutral view of a contacted device. The exchange-phase
/// entry points (ChitChat planning, incentive promises, peer-side admission)
/// and the DtnOperator facade consume this interface instead of a concrete
/// routing::Host, so the same protocol code drives both execution modes:
///
///   * simulation — Host implements Peer directly (the peer is another
///     in-process Host; strength queries hit the peer router's memo cache);
///   * live overlay — live::RemotePeer implements Peer from wire state (the
///     HELLO rank, the peer's last interest-table digest, and the observed
///     duplicate/accept history stand in for direct object access).
///
/// The interface is deliberately read-only: everything a sender may learn
/// about a peer during an exchange is information the live protocol actually
/// puts on the wire. Mutating the peer (delivering a copy, paying tokens)
/// stays on the commit-side hooks, which remain transport-specific.

namespace dtnic::routing {

namespace chitchat {
class InterestTable;
}  // namespace chitchat

class Peer {
 public:
  virtual ~Peer() = default;

  [[nodiscard]] virtual NodeId id() const = 0;

  /// User role R_u of the incentive formula (1 = top of the hierarchy).
  [[nodiscard]] virtual int rank() const = 0;

  /// Whether the peer is known to already carry (or have carried) \p id.
  /// Planning must not offer such messages. A remote implementation may
  /// under-report (an unknown remote history looks empty); the peer-side
  /// admission check remains the authority and refuses duplicates.
  [[nodiscard]] virtual bool has_seen(MessageId id) const = 0;

  /// The peer's ChitChat interest table, or nullptr when the peer does not
  /// run a ChitChat-family scheme (or no digest has been exchanged yet).
  [[nodiscard]] virtual const chitchat::InterestTable* interest_table() const = 0;

  /// Σw over \p m's keywords at the peer (S_v of the ChitChat handoff rule);
  /// 0 when the peer has no interest table.
  [[nodiscard]] virtual double message_strength(const msg::Message& m) const = 0;
};

}  // namespace dtnic::routing
