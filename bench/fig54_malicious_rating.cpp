/// Reproduces Figure 5.4: the average rating of malicious nodes as seen by
/// non-malicious nodes, over simulated time, for malicious fractions of
/// 10..40%. Ratings use the paper's 0..5 scale. Paper shape: ratings fall
/// from the neutral prior as the DRM detects tag pollution, and fall faster
/// when more malicious nodes roam the area (more encounters per honest node
/// plus second-hand gossip).

#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace dtnic;
  util::Cli cli;
  const bench::BenchScale scale = bench::resolve_scale(cli, argc, argv, argv[0]);
  bench::print_header("Figure 5.4: avg rating of malicious nodes vs time", scale);

  const scenario::SweepRunner sweep(scale.seeds);
  const double fractions[] = {0.1, 0.2, 0.3, 0.4};

  std::vector<scenario::ScenarioConfig> points;
  for (const double frac : fractions) {
    scenario::ScenarioConfig cfg = bench::base_config(scale);
    cfg.malicious_fraction = frac;
    cfg.scheme = scenario::Scheme::kIncentive;
    // Detection saturates quickly once gossip spreads; sample densely so the
    // transient — where the malicious-fraction ordering shows — is resolved.
    cfg.sample_interval_s = cfg.sim_hours * 3600.0 / 48.0;
    points.push_back(cfg);
  }
  const auto results = sweep.run_all(points);

  std::vector<std::vector<std::pair<double, double>>> series;
  for (const auto& agg : results) {
    series.push_back(scenario::ExperimentRunner::mean_series(agg.raw));
  }

  util::Table table({"time (min)", "10% malicious", "20% malicious", "30% malicious",
                     "40% malicious"});
  // Dense early (the detection transient), sparse later.
  const std::size_t rows = series[0].size();
  std::size_t stride = 1;
  for (std::size_t i = 0; i < rows; i += stride) {
    if (i >= 12) stride = 6;
    std::vector<std::string> row{util::Table::cell(series[0][i].first / 60.0, 1)};
    for (const auto& s : series) {
      row.push_back(i < s.size() ? util::Table::cell(s[i].second, 3) : "-");
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: each curve decays from the 3.5 prior toward ~0; decay is\n"
               "faster at higher malicious fractions.\n";
  return 0;
}
