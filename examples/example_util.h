#pragma once

#include <iostream>
#include <memory>
#include <vector>

#include "core/incentive_router.h"
#include "core/operator_api.h"
#include "msg/id_source.h"
#include "msg/keyword.h"
#include "routing/host.h"
#include "routing/oracle.h"

/// \file example_util.h
/// A hand-driven "pocket network" for the example programs: a few devices
/// running the full incentive scheme, with contacts driven step by step so
/// each example can narrate what happens. (The benchmark harness uses the
/// full event-driven Scenario instead; this is the didactic path.)

namespace dtnic::examples {

class PocketNetwork {
 public:
  explicit PocketNetwork(core::IncentiveParams incentive = {}, core::DrmParams drm = {}) {
    pool_ = keywords.make_pool(64, "topic");
    world.incentive = incentive;
    world.drm = drm;
    world.keyword_pool = &pool_;
  }

  /// Add a device; returns its operator facade.
  core::DtnOperator& add_device(const std::string& name, core::BehaviorProfile profile = {},
                                std::uint64_t buffer_mb = 64) {
    const auto id =
        util::NodeId(static_cast<util::NodeId::underlying>(hosts_.size()));
    hosts_.push_back(std::make_unique<routing::Host>(id, buffer_mb * 1024 * 1024));
    names_.push_back(name);
    routing::chitchat::ChitChatParams chitchat;
    hosts_.back()->set_router(std::make_unique<core::IncentiveRouter>(
        oracle, chitchat, util::SimTime::seconds(5), &world, profile,
        util::Rng(1000 + id.value())));
    operators_.push_back(std::make_unique<core::DtnOperator>(*hosts_.back(), oracle,
                                                             keywords, ids));
    return *operators_.back();
  }

  [[nodiscard]] const std::string& name_of(util::NodeId id) const {
    return names_.at(id.value());
  }

  /// Run a full contact between two devices at time \p now: the ChitChat
  /// weight exchange, then message transfers in both directions (admission
  /// control honored). Returns how many messages moved.
  int contact(core::DtnOperator& x, core::DtnOperator& y, util::SimTime now) {
    routing::Host& a = x.host();
    routing::Host& b = y.host();
    std::vector<routing::Host*> none;
    a.router().pre_exchange(a, now, none);
    b.router().pre_exchange(b, now, none);
    a.router().on_link_up(a, b, now, 30.0);
    b.router().on_link_up(b, a, now, 30.0);
    return transfer_all(a, b, now) + transfer_all(b, a, now);
  }

  msg::KeywordTable keywords;
  routing::StaticInterestOracle oracle;
  msg::MessageIdSource ids;
  core::IncentiveWorld world;

 private:
  int transfer_all(routing::Host& from, routing::Host& to, util::SimTime now) {
    int moved = 0;
    int refused = 0;
    std::string last_reason;
    for (const routing::ForwardPlan& plan : from.router().plan(from, to, now)) {
      const msg::Message* m = from.buffer().find(plan.message);
      if (m == nullptr) continue;
      const auto decision = to.router().accept(to, from, *m, plan, now);
      if (decision != routing::AcceptDecision::kAccept) {
        ++refused;
        last_reason = routing::accept_name(decision);
        continue;
      }
      msg::Message copy = *m;
      copy.record_hop(to.id(), now);
      from.router().prepare_send(from, to, copy, plan, now);
      from.router().on_sent(from, to, copy, plan, now);
      to.router().on_received(to, from, std::move(copy), plan, now);
      ++moved;
    }
    if (refused > 0) {
      std::cout << "    [" << name_of(to.id()) << " refused " << refused
                << " offer(s): " << last_reason << "]\n";
    }
    return moved;
  }

  std::vector<std::unique_ptr<routing::Host>> hosts_;
  std::vector<std::unique_ptr<core::DtnOperator>> operators_;
  std::vector<std::string> names_;
  std::vector<msg::KeywordId> pool_;
};

}  // namespace dtnic::examples
