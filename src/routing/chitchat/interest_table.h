#pragma once

#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "msg/message.h"
#include "util/arena.h"
#include "util/sim_time.h"

/// \file interest_table.h
/// ChitChat's Real-time Transient Social Relationship (RTSR) state: every
/// interest keyword carries a weight in [0, 1]. Direct interests are defined
/// by the user (weight starts at 0.5 and decays toward 0.5); transient
/// interests are acquired from encountered devices (decay toward 0). The
/// decay/growth algorithms follow Paper I §2.3; calibration constants and
/// the contact-quantum interpretation are documented in DESIGN.md §5.

namespace dtnic::routing::chitchat {

using msg::KeywordId;
using util::SimTime;

struct ChitChatParams {
  double initial_weight = 0.5;  ///< weight of a freshly defined direct interest
  double max_weight = 1.0;      ///< cap from the growth algorithm
  /// Decay constant β [1/s]. The thesis' worked example uses β=2, which
  /// erases transient interests within seconds; we default to 0.01 so
  /// transient relationships persist on the inter-contact timescale
  /// (DESIGN.md §5.2 records this calibration).
  double decay_beta = 0.01;
  /// Growth rate γ [1/s]: Δ = γ · w_v(I) · quantum / ψ per exchange.
  double growth_rate = 0.02;
  /// Cap on the contact quantum credited per exchange, seconds.
  double growth_contact_cap_s = 10.0;
  /// Transient entries whose weight falls below this are forgotten.
  double prune_epsilon = 1e-3;
  /// Relay handoff needs S_v > S_u + this margin (0 = strict inequality).
  double forward_margin = 0.0;
};

class InterestTable {
 public:
  explicit InterestTable(const ChitChatParams& params) : params_(params) {}

  /// Define a direct (self-chosen) interest; weight starts at 0.5.
  void add_direct(KeywordId k, SimTime now);

  [[nodiscard]] bool has(KeywordId k) const { return slots_.count(k) > 0; }
  [[nodiscard]] bool has_direct(KeywordId k) const;
  /// Weight of \p k; 0 if unknown.
  [[nodiscard]] double weight(KeywordId k) const;
  [[nodiscard]] double sum_weights(std::span<const KeywordId> keywords) const;
  /// Mean weight over \p keywords (0 for an empty list).
  [[nodiscard]] double mean_weight(std::span<const KeywordId> keywords) const;
  [[nodiscard]] std::size_t size() const { return slots_.size(); }

  /// Monotone counter bumped whenever a weight changes or a slot appears or
  /// disappears (add_direct / decay / grow_from). Strength caches key on it:
  /// while the generation holds, every sum_weights result is still valid.
  [[nodiscard]] std::uint64_t generation() const { return generation_; }

  /// Decay phase. \p connected_has(I) reports whether some *currently
  /// connected* device shares interest I — such interests do not decay and
  /// their last-seen timestamp refreshes (Algorithm 1).
  void decay(SimTime now, const std::function<bool(KeywordId)>& connected_has);

  /// Decay against the interest tables of the currently connected ChitChat
  /// neighbors. Equivalent to the predicate overload with "any table has(I)"
  /// but hoists the neighbor-router resolution out of the per-slot loop; the
  /// contact hot path uses this with a caller-owned scratch span.
  void decay_against(SimTime now, std::span<const InterestTable* const> connected);

  /// Growth phase: absorb the peer's (already decayed) interests
  /// (Algorithm 2). \p contact_quantum_s is the capped contact-time credit
  /// for this exchange. Unknown interests are acquired as transient.
  void grow_from(const InterestTable& peer, SimTime now, double contact_quantum_s);

  /// Record that a connected device shares interest \p k at \p now.
  void note_seen(KeywordId k, SimTime now);

  /// Reinstate a slot verbatim — weight, directness, last-seen — bypassing
  /// the growth algorithm. Only deserialization uses this (the live
  /// overlay's INTEREST_DIGEST frames reconstruct a remote peer's table);
  /// protocol code must go through add_direct / grow_from.
  void restore(KeywordId k, double weight, bool direct, SimTime now);

  struct Entry {
    KeywordId keyword;
    double weight = 0.0;
    bool direct = false;
    SimTime last_seen;
  };
  /// Snapshot sorted by keyword id (deterministic iteration for tests).
  [[nodiscard]] std::vector<Entry> entries() const;

  /// Visit every slot as (keyword, weight, direct) without allocating.
  /// Iteration order is the hash map's — use only for order-independent
  /// operations (e.g. refreshing last-seen stamps on link-up).
  template <class Visitor>
  void for_each(Visitor&& visit) const {
    for (const auto& [keyword, slot] : slots_) visit(keyword, slot.weight, slot.direct);
  }

  [[nodiscard]] const ChitChatParams& params() const { return params_; }

 private:
  struct Slot {
    double weight = 0.0;
    bool direct = false;
    double last_seen_s = 0.0;  ///< T_l: last time a device with I was connected
  };

  /// Algorithm 1 over all slots with an arbitrary connected-interest
  /// predicate; both public decay entry points funnel here.
  template <class ConnectedHas>
  void decay_impl(SimTime now, ConnectedHas&& connected_has);

  /// ψ of Algorithm 2 for the six direct/transient/absent combinations.
  [[nodiscard]] static int psi(bool self_has, bool self_direct, bool peer_direct);

  ChitChatParams params_;
  util::arena::PooledMap<KeywordId, Slot> slots_;
  std::uint64_t generation_ = 0;
};

}  // namespace dtnic::routing::chitchat
