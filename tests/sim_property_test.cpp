#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace dtnic::sim {
namespace {

using util::SimTime;

/// Randomized oracle test: the queue must pop events in exactly the order a
/// stable sort by (time, insertion index) produces, under interleaved
/// pushes, pops and cancellations.
class EventQueueOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventQueueOracle, MatchesStableSort) {
  util::Rng rng(GetParam());
  EventQueue queue;
  struct Expected {
    double time;
    int tag;
    EventId id;
    bool cancelled = false;
  };
  std::vector<Expected> pending;
  std::vector<int> popped;
  std::vector<int> expected_popped;
  int next_tag = 0;

  auto drain_one_expected = [&]() -> bool {
    auto best = pending.end();
    for (auto it = pending.begin(); it != pending.end(); ++it) {
      if (it->cancelled) continue;
      if (best == pending.end() || it->time < best->time) best = it;
    }
    if (best == pending.end()) return false;
    expected_popped.push_back(best->tag);
    pending.erase(best);
    return true;
  };

  for (int step = 0; step < 3000; ++step) {
    const double roll = rng.uniform();
    if (roll < 0.55) {
      const double t = rng.uniform(0.0, 1000.0);
      const int tag = next_tag++;
      const EventId id = queue.push(SimTime::seconds(t), [tag, &popped] {
        popped.push_back(tag);
      });
      pending.push_back({t, tag, id});
    } else if (roll < 0.85) {
      if (!queue.empty()) {
        queue.pop().fn();
        ASSERT_TRUE(drain_one_expected());
      }
    } else if (!pending.empty()) {
      auto& victim = pending[rng.index(pending.size())];
      if (!victim.cancelled) {
        queue.cancel(victim.id);
        victim.cancelled = true;
        pending.erase(std::remove_if(pending.begin(), pending.end(),
                                     [](const Expected& e) { return e.cancelled; }),
                      pending.end());
      }
    }
  }
  while (!queue.empty()) {
    queue.pop().fn();
    ASSERT_TRUE(drain_one_expected());
  }
  EXPECT_EQ(popped, expected_popped);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueOracle, ::testing::Values(1, 2, 3, 4, 5, 6));

/// All times distinct in the oracle above would hide FIFO ties; verify ties
/// explicitly under churn.
TEST(EventQueueTies, FifoAmongEqualTimes) {
  EventQueue queue;
  std::vector<int> fired;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 4; ++i) {
      (void)queue.push(SimTime::seconds(round), [&fired, round, i] {
        fired.push_back(round * 4 + i);
      });
    }
  }
  while (!queue.empty()) queue.pop().fn();
  for (std::size_t i = 1; i < fired.size(); ++i) ASSERT_LT(fired[i - 1], fired[i]);
}

/// Long chains of self-rescheduling events keep the clock monotone.
TEST(SimulatorStress, SelfSchedulingChainsStayMonotone) {
  Simulator sim;
  util::Rng rng(17);
  double last_seen = -1.0;
  int fired = 0;
  std::function<void()> chain = [&] {
    const double now = sim.now().sec();
    ASSERT_GE(now, last_seen);
    last_seen = now;
    ++fired;
    if (fired < 5000) {
      (void)sim.schedule_in(SimTime::seconds(rng.uniform(0.0, 2.0)), chain);
    }
  };
  for (int i = 0; i < 5; ++i) (void)sim.schedule_at(SimTime::seconds(i * 0.1), chain);
  sim.run_until(SimTime::hours(10));
  EXPECT_GE(fired, 5000);
}

/// Many periodic tasks with different phases fire the right number of times.
TEST(SimulatorStress, ManyPeriodicTasks) {
  Simulator sim;
  std::vector<int> counts(20, 0);
  for (int i = 0; i < 20; ++i) {
    (void)sim.schedule_every_from(SimTime::seconds(i * 0.37), SimTime::seconds(1.0 + i),
                                  [&counts, i] { ++counts[i]; });
  }
  sim.run_until(SimTime::seconds(100));
  for (int i = 0; i < 20; ++i) {
    const double first = i * 0.37;
    const double period = 1.0 + i;
    const int expected = static_cast<int>((100.0 - first) / period) + 1;
    EXPECT_NEAR(counts[i], expected, 1) << "task " << i;
  }
}

}  // namespace
}  // namespace dtnic::sim
