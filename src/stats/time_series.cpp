#include "stats/time_series.h"

namespace dtnic::stats {

double TimeSeries::value_at(util::SimTime t) const {
  if (samples_.empty()) return 0.0;
  double value = samples_.front().value;
  for (const Sample& s : samples_) {
    if (s.time > t) break;
    value = s.value;
  }
  return value;
}

}  // namespace dtnic::stats
