#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include "live/live_node.h"
#include "obs/trace_replay.h"
#include "obs/trace_sink.h"
#include "scenario/config.h"
#include "scenario/router_factory.h"
#include "util/cli.h"
#include "util/num_format.h"

/// \file dtnic_main.cpp
/// `dtnic` — the live overlay daemon. Runs one DTN node (the real Host +
/// router stack) over loopback/LAN UDP for a fixed duration, optionally
/// publishing an annotated message and subscribing to keywords, and emits
/// the same `dtnic.trace.v1` JSONL stream as the simulator, so the obs
/// tooling (replay_trace, validators) works on live runs unchanged.
///
/// Two-daemon loopback quickstart: see README.md ("Live overlay").

namespace {

using dtnic::live::Endpoint;
using dtnic::live::LiveNode;
using dtnic::live::LiveNodeConfig;
using dtnic::util::SimTime;

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// "1=127.0.0.1:47612,2=127.0.0.1:47613" -> [(node, endpoint), ...]
std::vector<std::pair<dtnic::routing::NodeId, Endpoint>> parse_peers(const std::string& s) {
  std::vector<std::pair<dtnic::routing::NodeId, Endpoint>> out;
  for (const std::string& item : split_csv(s)) {
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("--peers entry needs id=ip:port, got: " + item);
    }
    const long id = std::stol(item.substr(0, eq));
    const auto ep = dtnic::live::parse_endpoint(item.substr(eq + 1));
    if (id < 0 || !ep) throw std::invalid_argument("bad --peers entry: " + item);
    out.emplace_back(dtnic::routing::NodeId(static_cast<std::uint32_t>(id)), *ep);
  }
  return out;
}

int run(int argc, char** argv) {
  dtnic::util::Cli cli;
  cli.add_flag("node", "0", "this node's id");
  cli.add_flag("listen", "0", "UDP port to bind on 127.0.0.1 (0 = ephemeral)");
  cli.add_flag("peers", "", "seed peers as id=ip:port[,id=ip:port...]");
  cli.add_flag("keywords", "kw0,kw1,kw2,kw3", "agreed keyword pool, in order (comma list)");
  cli.add_flag("subscribe", "", "keywords this node's user subscribes to (comma list)");
  cli.add_flag("publish", "", "keywords of one message to publish at startup (comma list)");
  cli.add_flag("publish-size", "65536", "published message size in bytes");
  cli.add_flag("duration-s", "10", "wall-clock run duration in seconds");
  cli.add_flag("hello-interval-s", "0.5", "keepalive HELLO interval");
  cli.add_flag("scheme", "incentive", "routing scheme: incentive or chitchat");
  cli.add_flag("rank", "1", "hardware/user rank R_u (1 = highest)");
  cli.add_flag("seed", "1", "seed for this node's judgement/noise streams");
  cli.add_flag("trace-out", "", "write a dtnic.trace.v1 JSONL trace to this path");
  cli.add_flag("metrics-out", "", "write a key=value metrics summary to this path");
  cli.add_flag("replay-check", "", "after the run, replay the trace and verify counters");
  if (!cli.parse(argc, argv)) {
    std::cout << cli.usage("dtnic");
    return 0;
  }

  LiveNodeConfig cfg;
  cfg.node = dtnic::routing::NodeId(static_cast<std::uint32_t>(cli.get_int("node")));
  cfg.listen_port = static_cast<std::uint16_t>(cli.get_int("listen"));
  cfg.rank = static_cast<int>(cli.get_int("rank"));
  cfg.hello_interval_s = cli.get_double("hello-interval-s");
  cfg.peer_timeout_s = 4.0 * cfg.hello_interval_s;
  cfg.keywords = split_csv(cli.get("keywords"));
  cfg.scenario.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const std::string scheme = cli.get("scheme");
  const dtnic::scenario::RouterSpec* spec = dtnic::scenario::find_router_spec(scheme);
  if (spec == nullptr) throw std::invalid_argument("unknown --scheme: " + scheme);
  cfg.scenario.scheme = spec->scheme;

  LiveNode node(cfg);
  for (const auto& [peer_id, endpoint] : parse_peers(cli.get("peers"))) {
    node.add_seed_peer(peer_id, endpoint);
  }

  const std::string trace_path = cli.get("trace-out");
  std::unique_ptr<dtnic::obs::TraceSink> trace;
  dtnic::obs::SinkHandle trace_handle;
  if (!trace_path.empty()) {
    dtnic::obs::TraceOptions options;
    options.seed = cfg.scenario.seed;
    options.scheme = scheme;
    options.clock = [&node]() { return node.now(); };
    trace = dtnic::obs::open_trace_file(trace_path, std::move(options));
    trace_handle = node.events().add_sink(*trace);
  }

  const SimTime t0 = SimTime::zero();
  if (!cli.get("subscribe").empty()) node.subscribe(split_csv(cli.get("subscribe")), t0);

  const auto start = std::chrono::steady_clock::now();
  auto now = [&start]() {
    const auto elapsed = std::chrono::steady_clock::now() - start;
    return SimTime::seconds(std::chrono::duration<double>(elapsed).count());
  };

  if (!cli.get("publish").empty()) {
    node.publish(split_csv(cli.get("publish")), now(),
                 static_cast<std::uint64_t>(cli.get_int("publish-size")),
                 dtnic::msg::Priority::kHigh, 1.0);
  }

  const double duration_s = cli.get_double("duration-s");
  while (now().sec() < duration_s) {
    node.service(now());
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const std::size_t links_at_end = node.links_up();
  node.shutdown(now());

  const auto& m = node.metrics();
  std::ostringstream summary;
  summary << "node=" << node.host().id() << "\n"
          << "links_up=" << links_at_end << "\n"
          << "created=" << m.created() << "\n"
          << "delivered_unique=" << m.delivered_unique() << "\n"
          << "relayed=" << m.relay_arrivals() << "\n"
          << "traffic=" << m.traffic() << "\n"
          << "tokens_paid=" << dtnic::util::format_double(m.tokens_paid_total()) << "\n"
          << "tokens_balance=" << dtnic::util::format_double(node.tokens()) << "\n"
          << "rejected_frames=" << node.rejected_frames() << "\n";
  std::cout << summary.str();
  if (!cli.get("metrics-out").empty()) {
    std::ofstream out(cli.get("metrics-out"));
    out << summary.str();
  }

  if (trace) {
    trace_handle.reset();
    trace->flush();
    if (!trace->ok()) {
      std::cerr << "dtnic: trace write failed: " << trace_path << "\n";
      return 1;
    }
    trace.reset();
  }

  // Self-check: replaying our own trace into a fresh collector must
  // reproduce this run's counters exactly (the obs layer's contract).
  if (!cli.get("replay-check").empty()) {
    if (trace_path.empty()) {
      std::cerr << "dtnic: --replay-check needs --trace-out\n";
      return 1;
    }
    std::ifstream in(trace_path);
    dtnic::stats::MetricsCollector replayed;
    dtnic::obs::replay_trace(in, replayed);
    const bool same = replayed.created() == m.created() &&
                      replayed.delivered_unique() == m.delivered_unique() &&
                      replayed.relay_arrivals() == m.relay_arrivals() &&
                      replayed.traffic() == m.traffic() &&
                      replayed.tokens_paid_total() == m.tokens_paid_total() &&
                      replayed.reputation_updates() == m.reputation_updates();
    if (!same) {
      std::cerr << "dtnic: replay-check FAILED: trace does not reproduce live counters\n";
      return 1;
    }
    std::cout << "replay_check=ok\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "dtnic: " << e.what() << "\n";
    return 1;
  }
}
