#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/bytes.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace dtnic::util {
namespace {

// --- layout ------------------------------------------------------------------
// The wire format is little-endian by definition, not by host accident: each
// width has a byte-exact expectation, so the tests fail on a big-endian port
// rather than silently producing a different byte stream.

TEST(Bytes, U16LayoutIsLittleEndian) {
  std::vector<std::uint8_t> out;
  write_u16(out, 0xDC17);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 0x17);
  EXPECT_EQ(out[1], 0xDC);
}

TEST(Bytes, U32LayoutIsLittleEndian) {
  std::vector<std::uint8_t> out;
  write_u32(out, 0x01020304u);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], 0x04);
  EXPECT_EQ(out[1], 0x03);
  EXPECT_EQ(out[2], 0x02);
  EXPECT_EQ(out[3], 0x01);
}

TEST(Bytes, U64LayoutIsLittleEndian) {
  std::vector<std::uint8_t> out;
  write_u64(out, 0x0102030405060708ull);
  ASSERT_EQ(out.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], 8 - i);
}

// --- round trips -------------------------------------------------------------

TEST(Bytes, U16RoundTripEdges) {
  for (std::uint32_t v : {0u, 1u, 0x7fffu, 0x8000u, 0xffffu}) {
    std::vector<std::uint8_t> out;
    write_u16(out, static_cast<std::uint16_t>(v));
    EXPECT_EQ(read_u16(out.data()), v);
  }
}

TEST(Bytes, U32RoundTripEdges) {
  for (std::uint32_t v : {0u, 1u, 0x7fffffffu, 0x80000000u, 0xffffffffu}) {
    std::vector<std::uint8_t> out;
    write_u32(out, v);
    EXPECT_EQ(read_u32(out.data()), v);
  }
}

TEST(Bytes, U64RoundTripEdges) {
  for (std::uint64_t v : {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{0x7fffffffffffffff},
                          std::uint64_t{0x8000000000000000}, ~std::uint64_t{0}}) {
    std::vector<std::uint8_t> out;
    write_u64(out, v);
    EXPECT_EQ(read_u64(out.data()), v);
  }
}

// Signed values cross the wire as their two's-complement unsigned image; the
// cast round trip must restore the original (rank is an int32 on the wire).
TEST(Bytes, SignedViaUnsignedImage) {
  for (std::int32_t v : {0, 1, -1, std::numeric_limits<std::int32_t>::min(),
                         std::numeric_limits<std::int32_t>::max()}) {
    std::vector<std::uint8_t> out;
    write_u32(out, static_cast<std::uint32_t>(v));
    EXPECT_EQ(static_cast<std::int32_t>(read_u32(out.data())), v);
  }
}

TEST(Bytes, F64RoundTripSpecials) {
  const double specials[] = {0.0,
                             -0.0,
                             1.0,
                             -1.5,
                             std::numeric_limits<double>::infinity(),
                             -std::numeric_limits<double>::infinity(),
                             std::numeric_limits<double>::denorm_min(),
                             std::numeric_limits<double>::max(),
                             std::numeric_limits<double>::epsilon()};
  for (double v : specials) {
    std::vector<std::uint8_t> out;
    write_f64(out, v);
    const double back = read_f64(out.data());
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back), std::bit_cast<std::uint64_t>(v));
  }
}

TEST(Bytes, F64PreservesNanPayload) {
  const double nan = std::bit_cast<double>(0x7ff8dead'beef0001ull);
  std::vector<std::uint8_t> out;
  write_f64(out, nan);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(read_f64(out.data())), 0x7ff8dead'beef0001ull);
}

// SimTime::infinity is the "never" sentinel; it must survive serialization or
// a wire'd TTL of "no expiry" would corrupt into a huge-but-finite deadline.
TEST(Bytes, SimTimeInfinityRoundTrips) {
  std::vector<std::uint8_t> out;
  write_f64(out, SimTime::infinity().sec());
  const SimTime back = SimTime::seconds(read_f64(out.data()));
  EXPECT_TRUE(std::isinf(back.sec()));
  EXPECT_EQ(back, SimTime::infinity());
}

TEST(Bytes, RandomizedRoundTrips) {
  Rng rng(0xb17e5);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng();
    std::vector<std::uint8_t> out;
    write_u16(out, static_cast<std::uint16_t>(v));
    write_u32(out, static_cast<std::uint32_t>(v));
    write_u64(out, v);
    write_f64(out, rng.uniform(-1e12, 1e12));
    const double d = read_f64(out.data() + 14);
    EXPECT_EQ(read_u16(out.data()), static_cast<std::uint16_t>(v));
    EXPECT_EQ(read_u32(out.data() + 2), static_cast<std::uint32_t>(v));
    EXPECT_EQ(read_u64(out.data() + 6), v);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(d),
              std::bit_cast<std::uint64_t>(read_f64(out.data() + 14)));
  }
}

TEST(Bytes, StoreU32PatchesInPlace) {
  std::vector<std::uint8_t> out;
  write_u32(out, 0);
  write_u32(out, 0xAABBCCDDu);
  store_u32(out.data(), 0x11223344u);
  EXPECT_EQ(read_u32(out.data()), 0x11223344u);
  EXPECT_EQ(read_u32(out.data() + 4), 0xAABBCCDDu);  // neighbor untouched
}

}  // namespace
}  // namespace dtnic::util
