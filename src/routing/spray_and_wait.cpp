#include "routing/spray_and_wait.h"

#include "util/assert.h"

namespace dtnic::routing {

SprayAndWaitRouter::SprayAndWaitRouter(const DestinationOracle& oracle, int initial_copies)
    : Router(oracle, RouterKind::kSprayAndWait), initial_copies_(initial_copies) {
  DTNIC_REQUIRE_MSG(initial_copies >= 1, "spray needs at least one copy");
}

int SprayAndWaitRouter::copies_of(const msg::Message& m) {
  return static_cast<int>(m.property_or(kCopiesProperty, 1.0));
}

void SprayAndWaitRouter::on_originated(Host& self, const msg::Message& m, util::SimTime now) {
  (void)now;
  msg::Message* stored = self.buffer().find_mutable(m.id());
  if (stored != nullptr) stored->set_property(kCopiesProperty, initial_copies_);
}

std::vector<ForwardPlan> SprayAndWaitRouter::plan(Host& self, Host& peer, util::SimTime now) {
  (void)now;
  std::vector<ForwardPlan> plans;
  for (const msg::Message* m : self.buffer().messages()) {
    if (peer.has_seen(m->id())) continue;
    if (oracle().is_destination(peer.id(), *m)) {
      plans.push_back(ForwardPlan{m->id(), TransferRole::kDestination});
    } else if (copies_of(*m) > 1) {
      plans.push_back(ForwardPlan{m->id(), TransferRole::kRelay});
    }
  }
  return plans;
}

void SprayAndWaitRouter::prepare_send(Host& self, Host& peer, msg::Message& copy,
                                      const ForwardPlan& plan, util::SimTime now) {
  (void)peer; (void)now;
  if (plan.role != TransferRole::kRelay) return;
  const msg::Message* mine = self.buffer().find(copy.id());
  const int c = mine != nullptr ? copies_of(*mine) : 1;
  copy.set_property(kCopiesProperty, static_cast<double>(c / 2));  // floor half
}

void SprayAndWaitRouter::on_sent(Host& self, Host& peer, const msg::Message& m,
                                 const ForwardPlan& plan, util::SimTime now) {
  (void)peer; (void)now;
  if (plan.role != TransferRole::kRelay) return;
  msg::Message* mine = self.buffer().find_mutable(m.id());
  if (mine == nullptr) return;
  const int c = copies_of(*mine);
  mine->set_property(kCopiesProperty, static_cast<double>(c - c / 2));  // keep ceil half
}

}  // namespace dtnic::routing
