#include "routing/oracle.h"

#include <algorithm>

namespace dtnic::routing {

const std::unordered_set<msg::KeywordId> StaticInterestOracle::kEmpty{};

void StaticInterestOracle::set_interests(NodeId node, std::vector<msg::KeywordId> interests) {
  auto& set = interests_[node];
  set.clear();
  set.insert(interests.begin(), interests.end());
}

const std::unordered_set<msg::KeywordId>& StaticInterestOracle::interests_of(NodeId node) const {
  auto it = interests_.find(node);
  return it != interests_.end() ? it->second : kEmpty;
}

bool StaticInterestOracle::is_destination(NodeId node, const msg::Message& m) const {
  const auto& set = interests_of(node);
  if (set.empty()) return false;
  return std::any_of(m.annotations().begin(), m.annotations().end(),
                     [&set](const msg::Annotation& a) { return set.count(a.keyword) > 0; });
}

std::vector<NodeId> StaticInterestOracle::subscribers_of(msg::KeywordId keyword) const {
  std::vector<NodeId> out;
  for (const auto& [node, set] : interests_) {
    if (set.count(keyword)) out.push_back(node);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace dtnic::routing
