#pragma once

#include "routing/router.h"

/// \file spray_and_wait.h
/// Binary Spray-and-Wait (Spyropoulos et al.): a message starts with L
/// logical copies; meeting a relay hands over half of the remaining copies;
/// a node holding a single copy waits for a destination. The copy counter
/// travels as a message property, mirroring ONE's implementation.

namespace dtnic::routing {

class SprayAndWaitRouter : public Router {
 public:
  /// Property key carrying the remaining logical copies of this copy.
  static constexpr const char* kCopiesProperty = "snw.copies";

  SprayAndWaitRouter(const DestinationOracle& oracle, int initial_copies);

  [[nodiscard]] std::vector<ForwardPlan> plan(Host& self, Host& peer,
                                              util::SimTime now) override;
  void prepare_send(Host& self, Host& peer, msg::Message& copy, const ForwardPlan& plan,
                    util::SimTime now) override;
  void on_sent(Host& self, Host& peer, const msg::Message& m, const ForwardPlan& plan,
               util::SimTime now) override;
  void on_originated(Host& self, const msg::Message& m, util::SimTime now) override;

  [[nodiscard]] int initial_copies() const { return initial_copies_; }

 private:
  /// Remaining copies on the buffered instance at \p self.
  [[nodiscard]] static int copies_of(const msg::Message& m);

  int initial_copies_;
};

}  // namespace dtnic::routing
