#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/sim_time.h"

/// \file event_queue.h
/// Time-ordered event queue with stable FIFO ordering for simultaneous
/// events and O(log n) lazy cancellation.

namespace dtnic::sim {

using EventFn = std::function<void()>;

/// Opaque handle for cancelling a scheduled event.
struct EventId {
  std::uint64_t value = 0;
  [[nodiscard]] bool valid() const { return value != 0; }
  friend bool operator==(EventId, EventId) = default;
};

class EventQueue {
 public:
  /// Enqueue \p fn at time \p t. Events at the same time fire in insertion
  /// order, which keeps runs deterministic.
  EventId push(util::SimTime t, EventFn fn);

  /// Cancel an event; harmless if already fired or cancelled.
  void cancel(EventId id);

  [[nodiscard]] bool empty() const;
  [[nodiscard]] std::size_t size() const;

  /// Time of the earliest pending (non-cancelled) event.
  /// Requires !empty().
  [[nodiscard]] util::SimTime next_time();

  /// Remove and return the earliest pending event. Requires !empty().
  struct Popped {
    util::SimTime time;
    EventFn fn;
  };
  [[nodiscard]] Popped pop();

  /// Bookkeeping introspection (tests / diagnostics): raw heap entries
  /// including cancelled ones not yet dropped, and pending cancel markers.
  /// Both drain to zero when the queue empties.
  [[nodiscard]] std::size_t heap_entries() const { return heap_.size(); }
  [[nodiscard]] std::size_t cancelled_entries() const { return cancelled_.size(); }

 private:
  struct Entry {
    util::SimTime time;
    std::uint64_t seq;
    EventId id;
    // Heap entries are copied around; keep the callable in a side table
    // indexed by seq to avoid moving std::function through the heap.
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void drop_cancelled();
  /// Release cancel bookkeeping: when the queue drains, every remaining heap
  /// entry is a cancelled straggler and is dropped wholesale; under
  /// cancel-heavy load the heap is compacted once dead entries outnumber
  /// live ones, instead of waiting for each to surface at the top.
  void maybe_shrink();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_map<std::uint64_t, EventFn> callbacks_;  // keyed by seq
  std::unordered_set<std::uint64_t> cancelled_;           // EventId values
  std::uint64_t next_seq_ = 1;
};

}  // namespace dtnic::sim
