#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "net/contact_trace.h"
#include "scenario/result.h"
#include "stats/time_series.h"
#include "util/table.h"

/// \file report.h
/// Human-readable and CSV renderings of run results: the per-run report,
/// side-by-side scheme comparisons, time-series CSV export, and contact
/// dynamics summaries (used to sanity-check the mobility substrate against
/// ONE-like contact statistics).

namespace dtnic::scenario {

/// Full single-run report as an aligned table.
void write_run_report(std::ostream& os, const RunResult& result);

/// Per-phase wall-clock breakdown of one run (ScopedTimer accounting).
/// Phases are exclusive, so rows sum to at most the wall row; the remainder
/// is event-loop and mobility overhead outside the instrumented phases.
void write_timing_report(std::ostream& os, const PhaseTimings& timing);

/// One row per result, for side-by-side scheme or sweep comparisons.
[[nodiscard]] util::Table comparison_table(const std::vector<RunResult>& results);

/// Time series as CSV: `time_s,value` rows with a header.
void write_series_csv(std::ostream& os, const stats::TimeSeries& series,
                      const std::string& value_name);

/// Contact dynamics summary of a finalized trace.
struct ContactSummary {
  std::size_t contacts = 0;
  double mean_duration_s = 0.0;
  double median_duration_s = 0.0;
  double mean_intercontact_s = 0.0;  ///< mean gap between consecutive contacts
                                     ///< of the same pair (0 if no repeats)
  double total_contact_time_s = 0.0;
};

[[nodiscard]] ContactSummary summarize_contacts(const net::ContactTrace& trace);

void write_contact_summary(std::ostream& os, const ContactSummary& summary);

}  // namespace dtnic::scenario
