# Runs the two-daemon live-overlay smoke: a publisher and a subscriber dtnic
# on loopback UDP, concurrently (execute_process pipelines its COMMANDs, and
# neither daemon reads stdin, so the pipe is inert). Script mode:
#
#   cmake -DDTNIC=<path to dtnic> -DOUT_DIR=<scratch dir>
#         [-DPORT_A=47611 -DPORT_B=47612] -P cmake/run_live_smoke.cmake
#
# Success means node B (the subscriber) delivered exactly one message, paid
# tokens for it, and both daemons' --replay-check passed: each one replayed
# its own `dtnic.trace.v1` artifact and reproduced its live counters. The
# trace files are left in OUT_DIR for the validate_trace_jsonl step.

if(NOT DEFINED DTNIC OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR "pass -DDTNIC=<dtnic binary> -DOUT_DIR=<scratch dir>")
endif()
if(NOT DEFINED PORT_A)
  set(PORT_A 47611)
endif()
if(NOT DEFINED PORT_B)
  set(PORT_B 47612)
endif()

file(MAKE_DIRECTORY "${OUT_DIR}")
set(_pool "news,weather,sports,music")

execute_process(
  COMMAND "${DTNIC}"
          --node=1 --listen=${PORT_A} --peers=2=127.0.0.1:${PORT_B}
          --keywords=${_pool} --publish=news,weather --publish-size=8192
          --duration-s=5 --seed=1
          --trace-out=${OUT_DIR}/live_a.trace.jsonl
          --metrics-out=${OUT_DIR}/live_a.metrics --replay-check=1
  COMMAND "${DTNIC}"
          --node=2 --listen=${PORT_B} --peers=1=127.0.0.1:${PORT_A}
          --keywords=${_pool} --subscribe=news
          --duration-s=5 --seed=2
          --trace-out=${OUT_DIR}/live_b.trace.jsonl
          --metrics-out=${OUT_DIR}/live_b.metrics --replay-check=1
  OUTPUT_VARIABLE _stdout
  ERROR_VARIABLE _stderr
  RESULTS_VARIABLE _results
  TIMEOUT 60)

foreach(_code IN LISTS _results)
  if(NOT _code EQUAL 0)
    message(FATAL_ERROR "a dtnic daemon failed (exit codes: ${_results})\n"
                        "stdout:\n${_stdout}\nstderr:\n${_stderr}")
  endif()
endforeach()

# The pipeline's captured stdout is node B's (node A's went into the pipe);
# B prints replay_check=ok only after validating its own trace.
if(NOT _stdout MATCHES "replay_check=ok")
  message(FATAL_ERROR "node B replay-check did not pass\nstdout:\n${_stdout}")
endif()

function(require_metric file key expected)
  file(READ "${file}" _contents)
  if(NOT _contents MATCHES "${key}=${expected}\n")
    message(FATAL_ERROR "${file}: want ${key}=${expected}, got:\n${_contents}")
  endif()
endfunction()

# Publisher: one message created, one transfer started. (No links_up check:
# whichever daemon's 5 s elapse first sends BYE, so the slower-started one
# correctly reports its link already down at exit.)
require_metric("${OUT_DIR}/live_a.metrics" "created" "1")
require_metric("${OUT_DIR}/live_a.metrics" "traffic" "1")
require_metric("${OUT_DIR}/live_a.metrics" "rejected_frames" "0")

# Subscriber: exactly one end-to-end delivery, tokens settled.
require_metric("${OUT_DIR}/live_b.metrics" "delivered_unique" "1")
require_metric("${OUT_DIR}/live_b.metrics" "rejected_frames" "0")
file(READ "${OUT_DIR}/live_b.metrics" _b)
if(_b MATCHES "tokens_paid=0\n")
  message(FATAL_ERROR "subscriber delivered but paid no tokens:\n${_b}")
endif()

message(STATUS "live smoke ok: delivery + settlement + replay-check on both daemons")
