#pragma once

#include "routing/chitchat/interest_table.h"
#include "routing/router.h"

/// \file chitchat_router.h
/// ChitChat routing (McGeehan, Lin & Madria, ICDCS 2016), the substrate the
/// paper's incentive scheme is built on. Per contact:
///   1. both sides decay their interest weights (Algorithm 1),
///   2. the decayed tables are exchanged,
///   3. both sides grow from the peer's table (Algorithm 2),
///   4. message routing: a message is handed to the peer as a *destination*
///      when the peer holds a direct interest in one of its keywords, and as
///      a *relay* when the peer's summed interest weight for the message
///      exceeds the sender's (S_v > S_u).

namespace dtnic::routing {

class ChitChatRouter : public Router {
 public:
  ChitChatRouter(const DestinationOracle& oracle, const chitchat::ChitChatParams& params,
                 util::SimTime contact_quantum);

  /// Seed the user's direct interests (subscription keywords).
  void set_direct_interests(const std::vector<msg::KeywordId>& interests, util::SimTime now);

  [[nodiscard]] chitchat::InterestTable& interests() { return table_; }
  [[nodiscard]] const chitchat::InterestTable& interests() const { return table_; }

  /// The ChitChatRouter attached to a host, or nullptr if the host runs a
  /// different (or no) routing scheme.
  [[nodiscard]] static ChitChatRouter* of(Host& host);

  void pre_exchange(Host& self, util::SimTime now,
                    std::span<Host* const> neighbors) override;
  void on_link_up(Host& self, Host& peer, util::SimTime now, double distance_m) override;
  [[nodiscard]] std::vector<ForwardPlan> plan(Host& self, Host& peer,
                                              util::SimTime now) override;

  /// Sum of this node's interest weights over the message's keywords (S_u).
  [[nodiscard]] double message_strength(const msg::Message& m) const;

 protected:
  chitchat::ChitChatParams params_;
  chitchat::InterestTable table_;
  util::SimTime contact_quantum_;
};

}  // namespace dtnic::routing
