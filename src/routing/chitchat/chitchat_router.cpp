#include "routing/chitchat/chitchat_router.h"

namespace dtnic::routing {

ChitChatRouter::ChitChatRouter(const DestinationOracle& oracle,
                               const chitchat::ChitChatParams& params,
                               util::SimTime contact_quantum)
    : ChitChatRouter(oracle, params, contact_quantum, RouterKind::kChitChat) {}

ChitChatRouter::ChitChatRouter(const DestinationOracle& oracle,
                               const chitchat::ChitChatParams& params,
                               util::SimTime contact_quantum, RouterKind kind)
    : Router(oracle, kind), params_(params), table_(params), contact_quantum_(contact_quantum) {}

void ChitChatRouter::set_direct_interests(const std::vector<msg::KeywordId>& interests,
                                          util::SimTime now) {
  for (msg::KeywordId k : interests) table_.add_direct(k, now);
}

ChitChatRouter* ChitChatRouter::of(Host& host) {
  if (!host.has_router()) return nullptr;
  Router& router = host.router();
  if (!is_chitchat_kind(router.kind())) return nullptr;
  return static_cast<ChitChatRouter*>(&router);
}

void ChitChatRouter::pre_exchange(Host& self, util::SimTime now,
                                  std::span<Host* const> neighbors) {
  (void)self;
  // An interest does not decay while some currently connected device shares
  // it (Algorithm 1's "device with I is connected" branch). Resolve each
  // neighbor's table once, not once per slot.
  neighbor_tables_.clear();
  for (Host* neighbor : neighbors) {
    if (const ChitChatRouter* other = ChitChatRouter::of(*neighbor); other != nullptr) {
      neighbor_tables_.push_back(&other->table_);
    }
  }
  table_.decay_against(now, neighbor_tables_);
}

void ChitChatRouter::on_link_up(Host& self, Host& peer, util::SimTime now, double distance_m) {
  (void)self; (void)distance_m;
  ChitChatRouter* other = ChitChatRouter::of(peer);
  if (other == nullptr) return;
  table_.grow_from(other->table_, now, contact_quantum_.sec());
  // Refresh last-seen for every interest the peer shares; note_seen is
  // order-independent, so the peer's slots are visited directly instead of
  // materializing a sorted entries() snapshot.
  other->table_.for_each([this, now](msg::KeywordId k, double, bool) {
    table_.note_seen(k, now);
  });
}

double ChitChatRouter::message_strength(const msg::Message& m) const {
  const std::uint64_t generation = table_.generation();
  if (strength_cache_.size() >= kStrengthCacheCap) {
    // Drop stale-generation entries; they would be recomputed on touch
    // anyway. (Current-generation entries survive, keeping an active
    // plan/promise round warm.)
    for (auto it = strength_cache_.begin(); it != strength_cache_.end();) {
      if (it->second.generation != generation) {
        it = strength_cache_.erase(it);
      } else {
        ++it;
      }
    }
    if (strength_cache_.size() >= kStrengthCacheCap) strength_cache_.clear();
  }
  auto [it, inserted] = strength_cache_.try_emplace(m.id());
  StrengthEntry& entry = it->second;
  if (inserted || entry.stamp != m.keyword_stamp() || entry.generation != generation) {
    entry.stamp = m.keyword_stamp();
    entry.generation = generation;
    entry.strength = table_.sum_weights(m.keywords());
  }
  return entry.strength;
}

std::vector<ForwardPlan> ChitChatRouter::plan(Host& self, Host& peer, util::SimTime now) {
  std::vector<ForwardPlan> plans;
  plan_into(self, peer, now, plans);
  return plans;
}

void ChitChatRouter::plan_into(Host& self, Host& peer, util::SimTime now,
                               std::vector<ForwardPlan>& out) {
  plan_for_peer(self, peer, now, out);
}

void ChitChatRouter::plan_for_peer(Host& self, const Peer& peer, util::SimTime now,
                                   std::vector<ForwardPlan>& out) {
  (void)now;
  out.clear();
  out.reserve(self.buffer().size());
  // Peer::message_strength of an in-process Host is the peer router's
  // memoized Σw, so this plan is bit-identical to the pre-seam direct
  // ChitChatRouter::of(peer) queries.
  const bool peer_runs_chitchat = peer.interest_table() != nullptr;
  self.buffer().for_each([&](const msg::Message& m) {
    if (peer.has_seen(m.id())) return;
    if (oracle().is_destination(peer.id(), m)) {
      out.push_back(ForwardPlan{m.id(), TransferRole::kDestination});
      return;
    }
    if (!peer_runs_chitchat) return;
    const double s_u = message_strength(m);
    const double s_v = peer.message_strength(m);
    if (s_v > s_u + params_.forward_margin) {
      out.push_back(ForwardPlan{m.id(), TransferRole::kRelay});
    }
  });
}

}  // namespace dtnic::routing
