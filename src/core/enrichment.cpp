#include "core/enrichment.h"

#include <algorithm>

namespace dtnic::core {

int Enricher::enrich_honest(msg::Message& m, util::NodeId annotator, int max_tags,
                            util::Rng& rng) const {
  // Candidate tags: latent true keywords the message is not yet tagged with.
  std::vector<msg::KeywordId> candidates;
  for (msg::KeywordId k : m.true_keywords()) {
    if (!m.has_keyword(k)) candidates.push_back(k);
  }
  if (candidates.empty() || max_tags <= 0) return 0;
  rng.shuffle(candidates);
  const int n = std::min<int>(max_tags, static_cast<int>(candidates.size()));
  int added = 0;
  for (int i = 0; i < n; ++i) {
    if (m.annotate(msg::Annotation{candidates[i], annotator, /*truthful=*/true})) ++added;
  }
  return added;
}

int Enricher::enrich_malicious(msg::Message& m, util::NodeId annotator, int tags,
                               util::Rng& rng) const {
  if (pool_ == nullptr || pool_->empty() || tags <= 0) return 0;
  int added = 0;
  // Rejection-sample irrelevant keywords from the pool; bounded attempts so
  // a pathological pool (everything truthful) cannot loop forever.
  int attempts = tags * 8;
  while (added < tags && attempts-- > 0) {
    const msg::KeywordId k = (*pool_)[rng.index(pool_->size())];
    if (m.keyword_is_truthful(k) || m.has_keyword(k)) continue;
    if (m.annotate(msg::Annotation{k, annotator, /*truthful=*/false})) ++added;
  }
  return added;
}

int Enricher::enrich(msg::Message& m, util::NodeId annotator, const BehaviorProfile& profile,
                     util::Rng& rng) const {
  if (profile.malicious()) {
    return enrich_malicious(m, annotator, profile.malicious_tags, rng);
  }
  if (profile.enrich_probability > 0.0 && rng.chance(profile.enrich_probability)) {
    return enrich_honest(m, annotator, profile.honest_max_tags, rng);
  }
  return 0;
}

}  // namespace dtnic::core
