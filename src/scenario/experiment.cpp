#include "scenario/experiment.h"

#include "scenario/scenario.h"
#include "util/assert.h"

namespace dtnic::scenario {

ExperimentRunner::ExperimentRunner(std::size_t seeds, std::uint64_t base_seed)
    : seeds_(seeds), base_seed_(base_seed) {
  DTNIC_REQUIRE_MSG(seeds >= 1, "need at least one seed");
}

RunResult ExperimentRunner::run_once(ScenarioConfig config) {
  Scenario scenario(config);
  return scenario.run();
}

AggregateResult ExperimentRunner::run(ScenarioConfig config) const {
  AggregateResult agg;
  agg.scheme = scheme_name(config.scheme);
  for (std::size_t i = 0; i < seeds_; ++i) {
    config.seed = base_seed_ + i;
    RunResult r = run_once(config);
    agg.mdr.add(r.mdr);
    agg.traffic.add(static_cast<double>(r.traffic));
    agg.created.add(static_cast<double>(r.created));
    agg.delivered.add(static_cast<double>(r.delivered));
    agg.mdr_high.add(r.mdr_high);
    agg.mdr_medium.add(r.mdr_medium);
    agg.mdr_low.add(r.mdr_low);
    agg.avg_final_tokens.add(r.avg_final_tokens);
    agg.refused_no_tokens.add(static_cast<double>(r.refused_no_tokens));
    agg.refused_untrusted.add(static_cast<double>(r.refused_untrusted));
    agg.mean_latency_s.add(r.mean_latency_s);
    agg.mean_hops.add(r.mean_hops);
    agg.raw.push_back(std::move(r));
    ++agg.runs;
  }
  return agg;
}

std::vector<std::pair<double, double>> ExperimentRunner::mean_series(
    const std::vector<RunResult>& runs) {
  std::vector<std::pair<double, double>> out;
  if (runs.empty()) return out;
  const auto& reference = runs.front().malicious_rating.samples();
  out.reserve(reference.size());
  for (const stats::Sample& s : reference) {
    double sum = 0.0;
    for (const RunResult& r : runs) {
      sum += r.malicious_rating.value_at(s.time);
    }
    out.emplace_back(s.time.sec(), sum / static_cast<double>(runs.size()));
  }
  return out;
}

}  // namespace dtnic::scenario
