#include "routing/host.h"

#include "routing/router.h"
#include "util/assert.h"

namespace dtnic::routing {

namespace {
/// Shared do-nothing sink so Host::events() never dereferences null.
RoutingEvents g_null_events;
}  // namespace

Host::Host(NodeId id, std::uint64_t buffer_capacity_bytes, msg::DropPolicy drop_policy)
    : Host(id, buffer_capacity_bytes, drop_policy, g_null_events) {}

Host::Host(NodeId id, std::uint64_t buffer_capacity_bytes, msg::DropPolicy drop_policy,
           RoutingEvents& events)
    : id_(id), buffer_(buffer_capacity_bytes, drop_policy), events_(&events) {
  DTNIC_REQUIRE_MSG(id.valid(), "host id must be valid");
}

void Host::set_rank(int rank) {
  DTNIC_REQUIRE_MSG(rank >= 1, "rank 1 is the top of the hierarchy; ranks are >= 1");
  rank_ = rank;
}

void Host::set_router(std::unique_ptr<Router> router) {
  DTNIC_REQUIRE_MSG(router != nullptr, "router must not be null");
  router_ = std::move(router);
  router_->attach(*this);
}

Router& Host::router() {
  DTNIC_REQUIRE_MSG(router_ != nullptr, "host has no router");
  return *router_;
}

}  // namespace dtnic::routing
