#pragma once

#include <memory>
#include <unordered_set>

#include "msg/buffer.h"
#include "net/energy.h"
#include "routing/events.h"
#include "routing/peer.h"
#include "routing/types.h"

/// \file host.h
/// A DTN node: identity, bounded message buffer, battery, user role, and the
/// routing strategy plugged into it. Movement and radio live outside (the
/// scenario wires a MobilityModel and the ConnectivityManager to the host id).
///
/// Host is the in-process implementation of the transport-neutral Peer
/// interface (see peer.h): exchange-phase code that interrogates a contacted
/// device goes through Peer, so the identical planning/admission logic also
/// runs against a live::RemotePeer reconstructed from wire digests. The
/// overrides are final, so calls through a concrete Host& devirtualize.

namespace dtnic::routing {

class Router;

class Host final : public Peer {
 public:
  Host(NodeId id, std::uint64_t buffer_capacity_bytes,
       msg::DropPolicy drop_policy = msg::DropPolicy::kFifoOldest);
  /// Bind the event sink for the host's lifetime. The scenario passes its
  /// obs::EventFanout here (as the RoutingEvents base), so any number of
  /// observers can register on the fan-out without the host knowing;
  /// \p events must outlive the host.
  Host(NodeId id, std::uint64_t buffer_capacity_bytes, msg::DropPolicy drop_policy,
       RoutingEvents& events);
  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  [[nodiscard]] NodeId id() const final { return id_; }

  [[nodiscard]] msg::MessageBuffer& buffer() { return buffer_; }
  [[nodiscard]] const msg::MessageBuffer& buffer() const { return buffer_; }

  [[nodiscard]] net::Battery& battery() { return battery_; }
  [[nodiscard]] const net::Battery& battery() const { return battery_; }

  /// User role R_u in the incentive formula: 1 is the top of the hierarchy
  /// (e.g. sergeant), larger is lower (paper §3.2 software factors).
  [[nodiscard]] int rank() const final { return rank_; }
  void set_rank(int rank);

  void set_router(std::unique_ptr<Router> router);
  [[nodiscard]] Router& router();
  [[nodiscard]] bool has_router() const { return router_ != nullptr; }

  /// Every message id this node has ever carried (as source, relay, or
  /// destination). Used for duplicate suppression so a message evicted from
  /// the buffer is not re-accepted — and, for destinations, so the incentive
  /// award is paid exactly once (the paper's first-deliverer rule is
  /// enforced at the receiving side).
  [[nodiscard]] bool has_seen(MessageId id) const final { return seen_.count(id) > 0; }
  void mark_seen(MessageId id) { seen_.insert(id); }

  /// --- Peer (transport-neutral view of this node as a contact) ------------
  /// The attached ChitChat-family router's interest table (nullptr for other
  /// schemes), and its memoized Σw strength — so planning against a Host
  /// through the Peer interface is bit-identical to the direct router calls
  /// it replaces.
  [[nodiscard]] const chitchat::InterestTable* interest_table() const final;
  [[nodiscard]] double message_strength(const msg::Message& m) const final;

  /// Event sink bound at construction; never null (defaults to a
  /// process-wide null sink). Observers register on the scenario's
  /// obs::EventFanout rather than swapping this binding.
  [[nodiscard]] RoutingEvents& events() { return *events_; }

 private:
  NodeId id_;
  msg::MessageBuffer buffer_;
  net::Battery battery_;
  int rank_ = 1;
  std::unique_ptr<Router> router_;
  std::unordered_set<MessageId> seen_;
  RoutingEvents* events_;
};

}  // namespace dtnic::routing
