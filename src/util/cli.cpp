#include "util/cli.h"

#include <sstream>
#include <stdexcept>

#include "util/assert.h"
#include "util/string_util.h"

namespace dtnic::util {

void Cli::add_flag(const std::string& name, const std::string& default_value,
                   const std::string& help) {
  DTNIC_REQUIRE_MSG(!flags_.count(name), "duplicate flag: " + name);
  flags_[name] = Flag{default_value, default_value, help, false};
  order_.push_back(name);
}

bool Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return false;
    if (!starts_with(arg, "--")) {
      throw std::invalid_argument("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    std::string name;
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    } else {
      name = arg;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) throw std::invalid_argument("unknown flag: --" + name);
    if (!has_value) {
      // `--flag value` unless the next token is another flag; bare booleans
      // become "true".
      if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    it->second.value = value;
    it->second.set = true;
  }
  return true;
}

std::string Cli::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& name : order_) {
    const Flag& f = flags_.at(name);
    os << "  --" << name << " (default: " << f.default_value << ")\n      " << f.help << "\n";
  }
  return os.str();
}

const std::string& Cli::get(const std::string& name) const {
  auto it = flags_.find(name);
  DTNIC_REQUIRE_MSG(it != flags_.end(), "undeclared flag: " + name);
  return it->second.value;
}

double Cli::get_double(const std::string& name) const { return parse_double(get(name)); }
long long Cli::get_int(const std::string& name) const { return parse_int(get(name)); }
bool Cli::get_bool(const std::string& name) const { return parse_bool(get(name)); }

bool Cli::was_set(const std::string& name) const {
  auto it = flags_.find(name);
  DTNIC_REQUIRE_MSG(it != flags_.end(), "undeclared flag: " + name);
  return it->second.set;
}

}  // namespace dtnic::util
