#include <gtest/gtest.h>

#include "core/incentive.h"
#include "core/token_ledger.h"
#include "net/energy.h"
#include "util/rng.h"

namespace dtnic::core {
namespace {

IncentiveParams params() {
  IncentiveParams p;
  p.max_incentive = 10.0;
  return p;
}

SoftwareFactors base_factors() {
  SoftwareFactors f;
  f.sum_weights_v = 1.0;
  f.max_sum_weights = 2.0;
  f.rank_u = 1;
  f.rank_v = 1;
  f.priority = msg::Priority::kMedium;
  f.size_bytes = 1024;
  f.max_size_bytes = 2048;
  f.quality = 0.5;
  f.max_quality = 1.0;
  return f;
}

// --- software_incentive -----------------------------------------------------------

TEST(SoftwareIncentive, MatchesAlgorithmThree) {
  const auto p = params();
  const auto f = base_factors();
  // P_v = 0.5; I_s = (1/4*(0.5 + 0.5) + 1/2*(0.5/(1*2))) * 10 = (0.25 + 0.125)*10
  EXPECT_NEAR(software_incentive(p, f), 3.75, 1e-12);
}

TEST(SoftwareIncentive, SpecialCaseMaxPromise) {
  const auto p = params();
  auto f = base_factors();
  f.sum_weights_v = 0.0;  // P_v = 0
  f.rank_u = 1;           // sergeant
  f.rank_v = 2;           // soldier
  f.priority = msg::Priority::kHigh;
  EXPECT_DOUBLE_EQ(software_incentive(p, f), 10.0);
}

TEST(SoftwareIncentive, NoSpecialCaseWithoutHighPriority) {
  const auto p = params();
  auto f = base_factors();
  f.sum_weights_v = 0.0;
  f.rank_u = 1;
  f.rank_v = 2;
  f.priority = msg::Priority::kMedium;
  EXPECT_DOUBLE_EQ(software_incentive(p, f), 0.0);
}

TEST(SoftwareIncentive, NoSpecialCaseWhenSenderIsLowerRank) {
  const auto p = params();
  auto f = base_factors();
  f.sum_weights_v = 0.0;
  f.rank_u = 2;  // soldier sending to sergeant
  f.rank_v = 1;
  f.priority = msg::Priority::kHigh;
  EXPECT_DOUBLE_EQ(software_incentive(p, f), 0.0);
}

TEST(SoftwareIncentive, HigherPriorityPromisesMore) {
  const auto p = params();
  auto f = base_factors();
  f.priority = msg::Priority::kHigh;
  const double high = software_incentive(p, f);
  f.priority = msg::Priority::kLow;
  const double low = software_incentive(p, f);
  EXPECT_GT(high, low);
}

TEST(SoftwareIncentive, LargerAndBetterMessagesPromiseMore) {
  const auto p = params();
  auto f = base_factors();
  const double base = software_incentive(p, f);
  f.size_bytes = f.max_size_bytes;
  EXPECT_GT(software_incentive(p, f), base);
  f = base_factors();
  f.quality = 1.0;
  EXPECT_GT(software_incentive(p, f), base);
}

TEST(SoftwareIncentive, BestReceiverGetsMaxDeliveryTerm) {
  const auto p = params();
  auto f = base_factors();
  f.sum_weights_v = f.max_sum_weights;  // P_v = 1
  const double best = software_incentive(p, f);
  f.sum_weights_v = f.max_sum_weights / 4.0;
  EXPECT_GT(best, software_incentive(p, f));
}

TEST(SoftwareIncentive, NeverExceedsMax) {
  const auto p = params();
  auto f = base_factors();
  f.sum_weights_v = 5.0;
  f.max_sum_weights = 5.0;
  f.size_bytes = f.max_size_bytes;
  f.quality = f.max_quality;
  f.priority = msg::Priority::kHigh;
  EXPECT_LE(software_incentive(p, f), p.max_incentive);
  EXPECT_GE(software_incentive(p, f), 0.0);
}

TEST(SoftwareIncentive, InvalidFactorsRejected) {
  const auto p = params();
  auto f = base_factors();
  f.rank_u = 0;
  EXPECT_THROW((void)software_incentive(p, f), std::invalid_argument);
  f = base_factors();
  f.max_size_bytes = 0;
  EXPECT_THROW((void)software_incentive(p, f), std::invalid_argument);
  f = base_factors();
  f.sum_weights_v = -1.0;
  EXPECT_THROW((void)software_incentive(p, f), std::invalid_argument);
}

/// Property sweep: I_s in [0, I_m] across the whole input space.
class SoftwareIncentiveSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SoftwareIncentiveSweep, AlwaysWithinBounds) {
  util::Rng rng(GetParam());
  const auto p = params();
  for (int i = 0; i < 2000; ++i) {
    SoftwareFactors f;
    f.sum_weights_v = rng.uniform(0.0, 20.0);
    f.max_sum_weights = rng.uniform(0.0, 20.0);
    f.rank_u = static_cast<int>(rng.range(1, 4));
    f.rank_v = static_cast<int>(rng.range(1, 4));
    f.priority = static_cast<msg::Priority>(rng.range(1, 3));
    f.size_bytes = static_cast<std::uint64_t>(rng.range(1, 1 << 20));
    f.max_size_bytes = static_cast<std::uint64_t>(rng.range(1, 1 << 20));
    f.quality = rng.uniform(0.0, 1.0);
    f.max_quality = rng.uniform(0.01, 1.0);
    const double i_s = software_incentive(p, f);
    ASSERT_GE(i_s, 0.0);
    ASSERT_LE(i_s, p.max_incentive);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoftwareIncentiveSweep, ::testing::Values(1, 2, 3, 4));

// --- hardware_incentive --------------------------------------------------------------

TEST(HardwareIncentive, SourcePaysOnlyTxPower) {
  const auto p = params();
  net::RadioParams radio;
  radio.tx_power_w = 0.1;
  const double i_h =
      hardware_incentive(p, radio, /*sender_is_source=*/true, 50.0, util::SimTime::seconds(4));
  EXPECT_DOUBLE_EQ(i_h, 0.1 * 4.0);  // c * P_t * t with c = 1
}

TEST(HardwareIncentive, RelayAddsFriisReceivedPower) {
  const auto p = params();
  net::RadioParams radio;
  const double src = hardware_incentive(p, radio, true, 50.0, util::SimTime::seconds(4));
  const double relay = hardware_incentive(p, radio, false, 50.0, util::SimTime::seconds(4));
  EXPECT_GT(relay, src);
  const double pr = net::FriisModel::received_power(radio.tx_power_w, 50.0, radio.wavelength_m);
  EXPECT_NEAR(relay - src, pr * 4.0, 1e-15);
}

TEST(HardwareIncentive, ScalesWithDuration) {
  const auto p = params();
  net::RadioParams radio;
  const double short_t = hardware_incentive(p, radio, true, 50.0, util::SimTime::seconds(1));
  const double long_t = hardware_incentive(p, radio, true, 50.0, util::SimTime::seconds(10));
  EXPECT_NEAR(long_t / short_t, 10.0, 1e-9);
}

// --- total_promise & tag_reward ---------------------------------------------------------

TEST(TotalPromise, CapsAtMaxIncentive) {
  const auto p = params();
  EXPECT_DOUBLE_EQ(total_promise(p, 6.0, 3.0), 9.0);
  EXPECT_DOUBLE_EQ(total_promise(p, 8.0, 5.0), 10.0);
  EXPECT_THROW((void)total_promise(p, -1.0, 0.0), std::invalid_argument);
}

TEST(TagReward, PerTagTimesZCappedAtIc) {
  auto p = params();
  p.tag_reward_z = 0.1;   // 1 token per tag
  p.tag_reward_cap = 2.0;
  EXPECT_DOUBLE_EQ(tag_reward(p, 0), 0.0);
  EXPECT_DOUBLE_EQ(tag_reward(p, 1), 1.0);
  EXPECT_DOUBLE_EQ(tag_reward(p, 2), 2.0);
  EXPECT_DOUBLE_EQ(tag_reward(p, 5), 2.0);  // capped
  EXPECT_THROW((void)tag_reward(p, -1), std::invalid_argument);
}

// --- TokenLedger -------------------------------------------------------------------------

TEST(TokenLedger, InitialBalance) {
  TokenLedger ledger(200.0);
  EXPECT_DOUBLE_EQ(ledger.balance(), 200.0);
  EXPECT_TRUE(ledger.can_pay(200.0));
  EXPECT_FALSE(ledger.can_pay(200.01));
  EXPECT_THROW(TokenLedger(-1.0), std::invalid_argument);
}

TEST(TokenLedger, PayMovesTokens) {
  TokenLedger a(100.0);
  TokenLedger b(50.0);
  const double paid = a.pay(b, 30.0);
  EXPECT_DOUBLE_EQ(paid, 30.0);
  EXPECT_DOUBLE_EQ(a.balance(), 70.0);
  EXPECT_DOUBLE_EQ(b.balance(), 80.0);
  EXPECT_DOUBLE_EQ(a.total_spent(), 30.0);
  EXPECT_DOUBLE_EQ(b.total_earned(), 30.0);
}

TEST(TokenLedger, PayClampsToBalance) {
  TokenLedger a(10.0);
  TokenLedger b(0.0);
  const double paid = a.pay(b, 25.0);
  EXPECT_DOUBLE_EQ(paid, 10.0);
  EXPECT_DOUBLE_EQ(a.balance(), 0.0);
  EXPECT_DOUBLE_EQ(b.balance(), 10.0);
}

TEST(TokenLedger, InvalidPaymentsRejected) {
  TokenLedger a(10.0);
  TokenLedger b(0.0);
  EXPECT_THROW((void)a.pay(b, -1.0), std::invalid_argument);
  EXPECT_THROW((void)a.pay(a, 1.0), std::invalid_argument);
}

/// Property: arbitrary payment sequences conserve the total.
class LedgerConservationSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LedgerConservationSweep, TotalInvariant) {
  util::Rng rng(GetParam());
  std::vector<TokenLedger> ledgers;
  double total = 0.0;
  for (int i = 0; i < 8; ++i) {
    const double init = rng.uniform(0.0, 300.0);
    ledgers.emplace_back(init);
    total += init;
  }
  for (int step = 0; step < 5000; ++step) {
    const std::size_t payer = rng.index(ledgers.size());
    std::size_t payee = rng.index(ledgers.size());
    if (payee == payer) payee = (payee + 1) % ledgers.size();
    (void)ledgers[payer].pay(ledgers[payee], rng.uniform(0.0, 50.0));
    ASSERT_GE(ledgers[payer].balance(), 0.0);
  }
  double after = 0.0;
  for (const auto& l : ledgers) after += l.balance();
  EXPECT_NEAR(after, total, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LedgerConservationSweep, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace dtnic::core
