#include "obs/trace_sink.h"

#include <bit>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "util/num_format.h"

namespace dtnic::obs {

namespace {

[[nodiscard]] constexpr std::size_t type_index(TraceEvent e) {
  return static_cast<std::size_t>(std::countr_zero(static_cast<std::uint32_t>(e)));
}

}  // namespace

TraceSink::TraceSink(std::ostream& os, TraceOptions options)
    : os_(&os), opt_(std::move(options)) {
  if (opt_.sample_every == 0) opt_.sample_every = 1;
  buf_.reserve(256);
  write_header();
}

TraceSink::TraceSink(std::unique_ptr<std::ostream> os, TraceOptions options)
    : owned_(std::move(os)), os_(owned_.get()), opt_(std::move(options)) {
  if (opt_.sample_every == 0) opt_.sample_every = 1;
  buf_.reserve(256);
  write_header();
}

TraceSink::~TraceSink() { flush(); }

void TraceSink::flush() {
  os_->flush();
  if (!os_->good()) ok_ = false;
}

void TraceSink::write_header() {
  buf_.clear();
  buf_ += "{\"schema\":\"dtnic.trace.v1\",\"seed\":";
  util::append_u64(buf_, opt_.seed);
  buf_ += ",\"scheme\":\"";
  buf_ += opt_.scheme;
  buf_ += "\",\"sample_every\":";
  util::append_u64(buf_, opt_.sample_every);
  commit();
}

bool TraceSink::take(TraceEvent e) {
  if ((opt_.events & trace_bit(e)) == 0) return false;
  const std::uint32_t n = seen_of_type_[type_index(e)]++;
  return n % opt_.sample_every == 0;
}

void TraceSink::begin(const char* name) {
  buf_.clear();
  buf_ += "{\"t\":";
  util::append_double(buf_, opt_.clock ? opt_.clock().sec() : 0.0);
  buf_ += ",\"ev\":\"";
  buf_ += name;
  buf_ += '"';
}

void TraceSink::commit() {
  buf_ += "}\n";
  os_->write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
  if (!os_->good()) ok_ = false;  // latch: a truncated trace is never "ok"
  ++records_;
}

void TraceSink::key_num(const char* key, double v) {
  buf_ += ",\"";
  buf_ += key;
  buf_ += "\":";
  util::append_double(buf_, v);
}

void TraceSink::key_u64(const char* key, std::uint64_t v) {
  buf_ += ",\"";
  buf_ += key;
  buf_ += "\":";
  util::append_u64(buf_, v);
}

void TraceSink::key_str(const char* key, const char* v) {
  buf_ += ",\"";
  buf_ += key;
  buf_ += "\":\"";
  buf_ += v;
  buf_ += '"';
}

void TraceSink::on_created(const msg::Message& m) {
  if (!take(TraceEvent::kCreated)) return;
  begin("created");
  key_u64("msg", m.id().value());
  key_u64("node", m.source().value());
  key_u64("prio", static_cast<std::uint64_t>(msg::priority_level(m.priority())));
  key_u64("size", m.size_bytes());
  key_num("quality", m.quality());
  key_u64("kw", m.keywords().size());
  commit();
}

void TraceSink::on_transfer_started(routing::NodeId from, routing::NodeId to,
                                    const msg::Message& m, routing::TransferRole role) {
  if (!take(TraceEvent::kTransfer)) return;
  begin("transfer");
  key_u64("from", from.value());
  key_u64("to", to.value());
  key_u64("msg", m.id().value());
  key_str("role", routing::role_name(role));
  commit();
}

void TraceSink::on_relayed(routing::NodeId from, routing::NodeId to, const msg::Message& m) {
  if (!take(TraceEvent::kRelayed)) return;
  begin("relayed");
  key_u64("from", from.value());
  key_u64("to", to.value());
  key_u64("msg", m.id().value());
  commit();
}

void TraceSink::on_delivered(routing::NodeId from, routing::NodeId to,
                             const msg::Message& m) {
  if (!take(TraceEvent::kDelivered)) return;
  begin("delivered");
  key_u64("from", from.value());
  key_u64("to", to.value());
  key_u64("msg", m.id().value());
  // The delivered record is self-contained for MetricsCollector replay:
  // priority, hop count and latency travel with it, so replay needs no
  // cross-record message state.
  key_u64("prio", static_cast<std::uint64_t>(msg::priority_level(m.priority())));
  key_u64("hops", m.path().empty() ? 0 : m.relay_hop_count());
  key_num("latency_s",
          m.path().empty() ? 0.0 : (m.path().back().received_at - m.created_at()).sec());
  commit();
}

void TraceSink::on_refused(routing::NodeId from, routing::NodeId to, const msg::Message& m,
                           routing::AcceptDecision why) {
  if (!take(TraceEvent::kRefused)) return;
  begin("refused");
  key_u64("from", from.value());
  key_u64("to", to.value());
  key_u64("msg", m.id().value());
  key_str("why", routing::accept_name(why));
  commit();
}

void TraceSink::on_aborted(routing::NodeId from, routing::NodeId to, routing::MessageId m) {
  if (!take(TraceEvent::kAborted)) return;
  begin("aborted");
  key_u64("from", from.value());
  key_u64("to", to.value());
  key_u64("msg", m.value());
  commit();
}

void TraceSink::on_dropped(routing::NodeId at, const msg::Message& m,
                           routing::DropReason why) {
  if (!take(TraceEvent::kDropped)) return;
  begin("dropped");
  key_u64("node", at.value());
  key_u64("msg", m.id().value());
  key_str("why", routing::drop_name(why));
  commit();
}

void TraceSink::on_tokens_paid(routing::NodeId payer, routing::NodeId payee, double amount) {
  if (!take(TraceEvent::kTokens)) return;
  begin("tokens");
  key_u64("from", payer.value());
  key_u64("to", payee.value());
  key_num("amount", amount);
  commit();
}

void TraceSink::on_reputation_updated(routing::NodeId rater, routing::NodeId rated,
                                      double rating) {
  if (!take(TraceEvent::kReputation)) return;
  begin("reputation");
  key_u64("node", rater.value());
  key_u64("about", rated.value());
  key_num("rating", rating);
  commit();
}

void TraceSink::on_enriched(routing::NodeId at, const msg::Message& m, int tags_added) {
  if (!take(TraceEvent::kEnriched)) return;
  begin("enriched");
  key_u64("node", at.value());
  key_u64("msg", m.id().value());
  key_u64("tags", static_cast<std::uint64_t>(tags_added));
  commit();
}

std::unique_ptr<TraceSink> open_trace_file(const std::string& path, TraceOptions options) {
  auto os = std::make_unique<std::ofstream>(path);
  if (!*os) throw std::runtime_error("cannot open trace output file: " + path);
  return std::make_unique<TraceSink>(std::move(os), std::move(options));
}

}  // namespace dtnic::obs
