#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "net/contact_trace.h"
#include "scenario/result.h"
#include "stats/time_series.h"
#include "util/table.h"

/// \file report.h
/// Renderings of run results: the per-run report, side-by-side scheme
/// comparisons, time-series export, and contact dynamics summaries (used to
/// sanity-check the mobility substrate against ONE-like contact statistics).
///
/// All renderings go through one Reporter bound to an output stream and a
/// format. Table output is the historical human-readable form; CSV and JSON
/// use util::num_format (std::to_chars) so every number round-trips to the
/// exact double that produced it.

namespace dtnic::scenario {

enum class ReportFormat {
  kTable,  ///< aligned pipe-separated text (human-readable, historical form)
  kCsv,    ///< RFC-4180-ish CSV
  kJson,   ///< one JSON object per report, schema "dtnic.report.v1"
};

/// Contact dynamics summary of a finalized trace.
struct ContactSummary {
  std::size_t contacts = 0;
  double mean_duration_s = 0.0;
  double median_duration_s = 0.0;
  double mean_intercontact_s = 0.0;  ///< mean gap between consecutive contacts
                                     ///< of the same pair (0 if no repeats)
  double total_contact_time_s = 0.0;
};

/// One sink for every report rendering. Bind it to a stream once and emit
/// any mix of sections; the format applies to all of them.
class Reporter {
 public:
  explicit Reporter(std::ostream& os, ReportFormat format = ReportFormat::kTable)
      : os_(os), fmt_(format) {}

  /// Full single-run report.
  void run_report(const RunResult& result);

  /// Per-phase wall-clock breakdown of one run (ScopedTimer accounting).
  /// Phases are exclusive, so rows sum to at most the wall row; the
  /// remainder is event-loop and mobility overhead outside the instrumented
  /// phases.
  void timing_report(const PhaseTimings& timing);

  /// Time series; CSV emits `time_s,<value_name>` rows with a header.
  void series(const stats::TimeSeries& series, const std::string& value_name);

  /// Contact dynamics summary.
  void contact_summary(const ContactSummary& summary);

  /// One row per result, for side-by-side scheme or sweep comparisons.
  void comparison(const std::vector<RunResult>& results);

  [[nodiscard]] ReportFormat format() const { return fmt_; }

  /// Flush and report whether every section so far reached the stream. A
  /// false return means the report file is truncated (disk full, broken
  /// pipe) and must not be treated as a complete artifact.
  [[nodiscard]] bool flush_ok() {
    os_.flush();
    return os_.good();
  }

 private:
  /// Table/CSV fallthrough for sections built as a util::Table.
  void emit_table(const util::Table& table);

  std::ostream& os_;
  ReportFormat fmt_;
};

// --- historical free functions (thin Reporter wrappers) ---------------------

/// Full single-run report as an aligned table.
void write_run_report(std::ostream& os, const RunResult& result);

/// Per-phase wall-clock breakdown of one run, as an aligned table.
void write_timing_report(std::ostream& os, const PhaseTimings& timing);

/// One row per result, for side-by-side scheme or sweep comparisons.
[[nodiscard]] util::Table comparison_table(const std::vector<RunResult>& results);

/// Time series as CSV: `time_s,value` rows with a header.
void write_series_csv(std::ostream& os, const stats::TimeSeries& series,
                      const std::string& value_name);

[[nodiscard]] ContactSummary summarize_contacts(const net::ContactTrace& trace);

void write_contact_summary(std::ostream& os, const ContactSummary& summary);

}  // namespace dtnic::scenario
