#pragma once

#include "util/ids.h"

/// \file types.h
/// Shared vocabulary of the routing layer.

namespace dtnic::routing {

using util::MessageId;
using util::NodeId;

/// Why a message copy is being sent to a peer.
enum class TransferRole {
  kDestination,  ///< the peer has a direct interest in the message
  kRelay,        ///< the peer carries the copy onward
};

[[nodiscard]] constexpr const char* role_name(TransferRole r) {
  return r == TransferRole::kDestination ? "destination" : "relay";
}

/// One planned transfer, in the order the router wants them attempted.
/// The incentive scheme annotates the offer with the token economics so the
/// peer's admission control can check affordability before the transfer.
struct ForwardPlan {
  MessageId message;
  TransferRole role = TransferRole::kRelay;
  /// Incentive tokens promised to the receiver on eventual delivery (I of
  /// §3.2); 0 for schemes without incentives.
  double promise = 0.0;
  /// Tokens the receiver pre-pays the sender when its delivery chance for
  /// the message exceeds the relay threshold (Table 5.1); 0 otherwise.
  double prepay = 0.0;
};

/// Peer-side admission decision for an offered message.
enum class AcceptDecision {
  kAccept,
  kDuplicate,        ///< already carried or previously received
  kNoTokens,         ///< incentive scheme: receiver cannot pay (Paper II §3.3)
  kUntrustedSender,  ///< DRM: sender reputation below threshold
  kRefused,          ///< any other router-specific refusal
};

[[nodiscard]] constexpr const char* accept_name(AcceptDecision d) {
  switch (d) {
    case AcceptDecision::kAccept: return "accept";
    case AcceptDecision::kDuplicate: return "duplicate";
    case AcceptDecision::kNoTokens: return "no-tokens";
    case AcceptDecision::kUntrustedSender: return "untrusted-sender";
    case AcceptDecision::kRefused: return "refused";
  }
  return "?";
}

/// Why a buffered message was discarded.
enum class DropReason {
  kBufferFull,
  kTtlExpired,
};

[[nodiscard]] constexpr const char* drop_name(DropReason r) {
  return r == DropReason::kBufferFull ? "buffer-full" : "ttl-expired";
}

}  // namespace dtnic::routing
