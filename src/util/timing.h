#pragma once

#include <chrono>
#include <cstdint>

/// \file timing.h
/// Lightweight wall-clock phase accounting for the simulation hot paths.
/// A ScopedTimer adds the nanoseconds its scope took to a caller-owned
/// counter. Timers nest *exclusively*: while an inner timer is live its
/// elapsed time is subtracted from the enclosing timer's contribution, so a
/// set of phase counters partitions the run instead of double-counting
/// nested phases (e.g. routing callbacks fired from inside a contact scan).

namespace dtnic::util {

class ScopedTimer {
 public:
  explicit ScopedTimer(std::uint64_t& accumulator_ns) noexcept;
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  using Clock = std::chrono::steady_clock;

  std::uint64_t& acc_;
  ScopedTimer* parent_;           ///< enclosing timer on this thread, if any
  std::uint64_t excluded_ns_ = 0; ///< time claimed by nested timers
  Clock::time_point start_;

  static thread_local ScopedTimer* current_;
};

}  // namespace dtnic::util
