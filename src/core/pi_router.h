#pragma once

#include <unordered_map>

#include "core/incentive_router.h"

/// \file pi_router.h
/// A PI-style *source-pays* incentive scheme (Lu et al., "Pi: A practical
/// incentive protocol for delay tolerant networks", surveyed in the thesis
/// §2.1), built on the same ChitChat substrate so the two incentive designs
/// are directly comparable:
///
///   * the SOURCE attaches an incentive escrow to each bundle it creates
///     (tokens move from its ledger into a network-wide escrow bank — the
///     paper's Trusted Authority clearing role);
///   * on the FIRST delivery, the escrow is cleared: half goes to the
///     deliverer, the rest is split equally among the earlier relays on the
///     winning path (PI's layered-credit idea, simplified);
///   * destinations pay nothing — receiving is free.
///
/// The design contrast with the thesis' destination-pays scheme: under PI,
/// selfish nodes can free-ride as destinations forever (no token starvation
/// ever bars them), while sources bear the cost of their own traffic. The
/// `ablation_incentive_design` bench measures exactly this difference.

namespace dtnic::core {

/// Network-wide escrow ledger, shared by all PiRouters of a run (the TA).
class PiEscrowBank {
 public:
  /// Deposit escrow for a message; called once by the source.
  void deposit(msg::MessageId id, double amount);
  /// Withdraw the full escrow (0 if none / already cleared).
  [[nodiscard]] double clear(msg::MessageId id);
  [[nodiscard]] double held(msg::MessageId id) const;
  /// Total tokens currently escrowed (conservation checks).
  [[nodiscard]] double total_held() const { return total_; }

 private:
  std::unordered_map<msg::MessageId, double> escrow_;
  double total_ = 0.0;
};

struct PiParams {
  /// Escrow the source attaches per created bundle (clamped to its balance).
  double attachment = 4.0;
  /// Deliverer's share of the cleared escrow; the rest splits across the
  /// path's relays.
  double deliverer_share = 0.5;
};

class PiRouter final : public routing::ChitChatRouter {
 public:
  /// \p bank and \p world are shared across the run; \p world supplies the
  /// initial token allowance and the host lookup used to credit relays.
  PiRouter(const routing::DestinationOracle& oracle,
           const routing::chitchat::ChitChatParams& chitchat, util::SimTime contact_quantum,
           const IncentiveWorld* world, PiEscrowBank* bank, const PiParams& params);

  [[nodiscard]] TokenLedger& ledger() { return ledger_; }
  [[nodiscard]] const TokenLedger& ledger() const { return ledger_; }

  [[nodiscard]] static PiRouter* of(routing::Host& host);

  void on_originated(routing::Host& self, const msg::Message& m, util::SimTime now) override;
  void on_received(routing::Host& self, routing::Host& from, msg::Message m,
                   const routing::ForwardPlan& plan, util::SimTime now) override;

 private:
  const IncentiveWorld* world_;
  PiEscrowBank* bank_;
  PiParams params_;
  TokenLedger ledger_;
};

}  // namespace dtnic::core
