/// Reproduces Figure 5.2: percentage of traffic reduced by the incentive
/// scheme relative to plain ChitChat, versus the percentage of selfish
/// nodes. Traffic = transfers started (the ONE "relayed" counter). Paper
/// shape: the reduction grows with the selfish fraction, because selfish
/// nodes exhaust their token allowance and are then barred from receiving.

#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace dtnic;
  util::Cli cli;
  cli.add_flag("step", "20", "selfish-percent sweep step (paper uses 10)");
  const bench::BenchScale scale = bench::resolve_scale(cli, argc, argv, argv[0]);
  bench::print_header("Figure 5.2: % traffic reduced over ChitChat", scale);

  const scenario::SweepRunner sweep(scale.seeds);
  const int step = static_cast<int>(cli.get_int("step"));

  std::vector<int> percents;
  std::vector<scenario::ScenarioConfig> points;
  for (int pct = 0; pct <= 100; pct += step) {
    scenario::ScenarioConfig cfg = bench::base_config(scale);
    cfg.selfish_fraction = pct / 100.0;
    cfg.scheme = scenario::Scheme::kIncentive;
    points.push_back(cfg);
    cfg.scheme = scenario::Scheme::kChitChat;
    points.push_back(cfg);
    percents.push_back(pct);
  }
  const auto results = sweep.run_all(points);

  util::Table table({"selfish %", "traffic incentive", "traffic chitchat", "reduced %",
                     "no-token refusals", "untrusted refusals"});
  for (std::size_t i = 0; i < percents.size(); ++i) {
    const int pct = percents[i];
    const auto& incentive = results[2 * i];
    const auto& chitchat = results[2 * i + 1];

    const double t_inc = incentive.traffic.mean();
    const double t_cc = chitchat.traffic.mean();
    const double reduced = t_cc > 0.0 ? (t_cc - t_inc) / t_cc * 100.0 : 0.0;
    table.add_row({std::to_string(pct), util::Table::cell(t_inc, 0),
                   util::Table::cell(t_cc, 0), util::Table::cell(reduced, 2),
                   util::Table::cell(incentive.refused_no_tokens.mean(), 0),
                   util::Table::cell(incentive.refused_untrusted.mean(), 0)});
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: positive reduction, growing with the selfish fraction.\n";
  return 0;
}
