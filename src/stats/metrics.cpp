#include "stats/metrics.h"

namespace dtnic::stats {

void MetricsCollector::on_created(const msg::Message& m) {
  ++created_;
  ++created_by_priority_[bucket(m.priority())];
}

void MetricsCollector::on_transfer_started(routing::NodeId, routing::NodeId,
                                           const msg::Message&, routing::TransferRole) {
  ++transfers_started_;
}

void MetricsCollector::on_relayed(routing::NodeId, routing::NodeId, const msg::Message&) {
  ++relays_;
}

void MetricsCollector::on_delivered(routing::NodeId, routing::NodeId,
                                    const msg::Message& m) {
  ++deliveries_total_;
  const auto [it, first] = delivered_.insert(m.id());
  (void)it;
  if (first) {
    ++delivered_by_priority_[bucket(m.priority())];
    hops_sum_ += static_cast<double>(m.relay_hop_count());
    if (!m.path().empty()) {
      latency_sum_s_ += (m.path().back().received_at - m.created_at()).sec();
    }
  }
}

void MetricsCollector::on_refused(routing::NodeId, routing::NodeId, const msg::Message&,
                                  routing::AcceptDecision why) {
  switch (why) {
    case routing::AcceptDecision::kNoTokens: ++refused_no_tokens_; break;
    case routing::AcceptDecision::kUntrustedSender: ++refused_untrusted_; break;
    case routing::AcceptDecision::kDuplicate: ++refused_duplicate_; break;
    default: ++refused_other_; break;
  }
}

void MetricsCollector::on_aborted(routing::NodeId, routing::NodeId, routing::MessageId) {
  ++aborted_;
}

void MetricsCollector::on_dropped(routing::NodeId, const msg::Message&,
                                  routing::DropReason why) {
  if (why == routing::DropReason::kBufferFull) {
    ++dropped_buffer_;
  } else {
    ++dropped_ttl_;
  }
}

void MetricsCollector::on_tokens_paid(routing::NodeId, routing::NodeId, double amount) {
  tokens_paid_ += amount;
  ++payments_;
}

void MetricsCollector::on_reputation_updated(routing::NodeId, routing::NodeId, double) {
  ++reputation_updates_;
}

void MetricsCollector::on_enriched(routing::NodeId, const msg::Message&, int tags_added) {
  ++enrichments_;
  enrich_tags_ += static_cast<std::uint64_t>(tags_added);
}

double MetricsCollector::mdr() const {
  if (created_ == 0) return 0.0;
  return static_cast<double>(delivered_.size()) / static_cast<double>(created_);
}

double MetricsCollector::mdr_for(msg::Priority p) const {
  const std::size_t c = created_by_priority_[bucket(p)];
  if (c == 0) return 0.0;
  return static_cast<double>(delivered_by_priority_[bucket(p)]) / static_cast<double>(c);
}

std::size_t MetricsCollector::created_for(msg::Priority p) const {
  return created_by_priority_[bucket(p)];
}

std::size_t MetricsCollector::delivered_for(msg::Priority p) const {
  return delivered_by_priority_[bucket(p)];
}

double MetricsCollector::mean_delivery_hops() const {
  if (delivered_.empty()) return 0.0;
  return hops_sum_ / static_cast<double>(delivered_.size());
}

double MetricsCollector::mean_delivery_latency_s() const {
  if (delivered_.empty()) return 0.0;
  return latency_sum_s_ / static_cast<double>(delivered_.size());
}

}  // namespace dtnic::stats
