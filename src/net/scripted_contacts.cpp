#include "net/scripted_contacts.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/assert.h"
#include "util/string_util.h"

namespace dtnic::net {

using util::NodeId;
using util::SimTime;

ScriptedConnectivity::ScriptedConnectivity(sim::Simulator& sim,
                                           std::vector<ContactEvent> events)
    : sim_(sim), events_(std::move(events)) {
  NodeId::underlying max_value = 0;
  bool any = false;
  for (const ContactEvent& e : events_) {
    DTNIC_REQUIRE_MSG(e.a.valid() && e.b.valid(), "contact endpoints must be valid");
    DTNIC_REQUIRE_MSG(e.a != e.b, "a node cannot contact itself");
    DTNIC_REQUIRE_MSG(e.up < e.down, "contact must end after it begins");
    DTNIC_REQUIRE_MSG(e.distance_m >= 0.0, "distance must be non-negative");
    max_value = std::max({max_value, e.a.value(), e.b.value()});
    any = true;
  }
  if (any) max_node_ = NodeId(max_value);
}

std::uint64_t ScriptedConnectivity::pair_key(NodeId a, NodeId b) {
  const auto lo = std::min(a.value(), b.value());
  const auto hi = std::max(a.value(), b.value());
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

void ScriptedConnectivity::start() {
  DTNIC_REQUIRE_MSG(!started_, "already started");
  started_ = true;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    DTNIC_REQUIRE_MSG(events_[i].up >= sim_.now(), "trace event in the past");
    (void)sim_.schedule_at(events_[i].up, [this, i] { begin_contact(i); });
    (void)sim_.schedule_at(events_[i].down, [this, i] { end_contact(i); });
  }
}

void ScriptedConnectivity::begin_contact(std::size_t index) {
  const ContactEvent& e = events_[index];
  const std::uint64_t key = pair_key(e.a, e.b);
  int& count = up_count_[key];
  ++count;
  if (count > 1) return;  // overlapping script entries: already up
  const bool participates = !gate_ || (gate_(e.a) && gate_(e.b));
  if (!participates) {
    suppressed_.insert(key);
    ++contacts_suppressed_;
    return;
  }
  adjacency_[e.a].insert(e.b);
  adjacency_[e.b].insert(e.a);
  ++contacts_formed_;
  if (link_up_) link_up_(e.a, e.b, e.distance_m);
}

void ScriptedConnectivity::end_contact(std::size_t index) {
  const ContactEvent& e = events_[index];
  const std::uint64_t key = pair_key(e.a, e.b);
  auto it = up_count_.find(key);
  DTNIC_ASSERT(it != up_count_.end() && it->second > 0);
  if (--it->second > 0) return;  // another overlapping entry keeps it up
  up_count_.erase(it);
  if (suppressed_.erase(key) > 0) return;  // was gated: nothing to tear down
  adjacency_[e.a].erase(e.b);
  adjacency_[e.b].erase(e.a);
  if (link_down_) link_down_(e.a, e.b);
}

std::vector<NodeId> ScriptedConnectivity::neighbors_of(NodeId id) const {
  auto it = adjacency_.find(id);
  if (it == adjacency_.end()) return {};
  std::vector<NodeId> out(it->second.begin(), it->second.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<NodeId, NodeId>> ScriptedConnectivity::connected_pairs() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  for (const auto& [key, count] : up_count_) {
    if (count <= 0 || suppressed_.count(key)) continue;
    out.emplace_back(NodeId(static_cast<NodeId::underlying>(key >> 32)),
                     NodeId(static_cast<NodeId::underlying>(key & 0xffffffffULL)));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<ContactEvent> ScriptedConnectivity::parse(std::istream& in) {
  std::vector<ContactEvent> events;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    const std::string entry = util::trim(line);
    if (entry.empty()) continue;
    std::istringstream fields(entry);
    double up_s = 0.0;
    double down_s = 0.0;
    long long a = 0;
    long long b = 0;
    if (!(fields >> up_s >> down_s >> a >> b) || a < 0 || b < 0) {
      throw std::invalid_argument("trace line " + std::to_string(line_no) +
                                  ": expected 'up_s down_s node_a node_b [distance_m]'");
    }
    ContactEvent e;
    e.up = SimTime::seconds(up_s);
    e.down = SimTime::seconds(down_s);
    e.a = NodeId(static_cast<NodeId::underlying>(a));
    e.b = NodeId(static_cast<NodeId::underlying>(b));
    double distance = 0.0;
    if (fields >> distance) e.distance_m = distance;
    if (e.up >= e.down) {
      throw std::invalid_argument("trace line " + std::to_string(line_no) +
                                  ": contact must end after it begins");
    }
    events.push_back(e);
  }
  return events;
}

std::vector<ContactEvent> ScriptedConnectivity::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open contact trace: " + path);
  return parse(in);
}

void ScriptedConnectivity::serialize(std::ostream& os,
                                     const std::vector<ContactEvent>& events) {
  os << "# up_s down_s node_a node_b distance_m\n";
  for (const ContactEvent& e : events) {
    os << e.up.sec() << " " << e.down.sec() << " " << e.a.value() << " " << e.b.value()
       << " " << e.distance_m << "\n";
  }
}

std::vector<ContactEvent> ScriptedConnectivity::from_trace(const ContactTrace& trace) {
  std::vector<ContactEvent> events;
  events.reserve(trace.count());
  for (const ContactTrace::Contact& c : trace.contacts()) {
    if (!(c.up < c.down)) continue;  // zero-length contacts are unplayable
    events.push_back(ContactEvent{c.up, c.down, c.a, c.b});
  }
  return events;
}

}  // namespace dtnic::net
