#include "sim/simulator.h"

#include "util/assert.h"

namespace dtnic::sim {

EventId Simulator::schedule_at(util::SimTime t, EventFn fn) {
  DTNIC_REQUIRE_MSG(t >= now_, "cannot schedule into the past");
  return queue_.push(t, std::move(fn));
}

EventId Simulator::schedule_in(util::SimTime dt, EventFn fn) {
  DTNIC_REQUIRE_MSG(dt >= util::SimTime::zero(), "negative delay");
  return schedule_at(now_ + dt, std::move(fn));
}

EventId Simulator::schedule_every(util::SimTime period, std::function<void()> fn) {
  return schedule_every_from(now_ + period, period, std::move(fn));
}

EventId Simulator::schedule_every_from(util::SimTime first, util::SimTime period,
                                       std::function<void()> fn) {
  DTNIC_REQUIRE_MSG(period > util::SimTime::zero(), "period must be positive");
  auto alive = std::make_shared<bool>(true);
  // The tick closure owns the alive flag and re-schedules itself; cancelling
  // flips the flag so the next firing is a no-op and the chain ends. The
  // closure holds itself only weakly — the strong reference lives in the
  // queued event — so an abandoned chain is reclaimed instead of leaking
  // through a shared_ptr cycle.
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [this, alive, period, weak = std::weak_ptr<std::function<void()>>(tick),
           fn = std::move(fn)]() {
    if (!*alive) return;
    fn();
    if (!*alive) return;
    if (auto self = weak.lock()) {
      queue_.push(now_ + period, [self] { (*self)(); });
    }
  };
  const EventId first_id = queue_.push(first, [tick] { (*tick)(); });
  periodic_controls_[first_id.value] = alive;
  return first_id;
}

void Simulator::cancel(EventId id) {
  if (auto it = periodic_controls_.find(id.value); it != periodic_controls_.end()) {
    *it->second = false;
    periodic_controls_.erase(it);
  }
  queue_.cancel(id);
}

void Simulator::run_until(util::SimTime horizon) {
  DTNIC_REQUIRE(horizon >= now_);
  stopped_ = false;
  while (!stopped_ && !queue_.empty() && queue_.next_time() <= horizon) {
    auto [time, fn] = queue_.pop();
    DTNIC_ASSERT(time >= now_);
    now_ = time;
    fn();
    ++processed_;
  }
  if (!stopped_ && now_ < horizon) now_ = horizon;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && !queue_.empty()) {
    auto [time, fn] = queue_.pop();
    DTNIC_ASSERT(time >= now_);
    now_ = time;
    fn();
    ++processed_;
  }
}

}  // namespace dtnic::sim
