#include <gtest/gtest.h>

#include "core/enrichment.h"
#include "core/reputation.h"
#include "msg/keyword.h"

namespace dtnic::core {
namespace {

using msg::KeywordId;
using util::NodeId;

DrmParams quiet_drm() {
  DrmParams p;
  p.rating_noise_sd = 0.0;  // deterministic judgements for exact assertions
  p.confidence = 1.0;
  return p;
}

msg::Message tagged_message(NodeId source, int truthful, int false_tags, double quality) {
  msg::Message m(util::MessageId(1), source, util::SimTime::zero(), 1024,
                 msg::Priority::kMedium, quality);
  std::vector<KeywordId> truth;
  KeywordId::underlying next = 0;
  for (int i = 0; i < truthful; ++i) {
    const KeywordId k(next++);
    truth.push_back(k);
    m.annotate({k, source, true});
  }
  for (int i = 0; i < false_tags; ++i) {
    m.annotate({KeywordId(next++), source, false});
  }
  m.set_true_keywords(std::move(truth));
  return m;
}

// --- RatingStore -------------------------------------------------------------------

TEST(RatingStore, DefaultForUnknown) {
  RatingStore store(quiet_drm());
  EXPECT_DOUBLE_EQ(store.rating_of(NodeId(5)), 3.5);
  EXPECT_FALSE(store.knows(NodeId(5)));
  EXPECT_TRUE(store.trusted(NodeId(5)));
}

TEST(RatingStore, FirstHandMeanOfMessageRatings) {
  RatingStore store(quiet_drm());
  store.add_message_rating(NodeId(1), 4.0);
  store.add_message_rating(NodeId(1), 2.0);
  store.add_message_rating(NodeId(1), 3.0);
  EXPECT_DOUBLE_EQ(store.rating_of(NodeId(1)), 3.0);
  EXPECT_TRUE(store.knows(NodeId(1)));
}

TEST(RatingStore, SecondHandAdoptedWhenUnknown) {
  RatingStore store(quiet_drm());
  store.merge_remote(NodeId(2), 1.0);
  EXPECT_DOUBLE_EQ(store.rating_of(NodeId(2)), 1.0);
}

TEST(RatingStore, SecondHandMergeAlphaWeighted) {
  RatingStore store(quiet_drm());  // alpha = 0.6
  store.add_message_rating(NodeId(1), 4.0);
  store.merge_remote(NodeId(1), 1.0);
  // r = (1-0.6)*1.0 + 0.6*4.0 = 2.8
  EXPECT_NEAR(store.rating_of(NodeId(1)), 2.8, 1e-12);
}

TEST(RatingStore, OwnOpinionDominatesMerge) {
  DrmParams p = quiet_drm();
  p.alpha = 0.9;
  RatingStore store(p);
  store.add_message_rating(NodeId(1), 5.0);
  store.merge_remote(NodeId(1), 0.0);
  EXPECT_NEAR(store.rating_of(NodeId(1)), 4.5, 1e-12);
}

TEST(RatingStore, TrustThresholdGate) {
  RatingStore store(quiet_drm());  // threshold 2.0
  store.add_message_rating(NodeId(1), 1.0);
  EXPECT_FALSE(store.trusted(NodeId(1)));
  store.add_message_rating(NodeId(1), 5.0);  // mean 3.0
  EXPECT_TRUE(store.trusted(NodeId(1)));
}

TEST(RatingStore, DisabledDrmTrustsEveryone) {
  DrmParams p = quiet_drm();
  p.enabled = false;
  RatingStore store(p);
  store.add_message_rating(NodeId(1), 0.0);
  EXPECT_TRUE(store.trusted(NodeId(1)));
}

TEST(RatingStore, SnapshotSortedByNode) {
  RatingStore store(quiet_drm());
  store.add_message_rating(NodeId(5), 4.0);
  store.add_message_rating(NodeId(2), 3.0);
  store.merge_remote(NodeId(9), 1.0);
  const auto snap = store.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].first, NodeId(2));
  EXPECT_EQ(snap[1].first, NodeId(5));
  EXPECT_EQ(snap[2].first, NodeId(9));
}

TEST(RatingStore, RatingBoundsEnforced) {
  RatingStore store(quiet_drm());
  EXPECT_THROW(store.add_message_rating(NodeId(1), 5.5), std::invalid_argument);
  EXPECT_THROW(store.add_message_rating(NodeId(1), -0.1), std::invalid_argument);
  store.merge_remote(NodeId(1), 99.0);  // clamped, not thrown
  EXPECT_LE(store.rating_of(NodeId(1)), 5.0);
}

// --- MessageJudgement -----------------------------------------------------------------

TEST(MessageJudgement, TruthfulFraction) {
  const auto m = tagged_message(NodeId(0), 3, 1, 0.8);
  EXPECT_DOUBLE_EQ(MessageJudgement::truthful_fraction(m, NodeId(0)), 0.75);
  EXPECT_DOUBLE_EQ(MessageJudgement::truthful_fraction(m, NodeId(9)), 1.0);  // no tags
}

TEST(MessageJudgement, SourceRatingBlendsTagsAndQuality) {
  const auto drm = quiet_drm();
  util::Rng rng(1);
  // All truthful tags + quality 0.8: R = 0.5*5 + 0.5*4 = 4.5.
  const auto good = tagged_message(NodeId(0), 3, 0, 0.8);
  EXPECT_NEAR(MessageJudgement::rate_source(good, drm, rng), 4.5, 1e-12);
  // Half truthful + low quality: R = 0.5*2.5 + 0.5*1 = 1.75.
  const auto bad = tagged_message(NodeId(0), 2, 2, 0.2);
  EXPECT_NEAR(MessageJudgement::rate_source(bad, drm, rng), 1.75, 1e-12);
}

TEST(MessageJudgement, ConfidenceScalesTagComponent) {
  DrmParams drm = quiet_drm();
  drm.confidence = 0.5;
  util::Rng rng(1);
  const auto m = tagged_message(NodeId(0), 2, 0, 1.0);
  // R = 0.5*(5*0.5) + 0.5*5 = 3.75.
  EXPECT_NEAR(MessageJudgement::rate_source(m, drm, rng), 3.75, 1e-12);
}

TEST(MessageJudgement, AnnotatorRatedOnOwnTagsOnly) {
  const auto drm = quiet_drm();
  util::Rng rng(1);
  auto m = tagged_message(NodeId(0), 2, 0, 1.0);
  m.annotate({KeywordId(50), NodeId(7), false});
  m.annotate({KeywordId(51), NodeId(7), false});
  EXPECT_NEAR(MessageJudgement::rate_annotator(m, NodeId(7), drm, rng), 0.0, 1e-12);
  // A node that added nothing gets the neutral default.
  EXPECT_DOUBLE_EQ(MessageJudgement::rate_annotator(m, NodeId(8), drm, rng), 3.5);
}

TEST(MessageJudgement, NoiseStaysInBounds) {
  DrmParams drm = quiet_drm();
  drm.rating_noise_sd = 2.0;
  util::Rng rng(42);
  const auto m = tagged_message(NodeId(0), 1, 0, 1.0);
  for (int i = 0; i < 500; ++i) {
    const double r = MessageJudgement::rate_source(m, drm, rng);
    ASSERT_GE(r, 0.0);
    ASSERT_LE(r, 5.0);
  }
}

// --- award_factor ---------------------------------------------------------------------

TEST(AwardFactor, NoPathRatingsUsesDelivererOnly) {
  const auto drm = quiet_drm();
  EXPECT_DOUBLE_EQ(award_factor(drm, {}, 5.0), 1.0);
  EXPECT_DOUBLE_EQ(award_factor(drm, {}, 2.5), 0.5);
}

TEST(AwardFactor, BlendsPathAndDeliverer) {
  const auto drm = quiet_drm();  // alpha 0.6
  std::vector<msg::PathRating> path{{NodeId(1), NodeId(0), 5.0}, {NodeId(2), NodeId(0), 0.0}};
  // path mean = 0.5 normalized; factor = 0.4*0.5 + 0.6*(4/5) = 0.2 + 0.48.
  EXPECT_NEAR(award_factor(drm, path, 4.0), 0.68, 1e-12);
}

TEST(AwardFactor, DisabledDrmPaysFull) {
  DrmParams drm = quiet_drm();
  drm.enabled = false;
  std::vector<msg::PathRating> path{{NodeId(1), NodeId(0), 0.0}};
  EXPECT_DOUBLE_EQ(award_factor(drm, path, 0.0), 1.0);
}

TEST(AwardFactor, AlwaysInUnitInterval) {
  const auto drm = quiet_drm();
  util::Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    std::vector<msg::PathRating> path;
    const int n = static_cast<int>(rng.range(0, 6));
    for (int j = 0; j < n; ++j) {
      path.push_back({NodeId(j), NodeId(0), rng.uniform(-1.0, 7.0)});
    }
    const double f = award_factor(drm, path, rng.uniform(-1.0, 7.0));
    ASSERT_GE(f, 0.0);
    ASSERT_LE(f, 1.0);
  }
}

// --- Enricher ----------------------------------------------------------------------------

class EnricherTest : public ::testing::Test {
 protected:
  EnricherTest() {
    pool = keywords.make_pool(50);
  }
  msg::KeywordTable keywords;
  std::vector<KeywordId> pool;
  util::Rng rng{11};
};

TEST_F(EnricherTest, HonestAddsOnlyTruthfulMissingTags) {
  Enricher enricher(&pool);
  msg::Message m(util::MessageId(1), NodeId(0), util::SimTime::zero(), 1024,
                 msg::Priority::kMedium, 0.9);
  m.set_true_keywords({pool[0], pool[1], pool[2]});
  m.annotate({pool[0], NodeId(0), true});  // source tagged one of three
  const int added = enricher.enrich_honest(m, NodeId(4), 5, rng);
  EXPECT_EQ(added, 2);
  for (const auto& a : m.annotations_by(NodeId(4))) {
    EXPECT_TRUE(a.truthful);
    EXPECT_TRUE(m.keyword_is_truthful(a.keyword));
  }
}

TEST_F(EnricherTest, HonestRespectsMaxTags) {
  Enricher enricher(&pool);
  msg::Message m(util::MessageId(1), NodeId(0), util::SimTime::zero(), 1024,
                 msg::Priority::kMedium, 0.9);
  m.set_true_keywords({pool[0], pool[1], pool[2], pool[3]});
  EXPECT_EQ(enricher.enrich_honest(m, NodeId(4), 2, rng), 2);
  EXPECT_EQ(m.annotations().size(), 2u);
}

TEST_F(EnricherTest, HonestNothingToAdd) {
  Enricher enricher(&pool);
  msg::Message m(util::MessageId(1), NodeId(0), util::SimTime::zero(), 1024,
                 msg::Priority::kMedium, 0.9);
  m.set_true_keywords({pool[0]});
  m.annotate({pool[0], NodeId(0), true});
  EXPECT_EQ(enricher.enrich_honest(m, NodeId(4), 3, rng), 0);
}

TEST_F(EnricherTest, MaliciousAddsOnlyIrrelevantTags) {
  Enricher enricher(&pool);
  msg::Message m(util::MessageId(1), NodeId(0), util::SimTime::zero(), 1024,
                 msg::Priority::kMedium, 0.9);
  m.set_true_keywords({pool[0], pool[1]});
  const int added = enricher.enrich_malicious(m, NodeId(6), 3, rng);
  EXPECT_EQ(added, 3);
  for (const auto& a : m.annotations_by(NodeId(6))) {
    EXPECT_FALSE(a.truthful);
    EXPECT_FALSE(m.keyword_is_truthful(a.keyword));
  }
}

TEST_F(EnricherTest, MaliciousWithoutPoolIsNoop) {
  Enricher enricher(nullptr);
  msg::Message m(util::MessageId(1), NodeId(0), util::SimTime::zero(), 1024,
                 msg::Priority::kMedium, 0.9);
  EXPECT_EQ(enricher.enrich_malicious(m, NodeId(6), 3, rng), 0);
}

TEST_F(EnricherTest, ProfileDispatch) {
  Enricher enricher(&pool);
  msg::Message m(util::MessageId(1), NodeId(0), util::SimTime::zero(), 1024,
                 msg::Priority::kMedium, 0.9);
  m.set_true_keywords({pool[0], pool[1], pool[2]});

  BehaviorProfile malicious;
  malicious.type = BehaviorType::kMalicious;
  malicious.malicious_tags = 2;
  EXPECT_EQ(enricher.enrich(m, NodeId(5), malicious, rng), 2);

  BehaviorProfile never_enrich;
  never_enrich.enrich_probability = 0.0;
  EXPECT_EQ(enricher.enrich(m, NodeId(6), never_enrich, rng), 0);

  BehaviorProfile always;
  always.enrich_probability = 1.0;
  always.honest_max_tags = 5;
  EXPECT_EQ(enricher.enrich(m, NodeId(7), always, rng), 3);  // the 3 true keywords
}

TEST(BehaviorProfile, NamesAndPredicates) {
  BehaviorProfile p;
  EXPECT_FALSE(p.selfish());
  EXPECT_FALSE(p.malicious());
  p.type = BehaviorType::kSelfish;
  EXPECT_TRUE(p.selfish());
  EXPECT_STREQ(behavior_name(p.type), "selfish");
  EXPECT_STREQ(behavior_name(BehaviorType::kMalicious), "malicious");
  EXPECT_STREQ(behavior_name(BehaviorType::kCooperative), "cooperative");
}

}  // namespace
}  // namespace dtnic::core
