#pragma once

#include <array>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "routing/events.h"

/// \file metrics.h
/// Run-wide metrics, fed by routing events. Definitions used throughout the
/// reproduction (EXPERIMENTS.md):
///  * MDR      — messages delivered to at least one destination / messages
///               created (interest-addressed messages have many potential
///               destinations; the first delivery is the MDR event).
///  * traffic  — transfers started, the ONE simulator's "relayed" counter
///               (Fig. 5.2's reduction is computed over this).

namespace dtnic::stats {

class MetricsCollector final : public routing::RoutingEvents {
 public:
  // --- RoutingEvents -------------------------------------------------------
  void on_created(const msg::Message& m) override;
  void on_transfer_started(routing::NodeId from, routing::NodeId to, const msg::Message& m,
                           routing::TransferRole role) override;
  void on_relayed(routing::NodeId from, routing::NodeId to, const msg::Message& m) override;
  void on_delivered(routing::NodeId from, routing::NodeId to, const msg::Message& m) override;
  void on_refused(routing::NodeId from, routing::NodeId to, const msg::Message& m,
                  routing::AcceptDecision why) override;
  void on_aborted(routing::NodeId from, routing::NodeId to, routing::MessageId m) override;
  void on_dropped(routing::NodeId at, const msg::Message& m,
                  routing::DropReason why) override;
  void on_tokens_paid(routing::NodeId payer, routing::NodeId payee, double amount) override;
  void on_reputation_updated(routing::NodeId rater, routing::NodeId rated,
                             double rating) override;
  void on_enriched(routing::NodeId at, const msg::Message& m, int tags_added) override;

  // --- primary results -----------------------------------------------------
  [[nodiscard]] std::size_t created() const { return created_; }
  [[nodiscard]] std::size_t delivered_unique() const { return delivered_.size(); }
  /// Message delivery ratio: unique messages delivered / created.
  [[nodiscard]] double mdr() const;
  /// MDR restricted to one source priority class.
  [[nodiscard]] double mdr_for(msg::Priority p) const;
  [[nodiscard]] std::size_t created_for(msg::Priority p) const;
  [[nodiscard]] std::size_t delivered_for(msg::Priority p) const;

  /// Transfers started (relay + destination), the traffic measure.
  [[nodiscard]] std::uint64_t traffic() const { return transfers_started_; }
  [[nodiscard]] std::uint64_t relay_arrivals() const { return relays_; }
  /// Every (message, destination) delivery including later destinations.
  [[nodiscard]] std::uint64_t deliveries_total() const { return deliveries_total_; }

  // --- secondary counters --------------------------------------------------
  [[nodiscard]] std::uint64_t refused_no_tokens() const { return refused_no_tokens_; }
  [[nodiscard]] std::uint64_t refused_untrusted() const { return refused_untrusted_; }
  [[nodiscard]] std::uint64_t refused_duplicates() const { return refused_duplicate_; }
  [[nodiscard]] std::uint64_t aborted() const { return aborted_; }
  [[nodiscard]] std::uint64_t dropped_buffer() const { return dropped_buffer_; }
  [[nodiscard]] std::uint64_t dropped_ttl() const { return dropped_ttl_; }
  [[nodiscard]] double tokens_paid_total() const { return tokens_paid_; }
  [[nodiscard]] std::uint64_t payments() const { return payments_; }
  /// First-hand DRM rating revisions observed (volume, not values).
  [[nodiscard]] std::uint64_t reputation_updates() const { return reputation_updates_; }
  /// En-route enrichment events and the tags they added.
  [[nodiscard]] std::uint64_t enrichments() const { return enrichments_; }
  [[nodiscard]] std::uint64_t enrich_tags() const { return enrich_tags_; }

  /// Mean hops of first deliveries (0 if none).
  [[nodiscard]] double mean_delivery_hops() const;
  /// Mean latency (s) of first deliveries (0 if none).
  [[nodiscard]] double mean_delivery_latency_s() const;

 private:
  [[nodiscard]] static std::size_t bucket(msg::Priority p) {
    return static_cast<std::size_t>(msg::priority_level(p)) - 1;
  }

  std::size_t created_ = 0;
  std::array<std::size_t, 3> created_by_priority_{};
  std::unordered_set<routing::MessageId> delivered_;
  std::array<std::size_t, 3> delivered_by_priority_{};
  std::uint64_t deliveries_total_ = 0;
  std::uint64_t transfers_started_ = 0;
  std::uint64_t relays_ = 0;
  std::uint64_t refused_no_tokens_ = 0;
  std::uint64_t refused_untrusted_ = 0;
  std::uint64_t refused_duplicate_ = 0;
  std::uint64_t refused_other_ = 0;
  std::uint64_t aborted_ = 0;
  std::uint64_t dropped_buffer_ = 0;
  std::uint64_t dropped_ttl_ = 0;
  double tokens_paid_ = 0.0;
  std::uint64_t payments_ = 0;
  std::uint64_t reputation_updates_ = 0;
  std::uint64_t enrichments_ = 0;
  std::uint64_t enrich_tags_ = 0;
  double hops_sum_ = 0.0;
  double latency_sum_s_ = 0.0;
};

}  // namespace dtnic::stats
