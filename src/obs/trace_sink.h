#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>

#include "routing/events.h"
#include "util/sim_time.h"

/// \file trace_sink.h
/// Schema-versioned JSONL event tracing (schema tag `dtnic.trace.v1`).
///
/// The sink writes one JSON object per line: a header record carrying the
/// schema tag and run metadata, then one record per routing/incentive event
/// in dispatch order, each stamped with the simulation time. Numbers are
/// formatted with std::to_chars (shortest round-trippable form), so parsing
/// a traced double back yields the exact bits of the live value — that is
/// what lets replay_trace() reproduce MetricsCollector counters exactly.
///
/// Records are composed into one reused buffer (no per-event allocation at
/// steady state) and pushed to the stream line-by-line; the stream's own
/// buffering amortizes I/O. See DESIGN.md ("Observability") for the field
/// table.

namespace dtnic::obs {

/// Bit per traceable event type, for TraceOptions::events.
enum class TraceEvent : std::uint32_t {
  kCreated = 1u << 0,
  kTransfer = 1u << 1,
  kRelayed = 1u << 2,
  kDelivered = 1u << 3,
  kRefused = 1u << 4,
  kAborted = 1u << 5,
  kDropped = 1u << 6,
  kTokens = 1u << 7,
  kReputation = 1u << 8,
  kEnriched = 1u << 9,
};
inline constexpr std::size_t kTraceEventKinds = 10;
inline constexpr std::uint32_t kAllTraceEvents = (1u << kTraceEventKinds) - 1;
[[nodiscard]] constexpr std::uint32_t trace_bit(TraceEvent e) {
  return static_cast<std::uint32_t>(e);
}

struct TraceOptions {
  /// Sim-time source stamped on every record (typically the scenario's
  /// simulator clock). When empty, records are stamped t=0.
  std::function<util::SimTime()> clock;
  std::uint64_t seed = 0;
  std::string scheme;  ///< run metadata echoed in the header record
  /// Keep 1 record in every \p sample_every per event type (1 = keep all).
  /// Sampling > 1 keeps multi-hour traces tractable but breaks exact replay
  /// (replay_trace documents this) by design.
  std::uint32_t sample_every = 1;
  /// Bitwise OR of trace_bit(TraceEvent) values; defaults to everything.
  std::uint32_t events = kAllTraceEvents;
};

class TraceSink final : public routing::RoutingEvents {
 public:
  /// Write to a borrowed stream (kept open; flushed on destruction).
  TraceSink(std::ostream& os, TraceOptions options);
  /// Write to an owned stream (e.g. an std::ofstream), flushed and destroyed
  /// with the sink.
  TraceSink(std::unique_ptr<std::ostream> os, TraceOptions options);
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;
  ~TraceSink() override;

  /// Records written so far, including the header record.
  [[nodiscard]] std::uint64_t records() const { return records_; }
  /// Flush and check the stream. Returns false — permanently — once any
  /// write or flush failed (disk full, closed pipe): a truncated trace must
  /// not pass for a complete `dtnic.trace.v1` artifact.
  void flush();
  [[nodiscard]] bool ok() const { return ok_ && os_->good(); }

  // --- RoutingEvents -------------------------------------------------------
  void on_created(const msg::Message& m) override;
  void on_transfer_started(routing::NodeId from, routing::NodeId to, const msg::Message& m,
                           routing::TransferRole role) override;
  void on_relayed(routing::NodeId from, routing::NodeId to, const msg::Message& m) override;
  void on_delivered(routing::NodeId from, routing::NodeId to, const msg::Message& m) override;
  void on_refused(routing::NodeId from, routing::NodeId to, const msg::Message& m,
                  routing::AcceptDecision why) override;
  void on_aborted(routing::NodeId from, routing::NodeId to, routing::MessageId m) override;
  void on_dropped(routing::NodeId at, const msg::Message& m,
                  routing::DropReason why) override;
  void on_tokens_paid(routing::NodeId payer, routing::NodeId payee, double amount) override;
  void on_reputation_updated(routing::NodeId rater, routing::NodeId rated,
                             double rating) override;
  void on_enriched(routing::NodeId at, const msg::Message& m, int tags_added) override;

 private:
  void write_header();
  /// Event-mask and 1-in-N sampling gate; advances the per-type counter.
  [[nodiscard]] bool take(TraceEvent e);
  /// Start a record in buf_: `{"t":<now>,"ev":"<name>"`.
  void begin(const char* name);
  /// Close the record and push the line to the stream.
  void commit();
  void key_num(const char* key, double v);
  void key_u64(const char* key, std::uint64_t v);
  void key_str(const char* key, const char* v);

  std::unique_ptr<std::ostream> owned_;
  std::ostream* os_;
  TraceOptions opt_;
  std::string buf_;
  bool ok_ = true;  ///< latches false on the first failed write/flush
  std::uint64_t records_ = 0;
  std::array<std::uint32_t, kTraceEventKinds> seen_of_type_{};
};

/// Open \p path for writing and return a TraceSink over it; throws
/// std::runtime_error if the file cannot be created.
[[nodiscard]] std::unique_ptr<TraceSink> open_trace_file(const std::string& path,
                                                         TraceOptions options);

}  // namespace dtnic::obs
