#include <gtest/gtest.h>

#include "scenario/experiment.h"
#include "util/thread_pool.h"

/// Concurrency stress for the parallel experiment layer, built to run under
/// -fsanitize=thread (cmake -DDTNIC_SANITIZE=thread; ctest -L tsan-stress).
/// More seeds than workers keeps the queue contended; the serial baseline
/// comparison doubles as the determinism check while TSan watches for data
/// races between concurrently running Scenario instances.

namespace dtnic::scenario {
namespace {

TEST(ExperimentStress, ManySeedsUnderContentionMatchSerial) {
  util::ThreadPool::set_shared_threads(4);
  ScenarioConfig cfg = ScenarioConfig::scaled_defaults(25, 0.5);
  cfg.scheme = Scheme::kIncentive;
  cfg.selfish_fraction = 0.3;
  cfg.malicious_fraction = 0.2;
  cfg.sample_interval_s = 300.0;

  const ExperimentRunner runner(/*seeds=*/8, /*base_seed=*/11);
  const AggregateResult parallel = runner.run(cfg);
  const AggregateResult serial = runner.run_serial(cfg);

  ASSERT_EQ(parallel.runs, serial.runs);
  EXPECT_EQ(parallel.mdr.mean(), serial.mdr.mean());
  EXPECT_EQ(parallel.mdr.stddev(), serial.mdr.stddev());
  EXPECT_EQ(parallel.traffic.mean(), serial.traffic.mean());
  EXPECT_EQ(parallel.avg_final_tokens.mean(), serial.avg_final_tokens.mean());
  ASSERT_EQ(parallel.raw.size(), serial.raw.size());
  for (std::size_t i = 0; i < parallel.raw.size(); ++i) {
    EXPECT_EQ(parallel.raw[i].seed, serial.raw[i].seed);
    EXPECT_EQ(parallel.raw[i].mdr, serial.raw[i].mdr);
    EXPECT_EQ(parallel.raw[i].traffic, serial.raw[i].traffic);
  }
}

/// Buffer-churn stress over the strength-cache paths: tiny buffers force
/// constant eviction (cache pruning, copy-on-write message cores) while
/// heavy enrichment bumps the process-wide keyword stamp from every worker
/// thread. Under TSan this covers the atomic stamp counter and the shared
/// immutable cores crossing threads; in plain builds the serial comparison
/// checks the memoized strength never perturbs results.
TEST(ExperimentStress, BufferChurnWithEnrichmentMatchesSerial) {
  util::ThreadPool::set_shared_threads(4);
  ScenarioConfig cfg = ScenarioConfig::scaled_defaults(20, 0.5);
  cfg.scheme = Scheme::kIncentive;
  cfg.buffer_capacity_bytes = 4ull * 1024 * 1024;  // a handful of messages
  cfg.messages_per_node_per_hour = 4.0;
  cfg.enrich_probability = 0.9;
  cfg.malicious_fraction = 0.3;

  const ExperimentRunner runner(/*seeds=*/8, /*base_seed=*/23);
  const AggregateResult parallel = runner.run(cfg);
  const AggregateResult serial = runner.run_serial(cfg);

  ASSERT_EQ(parallel.runs, serial.runs);
  EXPECT_EQ(parallel.mdr.mean(), serial.mdr.mean());
  EXPECT_EQ(parallel.traffic.mean(), serial.traffic.mean());
  EXPECT_EQ(parallel.avg_final_tokens.mean(), serial.avg_final_tokens.mean());
  for (std::size_t i = 0; i < parallel.raw.size(); ++i) {
    EXPECT_EQ(parallel.raw[i].mdr, serial.raw[i].mdr);
    EXPECT_EQ(parallel.raw[i].traffic, serial.raw[i].traffic);
  }
}

/// Nested parallelism stress: whole-seed runs on the shared pool while every
/// Scenario shards its contact scans on its own dedicated pool. Under TSan
/// this exercises the staged-position writes, per-shard pair enumeration, and
/// the serial commit/merge handshake from many scenarios at once; in plain
/// builds it pins the tentpole contract — per-seed results are identical for
/// every shard_threads value, including the auto (0) setting.
TEST(ExperimentStress, ShardedScansUnderContentionMatchSerial) {
  util::ThreadPool::set_shared_threads(4);
  ScenarioConfig cfg = ScenarioConfig::scaled_defaults(30, 0.5);
  cfg.scheme = Scheme::kIncentive;
  cfg.selfish_fraction = 0.2;
  cfg.malicious_fraction = 0.1;

  const ExperimentRunner runner(/*seeds=*/6, /*base_seed=*/31);
  cfg.shard_threads = 1;
  const AggregateResult serial = runner.run(cfg);
  for (const std::size_t shards : {std::size_t{2}, std::size_t{8}, std::size_t{0}}) {
    cfg.shard_threads = shards;
    const AggregateResult sharded = runner.run(cfg);
    ASSERT_EQ(sharded.runs, serial.runs);
    EXPECT_EQ(sharded.mdr.mean(), serial.mdr.mean()) << "shards=" << shards;
    EXPECT_EQ(sharded.traffic.mean(), serial.traffic.mean()) << "shards=" << shards;
    EXPECT_EQ(sharded.avg_final_tokens.mean(), serial.avg_final_tokens.mean());
    for (std::size_t i = 0; i < sharded.raw.size(); ++i) {
      EXPECT_EQ(sharded.raw[i].seed, serial.raw[i].seed);
      EXPECT_EQ(sharded.raw[i].mdr, serial.raw[i].mdr);
      EXPECT_EQ(sharded.raw[i].traffic, serial.raw[i].traffic);
      EXPECT_EQ(sharded.raw[i].tokens_paid, serial.raw[i].tokens_paid);
    }
  }
}

TEST(ExperimentStress, RepeatedSweepsAreStable) {
  util::ThreadPool::set_shared_threads(4);
  std::vector<ScenarioConfig> points;
  for (const auto scheme : {Scheme::kIncentive, Scheme::kChitChat, Scheme::kEpidemic}) {
    ScenarioConfig cfg = ScenarioConfig::scaled_defaults(20, 0.25);
    cfg.scheme = scheme;
    cfg.selfish_fraction = 0.5;  // heavy suppression churn on the gate path
    points.push_back(cfg);
  }
  const SweepRunner sweep(/*seeds=*/4);
  const auto first = sweep.run_all(points);
  const auto second = sweep.run_all(points);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].mdr.mean(), second[i].mdr.mean());
    EXPECT_EQ(first[i].traffic.mean(), second[i].traffic.mean());
    EXPECT_EQ(first[i].scheme, second[i].scheme);
  }
  util::ThreadPool::set_shared_threads(0);  // restore default sizing
}

}  // namespace
}  // namespace dtnic::scenario
