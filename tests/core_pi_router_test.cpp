#include <gtest/gtest.h>

#include "core/pi_router.h"
#include "scenario/experiment.h"
#include "scenario/scenario.h"
#include "test_helpers.h"

namespace dtnic::core {
namespace {

using routing::ForwardPlan;
using routing::Host;
using routing::TransferRole;
using test::MicroWorld;
using util::NodeId;
using util::SimTime;

constexpr auto kT0 = SimTime::zero();

class PiFixture : public ::testing::Test {
 protected:
  PiFixture() : factory(w.keywords) {
    pool = w.keywords.make_pool(20);
    world.keyword_pool = &pool;
    world.incentive.initial_tokens = 50.0;
    world.host_by_id = [this](NodeId id) -> Host* {
      return id.value() < w.size() ? &w.host(id.value()) : nullptr;
    };
    params.attachment = 8.0;
    params.deliverer_share = 0.5;
  }

  Host& make_node(const std::vector<std::string>& interests = {}) {
    Host& h = w.add_host();
    auto router = std::make_unique<PiRouter>(w.oracle, chitchat, SimTime::seconds(5),
                                             &world, &bank, params);
    std::vector<msg::KeywordId> kws;
    for (const auto& name : interests) kws.push_back(w.keywords.intern(name));
    router->set_direct_interests(kws, kT0);
    w.oracle.set_interests(h.id(), kws);
    h.set_router(std::move(router));
    return h;
  }

  msg::MessageId originate(Host& src, const std::vector<std::string>& tags) {
    auto m = factory.make(src.id(), tags);
    const auto id = m.id();
    src.mark_seen(id);
    (void)src.buffer().add(std::move(m), true);
    src.router().on_originated(src, *src.buffer().find(id), kT0);
    return id;
  }

  static PiRouter& router_of(Host& h) { return *PiRouter::of(h); }

  MicroWorld w;
  test::MessageFactory factory;
  std::vector<msg::KeywordId> pool;
  IncentiveWorld world;
  routing::chitchat::ChitChatParams chitchat;
  PiEscrowBank bank;
  PiParams params;
};

// --- PiEscrowBank --------------------------------------------------------------

TEST(PiEscrowBank, DepositClearLifecycle) {
  PiEscrowBank bank;
  bank.deposit(msg::MessageId(1), 4.0);
  bank.deposit(msg::MessageId(1), 2.0);
  bank.deposit(msg::MessageId(2), 1.0);
  EXPECT_DOUBLE_EQ(bank.held(msg::MessageId(1)), 6.0);
  EXPECT_DOUBLE_EQ(bank.total_held(), 7.0);
  EXPECT_DOUBLE_EQ(bank.clear(msg::MessageId(1)), 6.0);
  EXPECT_DOUBLE_EQ(bank.clear(msg::MessageId(1)), 0.0);  // already cleared
  EXPECT_DOUBLE_EQ(bank.total_held(), 1.0);
  EXPECT_DOUBLE_EQ(bank.held(msg::MessageId(99)), 0.0);
}

// --- PiRouter --------------------------------------------------------------------

TEST_F(PiFixture, SourceEscrowsTheAttachment) {
  Host& src = make_node();
  const auto id = originate(src, {"flood"});
  EXPECT_DOUBLE_EQ(router_of(src).ledger().balance(), 42.0);  // 50 - 8
  EXPECT_DOUBLE_EQ(bank.held(id), 8.0);
}

TEST_F(PiFixture, BrokeSourceEscrowsWhatItHas) {
  world.incentive.initial_tokens = 3.0;
  Host& src = make_node();
  const auto id = originate(src, {"flood"});
  EXPECT_DOUBLE_EQ(router_of(src).ledger().balance(), 0.0);
  EXPECT_DOUBLE_EQ(bank.held(id), 3.0);
}

TEST_F(PiFixture, DirectDeliveryPaysDelivererEverything) {
  Host& src = make_node();
  Host& dest = make_node({"flood"});
  const auto id = originate(src, {"flood"});
  w.link_up(src, dest, kT0);
  ASSERT_EQ(w.exchange(src, dest, kT0), 1);
  // No intermediate relays: the deliverer (the source) collects the full 8.
  EXPECT_DOUBLE_EQ(bank.held(id), 0.0);
  EXPECT_DOUBLE_EQ(router_of(src).ledger().balance(), 50.0);
  EXPECT_DOUBLE_EQ(router_of(dest).ledger().balance(), 50.0);  // destinations pay nothing
}

TEST_F(PiFixture, RelayedDeliverySplitsEscrowAcrossPath) {
  Host& src = make_node();
  Host& relay = make_node();
  Host& dest = make_node({"flood"});
  const auto id = originate(src, {"flood"});

  // Hand-carry src -> relay -> dest.
  ForwardPlan relay_plan{id, TransferRole::kRelay};
  msg::Message copy = *src.buffer().find(id);
  copy.record_hop(relay.id(), kT0);
  relay.router().on_received(relay, src, std::move(copy), relay_plan, kT0);

  ForwardPlan deliver{id, TransferRole::kDestination};
  msg::Message final_copy = *relay.buffer().find(id);
  final_copy.record_hop(dest.id(), kT0);
  dest.router().on_received(dest, relay, std::move(final_copy), deliver, kT0);

  // Deliverer (relay) gets 50% = 4; the only other path node is the source
  // itself... which is excluded along with dest — wait: path = [src, relay,
  // dest]; intermediates exclude the deliverer and dest, leaving nobody, so
  // the relay collects the remainder too.
  EXPECT_DOUBLE_EQ(bank.held(id), 0.0);
  EXPECT_DOUBLE_EQ(router_of(relay).ledger().balance(), 58.0);
  EXPECT_DOUBLE_EQ(router_of(src).ledger().balance(), 42.0);  // paid, not reimbursed
  // Conservation: 42 + 58 + 50 = 150 = 3 x 50.
  const double total = router_of(src).ledger().balance() +
                       router_of(relay).ledger().balance() +
                       router_of(dest).ledger().balance() + bank.total_held();
  EXPECT_DOUBLE_EQ(total, 150.0);
}

TEST_F(PiFixture, TwoRelayPathPaysIntermediateToo) {
  Host& src = make_node();
  Host& r1 = make_node();
  Host& r2 = make_node();
  Host& dest = make_node({"flood"});
  const auto id = originate(src, {"flood"});

  auto carry = [&](Host& from, Host& to, TransferRole role) {
    ForwardPlan plan{id, role};
    msg::Message copy = *from.buffer().find(id);
    copy.record_hop(to.id(), kT0);
    to.router().on_received(to, from, std::move(copy), plan, kT0);
  };
  carry(src, r1, TransferRole::kRelay);
  carry(r1, r2, TransferRole::kRelay);
  carry(r2, dest, TransferRole::kDestination);

  // Escrow 8: deliverer r2 gets 4; intermediates (r1) share the other 4.
  EXPECT_DOUBLE_EQ(router_of(r2).ledger().balance(), 54.0);
  EXPECT_DOUBLE_EQ(router_of(r1).ledger().balance(), 54.0);
  EXPECT_DOUBLE_EQ(router_of(dest).ledger().balance(), 50.0);
  EXPECT_DOUBLE_EQ(bank.held(id), 0.0);
}

TEST_F(PiFixture, SecondDeliveryClearsNothing) {
  Host& src = make_node();
  Host& dest1 = make_node({"flood"});
  Host& dest2 = make_node({"flood"});
  const auto id = originate(src, {"flood"});
  w.link_up(src, dest1, kT0);
  ASSERT_EQ(w.exchange(src, dest1, kT0), 1);
  const double after_first = router_of(src).ledger().balance();
  w.link_up(src, dest2, SimTime::seconds(5));
  ASSERT_EQ(w.exchange(src, dest2, SimTime::seconds(5)), 1);
  EXPECT_DOUBLE_EQ(router_of(src).ledger().balance(), after_first);
  EXPECT_EQ(bank.held(id), 0.0);
}

TEST_F(PiFixture, DestinationsNeverRefuseForTokens) {
  world.incentive.initial_tokens = 0.0;  // everyone broke
  Host& src = make_node();
  Host& dest = make_node({"flood"});
  const auto id = originate(src, {"flood"});
  w.link_up(src, dest, kT0);
  const auto plans = src.router().plan(src, dest, kT0);
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_EQ(dest.router().accept(dest, src, *src.buffer().find(id), plans[0], kT0),
            routing::AcceptDecision::kAccept);
}

// --- end-to-end ------------------------------------------------------------------

TEST(PiScenario, RunsConservesTokensAndNeverRefusesReceivers) {
  scenario::ScenarioConfig cfg = scenario::ScenarioConfig::scaled_defaults(40, 2.0);
  cfg.scheme = scenario::Scheme::kPiIncentive;
  cfg.incentive.initial_tokens = 20.0;
  cfg.pi.attachment = 5.0;
  cfg.seed = 21;
  scenario::Scenario sim(cfg);
  const auto r = sim.run();
  EXPECT_GT(r.delivered, 0u);
  EXPECT_GT(r.tokens_paid, 0.0);
  EXPECT_EQ(r.refused_no_tokens, 0u);  // receivers never pay under PI
  EXPECT_NEAR(r.total_tokens, 40 * 20.0, 1e-6);  // ledgers + escrow bank
  EXPECT_EQ(r.scheme, "pi-incentive");
}

}  // namespace
}  // namespace dtnic::core
