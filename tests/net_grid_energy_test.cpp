#include <gtest/gtest.h>

#include <numbers>
#include <set>

#include "net/energy.h"
#include "net/spatial_grid.h"
#include "util/rng.h"

namespace dtnic::net {
namespace {

using util::NodeId;
using util::Vec2;

// --- SpatialGrid ---------------------------------------------------------------

TEST(SpatialGrid, FindsNeighborsWithinRadius) {
  SpatialGrid grid(100.0);
  grid.insert(NodeId(0), {0, 0});
  grid.insert(NodeId(1), {50, 0});
  grid.insert(NodeId(2), {150, 0});
  const auto n = grid.neighbors_of({0, 0}, 100.0, NodeId(0));
  ASSERT_EQ(n.size(), 1u);
  EXPECT_EQ(n[0], NodeId(1));
}

TEST(SpatialGrid, ExcludesSelf) {
  SpatialGrid grid(100.0);
  grid.insert(NodeId(0), {0, 0});
  EXPECT_TRUE(grid.neighbors_of({0, 0}, 100.0, NodeId(0)).empty());
}

TEST(SpatialGrid, PairsAcrossCellBoundaries) {
  SpatialGrid grid(100.0);
  grid.insert(NodeId(0), {99, 50});
  grid.insert(NodeId(1), {101, 50});  // adjacent cell, 2 m apart
  const auto pairs = grid.pairs_within(100.0);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].a, NodeId(0));
  EXPECT_EQ(pairs[0].b, NodeId(1));
  EXPECT_NEAR(pairs[0].distance_m, 2.0, 1e-9);
}

TEST(SpatialGrid, DiagonalCellPairs) {
  SpatialGrid grid(100.0);
  grid.insert(NodeId(0), {99, 99});
  grid.insert(NodeId(1), {101, 101});  // diagonal neighbor cell
  EXPECT_EQ(grid.pairs_within(100.0).size(), 1u);
}

TEST(SpatialGrid, RadiusLargerThanCellRejected) {
  SpatialGrid grid(50.0);
  EXPECT_THROW((void)grid.pairs_within(60.0), std::invalid_argument);
}

TEST(SpatialGrid, ClearKeepsNothing) {
  SpatialGrid grid(100.0);
  grid.insert(NodeId(0), {0, 0});
  grid.insert(NodeId(1), {10, 0});
  grid.clear();
  EXPECT_EQ(grid.size(), 0u);
  EXPECT_TRUE(grid.pairs_within(100.0).empty());
}

/// Property: grid pair detection matches brute force over random layouts.
class GridVsBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GridVsBruteForce, MatchesExactly) {
  util::Rng rng(GetParam());
  const double radius = 100.0;
  const int n = 120;
  std::vector<Vec2> pos(n);
  SpatialGrid grid(radius);
  for (int i = 0; i < n; ++i) {
    pos[i] = {rng.uniform(0.0, 1500.0), rng.uniform(0.0, 1500.0)};
    grid.insert(NodeId(i), pos[i]);
  }
  std::set<std::pair<std::uint32_t, std::uint32_t>> brute;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (util::distance_sq(pos[i], pos[j]) <= radius * radius) {
        brute.insert({static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(j)});
      }
    }
  }
  std::set<std::pair<std::uint32_t, std::uint32_t>> fast;
  for (const auto& p : grid.pairs_within(radius)) {
    fast.insert({p.a.value(), p.b.value()});
  }
  EXPECT_EQ(brute, fast);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridVsBruteForce,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// --- Friis model ------------------------------------------------------------------

TEST(Friis, PathLossFormula) {
  const double lambda = 0.125;
  const double r = 100.0;
  const double expected = std::pow(4.0 * std::numbers::pi * r / lambda, 2.0);
  EXPECT_NEAR(FriisModel::path_loss(r, lambda), expected, expected * 1e-12);
}

TEST(Friis, LossGrowsQuadratically) {
  const double l1 = FriisModel::path_loss(10.0, 0.125);
  const double l2 = FriisModel::path_loss(20.0, 0.125);
  EXPECT_NEAR(l2 / l1, 4.0, 1e-9);
}

TEST(Friis, NearFieldFloorPreventsGain) {
  // At distance 0 the loss is floored at one wavelength, never < 1.
  EXPECT_GE(FriisModel::path_loss(0.0, 0.125), 1.0);
  EXPECT_GE(FriisModel::received_power(1.0, 0.0, 0.125), 0.0);
  EXPECT_LE(FriisModel::received_power(1.0, 0.0, 0.125), 1.0);
}

TEST(Friis, ReceivedPowerScalesWithTx) {
  const double p1 = FriisModel::received_power(0.1, 50.0, 0.125);
  const double p2 = FriisModel::received_power(0.2, 50.0, 0.125);
  EXPECT_NEAR(p2 / p1, 2.0, 1e-9);
}

TEST(Friis, InvalidInputsRejected) {
  EXPECT_THROW((void)FriisModel::path_loss(10.0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)FriisModel::path_loss(-1.0, 0.125), std::invalid_argument);
  EXPECT_THROW((void)FriisModel::received_power(-0.1, 10.0, 0.125), std::invalid_argument);
}

// --- Battery ------------------------------------------------------------------------

TEST(Battery, ConsumeAccumulates) {
  Battery b(100.0);
  b.consume(30.0);
  b.consume(20.0);
  EXPECT_DOUBLE_EQ(b.consumed_j(), 50.0);
  EXPECT_DOUBLE_EQ(b.remaining_j(), 50.0);
  EXPECT_DOUBLE_EQ(b.level(), 0.5);
  EXPECT_FALSE(b.depleted());
}

TEST(Battery, DepletionClampsRemaining) {
  Battery b(10.0);
  b.consume(15.0);
  EXPECT_TRUE(b.depleted());
  EXPECT_DOUBLE_EQ(b.remaining_j(), 0.0);
  EXPECT_DOUBLE_EQ(b.level(), 0.0);
}

TEST(Battery, TxRxDrawFromRadioParams) {
  RadioParams radio;
  radio.tx_power_w = 0.1;
  radio.rx_circuit_power_w = 0.05;
  Battery b(100.0);
  b.consume_tx(radio, util::SimTime::seconds(10));
  EXPECT_DOUBLE_EQ(b.consumed_j(), 1.0);
  b.consume_rx(radio, util::SimTime::seconds(10));
  EXPECT_DOUBLE_EQ(b.consumed_j(), 1.5);
}

TEST(Battery, InvalidUseRejected) {
  EXPECT_THROW(Battery(0.0), std::invalid_argument);
  Battery b(1.0);
  EXPECT_THROW(b.consume(-1.0), std::invalid_argument);
}

}  // namespace
}  // namespace dtnic::net
