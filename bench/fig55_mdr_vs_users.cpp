/// Reproduces Figure 5.5: MDR vs number of users in a FIXED area (the paper
/// holds 5 km² and grows the population 500 -> 1500). Density rises with the
/// user count. Paper shape: both schemes' MDR grows with density, and the
/// gap between Incentive and ChitChat narrows, almost vanishing at 3x users
/// (more alternative paths per message).
///
/// Beyond the figure itself, --mega extends the sweep into the 10^5-node
/// regime: one short-horizon 100k-node point per scheme, with contact scans
/// sharded across --shard-threads intra-run shards (0 = one per hardware
/// thread; output is bit-identical for every value — see DESIGN.md
/// "Intra-run sharding"). Use --mega-nodes to vary the population.

#include <chrono>
#include <cmath>
#include <iostream>

#include "bench_common.h"

namespace {

/// One population point at fixed Table 5.1 density, short horizon, single
/// seed — the regime where a tick touches 10^5 nodes and the sharded scan
/// is the difference between tractable and not.
void run_mega_point(std::size_t nodes, std::size_t shard_threads) {
  using namespace dtnic;
  scenario::ScenarioConfig cfg = scenario::ScenarioConfig::scaled_defaults(
      nodes, /*sim_hours=*/0.05);  // 3 simulated minutes: ~180 full scans
  cfg.messages_per_node_per_hour = 0.5;
  cfg.sample_interval_s = 60.0;
  cfg.shard_threads = shard_threads;

  util::Table table({"scheme", "MDR", "contacts", "wall s"});
  for (const auto scheme : {scenario::Scheme::kIncentive, scenario::Scheme::kChitChat}) {
    cfg.scheme = scheme;
    const auto start = std::chrono::steady_clock::now();
    const scenario::ExperimentRunner runner(/*seeds=*/1);
    const auto agg = runner.run_serial(cfg);
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    table.add_row({scenario::scheme_name(scheme),
                   util::Table::cell(agg.mdr.mean(), 3),
                   std::to_string(agg.raw.front().contacts),
                   util::Table::cell(wall_s, 1)});
  }
  std::cout << "\n-- mega point: " << nodes << " nodes, "
            << (cfg.shard_threads == 0 ? std::string("auto")
                                       : std::to_string(cfg.shard_threads))
            << " shard thread(s), 0.05 h --\n";
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dtnic;
  util::Cli cli;
  cli.add_flag("mega", "false", "also run a 10^5-node point with sharded scans");
  cli.add_flag("mega-nodes", "100000", "population of the --mega point");
  cli.add_flag("shard-threads", "0",
               "intra-run scan shards (0 = one per hardware thread)");
  const bench::BenchScale scale = bench::resolve_scale(cli, argc, argv, argv[0]);
  bench::print_header("Figure 5.5: MDR vs number of users (fixed area)", scale);

  const scenario::SweepRunner sweep(scale.seeds);
  scenario::ScenarioConfig base = bench::base_config(scale);
  if (!scale.paper) {
    // Tripling the population in a fixed area is quadratically expensive;
    // start from a smaller world so the 3x point stays tractable.
    base.num_nodes = std::max<std::size_t>(40, scale.nodes / 2);
    base.sim_hours = std::min(3.0, scale.hours);
    base.messages_per_node_per_hour = 0.25;
    // Keep the 1x point at Table 5.1 density (100 nodes per km²).
    base.area_side_m = std::sqrt(static_cast<double>(base.num_nodes) /
                                 (500.0 / (2236.0 * 2236.0)));
  }
  // The figure sweep benefits from sharded scans too at large --nodes.
  base.shard_threads = static_cast<std::size_t>(cli.get_int("shard-threads"));

  std::vector<scenario::ScenarioConfig> points;
  for (const double mult : {1.0, 2.0, 3.0}) {  // paper: 500, 1000, 1500
    scenario::ScenarioConfig cfg = base;
    cfg.num_nodes = static_cast<std::size_t>(static_cast<double>(base.num_nodes) * mult);
    // area stays fixed at the base scale: density grows, as in the paper.
    cfg.scheme = scenario::Scheme::kIncentive;
    points.push_back(cfg);
    cfg.scheme = scenario::Scheme::kChitChat;
    points.push_back(cfg);
  }
  const auto results = sweep.run_all(points);

  util::Table table({"users", "MDR incentive", "MDR chitchat", "gap"});
  for (std::size_t i = 0; i < points.size(); i += 2) {
    const auto& incentive = results[i];
    const auto& chitchat = results[i + 1];
    table.add_row({std::to_string(points[i].num_nodes),
                   util::Table::cell(incentive.mdr.mean(), 3),
                   util::Table::cell(chitchat.mdr.mean(), 3),
                   util::Table::cell(chitchat.mdr.mean() - incentive.mdr.mean(), 3)});
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: MDR rises with density for both schemes; the\n"
               "chitchat-minus-incentive gap shrinks toward zero.\n";

  if (cli.get_bool("mega")) {
    run_mega_point(static_cast<std::size_t>(cli.get_int("mega-nodes")),
                   static_cast<std::size_t>(cli.get_int("shard-threads")));
  }
  return 0;
}
