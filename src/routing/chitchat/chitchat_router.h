#pragma once

#include <unordered_map>

#include "routing/chitchat/interest_table.h"
#include "routing/router.h"

/// \file chitchat_router.h
/// ChitChat routing (McGeehan, Lin & Madria, ICDCS 2016), the substrate the
/// paper's incentive scheme is built on. Per contact:
///   1. both sides decay their interest weights (Algorithm 1),
///   2. the decayed tables are exchanged,
///   3. both sides grow from the peer's table (Algorithm 2),
///   4. message routing: a message is handed to the peer as a *destination*
///      when the peer holds a direct interest in one of its keywords, and as
///      a *relay* when the peer's summed interest weight for the message
///      exceeds the sender's (S_v > S_u).

namespace dtnic::routing {

class ChitChatRouter : public Router {
 public:
  ChitChatRouter(const DestinationOracle& oracle, const chitchat::ChitChatParams& params,
                 util::SimTime contact_quantum);

  /// Seed the user's direct interests (subscription keywords).
  void set_direct_interests(const std::vector<msg::KeywordId>& interests, util::SimTime now);

  [[nodiscard]] chitchat::InterestTable& interests() { return table_; }
  [[nodiscard]] const chitchat::InterestTable& interests() const { return table_; }

  /// The ChitChatRouter attached to a host, or nullptr if the host runs a
  /// different (or no) routing scheme. Tag-dispatched (RouterKind), so the
  /// per-slot/per-neighbor hot paths pay a byte compare, not a dynamic_cast.
  [[nodiscard]] static ChitChatRouter* of(Host& host);

  void pre_exchange(Host& self, util::SimTime now,
                    std::span<Host* const> neighbors) override;
  void on_link_up(Host& self, Host& peer, util::SimTime now, double distance_m) override;
  [[nodiscard]] std::vector<ForwardPlan> plan(Host& self, Host& peer,
                                              util::SimTime now) override;
  void plan_into(Host& self, Host& peer, util::SimTime now,
                 std::vector<ForwardPlan>& out) override;

  /// Transport-neutral planning entry point: the peer is interrogated only
  /// through the Peer interface (has_seen, id, interest table, strength), so
  /// the same code plans against an in-process Host and against a
  /// live::RemotePeer built from a wire digest. plan_into forwards here; the
  /// incentive schemes override this to attach their token economics.
  /// Subject to the plan-side purity contract documented on Router::plan_into.
  virtual void plan_for_peer(Host& self, const Peer& peer, util::SimTime now,
                             std::vector<ForwardPlan>& out);

  /// Sum of this node's interest weights over the message's keywords (S_u).
  /// Memoized per (message id, annotation stamp, table generation): within
  /// one contact plan/promise round the sum is computed once per message,
  /// not once per query. The cached value is always bit-identical to a
  /// from-scratch sum_weights over the same keyword list.
  ///
  /// THREADING: logically const but structurally mutating (it populates
  /// strength_cache_). The staged exchange may query a router's strength
  /// from several links' plan tasks — the scenario serializes those callers
  /// by locking this node's host mutex (the lock set of a planned link
  /// covers both endpoints and their neighborhoods). Population order never
  /// changes the returned values, so the lock only prevents the structural
  /// data race, not a behavioral one.
  [[nodiscard]] double message_strength(const msg::Message& m) const;

 protected:
  /// Derived incentive schemes pass their own RouterKind tag.
  ChitChatRouter(const DestinationOracle& oracle, const chitchat::ChitChatParams& params,
                 util::SimTime contact_quantum, RouterKind kind);

  chitchat::ChitChatParams params_;
  chitchat::InterestTable table_;
  util::SimTime contact_quantum_;

 private:
  struct StrengthEntry {
    std::uint64_t stamp = 0;
    std::uint64_t generation = 0;
    double strength = 0.0;
  };
  /// Entries beyond this are pruned (stale generations first); bounds the
  /// cache under long runs where message ids keep growing.
  static constexpr std::size_t kStrengthCacheCap = 4096;

  mutable std::unordered_map<msg::MessageId, StrengthEntry> strength_cache_;
  /// Scratch for pre_exchange: connected neighbors' interest tables.
  std::vector<const chitchat::InterestTable*> neighbor_tables_;
};

}  // namespace dtnic::routing
