#include <gtest/gtest.h>

#include "core/incentive_router.h"
#include "core/operator_api.h"
#include "test_helpers.h"

namespace dtnic::core {
namespace {

using routing::AcceptDecision;
using routing::ForwardPlan;
using routing::Host;
using routing::TransferRole;
using test::MicroWorld;
using util::NodeId;
using util::SimTime;

constexpr auto kT0 = SimTime::zero();

class IncentiveRouterFixture : public ::testing::Test {
 protected:
  IncentiveRouterFixture() : factory(w.keywords) {
    pool = w.keywords.make_pool(40);
    world.keyword_pool = &pool;
    world.drm.rating_noise_sd = 0.0;  // deterministic judgements
    world.incentive.initial_tokens = 100.0;
    chitchat.growth_rate = 0.05;
    chitchat.decay_beta = 0.01;
  }

  Host& make_node(const std::vector<std::string>& interests,
                  BehaviorProfile profile = {}, std::uint64_t rng_seed = 1) {
    Host& h = w.add_host();
    auto router = std::make_unique<IncentiveRouter>(w.oracle, chitchat, SimTime::seconds(5),
                                                    &world, profile, util::Rng(rng_seed));
    std::vector<msg::KeywordId> kws;
    for (const auto& name : interests) kws.push_back(w.keywords.intern(name));
    router->set_direct_interests(kws, kT0);
    w.oracle.set_interests(h.id(), kws);
    h.set_router(std::move(router));
    return h;
  }

  msg::Message& seed_message(Host& src, const std::vector<std::string>& tags,
                             msg::Priority priority = msg::Priority::kMedium,
                             double quality = 0.8) {
    auto m = factory.make(src.id(), tags, kT0, test::kMB, priority, quality);
    const auto id = m.id();
    src.mark_seen(id);
    (void)src.buffer().add(std::move(m), true);
    return *src.buffer().find_mutable(id);
  }

  static IncentiveRouter& router_of(Host& h) {
    IncentiveRouter* r = IncentiveRouter::of(h);
    EXPECT_NE(r, nullptr);
    return *r;
  }

  MicroWorld w;
  test::MessageFactory factory;
  std::vector<msg::KeywordId> pool;
  IncentiveWorld world;
  routing::chitchat::ChitChatParams chitchat;
};

TEST_F(IncentiveRouterFixture, RequiresWorld) {
  EXPECT_THROW(IncentiveRouter(w.oracle, chitchat, SimTime::seconds(5), nullptr, {},
                               util::Rng(1)),
               std::invalid_argument);
}

TEST_F(IncentiveRouterFixture, StartsWithInitialTokens) {
  Host& a = make_node({"x"});
  EXPECT_DOUBLE_EQ(router_of(a).ledger().balance(), 100.0);
}

TEST_F(IncentiveRouterFixture, PlansCarryPromises) {
  Host& src = make_node({"a"});
  Host& dest = make_node({"flood"});
  seed_message(src, {"flood"});
  w.link_up(src, dest, kT0);
  const auto plans = src.router().plan(src, dest, kT0);
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_EQ(plans[0].role, TransferRole::kDestination);
  EXPECT_GT(plans[0].promise, 0.0);
  EXPECT_LE(plans[0].promise, world.incentive.max_incentive);
}

TEST_F(IncentiveRouterFixture, DestinationPaysDelivererOnReceive) {
  Host& src = make_node({"a"});
  Host& dest = make_node({"flood"});
  seed_message(src, {"flood"});
  w.link_up(src, dest, kT0);
  ASSERT_EQ(w.exchange(src, dest, kT0), 1);
  ASSERT_EQ(w.events.payments.size(), 1u);
  EXPECT_EQ(w.events.payments[0].payer, dest.id());
  EXPECT_EQ(w.events.payments[0].payee, src.id());
  EXPECT_GT(w.events.payments[0].amount, 0.0);
  EXPECT_LT(router_of(dest).ledger().balance(), 100.0);
  EXPECT_GT(router_of(src).ledger().balance(), 100.0);
  // Token conservation across the pair.
  EXPECT_NEAR(router_of(src).ledger().balance() + router_of(dest).ledger().balance(), 200.0,
              1e-9);
}

TEST_F(IncentiveRouterFixture, FirstDelivererOnlyPaidOnce) {
  Host& src = make_node({"a"});
  Host& dest = make_node({"flood"});
  seed_message(src, {"flood"});
  w.link_up(src, dest, kT0);
  ASSERT_EQ(w.exchange(src, dest, kT0), 1);
  // Second copy (same id) refused as duplicate: no second payment possible.
  EXPECT_EQ(w.exchange(src, dest, kT0), 0);
  EXPECT_EQ(w.events.payments.size(), 1u);
}

TEST_F(IncentiveRouterFixture, BrokeDestinationRefuses) {
  world.incentive.initial_tokens = 0.0;
  Host& src = make_node({"a"});
  Host& dest = make_node({"flood"});
  seed_message(src, {"flood"});
  w.link_up(src, dest, kT0);
  const auto plans = src.router().plan(src, dest, kT0);
  ASSERT_EQ(plans.size(), 1u);
  ASSERT_GT(plans[0].promise, 0.0);
  EXPECT_EQ(dest.router().accept(dest, src, *src.buffer().find(plans[0].message), plans[0],
                                 kT0),
            AcceptDecision::kNoTokens);
}

TEST_F(IncentiveRouterFixture, UntrustedSenderRefused) {
  Host& src = make_node({"a"});
  Host& dest = make_node({"flood"});
  // Poison dest's opinion of src below the trust threshold (2.0).
  router_of(dest).ratings().add_message_rating(src.id(), 0.5);
  seed_message(src, {"flood"});
  w.link_up(src, dest, kT0);
  const auto plans = src.router().plan(src, dest, kT0);
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_EQ(dest.router().accept(dest, src, *src.buffer().find(plans[0].message), plans[0],
                                 kT0),
            AcceptDecision::kUntrustedSender);
}

TEST_F(IncentiveRouterFixture, ReputationExchangeSpreadsOpinions) {
  Host& a = make_node({"a"});
  Host& b = make_node({"b"});
  router_of(a).ratings().add_message_rating(NodeId(77), 1.0);
  w.link_up(a, b, kT0);
  // b had no opinion on 77: adopts a's.
  EXPECT_DOUBLE_EQ(router_of(b).ratings().rating_of(NodeId(77)), 1.0);
}

TEST_F(IncentiveRouterFixture, OpinionsAboutThePeerItselfNotMerged) {
  Host& a = make_node({"a"});
  Host& b = make_node({"b"});
  // a holds a terrible first-hand opinion of b; the exchange must not push
  // that opinion INTO b's own store (b would distrust... itself aside, the
  // merge of "about you" opinions is skipped entirely).
  router_of(a).ratings().add_message_rating(b.id(), 0.5);
  w.link_up(a, b, kT0);
  EXPECT_FALSE(router_of(b).ratings().knows(b.id()));
  // Third-party opinions do flow the other way on the same contact.
  router_of(b).ratings().add_message_rating(NodeId(55), 1.5);
  w.link_up(a, b, SimTime::seconds(10));
  EXPECT_TRUE(router_of(a).ratings().knows(NodeId(55)));
}

TEST_F(IncentiveRouterFixture, SelfOpinionNotMerged) {
  Host& a = make_node({"a"});
  Host& b = make_node({"b"});
  router_of(a).ratings().add_message_rating(b.id(), 5.0);  // a praises b
  w.link_up(a, b, kT0);
  // b must not absorb opinions about itself.
  EXPECT_FALSE(router_of(b).ratings().knows(b.id()));
}

TEST_F(IncentiveRouterFixture, DestinationRatesSourceOnDelivery) {
  Host& src = make_node({"a"});
  Host& dest = make_node({"flood"});
  seed_message(src, {"flood"}, msg::Priority::kMedium, 0.8);
  w.link_up(src, dest, kT0);
  ASSERT_EQ(w.exchange(src, dest, kT0), 1);
  // Deterministic judgement: all tags truthful, q=0.8, confidence 0.9:
  // R = 0.5*5*0.9 + 0.5*4 = 4.25.
  EXPECT_TRUE(router_of(dest).ratings().knows(src.id()));
  EXPECT_NEAR(router_of(dest).ratings().rating_of(src.id()), 4.25, 1e-9);
}

TEST_F(IncentiveRouterFixture, MaliciousRelayGetsPoorRatingDownstream) {
  BehaviorProfile malicious;
  malicious.type = BehaviorType::kMalicious;
  malicious.malicious_tags = 3;

  Host& src = make_node({"a"});
  Host& bad = make_node({"carrier"}, malicious, /*rng_seed=*/7);
  Host& dest = make_node({"flood"});

  seed_message(src, {"flood"});
  // src -> bad as relay: bad has transient interest via link_up growth.
  w.link_up(src, bad, kT0);
  w.link_up(bad, dest, kT0);  // gives bad the TSR of dest too
  // Force-relay: construct the relay offer directly (interest dynamics are
  // exercised elsewhere; here we test the DRM consequences).
  const msg::Message* m = src.buffer().find(msg::MessageId(0));
  ASSERT_NE(m, nullptr);
  ForwardPlan relay_plan{m->id(), TransferRole::kRelay};
  msg::Message copy = *m;
  copy.record_hop(bad.id(), kT0);
  bad.router().on_received(bad, src, std::move(copy), relay_plan, kT0);

  // The malicious router planted irrelevant tags on its stored copy.
  const msg::Message* at_bad = bad.buffer().find(m->id());
  ASSERT_NE(at_bad, nullptr);
  const auto planted = at_bad->annotations_by(bad.id());
  ASSERT_EQ(planted.size(), 3u);
  for (const auto& a : planted) EXPECT_FALSE(a.truthful);

  // Deliver to the destination; it judges the planted tags.
  ForwardPlan dest_plan{m->id(), TransferRole::kDestination, 2.0, 0.0};
  msg::Message final_copy = *at_bad;
  final_copy.record_hop(dest.id(), kT0);
  dest.router().on_received(dest, bad, std::move(final_copy), dest_plan, kT0);
  EXPECT_TRUE(router_of(dest).ratings().knows(bad.id()));
  EXPECT_LT(router_of(dest).ratings().rating_of(bad.id()), 1.0);
}

TEST_F(IncentiveRouterFixture, HonestEnrichmentAddsTruthfulTags) {
  BehaviorProfile eager;
  eager.enrich_probability = 1.0;
  eager.honest_max_tags = 2;

  Host& src = make_node({"a"});
  Host& relay = make_node({"carrier"}, eager, /*rng_seed=*/3);

  // The message knows more truth than the source tagged.
  auto m = factory.make(src.id(), {"flood"});
  std::vector<msg::KeywordId> truth = m.true_keywords();
  truth.push_back(w.keywords.intern("rescue"));
  truth.push_back(w.keywords.intern("bridge"));
  m.set_true_keywords(truth);
  const auto id = m.id();
  src.mark_seen(id);
  (void)src.buffer().add(std::move(m), true);

  ForwardPlan relay_plan{id, TransferRole::kRelay};
  msg::Message copy = *src.buffer().find(id);
  copy.record_hop(relay.id(), kT0);
  relay.router().on_received(relay, src, std::move(copy), relay_plan, kT0);

  const msg::Message* stored = relay.buffer().find(id);
  ASSERT_NE(stored, nullptr);
  const auto added = stored->annotations_by(relay.id());
  EXPECT_EQ(added.size(), 2u);
  for (const auto& a : added) EXPECT_TRUE(a.truthful);
}

TEST_F(IncentiveRouterFixture, EnrichmentDisabledWorldwide) {
  world.enrichment_enabled = false;
  BehaviorProfile eager;
  eager.enrich_probability = 1.0;
  Host& src = make_node({"a"});
  Host& relay = make_node({"carrier"}, eager);
  auto& m = seed_message(src, {"flood"});
  ForwardPlan relay_plan{m.id(), TransferRole::kRelay};
  msg::Message copy = m;
  copy.record_hop(relay.id(), kT0);
  relay.router().on_received(relay, src, std::move(copy), relay_plan, kT0);
  EXPECT_TRUE(relay.buffer().find(m.id())->annotations_by(relay.id()).empty());
}

TEST_F(IncentiveRouterFixture, TagRewardIncreasesAward) {
  // Deliverer hands over a copy whose en-route tags match the destination's
  // interests: the award exceeds the bare promise payment.
  Host& carrier1 = make_node({"c1"});
  Host& carrier2 = make_node({"c2"});
  Host& dest = make_node({"flood", "rescue"});

  auto plain = factory.make(NodeId(0), {"flood"});
  const auto id1 = plain.id();
  carrier1.mark_seen(id1);
  (void)carrier1.buffer().add(std::move(plain), true);

  auto enriched = factory.make(NodeId(1), {"flood"});
  const auto id2 = enriched.id();
  // A relay (node 0) added a truthful tag the destination cares about.
  std::vector<msg::KeywordId> truth = enriched.true_keywords();
  const auto rescue = w.keywords.intern("rescue");
  truth.push_back(rescue);
  enriched.set_true_keywords(truth);
  enriched.annotate({rescue, carrier1.id(), true});
  carrier2.mark_seen(id2);
  (void)carrier2.buffer().add(std::move(enriched), true);

  const double promise = 2.0;
  ForwardPlan plan1{id1, TransferRole::kDestination, promise, 0.0};
  msg::Message c1 = *carrier1.buffer().find(id1);
  c1.record_hop(dest.id(), kT0);
  dest.router().on_received(dest, carrier1, std::move(c1), plan1, kT0);
  const double paid_plain = w.events.payments.back().amount;

  ForwardPlan plan2{id2, TransferRole::kDestination, promise, 0.0};
  msg::Message c2 = *carrier2.buffer().find(id2);
  c2.record_hop(dest.id(), kT0);
  dest.router().on_received(dest, carrier2, std::move(c2), plan2, kT0);
  const double paid_enriched = w.events.payments.back().amount;

  EXPECT_GT(paid_enriched, paid_plain);
}

TEST_F(IncentiveRouterFixture, RelayPrepaysAboveThreshold) {
  Host& src = make_node({"a"});
  Host& eager_relay = make_node({"flood2"});
  // Pump the relay's weight for the message keyword close to 1 by repeated
  // growth from a node with the same direct interest.
  Host& teacher = make_node({"flood"});
  auto* relay_router = routing::ChitChatRouter::of(eager_relay);
  for (int i = 0; i < 400; ++i) {
    relay_router->interests().grow_from(
        routing::ChitChatRouter::of(teacher)->interests(), kT0, 10.0);
  }
  const auto flood = w.keywords.find("flood");
  ASSERT_GT(relay_router->interests().weight(flood), 0.8);

  seed_message(src, {"flood"});
  w.link_up(src, eager_relay, kT0);
  const auto plans = src.router().plan(src, eager_relay, kT0);
  ASSERT_FALSE(plans.empty());
  ASSERT_EQ(plans[0].role, TransferRole::kRelay);
  EXPECT_GT(plans[0].prepay, 0.0);
  EXPECT_NEAR(plans[0].prepay, world.incentive.relay_prepay_fraction * plans[0].promise,
              1e-12);

  // On receive, the relay pays the pre-payment to the sender.
  ASSERT_EQ(w.exchange(src, eager_relay, kT0), 1);
  ASSERT_FALSE(w.events.payments.empty());
  EXPECT_EQ(w.events.payments.back().payer, eager_relay.id());
  EXPECT_EQ(w.events.payments.back().payee, src.id());
  EXPECT_NEAR(w.events.payments.back().amount, plans[0].prepay, 1e-12);
}

TEST_F(IncentiveRouterFixture, PlansOrderedByPriorityThenQuality) {
  Host& src = make_node({"a"});
  Host& dest = make_node({"flood"});
  seed_message(src, {"flood"}, msg::Priority::kLow, 0.9);      // id 0
  seed_message(src, {"flood"}, msg::Priority::kHigh, 0.3);     // id 1
  seed_message(src, {"flood"}, msg::Priority::kMedium, 0.7);   // id 2
  seed_message(src, {"flood"}, msg::Priority::kHigh, 0.8);     // id 3
  w.link_up(src, dest, kT0);
  const auto plans = src.router().plan(src, dest, kT0);
  ASSERT_EQ(plans.size(), 4u);
  EXPECT_EQ(plans[0].message, msg::MessageId(3));  // high, q=.8
  EXPECT_EQ(plans[1].message, msg::MessageId(1));  // high, q=.3
  EXPECT_EQ(plans[2].message, msg::MessageId(2));  // medium
  EXPECT_EQ(plans[3].message, msg::MessageId(0));  // low
}

TEST_F(IncentiveRouterFixture, ComputePromiseSpecialCaseHighPriorityToOfficer) {
  Host& sergeant = make_node({"a"});
  sergeant.set_rank(1);
  Host& soldier = make_node({"b"});
  soldier.set_rank(2);
  // Message whose keywords the soldier has no strength for, high priority.
  seed_message(sergeant, {"secret"}, msg::Priority::kHigh, 0.9);
  const double promise = router_of(sergeant).compute_promise(
      sergeant, soldier, *sergeant.buffer().find(msg::MessageId(0)));
  EXPECT_DOUBLE_EQ(promise, world.incentive.max_incentive);
}

TEST_F(IncentiveRouterFixture, AwardScaledByDelivererReputation) {
  Host& carrier = make_node({"c"});
  Host& dest = make_node({"flood"});
  // Destination distrusts nobody yet but rates carrier poorly-ish (above the
  // trust threshold so the transfer is still accepted).
  router_of(dest).ratings().add_message_rating(carrier.id(), 2.5);

  auto m = factory.make(NodeId(5), {"flood"});
  const auto id = m.id();
  carrier.mark_seen(id);
  (void)carrier.buffer().add(std::move(m), true);

  ForwardPlan plan{id, TransferRole::kDestination, 4.0, 0.0};
  msg::Message copy = *carrier.buffer().find(id);
  copy.record_hop(dest.id(), kT0);
  dest.router().on_received(dest, carrier, std::move(copy), plan, kT0);
  ASSERT_EQ(w.events.payments.size(), 1u);
  // factor = rating/5 = 0.5 (no path ratings), award = 0.5 * 4.0.
  EXPECT_NEAR(w.events.payments[0].amount, 2.0, 1e-9);
}

TEST_F(IncentiveRouterFixture, LinkDownForgetsContactDistance) {
  Host& a = make_node({"a"});
  Host& b = make_node({"flood"});
  w.link_up(a, b, kT0, /*distance=*/10.0);
  a.router().on_link_down(a, b, kT0);
  // No crash and promises still computable (falls back to range).
  seed_message(a, {"flood"});
  EXPECT_GT(router_of(a).compute_promise(a, b, *a.buffer().find(msg::MessageId(0))), 0.0);
}

}  // namespace
}  // namespace dtnic::core
