#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <new>
#include <unordered_map>
#include <utility>

/// \file arena.h
/// Size-class pool allocator for the per-tick hot path. Small fixed-size
/// blocks (message cores, buffer list/map nodes, event records) are carved
/// from 64 KiB bump chunks and recycled through per-thread free lists, so the
/// steady state of a scenario run never touches the global heap: a "free" is
/// one pointer push, an "allocate" one pointer pop.
///
/// Ownership model: chunks are owned by a process-lifetime registry that is
/// intentionally leaked (see arena.cpp), never by the thread that happened to
/// carve them. That makes two things safe by construction: (1) a block may be
/// freed on a different thread than the one that allocated it — it simply
/// joins the freeing thread's list; (2) thread-local free lists may outlive
/// any particular allocation site, so static-destruction order can never
/// leave a dangling chunk. Per-object frees therefore just recycle; the
/// backing memory is released in one batch at process teardown.
///
/// Sanitizer builds (DTNIC_SANITIZE=thread/address) compile arena.cpp with
/// DTNIC_ARENA_DISABLE, turning every call into plain operator new/delete so
/// ASan/LSan/TSan see every object boundary. `enabled()` reports which mode
/// is live; the zero-allocation probe test keys off it.

namespace dtnic::util::arena {

/// Largest block size served from the pool; bigger requests pass through to
/// operator new (tracked in stats so tests can spot unexpected passthrough).
inline constexpr std::size_t kMaxPooledBytes = 512;
/// Size-class granularity; also the alignment every pooled block gets.
inline constexpr std::size_t kClassBytes = 16;
/// Bump-chunk size carved into blocks on free-list miss.
inline constexpr std::size_t kChunkBytes = 64 * 1024;

/// Allocate \p bytes (pooled when <= kMaxPooledBytes, else operator new).
[[nodiscard]] void* allocate(std::size_t bytes);
/// Return a block obtained from allocate() with the same \p bytes.
void deallocate(void* p, std::size_t bytes) noexcept;

/// False when the build passes through to operator new (sanitizer builds).
[[nodiscard]] bool enabled() noexcept;

/// Calling-thread counters; cheap enough to read in test assertions.
struct ThreadStats {
  std::uint64_t pool_allocs = 0;    ///< blocks served from a free list or chunk
  std::uint64_t pool_frees = 0;     ///< blocks pushed back to a free list
  std::uint64_t chunk_allocs = 0;   ///< 64 KiB chunks requested from the heap
  std::uint64_t passthrough = 0;    ///< requests above kMaxPooledBytes
};
[[nodiscard]] ThreadStats thread_stats() noexcept;

/// Minimal std allocator over the arena for node-based containers
/// (std::list / std::unordered_map nodes, std::allocate_shared control
/// blocks) and small spill arrays. Everything routes through
/// arena::allocate, which already passes requests above kMaxPooledBytes —
/// large vector growth, big hash bucket tables — to plain operator new.
/// Those amortize and stabilize on their own; small blocks churn per tick
/// and must recycle.
template <typename T>
struct PoolAllocator {
  using value_type = T;

  PoolAllocator() noexcept = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) noexcept {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] T* allocate(std::size_t n) {
    static_assert(alignof(T) <= kClassBytes, "pooled blocks are 16-byte aligned");
    return static_cast<T*>(arena::allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept { arena::deallocate(p, n * sizeof(T)); }
};

/// unordered_map whose nodes (and small bucket tables) recycle through the
/// arena — the default shape for per-tick churn maps on the hot path.
template <typename K, typename V>
using PooledMap = std::unordered_map<K, V, std::hash<K>, std::equal_to<K>,
                                     PoolAllocator<std::pair<const K, V>>>;

// All PoolAllocator instances share the same (thread-local) pool, so any two
// compare equal regardless of value type.
template <typename T, typename U>
bool operator==(const PoolAllocator<T>&, const PoolAllocator<U>&) noexcept {
  return true;
}
template <typename T, typename U>
bool operator!=(const PoolAllocator<T>&, const PoolAllocator<U>&) noexcept {
  return false;
}

}  // namespace dtnic::util::arena
