#include "net/spatial_grid.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "util/assert.h"

namespace dtnic::net {

namespace {

[[nodiscard]] std::uint64_t pair_key(const SpatialGrid::Pair& p) {
  return (static_cast<std::uint64_t>(p.a.value()) << 32) | p.b.value();
}

using Variant = SpatialGrid::ScanVariant;

[[nodiscard]] bool variant_supported(Variant v) {
  switch (v) {
    case Variant::kScalar:
      return true;
#ifdef DTNIC_SIMD_X86
    case Variant::kSse2:
      return true;  // baseline x86-64
    case Variant::kAvx2:
      return __builtin_cpu_supports("avx2");
#else
    case Variant::kSse2:
    case Variant::kAvx2:
      return false;
#endif
  }
  return false;
}

[[nodiscard]] Variant best_supported() {
  if (variant_supported(Variant::kAvx2)) return Variant::kAvx2;
  if (variant_supported(Variant::kSse2)) return Variant::kSse2;
  return Variant::kScalar;
}

/// Process-wide active variant; -1 until first resolved. Resolution honors
/// DTNIC_SCAN_VARIANT (scalar|sse2|avx2|auto) and falls back to the best
/// supported kernel on unknown or unsupported values.
std::atomic<int> g_scan_variant{-1};

[[nodiscard]] Variant resolve_variant() {
  int v = g_scan_variant.load(std::memory_order_relaxed);
  if (v >= 0) return static_cast<Variant>(v);
  Variant chosen = best_supported();
  if (const char* env = std::getenv("DTNIC_SCAN_VARIANT")) {
    Variant wanted = chosen;
    if (std::strcmp(env, "scalar") == 0) wanted = Variant::kScalar;
    else if (std::strcmp(env, "sse2") == 0) wanted = Variant::kSse2;
    else if (std::strcmp(env, "avx2") == 0) wanted = Variant::kAvx2;
    if (variant_supported(wanted)) chosen = wanted;
  }
  g_scan_variant.store(static_cast<int>(chosen), std::memory_order_relaxed);
  return chosen;
}

}  // namespace

const SpatialGrid::ScanBlock SpatialGrid::kEmptyBlock{};

SpatialGrid::ScanVariant SpatialGrid::scan_variant() { return resolve_variant(); }

bool SpatialGrid::set_scan_variant(ScanVariant v) {
  if (!variant_supported(v)) return false;
  g_scan_variant.store(static_cast<int>(v), std::memory_order_relaxed);
  return true;
}

const char* SpatialGrid::scan_variant_name(ScanVariant v) {
  switch (v) {
    case ScanVariant::kScalar:
      return "scalar";
    case ScanVariant::kSse2:
      return "sse2";
    case ScanVariant::kAvx2:
      return "avx2";
  }
  return "unknown";
}

std::vector<SpatialGrid::ScanVariant> SpatialGrid::supported_scan_variants() {
  std::vector<ScanVariant> out;
  for (const Variant v : {Variant::kScalar, Variant::kSse2, Variant::kAvx2}) {
    if (variant_supported(v)) out.push_back(v);
  }
  return out;
}

SpatialGrid::SpatialGrid(double cell_size)
    : cell_size_(cell_size), inv_cell_size_(1.0 / cell_size) {
  DTNIC_REQUIRE_MSG(cell_size > 0.0, "cell size must be positive");
}

void SpatialGrid::clear() {
  pool_.clear();
  blocks_.clear();
  counts_.clear();
  links_.clear();
  ids_.clear();
  free_cells_.clear();
  cell_index_.clear();
  slots_.clear();
  xs_.clear();
  ys_.clear();
  slot_of_.clear();
  max_id_ = 0;
}

/// Sort pairs by (a, b) and finalize distances. The kernels emit d² (a sqrt
/// per emission would serialize their decode path through the unpipelined
/// divider); the √ happens here, folded into the scatter pass so it rides
/// along with stores the sort performs anyway instead of costing a separate
/// read-modify-write sweep of the whole pair vector. Every kernel variant
/// funnels through this one scalar std::sqrt, so distances are bit-identical
/// across variants by construction.
///
/// Simulations use small dense node ids, so the common case is one
/// id-indexed counting pass (the bucket array stays L1-resident) followed by
/// insertion sort of the tiny equal-a runs — far cheaper than a comparison
/// sort of the effectively random pool-order input. Sparse id spaces fall
/// back to std::sort on the packed key.
void SpatialGrid::sort_pairs(std::vector<Pair>& v, std::vector<Pair>& scratch,
                             std::vector<std::uint32_t>& offsets) const {
  const std::size_t n = v.size();
  const std::size_t buckets = static_cast<std::size_t>(max_id_) + 2;
  if (n < 2 || n <= 64 || buckets > std::max<std::size_t>(4096, 16 * slots_.size())) {
    for (Pair& p : v) p.distance_m = std::sqrt(p.distance_m);
    if (n < 2) return;
    std::sort(v.begin(), v.end(),
              [](const Pair& lhs, const Pair& rhs) { return pair_key(lhs) < pair_key(rhs); });
    return;
  }
  offsets.assign(buckets, 0);
  for (const Pair& p : v) ++offsets[p.a.value() + 1];
  for (std::size_t i = 1; i < buckets; ++i) offsets[i] += offsets[i - 1];
  scratch.resize(n);
  for (const Pair& p : v) {
    scratch[offsets[p.a.value()]++] = Pair{p.a, p.b, std::sqrt(p.distance_m)};
  }
  // After the scatter, offsets[a] is the end of a's run; order each run by
  // b (runs hold the handful of neighbors one node has in range).
  std::size_t begin = 0;
  for (std::size_t a = 0; a + 1 < buckets; ++a) {
    const std::size_t end = offsets[a];
    for (std::size_t i = begin + 1; i < end; ++i) {
      const Pair p = scratch[i];
      std::size_t j = i;
      while (j > begin && scratch[j - 1].b > p.b) {
        scratch[j] = scratch[j - 1];
        --j;
      }
      scratch[j] = p;
    }
    begin = end;
  }
  v.swap(scratch);
}

std::uint32_t SpatialGrid::cell_at(std::int32_t cx, std::int32_t cy) {
  const auto [it, created] = cell_index_.try_emplace(key_of(cx, cy), 0);
  if (!created) return it->second;
  std::uint32_t index;
  if (!free_cells_.empty()) {
    index = free_cells_.back();
    free_cells_.pop_back();
  } else {
    index = static_cast<std::uint32_t>(pool_.size());
    pool_.emplace_back();
    blocks_.emplace_back();
    counts_.push_back(0);
    links_.emplace_back();
    ids_.resize(ids_.size() + kInline, 0);
  }
  it->second = index;
  Cell& cell = pool_[index];
  CellLinks& links = links_[index];
  cell.cx = cx;
  cell.cy = cy;
  links.cx = cx;
  counts_[index] = 0;
  // Lane invariant: a cell entering the free list had every entry removed,
  // and each removal restored the vacated lane to +inf — so both fresh and
  // recycled blocks arrive here with all-dead lanes already.
  // Link the half-neighborhood both ways so pair enumeration and pruning
  // can walk pool indices instead of doing hash lookups per cell per scan.
  for (int k = 0; k < 4; ++k) {
    links.half[k] = -1;
    cell.rev[k] = -1;
    if (const auto fwd = cell_index_.find(key_of(cx + kHalf[k][0], cy + kHalf[k][1]));
        fwd != cell_index_.end()) {
      links.half[k] = static_cast<std::int32_t>(fwd->second);
      pool_[fwd->second].rev[k] = static_cast<std::int32_t>(index);
    }
    if (const auto rev = cell_index_.find(key_of(cx - kHalf[k][0], cy - kHalf[k][1]));
        rev != cell_index_.end()) {
      cell.rev[k] = static_cast<std::int32_t>(rev->second);
      links_[rev->second].half[k] = static_cast<std::int32_t>(index);
    }
  }
  return index;
}

void SpatialGrid::place(std::uint32_t slot, std::uint32_t cell_index) {
  Cell& cell = pool_[cell_index];
  ScanBlock& block = blocks_[cell_index];
  const std::uint32_t count = counts_[cell_index];
  Slot& s = slots_[slot];
  s.cell = static_cast<std::int32_t>(cell_index);
  s.index = count;
  s.cx = cell.cx;
  s.cy = cell.cy;
  if (count < kInline) {
    block.x[count] = xs_[slot];
    block.y[count] = ys_[slot];
    ids_[cell_index * kInline + count] = s.id.value();
    cell.slot[count] = slot;
  } else {
    cell.overflow.push_back(Entry{s.id, slot});
  }
  counts_[cell_index] = count + 1;
}

void SpatialGrid::unplace(std::uint32_t slot) {
  const std::int32_t cell_index = slots_[slot].cell;
  Cell& cell = pool_[static_cast<std::uint32_t>(cell_index)];
  ScanBlock& block = blocks_[static_cast<std::uint32_t>(cell_index)];
  const std::uint32_t index = slots_[slot].index;
  const std::uint32_t last = counts_[static_cast<std::uint32_t>(cell_index)] - 1;
  if (index != last) {
    // Swap-remove: the last entry (inline lane or overflow) fills the hole.
    Entry moved;
    if (last < kInline) {
      moved = Entry{util::NodeId(ids_[static_cast<std::uint32_t>(cell_index) * kInline + last]),
                    cell.slot[last]};
    } else {
      moved = cell.overflow.back();
    }
    if (index < kInline) {
      block.x[index] = xs_[moved.slot];
      block.y[index] = ys_[moved.slot];
      ids_[static_cast<std::uint32_t>(cell_index) * kInline + index] = moved.id.value();
      cell.slot[index] = moved.slot;
    } else {
      cell.overflow[index - kInline] = moved;
    }
    slots_[moved.slot].index = index;
  }
  if (last >= kInline) cell.overflow.pop_back();
  counts_[static_cast<std::uint32_t>(cell_index)] = last;
  if (last < kInline) {
    // Restore the lane invariant for the vacated inline lane.
    block.x[last] = kLaneEmpty;
    block.y[last] = kLaneEmpty;
  }
  if (last == 0) {
    // Prune: unlink the whole neighborhood through the stored reciprocal
    // indices, then recycle the pool entry.
    CellLinks& links = links_[static_cast<std::uint32_t>(cell_index)];
    for (int k = 0; k < 4; ++k) {
      if (links.half[k] >= 0) pool_[static_cast<std::uint32_t>(links.half[k])].rev[k] = -1;
      if (cell.rev[k] >= 0) links_[static_cast<std::uint32_t>(cell.rev[k])].half[k] = -1;
    }
    cell_index_.erase(key_of(cell.cx, cell.cy));
    free_cells_.push_back(static_cast<std::uint32_t>(cell_index));
  }
}

std::size_t SpatialGrid::insert(util::NodeId id, util::Vec2 position) {
  DTNIC_REQUIRE(id.valid());
  DTNIC_REQUIRE_MSG(!slot_of_.count(id), "node already in grid");
  const auto slot = static_cast<std::uint32_t>(slots_.size());
  slots_.push_back(Slot{id, -1, 0, 0, 0});
  xs_.push_back(position.x);
  ys_.push_back(position.y);
  slot_of_.emplace(id, slot);
  max_id_ = std::max(max_id_, id.value());
  place(slot, cell_at(coord(position.x), coord(position.y)));
  return slot;
}

void SpatialGrid::update(util::NodeId id, util::Vec2 position) {
  const auto it = slot_of_.find(id);
  DTNIC_REQUIRE_MSG(it != slot_of_.end(), "node not in grid");
  update_slot(it->second, position);
}

void SpatialGrid::commit_move(std::size_t slot) {
  const util::Vec2 position{xs_[slot], ys_[slot]};
  unplace(static_cast<std::uint32_t>(slot));
  place(static_cast<std::uint32_t>(slot), cell_at(coord(position.x), coord(position.y)));
}

void SpatialGrid::neighbors_of(util::Vec2 center, double radius, util::NodeId self,
                               std::vector<util::NodeId>& out) const {
  out.clear();
  const double r2 = radius * radius;
  const std::int32_t cx = coord(center.x);
  const std::int32_t cy = coord(center.y);
  for (int dx = -1; dx <= 1; ++dx) {
    for (int dy = -1; dy <= 1; ++dy) {
      const auto it = cell_index_.find(key_of(cx + dx, cy + dy));
      if (it == cell_index_.end()) continue;
      const Cell& cell = pool_[it->second];
      const ScanBlock& block = blocks_[it->second];
      for (std::uint32_t i = 0; i < counts_[it->second]; ++i) {
        const bool inline_lane = i < kInline;
        const util::NodeId id = inline_lane ? util::NodeId(ids_[it->second * kInline + i])
                                            : cell.overflow[i - kInline].id;
        if (id == self) continue;
        const double px = inline_lane ? block.x[i] : xs_[cell.overflow[i - kInline].slot];
        const double py = inline_lane ? block.y[i] : ys_[cell.overflow[i - kInline].slot];
        const double ddx = center.x - px;
        const double ddy = center.y - py;
        if (ddx * ddx + ddy * ddy <= r2) out.push_back(id);
      }
    }
  }
}

void SpatialGrid::scan_pairs(double radius, std::uint32_t shard, std::uint32_t shard_count,
                             std::vector<Pair>& out) const {
  DTNIC_REQUIRE_MSG(radius <= cell_size_, "query radius exceeds grid cell size");
  out.clear();
  const double r2 = radius * radius;
  const ScanView view{blocks_.data(), counts_.data(), links_.data(), ids_.data(),
                      pool_.data(),   pool_.size(),   xs_.data(),    ys_.data()};
  switch (resolve_variant()) {
#ifdef DTNIC_SIMD_X86
    case Variant::kAvx2:
      scan_kernel_avx2(view, r2, shard, shard_count, out);
      return;
    case Variant::kSse2:
      scan_kernel_sse2(view, r2, shard, shard_count, out);
      return;
#endif
    default:
      scan_kernel_scalar(view, r2, shard, shard_count, out);
      return;
  }
}

void SpatialGrid::pairs_within(double radius, std::vector<Pair>& out) const {
  scan_pairs(radius, 0, 0, out);
  // Pool order leaks into the emission order (and the SIMD kernels emit in a
  // different within-cell order than the scalar one); sorting by (a, b)
  // makes the output — and every event sequence derived from it —
  // independent of layout, churn history, and kernel choice.
  sort_pairs(out, sort_scratch_, sort_offsets_);
}

void SpatialGrid::pairs_within_shard(double radius, std::uint32_t shard,
                                     std::uint32_t shard_count, std::vector<Pair>& out,
                                     SortScratch& scratch) const {
  DTNIC_REQUIRE_MSG(shard < shard_count, "shard index out of range");
  scan_pairs(radius, shard, shard_count, out);
  sort_pairs(out, scratch.pairs, scratch.offsets);
}

std::vector<SpatialGrid::Pair> SpatialGrid::pairs_within(double radius) const {
  std::vector<Pair> out;
  pairs_within(radius, out);
  return out;
}

}  // namespace dtnic::net
