#pragma once

#include <cstdint>

#include "util/assert.h"

/// \file token_ledger.h
/// Per-node incentive token account. Tokens are assigned once at scenario
/// start (Table 5.1: 200 per node) and only move between nodes — the network
/// total is invariant, which the property tests assert. Balances never go
/// negative: a payer pays at most what it holds.

namespace dtnic::core {

class TokenLedger {
 public:
  explicit TokenLedger(double initial_tokens = 0.0) : balance_(initial_tokens) {
    DTNIC_REQUIRE_MSG(initial_tokens >= 0.0, "initial tokens must be non-negative");
  }

  [[nodiscard]] double balance() const { return balance_; }
  [[nodiscard]] bool can_pay(double amount) const { return balance_ >= amount; }

  /// Lifetime counters for the metrics collector.
  [[nodiscard]] double total_earned() const { return earned_; }
  [[nodiscard]] double total_spent() const { return spent_; }

  /// Take up to \p amount out of this ledger (e.g. into an escrow bank);
  /// returns the amount actually withdrawn (clamped to the balance).
  double debit(double amount) {
    DTNIC_REQUIRE_MSG(amount >= 0.0, "debit must be non-negative");
    const double taken = amount < balance_ ? amount : balance_;
    balance_ -= taken;
    spent_ += taken;
    return taken;
  }

  /// Add \p amount to this ledger (e.g. cleared from an escrow bank).
  void credit(double amount) {
    DTNIC_REQUIRE_MSG(amount >= 0.0, "credit must be non-negative");
    balance_ += amount;
    earned_ += amount;
  }

  /// Move up to \p amount from this ledger into \p payee; returns the amount
  /// actually transferred (clamped to the available balance).
  double pay(TokenLedger& payee, double amount) {
    DTNIC_REQUIRE_MSG(amount >= 0.0, "payment must be non-negative");
    DTNIC_REQUIRE_MSG(&payee != this, "cannot pay self");
    const double paid = amount < balance_ ? amount : balance_;
    balance_ -= paid;
    spent_ += paid;
    payee.balance_ += paid;
    payee.earned_ += paid;
    return paid;
  }

 private:
  double balance_;
  double earned_ = 0.0;
  double spent_ = 0.0;
};

}  // namespace dtnic::core
