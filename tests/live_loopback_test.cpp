#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "live/live_node.h"
#include "obs/trace_replay.h"
#include "obs/trace_sink.h"
#include "scenario/config.h"
#include "stats/metrics.h"
#include "util/sim_time.h"

/// Two in-process LiveNodes over real loopback UDP sockets (ephemeral ports),
/// stepped with a synthetic clock: the same code the dtnic daemon runs, but
/// deterministic and fast. The live-smoke ctest covers the two-process path;
/// this suite covers the protocol logic — discovery, digest exchange,
/// end-to-end delivery with settlement, and link expiry.

namespace dtnic::live {
namespace {

using routing::NodeId;
using util::SimTime;

constexpr double kStep = 0.05;  ///< service cadence (s); << hello interval

LiveNodeConfig base_config(std::uint32_t node) {
  LiveNodeConfig cfg;
  cfg.node = NodeId(node);
  cfg.listen_port = 0;  // ephemeral: tests never collide on ports
  cfg.hello_interval_s = 0.2;
  cfg.peer_timeout_s = 0.7;
  cfg.scenario.scheme = scenario::Scheme::kIncentive;
  cfg.scenario.seed = 42;
  cfg.keywords = {"news", "weather", "sports", "music"};
  return cfg;
}

/// Step both nodes until \p done or the deadline; real sockets need a few
/// service rounds per protocol phase even on loopback.
template <typename Pred>
bool run_until(LiveNode& a, LiveNode& b, SimTime& now, double deadline_s, Pred done) {
  while (now.sec() < deadline_s) {
    a.service(now);
    b.service(now);
    if (done()) return true;
    now = now + SimTime::seconds(kStep);
  }
  return done();
}

TEST(LiveLoopback, DiscoveryBringsBothLinksUp) {
  LiveNode a(base_config(1));
  LiveNode b(base_config(2));
  a.add_seed_peer(NodeId(2), Endpoint{"127.0.0.1", b.local_port()});
  // b has no seed: it learns a's endpoint from the incoming HELLO.

  SimTime now = SimTime::zero();
  ASSERT_TRUE(run_until(a, b, now, 5.0,
                        [&] { return a.link_up(NodeId(2)) && b.link_up(NodeId(1)); }));
  EXPECT_EQ(a.links_up(), 1u);
  EXPECT_EQ(b.links_up(), 1u);
  EXPECT_EQ(a.rejected_frames(), 0u);
  EXPECT_EQ(b.rejected_frames(), 0u);
}

TEST(LiveLoopback, MismatchedKeywordPoolNeverLinks) {
  LiveNode a(base_config(1));
  LiveNodeConfig other = base_config(2);
  other.keywords = {"news", "weather", "sports", "jazz"};  // different pool
  LiveNode b(other);
  ASSERT_NE(a.keyword_pool_hash(), b.keyword_pool_hash());

  a.add_seed_peer(NodeId(2), Endpoint{"127.0.0.1", b.local_port()});
  b.add_seed_peer(NodeId(1), Endpoint{"127.0.0.1", a.local_port()});
  SimTime now = SimTime::zero();
  EXPECT_FALSE(run_until(a, b, now, 1.5,
                         [&] { return a.link_up(NodeId(2)) || b.link_up(NodeId(1)); }));
  // Each side drops the other's incompatible HELLOs and counts them.
  EXPECT_GT(a.rejected_frames(), 0u);
  EXPECT_GT(b.rejected_frames(), 0u);
}

TEST(LiveLoopback, DigestExchangeFeedsOracleAndGrowsInterests) {
  LiveNode a(base_config(1));
  LiveNode b(base_config(2));
  SimTime now = SimTime::zero();
  b.subscribe({"news", "sports"}, now);
  a.add_seed_peer(NodeId(2), Endpoint{"127.0.0.1", b.local_port()});

  ASSERT_TRUE(run_until(a, b, now, 5.0,
                        [&] { return a.link_up(NodeId(2)) && b.link_up(NodeId(1)); }));
  // a's ChitChat table picked up b's direct interests via the RTSR growth
  // phase on the reconstructed digest (weights halved, but present).
  auto* chitchat = routing::ChitChatRouter::of(a.host());
  ASSERT_NE(chitchat, nullptr);
  const msg::KeywordId news = a.keywords().find("news");
  ASSERT_TRUE(news.valid());
  const msg::KeywordId query[] = {news};
  EXPECT_GT(chitchat->interests().sum_weights(query), 0.0);
}

TEST(LiveLoopback, EndToEndDeliveryWithSettlement) {
  LiveNode a(base_config(1));
  LiveNode b(base_config(2));
  SimTime now = SimTime::zero();
  b.subscribe({"news"}, now);
  a.add_seed_peer(NodeId(2), Endpoint{"127.0.0.1", b.local_port()});

  ASSERT_TRUE(run_until(a, b, now, 5.0,
                        [&] { return a.link_up(NodeId(2)) && b.link_up(NodeId(1)); }));

  const double a_tokens_before = a.tokens();
  const double b_tokens_before = b.tokens();
  const msg::MessageId id =
      a.publish({"news", "weather"}, now, 8192, msg::Priority::kHigh, 1.0);
  EXPECT_EQ(id.value(), 1u * 0x100000u + 0u);  // node-namespaced id space

  ASSERT_TRUE(run_until(a, b, now, 10.0,
                        [&] { return b.metrics().delivered_unique() == 1; }));

  // Sender side: one creation, one transfer started, nothing refused.
  EXPECT_EQ(a.metrics().created(), 1u);
  EXPECT_EQ(a.metrics().traffic(), 1u);
  EXPECT_EQ(a.metrics().aborted(), 0u);

  // Receiver side: delivered as destination (b subscribes to "news"),
  // copy stored, tokens paid for the relevant content.
  EXPECT_EQ(b.metrics().delivered_unique(), 1u);
  EXPECT_EQ(b.metrics().relay_arrivals(), 0u);
  EXPECT_NE(b.host().buffer().find(id), nullptr);
  EXPECT_TRUE(b.host().has_seen(id));
  EXPECT_GT(b.metrics().tokens_paid_total(), 0.0);
  EXPECT_LT(b.tokens(), b_tokens_before);

  // The RECEIPT credits the sender (payment may be clipped by b's balance,
  // so compare against the actual paid amount).
  ASSERT_TRUE(run_until(a, b, now, 12.0,
                        [&] { return a.tokens() > a_tokens_before; }));
  EXPECT_DOUBLE_EQ(a.tokens() - a_tokens_before, b.metrics().tokens_paid_total());

  // DRM: b judged the source and updated its rating store.
  EXPECT_GT(b.metrics().reputation_updates(), 0u);

  // No spurious re-offer: the message stays delivered exactly once.
  const double settle_until = now.sec() + 1.0;
  run_until(a, b, now, settle_until, [] { return false; });
  EXPECT_EQ(b.metrics().delivered_unique(), 1u);
  EXPECT_EQ(b.metrics().deliveries_total(), 1u);
}

TEST(LiveLoopback, DuplicateOfferIsRefused) {
  LiveNode a(base_config(1));
  LiveNode b(base_config(2));
  SimTime now = SimTime::zero();
  b.subscribe({"news"}, now);
  a.add_seed_peer(NodeId(2), Endpoint{"127.0.0.1", b.local_port()});
  ASSERT_TRUE(run_until(a, b, now, 5.0,
                        [&] { return a.link_up(NodeId(2)) && b.link_up(NodeId(1)); }));

  a.publish({"news"}, now, 1024, msg::Priority::kMedium, 1.0);
  ASSERT_TRUE(run_until(a, b, now, 10.0,
                        [&] { return b.metrics().delivered_unique() == 1; }));

  // Publish the same content from b's side of the exchange: b already has
  // the id marked seen, so a fresh offer of that id must be refused — which
  // the protocol exercises when links flap. Simulate by tearing the link
  // down (timeout) and re-establishing: the offered-set is per-PeerState,
  // but b's seen-set persists, so re-offers get kDuplicate.
  const double silent_until = now.sec() + 2.0;
  while (now.sec() < silent_until) {  // only b services: a goes silent for b
    b.service(now);
    now = now + SimTime::seconds(kStep);
  }
  EXPECT_FALSE(b.link_up(NodeId(1)));

  ASSERT_TRUE(run_until(a, b, now, now.sec() + 5.0,
                        [&] { return a.link_up(NodeId(2)) && b.link_up(NodeId(1)); }));
  const double resettle_until = now.sec() + 2.0;
  run_until(a, b, now, resettle_until, [] { return false; });
  // Still exactly one delivery; the re-offer (if any) was refused as a
  // duplicate rather than double-delivered.
  EXPECT_EQ(b.metrics().delivered_unique(), 1u);
  EXPECT_EQ(b.metrics().deliveries_total(), 1u);
}

TEST(LiveLoopback, SilentPeerExpiresAndTransfersAbort) {
  LiveNode a(base_config(1));
  LiveNode b(base_config(2));
  SimTime now = SimTime::zero();
  a.add_seed_peer(NodeId(2), Endpoint{"127.0.0.1", b.local_port()});
  ASSERT_TRUE(run_until(a, b, now, 5.0,
                        [&] { return a.link_up(NodeId(2)) && b.link_up(NodeId(1)); }));

  // b stops servicing entirely; a must notice within the timeout.
  const double deadline = now.sec() + 3.0;
  while (now.sec() < deadline && a.link_up(NodeId(2))) {
    a.service(now);
    now = now + SimTime::seconds(kStep);
  }
  EXPECT_FALSE(a.link_up(NodeId(2)));
}

TEST(LiveLoopback, TraceReplayReproducesLiveCounters) {
  // The acceptance contract: a live run's trace replays into a fresh
  // MetricsCollector with identical counters, exactly like a sim trace.
  std::stringstream trace_a;
  std::stringstream trace_b;

  LiveNode a(base_config(1));
  LiveNode b(base_config(2));
  SimTime now = SimTime::zero();

  obs::TraceOptions options;
  options.seed = 42;
  options.scheme = "incentive";
  options.clock = [&now]() { return now; };
  obs::TraceSink sink_a(trace_a, options);
  obs::TraceSink sink_b(trace_b, options);
  auto handle_a = a.events().add_sink(sink_a);
  auto handle_b = b.events().add_sink(sink_b);

  b.subscribe({"news"}, now);
  a.add_seed_peer(NodeId(2), Endpoint{"127.0.0.1", b.local_port()});
  ASSERT_TRUE(run_until(a, b, now, 5.0,
                        [&] { return a.link_up(NodeId(2)) && b.link_up(NodeId(1)); }));
  a.publish({"news"}, now, 4096, msg::Priority::kHigh, 1.0);
  ASSERT_TRUE(run_until(a, b, now, 10.0,
                        [&] { return b.metrics().delivered_unique() == 1; }));
  const double drain_until = now.sec() + 1.0;
  run_until(a, b, now, drain_until, [] { return false; });
  sink_a.flush();
  sink_b.flush();

  for (auto* pair : {&a, &b}) {
    std::stringstream& trace = pair == &a ? trace_a : trace_b;
    const stats::MetricsCollector& live = pair->metrics();
    stats::MetricsCollector replayed;
    obs::replay_trace(trace, replayed);
    EXPECT_EQ(replayed.created(), live.created());
    EXPECT_EQ(replayed.delivered_unique(), live.delivered_unique());
    EXPECT_EQ(replayed.relay_arrivals(), live.relay_arrivals());
    EXPECT_EQ(replayed.traffic(), live.traffic());
    EXPECT_EQ(replayed.tokens_paid_total(), live.tokens_paid_total());
    EXPECT_EQ(replayed.reputation_updates(), live.reputation_updates());
    EXPECT_EQ(replayed.mean_delivery_latency_s(), live.mean_delivery_latency_s());
  }
}

}  // namespace
}  // namespace dtnic::live
