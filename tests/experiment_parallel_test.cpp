#include <gtest/gtest.h>

#include <vector>

#include "scenario/experiment.h"
#include "util/thread_pool.h"

/// Parallel experiment execution: ExperimentRunner::run fans seeds across
/// the shared thread pool but must produce output bit-identical to the
/// serial reference path (every RunningStats field, and raw results in seed
/// order). These tests pin that guarantee at fixed seeds.

namespace dtnic::scenario {
namespace {

ScenarioConfig small_config(Scheme scheme = Scheme::kIncentive) {
  ScenarioConfig cfg = ScenarioConfig::scaled_defaults(30, 0.5);
  cfg.scheme = scheme;
  cfg.selfish_fraction = 0.2;
  cfg.malicious_fraction = 0.1;
  cfg.sample_interval_s = 300.0;
  return cfg;
}

void expect_stats_identical(const util::RunningStats& a, const util::RunningStats& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.mean(), b.mean());      // bit-identical, no tolerance
  EXPECT_EQ(a.stddev(), b.stddev());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
  EXPECT_EQ(a.sum(), b.sum());
}

void expect_aggregate_identical(const AggregateResult& a, const AggregateResult& b) {
  EXPECT_EQ(a.scheme, b.scheme);
  EXPECT_EQ(a.runs, b.runs);
  expect_stats_identical(a.mdr, b.mdr);
  expect_stats_identical(a.traffic, b.traffic);
  expect_stats_identical(a.created, b.created);
  expect_stats_identical(a.delivered, b.delivered);
  expect_stats_identical(a.mdr_high, b.mdr_high);
  expect_stats_identical(a.mdr_medium, b.mdr_medium);
  expect_stats_identical(a.mdr_low, b.mdr_low);
  expect_stats_identical(a.avg_final_tokens, b.avg_final_tokens);
  expect_stats_identical(a.refused_no_tokens, b.refused_no_tokens);
  expect_stats_identical(a.refused_untrusted, b.refused_untrusted);
  expect_stats_identical(a.mean_latency_s, b.mean_latency_s);
  expect_stats_identical(a.mean_hops, b.mean_hops);

  ASSERT_EQ(a.raw.size(), b.raw.size());
  for (std::size_t i = 0; i < a.raw.size(); ++i) {
    const RunResult& ra = a.raw[i];
    const RunResult& rb = b.raw[i];
    EXPECT_EQ(ra.seed, rb.seed);  // raw order is seed order
    EXPECT_EQ(ra.created, rb.created);
    EXPECT_EQ(ra.delivered, rb.delivered);
    EXPECT_EQ(ra.mdr, rb.mdr);
    EXPECT_EQ(ra.traffic, rb.traffic);
    EXPECT_EQ(ra.contacts, rb.contacts);
    EXPECT_EQ(ra.contacts_suppressed, rb.contacts_suppressed);
    EXPECT_EQ(ra.avg_final_tokens, rb.avg_final_tokens);
    EXPECT_EQ(ra.tokens_paid, rb.tokens_paid);
    EXPECT_EQ(ra.mean_latency_s, rb.mean_latency_s);
    EXPECT_EQ(ra.mean_hops, rb.mean_hops);
    ASSERT_EQ(ra.malicious_rating.size(), rb.malicious_rating.size());
    for (std::size_t s = 0; s < ra.malicious_rating.size(); ++s) {
      EXPECT_EQ(ra.malicious_rating.samples()[s].time, rb.malicious_rating.samples()[s].time);
      EXPECT_EQ(ra.malicious_rating.samples()[s].value,
                rb.malicious_rating.samples()[s].value);
    }
  }
}

TEST(ExperimentParallel, ParallelRunMatchesSerialBitExactly) {
  util::ThreadPool::set_shared_threads(4);
  const ExperimentRunner runner(/*seeds=*/4, /*base_seed=*/7);
  const ScenarioConfig cfg = small_config();
  const AggregateResult parallel = runner.run(cfg);
  const AggregateResult serial = runner.run_serial(cfg);
  expect_aggregate_identical(parallel, serial);
}

TEST(ExperimentParallel, SweepRunnerMatchesPointwiseRuns) {
  util::ThreadPool::set_shared_threads(4);
  const std::size_t seeds = 3;
  std::vector<ScenarioConfig> points;
  for (const double selfish : {0.0, 0.3}) {
    ScenarioConfig cfg = small_config();
    cfg.selfish_fraction = selfish;
    points.push_back(cfg);
  }
  points.back().scheme = Scheme::kChitChat;

  const SweepRunner sweep(seeds);
  const auto swept = sweep.run_all(points);
  ASSERT_EQ(swept.size(), points.size());

  const ExperimentRunner runner(seeds);
  for (std::size_t i = 0; i < points.size(); ++i) {
    expect_aggregate_identical(swept[i], runner.run_serial(points[i]));
  }
}

TEST(ExperimentParallel, SingleThreadPoolStillMatches) {
  util::ThreadPool::set_shared_threads(1);
  const ExperimentRunner runner(/*seeds=*/2, /*base_seed=*/3);
  const ScenarioConfig cfg = small_config(Scheme::kChitChat);
  expect_aggregate_identical(runner.run(cfg), runner.run_serial(cfg));
  util::ThreadPool::set_shared_threads(0);  // restore default for other tests
}

// --- mean_series -------------------------------------------------------------------

RunResult run_with_samples(std::uint64_t seed, double initial,
                           std::vector<std::pair<double, double>> samples) {
  RunResult r;
  r.seed = seed;
  r.malicious_rating.set_initial_value(initial);
  for (const auto& [t, v] : samples) r.malicious_rating.add(util::SimTime::seconds(t), v);
  return r;
}

TEST(MeanSeries, AggregatesOverUnionOfSampleTimes) {
  // Staggered grids: seed 0 samples at {10, 30}, seed 1 at {20, 30}. The
  // union grid {10, 20, 30} must be fully represented.
  std::vector<RunResult> runs;
  runs.push_back(run_with_samples(0, 4.0, {{10.0, 2.0}, {30.0, 1.0}}));
  runs.push_back(run_with_samples(1, 4.0, {{20.0, 3.0}, {30.0, 2.0}}));

  const auto series = ExperimentRunner::mean_series(runs);
  ASSERT_EQ(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series[0].first, 10.0);
  // At t=10 seed 1 has no sample yet and contributes its initial value.
  EXPECT_DOUBLE_EQ(series[0].second, (2.0 + 4.0) / 2.0);
  EXPECT_DOUBLE_EQ(series[1].first, 20.0);
  EXPECT_DOUBLE_EQ(series[1].second, (2.0 + 3.0) / 2.0);
  EXPECT_DOUBLE_EQ(series[2].first, 30.0);
  EXPECT_DOUBLE_EQ(series[2].second, (1.0 + 2.0) / 2.0);
}

TEST(MeanSeries, FirstRunEmptyDoesNotEmptyTheAggregate) {
  // Regression: the grid used to come from runs.front() only — an empty
  // first run silently produced an empty aggregate.
  std::vector<RunResult> runs;
  runs.push_back(run_with_samples(0, 3.5, {}));
  runs.push_back(run_with_samples(1, 3.5, {{60.0, 1.0}}));

  const auto series = ExperimentRunner::mean_series(runs);
  ASSERT_EQ(series.size(), 1u);
  EXPECT_DOUBLE_EQ(series[0].first, 60.0);
  EXPECT_DOUBLE_EQ(series[0].second, (3.5 + 1.0) / 2.0);
}

TEST(MeanSeries, DuplicateTimesAcrossRunsCollapse) {
  std::vector<RunResult> runs;
  runs.push_back(run_with_samples(0, 0.0, {{10.0, 1.0}, {20.0, 2.0}}));
  runs.push_back(run_with_samples(1, 0.0, {{10.0, 3.0}, {20.0, 4.0}}));
  const auto series = ExperimentRunner::mean_series(runs);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0].second, 2.0);
  EXPECT_DOUBLE_EQ(series[1].second, 3.0);
}

TEST(MeanSeries, EmptyInputYieldsEmptySeries) {
  EXPECT_TRUE(ExperimentRunner::mean_series({}).empty());
  std::vector<RunResult> runs(2);  // two runs, no samples at all
  EXPECT_TRUE(ExperimentRunner::mean_series(runs).empty());
}

}  // namespace
}  // namespace dtnic::scenario
