#pragma once

#include <vector>

#include "util/sim_time.h"

/// \file time_series.h
/// A sampled (time, value) series — e.g. Fig. 5.4's "average rating of
/// malicious nodes over time". Samples are appended in time order by the
/// scenario's periodic sampler.

namespace dtnic::stats {

struct Sample {
  util::SimTime time;
  double value = 0.0;
};

class TimeSeries {
 public:
  void add(util::SimTime t, double value) { samples_.push_back({t, value}); }

  [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] std::size_t size() const { return samples_.size(); }

  [[nodiscard]] double last_value() const { return samples_.empty() ? 0.0 : samples_.back().value; }
  [[nodiscard]] double first_value() const { return samples_.empty() ? 0.0 : samples_.front().value; }

  /// Value at or before \p t (first value if t precedes all samples).
  [[nodiscard]] double value_at(util::SimTime t) const;

 private:
  std::vector<Sample> samples_;
};

}  // namespace dtnic::stats
