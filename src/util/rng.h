#pragma once

#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/assert.h"

/// \file rng.h
/// Deterministic pseudo-random number generation.
///
/// dtnic runs are reproducible by construction: every random decision flows
/// from a single scenario seed through named sub-streams, so adding a new
/// consumer of randomness does not perturb unrelated decisions. Rng is a
/// xoshiro256** generator seeded via splitmix64; fork() derives statistically
/// independent child streams.

namespace dtnic::util {

/// splitmix64 step; used for seeding and stream derivation.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9c2e5f3a1b4d8e7fULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& s : s_) s = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    DTNIC_REQUIRE(lo <= hi);
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire rejection.
  [[nodiscard]] std::uint64_t below(std::uint64_t n) {
    DTNIC_REQUIRE(n > 0);
    // Bitmask-with-rejection: unbiased and simple.
    std::uint64_t mask = ~std::uint64_t{0} >> __builtin_clzll(n | 1);
    std::uint64_t v;
    do {
      v = (*this)() & mask;
    } while (v >= n);
    return v;
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t range(std::int64_t lo, std::int64_t hi) {
    DTNIC_REQUIRE(lo <= hi);
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with success probability \p p (clamped to [0,1]).
  [[nodiscard]] bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  /// Standard normal via Marsaglia polar method.
  [[nodiscard]] double normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    cached_ = v * m;
    has_cached_ = true;
    return u * m;
  }

  [[nodiscard]] double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Exponential with given rate (mean 1/rate).
  [[nodiscard]] double exponential(double rate) {
    DTNIC_REQUIRE(rate > 0.0);
    return -std::log(1.0 - uniform()) / rate;
  }

  /// Derive an independent child stream; deterministic in (parent state, tag).
  [[nodiscard]] Rng fork(std::uint64_t tag) {
    std::uint64_t mix = (*this)() ^ (tag * 0x9e3779b97f4a7c15ULL);
    return Rng(splitmix64(mix));
  }

  /// Pick a uniformly random element index of a container of size n.
  [[nodiscard]] std::size_t index(std::size_t n) { return static_cast<std::size_t>(below(n)); }

  /// Fisher-Yates shuffle.
  template <typename Container>
  void shuffle(Container& c) {
    for (std::size_t i = c.size(); i > 1; --i) {
      std::swap(c[i - 1], c[index(i)]);
    }
  }

  /// Sample k distinct indices from [0, n) (k <= n), in random order.
  [[nodiscard]] std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k) {
    DTNIC_REQUIRE(k <= n);
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
      std::swap(all[i], all[i + index(n - i)]);
    }
    all.resize(k);
    return all;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4] = {};
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace dtnic::util
