#pragma once

#include <vector>

#include "core/behavior.h"
#include "msg/message.h"
#include "util/rng.h"

/// \file enrichment.h
/// Content enrichment (§1.3.2): relays may add keyword annotations to
/// in-transit messages. Honest relays draw from the message's latent true
/// keyword set (they "know more about the content"); malicious relays plant
/// keywords from the global pool that do NOT describe the content, hoping to
/// match more destinations and farm tag rewards.

namespace dtnic::core {

class Enricher {
 public:
  /// \p keyword_pool is the scenario's full keyword universe (Table 5.1:
  /// 200 keywords); malicious tags are drawn from it.
  explicit Enricher(const std::vector<msg::KeywordId>* keyword_pool)
      : pool_(keyword_pool) {}

  /// Honest enrichment: add up to \p max_tags truthful tags the message does
  /// not carry yet. Returns the number of tags added.
  int enrich_honest(msg::Message& m, util::NodeId annotator, int max_tags,
                    util::Rng& rng) const;

  /// Malicious enrichment: add up to \p tags irrelevant keywords (not in the
  /// message's true set). Returns the number of tags added.
  int enrich_malicious(msg::Message& m, util::NodeId annotator, int tags,
                       util::Rng& rng) const;

  /// Apply the enrichment behavior of \p profile to a relayed message.
  int enrich(msg::Message& m, util::NodeId annotator, const BehaviorProfile& profile,
             util::Rng& rng) const;

 private:
  const std::vector<msg::KeywordId>* pool_;
};

}  // namespace dtnic::core
