#include <gtest/gtest.h>

#include <sstream>

#include "scenario/config_io.h"
#include "scenario/experiment.h"
#include "scenario/report.h"
#include "scenario/scenario.h"

namespace dtnic::scenario {
namespace {

TEST(ConfigIo, AppliesOverrides) {
  const auto kv = util::Config::parse(
      "nodes = 42\n"
      "sim_hours = 2.5\n"
      "scheme = epidemic\n"
      "selfish_fraction = 0.3\n"
      "incentive.initial_tokens = 37.5\n"
      "drm.enabled = false\n"
      "radio.range_m = 80\n");
  const ScenarioConfig cfg = apply_config(ScenarioConfig::paper_defaults(), kv);
  EXPECT_EQ(cfg.num_nodes, 42u);
  EXPECT_DOUBLE_EQ(cfg.sim_hours, 2.5);
  EXPECT_EQ(cfg.scheme, Scheme::kEpidemic);
  EXPECT_DOUBLE_EQ(cfg.selfish_fraction, 0.3);
  EXPECT_DOUBLE_EQ(cfg.incentive.initial_tokens, 37.5);
  EXPECT_FALSE(cfg.drm.enabled);
  EXPECT_DOUBLE_EQ(cfg.radio.range_m, 80.0);
  // Untouched fields keep Table 5.1 values.
  EXPECT_EQ(cfg.keyword_pool_size, 200u);
}

TEST(ConfigIo, UnknownKeyThrows) {
  const auto kv = util::Config::parse("nodez = 42\n");
  EXPECT_THROW((void)apply_config(ScenarioConfig::paper_defaults(), kv),
               std::invalid_argument);
}

TEST(ConfigIo, InvalidValueThrows) {
  EXPECT_THROW((void)apply_config(ScenarioConfig::paper_defaults(),
                                  util::Config::parse("nodes = many\n")),
               std::invalid_argument);
  EXPECT_THROW((void)apply_config(ScenarioConfig::paper_defaults(),
                                  util::Config::parse("scheme = teleport\n")),
               std::invalid_argument);
  // Values that parse but violate invariants fail validation.
  EXPECT_THROW((void)apply_config(ScenarioConfig::paper_defaults(),
                                  util::Config::parse("selfish_fraction = 2.0\n")),
               std::invalid_argument);
}

TEST(ConfigIo, UnknownKeySuggestsClosestMatch) {
  // A near-miss key gets a "did you mean" hint with the real key name...
  try {
    (void)apply_config(ScenarioConfig::paper_defaults(), util::Config::parse("nodez = 42\n"));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("nodez"), std::string::npos) << what;
    EXPECT_NE(what.find("did you mean 'nodes'"), std::string::npos) << what;
    EXPECT_NE(what.find("line 1"), std::string::npos) << what;
  }
  // ...while a key nothing like any real one gets no misleading hint.
  try {
    (void)apply_config(ScenarioConfig::paper_defaults(),
                       util::Config::parse("zzqqxxyy = 1\n"));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_EQ(what.find("did you mean"), std::string::npos) << what;
  }
}

TEST(ConfigIo, BadValueReportsKeyAndLine) {
  const auto kv = util::Config::parse(
      "nodes = 42\n"
      "# comment lines still count toward line numbers\n"
      "sim_hours = 2,5\n");
  try {
    (void)apply_config(ScenarioConfig::paper_defaults(), kv);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("sim_hours"), std::string::npos) << what;
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("2,5"), std::string::npos) << what;
  }
}

TEST(ConfigIo, ProgrammaticSetHasNoLineNumber) {
  util::Config kv;
  kv.set("nodes", "many");
  try {
    (void)apply_config(ScenarioConfig::paper_defaults(), kv);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("nodes"), std::string::npos) << what;
    EXPECT_EQ(what.find("line"), std::string::npos) << what;  // not from a file
  }
}

TEST(ConfigIo, ShardThreadsRoundTripsAndValidates) {
  const auto kv = util::Config::parse("shard_threads = 4\n");
  const ScenarioConfig cfg = apply_config(ScenarioConfig::paper_defaults(), kv);
  EXPECT_EQ(cfg.shard_threads, 4u);
  EXPECT_NE(to_config_text(cfg).find("shard_threads = 4"), std::string::npos);
  EXPECT_THROW((void)apply_config(ScenarioConfig::paper_defaults(),
                                  util::Config::parse("shard_threads = 300\n")),
               std::invalid_argument);
}

TEST(ConfigIo, RoundTripsExactly) {
  ScenarioConfig cfg = ScenarioConfig::scaled_defaults(77, 3.5);
  cfg.scheme = Scheme::kSprayAndWait;
  cfg.selfish_fraction = 0.25;
  cfg.incentive.max_incentive = 7.5;
  cfg.drm.alpha = 0.7;
  cfg.priority_workload = true;
  cfg.seed = 123;
  const std::string text = to_config_text(cfg);
  const ScenarioConfig back =
      apply_config(ScenarioConfig::paper_defaults(), util::Config::parse(text));
  EXPECT_EQ(to_config_text(back), text);
  EXPECT_EQ(back.scheme, cfg.scheme);
  EXPECT_EQ(back.num_nodes, cfg.num_nodes);
  EXPECT_DOUBLE_EQ(back.drm.alpha, 0.7);
}

TEST(ConfigIo, ParseSchemeCoversAll) {
  EXPECT_EQ(parse_scheme("incentive"), Scheme::kIncentive);
  EXPECT_EQ(parse_scheme("chitchat"), Scheme::kChitChat);
  EXPECT_EQ(parse_scheme("epidemic"), Scheme::kEpidemic);
  EXPECT_EQ(parse_scheme("direct"), Scheme::kDirectDelivery);
  EXPECT_EQ(parse_scheme("spray-and-wait"), Scheme::kSprayAndWait);
  EXPECT_EQ(parse_scheme("first-contact"), Scheme::kFirstContact);
  EXPECT_EQ(parse_scheme("prophet"), Scheme::kProphet);
  EXPECT_EQ(parse_scheme("nectar"), Scheme::kNectar);
  EXPECT_EQ(parse_scheme("two-hop"), Scheme::kTwoHop);
  EXPECT_THROW((void)parse_scheme("bogus"), std::invalid_argument);
}

// --- New schemes run end-to-end -----------------------------------------------

class NewSchemeSmoke : public ::testing::TestWithParam<Scheme> {};

TEST_P(NewSchemeSmoke, RunsAndDelivers) {
  ScenarioConfig cfg = ScenarioConfig::scaled_defaults(40, 2.0);
  cfg.scheme = GetParam();
  cfg.seed = 5;
  cfg.messages_per_node_per_hour = 1.0;
  const RunResult r = ExperimentRunner::run_once(cfg);
  EXPECT_GT(r.created, 0u);
  EXPECT_GT(r.delivered, 0u);
  EXPECT_EQ(r.scheme, scheme_name(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Schemes, NewSchemeSmoke,
                         ::testing::Values(Scheme::kProphet, Scheme::kNectar,
                                           Scheme::kTwoHop));

// --- Reports -----------------------------------------------------------------

TEST(Report, RunReportContainsKeyMetrics) {
  ScenarioConfig cfg = ScenarioConfig::scaled_defaults(30, 1.0);
  cfg.seed = 2;
  const RunResult r = ExperimentRunner::run_once(cfg);
  std::ostringstream os;
  write_run_report(os, r);
  const std::string out = os.str();
  EXPECT_NE(out.find("MDR"), std::string::npos);
  EXPECT_NE(out.find("incentive"), std::string::npos);
  EXPECT_NE(out.find("tokens paid"), std::string::npos);
}

TEST(Report, ComparisonTableOneRowPerResult) {
  ScenarioConfig cfg = ScenarioConfig::scaled_defaults(25, 1.0);
  std::vector<RunResult> results;
  for (const Scheme s : {Scheme::kChitChat, Scheme::kEpidemic}) {
    cfg.scheme = s;
    results.push_back(ExperimentRunner::run_once(cfg));
  }
  EXPECT_EQ(comparison_table(results).rows(), 2u);
}

TEST(Report, SeriesCsv) {
  stats::TimeSeries series;
  series.add(util::SimTime::seconds(0), 3.5);
  series.add(util::SimTime::seconds(60), 2.25);
  std::ostringstream os;
  write_series_csv(os, series, "rating");
  EXPECT_EQ(os.str(), "time_s,rating\n0,3.5\n60,2.25\n");
}

TEST(Report, ContactSummaryFromTrace) {
  net::ContactTrace trace;
  using util::NodeId;
  using util::SimTime;
  trace.record_up(NodeId(0), NodeId(1), SimTime::seconds(0));
  trace.record_down(NodeId(0), NodeId(1), SimTime::seconds(10));
  trace.record_up(NodeId(0), NodeId(1), SimTime::seconds(110));  // gap 100 s
  trace.record_down(NodeId(0), NodeId(1), SimTime::seconds(130));
  trace.record_up(NodeId(2), NodeId(3), SimTime::seconds(50));
  trace.record_down(NodeId(2), NodeId(3), SimTime::seconds(80));
  trace.finalize(SimTime::seconds(200));
  const ContactSummary s = summarize_contacts(trace);
  EXPECT_EQ(s.contacts, 3u);
  EXPECT_DOUBLE_EQ(s.total_contact_time_s, 60.0);
  EXPECT_DOUBLE_EQ(s.mean_duration_s, 20.0);
  EXPECT_DOUBLE_EQ(s.median_duration_s, 20.0);
  EXPECT_DOUBLE_EQ(s.mean_intercontact_s, 100.0);
  std::ostringstream os;
  write_contact_summary(os, s);
  EXPECT_NE(os.str().find("inter-contact"), std::string::npos);
}

TEST(Report, EmptyTraceSummary) {
  net::ContactTrace trace;
  trace.finalize(util::SimTime::seconds(10));
  const ContactSummary s = summarize_contacts(trace);
  EXPECT_EQ(s.contacts, 0u);
  EXPECT_DOUBLE_EQ(s.mean_intercontact_s, 0.0);
}

}  // namespace
}  // namespace dtnic::scenario
