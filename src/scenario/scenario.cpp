#include "scenario/scenario.h"

#include <algorithm>
#include <chrono>

#include "core/enrichment.h"
#include "mobility/hotspot.h"
#include "mobility/random_walk.h"
#include "mobility/random_waypoint.h"
#include "routing/chitchat/chitchat_router.h"
#include "scenario/router_factory.h"
#include "util/assert.h"
#include "util/logging.h"
#include "util/summary.h"
#include "util/thread_pool.h"
#include "util/timing.h"

namespace dtnic::scenario {

using routing::Host;
using routing::NodeId;
using util::SimTime;

namespace {
/// Stable stream tags for forking the master RNG; adding a consumer at the
/// end never perturbs earlier streams.
enum StreamTag : std::uint64_t {
  kMobilityStream = 1,
  kWorkloadStream = 2,
  kGateStream = 3,
  kBehaviorStream = 4,
  kInterestStream = 5,
  kRouterStream = 6,
};
}  // namespace

Scenario::Scenario(const ScenarioConfig& config)
    : cfg_(config), master_rng_(config.seed), gate_rng_(0) {
  cfg_.validate();
  // Before the first sample, malicious nodes sit at the rating-scale prior —
  // queries ahead of a run's sample grid (Fig. 5.4 cross-seed averaging)
  // must see that prior, not the first observed value.
  malicious_rating_series_.set_initial_value(cfg_.drm.default_rating);
  build();
}

std::uint64_t Scenario::pair_key(NodeId a, NodeId b) {
  const auto lo = std::min(a.value(), b.value());
  const auto hi = std::max(a.value(), b.value());
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

Host& Scenario::host(NodeId id) {
  DTNIC_REQUIRE_MSG(id.valid() && id.value() < hosts_.size(),
                    "unknown host id " + std::to_string(id.value()) + " of " +
                        std::to_string(hosts_.size()));
  return *hosts_[id.value()];
}

const core::BehaviorProfile& Scenario::behavior_of(NodeId id) const {
  DTNIC_REQUIRE_MSG(id.valid() && id.value() < behaviors_.size(), "unknown host id");
  return behaviors_[id.value()];
}

void Scenario::make_router(std::size_t index) {
  RouterBuildContext ctx;
  ctx.cfg = &cfg_;
  ctx.oracle = &oracle_;
  ctx.contact_quantum = SimTime::seconds(cfg_.scan_interval_s);
  ctx.world = &world_;
  ctx.pi_bank = &pi_bank_;
  ctx.behavior = behaviors_[index];
  ctx.master_rng = &master_rng_;
  ctx.rng_stream_tag = kRouterStream;
  ctx.node_index = index;
  hosts_[index]->set_router(build_router(ctx));
}

void Scenario::build() {
  DTNIC_ASSERT(!built_);
  built_ = true;

  // The metrics collector is the fan-out's first sink, so every other
  // observer sees events after the run-wide counters are updated.
  metrics_sink_ = fanout_.add_sink(metrics_);

  pool_ = keywords_.make_pool(cfg_.keyword_pool_size);
  gate_rng_ = master_rng_.fork(kGateStream);

  world_.incentive = cfg_.incentive;
  world_.drm = cfg_.drm;
  world_.radio = cfg_.radio;
  world_.keyword_pool = &pool_;
  world_.enrichment_enabled = cfg_.enrichment_enabled;
  world_.neighbors = [this](NodeId id, std::vector<Host*>& out) {
    fill_neighbor_hosts(id, out);
  };
  world_.host_by_id = [this](NodeId id) -> Host* {
    return id.valid() && id.value() < hosts_.size() ? hosts_[id.value()].get() : nullptr;
  };

  net::ConnectivityManager* manager = nullptr;
  if (cfg_.contact_trace_file.empty()) {
    const std::size_t shards =
        cfg_.shard_threads == 0 ? util::ThreadPool::default_thread_count() : cfg_.shard_threads;
    auto owned = std::make_unique<net::ConnectivityManager>(
        sim_, cfg_.radio, SimTime::seconds(cfg_.scan_interval_s), shards);
    manager = owned.get();
    connectivity_ = manager;
    contacts_ = std::move(owned);
  } else {
    auto scripted = std::make_unique<net::ScriptedConnectivity>(
        sim_, net::ScriptedConnectivity::load_file(cfg_.contact_trace_file));
    DTNIC_REQUIRE_MSG(!scripted->max_node().valid() ||
                          scripted->max_node().value() < cfg_.num_nodes,
                      "contact trace references a node beyond num_nodes");
    contacts_ = std::move(scripted);
  }
  transfers_ = std::make_unique<net::TransferManager>(sim_, cfg_.radio.bitrate_bps);

  exchange_threads_ = cfg_.exchange_threads == 0 ? util::ThreadPool::default_thread_count()
                                                 : cfg_.exchange_threads;
  if (exchange_threads_ > 1) {
    exchange_pool_ = std::make_unique<util::ThreadPool>(exchange_threads_ - 1);
    host_locks_ = std::make_unique<std::mutex[]>(cfg_.num_nodes);
  }

  // Hosts, mobility, behaviors, routers.
  const mobility::Area area{cfg_.area_side_m, cfg_.area_side_m};
  util::Rng mobility_rng = master_rng_.fork(kMobilityStream);

  // Movement-model factory; nodes share hotspot locations (one fork) but
  // have independent movement streams.
  std::vector<util::Vec2> hotspots;
  if (cfg_.mobility == MobilityKind::kHotspot) {
    util::Rng hotspot_rng = mobility_rng.fork(0xfeed);
    hotspots = mobility::HotspotMobility::generate_hotspots(area, cfg_.hotspot_count,
                                                            hotspot_rng);
  }
  auto make_mobility = [&](std::size_t i) -> std::unique_ptr<mobility::MobilityModel> {
    switch (cfg_.mobility) {
      case MobilityKind::kRandomWalk: {
        mobility::RandomWalkParams p;
        p.area = area;
        p.min_speed_mps = cfg_.min_speed_mps;
        p.max_speed_mps = cfg_.max_speed_mps;
        return std::make_unique<mobility::RandomWalk>(p, mobility_rng.fork(i));
      }
      case MobilityKind::kHotspot: {
        mobility::HotspotParams p;
        p.area = area;
        p.hotspots = hotspots;
        p.hotspot_radius_m = cfg_.hotspot_radius_m;
        p.hotspot_probability = cfg_.hotspot_probability;
        p.min_speed_mps = cfg_.min_speed_mps;
        p.max_speed_mps = cfg_.max_speed_mps;
        p.max_pause_s = cfg_.max_pause_s;
        return std::make_unique<mobility::HotspotMobility>(p, mobility_rng.fork(i));
      }
      case MobilityKind::kRandomWaypoint:
      default: {
        mobility::RandomWaypointParams p;
        p.area = area;
        p.min_speed_mps = cfg_.min_speed_mps;
        p.max_speed_mps = cfg_.max_speed_mps;
        p.max_pause_s = cfg_.max_pause_s;
        return std::make_unique<mobility::RandomWaypoint>(p, mobility_rng.fork(i));
      }
    }
  };

  util::Rng workload_rng = master_rng_.fork(kWorkloadStream);
  hosts_.reserve(cfg_.num_nodes);
  // The incentive scheme stores priority-aware (paper §5.F: "our approach
  // prioritizes messages based on the quality as well as the assigned
  // priority"); the baselines keep ONE's FIFO drop.
  const msg::DropPolicy drop_policy = cfg_.scheme == Scheme::kIncentive
                                          ? msg::DropPolicy::kLowPriorityFirst
                                          : msg::DropPolicy::kFifoOldest;
  for (std::size_t i = 0; i < cfg_.num_nodes; ++i) {
    const NodeId id(static_cast<util::NodeId::underlying>(i));
    hosts_.push_back(
        std::make_unique<Host>(id, cfg_.buffer_capacity_bytes, drop_policy, fanout_));
    hosts_.back()->battery().reset(cfg_.battery_capacity_j);
    if (manager != nullptr) {
      mobility_.push_back(make_mobility(i));
      manager->add_node(id, mobility_.back().get());
    }
    workload_rng_.push_back(workload_rng.fork(i));
  }

  // Behaviors must exist before routers (IncentiveRouter captures profile).
  behaviors_.assign(cfg_.num_nodes, core::BehaviorProfile{});
  // First pass assigns behaviors/interests after routers for ChitChat seeding,
  // but IncentiveRouter needs its behavior at construction: assign behavior
  // types first, then construct routers, then interests.
  {
    // Assign behaviors (without interests yet).
    const std::size_t n = cfg_.num_nodes;
    util::Rng behavior_rng = master_rng_.fork(kBehaviorStream);
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    behavior_rng.shuffle(order);
    const auto selfish_count = static_cast<std::size_t>(cfg_.selfish_fraction *
                                                        static_cast<double>(n) + 0.5);
    const auto malicious_count = static_cast<std::size_t>(cfg_.malicious_fraction *
                                                          static_cast<double>(n) + 0.5);
    const auto battery_count = static_cast<std::size_t>(cfg_.battery_conscious_fraction *
                                                        static_cast<double>(n) + 0.5);
    for (std::size_t i = 0; i < n; ++i) {
      core::BehaviorProfile profile;
      if (i < selfish_count) {
        profile.type = core::BehaviorType::kSelfish;
      } else if (i < selfish_count + malicious_count) {
        profile.type = core::BehaviorType::kMalicious;
      } else if (i < selfish_count + malicious_count + battery_count) {
        profile.type = core::BehaviorType::kBatteryConscious;
      }
      profile.selfish_participation = cfg_.selfish_participation;
      profile.enrich_probability = cfg_.enrich_probability;
      profile.honest_max_tags = cfg_.honest_max_tags;
      profile.malicious_tags = cfg_.malicious_tags;
      profile.battery_threshold = cfg_.battery_threshold;
      profile.battery_participation = cfg_.battery_participation;
      behaviors_[order[i]] = profile;
    }

    behavior_rng.shuffle(order);
    const auto officer_count = static_cast<std::size_t>(cfg_.officer_fraction *
                                                        static_cast<double>(n) + 0.5);
    for (std::size_t i = 0; i < n; ++i) {
      hosts_[order[i]]->set_rank(i < officer_count ? 1 : 2);
    }

    source_class_.assign(n, 1);
    if (cfg_.priority_workload) {
      behavior_rng.shuffle(order);
      for (std::size_t i = 0; i < n; ++i) {
        const double frac = static_cast<double>(i) / static_cast<double>(n);
        source_class_[order[i]] = frac < 0.5 ? 0 : (frac < 0.8 ? 1 : 2);
      }
    }
  }

  for (std::size_t i = 0; i < cfg_.num_nodes; ++i) make_router(i);

  // Direct interests (oracle + ChitChat tables).
  {
    util::Rng interest_rng = master_rng_.fork(kInterestStream);
    for (std::size_t i = 0; i < cfg_.num_nodes; ++i) {
      const auto picks = interest_rng.sample_indices(pool_.size(), cfg_.interests_per_node);
      std::vector<msg::KeywordId> interests;
      interests.reserve(picks.size());
      for (std::size_t p : picks) interests.push_back(pool_[p]);
      oracle_.set_interests(hosts_[i]->id(), interests);
      if (auto* chitchat = routing::ChitChatRouter::of(*hosts_[i]); chitchat != nullptr) {
        chitchat->set_direct_interests(interests, SimTime::zero());
      }
    }
  }

  // Participation gate: selfish radios open 1-in-10 fresh encounters;
  // battery-conscious radios economize once their charge runs low.
  contacts_->set_participation_gate([this](NodeId id) {
    const core::BehaviorProfile& b = behaviors_[id.value()];
    if (b.selfish()) return gate_rng_.chance(b.selfish_participation);
    if (b.battery_conscious() &&
        hosts_[id.value()]->battery().level() < b.battery_threshold) {
      return gate_rng_.chance(b.battery_participation);
    }
    return true;
  });

  contacts_->on_link_up([this](NodeId a, NodeId b, double d) { handle_link_up(a, b, d); });
  contacts_->on_link_down([this](NodeId a, NodeId b) { handle_link_down(a, b); });
  transfers_->on_complete([this](const net::TransferManager::Transfer& t, SimTime d) {
    handle_transfer_complete(t, d);
  });
  transfers_->on_abort([this](const net::TransferManager::Transfer& t) {
    handle_transfer_abort(t);
  });
}

void Scenario::fill_neighbor_hosts(NodeId id, std::vector<Host*>& out) {
  out.clear();
  if (connectivity_ != nullptr) {
    // Mobility-driven runs visit the live adjacency list directly; no
    // per-query NodeId vector is materialized.
    connectivity_->for_each_neighbor(
        id, [&](NodeId n) { out.push_back(hosts_[n.value()].get()); });
    return;
  }
  for (NodeId n : contacts_->neighbors_of(id)) {
    out.push_back(hosts_[n.value()].get());
  }
}

void Scenario::handle_link_up(NodeId a, NodeId b, double distance_m) {
  const util::ScopedTimer timer(routing_pre_ns_);
  const SimTime now = sim_.now();
  trace_.record_up(a, b, now);
  transfers_->link_up(a, b);

  Host& ha = host(a);
  Host& hb = host(b);
  // Pre-contact neighborhoods exclude the new peer; filled into reused
  // scratch so a contact allocates nothing here at steady state.
  auto fill_excluding = [this](NodeId self, NodeId other, std::vector<Host*>& out) {
    fill_neighbor_hosts(self, out);
    std::erase_if(out, [other](Host* h) { return h->id() == other; });
  };
  fill_excluding(a, b, neighbors_a_scratch_);
  fill_excluding(b, a, neighbors_b_scratch_);
  ha.router().pre_exchange(ha, now, neighbors_a_scratch_);
  hb.router().pre_exchange(hb, now, neighbors_b_scratch_);
  ha.router().on_link_up(ha, hb, now, distance_m);
  hb.router().on_link_up(hb, ha, now, distance_m);
  pump(a, b);
}

void Scenario::handle_link_down(NodeId a, NodeId b) {
  const util::ScopedTimer timer(routing_pre_ns_);
  const SimTime now = sim_.now();
  // Per-contact bookkeeping ends with the contact; the toggle included, so
  // the maps stay bounded by the live link count under churn (see the
  // exchange_state_tracked probe) and each fresh contact starts from the
  // same direction-alternation state.
  link_toggle_.erase(pair_key(a, b));
  refused_this_contact_.erase(pair_key(a, b));
  idle_memo_.erase(pair_key(a, b));
  transfers_->link_down(a, b);  // aborts any in-flight transfer first
  Host& ha = host(a);
  Host& hb = host(b);
  ha.router().on_link_down(ha, hb, now);
  hb.router().on_link_down(hb, ha, now);
  trace_.record_down(a, b, now);
}

void Scenario::pump(NodeId a, NodeId b) {
  if (!transfers_->link_exists(a, b) || transfers_->link_busy(a, b)) return;
  const std::uint64_t key = pair_key(a, b);
  // Skip links whose endpoints' buffers are unchanged since the last pump
  // found nothing to send.
  const std::pair<std::uint64_t, std::uint64_t> revisions{
      host(a).buffer().revision(), host(b).buffer().revision()};
  if (auto memo = idle_memo_.find(key);
      memo != idle_memo_.end() && memo->second == revisions) {
    return;
  }
  bool& toggle = link_toggle_[key];
  const SimTime now = sim_.now();

  Host* first = &host(toggle ? a : b);
  Host* second = &host(toggle ? b : a);
  std::unordered_set<std::uint64_t>& refused = refused_this_contact_[key];
  for (Host* sender : {first, second}) {
    Host* receiver = sender == first ? second : first;
    const std::uint64_t direction_bit = sender->id() < receiver->id() ? 0 : 1;
    sender->router().plan_into(*sender, *receiver, now, plan_scratch_);
    for (const routing::ForwardPlan& plan : plan_scratch_) {
      const std::uint64_t offer_key =
          (static_cast<std::uint64_t>(plan.message.value()) << 1) | direction_bit;
      // A refused offer is not re-tried within the same contact.
      if (refused.count(offer_key)) continue;
      const msg::Message* m = sender->buffer().find(plan.message);
      if (m == nullptr) continue;
      const auto decision = receiver->router().accept(*receiver, *sender, *m, plan, now);
      if (decision != routing::AcceptDecision::kAccept) {
        fanout_.on_refused(sender->id(), receiver->id(), *m, decision);
        refused.insert(offer_key);
        continue;
      }
      pending_[key] = PendingTransfer{plan, *m};
      fanout_.on_transfer_started(sender->id(), receiver->id(), *m, plan.role);
      const bool started =
          transfers_->start(sender->id(), receiver->id(), plan.message, m->size_bytes());
      DTNIC_ASSERT(started);
      toggle = !toggle;
      idle_memo_.erase(key);
      return;
    }
  }
  idle_memo_[key] = revisions;  // nothing to send until a buffer changes
}

void Scenario::pump_all_idle() {
  if (exchange_threads_ <= 1) {
    // Serial exchange: the fused plan+commit loop is accounted as commit
    // time (it applies mutations inline); the plan counter stays zero.
    const util::ScopedTimer timer(routing_commit_ns_);
    for (const auto& [a, b] : contacts_->connected_pairs()) pump(a, b);
    return;
  }
  {
    const util::ScopedTimer timer(routing_plan_ns_);
    plan_staged();
  }
  const util::ScopedTimer timer(routing_commit_ns_);
  commit_staged();
}

void Scenario::append_neighbor_ids(NodeId id, std::vector<std::uint32_t>& out) const {
  if (connectivity_ != nullptr) {
    connectivity_->for_each_neighbor(id, [&out](NodeId n) { out.push_back(n.value()); });
    return;
  }
  for (NodeId n : contacts_->neighbors_of(id)) out.push_back(n.value());
}

void Scenario::plan_staged() {
  staged_pairs_ = contacts_->connected_pairs();
  const std::size_t n = staged_pairs_.size();
  if (staged_.size() < n) staged_.resize(n);
  if (n == 0) return;
  const std::size_t tasks = std::min(exchange_threads_, n);
  if (exchange_scratch_.size() < tasks) exchange_scratch_.resize(tasks);
  const auto plan_range = [this, n, tasks](std::size_t t) {
    const std::size_t begin = n * t / tasks;
    const std::size_t end = n * (t + 1) / tasks;
    for (std::size_t i = begin; i < end; ++i) stage_link(i, t);
  };
  if (exchange_pool_ != nullptr) {
    exchange_pool_->co_run(tasks, plan_range);
  } else {
    for (std::size_t t = 0; t < tasks; ++t) plan_range(t);
  }
}

void Scenario::stage_link(std::size_t index, std::size_t worker) {
  const auto [a, b] = staged_pairs_[index];
  StagedLink& link = staged_[index];
  link.a = a;
  link.b = b;
  link.key = pair_key(a, b);
  link.offers.clear();
  link.gated = false;
  link.idle = false;
  link.accepted = false;
  // The same gates as the serial pump, evaluated against state frozen for
  // the tick: no transfer starts (and no buffer mutates) until commit, and
  // commit touches each link exactly once, so plan-time gates hold.
  if (!transfers_->link_exists(a, b) || transfers_->link_busy(a, b)) {
    link.gated = true;
    return;
  }
  Host& ha = host(a);
  Host& hb = host(b);
  link.revisions = {ha.buffer().revision(), hb.buffer().revision()};
  if (auto memo = idle_memo_.find(link.key);
      memo != idle_memo_.end() && memo->second == link.revisions) {
    link.idle = true;
    return;
  }
  bool toggle = false;  // the serial pump's operator[] default
  if (auto it = link_toggle_.find(link.key); it != link_toggle_.end()) toggle = it->second;
  const std::unordered_set<std::uint64_t>* refused = nullptr;
  if (auto it = refused_this_contact_.find(link.key); it != refused_this_contact_.end()) {
    refused = &it->second;
  }

  ExchangeScratch& scratch = exchange_scratch_[worker];
  // Exclusive lock over every node whose router state planning may touch:
  // the endpoints (planner member scratch, strength memo caches, PRoPHET
  // aging) and both current neighborhoods (the incentive promise queries
  // neighbor strength caches). Sorted acquisition order makes overlapping
  // lock sets deadlock-free; outputs are unaffected because every planned
  // value is a deterministic function of inputs that cannot change within
  // the tick — the locks only serialize cache/scratch access.
  scratch.lock_ids.clear();
  scratch.lock_ids.push_back(a.value());
  scratch.lock_ids.push_back(b.value());
  append_neighbor_ids(a, scratch.lock_ids);
  append_neighbor_ids(b, scratch.lock_ids);
  std::sort(scratch.lock_ids.begin(), scratch.lock_ids.end());
  scratch.lock_ids.erase(std::unique(scratch.lock_ids.begin(), scratch.lock_ids.end()),
                         scratch.lock_ids.end());
  for (const std::uint32_t id : scratch.lock_ids) host_locks_[id].lock();

  const SimTime now = sim_.now();
  Host* first = &host(toggle ? a : b);
  Host* second = &host(toggle ? b : a);
  for (Host* sender : {first, second}) {
    Host* receiver = sender == first ? second : first;
    const std::uint64_t direction_bit = sender->id() < receiver->id() ? 0 : 1;
    sender->router().plan_into(*sender, *receiver, now, scratch.plans);
    for (const routing::ForwardPlan& plan : scratch.plans) {
      const std::uint64_t offer_key =
          (static_cast<std::uint64_t>(plan.message.value()) << 1) | direction_bit;
      // Pre-pump refusals only: one pump never re-walks an offer key, so the
      // serial loop's walk-time inserts cannot influence its own decisions.
      if (refused != nullptr && refused->count(offer_key)) continue;
      const msg::Message* m = sender->buffer().find(plan.message);
      if (m == nullptr) continue;
      const auto decision = receiver->router().accept(*receiver, *sender, *m, plan, now);
      link.offers.push_back(
          StagedOffer{plan, offer_key, sender->id(), receiver->id(), decision});
      if (decision == routing::AcceptDecision::kAccept) {
        link.accepted = true;
        break;
      }
    }
    if (link.accepted) break;
  }

  for (auto it = scratch.lock_ids.rbegin(); it != scratch.lock_ids.rend(); ++it) {
    host_locks_[*it].unlock();
  }
}

void Scenario::commit_staged() {
  const std::size_t n = staged_pairs_.size();
  for (std::size_t i = 0; i < n; ++i) {
    StagedLink& link = staged_[i];
    if (link.gated) continue;  // the serial pump's early return
    // Revision validation: a staged outcome is only replayed against the
    // exact buffer states it was planned from. Commit itself never mutates
    // a buffer (transfers complete later, via scheduled events), so a
    // mismatch can only come from an external mutation between the stages —
    // re-plan the link through the serial pump.
    const std::pair<std::uint64_t, std::uint64_t> revisions{
        host(link.a).buffer().revision(), host(link.b).buffer().revision()};
    if (revisions != link.revisions) {
      ++exchange_replans_;
      pump(link.a, link.b);
      continue;
    }
    if (link.idle) continue;
    bool& toggle = link_toggle_[link.key];
    std::unordered_set<std::uint64_t>& refused = refused_this_contact_[link.key];
    bool started_transfer = false;
    for (const StagedOffer& offer : link.offers) {
      Host& sender = host(offer.from);
      Host& receiver = host(offer.to);
      const msg::Message* m = sender.buffer().find(offer.plan.message);
      DTNIC_ASSERT(m != nullptr);  // revision matched: contents are as planned
      if (offer.decision != routing::AcceptDecision::kAccept) {
        fanout_.on_refused(sender.id(), receiver.id(), *m, offer.decision);
        refused.insert(offer.offer_key);
        continue;
      }
      pending_[link.key] = PendingTransfer{offer.plan, *m};
      fanout_.on_transfer_started(sender.id(), receiver.id(), *m, offer.plan.role);
      const bool started = transfers_->start(sender.id(), receiver.id(),
                                             offer.plan.message, m->size_bytes());
      DTNIC_ASSERT(started);
      toggle = !toggle;
      idle_memo_.erase(link.key);
      started_transfer = true;
      break;
    }
    if (!started_transfer) idle_memo_[link.key] = link.revisions;
  }
}

void Scenario::handle_transfer_complete(const net::TransferManager::Transfer& t,
                                        SimTime duration) {
  const util::ScopedTimer timer(transfer_ns_);
  const std::uint64_t key = pair_key(t.from, t.to);
  auto it = pending_.find(key);
  DTNIC_ASSERT(it != pending_.end());
  PendingTransfer p = std::move(it->second);
  pending_.erase(it);

  Host& sender = host(t.from);
  Host& receiver = host(t.to);
  sender.battery().consume_tx(cfg_.radio, duration);
  receiver.battery().consume_rx(cfg_.radio, duration);

  msg::Message copy = std::move(p.copy);
  copy.record_hop(receiver.id(), sim_.now());
  sender.router().prepare_send(sender, receiver, copy, p.plan, sim_.now());
  sender.router().on_sent(sender, receiver, copy, p.plan, sim_.now());
  if (p.plan.role == routing::TransferRole::kDestination) {
    fanout_.on_delivered(sender.id(), receiver.id(), copy);
  } else {
    fanout_.on_relayed(sender.id(), receiver.id(), copy);
  }
  receiver.router().on_received(receiver, sender, std::move(copy), p.plan, sim_.now());
  pump(t.from, t.to);
}

void Scenario::handle_transfer_abort(const net::TransferManager::Transfer& t) {
  const util::ScopedTimer timer(transfer_ns_);
  pending_.erase(pair_key(t.from, t.to));
  fanout_.on_aborted(t.from, t.to, t.message);
  Host& sender = host(t.from);
  Host& receiver = host(t.to);
  sender.router().on_abort(sender, receiver, t.message, sim_.now());
  receiver.router().on_abort(receiver, sender, t.message, sim_.now());
}

void Scenario::schedule_next_message(std::size_t index) {
  const double rate_per_s = cfg_.messages_per_node_per_hour / 3600.0;
  const double delay_s = workload_rng_[index].exponential(rate_per_s);
  sim_.schedule_in(SimTime::seconds(delay_s), [this, index] {
    create_message(index);
    schedule_next_message(index);
  });
}

void Scenario::create_message(std::size_t index) {
  const util::ScopedTimer timer(workload_ns_);
  Host& source = *hosts_[index];
  util::Rng& rng = workload_rng_[index];
  const SimTime now = sim_.now();

  // Source class drives size/quality/priority (Fig. 5.6 workload; otherwise
  // all sources are "medium" class with uniform quality).
  msg::Priority priority = msg::Priority::kMedium;
  double quality = rng.uniform(0.5, 1.0);
  auto size = cfg_.message_size_bytes;
  if (cfg_.priority_workload) {
    switch (source_class_[index]) {
      case 0:
        priority = msg::Priority::kHigh;
        quality = rng.uniform(0.8, 1.0);
        size = cfg_.message_size_bytes * 3 / 2;
        break;
      case 1:
        priority = msg::Priority::kMedium;
        quality = rng.uniform(0.5, 0.8);
        break;
      default:
        priority = msg::Priority::kLow;
        quality = rng.uniform(0.2, 0.5);
        size = cfg_.message_size_bytes / 2;
        break;
    }
  }
  // Malicious sources generate poor-quality content (§1.3.3).
  if (behaviors_[index].malicious()) quality = rng.uniform(0.1, 0.3);

  msg::Message m(ids_.next(), source.id(), now, size, priority, quality);
  if (cfg_.ttl_hours > 0.0) m.set_ttl(SimTime::hours(cfg_.ttl_hours));

  // The source tags the first `keywords_per_message` facts; the remaining
  // latent keywords are what knowledgeable relays can enrich with.
  const auto picks = rng.sample_indices(
      pool_.size(), cfg_.keywords_per_message + cfg_.latent_extra_keywords);
  std::vector<msg::KeywordId> truth;
  truth.reserve(picks.size());
  for (std::size_t i = 0; i < picks.size(); ++i) {
    truth.push_back(pool_[picks[i]]);
    if (i < static_cast<std::size_t>(cfg_.keywords_per_message)) {
      m.annotate(msg::Annotation{pool_[picks[i]], source.id(), /*truthful=*/true});
    }
  }
  m.set_true_keywords(std::move(truth));

  // Malicious sources also plant irrelevant tags right at creation.
  if (behaviors_[index].malicious() && cfg_.enrichment_enabled &&
      cfg_.scheme == Scheme::kIncentive) {
    core::Enricher enricher(&pool_);
    enricher.enrich_malicious(m, source.id(), behaviors_[index].malicious_tags, rng);
  }

  const msg::MessageId id = m.id();
  source.mark_seen(id);
  auto outcome = source.buffer().add(std::move(m), /*own=*/true);
  if (outcome.result != msg::MessageBuffer::AddResult::kAdded) {
    DTNIC_WARN("scenario") << "node " << source.id() << " buffer full of own messages; "
                           << "creation skipped";
    return;
  }
  for (const msg::Message& evicted : outcome.evicted) {
    fanout_.on_dropped(source.id(), evicted, routing::DropReason::kBufferFull);
  }
  const msg::Message* stored = source.buffer().find(id);
  DTNIC_ASSERT(stored != nullptr);
  fanout_.on_created(*stored);
  source.router().on_originated(source, *stored, now);
  // A fresh message may be immediately forwardable on active contacts.
  for (NodeId neighbor : contacts_->neighbors_of(source.id())) {
    pump(source.id(), neighbor);
  }
}

void Scenario::ttl_sweep() {
  if (cfg_.ttl_hours <= 0.0) return;
  const SimTime now = sim_.now();
  for (auto& h : hosts_) {
    for (const msg::Message& dropped : h->buffer().drop_expired(now)) {
      fanout_.on_dropped(h->id(), dropped, routing::DropReason::kTtlExpired);
    }
  }
}

double Scenario::current_malicious_rating() const {
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    if (behaviors_[i].malicious()) continue;
    core::IncentiveRouter* router = core::IncentiveRouter::of(*hosts_[i]);
    if (router == nullptr) continue;
    for (std::size_t j = 0; j < hosts_.size(); ++j) {
      if (!behaviors_[j].malicious()) continue;
      const NodeId mal = hosts_[j]->id();
      if (!router->ratings().knows(mal)) continue;
      sum += router->ratings().rating_of(mal);
      ++count;
    }
  }
  if (count == 0) return cfg_.drm.default_rating;
  return sum / static_cast<double>(count);
}

double Scenario::total_tokens() const {
  double total = pi_bank_.total_held();
  for (const auto& h : hosts_) {
    if (const core::IncentiveRouter* r = core::IncentiveRouter::of(*h); r != nullptr) {
      total += r->ledger().balance();
    } else if (const core::PiRouter* pi = core::PiRouter::of(*h); pi != nullptr) {
      total += pi->ledger().balance();
    }
  }
  return total;
}

void Scenario::sample_series() {
  const SimTime now = sim_.now();
  malicious_rating_series_.add(now, current_malicious_rating());
  if ((cfg_.scheme == Scheme::kIncentive || cfg_.scheme == Scheme::kPiIncentive) &&
      !hosts_.empty()) {
    mean_tokens_series_.add(now, total_tokens() / static_cast<double>(hosts_.size()));
  }
}

RunResult Scenario::run() {
  const auto wall_start = std::chrono::steady_clock::now();
  contacts_->start();
  for (std::size_t i = 0; i < hosts_.size(); ++i) schedule_next_message(i);
  sim_.schedule_every(SimTime::seconds(cfg_.scan_interval_s), [this] { pump_all_idle(); });
  if (cfg_.ttl_hours > 0.0) {
    sim_.schedule_every(SimTime::seconds(cfg_.ttl_sweep_interval_s), [this] { ttl_sweep(); });
  }
  sample_series();
  sim_.schedule_every(SimTime::seconds(cfg_.sample_interval_s), [this] { sample_series(); });

  sim_.run_until(SimTime::hours(cfg_.sim_hours));
  sample_series();
  trace_.finalize(sim_.now());

  RunResult result;
  result.scheme = scheme_name(cfg_.scheme);
  result.seed = cfg_.seed;
  result.created = metrics_.created();
  result.delivered = metrics_.delivered_unique();
  result.mdr = metrics_.mdr();
  result.mean_hops = metrics_.mean_delivery_hops();
  result.mean_latency_s = metrics_.mean_delivery_latency_s();
  result.deliveries_total = metrics_.deliveries_total();
  result.created_high = metrics_.created_for(msg::Priority::kHigh);
  result.created_medium = metrics_.created_for(msg::Priority::kMedium);
  result.created_low = metrics_.created_for(msg::Priority::kLow);
  result.delivered_high = metrics_.delivered_for(msg::Priority::kHigh);
  result.delivered_medium = metrics_.delivered_for(msg::Priority::kMedium);
  result.delivered_low = metrics_.delivered_for(msg::Priority::kLow);
  result.mdr_high = metrics_.mdr_for(msg::Priority::kHigh);
  result.mdr_medium = metrics_.mdr_for(msg::Priority::kMedium);
  result.mdr_low = metrics_.mdr_for(msg::Priority::kLow);
  result.traffic = metrics_.traffic();
  result.relay_arrivals = metrics_.relay_arrivals();
  result.contacts = contacts_->contacts_formed();
  result.contacts_suppressed = contacts_->contacts_suppressed();
  result.tokens_paid = metrics_.tokens_paid_total();
  result.payments = metrics_.payments();
  result.refused_no_tokens = metrics_.refused_no_tokens();
  result.refused_untrusted = metrics_.refused_untrusted();
  result.aborted = metrics_.aborted();
  result.dropped_buffer = metrics_.dropped_buffer();
  result.dropped_ttl = metrics_.dropped_ttl();

  if (cfg_.scheme == Scheme::kIncentive || cfg_.scheme == Scheme::kPiIncentive) {
    std::vector<double> balances;
    balances.reserve(hosts_.size());
    for (const auto& h : hosts_) {
      if (const core::IncentiveRouter* r = core::IncentiveRouter::of(*h); r != nullptr) {
        balances.push_back(r->ledger().balance());
      } else if (const core::PiRouter* pi = core::PiRouter::of(*h); pi != nullptr) {
        balances.push_back(pi->ledger().balance());
      }
    }
    double total = 0.0;
    double lo = balances.empty() ? 0.0 : balances.front();
    double hi = lo;
    for (const double b : balances) {
      total += b;
      lo = std::min(lo, b);
      hi = std::max(hi, b);
    }
    result.total_tokens = total + pi_bank_.total_held();
    result.avg_final_tokens = hosts_.empty() ? 0.0 : total / static_cast<double>(hosts_.size());
    result.min_final_tokens = lo;
    result.max_final_tokens = hi;
    result.token_fairness = util::jain_fairness(balances);
  }

  double energy = 0.0;
  for (const auto& h : hosts_) energy += h->battery().consumed_j();
  result.total_energy_j = energy;

  result.timing.routing_pre_ns = routing_pre_ns_;
  result.timing.routing_plan_ns = routing_plan_ns_;
  result.timing.routing_commit_ns = routing_commit_ns_;
  result.timing.routing_ns = routing_pre_ns_ + routing_plan_ns_ + routing_commit_ns_;
  result.timing.exchange_replans = exchange_replans_;
  result.timing.transfer_ns = transfer_ns_;
  result.timing.workload_ns = workload_ns_;
  if (connectivity_ != nullptr) {
    result.timing.scan_ns = connectivity_->scan_ns();
    result.timing.scans = connectivity_->scans();
  }
  result.timing.wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                           wall_start)
          .count());

  result.malicious_rating = malicious_rating_series_;
  result.mean_tokens = mean_tokens_series_;
  return result;
}

}  // namespace dtnic::scenario
