#pragma once

#include <functional>
#include <vector>

#include "scenario/config.h"
#include "scenario/result.h"
#include "util/summary.h"

/// \file experiment.h
/// Multi-seed experiment execution: the paper reports every figure as the
/// average of five simulation runs; AggregateResult carries mean and stddev
/// of each metric across seeds.

namespace dtnic::scenario {

struct AggregateResult {
  std::string scheme;
  std::size_t runs = 0;
  util::RunningStats mdr;
  util::RunningStats traffic;
  util::RunningStats created;
  util::RunningStats delivered;
  util::RunningStats mdr_high;
  util::RunningStats mdr_medium;
  util::RunningStats mdr_low;
  util::RunningStats avg_final_tokens;
  util::RunningStats refused_no_tokens;
  util::RunningStats refused_untrusted;
  util::RunningStats mean_latency_s;
  util::RunningStats mean_hops;
  std::vector<RunResult> raw;  ///< per-seed results (time series live here)
};

class ExperimentRunner {
 public:
  /// Number of seeds per configuration; the paper uses five runs.
  explicit ExperimentRunner(std::size_t seeds = 5, std::uint64_t base_seed = 1);

  /// Run one configuration across all seeds (seed = base, base+1, ...).
  [[nodiscard]] AggregateResult run(ScenarioConfig config) const;

  /// Run a single seeded configuration.
  [[nodiscard]] static RunResult run_once(ScenarioConfig config);

  /// Fig. 5.4 helper: average the malicious-rating series across seeds at
  /// the sample times of the first run.
  [[nodiscard]] static std::vector<std::pair<double, double>> mean_series(
      const std::vector<RunResult>& runs);

  [[nodiscard]] std::size_t seeds() const { return seeds_; }

 private:
  std::size_t seeds_;
  std::uint64_t base_seed_;
};

}  // namespace dtnic::scenario
