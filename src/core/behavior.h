#pragma once

/// \file behavior.h
/// Node behavior profiles for the paper's evaluation (§5):
///  * cooperative — relays faithfully, enriches honestly with some probability
///  * selfish     — keeps the radio open for only 1 of 10 encounters
///  * malicious   — tags relayed messages with irrelevant keywords to farm
///                  incentive tokens (the DRM's adversary)

namespace dtnic::core {

enum class BehaviorType {
  kCooperative,
  kSelfish,
  kMalicious,
  /// Cooperates while charged; below a battery threshold it economizes like
  /// a selfish node (the paper's stated *reason* for selfishness — "limited
  /// battery power" — modeled endogenously).
  kBatteryConscious,
};

[[nodiscard]] constexpr const char* behavior_name(BehaviorType t) {
  switch (t) {
    case BehaviorType::kCooperative: return "cooperative";
    case BehaviorType::kSelfish: return "selfish";
    case BehaviorType::kMalicious: return "malicious";
    case BehaviorType::kBatteryConscious: return "battery-conscious";
  }
  return "?";
}

struct BehaviorProfile {
  BehaviorType type = BehaviorType::kCooperative;

  /// Probability a selfish node's radio participates in a fresh encounter
  /// (paper §5.A: "open one out of ten times").
  double selfish_participation = 0.1;

  /// Probability a cooperative relay enriches an in-transit message.
  double enrich_probability = 0.3;
  /// Max truthful tags an honest enrichment adds.
  int honest_max_tags = 2;

  /// Irrelevant tags a malicious relay plants per relayed message.
  int malicious_tags = 3;

  /// Battery-conscious nodes: full cooperation above this battery level,
  /// `battery_participation` gating below it.
  double battery_threshold = 0.3;
  double battery_participation = 0.2;

  [[nodiscard]] bool selfish() const { return type == BehaviorType::kSelfish; }
  [[nodiscard]] bool malicious() const { return type == BehaviorType::kMalicious; }
  [[nodiscard]] bool battery_conscious() const {
    return type == BehaviorType::kBatteryConscious;
  }
};

}  // namespace dtnic::core
