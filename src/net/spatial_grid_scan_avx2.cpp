#include "net/spatial_grid.h"

/// \file spatial_grid_scan_avx2.cpp
/// AVX2 distance kernel: one 4-lane vector per cell segment, two segments
/// per iteration → an 8-wide distance² test whose compare masks accumulate
/// into one per-point hit word. Compiled with -mavx2 -ffp-contract=off; the per-lane
/// arithmetic (sub, sub, mul, mul, add) is the exact IEEE sequence of the
/// scalar kernel — and the √ happens once for every variant inside
/// sort_pairs — so hits and distances are bit-identical.

#ifdef DTNIC_SIMD_X86

#include <immintrin.h>

#include <algorithm>
#include <cmath>

#include "net/spatial_grid_scan_decode.h"

namespace dtnic::net {

void SpatialGrid::scan_kernel_avx2(const ScanView& view, double r2, std::uint32_t shard,
                                   std::uint32_t shard_count, std::vector<Pair>& out) {
  using scan_detail::kIntraMask;
  const __m256d vr2 = _mm256_set1_pd(r2);
  // Emission staging: hits land in an L1-resident stack buffer and reach
  // `out` in bulk flushes, so the decode path pays one store per pair
  // instead of a capacity check + size update per push_back.
  constexpr std::uint32_t kStage = 128;
  Pair staged[kStage];
  std::uint32_t staged_n = 0;
  const auto flush = [&staged, &staged_n, &out] {
    out.insert(out.end(), staged, staged + staged_n);
    staged_n = 0;
  };
  for (std::size_t c = 0; c < view.pool_size; ++c) {
    const std::uint32_t n = view.counts[c];
    if (n == 0) continue;
    const ScanBlock& cell = view.blocks[c];
    const CellLinks& links = view.links[c];
    if (shard_count != 0 && shard_of_cell(links.cx, shard_count) != shard) continue;
    // Gather the candidate segments: the cell itself (segment 0, with the
    // intra mask keeping only j > i) plus its *present* half-neighborhood
    // directions, compacted to the front so absent directions cost no
    // distance work at all. The compaction is branchless — every direction
    // stores unconditionally at the write cursor, and only the cursor
    // increment is predicated — so the effectively random presence pattern
    // never touches the branch predictor. An odd segment count is padded
    // with the static all-dead block (its +inf lanes cannot pass the radius
    // test), giving ceil(live/2) 8-wide groups instead of a fixed three.
    // Overflow is detected from the L1-resident count array (value masked
    // by presence; the load itself is safe — index 0 is a valid pool slot);
    // any overflowing cell in the set routes the whole cell through the
    // scalar fallback — identical arithmetic, so no determinism seam.
    const ScanBlock* segs[6];
    std::uint32_t seg_cell[6];  // pool index per segment, for the id lookup
    segs[0] = &cell;
    seg_cell[0] = static_cast<std::uint32_t>(c);
    bool fallback = n > kInline;
    int m = 1;
    for (int k = 0; k < 4; ++k) {
      const std::int32_t h = links.half[k];
      const auto idx = static_cast<std::uint32_t>(h >= 0 ? h : 0);
      fallback |= (h >= 0) & (view.counts[idx] > kInline);
      segs[m] = &view.blocks[idx];
      seg_cell[m] = idx;
      m += static_cast<int>(h >= 0);
    }
    segs[m] = &kEmptyBlock;
    seg_cell[m] = 0;  // never read: dead lanes cannot hit
    if (fallback) {
      scan_cell_scalar(view, static_cast<std::uint32_t>(c), r2, out);
      continue;
    }
    __m256d vx[6];
    __m256d vy[6];
    const int padded = (m + 1) & ~1;
    for (int s = 0; s < padded; ++s) {
      vx[s] = _mm256_load_pd(segs[s]->x);
      vy[s] = _mm256_load_pd(segs[s]->y);
    }
    for (std::uint32_t i = 0; i < n; ++i) {
      const double xi_s = cell.x[i];
      const double yi_s = cell.y[i];
      const __m256d xi = _mm256_set1_pd(xi_s);
      const __m256d yi = _mm256_set1_pd(yi_s);
      // Accumulate every group's hit bits into one word — bit (8g + lane)
      // set means candidate lane `lane` of group g is within range — so the
      // whole point costs a single (mispredict-prone) branch instead of one
      // per group, and the common no-hit point falls through branch-free.
      std::uint32_t pm = 0;
      for (int s = 0, g = 0; s < m; s += 2, ++g) {
        const __m256d dx0 = _mm256_sub_pd(xi, vx[s]);
        const __m256d dy0 = _mm256_sub_pd(yi, vy[s]);
        const __m256d d20 = _mm256_add_pd(_mm256_mul_pd(dx0, dx0), _mm256_mul_pd(dy0, dy0));
        const __m256d dx1 = _mm256_sub_pd(xi, vx[s + 1]);
        const __m256d dy1 = _mm256_sub_pd(yi, vy[s + 1]);
        const __m256d d21 = _mm256_add_pd(_mm256_mul_pd(dx1, dx1), _mm256_mul_pd(dy1, dy1));
        auto lo_bits =
            static_cast<std::uint32_t>(_mm256_movemask_pd(_mm256_cmp_pd(d20, vr2, _CMP_LE_OQ)));
        const auto hi_bits =
            static_cast<std::uint32_t>(_mm256_movemask_pd(_mm256_cmp_pd(d21, vr2, _CMP_LE_OQ)));
        if (s == 0) lo_bits &= kIntraMask[i];
        pm |= (lo_bits | (hi_bits << 4)) << (8 * g);
      }
      if (pm == 0) continue;
      // Emission iterates the set bits (ascending, matching the old
      // table-decode order). d² is recomputed per hit from the scalar lane
      // values — the identical IEEE expression the vector lanes evaluated
      // (-ffp-contract=off), so the value is bit-identical, and recomputing
      // beats spilling the vector registers: no stores on the no-hit path
      // and no store-to-load-forwarding stall on the hit path.
      const std::uint32_t ida = view.ids[c * kInline + i];
      if (staged_n + 24 > kStage) flush();  // a point adds ≤ 24 pairs
      do {
        const int lane = __builtin_ctz(pm);
        pm &= pm - 1;
        const int seg = lane >> 2;
        const int sub = lane & 3;
        const ScanBlock* sb = segs[seg];
        const double dx = xi_s - sb->x[sub];
        const double dy = yi_s - sb->y[sub];
        const double d2 = dx * dx + dy * dy;
        const std::uint32_t idb = view.ids[seg_cell[seg] * kInline + sub];
        const util::NodeId a{std::min(ida, idb)};
        const util::NodeId b{std::max(ida, idb)};
        staged[staged_n++] = Pair{a, b, d2};
      } while (pm != 0);
    }
  }
  flush();
  // Pairs leave the kernel carrying d²; sort_pairs applies the (scalar) √
  // during its scatter pass, one code path for every variant.
}

}  // namespace dtnic::net

#endif  // DTNIC_SIMD_X86
