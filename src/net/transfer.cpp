#include "net/transfer.h"

#include "util/assert.h"

namespace dtnic::net {

TransferManager::TransferManager(sim::Simulator& sim, double bitrate_bps)
    : sim_(sim), bitrate_bps_(bitrate_bps) {
  DTNIC_REQUIRE_MSG(bitrate_bps > 0.0, "bitrate must be positive");
}

TransferManager::~TransferManager() {
  // The completion lambdas capture `this`; cancel them so a manager torn
  // down mid-simulation (observer error paths, tests) leaves no event that
  // would fire into freed memory.
  for (auto& [key, link] : links_) {
    if (link.in_flight) sim_.cancel(link.in_flight->completion);
  }
}

std::uint64_t TransferManager::pair_key(NodeId a, NodeId b) {
  const auto lo = std::min(a.value(), b.value());
  const auto hi = std::max(a.value(), b.value());
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

void TransferManager::link_up(NodeId a, NodeId b) {
  // emplace never overwrites: a duplicate link_up for a tracked pair keeps
  // the existing LinkState — and with it any in-flight transfer — intact.
  links_.emplace(pair_key(a, b), LinkState{});
}

void TransferManager::link_down(NodeId a, NodeId b) {
  // Unknown pair (already torn down, or never up): nothing to abort, and
  // aborted_ must not move — abort accounting is idempotent.
  auto it = links_.find(pair_key(a, b));
  if (it == links_.end()) return;
  if (it->second.in_flight) {
    InFlight flight = std::move(*it->second.in_flight);
    it->second.in_flight.reset();
    sim_.cancel(flight.completion);
    ++aborted_;
    links_.erase(it);
    if (abort_) abort_(flight.transfer);
    return;
  }
  links_.erase(it);
}

std::size_t TransferManager::transfers_in_flight() const {
  std::size_t n = 0;
  for (const auto& [key, link] : links_) n += link.in_flight.has_value() ? 1 : 0;
  return n;
}

bool TransferManager::link_exists(NodeId a, NodeId b) const {
  return links_.count(pair_key(a, b)) > 0;
}

bool TransferManager::link_busy(NodeId a, NodeId b) const {
  auto it = links_.find(pair_key(a, b));
  return it != links_.end() && it->second.in_flight.has_value();
}

util::SimTime TransferManager::duration_for(std::uint64_t bytes) const {
  return util::SimTime::seconds(static_cast<double>(bytes) / bitrate_bps_);
}

bool TransferManager::start(NodeId from, NodeId to, MessageId message, std::uint64_t bytes) {
  DTNIC_REQUIRE(from.valid() && to.valid() && message.valid());
  DTNIC_REQUIRE_MSG(bytes > 0, "cannot transfer zero bytes");
  const std::uint64_t key = pair_key(from, to);
  auto it = links_.find(key);
  if (it == links_.end() || it->second.in_flight) return false;

  const util::SimTime duration = duration_for(bytes);
  InFlight flight;
  flight.transfer = Transfer{from, to, message, bytes, sim_.now()};
  flight.completion = sim_.schedule_in(duration, [this, key] { finish(key); });
  it->second.in_flight = std::move(flight);
  ++started_;
  return true;
}

void TransferManager::finish(std::uint64_t key) {
  auto it = links_.find(key);
  DTNIC_ASSERT(it != links_.end() && it->second.in_flight.has_value());
  const Transfer transfer = it->second.in_flight->transfer;
  it->second.in_flight.reset();
  ++completed_;
  bytes_delivered_ += transfer.bytes;
  if (complete_) complete_(transfer, sim_.now() - transfer.started);
}

}  // namespace dtnic::net
