#include <gtest/gtest.h>

#include "core/operator_api.h"
#include "routing/epidemic.h"
#include "test_helpers.h"

namespace dtnic::core {
namespace {

using routing::Host;
using test::MicroWorld;
using util::SimTime;

constexpr auto kT0 = SimTime::zero();

class OperatorApiFixture : public ::testing::Test {
 protected:
  OperatorApiFixture() {
    pool = w.keywords.make_pool(30);
    world.keyword_pool = &pool;
    world.drm.rating_noise_sd = 0.0;
  }

  Host& make_node(BehaviorProfile profile = {}) {
    Host& h = w.add_host();
    auto router = std::make_unique<IncentiveRouter>(
        w.oracle, chitchat, SimTime::seconds(5), &world, profile, util::Rng(1));
    h.set_router(std::move(router));
    return h;
  }

  MicroWorld w;
  std::vector<msg::KeywordId> pool;
  IncentiveWorld world;
  routing::chitchat::ChitChatParams chitchat;
  msg::MessageIdSource ids;
};

TEST_F(OperatorApiFixture, RequiresIncentiveRouter) {
  Host& plain = w.add_host();
  plain.set_router(std::make_unique<routing::EpidemicRouter>(w.oracle));
  EXPECT_THROW(DtnOperator(plain, w.oracle, w.keywords, ids), std::invalid_argument);
}

TEST_F(OperatorApiFixture, AnnotateCreatesOwnedTaggedMessage) {
  Host& h = make_node();
  DtnOperator op(h, w.oracle, w.keywords, ids);
  const msg::Message& m =
      op.annotate({"tree", "garden"}, kT0, test::kMB, msg::Priority::kHigh, 0.9);
  EXPECT_EQ(m.source(), h.id());
  EXPECT_EQ(m.annotations().size(), 2u);
  EXPECT_EQ(m.true_keywords().size(), 2u);
  EXPECT_TRUE(h.buffer().contains(m.id()));
  EXPECT_TRUE(h.has_seen(m.id()));
  EXPECT_EQ(w.events.created, 1);
  EXPECT_THROW((void)op.annotate({}, kT0, test::kMB, msg::Priority::kLow, 0.5),
               std::invalid_argument);
}

TEST_F(OperatorApiFixture, SubscribeRegistersInterestsEverywhere) {
  Host& h = make_node();
  DtnOperator op(h, w.oracle, w.keywords, ids);
  op.subscribe({"flood", "rescue"}, kT0);
  const auto flood = w.keywords.find("flood");
  EXPECT_TRUE(w.oracle.interests_of(h.id()).count(flood));
  EXPECT_TRUE(op.router().interests().has_direct(flood));
  // Subscriptions accumulate.
  op.subscribe({"bridge"}, kT0);
  EXPECT_EQ(w.oracle.interests_of(h.id()).size(), 3u);
}

TEST_F(OperatorApiFixture, DecideRoleUsesOracle) {
  Host& a = make_node();
  Host& b = make_node();
  DtnOperator opa(a, w.oracle, w.keywords, ids);
  DtnOperator opb(b, w.oracle, w.keywords, ids);
  opb.subscribe({"flood"}, kT0);
  const auto& m = opa.annotate({"flood"}, kT0, test::kMB, msg::Priority::kMedium, 0.8);
  EXPECT_EQ(opa.decide_role(m, b), routing::TransferRole::kDestination);
  const auto& other = opa.annotate({"parade"}, kT0, test::kMB, msg::Priority::kMedium, 0.8);
  EXPECT_EQ(opa.decide_role(other, b), routing::TransferRole::kRelay);
}

TEST_F(OperatorApiFixture, MessagesToForwardMatchesPlan) {
  Host& a = make_node();
  Host& b = make_node();
  DtnOperator opa(a, w.oracle, w.keywords, ids);
  DtnOperator opb(b, w.oracle, w.keywords, ids);
  opb.subscribe({"flood"}, kT0);
  const auto& m = opa.annotate({"flood"}, kT0, test::kMB, msg::Priority::kMedium, 0.8);
  const auto to_forward = opa.messages_to_forward(b, kT0);
  ASSERT_EQ(to_forward.size(), 1u);
  EXPECT_EQ(to_forward[0], m.id());
}

TEST_F(OperatorApiFixture, ComputeIncentiveWithinBounds) {
  Host& a = make_node();
  Host& b = make_node();
  DtnOperator opa(a, w.oracle, w.keywords, ids);
  DtnOperator opb(b, w.oracle, w.keywords, ids);
  opb.subscribe({"flood"}, kT0);
  const auto& m = opa.annotate({"flood"}, kT0, test::kMB, msg::Priority::kHigh, 1.0);
  const double promise = opa.compute_incentive(m, b);
  EXPECT_GT(promise, 0.0);
  EXPECT_LE(promise, world.incentive.max_incentive);
}

TEST_F(OperatorApiFixture, BestRelayPicksStrongestInterest) {
  Host& a = make_node();
  Host& weak = make_node();
  Host& strong = make_node();
  DtnOperator opa(a, w.oracle, w.keywords, ids);
  DtnOperator op_strong(strong, w.oracle, w.keywords, ids);
  op_strong.subscribe({"flood"}, kT0);
  const auto& m = opa.annotate({"flood"}, kT0, test::kMB, msg::Priority::kMedium, 0.8);
  EXPECT_EQ(opa.best_relay({&weak, &strong}, m), &strong);
  EXPECT_EQ(opa.best_relay({&weak}, m), nullptr);  // zero strength everywhere
  EXPECT_EQ(opa.best_relay({}, m), nullptr);
}

TEST_F(OperatorApiFixture, EnrichAddsUserTags) {
  Host& h = make_node();
  DtnOperator op(h, w.oracle, w.keywords, ids);
  const auto& m = op.annotate({"tree"}, kT0, test::kMB, msg::Priority::kMedium, 0.8);
  EXPECT_EQ(op.enrich(m.id(), {"oak", "park"}), 2);
  EXPECT_EQ(op.enrich(m.id(), {"oak"}), 0);  // duplicate keyword
  EXPECT_EQ(h.buffer().find(m.id())->annotations().size(), 3u);
  EXPECT_THROW((void)op.enrich(msg::MessageId(999), {"x"}), std::invalid_argument);
}

TEST_F(OperatorApiFixture, RateMessageAndNode) {
  Host& h = make_node();
  DtnOperator op(h, w.oracle, w.keywords, ids);
  const auto& good = op.annotate({"tree"}, kT0, test::kMB, msg::Priority::kMedium, 1.0);
  const double r = op.rate_message(good);
  EXPECT_GE(r, 0.0);
  EXPECT_LE(r, 5.0);
  // Unknown node: the DRM default.
  EXPECT_DOUBLE_EQ(op.rate_node(util::NodeId(42)), world.drm.default_rating);
}

TEST_F(OperatorApiFixture, TokensReportLedger) {
  Host& h = make_node();
  DtnOperator op(h, w.oracle, w.keywords, ids);
  EXPECT_DOUBLE_EQ(op.tokens(), world.incentive.initial_tokens);
}

TEST_F(OperatorApiFixture, WeightMaintenanceFunctions) {
  Host& a = make_node();
  Host& b = make_node();
  DtnOperator opa(a, w.oracle, w.keywords, ids);
  DtnOperator opb(b, w.oracle, w.keywords, ids);
  opa.subscribe({"alpha"}, kT0);
  opb.subscribe({"beta"}, kT0);
  opa.increment_weights(b, kT0);
  EXPECT_TRUE(opa.router().interests().has(w.keywords.find("beta")));
  // Decay long after: the transient interest fades.
  opa.decay_weights(SimTime::hours(10));
  opa.decay_weights(SimTime::hours(30));
  EXPECT_LT(opa.router().interests().weight(w.keywords.find("beta")), 0.05);
}

}  // namespace
}  // namespace dtnic::core
