#pragma once

#include "routing/router.h"

/// \file first_contact.h
/// First-Contact routing: a single copy of each message wanders the network,
/// handed to the first encountered node and removed from the sender. A cheap
/// forwarding-based baseline (one copy, no replication).

namespace dtnic::routing {

class FirstContactRouter : public Router {
 public:
  explicit FirstContactRouter(const DestinationOracle& oracle)
      : Router(oracle, RouterKind::kFirstContact) {}

  [[nodiscard]] std::vector<ForwardPlan> plan(Host& self, Host& peer,
                                              util::SimTime now) override;
  void on_sent(Host& self, Host& peer, const msg::Message& m, const ForwardPlan& plan,
               util::SimTime now) override;
};

}  // namespace dtnic::routing
