#include "obs/node_stats.h"

#include <algorithm>

#include "util/num_format.h"

namespace dtnic::obs {

NodeStatsCollector::NodeStats& NodeStatsCollector::at(routing::NodeId id) {
  const std::size_t index = id.value();
  if (index >= stats_.size()) stats_.resize(index + 1);
  return stats_[index];
}

void NodeStatsCollector::on_created(const msg::Message& m) { ++at(m.source()).originated; }

void NodeStatsCollector::on_relayed(routing::NodeId from, routing::NodeId to,
                                    const msg::Message&) {
  ++at(from).relays_out;
  ++at(to).relays_in;
}

void NodeStatsCollector::on_delivered(routing::NodeId from, routing::NodeId to,
                                      const msg::Message&) {
  ++at(from).deliveries_made;
  ++at(to).delivered_to;
}

void NodeStatsCollector::on_refused(routing::NodeId, routing::NodeId to, const msg::Message&,
                                    routing::AcceptDecision why) {
  NodeStats& s = at(to);
  switch (why) {
    case routing::AcceptDecision::kNoTokens: ++s.refusals_no_tokens; break;
    case routing::AcceptDecision::kUntrustedSender: ++s.refusals_untrusted; break;
    case routing::AcceptDecision::kDuplicate: ++s.refusals_duplicate; break;
    default: ++s.refusals_other; break;
  }
}

void NodeStatsCollector::on_aborted(routing::NodeId from, routing::NodeId,
                                    routing::MessageId) {
  ++at(from).aborted;
}

void NodeStatsCollector::on_dropped(routing::NodeId at_node, const msg::Message&,
                                    routing::DropReason) {
  ++at(at_node).dropped;
}

void NodeStatsCollector::on_tokens_paid(routing::NodeId payer, routing::NodeId payee,
                                        double amount) {
  NodeStats& p = at(payer);
  p.tokens_spent += amount;
  ++p.payments_made;
  NodeStats& r = at(payee);
  r.tokens_earned += amount;
  ++r.payments_received;
}

void NodeStatsCollector::on_reputation_updated(routing::NodeId rater, routing::NodeId rated,
                                               double rating) {
  at(rated);  // ensure the rated node has a row even if otherwise inactive
  opinions_[(static_cast<std::uint64_t>(rater.value()) << 32) | rated.value()] = rating;
}

void NodeStatsCollector::on_enriched(routing::NodeId at_node, const msg::Message&,
                                     int tags_added) {
  at(at_node).enrich_tags += static_cast<std::uint64_t>(tags_added);
}

void NodeStatsCollector::fold_reputation(std::vector<NodeStats>& stats) const {
  std::vector<double> sum(stats.size(), 0.0);
  std::vector<std::uint64_t> count(stats.size(), 0);
  for (const auto& [key, rating] : opinions_) {
    const std::size_t index = key & 0xffffffffu;
    if (index >= stats.size()) continue;
    sum[index] += rating;
    ++count[index];
  }
  for (std::size_t i = 0; i < stats.size(); ++i) {
    if (count[i] == 0) continue;
    stats[i].reputation = sum[i] / static_cast<double>(count[i]);
    stats[i].rated = true;
  }
}

NodeStatsCollector::NodeStats NodeStatsCollector::of(routing::NodeId id) const {
  if (id.value() >= stats_.size()) return NodeStats{};
  std::vector<NodeStats> folded = stats_;
  fold_reputation(folded);
  return folded[id.value()];
}

namespace {

constexpr const char* kCsvHeader =
    "node,originated,relays_out,relays_in,delivered_to,deliveries_made,"
    "refusals_no_tokens,refusals_untrusted,refusals_duplicate,refusals_other,"
    "dropped,aborted,tokens_earned,tokens_spent,payments_made,payments_received,"
    "enrich_tags,reputation\n";

void append_counters(std::string& out, const NodeStatsCollector::NodeStats& s) {
  using util::append_double;
  using util::append_u64;
  append_u64(out, s.originated);
  out += ',';
  append_u64(out, s.relays_out);
  out += ',';
  append_u64(out, s.relays_in);
  out += ',';
  append_u64(out, s.delivered_to);
  out += ',';
  append_u64(out, s.deliveries_made);
  out += ',';
  append_u64(out, s.refusals_no_tokens);
  out += ',';
  append_u64(out, s.refusals_untrusted);
  out += ',';
  append_u64(out, s.refusals_duplicate);
  out += ',';
  append_u64(out, s.refusals_other);
  out += ',';
  append_u64(out, s.dropped);
  out += ',';
  append_u64(out, s.aborted);
  out += ',';
  append_double(out, s.tokens_earned);
  out += ',';
  append_double(out, s.tokens_spent);
  out += ',';
  append_u64(out, s.payments_made);
  out += ',';
  append_u64(out, s.payments_received);
  out += ',';
  append_u64(out, s.enrich_tags);
}

}  // namespace

void NodeStatsCollector::write_csv(std::ostream& os) const {
  std::vector<NodeStats> folded = stats_;
  fold_reputation(folded);
  std::string out;
  out += kCsvHeader;
  for (std::size_t i = 0; i < folded.size(); ++i) {
    util::append_u64(out, i);
    out += ',';
    append_counters(out, folded[i]);
    out += ',';
    if (folded[i].rated) util::append_double(out, folded[i].reputation);
    out += '\n';
  }
  os << out;
}

void NodeStatsCollector::write_json(std::ostream& os) const {
  std::vector<NodeStats> folded = stats_;
  fold_reputation(folded);
  std::string out = "{\"schema\":\"dtnic.node_stats.v1\",\"nodes\":[";
  for (std::size_t i = 0; i < folded.size(); ++i) {
    const NodeStats& s = folded[i];
    if (i > 0) out += ',';
    out += "\n  {\"node\":";
    util::append_u64(out, i);
    auto field_u64 = [&out](const char* key, std::uint64_t v) {
      out += ",\"";
      out += key;
      out += "\":";
      util::append_u64(out, v);
    };
    auto field_num = [&out](const char* key, double v) {
      out += ",\"";
      out += key;
      out += "\":";
      util::append_double(out, v);
    };
    field_u64("originated", s.originated);
    field_u64("relays_out", s.relays_out);
    field_u64("relays_in", s.relays_in);
    field_u64("delivered_to", s.delivered_to);
    field_u64("deliveries_made", s.deliveries_made);
    field_u64("refusals_no_tokens", s.refusals_no_tokens);
    field_u64("refusals_untrusted", s.refusals_untrusted);
    field_u64("refusals_duplicate", s.refusals_duplicate);
    field_u64("refusals_other", s.refusals_other);
    field_u64("dropped", s.dropped);
    field_u64("aborted", s.aborted);
    field_num("tokens_earned", s.tokens_earned);
    field_num("tokens_spent", s.tokens_spent);
    field_u64("payments_made", s.payments_made);
    field_u64("payments_received", s.payments_received);
    field_u64("enrich_tags", s.enrich_tags);
    if (s.rated) {
      field_num("reputation", s.reputation);
    } else {
      out += ",\"reputation\":null";
    }
    out += '}';
  }
  out += "\n]}\n";
  os << out;
}

}  // namespace dtnic::obs
