#include "core/incentive.h"

#include <algorithm>

#include "net/energy.h"
#include "util/assert.h"

namespace dtnic::core {

double software_incentive(const IncentiveParams& params, const SoftwareFactors& f) {
  DTNIC_REQUIRE(f.rank_u >= 1 && f.rank_v >= 1);
  DTNIC_REQUIRE(f.max_size_bytes > 0);
  DTNIC_REQUIRE(f.max_quality > 0.0);
  DTNIC_REQUIRE(f.sum_weights_v >= 0.0 && f.max_sum_weights >= 0.0);

  const bool v_cannot_deliver_now = f.sum_weights_v <= 0.0;
  // First branch of Algorithm 3: v currently has no interest strength for
  // the message (P_v = 0), the sender sits higher in the role hierarchy
  // (R_u < R_v, e.g. sergeant -> soldier), and the message is high priority.
  if (v_cannot_deliver_now) {
    if (f.rank_u < f.rank_v && f.priority == msg::Priority::kHigh) {
      return params.max_incentive;
    }
    return 0.0;
  }

  const double p_v = f.max_sum_weights > 0.0
                         ? std::min(1.0, f.sum_weights_v / f.max_sum_weights)
                         : 1.0;
  const double size_term = static_cast<double>(f.size_bytes) /
                           static_cast<double>(f.max_size_bytes);
  const double quality_term = f.quality / f.max_quality;
  const double priority_divisor = static_cast<double>(f.rank_u) *
                                  static_cast<double>(msg::priority_level(f.priority));
  const double i_s = (0.25 * (std::min(1.0, size_term) + std::min(1.0, quality_term)) +
                      0.5 * (p_v / priority_divisor)) *
                     params.max_incentive;
  return std::clamp(i_s, 0.0, params.max_incentive);
}

double hardware_incentive(const IncentiveParams& params, const net::RadioParams& radio,
                          bool sender_is_source, double distance_m, util::SimTime duration) {
  DTNIC_REQUIRE(duration >= util::SimTime::zero());
  double power = radio.tx_power_w;
  if (!sender_is_source) {
    // A relay is compensated for having received the copy as well (P_r from
    // the Friis model at the contact distance).
    power += net::FriisModel::received_power(radio.tx_power_w, distance_m, radio.wavelength_m);
  }
  return params.hardware_c * power * duration.sec();
}

double total_promise(const IncentiveParams& params, double software, double hardware) {
  DTNIC_REQUIRE(software >= 0.0 && hardware >= 0.0);
  return std::min(software + hardware, params.max_incentive);
}

double tag_reward(const IncentiveParams& params, int relevant_tags) {
  DTNIC_REQUIRE(relevant_tags >= 0);
  const double per_tag = params.tag_reward_z * params.max_incentive;
  return std::min(per_tag * static_cast<double>(relevant_tags), params.tag_reward_cap);
}

}  // namespace dtnic::core
