#include "msg/keyword.h"

#include <cstdio>

#include "util/assert.h"

namespace dtnic::msg {

KeywordId KeywordTable::intern(const std::string& name) {
  DTNIC_REQUIRE_MSG(!name.empty(), "keyword must not be empty");
  if (auto it = index_.find(name); it != index_.end()) return it->second;
  const KeywordId id(static_cast<KeywordId::underlying>(names_.size()));
  names_.push_back(name);
  index_.emplace(name, id);
  return id;
}

KeywordId KeywordTable::find(const std::string& name) const {
  auto it = index_.find(name);
  return it != index_.end() ? it->second : KeywordId{};
}

const std::string& KeywordTable::name(KeywordId id) const {
  DTNIC_REQUIRE_MSG(id.valid() && id.value() < names_.size(), "unknown keyword id");
  return names_[id.value()];
}

std::vector<KeywordId> KeywordTable::make_pool(std::size_t count, const std::string& prefix) {
  std::vector<KeywordId> pool;
  pool.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%03zu", i);
    pool.push_back(intern(prefix + buf));
  }
  return pool;
}

}  // namespace dtnic::msg
