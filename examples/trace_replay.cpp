/// Trace-driven experimentation: record the contact trace of one mobility
/// run, then replay it under DIFFERENT routing schemes. Replay holds the
/// contact process fixed, so scheme comparisons are paired (no mobility
/// noise between arms) — the workflow used with real-world traces
/// (Haggle, MIT Reality, ...), demonstrated here end to end.

#include <fstream>
#include <iostream>

#include "net/scripted_contacts.h"
#include "scenario/experiment.h"
#include "scenario/report.h"
#include "scenario/scenario.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace dtnic;
  util::Cli cli;
  cli.add_flag("nodes", "60", "participants");
  cli.add_flag("hours", "2", "simulated hours");
  cli.add_flag("trace", "/tmp/dtnic_contacts.trace", "where to write the recorded trace");
  if (!cli.parse(argc, argv)) {
    std::cout << cli.usage(argv[0]);
    return 0;
  }

  // --- 1. record ------------------------------------------------------------
  scenario::ScenarioConfig cfg = scenario::ScenarioConfig::scaled_defaults(
      static_cast<std::size_t>(cli.get_int("nodes")), cli.get_double("hours"));
  cfg.seed = 99;
  cfg.scheme = scenario::Scheme::kChitChat;
  std::cout << "recording contact trace from a " << cfg.num_nodes
            << "-node Random-Waypoint run...\n";
  scenario::Scenario recorder(cfg);
  (void)recorder.run();
  const auto summary = scenario::summarize_contacts(recorder.contact_trace());
  scenario::write_contact_summary(std::cout, summary);

  const std::string path = cli.get("trace");
  {
    std::ofstream out(path);
    net::ScriptedConnectivity::serialize(
        out, net::ScriptedConnectivity::from_trace(recorder.contact_trace()));
  }
  std::cout << "\ntrace written to " << path << "\n\n";

  // --- 2. replay under every scheme -----------------------------------------
  std::cout << "replaying the SAME contacts under each routing scheme:\n\n";
  std::vector<scenario::RunResult> results;
  for (const auto scheme :
       {scenario::Scheme::kIncentive, scenario::Scheme::kChitChat,
        scenario::Scheme::kEpidemic, scenario::Scheme::kProphet,
        scenario::Scheme::kSprayAndWait, scenario::Scheme::kDirectDelivery}) {
    scenario::ScenarioConfig replay_cfg = cfg;
    replay_cfg.scheme = scheme;
    replay_cfg.contact_trace_file = path;
    results.push_back(scenario::ExperimentRunner::run_once(replay_cfg));
  }
  scenario::comparison_table(results).print(std::cout);
  std::cout << "\npaired comparison: every scheme saw the identical contact sequence.\n";
  return 0;
}
