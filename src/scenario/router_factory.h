#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "core/behavior.h"
#include "routing/router.h"
#include "scenario/config.h"
#include "util/rng.h"
#include "util/sim_time.h"

/// \file router_factory.h
/// One registry mapping each routing scheme to its name, RouterKind tag, and
/// builder. Replaces the Scheme switch that used to live in scenario.cpp and
/// the parallel name tables in config_io.cpp / config.cpp: scheme parsing,
/// scheme printing, simulator router construction, and the live `dtnic`
/// daemon all consult the same table, so adding a scheme is one registry row.

namespace dtnic::core {
struct IncentiveWorld;
class PiEscrowBank;
}  // namespace dtnic::core

namespace dtnic::scenario {

/// Everything a router builder may need. All referenced objects must outlive
/// the router. Optional services (world, pi_bank, master_rng) are only
/// required by the schemes that use them; build() checks.
struct RouterBuildContext {
  const ScenarioConfig* cfg = nullptr;
  /// Concrete oracle type: most routers take the DestinationOracle base, but
  /// Nectar reads static interests directly.
  const routing::StaticInterestOracle* oracle = nullptr;
  util::SimTime contact_quantum = util::SimTime::zero();
  /// Shared incentive services (incentive / pi-incentive schemes).
  const core::IncentiveWorld* world = nullptr;
  core::PiEscrowBank* pi_bank = nullptr;
  /// Per-node behavior profile (incentive scheme).
  core::BehaviorProfile behavior;
  /// Master RNG + stable stream tag for schemes that fork a per-node stream.
  /// DETERMINISM: Rng::fork mutates the parent, so ONLY builders of schemes
  /// that historically forked (kIncentive) may call it — and they fork
  /// exactly once with tag `rng_stream_tag + node_index * 16`, preserving
  /// the seed repo's fork sequence bit-for-bit.
  util::Rng* master_rng = nullptr;
  std::uint64_t rng_stream_tag = 0;
  std::size_t node_index = 0;
};

/// One registry row: scheme tag <-> wire/config name <-> RouterKind <-> builder.
struct RouterSpec {
  Scheme scheme;
  const char* name;
  routing::RouterKind kind;
  std::unique_ptr<routing::Router> (*build)(const RouterBuildContext&);
};

/// All registered schemes, in Scheme enum order.
[[nodiscard]] const std::vector<RouterSpec>& router_registry();

/// The spec for \p s (every Scheme value is registered).
[[nodiscard]] const RouterSpec& router_spec(Scheme s);

/// Lookup by config/wire name; nullptr when unknown.
[[nodiscard]] const RouterSpec* find_router_spec(std::string_view name);

/// Build a router for ctx.cfg->scheme. Throws std::invalid_argument when the
/// context lacks a service the scheme requires.
[[nodiscard]] std::unique_ptr<routing::Router> build_router(const RouterBuildContext& ctx);

}  // namespace dtnic::scenario
