#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "msg/id_source.h"
#include "msg/message.h"
#include "obs/trace_sink.h"
#include "scenario/report.h"
#include "scenario/scenario.h"
#include "util/sim_time.h"

/// Staged-vs-serial bit-identity for the parallel exchange phase (DESIGN.md
/// "Parallel exchange phase"): pump_all_idle with any exchange_threads value
/// must produce byte-identical traces, reports, and link-event order to the
/// fully serial pump. exchange_threads == 1 runs the original serial loop,
/// so comparing 1 against {2, 4, 8, auto} proves the staged plan/commit
/// replay reproduces the serial exchange exactly. Styled after
/// net_shard_determinism_test.cpp.
///
/// This file is also compiled into dtnic_stress_tests: under TSan
/// (`ctest -L tsan-stress`) the multi-threaded plan stage of every run here
/// doubles as the contention check for the per-host lock sets.

namespace dtnic::scenario {

/// Test-only backdoor into the staged pump, used to force the
/// revision-mismatch re-plan path that cannot occur naturally within a tick
/// (commit never mutates buffers between the stages).
struct ScenarioTestPeer {
  static void plan(Scenario& s) { s.plan_staged(); }
  static void commit(Scenario& s) { s.commit_staged(); }
  static std::size_t staged_links(const Scenario& s) { return s.staged_pairs_.size(); }
};

namespace {

using util::SimTime;

struct RunArtifacts {
  RunResult result;
  std::string trace;
  std::string report;
};

/// One seeded, churny fig51-style run (mixed behaviors, fast movement so
/// links form and break constantly) with a full trace and a JSON report
/// captured in memory.
RunArtifacts run_exchange_scenario(std::size_t exchange_threads, Scheme scheme) {
  ScenarioConfig cfg = ScenarioConfig::scaled_defaults(40, 0.5);
  cfg.scheme = scheme;
  cfg.selfish_fraction = 0.2;
  cfg.malicious_fraction = 0.1;
  cfg.sample_interval_s = 300.0;
  cfg.max_speed_mps = 8.0;  // link churn: contacts break mid-conversation
  cfg.exchange_threads = exchange_threads;

  Scenario s(cfg);
  std::ostringstream trace_os;
  obs::TraceOptions opt;
  opt.clock = [&sim = s.simulator()] { return sim.now(); };
  opt.seed = cfg.seed;
  opt.scheme = scheme_name(scheme);
  obs::TraceSink sink(trace_os, std::move(opt));
  const obs::SinkHandle handle = s.events().add_sink(sink);

  RunArtifacts out;
  out.result = s.run();
  sink.flush();
  out.trace = trace_os.str();

  std::ostringstream report_os;
  Reporter reporter(report_os, ReportFormat::kJson);
  reporter.run_report(out.result);
  out.report = report_os.str();
  return out;
}

TEST(ScenarioExchange, ReportsAndTracesByteIdenticalAcrossExchangeThreads) {
  for (const Scheme scheme : {Scheme::kIncentive, Scheme::kChitChat}) {
    const RunArtifacts serial = run_exchange_scenario(1, scheme);
    ASSERT_GT(serial.result.created, 0u);
    ASSERT_GT(serial.trace.size(), 100u);
    for (const std::size_t threads : {2u, 4u, 8u}) {
      const RunArtifacts staged = run_exchange_scenario(threads, scheme);
      EXPECT_EQ(staged.trace, serial.trace) << "exchange_threads=" << threads;
      EXPECT_EQ(staged.report, serial.report) << "exchange_threads=" << threads;
      EXPECT_EQ(staged.result.mdr, serial.result.mdr);
      EXPECT_EQ(staged.result.traffic, serial.result.traffic);
      EXPECT_EQ(staged.result.contacts, serial.result.contacts);
      EXPECT_EQ(staged.result.tokens_paid, serial.result.tokens_paid);
      EXPECT_EQ(staged.result.avg_final_tokens, serial.result.avg_final_tokens);
      // Nothing mutates buffers between plan and commit in a normal run, so
      // the revision-validation fallback must never fire.
      EXPECT_EQ(staged.result.timing.exchange_replans, 0u);
    }
  }
}

TEST(ScenarioExchange, AutoExchangeThreadCountRunsAndStaysConsistent) {
  // exchange_threads = 0 resolves to the hardware thread count; whatever
  // that is on the host, the output contract is the same.
  const RunArtifacts serial = run_exchange_scenario(1, Scheme::kIncentive);
  const RunArtifacts any = run_exchange_scenario(0, Scheme::kIncentive);
  EXPECT_EQ(any.trace, serial.trace);
  EXPECT_EQ(any.report, serial.report);
}

TEST(ScenarioExchange, PerLinkBookkeepingDoesNotLeakUnderChurn) {
  ScenarioConfig cfg = ScenarioConfig::scaled_defaults(40, 0.5);
  cfg.scheme = Scheme::kIncentive;
  cfg.max_speed_mps = 8.0;
  cfg.exchange_threads = 4;
  Scenario s(cfg);
  const RunResult result = s.run();
  // The run must have churned through far more contacts than links that are
  // still up at the end — otherwise this probes nothing.
  const std::size_t live_links = s.transfers().links_tracked();
  ASSERT_GT(result.contacts, live_links + 50);
  // Leak probe (companion of the TransferManager links_tracked checks):
  // toggle / refused / idle-memo entries are erased on link-down, so at most
  // one entry per map can exist per live link. Before the link_toggle_
  // link-down erase, this sat at one entry per pair ever contacted.
  EXPECT_LE(s.exchange_state_tracked(), 3 * live_links);
}

TEST(ScenarioExchange, RevisionMismatchFallsBackToSerialReplan) {
  ScenarioConfig cfg = ScenarioConfig::scaled_defaults(30, 0.5);
  cfg.scheme = Scheme::kIncentive;
  cfg.exchange_threads = 4;
  Scenario s(cfg);

  // Bring links up without any workload: the contact handlers pump empty
  // buffers, so no transfer is in flight and every connected pair stages.
  s.contacts().start();
  double t = 30.0;
  s.simulator().run_until(SimTime::seconds(t));
  ScenarioTestPeer::plan(s);
  while (ScenarioTestPeer::staged_links(s) == 0 && t < 600.0) {
    t += 30.0;
    s.simulator().run_until(SimTime::seconds(t));
    ScenarioTestPeer::plan(s);
  }
  ASSERT_GT(ScenarioTestPeer::staged_links(s), 0u);

  // Tamper between plan and commit: bump every buffer revision, so every
  // staged (non-gated) link fails commit's revision validation and must be
  // re-planned through the serial pump.
  msg::MessageIdSource ids;
  const SimTime now = s.simulator().now();
  for (std::size_t i = 0; i < s.node_count(); ++i) {
    routing::Host& h = s.host(routing::NodeId(static_cast<std::uint32_t>(i)));
    msg::Message m(ids.next(), h.id(), now, 1024, msg::Priority::kMedium, 0.9);
    h.mark_seen(m.id());
    h.buffer().add(std::move(m), /*own=*/true);
  }
  EXPECT_EQ(s.exchange_replans(), 0u);
  ScenarioTestPeer::commit(s);
  EXPECT_GT(s.exchange_replans(), 0u);
}

}  // namespace
}  // namespace dtnic::scenario
