# Validates a run manifest written by obs::write_manifest (--manifest-out).
# Run in script mode:
#
#   cmake -DJSON_FILE=<path> [-DREQUIRED_METRICS=a,b,c]
#         -P cmake/validate_manifest_json.cmake
#
# Checks the dtnic.manifest.v1 schema tag, the presence of tool/scheme/git
# identity fields, a non-empty seeds array, a config echo object, and the
# metrics/timings_ms objects (with REQUIRED_METRICS keys inside metrics).
# Used by the obs-smoke ctests so CI catches a malformed manifest.

if(NOT DEFINED JSON_FILE)
  message(FATAL_ERROR "pass -DJSON_FILE=<path to manifest json>")
endif()
if(NOT EXISTS "${JSON_FILE}")
  message(FATAL_ERROR "manifest file not found: ${JSON_FILE}")
endif()
if(NOT DEFINED REQUIRED_METRICS)
  set(REQUIRED_METRICS "mdr,created,delivered")
endif()
string(REPLACE "," ";" _required_metrics "${REQUIRED_METRICS}")

file(READ "${JSON_FILE}" _doc)

string(JSON _schema ERROR_VARIABLE _err GET "${_doc}" schema)
if(_err)
  message(FATAL_ERROR "missing 'schema' key in ${JSON_FILE}: ${_err}")
endif()
if(NOT _schema STREQUAL "dtnic.manifest.v1")
  message(FATAL_ERROR
    "unexpected schema tag '${_schema}' in ${JSON_FILE} (want 'dtnic.manifest.v1')")
endif()

foreach(_key tool scheme git)
  string(JSON _val ERROR_VARIABLE _err GET "${_doc}" ${_key})
  if(_err)
    message(FATAL_ERROR "missing '${_key}' in ${JSON_FILE}: ${_err}")
  endif()
  if(_val STREQUAL "")
    message(FATAL_ERROR "'${_key}' must be non-empty in ${JSON_FILE}")
  endif()
endforeach()

string(JSON _seeds ERROR_VARIABLE _err LENGTH "${_doc}" seeds)
if(_err)
  message(FATAL_ERROR "missing 'seeds' array in ${JSON_FILE}: ${_err}")
endif()
if(_seeds LESS 1)
  message(FATAL_ERROR "'seeds' must list at least one seed, got ${_seeds}")
endif()

foreach(_section config metrics timings_ms artifacts)
  string(JSON _type ERROR_VARIABLE _err TYPE "${_doc}" ${_section})
  if(_err)
    message(FATAL_ERROR "missing '${_section}' in ${JSON_FILE}: ${_err}")
  endif()
  if(NOT _type STREQUAL "OBJECT")
    message(FATAL_ERROR "'${_section}' must be an object, got ${_type}")
  endif()
endforeach()

foreach(_key IN LISTS _required_metrics)
  string(JSON _val ERROR_VARIABLE _err GET "${_doc}" metrics ${_key})
  if(_err)
    message(FATAL_ERROR "metrics missing '${_key}' in ${JSON_FILE}: ${_err}")
  endif()
endforeach()

string(JSON _config_len LENGTH "${_doc}" config)
if(_config_len LESS 1)
  message(FATAL_ERROR "'config' echo must carry at least one key")
endif()

message(STATUS
  "${JSON_FILE}: schema '${_schema}' ok, ${_seeds} seed(s), ${_config_len} config keys")
