#include "routing/prophet.h"

#include <cmath>

#include "util/assert.h"

namespace dtnic::routing {

ProphetRouter::ProphetRouter(const DestinationOracle& oracle, const ProphetParams& params)
    : Router(oracle, RouterKind::kProphet), params_(params) {
  DTNIC_REQUIRE(params.p_init > 0.0 && params.p_init <= 1.0);
  DTNIC_REQUIRE(params.gamma > 0.0 && params.gamma <= 1.0);
  DTNIC_REQUIRE(params.beta >= 0.0 && params.beta <= 1.0);
  DTNIC_REQUIRE(params.aging_unit_s > 0.0);
}

ProphetRouter* ProphetRouter::of(Host& host) {
  if (!host.has_router()) return nullptr;
  Router& router = host.router();
  if (router.kind() != RouterKind::kProphet) return nullptr;
  return static_cast<ProphetRouter*>(&router);
}

void ProphetRouter::age(util::SimTime now) {
  const double dt = now.sec() - last_aged_s_;
  if (dt <= 0.0) return;
  const double factor = std::pow(params_.gamma, dt / params_.aging_unit_s);
  for (auto it = table_.begin(); it != table_.end();) {
    it->second *= factor;
    if (it->second < params_.prune_epsilon) {
      it = table_.erase(it);
    } else {
      ++it;
    }
  }
  last_aged_s_ = now.sec();
}

void ProphetRouter::on_link_up(Host& self, Host& peer, util::SimTime now, double distance_m) {
  (void)self; (void)distance_m;
  age(now);
  // Direct component: meeting a subscriber raises P for its interests.
  for (msg::KeywordId k : oracle().interests_of(peer.id())) {
    double& p = table_[k];
    p += (1.0 - p) * params_.p_init;
  }
  // Transitive component through the peer's own table.
  if (const ProphetRouter* other = ProphetRouter::of(peer); other != nullptr) {
    for (const auto& [keyword, p_peer] : other->table_) {
      double& p = table_[keyword];
      p = std::max(p, p_peer * params_.beta * params_.p_init);
    }
  }
}

double ProphetRouter::predictability(msg::KeywordId k) const {
  auto it = table_.find(k);
  return it != table_.end() ? it->second : 0.0;
}

double ProphetRouter::predictability_for(const msg::Message& m) const {
  double best = 0.0;
  for (msg::KeywordId k : m.keywords()) best = std::max(best, predictability(k));
  return best;
}

std::vector<ForwardPlan> ProphetRouter::plan(Host& self, Host& peer, util::SimTime now) {
  age(now);
  std::vector<ForwardPlan> plans;
  const ProphetRouter* other = ProphetRouter::of(peer);
  for (const msg::Message* m : self.buffer().messages()) {
    if (peer.has_seen(m->id())) continue;
    if (oracle().is_destination(peer.id(), *m)) {
      plans.push_back(ForwardPlan{m->id(), TransferRole::kDestination});
      continue;
    }
    if (other != nullptr && other->predictability_for(*m) > predictability_for(*m)) {
      plans.push_back(ForwardPlan{m->id(), TransferRole::kRelay});
    }
  }
  return plans;
}

}  // namespace dtnic::routing
