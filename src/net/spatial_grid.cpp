#include "net/spatial_grid.h"

#include <cmath>

#include "util/assert.h"

namespace dtnic::net {

SpatialGrid::SpatialGrid(double cell_size) : cell_size_(cell_size) {
  DTNIC_REQUIRE_MSG(cell_size > 0.0, "cell size must be positive");
}

void SpatialGrid::clear() {
  // Keep bucket memory to avoid re-allocating every scan.
  for (auto& [key, items] : cells_) items.clear();
  count_ = 0;
}

std::int64_t SpatialGrid::cell_key(double x, double y) const {
  const auto cx = static_cast<std::int64_t>(std::floor(x / cell_size_));
  const auto cy = static_cast<std::int64_t>(std::floor(y / cell_size_));
  // Interleave into one key; 2^20 cells per axis is ample for any scenario.
  return (cx << 24) ^ (cy & 0xffffff);
}

void SpatialGrid::insert(util::NodeId id, util::Vec2 position) {
  DTNIC_REQUIRE(id.valid());
  cells_[cell_key(position.x, position.y)].push_back(Item{id, position});
  ++count_;
}

std::vector<util::NodeId> SpatialGrid::neighbors_of(util::Vec2 center, double radius,
                                                    util::NodeId self) const {
  std::vector<util::NodeId> out;
  const double r2 = radius * radius;
  for (int dx = -1; dx <= 1; ++dx) {
    for (int dy = -1; dy <= 1; ++dy) {
      const auto it = cells_.find(
          cell_key(center.x + dx * cell_size_, center.y + dy * cell_size_));
      if (it == cells_.end()) continue;
      for (const Item& item : it->second) {
        if (item.id == self) continue;
        if (util::distance_sq(center, item.position) <= r2) out.push_back(item.id);
      }
    }
  }
  return out;
}

std::vector<SpatialGrid::Pair> SpatialGrid::pairs_within(double radius) const {
  DTNIC_REQUIRE_MSG(radius <= cell_size_, "query radius exceeds grid cell size");
  std::vector<Pair> out;
  const double r2 = radius * radius;
  for (const auto& [key, items] : cells_) {
    if (items.empty()) continue;
    // In-cell pairs.
    for (std::size_t i = 0; i < items.size(); ++i) {
      for (std::size_t j = i + 1; j < items.size(); ++j) {
        const double d2 = util::distance_sq(items[i].position, items[j].position);
        if (d2 <= r2) {
          const auto lo = std::min(items[i].id, items[j].id);
          const auto hi = std::max(items[i].id, items[j].id);
          out.push_back(Pair{lo, hi, std::sqrt(d2)});
        }
      }
    }
    // Cross-cell pairs: visit half of the 8 neighbors so each unordered cell
    // pair is examined exactly once. Reconstruct this cell's coordinates from
    // one member's position.
    const double bx = std::floor(items.front().position.x / cell_size_);
    const double by = std::floor(items.front().position.y / cell_size_);
    static constexpr int kHalfNeighborhood[4][2] = {{1, 0}, {1, 1}, {0, 1}, {-1, 1}};
    for (const auto& d : kHalfNeighborhood) {
      const auto it = cells_.find(cell_key((bx + d[0]) * cell_size_ + cell_size_ * 0.5,
                                           (by + d[1]) * cell_size_ + cell_size_ * 0.5));
      if (it == cells_.end()) continue;
      for (const Item& mine : items) {
        for (const Item& theirs : it->second) {
          const double d2 = util::distance_sq(mine.position, theirs.position);
          if (d2 <= r2) {
            const auto lo = std::min(mine.id, theirs.id);
            const auto hi = std::max(mine.id, theirs.id);
            out.push_back(Pair{lo, hi, std::sqrt(d2)});
          }
        }
      }
    }
  }
  return out;
}

}  // namespace dtnic::net
