/// Reproduces Figure 5.3 (Initial Tokens' Variance): MDR as a function of
/// the initial token allowance, for several selfish-node percentages.
/// Paper shape: MDR rises with the initial allowance (tokens exhaust more
/// slowly) and falls with the selfish percentage; traffic reduction shrinks
/// as the allowance grows (the Section 3 conclusion's trade-off).

#include <iostream>
#include <iterator>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace dtnic;
  util::Cli cli;
  const bench::BenchScale scale = bench::resolve_scale(cli, argc, argv, argv[0]);
  bench::print_header("Figure 5.3: MDR vs initial tokens", scale);

  const scenario::SweepRunner sweep(scale.seeds);
  const scenario::ScenarioConfig base = bench::base_config(scale);
  // Sweep around the scale-adjusted baseline allowance (the paper sweeps
  // absolute token counts at 24 h / 500 nodes).
  const double multipliers[] = {0.25, 0.5, 1.0, 2.0, 4.0};
  const double selfish_levels[] = {0.0, 0.2, 0.4};

  // Per multiplier: incentive at each selfish level, then ChitChat at 20%
  // selfish (the traffic-reduction reference) — four points per row.
  std::vector<scenario::ScenarioConfig> points;
  for (const double mult : multipliers) {
    scenario::ScenarioConfig cfg = base;
    cfg.incentive.initial_tokens = base.incentive.initial_tokens * mult;
    for (const double selfish : selfish_levels) {
      cfg.selfish_fraction = selfish;
      cfg.scheme = scenario::Scheme::kIncentive;
      points.push_back(cfg);
    }
    cfg.selfish_fraction = 0.2;
    cfg.scheme = scenario::Scheme::kChitChat;
    points.push_back(cfg);
  }
  const auto results = sweep.run_all(points);

  util::Table table({"initial tokens", "MDR (0% selfish)", "MDR (20% selfish)",
                     "MDR (40% selfish)", "traffic reduced % (20% selfish)"});
  const std::size_t per_row = std::size(selfish_levels) + 1;
  for (std::size_t mi = 0; mi < std::size(multipliers); ++mi) {
    const double tokens = base.incentive.initial_tokens * multipliers[mi];
    std::vector<std::string> row{util::Table::cell(tokens, 1)};
    for (std::size_t si = 0; si < std::size(selfish_levels); ++si) {
      row.push_back(util::Table::cell(results[mi * per_row + si].mdr.mean(), 3));
    }
    const auto& incentive_at_20 = results[mi * per_row + 1];  // selfish level 0.2
    const auto& chitchat_at_20 = results[mi * per_row + per_row - 1];
    const double t_cc = chitchat_at_20.traffic.mean();
    const double reduced_at_20 =
        t_cc > 0 ? (t_cc - incentive_at_20.traffic.mean()) / t_cc * 100.0 : 0.0;
    row.push_back(util::Table::cell(reduced_at_20, 2));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: MDR grows with the token allowance and shrinks with\n"
               "selfishness; the traffic saving fades as tokens stop binding.\n";
  return 0;
}
