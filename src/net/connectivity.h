#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "mobility/mobility_model.h"
#include "net/contact_source.h"
#include "net/radio.h"
#include "net/spatial_grid.h"
#include "sim/simulator.h"
#include "util/ids.h"
#include "util/thread_pool.h"

/// \file connectivity.h
/// Contact detection. Positions are sampled every scan interval; a pair of
/// nodes within radio range forms a contact (link up) and loses it when the
/// range is exceeded (link down). A participation gate is consulted once per
/// fresh encounter per node — this is how selfish nodes "switch off the
/// communication medium" (paper §5.A: the radio is open 1 of 10 encounters).
///
/// The scan is incremental and allocation-free at steady state: the spatial
/// grid keeps persistent per-node slots and only moves nodes whose cell
/// changed, the in-range pair list arrives sorted by (lo, hi) key, and the
/// previous scan's list is diffed against it with one linear merge — no
/// per-scan hash set, and link up/down callbacks fire in sorted pair order,
/// deterministically across platforms and hash layouts.
///
/// With shard_threads > 1, the expensive phases of one scan run sharded:
/// mobility sampling/position staging over contiguous node ranges and pair
/// enumeration over grid-cell shards (owner rule: SpatialGrid::shard_of_cell),
/// each on its own thread. Cell-pool commits, the k-way merge of the sorted
/// per-shard pair lists, and all link up/down callbacks stay serial, so every
/// observable event sequence is bit-identical to the serial scan for any
/// shard count (see DESIGN.md "Intra-run sharding").

namespace dtnic::net {

using util::NodeId;

class ConnectivityManager final : public ContactSource {
 public:
  /// \p shard_threads is the number of intra-scan shards; 1 (the default)
  /// keeps the fully serial path. The manager owns a dedicated pool of
  /// (shard_threads - 1) workers — the calling thread runs shard 0 — rather
  /// than borrowing ThreadPool::shared(), whose queue may hold whole-seed
  /// jobs that would deadlock a nested wait.
  ConnectivityManager(sim::Simulator& sim, const RadioParams& radio,
                      util::SimTime scan_interval, std::size_t shard_threads = 1);

  /// Register a node; \p mobility must outlive the manager.
  void add_node(NodeId id, mobility::MobilityModel* mobility);

  void on_link_up(LinkUpFn fn) override { link_up_ = std::move(fn); }
  void on_link_down(LinkDownFn fn) override { link_down_ = std::move(fn); }
  void set_participation_gate(ParticipationGate gate) override { gate_ = std::move(gate); }

  /// Begin periodic scanning (first scan at the current time).
  void start() override;
  void stop();

  /// Run a single scan immediately (also used by tests).
  void scan();

  [[nodiscard]] bool connected(NodeId a, NodeId b) const;
  /// Current neighbors of \p id, already sorted (kept sorted incrementally;
  /// no per-call sort).
  [[nodiscard]] std::vector<NodeId> neighbors_of(NodeId id) const override;
  /// Visit the current neighbors of \p id in sorted order without
  /// materializing a vector (contact-controller hot path).
  template <class Visitor>
  void for_each_neighbor(NodeId id, Visitor&& visit) const {
    const auto it = adjacency_.find(id);
    if (it == adjacency_.end()) return;
    for (NodeId n : it->second) visit(n);
  }
  /// All currently connected pairs, sorted (deterministic iteration).
  [[nodiscard]] std::vector<std::pair<NodeId, NodeId>> connected_pairs() const override;
  [[nodiscard]] std::size_t active_links() const { return links_; }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  /// Nodes currently holding a non-empty neighbor set (bounded-growth
  /// invariant: never exceeds the nodes with at least one live link).
  [[nodiscard]] std::size_t adjacency_entries() const { return adjacency_.size(); }

  /// Position of a node at the current simulation time. Positions computed
  /// by the latest scan are cached for the rest of that tick, so routers
  /// querying mid-scan do not re-invoke the mobility models.
  [[nodiscard]] util::Vec2 position_of(NodeId id);

  /// Total contacts formed so far (suppressed encounters excluded).
  [[nodiscard]] std::uint64_t contacts_formed() const override { return contacts_formed_; }
  /// Encounters suppressed by the participation gate.
  [[nodiscard]] std::uint64_t contacts_suppressed() const override {
    return contacts_suppressed_;
  }

  /// Wall-clock nanoseconds spent inside scan() so far, excluding time spent
  /// in nested link up/down callbacks (see util::ScopedTimer), and the
  /// number of scans run. Observability only; never affects the simulation.
  [[nodiscard]] std::uint64_t scan_ns() const { return scan_ns_; }
  [[nodiscard]] std::uint64_t scans() const { return scans_; }
  [[nodiscard]] std::size_t shard_threads() const { return shards_; }

 private:
  enum class PairState : std::uint8_t { kConnected, kSuppressed };

  /// (lo, hi) id pair packed into one key; key order == lexicographic pair
  /// order, which the merge in scan() relies on.
  static std::uint64_t pair_key(NodeId a, NodeId b);

  void add_adjacency(NodeId node, NodeId neighbor);
  /// Remove \p neighbor from \p node's adjacency list without ever creating
  /// an entry; erases the list once empty.
  void drop_adjacency(NodeId node, NodeId neighbor);

  /// Sample mobility + stage positions for nodes already in the grid, then
  /// commit cell crossers serially in ascending node order (replicating the
  /// serial loop's pool-mutation sequence) and insert first-seen nodes.
  void refresh_positions(util::SimTime now);
  /// Fill scan_pairs_ with the sorted in-range pair list — serial
  /// grid.pairs_within for one shard, per-shard enumeration + k-way merge
  /// otherwise. Both produce the identical list.
  void collect_pairs();
  void merge_shard_pairs();

  sim::Simulator& sim_;
  RadioParams radio_;
  util::SimTime scan_interval_;
  sim::EventId scan_task_{};

  struct NodeEntry {
    NodeId id;
    mobility::MobilityModel* mobility;
  };
  std::vector<NodeEntry> nodes_;
  std::unordered_map<NodeId, std::size_t> node_index_;

  SpatialGrid grid_;
  std::vector<std::size_t> grid_slots_;  ///< grid slot per node index

  /// Intra-scan sharding state. shard_pool_ exists only when shards_ > 1;
  /// its (shards_ - 1) workers plus the calling thread run one shard each.
  std::size_t shards_ = 1;
  std::unique_ptr<util::ThreadPool> shard_pool_;
  struct ShardScratch {
    std::vector<SpatialGrid::Pair> pairs;  ///< this shard's sorted emission
    SpatialGrid::SortScratch sort;
    std::vector<std::size_t> crossers;  ///< staged slots whose cell changed
    std::size_t cursor = 0;             ///< k-way merge read position
  };
  std::vector<ShardScratch> shard_scratch_;

  /// Known pairs (connected or suppressed), sorted by key; the previous
  /// scan's list is merged against the current in-range list each scan.
  struct PairRec {
    std::uint64_t key;
    PairState state;
  };
  std::vector<PairRec> pairs_;
  /// Neighbor lists, kept sorted by incremental insertion/removal.
  std::unordered_map<NodeId, std::vector<NodeId>> adjacency_;
  std::size_t links_ = 0;

  // Scratch buffers reused across scans (steady state allocates nothing).
  std::vector<PairRec> next_pairs_;
  std::vector<SpatialGrid::Pair> scan_pairs_;
  std::vector<std::uint64_t> downs_;

  // Per-tick position cache filled by scan().
  std::vector<util::Vec2> positions_;
  util::SimTime positions_time_ = util::SimTime::zero();
  bool positions_cached_ = false;

  LinkUpFn link_up_;
  LinkDownFn link_down_;
  ParticipationGate gate_;

  std::uint64_t contacts_formed_ = 0;
  std::uint64_t contacts_suppressed_ = 0;
  std::uint64_t scan_ns_ = 0;
  std::uint64_t scans_ = 0;
};

}  // namespace dtnic::net
