#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "msg/message.h"
#include "util/arena.h"

/// \file buffer.h
/// Per-node bounded message store (Table 5.1: 250 MB per node). Insertion
/// order is preserved; when space runs out the oldest relayed message is
/// evicted first (ONE's default FIFO drop policy). Messages originated by
/// the node itself are protected from eviction.

namespace dtnic::msg {

/// Which buffered copy is sacrificed when space runs out.
enum class DropPolicy {
  kFifoOldest,        ///< ONE's default: oldest relayed copy goes first
  kLowPriorityFirst,  ///< incentive scheme: lowest-priority (then lowest
                      ///< quality, then oldest) relayed copy goes first —
                      ///< the paper's "prioritizes messages based on the
                      ///< quality as well as the assigned priority"
};

class MessageBuffer {
 public:
  explicit MessageBuffer(std::uint64_t capacity_bytes,
                         DropPolicy policy = DropPolicy::kFifoOldest);

  enum class AddResult {
    kAdded,        ///< stored (possibly after evicting older messages)
    kDuplicate,    ///< a copy with this id is already present
    kTooLarge,     ///< larger than total capacity, or eviction could not free room
    kNotAdmitted,  ///< kLowPriorityFirst: every eviction candidate is at least
                   ///< as valuable as the incoming copy, so it is refused
  };

  struct AddOutcome {
    AddResult result = AddResult::kAdded;
    std::vector<Message> evicted;  ///< messages dropped to make room
  };

  /// Store a copy. \p own marks messages this node originated; they are
  /// evicted only when no relayed copy remains.
  AddOutcome add(Message m, bool own = false);

  /// Would add() succeed right now? Used by admission control so a copy that
  /// the drop policy would refuse is never transferred in the first place.
  [[nodiscard]] bool would_admit(const Message& m, bool own = false) const;

  [[nodiscard]] bool contains(MessageId id) const;
  [[nodiscard]] const Message* find(MessageId id) const;
  [[nodiscard]] Message* find_mutable(MessageId id);

  /// Remove a message; returns true if it was present.
  bool remove(MessageId id);

  /// Drop all messages whose TTL has passed; returns the dropped messages
  /// so the caller can report them to the metrics collector.
  std::vector<Message> drop_expired(SimTime now);

  [[nodiscard]] std::uint64_t capacity_bytes() const { return capacity_bytes_; }
  [[nodiscard]] std::uint64_t used_bytes() const { return used_bytes_; }
  [[nodiscard]] std::uint64_t free_bytes() const { return capacity_bytes_ - used_bytes_; }
  [[nodiscard]] std::size_t size() const { return order_.size(); }
  [[nodiscard]] bool empty() const { return order_.empty(); }

  /// Messages in insertion order (oldest first). Stable while not mutated.
  [[nodiscard]] std::vector<const Message*> messages() const;

  /// Visit every message in insertion order without materializing a pointer
  /// vector; the hot-path (per-contact plan/promise) alternative to
  /// messages(). The buffer must not be mutated during the visit.
  template <class Visitor>
  void for_each(Visitor&& visit) const {
    for (const Slot& slot : order_) visit(slot.message);
  }

  /// Monotone counter bumped by every mutation (add/remove/expiry); lets the
  /// contact controller skip re-planning links whose endpoints are unchanged.
  [[nodiscard]] std::uint64_t revision() const { return revision_; }

  [[nodiscard]] DropPolicy drop_policy() const { return policy_; }

 private:
  struct Slot {
    Message message;
    bool own = false;
  };

  /// Node storage goes through the arena pool: a buffer add/remove in steady
  /// state is then a free-list pop/push instead of a heap round trip, and a
  /// node's list node + index node recycle across the whole scenario. (The
  /// index's bucket *array* still comes from operator new — it grows
  /// amortized and stabilizes, unlike the per-message nodes.)
  using SlotList = std::list<Slot, util::arena::PoolAllocator<Slot>>;
  using SlotIndex =
      std::unordered_map<MessageId, SlotList::iterator, std::hash<MessageId>,
                         std::equal_to<MessageId>,
                         util::arena::PoolAllocator<std::pair<const MessageId, SlotList::iterator>>>;

  /// The next eviction victim under the configured policy, or end().
  SlotList::iterator pick_victim();

  DropPolicy policy_;
  std::uint64_t capacity_bytes_;
  std::uint64_t revision_ = 0;
  std::uint64_t used_bytes_ = 0;
  SlotList order_;
  SlotIndex index_;
};

}  // namespace dtnic::msg
